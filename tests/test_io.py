"""Experiment-record serialization."""

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.io.records import (
    RunRecord,
    load_records,
    record_from_summary,
    save_records,
)


@pytest.fixture(scope="module")
def record():
    summary = solve_cantilever(1, n_parts=2, options=SolverOptions(precond="gls(3)"))
    return record_from_summary(summary, "mesh1/gls3/p2", n_eqn=28)


def test_record_fields(record):
    assert record.label == "mesh1/gls3/p2"
    assert record.method == "edd-enhanced"
    assert record.precond == "GLS(3)"
    assert record.n_parts == 2
    assert record.n_eqn == 28
    assert record.converged
    assert record.total_flops > 0
    assert set(record.modeled_times) == {"sp2", "origin"}
    assert all(t > 0 for t in record.modeled_times.values())


def test_roundtrip(tmp_path, record):
    path = tmp_path / "runs.json"
    save_records([record, record], path)
    loaded = load_records(path)
    assert len(loaded) == 2
    assert loaded[0] == record


def test_json_is_plain_types(tmp_path, record):
    import json

    path = tmp_path / "runs.json"
    save_records([record], path)
    payload = json.loads(path.read_text())
    assert isinstance(payload[0]["total_flops"], int)
    assert isinstance(payload[0]["final_residual"], float)
    assert isinstance(payload[0]["converged"], bool)
