"""Element-based (EDD) partitions."""

import numpy as np
import pytest

from repro.fem.mesh import structured_quad_mesh
from repro.partition.element_partition import ElementPartition


def test_build_rcb_balanced():
    mesh = structured_quad_mesh(8, 4)
    part = ElementPartition.build(mesh, 4)
    assert np.array_equal(part.sizes(), [8, 8, 8, 8])
    assert part.imbalance() == 1.0


def test_build_greedy():
    mesh = structured_quad_mesh(6, 6)
    part = ElementPartition.build(mesh, 3, method="greedy")
    sizes = part.sizes()
    assert sizes.sum() == 36
    assert sizes.max() - sizes.min() <= 1


def test_unknown_method():
    mesh = structured_quad_mesh(2, 2)
    with pytest.raises(ValueError):
        ElementPartition.build(mesh, 2, method="metis")


def test_subdomain_elements_cover_all():
    mesh = structured_quad_mesh(5, 3)
    part = ElementPartition.build(mesh, 3)
    all_elems = np.concatenate(
        [part.subdomain_elements(s) for s in range(3)]
    )
    assert np.array_equal(np.sort(all_elems), np.arange(15))


def test_interface_nodes_on_strip():
    mesh = structured_quad_mesh(4, 4, lx=4.0, ly=4.0)
    part = ElementPartition(mesh, np.repeat([0, 1], 8), 2)
    iface = part.interface_nodes()
    assert np.allclose(mesh.coords[iface, 1], 2.0)
    assert len(iface) == 5


def test_validation():
    mesh = structured_quad_mesh(2, 2)
    with pytest.raises(ValueError, match="one part index"):
        ElementPartition(mesh, np.zeros(3, dtype=int), 1)
    with pytest.raises(ValueError, match="out of range"):
        ElementPartition(mesh, np.array([0, 0, 0, 5]), 2)
