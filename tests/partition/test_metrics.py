"""Partition quality metrics."""

import numpy as np
import pytest

from repro.fem.bc import clamp_edge_dofs
from repro.fem.mesh import structured_quad_mesh
from repro.partition.dual_graph import element_dual_graph
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map
from repro.partition.metrics import edge_cut, partition_metrics


def _submap(nx, ny, parts_array, p):
    mesh = structured_quad_mesh(nx, ny)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition(mesh, parts_array, p)
    return mesh, build_subdomain_map(mesh, part, bc)


def test_strip_partition_metrics():
    mesh, submap = _submap(4, 2, np.array([0, 0, 1, 1] * 2), 2)
    m = partition_metrics(submap)
    assert m.n_parts == 2
    assert m.max_neighbors == 1
    assert m.avg_neighbors == 1.0
    # interface: 3 nodes x 2 dofs of 44 free dofs... count directly
    iface = np.count_nonzero(submap.multiplicity >= 2)
    assert m.interface_fraction == pytest.approx(iface / submap.n_global)
    assert m.total_shared_words == 2 * iface  # each side sends the iface


def test_imbalance_modest_for_equal_strips():
    # Equal element counts, but the clamped edge removes DOFs from the
    # left strip only, so a mild DOF imbalance remains.
    _, submap = _submap(4, 2, np.array([0, 0, 1, 1] * 2), 2)
    m = partition_metrics(submap)
    assert 1.0 <= m.imbalance <= 1.3


def test_quarter_partition_more_neighbors():
    mesh = structured_quad_mesh(4, 4)
    bc = clamp_edge_dofs(mesh, "left")
    parts = np.zeros(16, dtype=int)
    for e in range(16):
        col, row = e % 4, e // 4
        parts[e] = (1 if col >= 2 else 0) + 2 * (1 if row >= 2 else 0)
    part = ElementPartition(mesh, parts, 4)
    submap = build_subdomain_map(mesh, part, bc)
    m = partition_metrics(submap)
    assert m.max_neighbors == 3  # corner sharing connects all quadrants


def test_edge_cut_counts_crossings():
    mesh = structured_quad_mesh(4, 1)
    g = element_dual_graph(mesh)
    assert edge_cut(np.array([0, 0, 1, 1]), g) == 1
    assert edge_cut(np.array([0, 1, 0, 1]), g) == 3
    assert edge_cut(np.zeros(4, dtype=int), g) == 0


def test_rcb_cut_no_worse_than_stripes_on_square():
    """RCB (block-wise) cuts fewer dual edges than 1-element stripes."""
    mesh = structured_quad_mesh(8, 8)
    g = element_dual_graph(mesh)
    rcb = ElementPartition.build(mesh, 8, "rcb").parts
    stripes = np.arange(64) % 8  # pathological round-robin
    assert edge_cut(rcb, g) < edge_cut(stripes, g)
