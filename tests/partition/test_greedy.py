"""Greedy graph-growing partitioner."""

import networkx as nx
import numpy as np
import pytest

from repro.fem.mesh import structured_quad_mesh
from repro.partition.dual_graph import element_dual_graph
from repro.partition.greedy import greedy_graph_partition


def test_balanced_on_path_graph():
    g = nx.path_graph(9)
    parts = greedy_graph_partition(g, 3)
    assert np.array_equal(np.bincount(parts), [3, 3, 3])


def test_parts_contiguous_on_mesh():
    mesh = structured_quad_mesh(6, 4)
    g = element_dual_graph(mesh)
    parts = greedy_graph_partition(g, 4)
    for p in range(4):
        sub = g.subgraph(np.flatnonzero(parts == p).tolist())
        assert nx.is_connected(sub)


def test_quota_distribution_non_divisible():
    g = nx.path_graph(10)
    parts = greedy_graph_partition(g, 3)
    sizes = np.bincount(parts, minlength=3)
    assert sizes.sum() == 10
    assert sizes.max() - sizes.min() <= 1


def test_single_part():
    g = nx.cycle_graph(5)
    assert np.all(greedy_graph_partition(g, 1) == 0)


def test_vertex_labels_must_be_range():
    g = nx.Graph()
    g.add_edge("a", "b")
    with pytest.raises(ValueError):
        greedy_graph_partition(g, 2)


def test_too_many_parts():
    with pytest.raises(ValueError):
        greedy_graph_partition(nx.path_graph(2), 3)


def test_deterministic():
    g = element_dual_graph(structured_quad_mesh(5, 5))
    a = greedy_graph_partition(g, 5)
    b = greedy_graph_partition(g, 5)
    assert np.array_equal(a, b)
