"""Recursive spectral bisection."""

import networkx as nx
import numpy as np
import pytest

from repro.fem.mesh import structured_quad_mesh
from repro.fem.unstructured import perforated_plate
from repro.partition.dual_graph import element_dual_graph
from repro.partition.element_partition import ElementPartition
from repro.partition.metrics import edge_cut
from repro.partition.spectral import spectral_bisection_partition


def test_path_graph_halves():
    g = nx.path_graph(10)
    parts = spectral_bisection_partition(g, 2)
    # the Fiedler vector of a path is monotone: perfect halves, 1 cut edge
    assert np.bincount(parts).tolist() == [5, 5]
    assert edge_cut(parts, g) == 1


def test_balanced_on_mesh():
    g = element_dual_graph(structured_quad_mesh(8, 8))
    parts = spectral_bisection_partition(g, 4)
    sizes = np.bincount(parts, minlength=4)
    assert sizes.sum() == 64
    assert sizes.max() - sizes.min() <= 2


def test_non_power_of_two():
    g = element_dual_graph(structured_quad_mesh(6, 5))
    parts = spectral_bisection_partition(g, 3)
    sizes = np.bincount(parts, minlength=3)
    assert sizes.sum() == 30
    assert sizes.max() - sizes.min() <= 2


def test_cut_quality_on_square():
    """Spectral bisection of a square dual grid cuts along a straight
    line: the cut must be near-minimal (~side length)."""
    g = element_dual_graph(structured_quad_mesh(10, 10))
    parts = spectral_bisection_partition(g, 2)
    assert edge_cut(parts, g) <= 14  # minimum is 10


def test_deterministic():
    g = element_dual_graph(structured_quad_mesh(6, 6))
    a = spectral_bisection_partition(g, 4)
    b = spectral_bisection_partition(g, 4)
    assert np.array_equal(a, b)


def test_validation():
    g = nx.path_graph(4)
    with pytest.raises(ValueError):
        spectral_bisection_partition(g, 0)
    with pytest.raises(ValueError):
        spectral_bisection_partition(g, 5)
    h = nx.Graph()
    h.add_edge("a", "b")
    with pytest.raises(ValueError):
        spectral_bisection_partition(h, 2)


def test_full_pipeline_with_spectral_partition():
    from repro.core.driver import solve_cantilever
    from repro.core.options import SolverOptions
    from repro.fem.cantilever import cantilever_problem

    p = cantilever_problem(nx=6, ny=3)
    s = solve_cantilever(p, n_parts=4, options=SolverOptions(precond="gls(5)", partition_method="spectral", tol=1e-8))
    assert s.result.converged
    u_ref = np.linalg.solve(p.stiffness.toarray(), p.load)
    err = np.linalg.norm(s.result.x - u_ref) / np.linalg.norm(u_ref)
    assert err < 1e-6


def test_unstructured_plate_partition():
    mesh = perforated_plate(nx=16, ny=8, hole_radius=0.2)
    part = ElementPartition.build(mesh, 4, method="spectral")
    sizes = part.sizes()
    assert sizes.sum() == mesh.n_elements
    assert sizes.max() - sizes.min() <= max(2, mesh.n_elements // 50)
