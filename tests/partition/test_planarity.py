"""Section 5's planarity remark.

The paper's footnote: "In finite element analysis, G(K) is planar for a
3-noded triangular element" — and the text argues that higher-order
elements (4-noded quadrilaterals etc.) make G(K) non-planar, degrading the
scalability of row-based sparse matvec.  networkx can check this exactly.
"""

import networkx as nx

from repro.fem.mesh import structured_quad_mesh, structured_tri_mesh
from repro.partition.dual_graph import node_graph


def test_t3_node_graph_is_planar():
    mesh = structured_tri_mesh(6, 4)
    planar, _ = nx.check_planarity(node_graph(mesh))
    assert planar


def test_q4_node_graph_is_not_planar():
    """Q4 couples all 4 nodes of each cell pairwise; adjacent cells create
    K5/K3,3 minors."""
    mesh = structured_quad_mesh(6, 4)
    planar, _ = nx.check_planarity(node_graph(mesh))
    assert not planar


def test_single_q4_element_still_planar():
    """One quad alone (a 4-clique) is planar; non-planarity emerges from
    the assembled mesh."""
    mesh = structured_quad_mesh(1, 1)
    planar, _ = nx.check_planarity(node_graph(mesh))
    assert planar


def test_h8_node_graph_not_planar():
    from repro.fem.three_d import structured_hex_mesh

    mesh = structured_hex_mesh(2, 2, 2)
    planar, _ = nx.check_planarity(node_graph(mesh))
    assert not planar
