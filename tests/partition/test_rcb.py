"""Recursive coordinate bisection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition.rcb import recursive_coordinate_bisection


def _grid_points(nx, ny):
    xx, yy = np.meshgrid(np.arange(nx), np.arange(ny), indexing="xy")
    return np.column_stack([xx.ravel(), yy.ravel()]).astype(float)


def test_two_parts_split_longest_axis():
    pts = _grid_points(8, 2)
    parts = recursive_coordinate_bisection(pts, 2)
    # longest axis is x: left half part 0, right half part 1
    left = pts[parts == 0][:, 0]
    right = pts[parts == 1][:, 0]
    assert left.max() < right.min()


def test_balanced_power_of_two():
    pts = _grid_points(8, 8)
    parts = recursive_coordinate_bisection(pts, 4)
    sizes = np.bincount(parts)
    assert np.array_equal(sizes, [16, 16, 16, 16])


def test_non_power_of_two_balanced():
    pts = _grid_points(9, 7)
    parts = recursive_coordinate_bisection(pts, 3)
    sizes = np.bincount(parts, minlength=3)
    assert sizes.max() - sizes.min() <= 1
    assert sizes.sum() == 63


def test_single_part():
    pts = _grid_points(3, 3)
    parts = recursive_coordinate_bisection(pts, 1)
    assert np.all(parts == 0)


def test_deterministic():
    pts = _grid_points(10, 10)
    a = recursive_coordinate_bisection(pts, 8)
    b = recursive_coordinate_bisection(pts, 8)
    assert np.array_equal(a, b)


def test_more_parts_than_points_rejected():
    with pytest.raises(ValueError):
        recursive_coordinate_bisection(np.zeros((2, 2)), 3)


def test_invalid_inputs():
    with pytest.raises(ValueError):
        recursive_coordinate_bisection(np.zeros((4, 2)), 0)
    with pytest.raises(ValueError):
        recursive_coordinate_bisection(np.zeros(4), 2)


def test_coincident_points_still_partition():
    pts = np.zeros((10, 2))
    parts = recursive_coordinate_bisection(pts, 5)
    assert np.array_equal(np.bincount(parts), [2] * 5)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 60),
    p=st.integers(1, 8),
    seed=st.integers(0, 1000),
)
def test_partition_complete_and_balanced(n, p, seed):
    """Property: every point assigned, sizes within one per level."""
    if p > n:
        p = n
    pts = np.random.default_rng(seed).random((n, 2))
    parts = recursive_coordinate_bisection(pts, p)
    sizes = np.bincount(parts, minlength=p)
    assert sizes.sum() == n
    assert (sizes > 0).all()
    # proportional splitting keeps imbalance small
    assert sizes.max() - sizes.min() <= max(2, n // p)
