"""Subdomain maps: the B_s operators and the interface exchange plan."""

import numpy as np
import pytest

from repro.fem.bc import clamp_edge_dofs
from repro.fem.mesh import structured_quad_mesh
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map


@pytest.fixture
def strip_case():
    mesh = structured_quad_mesh(4, 2)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition(mesh, np.array([0, 0, 1, 1] * 2), 2)
    return mesh, bc, build_subdomain_map(mesh, part, bc)


def test_multiplicity_interior_one_interface_two(strip_case):
    _, _, submap = strip_case
    assert submap.multiplicity.min() == 1
    assert submap.multiplicity.max() == 2
    # interface at x=2: 3 nodes x 2 dofs
    assert len(submap.interface_dofs()) == 6


def test_l2g_sorted_and_in_range(strip_case):
    _, bc, submap = strip_case
    for g in submap.l2g:
        assert np.all(np.diff(g) > 0)
        assert g.min() >= 0 and g.max() < bc.n_free


def test_shared_lists_symmetric(strip_case):
    _, _, submap = strip_case
    assert submap.neighbors(0) == [1]
    assert submap.neighbors(1) == [0]
    assert len(submap.shared[0][1]) == len(submap.shared[1][0]) == 6
    assert submap.exchange_words(0) == 6


def test_shared_local_indices_map_to_same_globals(strip_case):
    _, _, submap = strip_case
    g0 = submap.l2g[0][submap.shared[0][1]]
    g1 = submap.l2g[1][submap.shared[1][0]]
    assert np.array_equal(np.sort(g0), np.sort(g1))


def test_restrict_assemble_roundtrip(strip_case):
    """assemble(ownership-masked restrict(x)) == x, and
    assemble(restrict(x)) counts interface dofs with multiplicity."""
    _, bc, submap = strip_case
    x = np.random.default_rng(0).standard_normal(bc.n_free)
    parts = submap.restrict(x)
    assembled = submap.assemble(parts)
    assert np.allclose(assembled, submap.multiplicity * x)


def test_uncovered_dof_rejected():
    mesh = structured_quad_mesh(2, 1)
    bc = clamp_edge_dofs(mesh, "left")
    # assign both elements to part 0 of a claimed 2-part partition: part 1
    # covers nothing, but all dofs are still covered -> fine
    part = ElementPartition(mesh, np.array([0, 0]), 2)
    with pytest.raises(ValueError):
        # part 1 has no elements -> its l2g is empty, but coverage of free
        # dofs is complete, so instead check multiplicty path via an
        # artificial bc that frees a node no element covers.
        from repro.fem.bc import DirichletBC

        bad_bc = DirichletBC(mesh.n_dofs + 2, np.array([0]))
        build_subdomain_map(mesh, part, bad_bc)


def test_four_way_corner_sharing():
    """2x2 partition of a 2x2 mesh: the centre node is shared by all four."""
    mesh = structured_quad_mesh(2, 2)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition(mesh, np.array([0, 1, 2, 3]), 4)
    submap = build_subdomain_map(mesh, part, bc)
    assert submap.multiplicity.max() == 4
    # every subdomain neighbours every other through the centre node
    for s in range(4):
        assert len(submap.neighbors(s)) == 3
