"""Mesh connectivity graphs."""

import networkx as nx
import numpy as np

from repro.fem.mesh import structured_quad_mesh, structured_tri_mesh, truss_mesh
from repro.partition.dual_graph import (
    element_dual_graph,
    interface_nodes,
    node_graph,
)


def test_quad_dual_graph_is_grid():
    mesh = structured_quad_mesh(3, 2)
    g = element_dual_graph(mesh)
    assert g.number_of_nodes() == 6
    # 3x2 element grid: 2*(3-1) + 3*(2-1) edge-adjacencies... rows: per row
    # nx-1 horizontal pairs x ny rows + nx vertical pairs x (ny-1)
    assert g.number_of_edges() == 2 * 2 + 3 * 1


def test_dual_graph_connected():
    g = element_dual_graph(structured_quad_mesh(5, 4))
    assert nx.is_connected(g)


def test_tri_dual_graph_excludes_corner_contact():
    """Triangles sharing only one node are not dual-adjacent."""
    mesh = structured_tri_mesh(2, 1)
    g = element_dual_graph(mesh)
    # 4 triangles; each quad's pair shares the diagonal; neighbours across
    # the vertical midline share an edge.
    assert g.number_of_nodes() == 4
    for u, v in g.edges:
        shared = set(mesh.elements[u]) & set(mesh.elements[v])
        assert len(shared) >= 2


def test_truss_dual_uses_single_shared_node():
    g = element_dual_graph(truss_mesh(4))
    assert g.number_of_edges() == 3  # chain


def test_node_graph_matches_matrix_adjacency():
    mesh = structured_quad_mesh(2, 2)
    g = node_graph(mesh)
    # interior node (4) is connected to all others in its 4 elements: all 8
    assert g.degree[4] == 8
    assert nx.is_connected(g)


def test_interface_nodes_strip_partition():
    mesh = structured_quad_mesh(4, 1, lx=4.0)
    parts = np.array([0, 0, 1, 1])
    iface = interface_nodes(mesh, parts)
    # boundary between elements 1 and 2 at x=2: one node per mesh row
    xs = mesh.coords[iface, 0]
    assert np.allclose(xs, 2.0)
    assert len(iface) == 2


def test_interface_nodes_empty_for_single_part():
    mesh = structured_quad_mesh(3, 3)
    assert len(interface_nodes(mesh, np.zeros(9, dtype=int))) == 0
