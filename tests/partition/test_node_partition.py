"""Node-based (row/RDD) partitions."""

import numpy as np
import pytest

from repro.fem.mesh import structured_quad_mesh
from repro.partition.node_partition import NodePartition


def test_build_balanced():
    mesh = structured_quad_mesh(5, 3)  # 24 nodes
    part = NodePartition.build(mesh, 4)
    sizes = part.sizes()
    assert sizes.sum() == 24
    assert sizes.max() - sizes.min() <= 1


def test_dof_parts_inherit_node_parts():
    mesh = structured_quad_mesh(3, 1)
    part = NodePartition.build(mesh, 2)
    dp = part.dof_parts()
    assert len(dp) == mesh.n_dofs
    assert np.array_equal(dp[0::2], part.parts)
    assert np.array_equal(dp[1::2], part.parts)


def test_subdomain_nodes_disjoint_cover():
    mesh = structured_quad_mesh(4, 4)
    part = NodePartition.build(mesh, 3)
    allnodes = np.concatenate([part.subdomain_nodes(s) for s in range(3)])
    assert np.array_equal(np.sort(allnodes), np.arange(25))


def test_duplicated_elements_fig8_overhead():
    """Every element touching a rank's nodes is replicated there (Fig. 8):
    interface elements are counted more than once overall."""
    mesh = structured_quad_mesh(4, 4)
    part = NodePartition.build(mesh, 4)
    dup = part.duplicated_elements()
    assert dup.sum() > mesh.n_elements  # strictly redundant
    assert (dup > 0).all()


def test_duplicated_elements_single_rank():
    mesh = structured_quad_mesh(3, 3)
    part = NodePartition.build(mesh, 1)
    assert part.duplicated_elements().sum() == mesh.n_elements


def test_greedy_method():
    mesh = structured_quad_mesh(4, 4)
    part = NodePartition.build(mesh, 2, method="greedy")
    assert part.sizes().sum() == 25


def test_unknown_method():
    mesh = structured_quad_mesh(2, 2)
    with pytest.raises(ValueError):
        NodePartition.build(mesh, 2, method="simulated-annealing")


def test_validation():
    mesh = structured_quad_mesh(2, 2)
    with pytest.raises(ValueError):
        NodePartition(mesh, np.zeros(4, dtype=int), 1)
