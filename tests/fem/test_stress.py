"""Stress recovery."""

import numpy as np
import pytest

from repro.fem.material import Material
from repro.fem.mesh import structured_quad_mesh, structured_tri_mesh
from repro.fem.stress import (
    element_stresses,
    nodal_stresses,
    stress_concentration_factor,
    von_mises,
)

MAT = Material(E=100.0, nu=0.3)


def _uniaxial_field(mesh, strain=0.01):
    """u_x = strain * x, u_y = -nu * strain * y: uniaxial stress state."""
    u = np.zeros(mesh.n_dofs)
    u[0::2] = strain * mesh.coords[:, 0]
    u[1::2] = -MAT.nu * strain * mesh.coords[:, 1]
    return u


def test_uniaxial_stress_exact_q4():
    mesh = structured_quad_mesh(3, 2)
    u = _uniaxial_field(mesh)
    sig = element_stresses(mesh, MAT, u)
    expected_sxx = MAT.E * 0.01  # uniaxial: sigma_xx = E*eps
    assert np.allclose(sig[:, 0], expected_sxx, rtol=1e-12)
    assert np.allclose(sig[:, 1], 0.0, atol=1e-10)
    assert np.allclose(sig[:, 2], 0.0, atol=1e-12)


def test_uniaxial_stress_exact_t3():
    mesh = structured_tri_mesh(3, 2)
    u = _uniaxial_field(mesh)
    sig = element_stresses(mesh, MAT, u)
    assert np.allclose(sig[:, 0], MAT.E * 0.01, rtol=1e-12)


def test_pure_shear():
    mesh = structured_quad_mesh(2, 2)
    gamma = 0.02
    u = np.zeros(mesh.n_dofs)
    u[0::2] = gamma * mesh.coords[:, 1]  # u_x = gamma*y
    sig = element_stresses(mesh, MAT, u)
    g = MAT.E / (2 * (1 + MAT.nu))
    assert np.allclose(sig[:, 2], g * gamma, rtol=1e-12)
    assert np.allclose(sig[:, 0], 0.0, atol=1e-10)


def test_nodal_averaging_constant_field():
    mesh = structured_quad_mesh(3, 3)
    sig_e = np.tile([5.0, 1.0, 0.5], (mesh.n_elements, 1))
    sig_n = nodal_stresses(mesh, sig_e)
    assert np.allclose(sig_n, [5.0, 1.0, 0.5])


def test_von_mises_known_values():
    assert von_mises(np.array([1.0, 0.0, 0.0])) == pytest.approx(1.0)
    assert von_mises(np.array([0.0, 0.0, 1.0])) == pytest.approx(np.sqrt(3))
    assert von_mises(np.array([1.0, 1.0, 0.0])) == pytest.approx(1.0)


def test_full_vector_required():
    mesh = structured_quad_mesh(2, 2)
    with pytest.raises(ValueError, match="all DOFs"):
        element_stresses(mesh, MAT, np.zeros(3))


def test_unsupported_element_type():
    from repro.fem.mesh import truss_mesh

    with pytest.raises(ValueError, match="unsupported"):
        element_stresses(truss_mesh(2), MAT, np.zeros(3))


def test_scf_uniform_plate_is_one():
    """No hole, uniform tension: SCF == 1."""
    mesh = structured_quad_mesh(4, 4)
    u = _uniaxial_field(mesh)
    scf = stress_concentration_factor(mesh, MAT, u, far_field=MAT.E * 0.01)
    assert scf == pytest.approx(1.0, rel=1e-10)


def test_scf_perforated_plate_well_above_one():
    """Central hole under tension concentrates stress (Kirsch: 3 for an
    infinite plate; finite width and a coarse mesh give a lower but
    clearly amplified value)."""
    from repro.fem.assembly import assemble_matrix
    from repro.fem.bc import apply_dirichlet, clamp_edge_dofs
    from repro.fem.loads import edge_traction_load
    from repro.fem.unstructured import perforated_plate

    mesh = perforated_plate(nx=32, ny=16, lx=4.0, ly=2.0, hole_radius=0.25)
    bc = clamp_edge_dofs(mesh, "left")
    t = 1.0
    f = edge_traction_load(mesh, "right", (t, 0.0))
    k = assemble_matrix(mesh, MAT)
    k_red, f_red = apply_dirichlet(k, f, bc)
    u = bc.expand(np.linalg.solve(k_red.toarray(), f_red))
    scf = stress_concentration_factor(mesh, MAT, u, far_field=t)
    assert scf > 1.8


def test_3d_uniaxial_stress_exact():
    from repro.fem.stress import element_stresses_3d
    from repro.fem.three_d import structured_hex_mesh

    mat3 = Material(E=50.0, nu=0.0)
    mesh = structured_hex_mesh(2, 2, 2)
    strain = 0.01
    u = np.zeros(mesh.n_dofs)
    u[0::3] = strain * mesh.coords[:, 0]
    sig = element_stresses_3d(mesh, mat3, u)
    assert np.allclose(sig[:, 0], mat3.E * strain, rtol=1e-12)
    assert np.allclose(sig[:, 1:], 0.0, atol=1e-10)


def test_3d_von_mises_uniaxial():
    sig = np.array([2.0, 0.0, 0.0, 0.0, 0.0, 0.0])
    assert von_mises(sig) == pytest.approx(2.0)
    # hydrostatic state has zero von Mises stress
    hydro = np.array([3.0, 3.0, 3.0, 0.0, 0.0, 0.0])
    assert von_mises(hydro) == pytest.approx(0.0)


def test_von_mises_bad_width():
    with pytest.raises(ValueError):
        von_mises(np.zeros(4))


def test_3d_wrong_mesh_type():
    from repro.fem.stress import element_stresses_3d

    mesh = structured_quad_mesh(2, 2)
    with pytest.raises(ValueError, match="h8"):
        element_stresses_3d(mesh, MAT, np.zeros(mesh.n_dofs))
