"""Unstructured Delaunay meshes and the full pipeline on them."""

import numpy as np
import pytest

from repro.fem.assembly import assemble_matrix
from repro.fem.bc import apply_dirichlet, clamp_edge_dofs
from repro.fem.loads import edge_traction_load
from repro.fem.material import Material
from repro.fem.unstructured import delaunay_mesh, perforated_plate

MAT = Material(E=100.0, nu=0.3)


def test_mesh_covers_domain_area():
    mesh = delaunay_mesh(8, 6, lx=2.0, ly=1.5, jitter=0.2)
    total = 0.0
    for e in range(mesh.n_elements):
        c = mesh.element_coords(e)
        total += 0.5 * (
            (c[1, 0] - c[0, 0]) * (c[2, 1] - c[0, 1])
            - (c[2, 0] - c[0, 0]) * (c[1, 1] - c[0, 1])
        )
    assert total == pytest.approx(3.0, rel=1e-10)


def test_all_triangles_counterclockwise():
    mesh = delaunay_mesh(10, 10, jitter=0.3, seed=3)
    for e in range(mesh.n_elements):
        c = mesh.element_coords(e)
        area2 = (c[1, 0] - c[0, 0]) * (c[2, 1] - c[0, 1]) - (
            c[2, 0] - c[0, 0]
        ) * (c[1, 1] - c[0, 1])
        assert area2 > 0


def test_boundary_points_preserved():
    mesh = delaunay_mesh(6, 4, lx=3.0, ly=2.0, jitter=0.4, seed=1)
    x, y = mesh.coords[:, 0], mesh.coords[:, 1]
    assert np.isclose(x.min(), 0.0) and np.isclose(x.max(), 3.0)
    # left edge still has ny+1 = 5 exactly-on-boundary nodes
    assert np.count_nonzero(np.abs(x) < 1e-12) == 5


def test_jitter_validation():
    with pytest.raises(ValueError):
        delaunay_mesh(4, 4, jitter=0.6)
    with pytest.raises(ValueError):
        delaunay_mesh(1, 4)


def test_perforated_plate_removes_hole():
    mesh = perforated_plate(nx=16, ny=8, hole_radius=0.25)
    centroids = mesh.element_centroids()
    d2 = (centroids[:, 0] - 1.0) ** 2 + (centroids[:, 1] - 0.5) ** 2
    assert d2.min() > 0.25**2 * 0.4  # no element deep inside the hole


def test_hole_too_big_rejected():
    with pytest.raises(ValueError):
        perforated_plate(hole_radius=0.6, ly=1.0)


def test_unused_nodes_dropped():
    mesh = perforated_plate(nx=20, ny=10, hole_radius=0.3)
    used = np.unique(mesh.elements.ravel())
    assert len(used) == mesh.n_nodes


def test_assembled_system_spd_and_solvable():
    mesh = perforated_plate(nx=16, ny=8, hole_radius=0.2)
    bc = clamp_edge_dofs(mesh, "left")
    f = edge_traction_load(mesh, "right", (1.0, 0.0))
    k = assemble_matrix(mesh, MAT)
    k_red, f_red = apply_dirichlet(k, f, bc)
    evals = np.linalg.eigvalsh(k_red.toarray())
    assert evals.min() > 0
    u = np.linalg.solve(k_red.toarray(), f_red)
    assert bc.expand(u)[0::2].max() > 0


def test_full_edd_pipeline_on_perforated_plate():
    """Unstructured non-convex domain through partition + EDD + GLS."""
    from repro.core.distributed import build_edd_system
    from repro.core.edd import edd_fgmres
    from repro.partition.element_partition import ElementPartition
    from repro.precond.gls import GLSPolynomial

    mesh = perforated_plate(nx=16, ny=8, hole_radius=0.2)
    bc = clamp_edge_dofs(mesh, "left")
    f = edge_traction_load(mesh, "right", (1.0, 0.0))
    part = ElementPartition.build(mesh, 4, method="greedy")
    system = build_edd_system(mesh, MAT, bc, part, f)
    res = edd_fgmres(system, GLSPolynomial.unit_interval(7, eps=1e-6), tol=1e-8)
    assert res.converged
    k = assemble_matrix(mesh, MAT)
    k_red, f_red = apply_dirichlet(k, f, bc)
    u_ref = np.linalg.solve(k_red.toarray(), f_red)
    err = np.linalg.norm(res.x - u_ref) / np.linalg.norm(u_ref)
    assert err < 1e-6
