"""Structured mesh generators."""

import numpy as np
import pytest

from repro.fem.mesh import (
    Mesh,
    structured_quad_mesh,
    structured_tri_mesh,
    truss_mesh,
)


def test_quad_mesh_counts():
    m = structured_quad_mesh(3, 2)
    assert m.n_nodes == 12
    assert m.n_elements == 6
    assert m.n_dofs == 24


def test_quad_mesh_connectivity_counterclockwise():
    m = structured_quad_mesh(2, 2, lx=2.0, ly=2.0)
    for e in range(m.n_elements):
        c = m.element_coords(e)
        # shoelace area positive => counterclockwise
        area = 0.5 * np.sum(
            c[:, 0] * np.roll(c[:, 1], -1) - np.roll(c[:, 0], -1) * c[:, 1]
        )
        assert area > 0


def test_quad_mesh_covers_domain():
    m = structured_quad_mesh(4, 3, lx=4.0, ly=3.0)
    assert m.coords[:, 0].min() == 0.0
    assert m.coords[:, 0].max() == 4.0
    assert m.coords[:, 1].max() == 3.0


def test_tri_mesh_doubles_elements():
    q = structured_quad_mesh(3, 2)
    t = structured_tri_mesh(3, 2)
    assert t.n_elements == 2 * q.n_elements
    assert t.n_nodes == q.n_nodes
    # total area preserved
    total = 0.0
    for e in range(t.n_elements):
        c = t.element_coords(e)
        total += 0.5 * abs(
            (c[1, 0] - c[0, 0]) * (c[2, 1] - c[0, 1])
            - (c[2, 0] - c[0, 0]) * (c[1, 1] - c[0, 1])
        )
    assert np.isclose(total, 1.0)


def test_truss_mesh_fig5():
    m = truss_mesh(2)
    assert m.n_nodes == 3
    assert m.n_elements == 2
    assert m.dofs_per_node == 1
    assert np.array_equal(m.elements, [[0, 1], [1, 2]])


def test_nodes_on_predicate():
    m = structured_quad_mesh(2, 2)
    left = m.nodes_on(lambda x, y: x == 0.0)
    assert len(left) == 3


def test_element_centroids():
    m = structured_quad_mesh(1, 1)
    assert np.allclose(m.element_centroids(), [[0.5, 0.5]])


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        structured_quad_mesh(0, 1)
    with pytest.raises(ValueError):
        truss_mesh(0)


def test_mesh_validation():
    coords = np.zeros((2, 2))
    with pytest.raises(ValueError, match="missing node"):
        Mesh(coords, np.array([[0, 5, 1, 0]]), "q4")
    with pytest.raises(ValueError, match="need 4 nodes"):
        Mesh(coords, np.array([[0, 1]]), "q4")
