"""Element matrices: symmetry, definiteness, rigid-body modes, exact values."""

import numpy as np
import pytest

from repro.fem.elements import (
    q4_mass,
    q4_stiffness,
    t3_mass,
    t3_stiffness,
    truss_stiffness,
)
from repro.fem.material import Material

MAT = Material(E=100.0, nu=0.3, rho=2.0, thickness=0.5)
UNIT_SQUARE = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
TRI = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])


def test_q4_stiffness_symmetric_psd():
    ke = q4_stiffness(UNIT_SQUARE, MAT)
    assert np.allclose(ke, ke.T)
    evals = np.linalg.eigvalsh(ke)
    assert evals.min() > -1e-10


def test_q4_stiffness_rigid_body_modes():
    """Three zero-energy modes: two translations, one rotation."""
    ke = q4_stiffness(UNIT_SQUARE, MAT)
    evals = np.linalg.eigvalsh(ke)
    assert np.sum(np.abs(evals) < 1e-9 * np.abs(evals).max()) == 3
    tx = np.tile([1.0, 0.0], 4)
    ty = np.tile([0.0, 1.0], 4)
    assert np.allclose(ke @ tx, 0.0, atol=1e-10)
    assert np.allclose(ke @ ty, 0.0, atol=1e-10)
    rot = np.column_stack([-UNIT_SQUARE[:, 1], UNIT_SQUARE[:, 0]]).ravel()
    assert np.allclose(ke @ rot, 0.0, atol=1e-9)


def test_q4_stiffness_scales_with_thickness():
    thick = Material(E=100.0, nu=0.3, thickness=2.0)
    thin = Material(E=100.0, nu=0.3, thickness=1.0)
    assert np.allclose(
        q4_stiffness(UNIT_SQUARE, thick), 2 * q4_stiffness(UNIT_SQUARE, thin)
    )


def test_q4_stiffness_translation_invariant():
    shifted = UNIT_SQUARE + np.array([5.0, -3.0])
    assert np.allclose(q4_stiffness(UNIT_SQUARE, MAT), q4_stiffness(shifted, MAT))


def test_q4_inverted_element_rejected():
    cw = UNIT_SQUARE[::-1]
    with pytest.raises(ValueError, match="degenerate or inverted"):
        q4_stiffness(cw, MAT)


def test_q4_wrong_shape_rejected():
    with pytest.raises(ValueError):
        q4_stiffness(UNIT_SQUARE[:3], MAT)


def test_q4_mass_total():
    """Row sums of the consistent mass reproduce total mass per direction."""
    me = q4_mass(UNIT_SQUARE, MAT)
    total = MAT.rho * MAT.thickness * 1.0  # area = 1
    tx = np.tile([1.0, 0.0], 4)
    assert np.isclose(tx @ me @ tx, total)
    assert np.allclose(me, me.T)
    assert np.linalg.eigvalsh(me).min() > 0


def test_t3_stiffness_symmetric_with_rigid_modes():
    ke = t3_stiffness(TRI, MAT)
    assert np.allclose(ke, ke.T)
    evals = np.linalg.eigvalsh(ke)
    assert np.sum(np.abs(evals) < 1e-9 * np.abs(evals).max()) == 3


def test_t3_inverted_rejected():
    with pytest.raises(ValueError, match="degenerate or inverted"):
        t3_stiffness(TRI[::-1], MAT)


def test_t3_mass_total():
    me = t3_mass(TRI, MAT)
    total = MAT.rho * MAT.thickness * 0.5
    tx = np.array([1.0, 0.0] * 3)
    assert np.isclose(tx @ me @ tx, total)


def test_two_t3_equal_one_q4_for_constant_strain():
    """Pure axial stretch: the T3 pair and the Q4 give the same energy."""
    u = np.zeros(8)
    u[0::2] = UNIT_SQUARE[:, 0] * 0.01  # u_x = 0.01 * x
    kq = q4_stiffness(UNIT_SQUARE, MAT)
    e_q4 = u @ kq @ u
    t1 = UNIT_SQUARE[[0, 1, 2]]
    t2 = UNIT_SQUARE[[0, 2, 3]]
    k1 = t3_stiffness(t1, MAT)
    k2 = t3_stiffness(t2, MAT)
    u1 = np.zeros(6)
    u1[0::2] = t1[:, 0] * 0.01
    u2 = np.zeros(6)
    u2[0::2] = t2[:, 0] * 0.01
    assert np.isclose(u1 @ k1 @ u1 + u2 @ k2 @ u2, e_q4, rtol=1e-10)


def test_truss_stiffness_exact():
    ke = truss_stiffness(length=2.0, area=3.0, youngs=4.0)
    assert np.allclose(ke, 6.0 * np.array([[1, -1], [-1, 1]]))


def test_truss_zero_length_rejected():
    with pytest.raises(ValueError):
        truss_stiffness(0.0, 1.0, 1.0)
