"""Manufactured-solution verification: patch tests and convergence order."""

import numpy as np
import pytest

from repro.fem.material import Material
from repro.fem.mesh import refine_quad_mesh, structured_quad_mesh
from repro.fem.verification import (
    body_force_load,
    convergence_study,
    dirichlet_from_exact,
    nodal_error,
    solve_manufactured,
)

MAT = Material(E=10.0, nu=0.3)


def test_refine_quad_mesh_counts():
    mesh = structured_quad_mesh(2, 3)
    fine = refine_quad_mesh(mesh)
    assert fine.n_elements == 4 * mesh.n_elements
    # nodes: (2n+1)(2m+1) for a structured grid
    assert fine.n_nodes == 5 * 7


def test_refine_preserves_area_and_orientation():
    mesh = refine_quad_mesh(structured_quad_mesh(3, 2, lx=3.0, ly=2.0))
    total = 0.0
    for e in range(mesh.n_elements):
        c = mesh.element_coords(e)
        area = 0.5 * np.sum(
            c[:, 0] * np.roll(c[:, 1], -1) - np.roll(c[:, 0], -1) * c[:, 1]
        )
        assert area > 0
        total += area
    assert total == pytest.approx(6.0)


def test_refine_rejects_non_q4():
    from repro.fem.mesh import structured_tri_mesh

    with pytest.raises(ValueError):
        refine_quad_mesh(structured_tri_mesh(2, 2))


def test_body_force_total():
    mesh = structured_quad_mesh(4, 4, lx=2.0, ly=2.0)
    f = body_force_load(mesh, lambda x, y: (3.0, -1.0))
    assert f[0::2].sum() == pytest.approx(3.0 * 4.0)  # force density x area
    assert f[1::2].sum() == pytest.approx(-1.0 * 4.0)


def test_body_force_q4_only():
    from repro.fem.mesh import structured_tri_mesh

    with pytest.raises(ValueError):
        body_force_load(structured_tri_mesh(2, 2), lambda x, y: (1.0, 0.0))


def test_patch_test_linear_field_exact():
    """The patch test: a linear exact field with zero body force must be
    reproduced to machine precision on a distorted-free mesh."""

    def exact(x, y):
        return 0.003 * x + 0.001 * y, -0.002 * x + 0.004 * y

    mesh = structured_quad_mesh(3, 3)
    u = solve_manufactured(mesh, MAT, exact, lambda x, y: (0.0, 0.0))
    assert nodal_error(mesh, u, exact) < 1e-12


def test_dirichlet_from_exact_covers_boundary():
    mesh = structured_quad_mesh(3, 3)
    bc, u_fixed = dirichlet_from_exact(mesh, lambda x, y: (x, y))
    # 3x3 grid: boundary nodes = 16 - 4 interior = 12
    assert len(bc.fixed) == 2 * 12
    assert u_fixed[0] == mesh.coords[0, 0]


def test_quadratic_field_nodally_superconvergent():
    """On a uniform grid with constant body force, bilinear FEM is nodally
    exact for separable quadratic fields — a classical superconvergence
    result, and a strong end-to-end consistency check of the body-force
    integration."""
    e, nu = MAT.E, MAT.nu
    c = e / (1 - nu * nu)

    def exact(x, y):
        return x * x * 0.01, y * y * 0.01

    def force(x, y):
        return -c * 0.02, -c * 0.02

    mesh = structured_quad_mesh(5, 5)
    u = solve_manufactured(mesh, MAT, exact, force)
    assert nodal_error(mesh, u, exact) < 1e-10


def test_sine_manufactured_convergence_order_two():
    """Non-polynomial manufactured solution: the observed h-refinement
    order of the nodal L2 error is ~2 for bilinear elements."""

    def exact(x, y):
        return np.sin(np.pi * x) * 0.01, 0.0

    e, nu = MAT.E, MAT.nu
    c = e / (1 - nu * nu)

    def force(x, y):
        # u = (0.01 sin(pi x), 0): sigma_xx = c*0.01*pi*cos(pi x), all
        # other stress derivatives vanish -> f = (c*0.01*pi^2*sin(pi x), 0)
        return c * 0.01 * np.pi**2 * np.sin(np.pi * x), 0.0

    study = convergence_study(exact, force, MAT, n_levels=3, n0=4)
    assert np.all(np.diff(study.errors) < 0)
    assert study.observed_order > 1.6  # asymptotic order is 2
