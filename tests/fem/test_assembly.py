"""Global assembly: correctness against hand-assembled references and the
subset-assembly property EDD relies on."""

import numpy as np
import pytest

from repro.fem.assembly import assemble_matrix, element_dof_map, element_matrices
from repro.fem.elements import q4_stiffness
from repro.fem.material import Material
from repro.fem.mesh import structured_quad_mesh, truss_mesh

MAT = Material(E=100.0, nu=0.3, rho=1.0, thickness=1.0)


def test_element_dof_map_interleaved():
    mesh = structured_quad_mesh(1, 1)
    dofs = element_dof_map(mesh)
    # nodes of the single element: 0,1,3,2 -> dofs interleaved
    assert np.array_equal(dofs[0], [0, 1, 2, 3, 6, 7, 4, 5])


def test_single_element_assembly_equals_element_matrix():
    mesh = structured_quad_mesh(1, 1)
    k = assemble_matrix(mesh, MAT).toarray()
    ke = q4_stiffness(mesh.element_coords(0), MAT)
    dofs = element_dof_map(mesh)[0]
    assert np.allclose(k[np.ix_(dofs, dofs)], ke)


def test_assembly_symmetric():
    mesh = structured_quad_mesh(3, 2)
    k = assemble_matrix(mesh, MAT).toarray()
    assert np.allclose(k, k.T)


def test_assembly_rigid_body_null_space():
    """Unconstrained global stiffness annihilates translations/rotation."""
    mesh = structured_quad_mesh(3, 2)
    k = assemble_matrix(mesh, MAT).toarray()
    tx = np.tile([1.0, 0.0], mesh.n_nodes)
    ty = np.tile([0.0, 1.0], mesh.n_nodes)
    rot = np.column_stack([-mesh.coords[:, 1], mesh.coords[:, 0]]).ravel()
    scale = np.abs(k).max()
    assert np.allclose(k @ tx, 0.0, atol=1e-9 * scale)
    assert np.allclose(k @ ty, 0.0, atol=1e-9 * scale)
    assert np.allclose(k @ rot, 0.0, atol=1e-9 * scale)


def test_subset_assembly_sums_to_full():
    """The EDD identity: sum of subdomain matrices == global matrix."""
    mesh = structured_quad_mesh(4, 3)
    full = assemble_matrix(mesh, MAT).toarray()
    half1 = assemble_matrix(
        mesh, MAT, element_subset=np.arange(0, 6)
    ).toarray()
    half2 = assemble_matrix(
        mesh, MAT, element_subset=np.arange(6, 12)
    ).toarray()
    assert np.allclose(half1 + half2, full)


def test_empty_subset_gives_zero_matrix():
    mesh = structured_quad_mesh(2, 2)
    coo = assemble_matrix(mesh, MAT, element_subset=np.array([], dtype=np.int64))
    assert coo.nnz == 0


def test_mass_assembly_total_mass():
    mesh = structured_quad_mesh(4, 2, lx=4.0, ly=2.0)
    m = assemble_matrix(mesh, MAT, "mass").toarray()
    tx = np.tile([1.0, 0.0], mesh.n_nodes)
    total = MAT.rho * MAT.thickness * 8.0  # area 4x2
    assert np.isclose(tx @ m @ tx, total)


def test_congruence_cache_consistency():
    """Structured mesh: all element matrices identical; stretched mesh: not."""
    mesh = structured_quad_mesh(3, 3)
    mats = element_matrices(mesh, MAT)
    assert np.allclose(mats[0], mats[-1])
    # Different element shapes must NOT be served from the cache.
    stretched = structured_quad_mesh(2, 1, lx=3.0, ly=1.0)
    stretched.coords[1, 0] = 1.0  # make the two elements incongruent
    mats2 = element_matrices(stretched, MAT)
    assert not np.allclose(mats2[0], mats2[1])


def test_truss_assembly_matches_fig5_global_matrix():
    """Eq. 29: two-element truss global stiffness."""
    mesh = truss_mesh(2, length=2.0)  # each element length 1
    mat = Material(E=7.0)
    k = assemble_matrix(mesh, mat, truss_area=3.0).toarray()
    ael = 21.0  # A*E/l
    expected = ael * np.array(
        [[1.0, -1.0, 0.0], [-1.0, 2.0, -1.0], [0.0, -1.0, 1.0]]
    )
    assert np.allclose(k, expected)


def test_unknown_kind_rejected():
    mesh = structured_quad_mesh(1, 1)
    with pytest.raises(ValueError):
        assemble_matrix(mesh, MAT, kind="damping")


def test_truss_mass_not_implemented():
    mesh = truss_mesh(2)
    with pytest.raises(NotImplementedError):
        assemble_matrix(mesh, MAT, kind="mass")
