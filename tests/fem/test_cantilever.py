"""The Table 2 mesh family and cantilever problem factory."""

import numpy as np
import pytest

from repro.fem.cantilever import (
    LARGE_MESHES,
    PAPER_MESHES,
    cantilever_problem,
    paper_mesh,
)


@pytest.mark.parametrize("k", list(PAPER_MESHES))
def test_table2_node_counts(k):
    mesh, _ = paper_mesh(k)
    assert mesh.n_nodes == PAPER_MESHES[k][2]


@pytest.mark.parametrize("k", [1, 2, 3, 4])
def test_table2_equation_counts(k):
    p = cantilever_problem(k)
    assert p.n_eqn == PAPER_MESHES[k][3]


@pytest.mark.parametrize("k", list(LARGE_MESHES))
def test_large_tier_node_counts(k):
    mesh, _ = paper_mesh(k)
    assert mesh.n_nodes == LARGE_MESHES[k][2]


def test_unknown_mesh_id():
    with pytest.raises(ValueError, match="Mesh1..Mesh10"):
        paper_mesh(14)


def test_explicit_dimensions():
    p = cantilever_problem(nx=3, ny=2)
    assert p.mesh.n_elements == 6
    # left edge clamped: 3 nodes x 2 dofs removed
    assert p.n_eqn == p.mesh.n_dofs - 6


def test_missing_dimensions_rejected():
    with pytest.raises(ValueError):
        cantilever_problem()


def test_stiffness_spd(tiny_problem):
    a = tiny_problem.stiffness.toarray()
    assert np.allclose(a, a.T)
    assert np.linalg.eigvalsh(a).min() > 0


def test_mass_spd(tiny_dynamic_problem):
    m = tiny_dynamic_problem.mass.toarray()
    assert np.allclose(m, m.T)
    assert np.linalg.eigvalsh(m).min() > 0


def test_mass_absent_by_default(tiny_problem):
    assert tiny_problem.mass is None


def test_pulling_load_is_axial(tiny_problem):
    """Default load: uniform x-traction on the right edge."""
    f = tiny_problem.load
    assert f.sum() > 0
    # expanded back to full dofs, all y-components vanish
    full = tiny_problem.bc.expand(f)
    assert np.allclose(full[1::2], 0.0)


def test_solution_physical(tiny_problem):
    """Pulling a cantilever to the right moves every free node right."""
    u = np.linalg.solve(tiny_problem.stiffness.toarray(), tiny_problem.load)
    full = tiny_problem.bc.expand(u)
    ux = full[0::2]
    assert ux.max() > 0
    # tip displacement largest at the loaded (right) edge
    tip_nodes = tiny_problem.mesh.nodes_on(lambda x, y: x == x.max())
    assert np.isclose(ux.max(), ux[tip_nodes].max())
