"""Scalar heat-conduction substrate and its ride through the solver stack."""

import numpy as np
import pytest

from repro.fem.mesh import structured_quad_mesh
from repro.fem.poisson import (
    assemble_conductivity,
    heat_problem,
    q4_conductivity,
    scalar_source_load,
)

UNIT = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])


def test_element_matrix_symmetric_psd():
    ke = q4_conductivity(UNIT, k=2.0)
    assert np.allclose(ke, ke.T)
    evals = np.linalg.eigvalsh(ke)
    assert evals.min() > -1e-12
    # one zero mode: the constant temperature field
    assert np.sum(np.abs(evals) < 1e-12) == 1
    assert np.allclose(ke @ np.ones(4), 0.0, atol=1e-13)


def test_element_matrix_scales_with_k():
    assert np.allclose(
        q4_conductivity(UNIT, k=3.0), 3.0 * q4_conductivity(UNIT, k=1.0)
    )


def test_invalid_conductivity():
    with pytest.raises(ValueError):
        q4_conductivity(UNIT, k=0.0)


def test_source_load_total():
    mesh = structured_quad_mesh(4, 4, lx=2.0, ly=1.0)
    f = scalar_source_load(mesh, lambda x, y: 3.0)
    assert f.sum() == pytest.approx(6.0)  # source density x area


def test_manufactured_sine_solution():
    """-lap(T) = 2 pi^2 sin(pi x) sin(pi y) has T = sin(pi x) sin(pi y)
    with zero boundary values; FEM converges to it."""
    p = heat_problem(
        nx=24,
        ny=24,
        source_fn=lambda x, y: 2
        * np.pi**2
        * np.sin(np.pi * x)
        * np.sin(np.pi * y),
    )
    t = np.linalg.solve(p.conductivity.toarray(), p.load)
    full = p.bc.expand(t)
    exact = np.sin(np.pi * p.mesh.coords[:, 0]) * np.sin(
        np.pi * p.mesh.coords[:, 1]
    )
    err = np.linalg.norm(full - exact) / np.linalg.norm(exact)
    assert err < 5e-3


def test_maximum_principle():
    """Unit source, zero boundary: temperature positive inside, maximal
    near the centre."""
    p = heat_problem(nx=12, ny=12)
    t = np.linalg.solve(p.conductivity.toarray(), p.load)
    assert (t > 0).all()
    full = p.bc.expand(t)
    centre = np.argmin(
        np.linalg.norm(p.mesh.coords - np.array([0.5, 0.5]), axis=1)
    )
    assert full[centre] == pytest.approx(full.max(), rel=1e-6)
    # textbook centre value of -lap T = 1 on the unit square: ~0.0737
    assert full[centre] == pytest.approx(0.0737, rel=0.02)


def test_scalar_mesh_validation():
    mesh = structured_quad_mesh(2, 2)  # dofs_per_node = 2
    with pytest.raises(ValueError, match="dofs_per_node"):
        assemble_conductivity(mesh)


def test_full_edd_pipeline_on_heat_problem():
    """The distributed solver stack is PDE-agnostic: the scalar system
    rides through partitioning, scaling, GLS and EDD-FGMRES via the
    generic assembler hook."""
    from repro.core.distributed import build_edd_system_from_assembler
    from repro.core.edd import edd_fgmres
    from repro.partition.element_partition import ElementPartition
    from repro.precond.gls import GLSPolynomial

    p = heat_problem(nx=16, ny=16)
    part = ElementPartition.build(p.mesh, 4)
    f_full = p.bc.expand(p.load)
    system = build_edd_system_from_assembler(
        p.mesh,
        p.bc,
        part,
        f_full,
        lambda elems: _subset_conductivity(p.mesh, elems),
    )
    res = edd_fgmres(system, GLSPolynomial.unit_interval(7, eps=1e-6), tol=1e-8)
    assert res.converged
    t_ref = np.linalg.solve(p.conductivity.toarray(), p.load)
    err = np.linalg.norm(res.x - t_ref) / np.linalg.norm(t_ref)
    assert err < 1e-6


def _subset_conductivity(mesh, elems):
    from repro.fem.poisson import q4_conductivity
    from repro.sparse.coo import COOMatrix

    rows, cols, data = [], [], []
    cache = {}
    for e in elems:
        conn = mesh.elements[e]
        coords = mesh.coords[conn]
        key = np.round(coords - coords[0], 12).tobytes()
        ke = cache.get(key)
        if ke is None:
            ke = q4_conductivity(coords)
            cache[key] = ke
        rows.append(np.repeat(conn, 4))
        cols.append(np.tile(conn, 4))
        data.append(ke.ravel())
    return COOMatrix(
        (mesh.n_nodes, mesh.n_nodes),
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(data),
    )
