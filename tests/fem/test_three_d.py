"""3-D elasticity substrate (H8 hexahedra)."""

import numpy as np
import pytest

from repro.fem.assembly import assemble_matrix
from repro.fem.material import Material
from repro.fem.three_d import (
    beam3d_problem,
    clamp_plane_dofs,
    elasticity_matrix_3d,
    face_traction_load,
    h8_mass,
    h8_shape,
    h8_stiffness,
    plane_nodes,
    structured_hex_mesh,
)

MAT = Material(E=10.0, nu=0.25, rho=3.0)
UNIT_CUBE = np.array(
    [
        [0, 0, 0],
        [1, 0, 0],
        [1, 1, 0],
        [0, 1, 0],
        [0, 0, 1],
        [1, 0, 1],
        [1, 1, 1],
        [0, 1, 1],
    ],
    dtype=float,
)


def test_constitutive_matrix_spd():
    d = elasticity_matrix_3d(MAT)
    assert np.allclose(d, d.T)
    assert np.linalg.eigvalsh(d).min() > 0


def test_shape_functions_partition_of_unity():
    for pt in [(-0.3, 0.7, 0.1), (0.0, 0.0, 0.0), (1.0, -1.0, 1.0)]:
        n, dn = h8_shape(*pt)
        assert np.isclose(n.sum(), 1.0)
        assert np.allclose(dn.sum(axis=1), 0.0, atol=1e-14)


def test_shape_functions_nodal():
    from repro.fem.three_d import _CORNERS

    for i, c in enumerate(_CORNERS):
        n, _ = h8_shape(*c)
        expected = np.zeros(8)
        expected[i] = 1.0
        assert np.allclose(n, expected)


def test_h8_stiffness_six_rigid_body_modes():
    ke = h8_stiffness(UNIT_CUBE, MAT)
    assert np.allclose(ke, ke.T)
    evals = np.linalg.eigvalsh(ke)
    assert (np.abs(evals) < 1e-9 * np.abs(evals).max()).sum() == 6


def test_h8_stiffness_translation_invariant():
    shifted = UNIT_CUBE + np.array([3.0, -1.0, 2.0])
    assert np.allclose(h8_stiffness(UNIT_CUBE, MAT), h8_stiffness(shifted, MAT))


def test_h8_inverted_rejected():
    bad = UNIT_CUBE.copy()
    bad[:, 2] *= -1  # mirrored: negative Jacobian
    with pytest.raises(ValueError, match="degenerate or inverted"):
        h8_stiffness(bad, MAT)


def test_h8_mass_total():
    me = h8_mass(UNIT_CUBE, MAT)
    tx = np.tile([1.0, 0.0, 0.0], 8)
    assert np.isclose(tx @ me @ tx, MAT.rho * 1.0)  # unit volume
    assert np.linalg.eigvalsh(me).min() > 0


def test_hex_mesh_counts():
    mesh = structured_hex_mesh(3, 2, 2)
    assert mesh.n_elements == 12
    assert mesh.n_nodes == 4 * 3 * 3
    assert mesh.n_dofs == 3 * 36
    assert mesh.element_type == "h8"


def test_hex_mesh_positive_jacobians():
    mesh = structured_hex_mesh(2, 2, 2, lx=2.0, ly=1.0, lz=3.0)
    for e in range(mesh.n_elements):
        h8_stiffness(mesh.element_coords(e), MAT)  # raises if inverted


def test_plane_nodes():
    mesh = structured_hex_mesh(2, 2, 2)
    assert len(plane_nodes(mesh, "x-")) == 9
    assert len(plane_nodes(mesh, "z+")) == 9
    with pytest.raises(ValueError):
        plane_nodes(mesh, "w+")


def test_clamp_plane():
    mesh = structured_hex_mesh(2, 1, 1)
    bc = clamp_plane_dofs(mesh, "x-")
    assert len(bc.fixed) == 3 * 4  # 4 nodes on x=0


def test_face_traction_total_force():
    mesh = structured_hex_mesh(3, 2, 2, lx=3.0, ly=2.0, lz=2.0)
    f = face_traction_load(mesh, "x+", (5.0, 0.0, 1.0))
    # face area = 2*2 = 4
    assert np.isclose(f[0::3].sum(), 20.0)
    assert np.isclose(f[1::3].sum(), 0.0)
    assert np.isclose(f[2::3].sum(), 4.0)


def test_face_traction_no_face_raises():
    mesh = structured_hex_mesh(1, 1, 1)
    with pytest.raises(ValueError, match="unknown plane"):
        face_traction_load(mesh, "q-", (1.0, 0.0, 0.0))


def test_beam_problem_spd_and_physical():
    p = beam3d_problem(4, 2, 2)
    a = p.stiffness.toarray()
    assert np.linalg.eigvalsh(a).min() > 0
    u = np.linalg.solve(a, p.load)
    full = p.bc.expand(u)
    assert full[0::3].max() > 0  # pulled in +x


def test_beam_mass_option():
    p = beam3d_problem(2, 1, 1, with_mass=True)
    assert p.mass is not None
    assert np.linalg.eigvalsh(p.mass.toarray()).min() > 0


def test_axial_patch_solution():
    """Uniform axial traction on a uniform bar: sigma_xx = traction, so
    u_x = (t/E) * x exactly for nu-compatible boundary conditions; with a
    fully clamped end the interior still matches within a few percent."""
    mat = Material(E=100.0, nu=0.0)  # nu=0 removes Poisson coupling
    p = beam3d_problem(6, 2, 2, material=mat)
    u = np.linalg.solve(p.stiffness.toarray(), p.load)
    full = p.bc.expand(u)
    x = p.mesh.coords[:, 0]
    ux = full[0::3]
    # with nu = 0 and full clamping the exact rod solution holds
    assert np.allclose(ux, x / mat.E, rtol=1e-8, atol=1e-12)


def test_full_edd_pipeline_3d():
    from repro.core.distributed import build_edd_system
    from repro.core.edd import edd_fgmres
    from repro.partition.element_partition import ElementPartition
    from repro.precond.gls import GLSPolynomial

    p = beam3d_problem(4, 2, 2)
    part = ElementPartition.build(p.mesh, 4)
    system = build_edd_system(
        p.mesh, p.material, p.bc, part, p.bc.expand(p.load)
    )
    res = edd_fgmres(system, GLSPolynomial.unit_interval(7, eps=1e-6), tol=1e-8)
    assert res.converged
    u_ref = np.linalg.solve(p.stiffness.toarray(), p.load)
    assert np.allclose(res.x, u_ref, rtol=1e-5, atol=1e-10)


def test_rdd_replication_worse_in_3d():
    """Section 5 drawback 1: the Fig. 8 element replication grows with
    dimensionality (more elements share each node)."""
    from repro.core.rdd import build_rdd_system
    from repro.fem.cantilever import cantilever_problem
    from repro.partition.node_partition import NodePartition

    p2 = cantilever_problem(nx=8, ny=8)
    n2 = NodePartition.build(p2.mesh, 8)
    r2 = build_rdd_system(p2.mesh, p2.bc, n2, p2.stiffness, p2.load)

    p3 = beam3d_problem(4, 4, 4)
    n3 = NodePartition.build(p3.mesh, 8)
    r3 = build_rdd_system(p3.mesh, p3.bc, n3, p3.stiffness, p3.load)
    assert r3.replication_factor() > r2.replication_factor() > 1.0
