"""Dirichlet boundary conditions and system reduction."""

import numpy as np
import pytest

from repro.fem.assembly import assemble_matrix
from repro.fem.bc import DirichletBC, apply_dirichlet, clamp_edge_dofs
from repro.fem.material import Material
from repro.fem.mesh import structured_quad_mesh

MAT = Material(E=100.0, nu=0.3)


def test_free_and_fixed_partition():
    bc = DirichletBC(6, np.array([1, 4]))
    assert np.array_equal(bc.free, [0, 2, 3, 5])
    assert bc.n_free == 4


def test_duplicate_fixed_deduplicated():
    bc = DirichletBC(4, np.array([2, 2, 0]))
    assert np.array_equal(bc.fixed, [0, 2])


def test_out_of_range_rejected():
    with pytest.raises(ValueError):
        DirichletBC(4, np.array([4]))


def test_full_to_free_mapping():
    bc = DirichletBC(5, np.array([0, 3]))
    assert np.array_equal(bc.full_to_free(), [-1, 0, 1, -1, 2])


def test_expand_inverts_reduction():
    bc = DirichletBC(5, np.array([2]))
    u_free = np.array([1.0, 2.0, 3.0, 4.0])
    full = bc.expand(u_free)
    assert np.array_equal(full, [1.0, 2.0, 0.0, 3.0, 4.0])
    assert np.array_equal(full[bc.free], u_free)


@pytest.mark.parametrize(
    "edge,expected_nodes", [("left", 3), ("right", 3), ("bottom", 4), ("top", 4)]
)
def test_clamp_edges(edge, expected_nodes):
    mesh = structured_quad_mesh(3, 2)
    bc = clamp_edge_dofs(mesh, edge)
    assert len(bc.fixed) == 2 * expected_nodes


def test_clamp_unknown_edge():
    mesh = structured_quad_mesh(2, 2)
    with pytest.raises(ValueError):
        clamp_edge_dofs(mesh, "diagonal")


def test_apply_dirichlet_makes_spd():
    """Clamping removes the rigid-body null space."""
    mesh = structured_quad_mesh(3, 2)
    bc = clamp_edge_dofs(mesh, "left")
    k = assemble_matrix(mesh, MAT)
    reduced, _ = apply_dirichlet(k, np.zeros(mesh.n_dofs), bc)
    evals = np.linalg.eigvalsh(reduced.toarray())
    assert evals.min() > 0


def test_apply_dirichlet_equals_dense_slicing():
    mesh = structured_quad_mesh(2, 2)
    bc = clamp_edge_dofs(mesh, "left")
    k = assemble_matrix(mesh, MAT)
    f = np.arange(float(mesh.n_dofs))
    reduced, f_red = apply_dirichlet(k, f, bc)
    free = bc.free
    assert np.allclose(reduced.toarray(), k.toarray()[np.ix_(free, free)])
    assert np.array_equal(f_red, f[free])


def test_apply_dirichlet_shape_checks():
    mesh = structured_quad_mesh(2, 2)
    bc = clamp_edge_dofs(mesh, "left")
    k = assemble_matrix(mesh, MAT)
    with pytest.raises(ValueError):
        apply_dirichlet(k, np.zeros(3), bc)
