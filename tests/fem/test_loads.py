"""Load vectors."""

import numpy as np
import pytest

from repro.fem.loads import edge_traction_load, point_load
from repro.fem.mesh import structured_quad_mesh, truss_mesh


def test_point_load_placement():
    mesh = structured_quad_mesh(2, 2)
    f = point_load(mesh, node=4, components=(3.0, -1.0))
    assert f[8] == 3.0
    assert f[9] == -1.0
    assert np.count_nonzero(f) == 2


def test_point_load_validation():
    mesh = structured_quad_mesh(2, 2)
    with pytest.raises(ValueError):
        point_load(mesh, node=99, components=(1.0, 0.0))
    with pytest.raises(ValueError):
        point_load(mesh, node=0, components=(1.0,))


def test_edge_traction_total_force():
    """Total applied force equals traction x edge length."""
    mesh = structured_quad_mesh(4, 3, lx=4.0, ly=3.0)
    f = edge_traction_load(mesh, "right", (2.0, 0.5))
    fx = f[0::2].sum()
    fy = f[1::2].sum()
    assert np.isclose(fx, 2.0 * 3.0)
    assert np.isclose(fy, 0.5 * 3.0)


def test_edge_traction_interior_nodes_get_double_tributary():
    mesh = structured_quad_mesh(2, 2, lx=2.0, ly=2.0)
    f = edge_traction_load(mesh, "right", (1.0, 0.0))
    right_nodes = mesh.nodes_on(lambda x, y: x == 2.0)
    vals = f[right_nodes * 2]
    vals_sorted = np.sort(vals)
    # corner nodes get 0.5, the midside node gets 1.0
    assert np.allclose(vals_sorted, [0.5, 0.5, 1.0])


def test_edge_traction_all_edges():
    mesh = structured_quad_mesh(3, 3)
    for edge in ("left", "right", "top", "bottom"):
        f = edge_traction_load(mesh, edge, (1.0, 0.0))
        assert np.isclose(f.sum(), 1.0)


def test_edge_traction_unknown_edge():
    mesh = structured_quad_mesh(2, 2)
    with pytest.raises(ValueError):
        edge_traction_load(mesh, "front", (1.0, 0.0))


def test_edge_traction_needs_two_nodes():
    mesh = truss_mesh(3)
    with pytest.raises(ValueError, match="fewer than 2"):
        edge_traction_load(mesh, "left", (1.0,))
