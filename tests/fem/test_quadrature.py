"""Quadrature rules: exactness orders."""

import numpy as np
import pytest

from repro.fem.quadrature import (
    gauss_1d,
    gauss_chebyshev,
    gauss_quad_2d,
    triangle_rule,
)


@pytest.mark.parametrize("n", [1, 2, 3])
def test_gauss_1d_exact_for_degree_2n_minus_1(n):
    pts, wts = gauss_1d(n)
    for degree in range(2 * n):
        exact = (1 - (-1) ** (degree + 1)) / (degree + 1)
        assert np.isclose(np.sum(wts * pts**degree), exact, atol=1e-13)


def test_gauss_1d_unknown_order():
    with pytest.raises(ValueError):
        gauss_1d(7)


def test_gauss_quad_2d_weights_sum_to_area():
    _, wts = gauss_quad_2d(2)
    assert np.isclose(wts.sum(), 4.0)


def test_gauss_quad_2d_exact_bilinear():
    pts, wts = gauss_quad_2d(2)
    # integral of x^2 y^2 over [-1,1]^2 is 4/9
    val = np.sum(wts * pts[:, 0] ** 2 * pts[:, 1] ** 2)
    assert np.isclose(val, 4.0 / 9.0)


def test_triangle_rule_weights_sum_to_one():
    for order in (1, 2):
        _, wts = triangle_rule(order)
        assert np.isclose(wts.sum(), 1.0)


def test_triangle_rule_order2_exact_for_quadratics():
    pts, wts = triangle_rule(2)
    # integral of L1^2 over reference triangle (area 1/2) is 1/12;
    # normalized by area -> 1/6.
    assert np.isclose(np.sum(wts * pts[:, 0] ** 2), 1.0 / 6.0)


def test_triangle_rule_unknown_order():
    with pytest.raises(ValueError):
        triangle_rule(5)


def test_gauss_chebyshev_moments():
    nodes, wts = gauss_chebyshev(16)
    # ∫ (1-t²)^{-1/2} dt = pi ; ∫ t² (1-t²)^{-1/2} dt = pi/2
    assert np.isclose(np.sum(wts), np.pi)
    assert np.isclose(np.sum(wts * nodes**2), np.pi / 2)
    assert np.isclose(np.sum(wts * nodes), 0.0, atol=1e-12)
