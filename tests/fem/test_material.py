"""Material validation and constitutive matrices."""

import numpy as np
import pytest

from repro.fem.material import Material


def test_plane_stress_matrix():
    m = Material(E=1.0, nu=0.0)
    d = m.elasticity_matrix()
    assert np.allclose(d, np.diag([1.0, 1.0, 0.5]))


def test_plane_strain_differs_from_plane_stress():
    ps = Material(E=10.0, nu=0.3, plane_stress=True).elasticity_matrix()
    pe = Material(E=10.0, nu=0.3, plane_stress=False).elasticity_matrix()
    assert not np.allclose(ps, pe)
    # plane strain is stiffer in the normal directions
    assert pe[0, 0] > ps[0, 0]


def test_elasticity_matrix_spd():
    d = Material(E=5.0, nu=0.25).elasticity_matrix()
    assert np.allclose(d, d.T)
    assert np.linalg.eigvalsh(d).min() > 0


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(E=-1.0),
        dict(nu=0.5),
        dict(nu=-1.0),
        dict(rho=0.0),
        dict(thickness=-2.0),
    ],
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ValueError):
        Material(**kwargs)


def test_frozen():
    m = Material()
    with pytest.raises(Exception):
        m.E = 7.0
