"""Property-based cross-backend parity: virtual, thread and process
communicators must produce bitwise-equal collective results and exactly
equal counters on seeded random topologies and payloads.

Hypothesis drives the *shape* space — mesh dimensions, part counts, block
widths, payload seeds, halo-plan density — while numpy generates the
payloads deterministically from the drawn seed, so every example is
reproducible from its draw alone.  Equality is `tobytes()`-exact: the Comm
contract promises bit-identity, not closeness, and these tests are the
fence that keeps backend-specific data-plane tricks (worker pools, shared
memory) from ever perturbing an association.

The worker pools are shared across examples (spawning processes per
example would dominate runtime) and drained once at module teardown.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.bc import clamp_edge_dofs
from repro.fem.mesh import structured_quad_mesh
from repro.parallel.comm import VirtualComm
from repro.parallel.process_comm import ProcessComm
from repro.parallel.process_comm import shutdown_pool as shutdown_processes
from repro.parallel.thread_comm import ThreadComm
from repro.parallel.thread_comm import shutdown_pool as shutdown_threads
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map

@pytest.fixture(scope="module", autouse=True)
def _drain_pools_at_end():
    yield
    shutdown_threads(force=True)
    shutdown_processes(force=True)


def _submap(nx, ny, n_parts):
    mesh = structured_quad_mesh(nx, ny)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition.build(mesh, min(n_parts, mesh.n_elements))
    return build_subdomain_map(mesh, part, bc)


def _backends(submap):
    """One communicator per backend, pool paths forced for any payload."""
    return {
        "virtual": VirtualComm(submap),
        "thread": ThreadComm(submap, n_workers=2, min_parallel_work=0),
        "process": ProcessComm(submap, n_workers=2, min_dispatch_work=0),
    }


def _close_all(comms):
    # ThreadComm.close drains its own pool (last-borrower contract); the
    # process pool stays parked until the module fixture drains it.
    for comm in comms.values():
        comm.close()


def _random_plan(rng, sizes, density):
    """A random symmetric halo plan: each unordered pair exchanges with
    probability ``density``; send indices and receive slots are arbitrary
    (possibly repeating across neighbours, like aliased ghost layouts)."""
    size = len(sizes)
    plan = {s: {} for s in range(size)}
    for s in range(size):
        for t in range(s + 1, size):
            if rng.random() > density:
                continue
            n_st = int(rng.integers(1, min(sizes[s], 4) + 1))
            n_ts = int(rng.integers(1, min(sizes[t], 4) + 1))
            plan[s][t] = (
                rng.integers(0, sizes[s], n_st),
                rng.integers(0, 6, n_ts),
            )
            plan[t][s] = (
                rng.integers(0, sizes[t], n_ts),
                rng.integers(0, 6, n_st),
            )
    return plan


def _assert_bitwise(results):
    ref = results["virtual"]
    for name in ("thread", "process"):
        got = results[name]
        assert len(got) == len(ref)
        for a, b in zip(ref, got):
            assert np.shape(a) == np.shape(b)
            assert np.asarray(a).tobytes() == np.asarray(b).tobytes(), name


@settings(max_examples=20, deadline=None)
@given(
    nx=st.integers(2, 8),
    ny=st.integers(1, 4),
    n_parts=st.integers(2, 5),
    k=st.integers(1, 4),
    seed=st.integers(0, 2**32 - 1),
)
def test_interface_assemble_parity(nx, ny, n_parts, k, seed):
    submap = _submap(nx, ny, n_parts)
    rng = np.random.default_rng(seed)
    base = [
        rng.standard_normal((n, k)) * 10.0 ** rng.integers(-6, 7)
        for n in submap.local_sizes
    ]
    comms = _backends(submap)
    try:
        vec_results = {}
        blk_results = {}
        for name, comm in comms.items():
            vec_results[name] = comm.interface_assemble(
                [p[:, 0].copy() for p in base]
            )
            blk_results[name] = comm.interface_assemble_block(
                [p.copy() for p in base]
            )
        _assert_bitwise(vec_results)
        _assert_bitwise(blk_results)
        # Column 0 of the block form must equal the vector form bitwise.
        for a, b in zip(vec_results["process"], blk_results["process"]):
            assert a.tobytes() == np.ascontiguousarray(b[:, 0]).tobytes()
        ref_ranks = comms["virtual"].stats.ranks
        assert comms["thread"].stats.ranks == ref_ranks
        assert comms["process"].stats.ranks == ref_ranks
    finally:
        _close_all(comms)


@settings(max_examples=20, deadline=None)
@given(
    n_parts=st.integers(2, 6),
    words=st.integers(1, 32),
    seed=st.integers(0, 2**32 - 1),
)
def test_allreduce_parity(n_parts, words, seed):
    submap = _submap(6, 2, n_parts)
    rng = np.random.default_rng(seed)
    size = submap.n_parts
    arrays = [
        rng.standard_normal(words) * 10.0 ** rng.integers(-9, 10)
        for _ in range(size)
    ]
    scalars = [float(a[0]) for a in arrays]
    comms = _backends(submap)
    try:
        arr_results = {}
        sca_results = {}
        for name, comm in comms.items():
            arr_results[name] = [
                comm.allreduce_sum([a.copy() for a in arrays], words=words)
            ]
            sca_results[name] = [np.float64(comm.allreduce_sum(scalars))]
        _assert_bitwise(arr_results)
        _assert_bitwise(sca_results)
        ref_ranks = comms["virtual"].stats.ranks
        assert comms["thread"].stats.ranks == ref_ranks
        assert comms["process"].stats.ranks == ref_ranks
    finally:
        _close_all(comms)


@settings(max_examples=8, deadline=None)
@given(
    method=st.sampled_from(["edd-enhanced", "edd-basic", "rdd"]),
    degree=st.integers(0, 7),
    restart=st.integers(5, 25),
    n_parts=st.integers(2, 5),
)
def test_resident_solver_parity(method, degree, restart, n_parts):
    """Whole-solve parity with worker-resident rank execution forced on:
    any (method, GLS degree, restart, P) drawn must reproduce the virtual
    backend's floats and counters exactly.  This is the property-level
    fence for the resident engines — the collective tests above cannot
    see the rank-op command path at all."""
    from repro.core.driver import solve_cantilever
    from repro.core.options import SolverOptions
    from repro.fem.cantilever import cantilever_problem

    problem = cantilever_problem(nx=6, ny=3)
    opts = SolverOptions(precond=f"gls({degree})", restart=restart,
                         method=method)
    sv = solve_cantilever(
        problem, n_parts=n_parts,
        options=opts.replace(comm_backend="virtual"),
    )
    import os

    saved = {
        k: os.environ.get(k)
        for k in ("REPRO_PROCESS_RESIDENT", "REPRO_PROCESS_MIN_WORK",
                  "REPRO_PROCESS_WORKERS")
    }
    os.environ["REPRO_PROCESS_RESIDENT"] = "1"
    os.environ["REPRO_PROCESS_MIN_WORK"] = "0"
    os.environ["REPRO_PROCESS_WORKERS"] = "2"
    try:
        sp = solve_cantilever(
            problem, n_parts=n_parts,
            options=opts.replace(comm_backend="process"),
        )
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
    assert sv.result.residual_history == sp.result.residual_history
    assert np.asarray(sv.result.x).tobytes() == np.asarray(
        sp.result.x
    ).tobytes()
    assert sv.stats.ranks == sp.stats.ranks


@settings(max_examples=20, deadline=None)
@given(
    nx=st.integers(3, 8),
    n_parts=st.integers(2, 5),
    k=st.integers(1, 3),
    density=st.floats(0.2, 1.0),
    seed=st.integers(0, 2**32 - 1),
)
def test_halo_exchange_parity(nx, n_parts, k, density, seed):
    submap = _submap(nx, 3, n_parts)
    rng = np.random.default_rng(seed)
    plan = _random_plan(rng, submap.local_sizes, density)
    base = [rng.standard_normal((n, k)) for n in submap.local_sizes]
    comms = _backends(submap)
    try:
        vec_results = {}
        blk_results = {}
        for name, comm in comms.items():
            vec_results[name] = comm.halo_exchange(
                [p[:, 0].copy() for p in base], plan
            )
            blk_results[name] = comm.halo_exchange_block(
                [p.copy() for p in base], plan
            )
        _assert_bitwise(vec_results)
        _assert_bitwise(blk_results)
        ref_ranks = comms["virtual"].stats.ranks
        assert comms["thread"].stats.ranks == ref_ranks
        assert comms["process"].stats.ranks == ref_ranks
    finally:
        _close_all(comms)
