"""ThreadComm backend: pool execution, collectives parity, registry,
thread-safe counters."""

import threading

import numpy as np
import pytest

from repro.fem.bc import clamp_edge_dofs
from repro.fem.mesh import structured_quad_mesh
from repro.parallel.comm import (
    VirtualComm,
    available_comm_backends,
    get_comm_backend,
    make_comm,
    set_comm_backend,
    use_comm_backend,
)
from repro.parallel.stats import CommStats
from repro.parallel.thread_comm import ThreadComm, _WorkerPool
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map


@pytest.fixture
def submap4():
    mesh = structured_quad_mesh(8, 2)
    bc = clamp_edge_dofs(mesh, "left")
    labels = np.repeat(np.arange(4), 2)
    part = ElementPartition(mesh, np.concatenate([labels, labels]), 4)
    return build_subdomain_map(mesh, part, bc), bc


def _thread_comm(submap, **kw):
    # min_parallel_work=0 forces the pool path even for tiny test vectors.
    kw.setdefault("min_parallel_work", 0)
    kw.setdefault("n_workers", 4)
    return ThreadComm(submap, **kw)


# ----------------------------------------------------------------------
# Worker pool mechanics
# ----------------------------------------------------------------------
def test_pool_runs_every_rank_once():
    pool = _WorkerPool(3)
    try:
        hits = [0] * 10
        pool.run(lambda r: hits.__setitem__(r, hits[r] + 1), 10)
        assert hits == [1] * 10
    finally:
        pool.close()


def test_pool_runs_on_worker_threads():
    pool = _WorkerPool(2)
    try:
        names = [None] * 4
        pool.run(
            lambda r: names.__setitem__(r, threading.current_thread().name), 4
        )
        assert all(n.startswith("repro-comm-") for n in names)
        assert len(set(names)) == 2  # strided over both workers
    finally:
        pool.close()


def test_pool_propagates_body_exception():
    pool = _WorkerPool(2)
    try:
        def boom(r):
            if r == 1:
                raise RuntimeError("rank 1 failed")

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            pool.run(boom, 3)
        # The pool must survive a failed region.
        out = [0] * 3
        pool.run(lambda r: out.__setitem__(r, r), 3)
        assert out == [0, 1, 2]
    finally:
        pool.close()


def test_pool_close_idempotent():
    pool = _WorkerPool(2)
    pool.close()
    pool.close()
    with pytest.raises(RuntimeError):
        pool.run(lambda r: None, 1)


def test_run_ranks_collects_results(submap4):
    submap, _ = submap4
    comm = _thread_comm(submap)
    assert comm.run_ranks(lambda r: r * r) == [0, 1, 4, 9]


def test_run_ranks_concurrent_bodies_overlap(submap4):
    """With enough workers, rank bodies genuinely wait for each other."""
    submap, _ = submap4
    comm = _thread_comm(submap)
    gate = threading.Barrier(4, timeout=10.0)

    def body(r):
        gate.wait()  # deadlocks unless all four bodies run concurrently
        return r

    assert comm.run_ranks(body) == [0, 1, 2, 3]


def test_run_ranks_inline_below_threshold(submap4):
    """Small regions run on the calling thread (identical results)."""
    submap, _ = submap4
    comm = ThreadComm(submap, n_workers=4, min_parallel_work=10**9)
    main = threading.current_thread().name
    names = comm.run_ranks(
        lambda r: threading.current_thread().name, work=16
    )
    assert names == [main] * 4


def test_nested_run_ranks_does_not_deadlock(submap4):
    submap, _ = submap4
    comm = _thread_comm(submap)

    def outer(r):
        inner = comm.run_ranks(lambda q: (r, q))
        return inner[r]

    assert comm.run_ranks(outer) == [(r, r) for r in range(4)]


def test_barrier_returns(submap4):
    submap, _ = submap4
    comm = _thread_comm(submap)
    comm.barrier()  # must not hang
    comm.close()


# ----------------------------------------------------------------------
# Collective parity against the serial reference backend
# ----------------------------------------------------------------------
def test_collectives_bit_identical_to_virtual(submap4):
    submap, bc = submap4
    rng = np.random.default_rng(7)
    x = rng.standard_normal(bc.n_free)
    parts = submap.restrict(x)
    vals = [rng.standard_normal(3) for _ in range(4)]

    vc = VirtualComm(submap)
    tc = _thread_comm(submap)
    va = vc.interface_assemble(parts)
    ta = tc.interface_assemble(parts)
    for a, b in zip(va, ta):
        assert np.array_equal(a, b)
    assert np.array_equal(
        vc.allreduce_sum(vals, words=3), tc.allreduce_sum(vals, words=3)
    )
    for rv, rt in zip(vc.stats.ranks, tc.stats.ranks):
        assert rv == rt  # identical per-rank counters too


def test_halo_exchange_parity(submap4):
    submap, _ = submap4
    rng = np.random.default_rng(3)
    x_parts = [rng.standard_normal(5) for _ in range(4)]
    # ring plan: rank s trades two entries with each of its two neighbours,
    # clockwise traffic landing in ext slots [0,1], counter-clockwise in [2,3]
    plan = {
        s: {
            (s + 1) % 4: (np.array([0, 1]), np.array([0, 1])),
            (s - 1) % 4: (np.array([2, 3]), np.array([2, 3])),
        }
        for s in range(4)
    }
    vc = VirtualComm(submap)
    tc = _thread_comm(submap)
    for a, b in zip(vc.halo_exchange(x_parts, plan), tc.halo_exchange(x_parts, plan)):
        assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# Thread-safe counters
# ----------------------------------------------------------------------
def test_commstats_concurrent_hammer():
    """Concurrent per-rank increments + cross-rank charges stay exact."""
    stats = CommStats(8)
    n_iter = 2000

    def per_rank(r):
        for _ in range(n_iter):
            stats.ranks[r].flops += 3

    def collective():
        for _ in range(n_iter):
            stats.charge_all_ranks(reductions=1, reduction_words=2)

    threads = [threading.Thread(target=per_rank, args=(r,)) for r in range(8)]
    threads += [threading.Thread(target=collective) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for r in stats.ranks:
        assert r.flops == 3 * n_iter
        assert r.reductions == 4 * n_iter
        assert r.reduction_words == 8 * n_iter


def test_commstats_snapshot_during_charges():
    """Snapshots taken mid-hammer see a consistent cross-rank state."""
    stats = CommStats(4)
    stop = threading.Event()

    def charger():
        while not stop.is_set():
            stats.charge_all_ranks(flops=1)

    t = threading.Thread(target=charger)
    t.start()
    try:
        for _ in range(200):
            snap = stats.snapshot()
            flops = [r.flops for r in snap.ranks]
            assert len(set(flops)) == 1  # all ranks charged atomically
    finally:
        stop.set()
        t.join()


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_roundtrip():
    assert set(available_comm_backends()) == {
        "virtual",
        "thread",
        "process",
        "chaos",
    }
    prev = get_comm_backend()
    try:
        set_comm_backend("thread")
        assert get_comm_backend() == "thread"
        with use_comm_backend("virtual"):
            assert get_comm_backend() == "virtual"
        assert get_comm_backend() == "thread"
    finally:
        set_comm_backend(prev)


def test_registry_rejects_unknown():
    with pytest.raises(ValueError, match="unknown comm backend"):
        set_comm_backend("mpi")


def test_make_comm_selects_backend(submap4):
    submap, _ = submap4
    assert make_comm(submap, backend="virtual").backend_name == "virtual"
    assert make_comm(submap, backend="thread").backend_name == "thread"
    with use_comm_backend("thread"):
        assert isinstance(make_comm(submap), ThreadComm)


def test_env_tunables(submap4, monkeypatch):
    submap, _ = submap4
    monkeypatch.setenv("REPRO_THREAD_WORKERS", "1")
    monkeypatch.setenv("REPRO_THREAD_MIN_WORK", "123")
    comm = ThreadComm(submap)
    assert comm.n_workers == 1
    assert comm.min_parallel_work == 123
    # n_workers == 1 short-circuits to inline execution
    assert comm.run_ranks(lambda r: r) == [0, 1, 2, 3]
