"""Validated environment-knob reads for the concurrent backends.

A malformed ``REPRO_*`` tuning variable used to surface as a bare
``ValueError: invalid literal for int()`` from deep inside backend
construction.  Every integer/float knob now raises the named
:class:`EnvKnobError` that echoes *which* variable is wrong and the
offending value — at the construction site the user actually touched.
"""

from __future__ import annotations

import pytest

from repro.fem.bc import clamp_edge_dofs
from repro.fem.mesh import structured_quad_mesh
from repro.parallel.env_knobs import EnvKnobError, read_float_env, read_int_env
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map


def _submap(n_parts=2):
    mesh = structured_quad_mesh(4, 2)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition.build(mesh, n_parts)
    return build_subdomain_map(mesh, part, bc)


# ----------------------------------------------------------------------
# The reader helpers
# ----------------------------------------------------------------------
def test_unset_and_blank_fall_back_to_default(monkeypatch):
    monkeypatch.delenv("REPRO_X", raising=False)
    assert read_int_env("REPRO_X", 7) == 7
    assert read_float_env("REPRO_X", 2.5) == 2.5
    monkeypatch.setenv("REPRO_X", "   ")
    assert read_int_env("REPRO_X", 7) == 7
    assert read_float_env("REPRO_X", 2.5) == 2.5


def test_valid_values_parse(monkeypatch):
    monkeypatch.setenv("REPRO_X", " 42 ")
    assert read_int_env("REPRO_X", 0) == 42
    assert read_float_env("REPRO_X", 0.0) == 42.0
    monkeypatch.setenv("REPRO_X", "1.5")
    assert read_float_env("REPRO_X", 0.0) == 1.5
    with pytest.raises(EnvKnobError):
        read_int_env("REPRO_X", 0)  # 1.5 is not an integer


def test_error_is_a_value_error_and_names_the_knob(monkeypatch):
    monkeypatch.setenv("REPRO_X", "banana")
    with pytest.raises(ValueError) as exc:  # legacy guards keep working
        read_int_env("REPRO_X", 0)
    err = exc.value
    assert isinstance(err, EnvKnobError)
    assert err.name == "REPRO_X"
    assert err.value == "banana"
    assert "REPRO_X" in str(err) and "'banana'" in str(err)


# ----------------------------------------------------------------------
# Every integer/float knob raises the named error from its real
# consumption site (backend construction), not a bare ValueError.
# ----------------------------------------------------------------------
def _make_process_comm():
    from repro.parallel.process_comm import ProcessComm

    return ProcessComm(_submap())


def _make_thread_comm():
    from repro.parallel.thread_comm import ThreadComm

    return ThreadComm(_submap())


KNOBS = [
    ("REPRO_PROCESS_WORKERS", _make_process_comm),
    ("REPRO_PROCESS_MIN_WORK", _make_process_comm),
    ("REPRO_PROCESS_TIMEOUT", _make_process_comm),
    ("REPRO_THREAD_WORKERS", _make_thread_comm),
    ("REPRO_THREAD_MIN_WORK", _make_thread_comm),
]


@pytest.mark.parametrize("name,make", KNOBS, ids=[n for n, _ in KNOBS])
def test_invalid_knob_raises_named_error_at_construction(
    name, make, monkeypatch
):
    monkeypatch.setenv(name, "not-a-number")
    with pytest.raises(EnvKnobError) as exc:
        comm = make()
        comm.close()  # pragma: no cover - only on unexpected success
    assert exc.value.name == name
    assert exc.value.value == "not-a-number"
    assert name in str(exc.value) and "'not-a-number'" in str(exc.value)


@pytest.mark.parametrize("name,make", KNOBS, ids=[n for n, _ in KNOBS])
def test_valid_knob_values_still_construct(name, make, monkeypatch):
    monkeypatch.setenv(name, "2")
    comm = make()
    try:
        assert comm.size == 2
    finally:
        comm.close()
