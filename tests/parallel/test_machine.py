"""Machine models and modeled time/speedup."""

import math

import pytest

from repro.parallel.machine import (
    IBM_SP2,
    SGI_ORIGIN,
    MachineModel,
    modeled_time,
    speedup,
)
from repro.parallel.stats import CommStats


def make_stats(n_ranks, flops, msgs=0, words=0, reds=0, red_words=0):
    cs = CommStats(n_ranks)
    for r in cs.ranks:
        r.flops = flops
        r.nbr_messages = msgs
        r.nbr_words = words
        r.reductions = reds
        r.reduction_words = red_words
    return cs


def test_compute_only_time():
    m = MachineModel("t", flop_rate=1e6, latency=0, bandwidth=1e9, reduce_latency=0)
    cs = make_stats(1, flops=2_000_000)
    assert modeled_time(cs, m) == pytest.approx(2.0)


def test_message_time_latency_plus_bandwidth():
    m = MachineModel("t", 1e6, latency=1e-3, bandwidth=8e3, reduce_latency=0)
    # one message of 10 words = 80 bytes: 1ms + 10ms
    assert m.msg_time(10) == pytest.approx(0.011)


def test_reduce_time_log2_tree():
    m = MachineModel("t", 1e6, 0, 1e12, reduce_latency=1e-6)
    assert m.reduce_time(1) == 0.0
    assert m.reduce_time(8) == pytest.approx(3e-6, rel=1e-3)
    assert m.reduce_time(5) == pytest.approx(3e-6, rel=1e-3)  # ceil(log2 5)=3


def test_modeled_time_uses_busiest_rank():
    m = MachineModel("t", 1e6, 0, 1e12, 0)
    cs = make_stats(2, flops=100)
    cs.ranks[1].flops = 1_000_000
    assert modeled_time(cs, m) == pytest.approx(1.0)


def test_speedup_perfect_when_no_comm():
    m = MachineModel("t", 1e6, 0, 1e12, 0)
    seq = make_stats(1, flops=8_000)
    par = make_stats(8, flops=1_000)
    assert speedup(seq, par, m) == pytest.approx(8.0)


def test_speedup_degrades_with_latency():
    m = MachineModel("t", 1e6, latency=1e-3, bandwidth=1e12, reduce_latency=0)
    seq = make_stats(1, flops=8_000)
    par = make_stats(8, flops=1_000, msgs=10)
    assert speedup(seq, par, m) < 1.0  # latency dominates this tiny problem


def test_origin_faster_than_sp2_on_comm_bound_run():
    """The Fig. 17(e) contrast: same counters, Origin's cheap messaging wins."""
    seq = make_stats(1, flops=1_000_000)
    par = make_stats(8, flops=125_000, msgs=200, words=2_000, reds=100)
    assert speedup(seq, par, SGI_ORIGIN) > speedup(seq, par, IBM_SP2)


def test_speedup_rejects_empty_parallel_run():
    m = MachineModel("t", 1e6, 0, 1e12, 0)
    seq = make_stats(1, flops=100)
    par = make_stats(2, flops=0)
    with pytest.raises(ValueError):
        speedup(seq, par, m)


def test_machines_registry():
    from repro.parallel.machine import MACHINES

    assert MACHINES["sp2"] is IBM_SP2
    assert MACHINES["origin"] is SGI_ORIGIN
    # the qualitative calibration the experiments rely on
    assert IBM_SP2.latency > SGI_ORIGIN.latency
    assert IBM_SP2.bandwidth < SGI_ORIGIN.bandwidth
