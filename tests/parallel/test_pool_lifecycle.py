"""ThreadComm worker-pool lifecycle: no leaked threads.

The shared pool is a process-wide resource; these tests pin the borrow
contract — the pool survives while any live ThreadComm still uses it,
drains when the last borrower closes (and on ``use_comm_backend`` exit),
and is transparently recreated by the next parallel region.
"""

import gc

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.bc import clamp_edge_dofs
from repro.fem.mesh import structured_quad_mesh
from repro.parallel.comm import use_comm_backend
from repro.parallel.thread_comm import (
    ThreadComm,
    pool_thread_count,
    shutdown_pool,
)
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map


@pytest.fixture(autouse=True)
def _clean_pool():
    # Earlier tests in the session may have left an unclosed ThreadComm
    # in an uncollected reference cycle; it still counts as a live
    # borrower and would keep the pool alive under these assertions.
    # Collect it and force a drain so every test starts from zero threads.
    gc.collect()
    shutdown_pool(force=True)
    yield


@pytest.fixture
def submap4():
    mesh = structured_quad_mesh(8, 2)
    bc = clamp_edge_dofs(mesh, "left")
    labels = np.repeat(np.arange(4), 2)
    part = ElementPartition(mesh, np.concatenate([labels, labels]), 4)
    return build_subdomain_map(mesh, part, bc)


def _comm(submap):
    return ThreadComm(submap, n_workers=2, min_parallel_work=0)


def test_close_drains_last_borrower(submap4):
    comm = _comm(submap4)
    comm.run_ranks(lambda r: r)
    assert pool_thread_count() > 0
    comm.close()
    assert pool_thread_count() == 0


def test_close_is_idempotent(submap4):
    comm = _comm(submap4)
    comm.run_ranks(lambda r: r)
    comm.close()
    comm.close()
    assert pool_thread_count() == 0


def test_pool_survives_while_other_comm_lives(submap4):
    a, b = _comm(submap4), _comm(submap4)
    a.run_ranks(lambda r: r)
    a.close()
    assert pool_thread_count() > 0  # b still borrows it
    # ... and it still works for b.
    assert b.run_ranks(lambda r: r * 2) == [0, 2, 4, 6]
    b.close()
    assert pool_thread_count() == 0


def test_pool_recreated_after_drain(submap4):
    comm = _comm(submap4)
    comm.run_ranks(lambda r: r)
    comm.close()
    assert pool_thread_count() == 0
    comm2 = _comm(submap4)
    assert comm2.run_ranks(lambda r: r + 1) == [1, 2, 3, 4]
    assert pool_thread_count() > 0
    comm2.close()
    assert pool_thread_count() == 0


def test_context_manager_closes(submap4):
    with _comm(submap4) as comm:
        comm.run_ranks(lambda r: r)
        assert pool_thread_count() > 0
    assert pool_thread_count() == 0


def test_use_comm_backend_exit_drains_pool(tiny_problem):
    """The headline guarantee: a test (or session) that ran thread-backend
    solves inside ``use_comm_backend`` leaves zero parked worker threads
    behind."""
    with use_comm_backend("thread"):
        summary = solve_cantilever(
            tiny_problem, 2,
            options=SolverOptions(precond="gls(7)"),
        )
        assert summary.result.converged
    assert pool_thread_count() == 0


def test_forced_shutdown_overrides_live_borrowers(submap4):
    comm = _comm(submap4)
    comm.run_ranks(lambda r: r)
    assert not shutdown_pool()  # refused: comm still borrows
    assert pool_thread_count() > 0
    assert shutdown_pool(force=True)
    assert pool_thread_count() == 0
    # The comm transparently re-acquires a fresh pool afterwards.
    assert comm.run_ranks(lambda r: r) == [0, 1, 2, 3]
    comm.close()
    assert pool_thread_count() == 0


def test_solve_without_context_leaves_no_threads(tiny_problem):
    """The driver closes its communicator, so even a bare thread-backend
    solve (no context manager) drains the pool."""
    summary = solve_cantilever(
        tiny_problem, 2,
        options=SolverOptions(precond="gls(7)", comm_backend="thread"),
    )
    assert summary.result.converged
    assert pool_thread_count() == 0
