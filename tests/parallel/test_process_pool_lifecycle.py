"""ProcessComm pool lifecycle: no leaked processes, no leaked shared
memory, structured (never hanging) failure on crashed or stalled workers.

Mirrors ``test_pool_lifecycle.py`` for the thread backend, with the two
deliberate differences of the process pool pinned down explicitly:
``close()`` *parks* the workers instead of draining them (spawn costs
~1 s, paid once per session instead of once per solve), and a killed or
silent worker raises a named error within the per-call timeout instead of
deadlocking the orchestrator.
"""

import glob
import os
import signal
import time

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.bc import clamp_edge_dofs
from repro.fem.mesh import structured_quad_mesh
from repro.parallel.comm import use_comm_backend
from repro.parallel.process_comm import (
    ProcessComm,
    WorkerCrashedError,
    WorkerTimeoutError,
    pool_process_count,
    shutdown_pool,
)
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map


@pytest.fixture(autouse=True)
def _drain_pool():
    shutdown_pool(force=True)
    yield
    shutdown_pool(force=True)
    assert pool_process_count() == 0


@pytest.fixture
def submap4():
    mesh = structured_quad_mesh(8, 2)
    bc = clamp_edge_dofs(mesh, "left")
    labels = np.repeat(np.arange(4), 2)
    part = ElementPartition(mesh, np.concatenate([labels, labels]), 4)
    return build_subdomain_map(mesh, part, bc)


def _comm(submap, **kw):
    kw.setdefault("min_dispatch_work", 0)
    kw.setdefault("n_workers", 2)
    return ProcessComm(submap, **kw)


def _shm_segments(base=frozenset()):
    """Segments created since ``base`` — delta-based so a leak from an
    unrelated earlier failure cannot cascade into these assertions."""
    return set(glob.glob("/dev/shm/repro-pc-*")) - set(base)


def _exercise(comm):
    rng = np.random.default_rng(7)
    parts = [rng.standard_normal(n) for n in comm.submap.local_sizes]
    return comm.interface_assemble(parts)


# ----------------------------------------------------------------------
# Parked-pool contract and shared-memory hygiene
# ----------------------------------------------------------------------
def test_close_parks_processes_and_unlinks_segments(submap4):
    base = _shm_segments()
    comm = _comm(submap4)
    _exercise(comm)
    assert pool_process_count() == 2
    assert len(_shm_segments(base)) == 1  # the comm's arena
    comm.close()
    assert _shm_segments(base) == set()  # arena unlinked eagerly
    assert pool_process_count() == 2  # workers parked, not drained
    assert shutdown_pool()  # no live borrowers left -> drains
    assert pool_process_count() == 0


def test_close_is_idempotent(submap4):
    base = _shm_segments()
    comm = _comm(submap4)
    _exercise(comm)
    comm.close()
    comm.close()
    assert _shm_segments(base) == set()


def test_shutdown_refused_while_comm_live(submap4):
    comm = _comm(submap4)
    _exercise(comm)
    assert not shutdown_pool()  # refused: comm still borrows
    assert pool_process_count() == 2
    assert shutdown_pool(force=True)
    assert pool_process_count() == 0
    # The comm transparently re-acquires a fresh pool afterwards.
    _exercise(comm)
    assert pool_process_count() == 2
    comm.close()


def test_parked_pool_reused_across_comms(submap4):
    with _comm(submap4) as a:
        _exercise(a)
        pids = set(a._pool.process_ids())
    with _comm(submap4) as b:
        _exercise(b)
        assert set(b._pool.process_ids()) == pids  # same parked workers


def test_arena_regrowth_unlinks_old_generation(submap4):
    base = _shm_segments()
    with _comm(submap4) as comm:
        comm.allreduce_sum([1.0, 2.0, 3.0, 4.0])
        first = _shm_segments(base)
        assert len(first) == 1
        # A k-wide block forces a larger arena: new generation, old gone.
        k = 600
        parts = [np.ones((n, k)) for n in comm.submap.local_sizes]
        comm.interface_assemble_block(parts)
        second = _shm_segments(base)
        assert len(second) == 1 and second != first
    assert _shm_segments(base) == set()


def test_use_comm_backend_exit_drains_processes(tiny_problem):
    with use_comm_backend("process"):
        summary = solve_cantilever(
            tiny_problem, 2, options=SolverOptions(precond="gls(7)")
        )
        assert summary.result.converged
    assert pool_process_count() == 0


# ----------------------------------------------------------------------
# Structured failure instead of hangs
# ----------------------------------------------------------------------
def test_killed_worker_raises_named_error(submap4):
    comm = _comm(submap4)
    _exercise(comm)
    victim = comm._pool.process_ids()[1]
    os.kill(victim, signal.SIGKILL)
    deadline = time.monotonic() + 5.0
    with pytest.raises(WorkerCrashedError, match="worker 1 died"):
        while time.monotonic() < deadline:
            _exercise(comm)
    assert comm._pool.broken
    # The next dispatch transparently respawns a fresh pool and works.
    ref = _exercise(_comm(submap4))
    assert ref is not None
    comm.close()


def test_stalled_worker_raises_timeout_not_deadlock(submap4):
    comm = _comm(submap4)
    _exercise(comm)  # spawn + warm up under the default timeout
    comm.call_timeout = 0.4
    t0 = time.monotonic()
    with pytest.raises(WorkerTimeoutError, match="did not reply"):
        comm._debug_stall(3.0)
    assert time.monotonic() - t0 < 2.5  # bounded by the timeout, not 3 s
    assert comm._pool.broken
    comm.close()
    shutdown_pool(force=True)  # don't wait for the sleeper to wake

def test_crashed_pool_close_still_unlinks_segments(submap4):
    base = _shm_segments()
    comm = _comm(submap4)
    _exercise(comm)
    assert len(_shm_segments(base)) == 1
    for pid in comm._pool.process_ids():
        os.kill(pid, signal.SIGKILL)
    comm.close()
    assert _shm_segments(base) == set()
