"""Registry-level guard against constructing a communicator inside a
worker of another communicator (the nested-pool footgun).

A rank body that builds its own ThreadComm/ProcessComm would recurse into
the shared pools — at best serializing everything, at worst deadlocking on
the pool locks.  The guard lives in shared registry state
(``repro.parallel.comm``), so every pooled backend recognizes workers of
every other backend, including spawned process-pool children (which
advertise themselves through ``REPRO_COMM_WORKER``).
"""

import numpy as np
import pytest

from repro.fem.bc import clamp_edge_dofs
from repro.fem.mesh import structured_quad_mesh
from repro.parallel.comm import (
    NestedCommError,
    VirtualComm,
    current_worker_backend,
    make_comm,
)
from repro.parallel.process_comm import ProcessComm, shutdown_pool
from repro.parallel.thread_comm import ThreadComm
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map


@pytest.fixture
def submap4():
    mesh = structured_quad_mesh(8, 2)
    bc = clamp_edge_dofs(mesh, "left")
    labels = np.repeat(np.arange(4), 2)
    part = ElementPartition(mesh, np.concatenate([labels, labels]), 4)
    return build_subdomain_map(mesh, part, bc)


def test_make_comm_inside_thread_worker_raises(submap4):
    outer = ThreadComm(submap4, n_workers=4, min_parallel_work=0)
    try:
        caught = [None] * 4

        def body(r):
            try:
                make_comm(submap4, backend="virtual")
            except NestedCommError as exc:
                caught[r] = str(exc)

        outer.run_ranks(body)
        assert all(c and "thread" in c for c in caught)
    finally:
        outer.close()


def test_direct_construction_inside_worker_raises(submap4):
    outer = ThreadComm(submap4, n_workers=4, min_parallel_work=0)
    try:
        hits = []

        def body(r):
            for ctor in (ThreadComm, ProcessComm):
                try:
                    ctor(submap4)
                except NestedCommError:
                    hits.append(r)

        outer.run_ranks(body)
        assert len(hits) == 8  # both constructors refused on all 4 ranks
    finally:
        outer.close()
        shutdown_pool(force=True)


def test_process_worker_env_marker_raises(submap4, monkeypatch):
    """Spawned process-pool children set ``REPRO_COMM_WORKER``; any comm
    construction there must be refused the same way."""
    monkeypatch.setenv("REPRO_COMM_WORKER", "process")
    assert current_worker_backend() == "process"
    with pytest.raises(NestedCommError, match="process"):
        make_comm(submap4, backend="virtual")
    with pytest.raises(NestedCommError):
        ThreadComm(submap4)
    with pytest.raises(NestedCommError):
        ProcessComm(submap4)


def test_guard_clears_after_region(submap4):
    outer = ThreadComm(submap4, n_workers=4, min_parallel_work=0)
    try:
        outer.run_ranks(lambda r: r)
        assert current_worker_backend() is None
        # Construction on the orchestrator thread is unaffected.
        comm = make_comm(submap4, backend="virtual")
        assert isinstance(comm, VirtualComm)
    finally:
        outer.close()


def test_nested_run_ranks_still_inlines(submap4):
    """The guard rejects nested *construction*; nested run_ranks on the
    same communicator stays legal (inline fallback, no deadlock)."""
    comm = ThreadComm(submap4, n_workers=4, min_parallel_work=0)
    try:
        def outer(r):
            return comm.run_ranks(lambda q: (r, q))[r]

        assert comm.run_ranks(outer) == [(r, r) for r in range(4)]
    finally:
        comm.close()
