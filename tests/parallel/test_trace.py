"""Message-trace validation: the symmetry a correct MPI exchange must have."""

import numpy as np
import pytest

from repro.core.distributed import DistVector
from repro.fem.bc import clamp_edge_dofs
from repro.fem.material import Material
from repro.fem.mesh import structured_quad_mesh
from repro.parallel.comm import VirtualComm
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map

MAT = Material(E=100.0, nu=0.3)


@pytest.fixture
def traced_comm():
    mesh = structured_quad_mesh(4, 4)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition.build(mesh, 4)
    submap = build_subdomain_map(mesh, part, bc)
    return VirtualComm(submap, trace=True), submap


def test_trace_disabled_by_default(traced_comm):
    _, submap = traced_comm
    comm = VirtualComm(submap)
    comm.interface_assemble([np.zeros(n) for n in submap.local_sizes])
    assert comm.message_log == []


def test_interface_messages_pairwise_symmetric(traced_comm):
    """For every message s -> t there is a t -> s message of equal size —
    interface sharing is symmetric by construction."""
    comm, submap = traced_comm
    comm.interface_assemble([np.zeros(n) for n in submap.local_sizes])
    log = set(comm.message_log)
    assert log
    for s, t, words in log:
        assert (t, s, words) in log


def test_no_self_messages(traced_comm):
    comm, submap = traced_comm
    comm.interface_assemble([np.zeros(n) for n in submap.local_sizes])
    assert all(s != t for s, t, _ in comm.message_log)


def test_message_sizes_match_shared_dofs(traced_comm):
    comm, submap = traced_comm
    comm.interface_assemble([np.zeros(n) for n in submap.local_sizes])
    for s, t, words in comm.message_log:
        assert words == len(submap.shared[s][t])


def test_log_accumulates_per_collective(traced_comm):
    comm, submap = traced_comm
    parts = [np.zeros(n) for n in submap.local_sizes]
    comm.interface_assemble(parts)
    n1 = len(comm.message_log)
    comm.interface_assemble(parts)
    assert len(comm.message_log) == 2 * n1


def test_halo_exchange_traced():
    from repro.core.rdd import build_rdd_system
    from repro.fem.cantilever import cantilever_problem
    from repro.partition.node_partition import NodePartition

    p = cantilever_problem(nx=4, ny=3)
    part = NodePartition.build(p.mesh, 3)
    system = build_rdd_system(p.mesh, p.bc, part, p.stiffness, p.load)
    system.comm.trace = True
    x = [np.zeros(len(o)) for o in system.own]
    system.comm.halo_exchange(x, system.plan)
    log = system.comm.message_log
    assert log
    # every message's words match the plan's send list
    for s, t, words in log:
        assert words == len(system.plan[s][t][0])
