"""Counter plumbing."""

import pytest

from repro.parallel.stats import CommStats, RankStats


def test_merge():
    a = RankStats(flops=10, nbr_messages=2, nbr_words=5, reductions=1)
    b = RankStats(flops=5, nbr_words=3, reduction_words=2)
    a.merge(b)
    assert a.flops == 15
    assert a.nbr_messages == 2
    assert a.nbr_words == 8
    assert a.reduction_words == 2


def test_snapshot_independent():
    cs = CommStats(2)
    cs.ranks[0].flops = 7
    snap = cs.snapshot()
    cs.ranks[0].flops = 100
    assert snap.ranks[0].flops == 7


def test_delta():
    cs = CommStats(2)
    cs.ranks[0].flops = 10
    cs.ranks[1].nbr_messages = 3
    before = cs.snapshot()
    cs.ranks[0].flops = 25
    cs.ranks[1].nbr_messages = 7
    d = cs.delta(before)
    assert d.ranks[0].flops == 15
    assert d.ranks[1].nbr_messages == 4


def test_aggregates():
    cs = CommStats(3)
    for i, r in enumerate(cs.ranks):
        r.flops = 10 * (i + 1)
        r.reductions = 2
        r.nbr_messages = i
        r.nbr_words = 5 * i
    assert cs.total_flops == 60
    assert cs.max_flops == 30
    assert cs.total_nbr_messages == 3
    assert cs.total_nbr_words == 15
    assert cs.max_reductions == 2


def test_reset():
    cs = CommStats(2)
    cs.ranks[0].flops = 5
    cs.reset()
    assert cs.total_flops == 0


def test_rank_count_validated():
    with pytest.raises(ValueError):
        CommStats(2, ranks=[RankStats()])
