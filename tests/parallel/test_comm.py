"""Virtual communicator collectives."""

import numpy as np
import pytest

from repro.fem.bc import clamp_edge_dofs
from repro.fem.mesh import structured_quad_mesh
from repro.parallel.comm import VirtualComm
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map


@pytest.fixture
def comm2():
    mesh = structured_quad_mesh(4, 2)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition(mesh, np.array([0, 0, 1, 1] * 2), 2)
    submap = build_subdomain_map(mesh, part, bc)
    return VirtualComm(submap), submap, bc


def test_interface_assemble_values(comm2):
    """Assembling local parts gives the multiplicity-weighted global sum."""
    comm, submap, bc = comm2
    x = np.random.default_rng(1).standard_normal(bc.n_free)
    parts = submap.restrict(x)  # global-distributed: same x on interface
    out = comm.interface_assemble(parts)
    # each subdomain now holds multiplicity * x on its dofs
    for s, g in enumerate(submap.l2g):
        assert np.allclose(out[s], submap.multiplicity[g] * x[g])


def test_interface_assemble_charges_messages(comm2):
    comm, submap, _ = comm2
    parts = [np.zeros(n) for n in submap.local_sizes]
    comm.interface_assemble(parts)
    for s in range(2):
        assert comm.stats.ranks[s].nbr_messages == 1
        assert comm.stats.ranks[s].nbr_words == 6


def test_allreduce_sum_scalars(comm2):
    comm, _, _ = comm2
    total = comm.allreduce_sum([1.5, 2.5])
    assert total == 4.0
    assert all(r.reductions == 1 for r in comm.stats.ranks)


def test_allreduce_sum_arrays(comm2):
    comm, _, _ = comm2
    total = comm.allreduce_sum([np.array([1.0, 2.0]), np.array([3.0, 4.0])], words=2)
    assert np.array_equal(total, [4.0, 6.0])
    assert comm.stats.ranks[0].reduction_words == 2


def test_wrong_part_count_rejected(comm2):
    comm, _, _ = comm2
    with pytest.raises(ValueError):
        comm.allreduce_sum([1.0])
    with pytest.raises(ValueError):
        comm.interface_assemble([np.zeros(3)])


def test_halo_exchange_roundtrip():
    """Two ranks exchanging boundary entries into each other's ext buffer."""
    from repro.partition.interface import SubdomainMap

    own = [np.array([0, 1]), np.array([2, 3])]
    submap = SubdomainMap(4, 2, own, np.ones(4, dtype=np.int64), [dict(), dict()])
    comm = VirtualComm(submap)
    # rank 0 needs dof 2 (owner 1, its local 0); rank 1 needs dof 1.
    plan = {
        0: {1: (np.array([1]), np.array([0]))},
        1: {0: (np.array([0]), np.array([0]))},
    }
    x = [np.array([10.0, 11.0]), np.array([12.0, 13.0])]
    ext = comm.halo_exchange(x, plan)
    assert np.array_equal(ext[0], [12.0])  # rank 1 sent its local 0 -> 12
    assert np.array_equal(ext[1], [11.0])  # rank 0 sent its local 1 -> 11
    assert comm.stats.ranks[0].nbr_messages == 1
    assert comm.stats.ranks[0].nbr_words == 1


def test_reset_stats(comm2):
    comm, submap, _ = comm2
    comm.interface_assemble([np.zeros(n) for n in submap.local_sizes])
    comm.reset_stats()
    assert comm.stats.total_flops == 0
    assert comm.stats.total_nbr_messages == 0
