"""ProcessComm backend: shared-memory collectives parity, dispatch
thresholds, registry wiring, error taxonomy.

Every test forces ``min_dispatch_work=0`` so even tiny payloads travel
through the worker processes — the point is to exercise the shared-memory
fan-out, not the inline fallback (which is literally ``VirtualComm``'s
code).  The pool is shared across tests and force-drained once at module
teardown so no worker processes leak into the rest of the session.
"""

import numpy as np
import pytest

from repro.fem.bc import clamp_edge_dofs
from repro.fem.mesh import structured_quad_mesh
from repro.parallel.comm import VirtualComm, make_comm, use_comm_backend
from repro.parallel.process_comm import (
    ProcessComm,
    ProcessWorkerError,
    pool_process_count,
    shutdown_pool,
)
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map


@pytest.fixture(scope="module", autouse=True)
def _drain_pool_at_end():
    yield
    shutdown_pool(force=True)
    assert pool_process_count() == 0


@pytest.fixture
def submap4():
    mesh = structured_quad_mesh(8, 2)
    bc = clamp_edge_dofs(mesh, "left")
    labels = np.repeat(np.arange(4), 2)
    part = ElementPartition(mesh, np.concatenate([labels, labels]), 4)
    return build_subdomain_map(mesh, part, bc)


def _process_comm(submap, **kw):
    kw.setdefault("min_dispatch_work", 0)
    kw.setdefault("n_workers", 2)
    return ProcessComm(submap, **kw)


def _ring_plan(sizes):
    """A symmetric halo plan pairing neighbouring ranks ``(s, s+1)``.

    Each rank receives its right neighbour's values into slots [0, 1] and
    its left neighbour's into slots [2, 3] — disjoint, like a real RDD
    plan."""
    size = len(sizes)
    plan = {s: {} for s in range(size)}
    for s in range(size - 1):
        plan[s][s + 1] = (
            np.arange(2, dtype=np.int64),
            np.arange(2, dtype=np.int64),
        )
        plan[s + 1][s] = (
            np.arange(1, 3, dtype=np.int64),
            np.arange(2, 4, dtype=np.int64),
        )
    return plan


def _rank_parts(submap, seed=0, k=None):
    rng = np.random.default_rng(seed)
    shape = lambda n: (n,) if k is None else (n, k)
    return [rng.standard_normal(shape(n)) for n in submap.local_sizes]


# ----------------------------------------------------------------------
# Collective parity (bitwise) against VirtualComm
# ----------------------------------------------------------------------
def test_interface_assemble_bitwise(submap4):
    parts = _rank_parts(submap4)
    ref = VirtualComm(submap4).interface_assemble([p.copy() for p in parts])
    with _process_comm(submap4) as comm:
        got = comm.interface_assemble(parts)
    for a, b in zip(ref, got):
        assert a.tobytes() == b.tobytes()


def test_interface_assemble_block_bitwise(submap4):
    parts = _rank_parts(submap4, seed=1, k=3)
    ref = VirtualComm(submap4).interface_assemble_block(
        [p.copy() for p in parts]
    )
    with _process_comm(submap4) as comm:
        got = comm.interface_assemble_block(parts)
    for a, b in zip(ref, got):
        assert a.shape == b.shape and a.tobytes() == b.tobytes()


def test_allreduce_scalar_and_array_bitwise(submap4):
    vals = [0.1 * (r + 1) ** 3 for r in range(4)]
    arrs = [np.linspace(r, r + 1, 5) for r in range(4)]
    ref_s = VirtualComm(submap4).allreduce_sum(list(vals))
    ref_a = VirtualComm(submap4).allreduce_sum([a.copy() for a in arrs], words=5)
    with _process_comm(submap4) as comm:
        got_s = comm.allreduce_sum(vals)
        got_a = comm.allreduce_sum(arrs, words=5)
    assert np.float64(ref_s).tobytes() == np.float64(got_s).tobytes()
    assert ref_a.tobytes() == got_a.tobytes()


def test_halo_exchange_bitwise(submap4):
    sizes = submap4.local_sizes
    plan = _ring_plan(sizes)
    parts = _rank_parts(submap4, seed=2)
    ref = VirtualComm(submap4).halo_exchange([p.copy() for p in parts], plan)
    with _process_comm(submap4) as comm:
        got = comm.halo_exchange(parts, plan)
        # Cached-plan second round must agree too.
        got2 = comm.halo_exchange(parts, plan)
    for a, b, c in zip(ref, got, got2):
        assert a.tobytes() == b.tobytes() == c.tobytes()


def test_halo_exchange_block_bitwise(submap4):
    plan = _ring_plan(submap4.local_sizes)
    parts = _rank_parts(submap4, seed=3, k=2)
    ref = VirtualComm(submap4).halo_exchange_block(
        [p.copy() for p in parts], plan
    )
    with _process_comm(submap4) as comm:
        got = comm.halo_exchange_block(parts, plan)
    for a, b in zip(ref, got):
        assert a.shape == b.shape and a.tobytes() == b.tobytes()


def test_stats_identical_to_virtual(submap4):
    parts = _rank_parts(submap4, seed=4)
    plan = _ring_plan(submap4.local_sizes)
    ref = VirtualComm(submap4)
    ref.interface_assemble([p.copy() for p in parts])
    ref.allreduce_sum([1.0, 2.0, 3.0, 4.0])
    ref.halo_exchange([p.copy() for p in parts], plan)
    with _process_comm(submap4) as comm:
        comm.interface_assemble(parts)
        comm.allreduce_sum([1.0, 2.0, 3.0, 4.0])
        comm.halo_exchange(parts, plan)
        assert comm.stats.ranks == ref.stats.ranks


# ----------------------------------------------------------------------
# Dispatch behaviour
# ----------------------------------------------------------------------
def test_run_ranks_inline_in_orchestrator(submap4):
    import os

    with _process_comm(submap4) as comm:
        pids = comm.run_ranks(lambda r: os.getpid())
        assert pids == [os.getpid()] * 4


def test_small_work_never_starts_pool(submap4):
    shutdown_pool(force=True)
    with ProcessComm(submap4, n_workers=2, min_dispatch_work=10**9) as comm:
        parts = _rank_parts(submap4, seed=5)
        ref = VirtualComm(submap4).interface_assemble(
            [p.copy() for p in parts]
        )
        got = comm.interface_assemble(parts)
        for a, b in zip(ref, got):
            assert a.tobytes() == b.tobytes()
        assert pool_process_count() == 0  # inline path, pool stayed cold


def test_non_float64_reduce_falls_back_inline(submap4):
    with _process_comm(submap4) as comm:
        got = comm.allreduce_sum([1, 2, 3, 4])  # python ints
        assert got == VirtualComm(submap4).allreduce_sum([1, 2, 3, 4])


def test_worker_error_carries_remote_traceback(submap4):
    with _process_comm(submap4) as comm:
        comm._ensure_arena(64)
        pool = comm._ensure_pool()
        with pool.lock:
            with pytest.raises(ProcessWorkerError, match="unknown worker op"):
                comm._control(pool, "no-such-op")
        # The pool survives a worker-level error (only crashes break it).
        assert not pool.broken
        assert comm.allreduce_sum([1.0, 1.0, 1.0, 1.0]) == 4.0


# ----------------------------------------------------------------------
# Registry / construction wiring
# ----------------------------------------------------------------------
def test_make_comm_selects_process(submap4):
    comm = make_comm(submap4, backend="process")
    try:
        assert isinstance(comm, ProcessComm)
        assert comm.backend_name == "process"
    finally:
        comm.close()


def test_use_comm_backend_process_drains_pool(submap4):
    with use_comm_backend("process"):
        with _process_comm(submap4) as comm:
            comm.interface_assemble(_rank_parts(submap4, seed=6))
        assert pool_process_count() > 0  # parked for the next comm
    assert pool_process_count() == 0  # context exit drained it
