"""Modeled-time breakdown."""

import numpy as np
import pytest

from repro.parallel.machine import (
    SGI_ORIGIN,
    MachineModel,
    modeled_time,
    time_breakdown,
)
from repro.parallel.stats import CommStats


def _stats(flops=0, msgs=0, words=0, reds=0, red_words=0, p=4):
    cs = CommStats(p)
    for r in cs.ranks:
        r.flops = flops
        r.nbr_messages = msgs
        r.nbr_words = words
        r.reductions = reds
        r.reduction_words = red_words
    return cs


def test_components_sum_to_total():
    cs = _stats(flops=10_000, msgs=5, words=300, reds=7, red_words=14)
    bd = time_breakdown(cs, SGI_ORIGIN)
    assert bd["total"] == pytest.approx(
        bd["compute"] + bd["p2p"] + bd["reduction"]
    )
    assert bd["total"] == pytest.approx(modeled_time(cs, SGI_ORIGIN))


def test_pure_compute():
    m = MachineModel("t", 1e6, 1e-3, 1e6, 1e-3)
    bd = time_breakdown(_stats(flops=2_000_000), m)
    assert bd["compute"] == pytest.approx(2.0)
    assert bd["p2p"] == 0.0
    assert bd["reduction"] == 0.0


def test_pure_p2p():
    m = MachineModel("t", 1e6, latency=1e-3, bandwidth=8e6, reduce_latency=0)
    bd = time_breakdown(_stats(msgs=10, words=1000), m)
    assert bd["p2p"] == pytest.approx(10 * 1e-3 + 8000 / 8e6)
    assert bd["compute"] == 0.0


def test_reduction_counts_tree_hops():
    m = MachineModel("t", 1e6, 0, 1e12, reduce_latency=1e-6)
    bd = time_breakdown(_stats(reds=5, red_words=5, p=8), m)
    assert bd["reduction"] == pytest.approx(5 * 3e-6, rel=1e-3)
