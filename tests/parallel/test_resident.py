"""Resident rank execution: gating, parity, fault recovery, observability.

The resident engines (``repro.parallel.resident``) move per-rank solver
arithmetic into the worker-process pool while keeping every collective,
counter and chaos hook at the orchestrator.  These tests pin the parts
the solver-level parity suites cannot see directly: the inline/resident
mode decision, generation invalidation across pool respawns, the named
error taxonomy for crashed/stalled/unshipped workers, and the per-worker
busy-seconds observability contract.
"""

import os
import signal

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.bc import clamp_edge_dofs
from repro.fem.mesh import structured_quad_mesh
from repro.obs import Tracer
from repro.obs.tracer import chrome_trace_from_dict
from repro.parallel.chaos import ChaosComm
from repro.parallel.comm import VirtualComm
from repro.parallel.process_comm import (
    ProcessComm,
    ProcessPoolError,
    ProcessWorkerError,
    WorkerTimeoutError,
    pool_process_count,
    shutdown_pool,
)
from repro.parallel.resident import engine_mode
from repro.parallel.thread_comm import ThreadComm
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map


@pytest.fixture(autouse=True)
def _drain_pool():
    shutdown_pool(force=True)
    yield
    shutdown_pool(force=True)
    assert pool_process_count() == 0


@pytest.fixture(autouse=True)
def _no_resident_env(monkeypatch):
    """Start every test from the unset-env default."""
    monkeypatch.delenv("REPRO_PROCESS_RESIDENT", raising=False)


def _submap(n_parts=4):
    mesh = structured_quad_mesh(8, 2)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition.build(mesh, n_parts)
    return build_subdomain_map(mesh, part, bc)


def _solve(problem, backend, **changes):
    opts = SolverOptions(**changes).replace(comm_backend=backend)
    return solve_cantilever(problem, n_parts=4, options=opts)


# ----------------------------------------------------------------------
# Mode gating
# ----------------------------------------------------------------------
def test_non_process_backends_always_inline(monkeypatch):
    """Virtual, thread and chaos comms run inline even when the env
    forces resident — only a live multi-rank ProcessComm qualifies."""
    monkeypatch.setenv("REPRO_PROCESS_RESIDENT", "1")
    submap = _submap()
    for comm in (
        VirtualComm(submap),
        ThreadComm(submap, n_workers=2, min_parallel_work=0),
        ChaosComm(submap),
    ):
        try:
            assert engine_mode(comm, 10**9) == "inline", comm.backend_name
        finally:
            comm.close()


def test_env_overrides_and_closed_comm(monkeypatch):
    comm = ProcessComm(_submap(), n_workers=2, min_dispatch_work=0)
    try:
        monkeypatch.setenv("REPRO_PROCESS_RESIDENT", "0")
        assert engine_mode(comm, 10**9) == "inline"
        monkeypatch.setenv("REPRO_PROCESS_RESIDENT", "1")
        assert engine_mode(comm, 1) == "resident"
    finally:
        comm.close()
    # A closed comm can never host resident state.
    assert engine_mode(comm, 10**9) == "inline"


def test_unset_env_defers_to_dispatch_threshold():
    comm = ProcessComm(_submap(), n_workers=2, min_dispatch_work=10**6)
    try:
        assert engine_mode(comm, 10**6 - 1) == "inline"
        assert engine_mode(comm, 10**6) == "resident"
    finally:
        comm.close()


def test_single_rank_is_inline(monkeypatch):
    monkeypatch.setenv("REPRO_PROCESS_RESIDENT", "1")
    comm = ProcessComm(_submap(n_parts=1), n_workers=2, min_dispatch_work=0)
    try:
        assert engine_mode(comm, 10**9) == "inline"
    finally:
        comm.close()


# ----------------------------------------------------------------------
# Respawn invalidation and crash recovery
# ----------------------------------------------------------------------
def test_forced_pool_shutdown_reships_next_solve(tiny_problem, monkeypatch):
    """A drained pool loses the resident state; the next solve re-ships
    transparently and still matches virtual bitwise."""
    sv = _solve(tiny_problem, "virtual")
    monkeypatch.setenv("REPRO_PROCESS_RESIDENT", "1")
    monkeypatch.setenv("REPRO_PROCESS_WORKERS", "2")
    s1 = _solve(tiny_problem, "process")
    shutdown_pool(force=True)
    s2 = _solve(tiny_problem, "process")
    for sp in (s1, s2):
        assert sv.result.residual_history == sp.result.residual_history
        assert np.array_equal(sv.result.x, sp.result.x)
        for rv, rp in zip(sv.stats.ranks, sp.stats.ranks):
            assert rv == rp


def test_killed_worker_named_error_then_bitwise_recovery(
    tiny_problem, monkeypatch
):
    """SIGKILLing a pool worker mid-session surfaces as the pool's named
    error (never a hang or wrong floats); the solve after that respawns,
    re-ships and matches virtual bitwise again."""
    sv = _solve(tiny_problem, "virtual")
    monkeypatch.setenv("REPRO_PROCESS_RESIDENT", "1")
    monkeypatch.setenv("REPRO_PROCESS_WORKERS", "2")
    s1 = _solve(tiny_problem, "process")
    assert np.array_equal(sv.result.x, s1.result.x)

    from repro.parallel.process_comm import _shared_pool

    victim = _shared_pool[0].process_ids()[0]
    os.kill(victim, signal.SIGKILL)
    with pytest.raises(ProcessPoolError):
        _solve(tiny_problem, "process")

    s2 = _solve(tiny_problem, "process")
    assert sv.result.residual_history == s2.result.residual_history
    assert np.array_equal(sv.result.x, s2.result.x)
    for rv, rp in zip(sv.stats.ranks, s2.stats.ranks):
        assert rv == rp


def test_stalled_rank_op_times_out_not_deadlocks():
    comm = ProcessComm(_submap(), n_workers=2, min_dispatch_work=0)
    try:
        comm.allreduce_sum([1.0] * comm.size)  # spawn + warm up
        comm.call_timeout = 0.4
        with pytest.raises(WorkerTimeoutError, match="did not reply"):
            comm.run_rank_op({"name": "stall", "seconds": 3.0}, [], [], 1)
    finally:
        comm.close()
        shutdown_pool(force=True)  # don't wait for the sleeper


def test_unshipped_generation_is_a_named_error():
    """A rank op against a generation the worker never received raises
    the structured worker error naming the re-ship contract."""
    comm = ProcessComm(_submap(), n_workers=2, min_dispatch_work=0)
    try:
        comm.allreduce_sum([1.0] * comm.size)
        with pytest.raises(ProcessWorkerError, match="not shipped"):
            comm.run_rank_op({"name": "mv", "gen": 10**9}, [], [], 1)
    finally:
        comm.close()


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
def test_trace_has_worker_busy_seconds_and_rank_op_spans(
    tiny_problem, monkeypatch
):
    monkeypatch.setenv("REPRO_PROCESS_RESIDENT", "1")
    monkeypatch.setenv("REPRO_PROCESS_WORKERS", "2")
    trc = Tracer()
    opts = SolverOptions(precond="gls(3)", comm_backend="process")
    summary = solve_cantilever(
        tiny_problem, n_parts=4, options=opts, tracer=trc
    )
    assert summary.result.converged
    trace = summary.result.trace
    workers = trace["worker_seconds"]
    assert len(workers) >= 1
    assert sum(workers) > 0.0
    names = {s["name"] for s in trace["spans"]}
    assert "resident_ship" in names
    rank_ops = [s for s in trace["spans"] if s["name"] == "rank_op"]
    assert rank_ops and all(s["cat"] == "comm" for s in rank_ops)
    ops = {s["args"]["op"] for s in rank_ops}
    # Fused vocabulary: polynomial applies are ONE "chain" dispatch and
    # each CGS coefficient round ONE "arn" dispatch — the per-piece
    # "dots"/"ortho" pair never appears on this path.
    assert {"mv", "chain", "arn"} <= ops
    assert "dots" not in ops and "ortho" not in ops
    # Chrome export renders one busy track per worker process.
    chrome = chrome_trace_from_dict(trace)
    chrome_names = {e["name"] for e in chrome["traceEvents"]}
    assert "worker0 busy" in chrome_names
