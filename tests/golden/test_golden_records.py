"""Golden-record regression tests.

Each ``tests/golden/*.json`` file is one :class:`RunRecord` produced by
the full driver pipeline on the paper's Mesh2 — the exact payload
``repro solve --json`` appends.  The tests pin

* the **record schema** (key set, including nested ``modeled_times`` and
  ``diagnostics``) so the serialized format cannot drift silently, and
* the **paper-claim numbers**: iteration counts are compared exactly
  (the virtual backend is deterministic) and the claimed preconditioner
  ordering GLS(7) < BJ-ILU(0) <= Neumann(20) is re-asserted from the
  pinned values.

Refresh after an intentional change with::

    pytest tests/golden --update-golden

then review the JSON diff like any other code change.

Comparison tolerances are explicit below: integers and strings exact,
residuals/modeled times to ``RTOL``, wall-clock time ignored.
"""

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.io.records import record_from_summary

GOLDEN_DIR = Path(__file__).resolve().parent
N_PARTS = 8

#: Relative tolerance for floating-point record fields.  The virtual
#: backend is deterministic, but residuals pass through enough reductions
#: that a libm / BLAS change may legitimately wiggle the last bits.
RTOL = 1e-9

#: Fields compared exactly (determinism of the virtual backend).
EXACT_FIELDS = (
    "label", "method", "precond", "n_parts", "n_eqn", "iterations",
    "converged", "comm_backend", "total_flops", "max_flops",
    "nbr_messages", "nbr_words", "reductions", "diagnostics",
    "schema_version",
)

#: Fields compared to RTOL.
FLOAT_FIELDS = ("final_residual", "true_residual")

#: Fields excluded from comparison (machine-dependent).
IGNORED_FIELDS = ("wall_time", "setup_time")

CASES = {
    "mesh2_edd_gls7": SolverOptions(
        method="edd-enhanced", precond="gls(7)", comm_backend="virtual"
    ),
    "mesh2_edd_neumann20": SolverOptions(
        method="edd-enhanced", precond="neumann(20)", comm_backend="virtual"
    ),
    "mesh2_rdd_bj_ilu0": SolverOptions(
        method="rdd", precond="bj-ilu0", comm_backend="virtual"
    ),
    "mesh2_edd_2l_gls7": SolverOptions(
        method="edd-enhanced",
        precond="2l(gls(7),deflate,tr)",
        comm_backend="virtual",
    ),
}


def _fresh_record(mesh2_problem, name: str) -> dict:
    options = CASES[name]
    summary = solve_cantilever(mesh2_problem, n_parts=N_PARTS, options=options)
    record = record_from_summary(
        summary, label=name, n_eqn=mesh2_problem.n_eqn
    )
    payload = asdict(record)
    payload["diagnostics"] = list(payload["diagnostics"])
    return payload


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.json"


def _load_golden(name: str) -> dict:
    path = _golden_path(name)
    if not path.exists():
        pytest.fail(
            f"golden file {path.name} missing - generate it with "
            f"`pytest tests/golden --update-golden`"
        )
    return json.loads(path.read_text())


@pytest.mark.parametrize("name", sorted(CASES))
def test_record_matches_golden(mesh2_problem, name, update_golden):
    fresh = _fresh_record(mesh2_problem, name)
    path = _golden_path(name)
    if update_golden:
        path.write_text(json.dumps(fresh, indent=2, sort_keys=True) + "\n")
        return
    golden = _load_golden(name)

    # Schema: the exact key set, in both directions.
    assert set(fresh) == set(golden), (
        "RunRecord schema drifted - refresh goldens deliberately with "
        "--update-golden if this is intentional"
    )
    assert set(golden["modeled_times"]) == set(fresh["modeled_times"])

    for key in EXACT_FIELDS:
        assert fresh[key] == golden[key], f"{name}.{key}"
    for key in FLOAT_FIELDS:
        assert fresh[key] == pytest.approx(golden[key], rel=RTOL), (
            f"{name}.{key}"
        )
    for machine, seconds in golden["modeled_times"].items():
        assert fresh["modeled_times"][machine] == pytest.approx(
            seconds, rel=RTOL
        ), f"{name}.modeled_times[{machine}]"


def test_paper_claim_iteration_ordering(update_golden):
    """Figs. 11-12 through the *parallel* driver at P=8: GLS(7) converges
    in the fewest iterations, Neumann(20) next, block-Jacobi ILU(0) last.

    Note the deliberate difference from the sequential claim pinned in
    tests/integration/test_paper_claims.py (GLS(7) < ILU(0) <= Neum(20)):
    there ILU(0) factors the *global* matrix, while the only ILU the
    distributed RDD solver can apply is block-Jacobi ILU(0), whose
    quality degrades with the block count — at 8 blocks it falls behind
    both polynomials.  Asserted from the pinned golden values so a
    convergence regression in any solver layer trips it."""
    if update_golden:
        pytest.skip("goldens being regenerated")
    gls = _load_golden("mesh2_edd_gls7")
    ilu = _load_golden("mesh2_rdd_bj_ilu0")
    neum = _load_golden("mesh2_edd_neumann20")
    for record in (gls, ilu, neum):
        assert record["converged"] is True
        assert record["diagnostics"] == []
    assert gls["iterations"] < neum["iterations"] < ilu["iterations"]


def test_two_level_beats_one_level(update_golden):
    """The pinned two-level GLS(7) record converges in strictly fewer
    iterations than the one-level GLS(7) record at the same P=8 — the
    coarse correction (deflated, translation-enriched) must pay for its
    extra per-iteration allreduce."""
    if update_golden:
        pytest.skip("goldens being regenerated")
    one = _load_golden("mesh2_edd_gls7")
    two = _load_golden("mesh2_edd_2l_gls7")
    assert two["converged"] is True
    assert two["iterations"] < one["iterations"]
    assert two["precond"].startswith("2L(")


def test_goldens_are_clean_runs(update_golden):
    """Golden runs are healthy by construction: converged, tiny verified
    true residual, no diagnostics."""
    if update_golden:
        pytest.skip("goldens being regenerated")
    for name in CASES:
        record = _load_golden(name)
        assert record["converged"] is True, name
        # tol (1e-6) x the driver's verification slack (100)
        assert record["true_residual"] <= 1e-4, name
        assert record["final_residual"] <= 1e-6, name
