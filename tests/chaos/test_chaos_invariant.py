"""The no-silent-wrong-answer invariant, swept over a fault matrix.

Every chaos run must end in one of exactly two states:

1. **converged** — and the solution's unscaled residual against the
   serially assembled operator (computed here, independently of the
   solver AND of the driver) is within the verification slack; or
2. **not converged** — and ``result.diagnostics`` names at least one
   structured anomaly from the known event vocabulary.

Any other outcome is a silently wrong answer, and the assertion message
prints the offending :class:`FaultPlan` as JSON so the exact run can be
replayed (``REPRO_CHAOS_PLAN='<json>' repro solve ... --comm-backend
chaos``; see docs/TESTING.md).

The reduced CI sweep is selected with ``-k smoke``.
"""

import numpy as np
import pytest

from repro.core.driver import _VERIFY_SLACK, solve_cantilever
from repro.core.options import SolverOptions
from repro.parallel.chaos import FaultPlan, FaultRule, use_fault_plan
from repro.solvers.diagnostics import EVENT_KINDS

pytestmark = pytest.mark.chaos

TOL = 1e-8

#: One transient fault per plan (count=1 default): a persistent fault on
#: every call is a coherently different operator — undetectable from the
#: inside by design — so transience is what the invariant sweeps.
PLANS = {
    "assemble-sign": FaultRule("interface_assemble", "sign_flip", call_index=5),
    "assemble-nan": FaultRule("interface_assemble", "nan", call_index=4),
    "assemble-drop": FaultRule(
        "interface_assemble", "drop_contribution", call_index=6
    ),
    "assemble-dup": FaultRule(
        "interface_assemble", "duplicate_payload", call_index=3
    ),
    "halo-nan": FaultRule("halo_exchange", "nan", call_index=4),
    "halo-zero": FaultRule("halo_exchange", "zero_word", call_index=2),
    "halo-drop": FaultRule("halo_exchange", "drop_contribution", call_index=3),
    "halo-stale-dup": FaultRule(
        "halo_exchange", "duplicate_payload", call_index=5
    ),
    "halo-reorder": FaultRule("halo_exchange", "reorder_payload", call_index=2),
    "allreduce-inf": FaultRule("allreduce_sum", "inf", call_index=2),
    "allreduce-flip": FaultRule("allreduce_sum", "sign_flip", call_index=3),
    "allreduce-drop": FaultRule(
        "allreduce_sum", "drop_contribution", call_index=4
    ),
    "allreduce-reorder": FaultRule(
        "allreduce_sum", "reorder_payload", call_index=1, count=None
    ),
    "any-stall": FaultRule("*", "stall", call_index=1, param=0.0, count=None),
}

CONFIGS = [
    ("edd-enhanced", "gls(7)"),
    ("edd-enhanced", "neumann(20)"),
    ("rdd", "gls(7)"),
    ("rdd", "neumann(20)"),
    ("rdd", "bj-ilu0"),
]

#: The reduced matrix the CI chaos smoke job runs under both inner
#: backends (select with ``-k smoke``).
SMOKE = [
    ("assemble-nan", "edd-enhanced", "gls(7)"),
    ("assemble-drop", "edd-enhanced", "neumann(20)"),
    ("halo-nan", "rdd", "gls(7)"),
    ("allreduce-flip", "rdd", "bj-ilu0"),
]


def _check_invariant(problem, plan, method, precond, inner):
    """Run one chaos solve and assert the invariant; returns the summary."""
    options = SolverOptions(
        method=method, precond=precond, tol=TOL, comm_backend="chaos"
    )
    with use_fault_plan(plan, inner=inner):
        summary = solve_cantilever(problem, n_parts=2, options=options)
    result = summary.result
    replay = (
        f"replay with REPRO_CHAOS_PLAN='{plan.to_json()}' "
        f"REPRO_CHAOS_INNER={inner} ({method}, {precond})"
    )
    if result.converged:
        # Independent ground truth: residual against the serial operator.
        rel = float(
            np.linalg.norm(problem.load - problem.stiffness @ result.x)
            / np.linalg.norm(problem.load)
        )
        assert rel <= TOL * _VERIFY_SLACK, (
            f"silent wrong answer: claims convergence with true residual "
            f"{rel:.3e}; {replay}"
        )
    else:
        assert result.diagnostics, (
            f"failed without naming an anomaly (empty diagnostics); {replay}"
        )
        for event in result.diagnostics:
            assert event.kind in EVENT_KINDS, (
                f"unknown diagnostic kind {event.kind!r}; {replay}"
            )
    return summary


@pytest.mark.parametrize("method,precond", CONFIGS,
                         ids=[f"{m}-{p}" for m, p in CONFIGS])
@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_no_silent_wrong_answer(tiny_problem, plan_name, method, precond):
    """The full fault matrix over the serial inner backend."""
    plan = FaultPlan(rules=(PLANS[plan_name],), seed=20060815)
    _check_invariant(tiny_problem, plan, method, precond, "virtual")


@pytest.mark.parametrize("inner", ["virtual", "thread", "process"])
@pytest.mark.parametrize("plan_name,method,precond", SMOKE,
                         ids=[f"{n}-{m}-{p}" for n, m, p in SMOKE])
def test_no_silent_wrong_answer_smoke(
    tiny_problem, plan_name, method, precond, inner
):
    """The reduced sweep, under every inner execution backend — this is
    what the CI chaos job runs (``-k smoke``)."""
    plan = FaultPlan(rules=(PLANS[plan_name],), seed=20060815)
    _check_invariant(tiny_problem, plan, method, precond, inner)


#: Two-level sweep: faults aimed at the *coarse* allreduce.  On the tiny
#: problem the coarse correction's allreduce is every third
#: ``allreduce_sum`` call starting at call 2 (verified from traced runs,
#: same layout for both configs below), so call indices 5 and 8 land on
#: coarse reductions deterministically.
TWO_LEVEL_CONFIGS = [
    ("edd-enhanced", "2l(gls(7),deflate)"),
    ("rdd", "2l(bj-ilu0,deflate)"),
]

TWO_LEVEL_PLANS = {
    "coarse-nan": FaultRule("allreduce_sum", "nan", call_index=5),
    "coarse-flip": FaultRule("allreduce_sum", "sign_flip", call_index=8),
    "coarse-zero": FaultRule("allreduce_sum", "zero_word", call_index=5),
}


@pytest.mark.parametrize("inner", ["virtual", "thread", "process"])
@pytest.mark.parametrize("method,precond", TWO_LEVEL_CONFIGS,
                         ids=[f"{m}-{p}" for m, p in TWO_LEVEL_CONFIGS])
@pytest.mark.parametrize("plan_name", sorted(TWO_LEVEL_PLANS))
def test_no_silent_wrong_answer_two_level(
    tiny_problem, plan_name, method, precond, inner
):
    """A corrupted coarse correction must never produce a silently wrong
    answer: the redundant dense solve amplifies whatever the faulted
    allreduce delivered to every rank, so the downstream hardening
    (finite-residual checks, verification slack) has to catch it — under
    both inner execution backends."""
    plan = FaultPlan(rules=(TWO_LEVEL_PLANS[plan_name],), seed=20060815)
    _check_invariant(tiny_problem, plan, method, precond, inner)


#: Batched-path sweep: every fault site, over one EDD and one RDD config.
#: The k-RHS solvers ride the *block* collectives (single coalesced
#: exchange per step), so this exercises the ChaosComm block proxies.
BATCH_CONFIGS = [("edd-enhanced", "gls(7)"), ("rdd", "bj-ilu0")]


@pytest.mark.parametrize("method,precond", BATCH_CONFIGS,
                         ids=[f"{m}-{p}" for m, p in BATCH_CONFIGS])
@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_no_silent_wrong_answer_batched(tiny_problem, plan_name, method,
                                        precond):
    """The invariant holds per column of a k=4 batched solve under every
    fault plan: a fault injected into one coalesced exchange corrupts all
    columns at once, and every one of them must either verify or name an
    anomaly."""
    from repro.core.session import solve_cantilever_batch

    plan = FaultPlan(rules=(PLANS[plan_name],), seed=20060815)
    options = SolverOptions(
        method=method, precond=precond, tol=TOL, comm_backend="chaos"
    )
    k = 4
    b_block = np.column_stack(
        [(1.0 + 0.25 * c) * tiny_problem.load for c in range(k)]
    )
    with use_fault_plan(plan, inner="virtual"):
        summary = solve_cantilever_batch(tiny_problem, b_block, 2, options)
    replay = (
        f"replay with REPRO_CHAOS_PLAN='{plan.to_json()}' "
        f"({method}, {precond}, nrhs={k})"
    )
    assert summary.n_rhs == k
    for c, result in enumerate(summary.results):
        if result.converged:
            rel = float(
                np.linalg.norm(
                    b_block[:, c] - tiny_problem.stiffness @ result.x
                )
                / np.linalg.norm(b_block[:, c])
            )
            assert rel <= TOL * _VERIFY_SLACK, (
                f"silent wrong answer in column {c}: claims convergence "
                f"with true residual {rel:.3e}; {replay}"
            )
        else:
            assert result.diagnostics, (
                f"column {c} failed without naming an anomaly; {replay}"
            )
            for event in result.diagnostics:
                assert event.kind in EVENT_KINDS, (
                    f"unknown diagnostic kind {event.kind!r}; {replay}"
                )


@pytest.mark.parametrize("seed", [1, 7, 1234])
def test_random_rank_fault_sweep(tiny_problem, seed):
    """Rules with no fixed rank pick seeded-random targets; the invariant
    must hold for any of them."""
    plan = FaultPlan(
        rules=(FaultRule("interface_assemble", "sign_flip", call_index=7),
               FaultRule("allreduce_sum", "zero_word", call_index=5)),
        seed=seed,
    )
    _check_invariant(tiny_problem, plan, "edd-enhanced", "gls(7)", "virtual")


def test_chaos_run_is_reproducible(tiny_problem):
    """Same plan, same solve => identical iteration history, diagnostics
    and solution — the property that makes a printed plan a full repro."""
    plan = FaultPlan(rules=(PLANS["assemble-nan"],), seed=99)
    options = SolverOptions(
        method="edd-enhanced", precond="gls(7)", tol=TOL,
        comm_backend="chaos",
    )
    runs = []
    for _ in range(2):
        with use_fault_plan(plan, inner="virtual"):
            runs.append(solve_cantilever(tiny_problem, 2, options=options))
    a, b = (s.result for s in runs)
    assert a.converged == b.converged
    assert a.iterations == b.iterations
    assert a.residual_history == b.residual_history
    assert [e.to_dict() for e in a.diagnostics] == [
        e.to_dict() for e in b.diagnostics
    ]
    assert np.array_equal(a.x, b.x, equal_nan=True)


def test_transient_fault_then_recovery(tiny_problem):
    """A single early NaN must not doom the solve: the hardened solvers
    detect it, and a restart from the (finite) recomputed residual may
    still converge — but never silently."""
    plan = FaultPlan(
        rules=(FaultRule("allreduce_sum", "nan", call_index=1),), seed=5
    )
    summary = _check_invariant(
        tiny_problem, plan, "edd-enhanced", "gls(7)", "virtual"
    )
    # Whatever the outcome, the record must tell the story.
    d = summary.to_dict()
    assert d["result"]["converged"] or d["result"]["diagnostics"]


@pytest.mark.parametrize("inner", ["virtual", "process"])
def test_stall_only_plan_converges_identically(tiny_problem, inner):
    """Stalls perturb latency, never numerics: the solve must match the
    healthy run bit for bit — including when the chaos proxy wraps the
    process backend (``REPRO_CHAOS_INNER=process`` composition)."""
    healthy = solve_cantilever(
        tiny_problem, 2,
        options=SolverOptions(precond="gls(7)", tol=TOL,
                              comm_backend="virtual"),
    )
    plan = FaultPlan(rules=(PLANS["any-stall"],), seed=0)
    with use_fault_plan(plan, inner=inner):
        stalled = solve_cantilever(
            tiny_problem, 2,
            options=SolverOptions(precond="gls(7)", tol=TOL,
                                  comm_backend="chaos"),
        )
    assert stalled.result.converged
    assert stalled.result.iterations == healthy.result.iterations
    assert np.array_equal(stalled.result.x, healthy.result.x)


def test_stalled_process_worker_times_out_not_deadlocks(tiny_problem):
    """A *worker-side* stall (a hung process, not a chaos latency fault)
    must surface as :class:`WorkerTimeoutError` within the per-call
    timeout instead of deadlocking the pool — the structured-failure
    contract chaos plans rely on when composed over ``inner=process``."""
    import time

    from repro.core.session import PreparedSystem
    from repro.parallel.process_comm import (
        ProcessComm,
        WorkerTimeoutError,
        shutdown_pool,
    )

    options = SolverOptions(precond="gls(7)", tol=TOL, comm_backend="process")
    prepared = PreparedSystem.build(tiny_problem, 2, options)
    try:
        comm = prepared.system.comm
        assert isinstance(comm, ProcessComm)
        comm.min_dispatch_work = 0
        comm.allreduce_sum([1.0, 1.0])  # warm the pool
        comm.call_timeout = 0.4
        t0 = time.monotonic()
        with pytest.raises(WorkerTimeoutError, match="did not reply"):
            comm._debug_stall(3.0)
        assert time.monotonic() - t0 < 2.5
    finally:
        prepared.close()
        shutdown_pool(force=True)
