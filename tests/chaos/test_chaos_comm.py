"""ChaosComm unit behaviour: passthrough parity with an empty plan,
per-kind injection semantics on each collective, determinism, and the
count/call-index targeting rules."""

import numpy as np
import pytest

from repro.fem.bc import clamp_edge_dofs
from repro.fem.mesh import structured_quad_mesh
from repro.parallel.chaos import ChaosComm, FaultPlan, FaultRule, use_fault_plan
from repro.parallel.comm import VirtualComm, make_comm, use_comm_backend
from repro.parallel.thread_comm import ThreadComm
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import SubdomainMap, build_subdomain_map

pytestmark = pytest.mark.chaos


@pytest.fixture
def submap4():
    mesh = structured_quad_mesh(8, 2)
    bc = clamp_edge_dofs(mesh, "left")
    labels = np.repeat(np.arange(4), 2)
    part = ElementPartition(mesh, np.concatenate([labels, labels]), 4)
    return build_subdomain_map(mesh, part, bc)


@pytest.fixture
def parts4(submap4, rng):
    return [rng.standard_normal(len(g)) for g in submap4.l2g]


def _halo_submap():
    """Two ranks, two owned DOFs each, no interface sharing."""
    own = [np.array([0, 1]), np.array([2, 3])]
    return SubdomainMap(4, 2, own, np.ones(4, dtype=np.int64), [dict(), dict()])


def _halo_plan():
    """Each rank sends both its entries to the other."""
    return {
        0: {1: (np.array([0, 1]), np.array([0, 1]))},
        1: {0: (np.array([0, 1]), np.array([0, 1]))},
    }


def _chaos(submap, *rules, seed=0, inner="virtual") -> ChaosComm:
    return ChaosComm(submap, plan=FaultPlan(rules=tuple(rules), seed=seed),
                     inner=inner)


# ----------------------------------------------------------------------
# Passthrough parity (empty plan == inner backend, bit for bit)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("inner", ["virtual", "thread"])
def test_empty_plan_is_bit_identical(submap4, parts4, inner):
    ref = VirtualComm(submap4)
    chaos = _chaos(submap4, inner=inner)
    try:
        for a, b in zip(ref.interface_assemble(parts4),
                        chaos.interface_assemble(parts4)):
            assert np.array_equal(a, b)
        vals = [float(p[0]) for p in parts4]
        assert ref.allreduce_sum(vals) == chaos.allreduce_sum(vals)
        assert chaos.injected == []
    finally:
        chaos.close()


def test_empty_plan_halo_parity():
    submap = _halo_submap()
    x = [np.array([10.0, 11.0]), np.array([12.0, 13.0])]
    ref = VirtualComm(submap).halo_exchange(x, _halo_plan())
    got = _chaos(submap).halo_exchange(x, _halo_plan())
    for a, b in zip(ref, got):
        assert np.array_equal(a, b)


def test_stats_charged_once_not_through_inner(submap4, parts4):
    """The proxy's own counters see the traffic; the wrapped comm is a
    pure dispatch engine, so nothing is double-counted."""
    chaos = _chaos(submap4)
    chaos.interface_assemble(parts4)
    assert sum(r.nbr_messages for r in chaos.stats.ranks) > 0
    assert sum(r.nbr_messages for r in chaos.inner.stats.ranks) == 0


# ----------------------------------------------------------------------
# Construction rules
# ----------------------------------------------------------------------
def test_chaos_cannot_wrap_chaos(submap4):
    with pytest.raises(ValueError, match="chaos"):
        ChaosComm(submap4, inner="chaos")
    with pytest.raises(ValueError, match="chaos"):
        ChaosComm(submap4, inner=ChaosComm(submap4))


def test_wraps_existing_comm_instance(submap4, parts4):
    inner = ThreadComm(submap4, n_workers=2, min_parallel_work=0)
    chaos = ChaosComm(submap4, inner=inner)
    try:
        ref = VirtualComm(submap4).interface_assemble(parts4)
        for a, b in zip(ref, chaos.interface_assemble(parts4)):
            assert np.array_equal(a, b)
        assert chaos.inner is inner
    finally:
        chaos.close()


def test_make_comm_builds_chaos_from_active_plan(submap4):
    plan = FaultPlan(rules=(FaultRule("allreduce_sum", "nan"),), seed=3)
    with use_fault_plan(plan, inner="virtual"):
        with use_comm_backend("chaos"):
            comm = make_comm(submap4)
    assert isinstance(comm, ChaosComm)
    assert comm.plan == plan
    assert comm.inner.backend_name == "virtual"


# ----------------------------------------------------------------------
# Value faults
# ----------------------------------------------------------------------
def test_nan_injection_in_assembly(submap4, parts4):
    chaos = _chaos(
        submap4, FaultRule("interface_assemble", "nan", rank=2), seed=5
    )
    ref = VirtualComm(submap4).interface_assemble(parts4)
    out = chaos.interface_assemble(parts4)
    assert np.isnan(out[2]).sum() == 1
    for s in (0, 1, 3):
        assert np.array_equal(out[s], ref[s])
    (rec,) = chaos.injected
    assert rec["kind"] == "nan" and rec["rank"] == 2


def test_sign_flip_changes_one_word(submap4, parts4):
    chaos = _chaos(
        submap4, FaultRule("interface_assemble", "sign_flip", rank=0), seed=5
    )
    ref = VirtualComm(submap4).interface_assemble(parts4)
    out = chaos.interface_assemble(parts4)
    diff = np.flatnonzero(out[0] != ref[0])
    assert len(diff) <= 1  # exactly one word (or a zero got "flipped")
    if len(diff):
        assert out[0][diff[0]] == -ref[0][diff[0]]


def test_zero_word_and_inf_in_halo():
    submap = _halo_submap()
    x = [np.array([10.0, 11.0]), np.array([12.0, 13.0])]
    out = _chaos(
        submap, FaultRule("halo_exchange", "zero_word", rank=0), seed=1
    ).halo_exchange(x, _halo_plan())
    assert (out[0] == 0.0).sum() == 1
    out = _chaos(
        submap, FaultRule("halo_exchange", "inf", rank=1), seed=1
    ).halo_exchange(x, _halo_plan())
    assert np.isinf(out[1]).sum() == 1


def test_allreduce_scalar_corruption(submap4):
    vals = [1.0, 2.0, 3.0, 4.0]
    chaos = _chaos(submap4, FaultRule("allreduce_sum", "sign_flip"))
    assert chaos.allreduce_sum(vals) == -10.0
    chaos = _chaos(submap4, FaultRule("allreduce_sum", "nan"))
    assert np.isnan(chaos.allreduce_sum(vals))


def test_allreduce_array_corruption(submap4, rng):
    vals = [rng.standard_normal(6) for _ in range(4)]
    ref = VirtualComm(submap4).allreduce_sum(vals, words=6)
    out = _chaos(
        submap4, FaultRule("allreduce_sum", "zero_word"), seed=9
    ).allreduce_sum(vals, words=6)
    assert (out != ref).sum() == 1
    assert out[out != ref] == 0.0


# ----------------------------------------------------------------------
# Message-level faults
# ----------------------------------------------------------------------
def test_drop_contribution_in_assembly(submap4, parts4):
    chaos = _chaos(
        submap4, FaultRule("interface_assemble", "drop_contribution", rank=1),
        seed=2,
    )
    ref = VirtualComm(submap4).interface_assemble(parts4)
    out = chaos.interface_assemble(parts4)
    (rec,) = chaos.injected
    t = int(rec["detail"].split()[-1])  # "dropped contribution of rank t"
    shared_idx = submap4.shared[1][t]
    # Dropped DOFs miss exactly rank t's partial sums; all else intact.
    g2l_t = np.full(submap4.n_global, -1, dtype=np.int64)
    g2l_t[submap4.l2g[t]] = np.arange(len(submap4.l2g[t]))
    contrib = parts4[t][g2l_t[submap4.l2g[1][shared_idx]]]
    assert np.allclose(out[1][shared_idx], ref[1][shared_idx] - contrib)
    mask = np.ones(len(out[1]), dtype=bool)
    mask[shared_idx] = False
    assert np.array_equal(out[1][mask], ref[1][mask])


def test_duplicate_contribution_in_assembly(submap4, parts4):
    chaos = _chaos(
        submap4, FaultRule("interface_assemble", "duplicate_payload", rank=1),
        seed=2,
    )
    ref = VirtualComm(submap4).interface_assemble(parts4)
    out = chaos.interface_assemble(parts4)
    (rec,) = chaos.injected
    assert rec["kind"] == "duplicate_payload"
    changed = np.flatnonzero(out[1] != ref[1])
    assert len(changed) > 0
    assert set(changed) <= set(np.asarray(
        submap4.shared[1][int(rec["detail"].split()[3])]
    ))


def test_drop_payload_in_halo():
    submap = _halo_submap()
    x = [np.array([10.0, 11.0]), np.array([12.0, 13.0])]
    out = _chaos(
        submap, FaultRule("halo_exchange", "drop_contribution", rank=0)
    ).halo_exchange(x, _halo_plan())
    assert np.array_equal(out[0], np.zeros(2))  # message never arrived
    assert np.array_equal(out[1], np.array([10.0, 11.0]))


def test_stale_duplicate_payload_in_halo():
    submap = _halo_submap()
    chaos = _chaos(
        submap,
        FaultRule("halo_exchange", "duplicate_payload", rank=0, call_index=1),
    )
    first = [np.array([10.0, 11.0]), np.array([12.0, 13.0])]
    second = [np.array([20.0, 21.0]), np.array([22.0, 23.0])]
    chaos.halo_exchange(first, _halo_plan())
    out = chaos.halo_exchange(second, _halo_plan())
    # Rank 0 got a stale duplicate of call 0's payload from rank 1.
    assert np.array_equal(out[0], np.array([12.0, 13.0]))
    assert np.array_equal(out[1], np.array([20.0, 21.0]))


def test_reorder_payload_in_halo_is_permutation():
    submap = _halo_submap()
    x = [np.array([10.0, 11.0]), np.array([12.0, 13.0])]
    out = _chaos(
        submap, FaultRule("halo_exchange", "reorder_payload", rank=0), seed=11
    ).halo_exchange(x, _halo_plan())
    assert sorted(out[0]) == [12.0, 13.0]  # same words, possibly permuted
    assert np.array_equal(out[1], np.array([10.0, 11.0]))


def test_allreduce_drop_and_duplicate(submap4):
    vals = [1.0, 2.0, 3.0, 4.0]
    chaos = _chaos(submap4, FaultRule("allreduce_sum", "drop_contribution"),
                   seed=4)
    out = chaos.allreduce_sum(vals)
    (rec,) = chaos.injected
    assert out == 10.0 - vals[rec["rank"]]
    chaos = _chaos(submap4, FaultRule("allreduce_sum", "duplicate_payload"),
                   seed=4)
    out = chaos.allreduce_sum(vals)
    (rec,) = chaos.injected
    assert out == 10.0 + vals[rec["rank"]]


def test_allreduce_reorder_is_rounding_level(submap4, rng):
    vals = [rng.standard_normal() for _ in range(4)]
    ref = VirtualComm(submap4).allreduce_sum(vals)
    out = _chaos(
        submap4, FaultRule("allreduce_sum", "reorder_payload")
    ).allreduce_sum(vals)
    assert out == pytest.approx(ref, rel=1e-12)


def test_stall_leaves_numerics_untouched(submap4, parts4):
    chaos = _chaos(
        submap4, FaultRule("*", "stall", param=0.0, count=None)
    )
    ref = VirtualComm(submap4).interface_assemble(parts4)
    for a, b in zip(ref, chaos.interface_assemble(parts4)):
        assert np.array_equal(a, b)
    assert chaos.injected[0]["kind"] == "stall"


# ----------------------------------------------------------------------
# Targeting: call_index, count, determinism
# ----------------------------------------------------------------------
def test_call_index_targets_one_call(submap4, parts4):
    chaos = _chaos(
        submap4, FaultRule("interface_assemble", "nan", call_index=2,
                           count=None)
    )
    ref = VirtualComm(submap4).interface_assemble(parts4)
    for call in range(4):
        out = chaos.interface_assemble(parts4)
        has_nan = any(np.isnan(o).any() for o in out)
        assert has_nan == (call == 2)
        if not has_nan:
            for a, b in zip(ref, out):
                assert np.array_equal(a, b)
    assert [r["call_index"] for r in chaos.injected] == [2]


def test_count_limits_firings(submap4, parts4):
    chaos = _chaos(submap4, FaultRule("interface_assemble", "nan", count=2))
    for _ in range(5):
        chaos.interface_assemble(parts4)
    assert len(chaos.injected) == 2


def test_unlimited_count_fires_every_call(submap4, parts4):
    chaos = _chaos(submap4, FaultRule("interface_assemble", "nan", count=None))
    for _ in range(4):
        chaos.interface_assemble(parts4)
    assert len(chaos.injected) == 4


def test_same_plan_same_injections(submap4, parts4):
    """Bit-for-bit determinism: same plan, same calls => identical
    injection log and identical outputs."""
    plan = FaultPlan(
        rules=(FaultRule("interface_assemble", "nan"),
               FaultRule("allreduce_sum", "drop_contribution")),
        seed=123,
    )
    outs, logs = [], []
    for _ in range(2):
        chaos = ChaosComm(submap4, plan=plan)
        o = chaos.interface_assemble(parts4)
        v = chaos.allreduce_sum([1.0, 2.0, 3.0, 4.0])
        outs.append((o, v))
        logs.append(chaos.injected)
    assert logs[0] == logs[1]
    assert outs[0][1] == outs[1][1]
    for a, b in zip(outs[0][0], outs[1][0]):
        assert np.array_equal(a, b, equal_nan=True)


def test_different_seed_different_target(submap4, parts4):
    """The seed steers random choices (which word, which rank)."""
    hits = set()
    for seed in range(8):
        chaos = _chaos(submap4, FaultRule("interface_assemble", "nan"),
                       seed=seed)
        out = chaos.interface_assemble(parts4)
        (rec,) = chaos.injected
        hits.add((rec["rank"], rec["detail"]))
    assert len(hits) > 1
