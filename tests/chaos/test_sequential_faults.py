"""No-silent-wrong-answer coverage for the sequential short-recurrence
solvers (cg / bicgstab / minres).

The comm-level chaos backend cannot reach these solvers (they never touch
a communicator), so the faults are injected at the operator boundary
instead: NaN/Inf poisoning of the matvec or preconditioner at a swept
call index.  The invariant is the same as the distributed sweep's:

1. **converged** — and the true residual ``||b - A x|| / ||b||``
   recomputed against the clean operator meets the tolerance (possible
   when the fault fires after convergence was already decided); or
2. **not converged** — with at least one structured diagnostic from the
   known event vocabulary, having stopped *before* ``max_iter`` (a quiet
   full-budget loop on poisoned iterates is the failure mode this file
   exists to pin).

The reduced CI sweep is selected with ``-k smoke``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.bicgstab import bicgstab
from repro.solvers.cg import cg
from repro.solvers.diagnostics import EVENT_KINDS
from repro.solvers.minres import minres

pytestmark = pytest.mark.chaos

MAX_ITER = 400
TOL = 1e-10


def spd_system(n=60, seed=7):
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    a = m @ m.T + n * np.eye(n)
    b = rng.standard_normal(n)
    return a, b


class PoisonedOp:
    """Wrap a linear operator; fault fires once at ``call_index``."""

    def __init__(self, op, call_index, value):
        self.op = op
        self.call_index = call_index
        self.value = value
        self.calls = 0

    def __call__(self, v):
        self.calls += 1
        out = np.asarray(self.op(v), dtype=np.float64).copy()
        if self.calls == self.call_index:
            out[0] = self.value
        return out


def _check_invariant(solver_name, res, a, b):
    """Converged-and-right or diagnosed-and-early — nothing else."""
    if res.converged:
        rel = float(np.linalg.norm(b - a @ res.x) / np.linalg.norm(b))
        assert rel <= TOL * 1e4, (
            f"{solver_name}: claimed convergence with true residual {rel:.3e}"
        )
        return
    assert res.iterations < MAX_ITER, (
        f"{solver_name}: unconverged run silently exhausted max_iter "
        f"({res.iterations} iterations) — the poisoned loop was not caught"
    )
    assert res.diagnostics, f"{solver_name}: unconverged without diagnostics"
    assert all(e.kind in EVENT_KINDS for e in res.diagnostics)


SOLVERS = {
    "cg": lambda mv, b, pc: cg(mv, b, precond=pc, tol=TOL, max_iter=MAX_ITER),
    "bicgstab": lambda mv, b, pc: bicgstab(
        mv, b, precond=pc, tol=TOL, max_iter=MAX_ITER
    ),
    "minres": lambda mv, b, pc: minres(mv, b, tol=TOL, max_iter=MAX_ITER),
}

VALUES = {"nan": np.nan, "inf": np.inf}


@pytest.mark.parametrize("value_name", sorted(VALUES))
@pytest.mark.parametrize("call_index", [1, 2, 5, 9])
@pytest.mark.parametrize("solver_name", sorted(SOLVERS))
def test_poisoned_matvec_never_silently_wrong(
    solver_name, call_index, value_name
):
    a, b = spd_system()
    mv = PoisonedOp(lambda v: a @ v, call_index, VALUES[value_name])
    with np.errstate(invalid="ignore"):
        res = SOLVERS[solver_name](mv, b, None)
    _check_invariant(solver_name, res, a, b)


@pytest.mark.parametrize("call_index", [1, 3, 7])
@pytest.mark.parametrize("solver_name", ["cg", "bicgstab"])
def test_poisoned_precond_never_silently_wrong(solver_name, call_index):
    a, b = spd_system(seed=11)
    pc = PoisonedOp(lambda v: v, call_index, np.nan)
    with np.errstate(invalid="ignore"):
        res = SOLVERS[solver_name](lambda v: a @ v, b, pc)
    _check_invariant(solver_name, res, a, b)


@pytest.mark.parametrize("solver_name", sorted(SOLVERS))
def test_sequential_nan_fault_smoke(solver_name):
    """Reduced sweep for CI (-k smoke): one mid-solve NaN per solver."""
    a, b = spd_system(seed=3)
    mv = PoisonedOp(lambda v: a @ v, 4, np.nan)
    with np.errstate(invalid="ignore"):
        res = SOLVERS[solver_name](mv, b, None)
    _check_invariant(solver_name, res, a, b)
    assert not res.converged
    assert any(e.kind == "non_finite" for e in res.diagnostics)
