"""FaultPlan/FaultRule: validation, JSON round-trip, registry and env
pickup — the reproducibility contract every chaos failure message relies
on."""

import json

import pytest

from repro.parallel.chaos import (
    COLLECTIVES,
    FAULT_KINDS,
    FaultPlan,
    FaultRule,
    get_fault_plan,
    set_fault_plan,
    use_fault_plan,
)

pytestmark = pytest.mark.chaos


# ----------------------------------------------------------------------
# Rule validation
# ----------------------------------------------------------------------
def test_rule_rejects_unknown_collective():
    with pytest.raises(ValueError, match="unknown collective"):
        FaultRule("broadcast", "nan")


def test_rule_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultRule("halo_exchange", "bitrot")


def test_rule_rejects_bad_count():
    with pytest.raises(ValueError, match="count"):
        FaultRule("halo_exchange", "nan", count=0)


def test_rule_rejects_negative_call_index():
    with pytest.raises(ValueError, match="call_index"):
        FaultRule("halo_exchange", "nan", call_index=-1)


def test_rule_defaults_are_transient():
    """The default rule fires exactly once — persistent faults make the
    solver iterate a coherently wrong operator, which is undetectable by
    design, so transience is the safe default."""
    r = FaultRule("allreduce_sum", "sign_flip")
    assert r.count == 1
    assert r.rank is None and r.call_index is None


def test_plan_rejects_non_rules():
    with pytest.raises(TypeError, match="FaultRule"):
        FaultPlan(rules=({"kind": "nan"},))


# ----------------------------------------------------------------------
# JSON round-trip
# ----------------------------------------------------------------------
def _sample_plan() -> FaultPlan:
    return FaultPlan(
        rules=(
            FaultRule("interface_assemble", "sign_flip", rank=1, call_index=4),
            FaultRule("halo_exchange", "drop_contribution", count=None),
            FaultRule("allreduce_sum", "nan", call_index=0, count=3),
            FaultRule("*", "stall", param=0.001),
        ),
        seed=42,
    )


def test_plan_json_roundtrip_exact():
    plan = _sample_plan()
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_plan_json_is_compact_and_sorted():
    text = _sample_plan().to_json()
    payload = json.loads(text)
    assert " " not in text  # compact separators: pastable one-liner
    assert list(payload) == sorted(payload)


def test_plan_dict_roundtrip_every_kind_and_collective():
    for coll in COLLECTIVES:
        for kind in FAULT_KINDS:
            plan = FaultPlan(rules=(FaultRule(coll, kind),), seed=7)
            assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_from_json_revalidates():
    bad = json.dumps({"seed": 0, "rules": [{"collective": "halo_exchange",
                                           "kind": "bitrot"}]})
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultPlan.from_json(bad)


def test_empty_plan():
    assert FaultPlan.empty() == FaultPlan(rules=(), seed=0)


# ----------------------------------------------------------------------
# Active-plan registry and environment pickup
# ----------------------------------------------------------------------
def test_use_fault_plan_scopes_and_restores():
    plan = _sample_plan()
    before = get_fault_plan()
    with use_fault_plan(plan, inner="thread") as active:
        assert active is plan
        assert get_fault_plan() == (plan, "thread")
    assert get_fault_plan() == before


def test_set_fault_plan_returns_previous():
    plan = _sample_plan()
    prev = set_fault_plan(plan, inner="virtual")
    try:
        assert get_fault_plan() == (plan, "virtual")
    finally:
        set_fault_plan(None)
        if prev is not None:  # pragma: no cover - clean test session
            set_fault_plan(*prev)


def test_env_plan_json_string(monkeypatch):
    plan = _sample_plan()
    monkeypatch.setenv("REPRO_CHAOS_PLAN", plan.to_json())
    monkeypatch.setenv("REPRO_CHAOS_INNER", "thread")
    got, inner = get_fault_plan()
    assert got == plan
    assert inner == "thread"


def test_env_plan_json_file(tmp_path, monkeypatch):
    plan = _sample_plan()
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json())
    monkeypatch.setenv("REPRO_CHAOS_PLAN", str(path))
    got, inner = get_fault_plan()
    assert got == plan
    assert inner == "virtual"


def test_env_default_is_empty_plan(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS_PLAN", raising=False)
    monkeypatch.delenv("REPRO_CHAOS_INNER", raising=False)
    assert get_fault_plan() == (FaultPlan.empty(), "virtual")
