"""ASCII semilog plots."""

import numpy as np
import pytest

from repro.reporting.ascii_plot import convergence_plot, semilogy_plot
from repro.solvers.result import SolveResult


def test_basic_render():
    out = semilogy_plot({"a": [1.0, 0.1, 0.01, 0.001]})
    lines = out.splitlines()
    assert any("*" in line for line in lines)
    assert "* a" in lines[-1]
    assert "1e+0" in out and "1e-3" in out


def test_monotone_series_descends():
    """A decreasing series must render with later markers lower."""
    out = semilogy_plot({"a": [1.0, 1e-2, 1e-4, 1e-6]}, width=40, height=10)
    rows = [i for i, line in enumerate(out.splitlines()) if "*" in line]
    first_row = min(rows)
    last_row = max(rows)
    assert last_row > first_row  # lower on the canvas = larger row index


def test_two_series_distinct_markers():
    out = semilogy_plot({"a": [1.0, 0.1], "b": [1.0, 0.5]})
    assert "*" in out and "o" in out
    assert "* a" in out and "o b" in out


def test_validation():
    with pytest.raises(ValueError):
        semilogy_plot({})
    with pytest.raises(ValueError):
        semilogy_plot({"a": [0.0, 0.0]})
    with pytest.raises(ValueError):
        semilogy_plot({"a": [1.0]})
    with pytest.raises(ValueError):
        semilogy_plot({chr(97 + i): [1.0, 0.5] for i in range(9)})


def test_convergence_plot_from_results():
    res = SolveResult(
        x=np.zeros(1),
        converged=True,
        iterations=3,
        restarts=1,
        residual_history=[1.0, 0.1, 0.01, 0.001],
    )
    out = convergence_plot({"GLS(7)": res})
    assert "GLS(7)" in out


def test_zero_values_clamped_not_crash():
    out = semilogy_plot({"a": [1.0, 0.0, 0.01]})
    assert "*" in out
