"""Table formatting."""

import pytest

from repro.reporting.tables import format_table


def test_alignment_and_header():
    out = format_table(["a", "long"], [[1, 2], [333, 4]])
    lines = out.splitlines()
    assert lines[0].startswith("a")
    assert "---" in lines[1]
    assert len(lines) == 4
    # columns aligned: every row same width
    assert len(set(len(line) for line in [lines[0]] + lines[2:])) == 1


def test_title():
    out = format_table(["x"], [[1]], title="Table 3")
    assert out.splitlines()[0] == "Table 3"


def test_width_mismatch_rejected():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])
