"""Convergence reporting helpers."""

import numpy as np

from repro.reporting.convergence import convergence_table, iterations_to_tol
from repro.solvers.result import SolveResult


def _result(history, converged=True):
    return SolveResult(
        x=np.zeros(1),
        converged=converged,
        iterations=len(history) - 1,
        restarts=1,
        residual_history=history,
    )


def test_iterations_to_tol():
    r = _result([1.0, 0.5, 0.05, 0.005])
    assert iterations_to_tol(r, 1e-1) == 2
    assert iterations_to_tol(r, 1e-2) == 3
    assert iterations_to_tol(r, 1e-9) is None


def test_convergence_table_contents():
    out = convergence_table(
        {"GLS(7)": _result([1.0, 0.01]), "ILU(0)": _result([1.0, 0.5], False)},
        tols=(1e-1,),
    )
    assert "GLS(7)" in out
    assert "NO" in out  # unconverged flagged
    assert "-" in out  # missing tolerance shown as dash
