"""Reproduction orchestrator."""

import json
import os

import pytest

from repro.experiments import (
    reproduce_all,
    reproduce_convergence,
    reproduce_scaling,
    reproduce_table2,
)


def test_table2_all_ok(tmp_path):
    table = reproduce_table2(str(tmp_path))
    assert "MISMATCH" not in table
    assert table.count("OK") == 10
    assert (tmp_path / "table2.txt").exists()


def test_convergence_outputs(tmp_path):
    table = reproduce_convergence(str(tmp_path), mesh_id=1)
    assert "GLS(7)" in table
    payload = json.loads((tmp_path / "convergence_mesh1.json").read_text())
    assert payload["GLS(7)"]["converged"]
    # degree monotonicity visible in the serialized data
    assert payload["GLS(20)"]["iterations"] <= payload["GLS(7)"]["iterations"]


def test_scaling_outputs(tmp_path):
    table = reproduce_scaling(
        str(tmp_path), mesh_id=1, degrees=(7,), ranks=(1, 2)
    )
    assert "speedup" in table
    from repro.io.records import load_records

    records = load_records(tmp_path / "table3_mesh1.json")
    assert len(records) == 2
    assert all(r.converged for r in records)


def test_reproduce_all_writes_everything(tmp_path):
    out = tmp_path / "results"
    tables = reproduce_all(str(out), mesh_id=1)
    assert set(tables) == {"table2", "convergence", "scaling"}
    files = os.listdir(out)
    assert "table2.txt" in files
    assert "convergence_mesh2.txt" in files
    assert "table3_mesh1.txt" in files


def test_cli_reproduce(tmp_path, capsys):
    from repro.cli import main

    rc = main(["reproduce", "--out", str(tmp_path / "r"), "--mesh", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert "results written" in out


def test_cli_convergence_plot(capsys):
    from repro.cli import main

    rc = main(
        ["convergence", "--mesh", "1", "--preconds", "none", "gls(3)", "--plot"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "rel. r" in out  # the plot's y-label
