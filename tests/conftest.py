"""Shared fixtures: small FEM problems reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem.cantilever import cantilever_problem
from repro.fem.material import Material


def pytest_addoption(parser):
    """``--update-golden`` regenerates tests/golden/*.json in place
    (review the diff!) instead of comparing against them."""
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden record files from the current code",
    )


@pytest.fixture
def update_golden(request):
    """Whether this run should refresh golden files instead of asserting."""
    return request.config.getoption("--update-golden")


@pytest.fixture(scope="session")
def tiny_problem():
    """4x3-element cantilever: small enough for dense reference solves."""
    return cantilever_problem(nx=4, ny=3)


@pytest.fixture(scope="session")
def tiny_dynamic_problem():
    """Same mesh with the consistent mass matrix."""
    return cantilever_problem(nx=4, ny=3, with_mass=True)


@pytest.fixture(scope="session")
def mesh1_problem():
    """The paper's Mesh1 (7x1, 28 equations)."""
    return cantilever_problem(1)


@pytest.fixture(scope="session")
def mesh2_problem():
    """The paper's Mesh2 (40x8, 656 equations)."""
    return cantilever_problem(2)


@pytest.fixture(scope="session")
def soft_material():
    """A mild material that keeps matrix entries O(1)."""
    return Material(E=100.0, nu=0.3, rho=1.0, thickness=1.0)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(
    params=["virtual", "thread", "process"],
    ids=["comm-virtual", "comm-thread", "comm-process"],
)
def comm_backend(request):
    """Parameterize a test over the executable communicator backends.

    Results must be bit-identical across all of them (the Comm contract);
    solver tests taking this fixture therefore run once per backend and
    assert the same numbers each time.  (The ``process`` runs stay inline
    for these tiny systems — the dispatch threshold keeps the pool cold —
    which is itself the contract: thresholds change costs, never bits.)
    """
    from repro.parallel.comm import use_comm_backend

    with use_comm_backend(request.param):
        yield request.param
