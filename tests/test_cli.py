"""CLI entry point."""

import pytest

from repro.cli import build_parser, main


def test_solve_command(capsys):
    rc = main(["solve", "--mesh", "1", "-p", "2", "--precond", "gls(3)"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "converged=True" in out
    assert "modeled time" in out


def test_solve_rdd(capsys):
    rc = main(["solve", "--mesh", "1", "-p", "2", "--method", "rdd"])
    assert rc == 0
    assert "rdd" in capsys.readouterr().out


def test_solve_dynamic(capsys):
    rc = main(["solve", "--mesh", "1", "-p", "2", "--dynamic"])
    assert rc == 0


def test_solve_none_precond(capsys):
    rc = main(["solve", "--mesh", "1", "-p", "1", "--precond", "none"])
    assert rc == 0
    assert ", I," in capsys.readouterr().out


def test_scaling_command(capsys):
    rc = main(["scaling", "--mesh", "1", "--ranks", "1", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_scaling_skips_infeasible_ranks(capsys):
    # Mesh1 has 7 elements; P=8 must be skipped, not crash
    rc = main(["scaling", "--mesh", "1", "--ranks", "1", "8"])
    assert rc == 0


def test_convergence_command(capsys):
    rc = main(["convergence", "--mesh", "1", "--preconds", "none", "gls(3)"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "GLS(3)" in out


def test_meshes_command(capsys):
    rc = main(["meshes"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "40400" in out  # Mesh10 equation count


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_sp2_machine_option(capsys):
    rc = main(
        ["scaling", "--mesh", "1", "--ranks", "1", "2", "--machine", "sp2"]
    )
    assert rc == 0
    assert "IBM SP2" in capsys.readouterr().out


def test_solve_json_export(tmp_path, capsys):
    path = tmp_path / "runs.json"
    rc = main(
        ["solve", "--mesh", "1", "-p", "2", "--json", str(path)]
    )
    assert rc == 0
    rc = main(
        ["solve", "--mesh", "1", "-p", "4", "--json", str(path)]
    )
    assert rc == 0
    from repro.io.records import load_records

    records = load_records(path)
    assert len(records) == 2
    assert records[0].n_parts == 2
    assert records[1].n_parts == 4
