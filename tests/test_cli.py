"""CLI entry point."""

import pytest

from repro.cli import build_parser, main


def test_solve_command(capsys):
    rc = main(["solve", "--mesh", "1", "-p", "2", "--precond", "gls(3)"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "converged=True" in out
    assert "modeled time" in out


def test_solve_rdd(capsys):
    rc = main(["solve", "--mesh", "1", "-p", "2", "--method", "rdd"])
    assert rc == 0
    assert "rdd" in capsys.readouterr().out


def test_solve_dynamic(capsys):
    rc = main(["solve", "--mesh", "1", "-p", "2", "--dynamic"])
    assert rc == 0


def test_solve_none_precond(capsys):
    rc = main(["solve", "--mesh", "1", "-p", "1", "--precond", "none"])
    assert rc == 0
    assert ", I," in capsys.readouterr().out


def test_scaling_command(capsys):
    rc = main(["scaling", "--mesh", "1", "--ranks", "1", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_scaling_skips_infeasible_ranks(capsys):
    # Mesh1 has 7 elements; P=8 must be skipped, not crash
    rc = main(["scaling", "--mesh", "1", "--ranks", "1", "8"])
    assert rc == 0


def test_convergence_command(capsys):
    rc = main(["convergence", "--mesh", "1", "--preconds", "none", "gls(3)"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "GLS(3)" in out


def test_meshes_command(capsys):
    rc = main(["meshes"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "40400" in out  # Mesh10 equation count


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_sp2_machine_option(capsys):
    rc = main(
        ["scaling", "--mesh", "1", "--ranks", "1", "2", "--machine", "sp2"]
    )
    assert rc == 0
    assert "IBM SP2" in capsys.readouterr().out


def test_solve_json_export(tmp_path, capsys):
    path = tmp_path / "runs.json"
    rc = main(
        ["solve", "--mesh", "1", "-p", "2", "--json", str(path)]
    )
    assert rc == 0
    rc = main(
        ["solve", "--mesh", "1", "-p", "4", "--json", str(path)]
    )
    assert rc == 0
    from repro.io.records import load_records

    records = load_records(path)
    assert len(records) == 2
    assert records[0].n_parts == 2
    assert records[1].n_parts == 4


def test_solve_nrhs_batch(capsys):
    rc = main(["solve", "--mesh", "1", "-p", "2", "--nrhs", "3"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "nrhs=3" in out
    assert "rhs[2]" in out


def test_solve_nrhs_rejects_nonpositive(capsys):
    for bad in ("0", "-2"):
        rc = main(["solve", "--mesh", "1", "--nrhs", bad])
        assert rc == 2
        err = capsys.readouterr().err
        assert "--nrhs must be >= 1" in err


def test_solve_two_level_precond(capsys):
    rc = main(
        ["solve", "--mesh", "1", "-p", "2",
         "--precond", "2l(gls(3),deflate)"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "2L(GLS(3),deflate,C=2)" in out
    assert "converged=True" in out


def test_solve_rejects_malformed_precond(capsys):
    for bad in ("gls(seven)", "2l()", "2l(gls(7),bogus)", "frob(3)"):
        rc = main(["solve", "--mesh", "1", "--precond", bad])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "accepted preconditioner specs" in err
        assert "Traceback" not in err


def test_solve_nrhs_json_per_column_records(tmp_path, capsys):
    path = tmp_path / "batch.json"
    rc = main(
        ["solve", "--mesh", "1", "-p", "2", "--nrhs", "3",
         "--json", str(path)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "not written" not in out
    from repro.io.records import load_records

    records = load_records(path)
    assert len(records) == 3
    assert [r.label.rsplit("/", 1)[1] for r in records] == [
        "rhs0", "rhs1", "rhs2"
    ]
    assert all(r.converged for r in records)
    # shared batch counters repeat on every column record
    assert len({r.nbr_messages for r in records}) == 1


def test_solve_trace_roundtrip(tmp_path, capsys):
    path = tmp_path / "run.trace.json"
    rc = main(
        ["solve", "--mesh", "1", "-p", "2", "--trace", str(path)]
    )
    assert rc == 0
    assert "trace written" in capsys.readouterr().out
    import json

    trace = json.loads(path.read_text())
    assert trace["schema"] == "repro-trace/1"
    assert any(s["name"] == "arnoldi_step" for s in trace["spans"])

    rc = main(["trace", "summarize", str(path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Phase breakdown" in out

    rc = main(["trace", "chrome", str(path)])
    assert rc == 0
    out_path = tmp_path / "run.trace.chrome.json"
    assert out_path.exists()
    chrome = json.loads(out_path.read_text())
    assert "traceEvents" in chrome


def test_solve_trace_chrome_suffix(tmp_path, capsys):
    path = tmp_path / "run.chrome.json"
    rc = main(["solve", "--mesh", "1", "-p", "2", "--trace", str(path)])
    assert rc == 0
    import json

    doc = json.loads(path.read_text())
    assert "traceEvents" in doc  # chrome format picked from the suffix


def test_trace_summarize_rejects_garbage(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": "something-else"}')
    rc = main(["trace", "summarize", str(bad)])
    assert rc == 2
    assert "error" in capsys.readouterr().err
    rc = main(["trace", "summarize", str(tmp_path / "missing.json")])
    assert rc == 2
