"""API quality meta-tests: every public item is documented and importable."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


@pytest.mark.parametrize("modname", MODULES)
def test_module_importable_and_documented(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__, f"{modname} lacks a module docstring"


@pytest.mark.parametrize("modname", MODULES)
def test_public_callables_documented(modname):
    mod = importlib.import_module(modname)
    for name, obj in vars(mod).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != modname:
            continue  # re-export; documented at its home
        assert obj.__doc__, f"{modname}.{name} lacks a docstring"
        if inspect.isclass(obj):
            for mname, meth in vars(obj).items():
                if mname.startswith("_") or not inspect.isfunction(meth):
                    continue
                assert (
                    meth.__doc__
                ), f"{modname}.{name}.{mname} lacks a docstring"


def test_all_exports_resolve():
    for modname in MODULES + ["repro"]:
        mod = importlib.import_module(modname)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{modname}.__all__ lists missing {name}"


def test_api_reference_up_to_date(tmp_path):
    """docs/API.md regenerates identically — catches stale references."""
    import pathlib
    import subprocess
    import sys

    repo = pathlib.Path(__file__).resolve().parent.parent
    current = (repo / "docs" / "API.md").read_text()
    subprocess.run(
        [sys.executable, str(repo / "tools" / "gen_api.py")],
        check=True,
        capture_output=True,
    )
    regenerated = (repo / "docs" / "API.md").read_text()
    assert current == regenerated
