"""SolverOptions: validation, serialization, driver integration,
keyword-argument rejection, and preconditioner spec round-trips."""

import numpy as np
import pytest

import repro.core.driver as driver_mod
from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.precond.spec import make_preconditioner, spec_of


# ----------------------------------------------------------------------
# Validation and serialization
# ----------------------------------------------------------------------
def test_defaults_match_paper_configuration():
    o = SolverOptions()
    assert o.method == "edd-enhanced"
    assert o.precond == "gls(7)"
    assert o.restart == 25
    assert o.comm_backend is None


@pytest.mark.parametrize(
    "bad",
    [
        {"method": "feti"},
        {"orthogonalization": "householder"},
        {"restart": 0},
        {"max_iter": 0},
        {"tol": 0.0},
        {"tol": -1e-6},
        {"mass_shift": (1.0, 2.0, 3.0)},
    ],
)
def test_invalid_options_rejected(bad):
    with pytest.raises(ValueError):
        SolverOptions(**bad)


def test_replace_revalidates():
    o = SolverOptions()
    assert o.replace(restart=50).restart == 50
    with pytest.raises(ValueError):
        o.replace(restart=-1)


def test_frozen():
    with pytest.raises(Exception):
        SolverOptions().restart = 99


def test_dict_roundtrip():
    o = SolverOptions(method="rdd", precond="bj-ilu0", tol=1e-8, dynamic=True)
    d = o.to_dict()
    assert d["mass_shift"] == [1.0, 0.25]
    import json

    json.dumps(d)  # must be JSON-serializable as-is
    assert SolverOptions.from_dict(d) == o


# ----------------------------------------------------------------------
# Driver integration
# ----------------------------------------------------------------------
def test_driver_accepts_options(tiny_problem):
    s = solve_cantilever(
        tiny_problem, n_parts=3, options=SolverOptions(precond="gls(3)")
    )
    assert s.result.converged
    assert s.options.precond == "gls(3)"
    assert s.precond_name == "GLS(3)"
    u_ref = np.linalg.solve(tiny_problem.stiffness.toarray(), tiny_problem.load)
    assert np.allclose(s.result.x, u_ref, rtol=1e-4, atol=1e-10)


def test_fgmres_entry_points_share_options(tiny_problem):
    """edd_fgmres and rdd_fgmres consume the same SolverOptions object."""
    from repro.core.distributed import build_edd_system
    from repro.core.edd import edd_fgmres
    from repro.core.rdd import build_rdd_system, rdd_fgmres
    from repro.partition.element_partition import ElementPartition
    from repro.partition.node_partition import NodePartition

    opts = SolverOptions(precond="gls(5)", tol=1e-8)
    p = tiny_problem
    epart = ElementPartition.build(p.mesh, 2)
    esys = build_edd_system(
        p.mesh, p.material, p.bc, epart, p.bc.expand(p.load)
    )
    npart = NodePartition.build(p.mesh, 2)
    nsys = build_rdd_system(p.mesh, p.bc, npart, p.stiffness, p.load)
    re = edd_fgmres(esys, options=opts)
    rr = rdd_fgmres(nsys, options=opts)
    u_ref = np.linalg.solve(p.stiffness.toarray(), p.load)
    assert re.converged and rr.converged
    assert np.allclose(re.x, u_ref, rtol=1e-5, atol=1e-10)
    assert np.allclose(rr.x, u_ref, rtol=1e-5, atol=1e-10)


def test_summary_to_dict(tiny_problem):
    s = solve_cantilever(tiny_problem, n_parts=2, options=SolverOptions())
    d = s.to_dict()
    assert d["method"] == "edd-enhanced"
    assert d["n_parts"] == 2
    assert d["comm_backend"] in ("virtual", "thread", "process")
    assert d["result"]["converged"] is True
    assert "x" not in d["result"]
    assert d["stats"]["n_ranks"] == 2
    assert len(d["stats"]["per_rank"]) == 2
    assert d["options"]["precond"] == "gls(7)"
    assert d["wall_time"] >= 0.0
    import json

    json.dumps(d)
    dx = s.to_dict(include_x=True)
    assert np.allclose(dx["result"]["x"], s.result.x)


# ----------------------------------------------------------------------
# Keyword-argument rejection (the PR-2 legacy shim is gone)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"precond": "gls(3)"},  # was a shimmed legacy knob
        {"restart": 30, "tol": 1e-8},  # several at once: all named
        {"preconditioner": "gls(7)"},  # never was a knob
    ],
)
def test_unknown_kwargs_raise_typeerror_naming_options(tiny_problem, kwargs):
    with pytest.raises(TypeError) as err:
        solve_cantilever(tiny_problem, n_parts=2, **kwargs)
    message = str(err.value)
    assert "SolverOptions" in message  # points callers at the fix
    for name in kwargs:
        assert name in message


def test_no_deprecation_shim_left_in_driver():
    """The one-shot DeprecationWarning machinery was removed outright."""
    assert not hasattr(driver_mod, "_legacy_warned")
    assert not hasattr(driver_mod, "_LEGACY_KWARGS")


# ----------------------------------------------------------------------
# Preconditioner spec round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec", ["gls(7)", "neumann(12)", "cheb(4)", "ls(5)"]
)
def test_spec_roundtrip(spec):
    pc = make_preconditioner(spec)
    assert pc.spec == spec
    rebuilt = make_preconditioner(pc.spec)
    assert type(rebuilt) is type(pc)
    assert rebuilt.degree == pc.degree


def test_spec_of_handles_sentinels():
    assert spec_of(None) == "none"
    assert spec_of("bj-ilu0") == "bj-ilu0"
    assert spec_of(make_preconditioner("gls(3)")) == "gls(3)"


def test_make_preconditioner_public_import():
    """The documented public entry point lives at the package root."""
    from repro import make_preconditioner as top

    assert top is make_preconditioner
    # and the legacy driver re-export still resolves to the same function
    assert driver_mod.make_preconditioner is make_preconditioner


def test_bj_ilu0_spec_roundtrip(tiny_problem):
    s = solve_cantilever(
        tiny_problem,
        n_parts=2,
        options=SolverOptions(method="rdd", precond="bj-ilu0"),
    )
    assert s.result.converged
    assert s.precond_name.startswith("BJ-ILU0")
