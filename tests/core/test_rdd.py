"""RDD-FGMRES (Algorithm 8)."""

import numpy as np
import pytest

from repro.core.rdd import build_rdd_system, rdd_fgmres
from repro.partition.node_partition import NodePartition
from repro.precond.gls import GLSPolynomial
from repro.precond.neumann import NeumannPolynomial


def _build(problem, n_parts):
    part = NodePartition.build(problem.mesh, n_parts)
    return build_rdd_system(
        problem.mesh, problem.bc, part, problem.stiffness, problem.load
    )


def _direct(problem):
    return np.linalg.solve(problem.stiffness.toarray(), problem.load)


def test_matvec_matches_global_product(tiny_problem):
    system = _build(tiny_problem, 3)
    from repro.precond.scaling import norm1_scaling

    d = norm1_scaling(tiny_problem.stiffness)
    a = (
        tiny_problem.stiffness.scale_rows(d).scale_cols(d).toarray()
    )
    x = np.random.default_rng(0).standard_normal(system.n_global)
    x_parts = [x[o] for o in system.own]
    y_parts = system.matvec(x_parts)
    y = np.zeros(system.n_global)
    for o, p in zip(system.own, y_parts):
        y[o] = p
    assert np.allclose(y, a @ x, atol=1e-12)


def test_matches_direct_solve(tiny_problem, comm_backend):
    system = _build(tiny_problem, 3)
    assert system.comm.backend_name == comm_backend
    res = rdd_fgmres(
        system, GLSPolynomial.unit_interval(7, eps=1e-6), tol=1e-10
    )
    assert res.converged
    assert np.allclose(res.x, _direct(tiny_problem), rtol=1e-6, atol=1e-12)


def test_unpreconditioned_solve(tiny_problem):
    system = _build(tiny_problem, 2)
    res = rdd_fgmres(system, None, tol=1e-9, restart=60)
    assert res.converged
    assert np.allclose(res.x, _direct(tiny_problem), rtol=1e-5, atol=1e-12)


def test_iterations_match_edd(mesh2_problem):
    """EDD and RDD implement the same preconditioned FGMRES on the same
    (scaled) system, up to the slightly different distributed scaling —
    iteration counts must land in the same ballpark."""
    from repro.core.distributed import build_edd_system
    from repro.core.edd import edd_fgmres
    from repro.partition.element_partition import ElementPartition

    pre = GLSPolynomial.unit_interval(7, eps=1e-6)
    rdd_sys = _build(mesh2_problem, 4)
    rdd_res = rdd_fgmres(rdd_sys, pre, tol=1e-6)
    f_full = mesh2_problem.bc.expand(mesh2_problem.load)
    edd_sys = build_edd_system(
        mesh2_problem.mesh,
        mesh2_problem.material,
        mesh2_problem.bc,
        ElementPartition.build(mesh2_problem.mesh, 4),
        f_full,
    )
    edd_res = edd_fgmres(edd_sys, pre, tol=1e-6)
    assert rdd_res.converged and edd_res.converged
    assert abs(rdd_res.iterations - edd_res.iterations) <= 5
    # both solved to 1e-6 relative residual, so agreement is ~1e-6-ish
    scale = np.abs(edd_res.x).max()
    assert np.allclose(rdd_res.x, edd_res.x, rtol=1e-3, atol=1e-6 * scale)


def test_halo_messages_per_iteration(tiny_problem):
    """Algorithm 8: deg+1 halo exchanges per Arnoldi step."""
    system = _build(tiny_problem, 2)
    deg = 4
    snap = system.comm.stats.snapshot()
    res = rdd_fgmres(system, NeumannPolynomial(deg), tol=1e-8, restart=50)
    delta = system.comm.stats.delta(snap)
    expected = (deg + 1) * res.iterations + 2 * res.restarts
    assert delta.ranks[0].nbr_messages == pytest.approx(expected, abs=2)


def test_replication_factor_above_one(tiny_problem):
    system = _build(tiny_problem, 4)
    assert system.replication_factor() > 1.0


def test_empty_rank_rejected():
    from repro.fem.cantilever import cantilever_problem
    from repro.fem.mesh import structured_quad_mesh
    from repro.partition.node_partition import NodePartition

    p = cantilever_problem(nx=2, ny=1)
    part = NodePartition(p.mesh, np.zeros(p.mesh.n_nodes, dtype=int), 2)
    with pytest.raises(ValueError, match="owns no DOFs"):
        build_rdd_system(p.mesh, p.bc, part, p.stiffness, p.load)


def test_rank_invariance(tiny_problem):
    iters = set()
    for p in (1, 2, 4):
        system = _build(tiny_problem, p)
        res = rdd_fgmres(
            system, GLSPolynomial.unit_interval(5, eps=1e-6), tol=1e-8
        )
        assert res.converged
        iters.add(res.iterations)
    assert len(iters) == 1  # RDD scaling is rank-count independent


def test_local_reordering_interior_first(tiny_problem):
    """With reorder_local (default), each rank's owned list starts with
    its interior rows: a_loc rows before n_interior have no a_ext entries."""
    system = _build(tiny_problem, 3)
    for s in range(system.n_parts):
        ni = system.n_interior[s]
        row_lengths = system.a_ext[s].row_lengths()
        assert np.all(row_lengths[:ni] == 0)
        assert np.all(row_lengths[ni:] > 0)
    assert 0 < system.interior_fraction() < 1


def test_reordering_does_not_change_solution(tiny_problem):
    from repro.fem.cantilever import cantilever_problem
    from repro.partition.node_partition import NodePartition

    part = NodePartition.build(tiny_problem.mesh, 3)
    kwargs = dict(tol=1e-9)
    sys_a = build_rdd_system(
        tiny_problem.mesh, tiny_problem.bc, part,
        tiny_problem.stiffness, tiny_problem.load, reorder_local=True,
    )
    sys_b = build_rdd_system(
        tiny_problem.mesh, tiny_problem.bc, part,
        tiny_problem.stiffness, tiny_problem.load, reorder_local=False,
    )
    pre = GLSPolynomial.unit_interval(5, eps=1e-6)
    ra = rdd_fgmres(sys_a, pre, **kwargs)
    rb = rdd_fgmres(sys_b, pre, **kwargs)
    assert ra.converged and rb.converged
    assert ra.iterations == rb.iterations
    assert np.allclose(ra.x, rb.x, rtol=1e-7, atol=1e-12)


def test_interior_fraction_grows_with_fewer_ranks(mesh2_problem):
    fracs = []
    for p in (8, 2):
        system = _build(mesh2_problem, p)
        fracs.append(system.interior_fraction())
    assert fracs[1] > fracs[0]  # fewer ranks -> relatively less boundary
