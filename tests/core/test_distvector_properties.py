"""Property-based tests of the distributed vector algebra and the
interface-assembly operator — the invariants the EDD formulation rests on."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributed import DistVector, build_edd_system
from repro.fem.bc import clamp_edge_dofs
from repro.fem.material import Material
from repro.fem.mesh import structured_quad_mesh
from repro.parallel.comm import use_comm_backend
from repro.partition.element_partition import ElementPartition

MAT = Material(E=100.0, nu=0.3)


def _system(seed_parts=2):
    mesh = structured_quad_mesh(4, 2)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition.build(mesh, seed_parts)
    # This system lives for the whole session (module constant), so pin
    # it to the virtual backend: under REPRO_COMM_BACKEND=thread it
    # would otherwise hold a pool borrow open and leak worker threads.
    with use_comm_backend("virtual"):
        return build_edd_system(mesh, MAT, bc, part, np.zeros(mesh.n_dofs))


SYSTEM = _system()


def _rand_global(seed):
    x = np.random.default_rng(seed).standard_normal(SYSTEM.n_global)
    return SYSTEM.distribute(x), x


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), alpha=st.floats(-5, 5), beta=st.floats(-5, 5))
def test_exchange_is_linear(seed, alpha, beta):
    """⊕Σ∂Ω is a linear operator: assemble(a*u + b*v) == a*assemble(u) +
    b*assemble(v)."""
    rng = np.random.default_rng(seed)
    u = DistVector(
        [rng.standard_normal(n) for n in SYSTEM.submap.local_sizes],
        "local",
        SYSTEM.comm,
    )
    v = DistVector(
        [rng.standard_normal(n) for n in SYSTEM.submap.local_sizes],
        "local",
        SYSTEM.comm,
    )
    lhs = SYSTEM.assemble(alpha * u + beta * v)
    rhs_a = SYSTEM.assemble(u)
    rhs_b = SYSTEM.assemble(v)
    for lp, ap, bp in zip(lhs.parts, rhs_a.parts, rhs_b.parts):
        assert np.allclose(lp, alpha * ap + beta * bp, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_assemble_localize_idempotent(seed):
    """assemble ∘ localize is the identity on global-distributed vectors."""
    v, _ = _rand_global(seed)
    w = SYSTEM.assemble(SYSTEM.localize(v))
    for a, b in zip(v.parts, w.parts):
        assert np.allclose(a, b, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_mixed_dot_equals_global_dot(seed):
    """Eq. 33 for arbitrary vectors, not just solver iterates."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(SYSTEM.n_global)
    y = rng.standard_normal(SYSTEM.n_global)
    lhs = SYSTEM.dot(SYSTEM.localize(SYSTEM.distribute(x)), SYSTEM.distribute(y))
    assert lhs == pytest.approx(float(x @ y), rel=1e-12, abs=1e-12)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_matvec_assembled_is_global_operator(seed):
    """EDD matvec + exchange equals the assembled operator on any input."""
    v, x = _rand_global(seed)
    y = SYSTEM.matvec_assembled(v)
    y_true = SYSTEM.to_global_vector(y)
    a_global = np.zeros((SYSTEM.n_global, SYSTEM.n_global))
    for s, a in enumerate(SYSTEM.a_local):
        g = SYSTEM.submap.l2g[s]
        a_global[np.ix_(g, g)] += a.toarray()
    assert np.allclose(y_true, a_global @ x, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    alpha=st.floats(-3, 3, allow_nan=False),
)
def test_distvector_vector_space_axioms(seed, alpha):
    u, _ = _rand_global(seed)
    v, _ = _rand_global(seed + 1)
    # commutativity and scalar distribution
    s1 = u + v
    s2 = v + u
    for a, b in zip(s1.parts, s2.parts):
        assert np.array_equal(a, b)
    d1 = alpha * (u + v)
    d2 = alpha * u + alpha * v
    for a, b in zip(d1.parts, d2.parts):
        assert np.allclose(a, b, atol=1e-10)
    # subtraction inverts addition
    z = (u + v) - v
    for a, b in zip(z.parts, u.parts):
        assert np.allclose(a, b, atol=1e-10)


def test_copy_is_deep():
    v, _ = _rand_global(0)
    w = v.copy()
    w.parts[0][0] = 1e9
    assert v.parts[0][0] != 1e9
