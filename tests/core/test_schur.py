"""Primal Schur-complement substructuring."""

import numpy as np
import pytest

from repro.core.schur import schur_solve
from repro.fem.cantilever import cantilever_problem
from repro.partition.element_partition import ElementPartition


def _solve(problem, n_parts, **kw):
    part = ElementPartition.build(problem.mesh, n_parts)
    return schur_solve(
        problem.mesh,
        problem.material,
        problem.bc,
        part,
        problem.bc.expand(problem.load),
        **kw,
    )


def test_matches_direct_solve(tiny_problem):
    res = _solve(tiny_problem, 3, tol=1e-10)
    assert res.converged
    u_ref = np.linalg.solve(tiny_problem.stiffness.toarray(), tiny_problem.load)
    err = np.linalg.norm(res.x - u_ref) / np.linalg.norm(u_ref)
    assert err < 1e-8


def test_two_subdomains(tiny_problem):
    res = _solve(tiny_problem, 2, tol=1e-10)
    assert res.converged
    u_ref = np.linalg.solve(tiny_problem.stiffness.toarray(), tiny_problem.load)
    assert np.linalg.norm(res.x - u_ref) / np.linalg.norm(u_ref) < 1e-8


def test_interface_much_smaller_than_system(mesh2_problem):
    res = _solve(mesh2_problem, 4)
    assert res.converged
    assert res.n_interface < mesh2_problem.n_eqn / 4


def test_fewer_iterations_than_unpreconditioned_gmres(mesh2_problem):
    """The Schur complement is far better conditioned than K itself."""
    from repro.precond.scaling import scale_system
    from repro.solvers.fgmres import fgmres

    res = _solve(mesh2_problem, 4)
    ss = scale_system(mesh2_problem.stiffness, mesh2_problem.load)
    plain = fgmres(ss.a.matvec, ss.b, tol=1e-6)
    assert res.converged
    assert res.iterations < plain.iterations


def test_factor_flops_counted(tiny_problem):
    res = _solve(tiny_problem, 2)
    assert res.factor_flops > 0
    # more subdomains -> smaller interiors -> cheaper cubic factorizations
    res4 = _solve(tiny_problem, 4)
    assert res4.factor_flops < res.factor_flops


def test_single_subdomain_rejected(tiny_problem):
    with pytest.raises(ValueError, match="no interface"):
        _solve(tiny_problem, 1)


def test_iterative_phase_stats_recorded(tiny_problem):
    res = _solve(tiny_problem, 2)
    assert res.stats.total_nbr_messages > 0
    assert res.stats.max_reductions > 0
