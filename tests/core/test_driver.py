"""High-level driver API."""

import numpy as np
import pytest

from repro.core.driver import make_preconditioner, solve_cantilever
from repro.core.options import SolverOptions
from repro.parallel.machine import SGI_ORIGIN
from repro.spectrum.intervals import SpectrumIntervals


def test_make_preconditioner_specs():
    assert make_preconditioner(None) is None
    assert make_preconditioner("none") is None
    g = make_preconditioner("gls(7)")
    assert g.name == "GLS(7)"
    n = make_preconditioner("neumann(12)")
    assert n.name == "Neum(12)"
    with pytest.raises(ValueError):
        make_preconditioner("ilu(0)")


def test_make_preconditioner_custom_theta():
    th = SpectrumIntervals.single(0.2, 0.8)
    g = make_preconditioner("gls(5)", th)
    assert g.theta is th


def test_solve_by_mesh_id():
    s = solve_cantilever(1, n_parts=2, options=SolverOptions(precond="gls(3)"))
    assert s.result.converged
    assert s.n_parts == 2
    assert s.precond_name == "GLS(3)"


def test_solve_prebuilt_problem(tiny_problem):
    s = solve_cantilever(tiny_problem, n_parts=3, options=SolverOptions(precond="gls(7)"))
    assert s.result.converged
    u_ref = np.linalg.solve(tiny_problem.stiffness.toarray(), tiny_problem.load)
    assert np.allclose(s.result.x, u_ref, rtol=1e-4, atol=1e-10)


@pytest.mark.parametrize("method", ["edd-basic", "edd-enhanced", "rdd"])
def test_all_methods_agree(tiny_problem, method):
    s = solve_cantilever(tiny_problem, n_parts=2, options=SolverOptions(method=method, tol=1e-8))
    u_ref = np.linalg.solve(tiny_problem.stiffness.toarray(), tiny_problem.load)
    assert s.result.converged
    assert np.allclose(s.result.x, u_ref, rtol=1e-5, atol=1e-10)
    assert s.method == method


def test_unknown_method(tiny_problem):
    with pytest.raises(ValueError):
        solve_cantilever(tiny_problem, options=SolverOptions(method="feti"))


def test_dynamic_solve(tiny_dynamic_problem):
    s = solve_cantilever(tiny_dynamic_problem, n_parts=2, options=SolverOptions(dynamic=True, mass_shift=(2.0, 1.0)))
    assert s.result.converged
    k_eff = (
        tiny_dynamic_problem.stiffness.toarray()
        + 2.0 * tiny_dynamic_problem.mass.toarray()
    )
    u_ref = np.linalg.solve(k_eff, tiny_dynamic_problem.load)
    assert np.allclose(s.result.x, u_ref, rtol=1e-4, atol=1e-10)


def test_dynamic_needs_mass(tiny_problem):
    with pytest.raises(ValueError, match="with_mass"):
        solve_cantilever(tiny_problem, options=SolverOptions(dynamic=True))


def test_dynamic_rdd(tiny_dynamic_problem):
    s = solve_cantilever(
        tiny_dynamic_problem,
        n_parts=2,
        options=SolverOptions(
            method="rdd", dynamic=True, mass_shift=(2.0, 1.0)
        ),
    )
    assert s.result.converged


def test_modeled_time_positive(tiny_problem):
    s = solve_cantilever(tiny_problem, n_parts=2)
    assert s.modeled_time(SGI_ORIGIN) > 0


def test_stats_recorded(tiny_problem):
    s = solve_cantilever(tiny_problem, n_parts=4)
    assert s.stats.n_ranks == 4
    assert s.stats.total_flops > 0
    assert s.stats.total_nbr_messages > 0


def test_bj_ilu0_spec_rdd(tiny_problem):
    s = solve_cantilever(tiny_problem, n_parts=3, options=SolverOptions(method="rdd", precond="bj-ilu0", tol=1e-8))
    assert s.result.converged
    assert s.precond_name == "BJ-ILU0(P=3)"
    u_ref = np.linalg.solve(tiny_problem.stiffness.toarray(), tiny_problem.load)
    assert np.allclose(s.result.x, u_ref, rtol=1e-5, atol=1e-10)


def test_bj_ilu0_rejected_for_edd(tiny_problem):
    with pytest.raises(ValueError, match="rdd"):
        solve_cantilever(tiny_problem, options=SolverOptions(method="edd-enhanced", precond="bj-ilu0"))
