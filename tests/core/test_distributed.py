"""Distributed formats (Definitions 1-2), Fig. 5 truss example, distributed
scaling (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.distributed import DistVector, build_edd_system
from repro.fem.bc import DirichletBC, clamp_edge_dofs
from repro.fem.cantilever import cantilever_problem
from repro.fem.material import Material
from repro.fem.mesh import structured_quad_mesh, truss_mesh
from repro.partition.element_partition import ElementPartition

MAT = Material(E=100.0, nu=0.3)


@pytest.fixture
def edd4():
    """4x2 cantilever split into 2 subdomains."""
    mesh = structured_quad_mesh(4, 2)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition(mesh, np.array([0, 0, 1, 1] * 2), 2)
    f = np.zeros(mesh.n_dofs)
    f[-2] = 1.0
    system = build_edd_system(mesh, MAT, bc, part, f)
    return system


def test_fig5_truss_local_distributed_matrices():
    """Eq. 30: each subdomain of the 2-element truss holds the element
    matrix only — the shared middle node is NOT assembled to 2."""
    mesh = truss_mesh(2, length=2.0)
    mat = Material(E=7.0)
    bc = DirichletBC(mesh.n_dofs, np.array([], dtype=np.int64))
    part = ElementPartition(mesh, np.array([0, 1]), 2)
    from repro.fem.assembly import assemble_matrix

    for s, expected_nodes in ((0, [0, 1]), (1, [1, 2])):
        coo = assemble_matrix(
            mesh, mat, element_subset=part.subdomain_elements(s), truss_area=3.0
        )
        local = coo.tocsr().submatrix(
            np.array(expected_nodes), np.array(expected_nodes)
        )
        ael = 21.0
        assert np.allclose(
            local.toarray(), ael * np.array([[1.0, -1.0], [-1.0, 1.0]])
        )


def test_fig5_global_distributed_matrix_has_assembled_diagonal():
    """Eq. 31: the *assembled* matrix has 2 at the shared node — exactly
    what the sum over subdomains produces."""
    mesh = truss_mesh(2, length=2.0)
    mat = Material(E=7.0)
    from repro.fem.assembly import assemble_matrix

    full = assemble_matrix(mesh, mat, truss_area=3.0).toarray()
    ael = 21.0
    assert np.allclose(
        full, ael * np.array([[1, -1, 0], [-1, 2, -1], [0, -1, 1]])
    )


def test_distvector_kind_mismatch_rejected(edd4):
    a = edd4.zeros("local")
    b = edd4.zeros("global")
    with pytest.raises(ValueError, match="cannot combine"):
        _ = a + b


def test_distvector_arithmetic_charges_flops(edd4):
    edd4.comm.reset_stats()
    a = edd4.zeros("global")
    b = edd4.zeros("global")
    _ = a + b
    n_total = int(edd4.submap.local_sizes.sum())
    assert edd4.comm.stats.total_flops == n_total


def test_assemble_localize_roundtrip(edd4):
    x = np.random.default_rng(0).standard_normal(edd4.n_global)
    v = edd4.distribute(x)
    w = edd4.assemble(edd4.localize(v))
    for p, q in zip(v.parts, w.parts):
        assert np.allclose(p, q)


def test_matvec_equals_assembled_global_product(edd4):
    """EDD matvec + assembly == assembled matrix times vector (Eq. 36)."""
    x = np.random.default_rng(1).standard_normal(edd4.n_global)
    v = edd4.distribute(x)
    y = edd4.matvec_assembled(v)
    y_global = edd4.to_global_vector(y)
    # Reference: sum of local distributed matrices applied globally.
    a_global = np.zeros((edd4.n_global, edd4.n_global))
    for s, a in enumerate(edd4.a_local):
        g = edd4.submap.l2g[s]
        a_global[np.ix_(g, g)] += a.toarray()
    assert np.allclose(y_global, a_global @ x, atol=1e-12)


def test_mixed_format_inner_product_is_true_dot(edd4):
    """Eq. 33: sum_s <x_local, y_global> equals the true global <x, y>."""
    rng = np.random.default_rng(2)
    x = rng.standard_normal(edd4.n_global)
    y = rng.standard_normal(edd4.n_global)
    x_loc = edd4.localize(edd4.distribute(x))
    y_glob = edd4.distribute(y)
    assert edd4.dot(x_loc, y_glob) == pytest.approx(x @ y)


def test_distributed_scaling_spectrum_bound(edd4):
    """Algorithm 3's summed local row norms keep Theorem 1 valid: the
    scaled assembled matrix has spectrum in (0, 1]."""
    a_global = np.zeros((edd4.n_global, edd4.n_global))
    for s, a in enumerate(edd4.a_local):
        g = edd4.submap.l2g[s]
        a_global[np.ix_(g, g)] += a.toarray()
    evals = np.linalg.eigvalsh(a_global)
    assert evals.min() > 0
    assert evals.max() <= 1.0 + 1e-12


def test_scaling_consistent_across_ranks(edd4):
    """The global-distributed scaling vector agrees on shared DOFs."""
    d_global = np.full(edd4.n_global, np.nan)
    for s, g in enumerate(edd4.submap.l2g):
        vals = edd4.d_parts[s]
        prev = d_global[g]
        mask = ~np.isnan(prev)
        assert np.allclose(prev[mask], vals[mask])
        d_global[g] = vals
    assert not np.isnan(d_global).any()


def test_rhs_local_distributed_sums_to_global(edd4):
    """b_local is a valid local-distributed representation: assembling it
    once gives the scaled global rhs."""
    b = DistVector([p.copy() for p in edd4.b_local], "local", edd4.comm)
    b_true = edd4.submap.assemble(b.parts)
    # unscale: rhs was D*f with the point load at the last free dof
    assert np.count_nonzero(b_true) == 1


def test_mass_shift_builds_dynamic_system():
    mesh = structured_quad_mesh(3, 2)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition.build(mesh, 2)
    f = np.zeros(mesh.n_dofs)
    static = build_edd_system(mesh, MAT, bc, part, f)
    dynamic = build_edd_system(mesh, MAT, bc, part, f, mass_shift=(5.0, 1.0))
    # the dynamic matrix differs (mass added)
    assert not np.allclose(
        static.a_local[0].toarray(), dynamic.a_local[0].toarray()
    )


def test_setup_stats_reset(edd4):
    # builder resets counters: a fresh system reports zero traffic
    mesh = structured_quad_mesh(3, 2)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition.build(mesh, 2)
    system = build_edd_system(mesh, MAT, bc, part, np.zeros(mesh.n_dofs))
    assert system.comm.stats.total_flops == 0
    assert system.comm.stats.total_nbr_messages == 0
