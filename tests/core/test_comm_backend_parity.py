"""Backend parity: virtual, thread and process comms must be bit-identical.

The Comm contract (shared collectives, disjoint rank bodies, fixed
binary-tree allreduce) guarantees a solve produces the same floats on
every backend; these tests pin that down with exact — not approximate —
comparisons of iteration counts, residual histories and counters.
"""

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions

OTHER_BACKENDS = ("thread", "process")


@pytest.fixture(scope="module", autouse=True)
def _drain_pool_at_end():
    """Leave no parked worker processes behind for later test modules."""
    yield
    from repro.parallel.process_comm import shutdown_pool

    shutdown_pool(force=True)


def _solve(problem, backend, **changes):
    opts = SolverOptions(**changes).replace(comm_backend=backend)
    return solve_cantilever(problem, n_parts=4, options=opts)


@pytest.mark.parametrize("other", OTHER_BACKENDS)
@pytest.mark.parametrize(
    "method,precond",
    [
        ("edd-enhanced", "gls(7)"),
        ("edd-enhanced", "none"),
        ("edd-basic", "gls(3)"),
        ("edd-enhanced", "neumann(10)"),
        ("rdd", "gls(7)"),
        ("rdd", "bj-ilu0"),
    ],
)
def test_solve_bit_identical_across_backends(
    tiny_problem, method, precond, other
):
    sv = _solve(tiny_problem, "virtual", method=method, precond=precond)
    st = _solve(tiny_problem, other, method=method, precond=precond)
    assert sv.comm_backend == "virtual" and st.comm_backend == other
    assert sv.result.iterations == st.result.iterations
    assert sv.result.restarts == st.result.restarts
    # Bit-identical, not merely close:
    assert sv.result.residual_history == st.result.residual_history
    assert np.array_equal(sv.result.x, st.result.x)


@pytest.mark.parametrize("other", OTHER_BACKENDS)
def test_counters_identical_across_backends(tiny_problem, other):
    sv = _solve(tiny_problem, "virtual")
    st = _solve(tiny_problem, other)
    for rv, rt in zip(sv.stats.ranks, st.stats.ranks):
        assert rv == rt


def test_mgs_orthogonalization_parity(tiny_problem):
    sv = _solve(tiny_problem, "virtual", orthogonalization="mgs")
    st = _solve(tiny_problem, "thread", orthogonalization="mgs")
    assert sv.result.residual_history == st.result.residual_history


def test_dynamic_solve_parity(tiny_dynamic_problem):
    sv = _solve(tiny_dynamic_problem, "virtual", dynamic=True)
    st = _solve(tiny_dynamic_problem, "thread", dynamic=True)
    assert sv.result.residual_history == st.result.residual_history
    assert np.array_equal(sv.result.x, st.result.x)


def test_forced_pool_path_parity(tiny_problem, monkeypatch):
    """Zero inline threshold: every region goes through the worker pool."""
    monkeypatch.setenv("REPRO_THREAD_MIN_WORK", "0")
    sv = _solve(tiny_problem, "virtual")
    st = _solve(tiny_problem, "thread")
    assert sv.result.residual_history == st.result.residual_history
    assert np.array_equal(sv.result.x, st.result.x)


def _force_resident(monkeypatch):
    """Worker-resident rank execution with everything pooled: resident
    engines forced on, zero dispatch threshold, two real workers."""
    monkeypatch.setenv("REPRO_PROCESS_RESIDENT", "1")
    monkeypatch.setenv("REPRO_PROCESS_MIN_WORK", "0")
    monkeypatch.setenv("REPRO_PROCESS_WORKERS", "2")


@pytest.mark.parametrize(
    "method,precond",
    [
        ("edd-enhanced", "gls(7)"),
        ("edd-enhanced", "none"),
        ("edd-basic", "gls(3)"),
        ("edd-enhanced", "neumann(10)"),
        ("rdd", "gls(7)"),
        ("rdd", "bj-ilu0"),
    ],
)
def test_resident_solve_bit_identical(tiny_problem, method, precond,
                                      monkeypatch):
    """Forced worker-resident execution (rank bodies inside the process
    pool) matches virtual bitwise — solution, residual history and
    per-rank counters — across every solver family."""
    sv = _solve(tiny_problem, "virtual", method=method, precond=precond)
    _force_resident(monkeypatch)
    sp = _solve(tiny_problem, "process", method=method, precond=precond)
    assert sp.comm_backend == "process"
    assert sv.result.iterations == sp.result.iterations
    assert sv.result.residual_history == sp.result.residual_history
    assert np.array_equal(sv.result.x, sp.result.x)
    for rv, rp in zip(sv.stats.ranks, sp.stats.ranks):
        assert rv == rp


def test_resident_mgs_parity(tiny_problem, monkeypatch):
    """MGS keeps its sequential projections at the orchestrator but runs
    matvec and the x-update resident; still bitwise."""
    sv = _solve(tiny_problem, "virtual", orthogonalization="mgs")
    _force_resident(monkeypatch)
    sp = _solve(tiny_problem, "process", orthogonalization="mgs")
    assert sv.result.residual_history == sp.result.residual_history
    assert np.array_equal(sv.result.x, sp.result.x)


def test_resident_dynamic_parity(tiny_dynamic_problem, monkeypatch):
    sv = _solve(tiny_dynamic_problem, "virtual", dynamic=True)
    _force_resident(monkeypatch)
    sp = _solve(tiny_dynamic_problem, "process", dynamic=True)
    assert sv.result.residual_history == sp.result.residual_history
    assert np.array_equal(sv.result.x, sp.result.x)
    for rv, rp in zip(sv.stats.ranks, sp.stats.ranks):
        assert rv == rp


def test_forced_process_pool_path_parity(tiny_problem, monkeypatch):
    """Zero dispatch threshold: every collective rides the shared-memory
    arena through real worker processes — and still matches virtual
    bitwise, solution and counters alike."""
    monkeypatch.setenv("REPRO_PROCESS_MIN_WORK", "0")
    monkeypatch.setenv("REPRO_PROCESS_WORKERS", "2")
    sv = _solve(tiny_problem, "virtual")
    sp = _solve(tiny_problem, "process")
    assert sv.result.residual_history == sp.result.residual_history
    assert np.array_equal(sv.result.x, sp.result.x)
    for rv, rp in zip(sv.stats.ranks, sp.stats.ranks):
        assert rv == rp
