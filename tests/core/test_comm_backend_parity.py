"""Backend parity: virtual, thread and process comms must be bit-identical.

The Comm contract (shared collectives, disjoint rank bodies, fixed
binary-tree allreduce) guarantees a solve produces the same floats on
every backend; these tests pin that down with exact — not approximate —
comparisons of iteration counts, residual histories and counters.
"""

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions

OTHER_BACKENDS = ("thread", "process")


@pytest.fixture(scope="module", autouse=True)
def _drain_pool_at_end():
    """Leave no parked worker processes behind for later test modules."""
    yield
    from repro.parallel.process_comm import shutdown_pool

    shutdown_pool(force=True)


def _solve(problem, backend, **changes):
    opts = SolverOptions(**changes).replace(comm_backend=backend)
    return solve_cantilever(problem, n_parts=4, options=opts)


@pytest.mark.parametrize("other", OTHER_BACKENDS)
@pytest.mark.parametrize(
    "method,precond",
    [
        ("edd-enhanced", "gls(7)"),
        ("edd-enhanced", "none"),
        ("edd-basic", "gls(3)"),
        ("edd-enhanced", "neumann(10)"),
        ("rdd", "gls(7)"),
        ("rdd", "bj-ilu0"),
    ],
)
def test_solve_bit_identical_across_backends(
    tiny_problem, method, precond, other
):
    sv = _solve(tiny_problem, "virtual", method=method, precond=precond)
    st = _solve(tiny_problem, other, method=method, precond=precond)
    assert sv.comm_backend == "virtual" and st.comm_backend == other
    assert sv.result.iterations == st.result.iterations
    assert sv.result.restarts == st.result.restarts
    # Bit-identical, not merely close:
    assert sv.result.residual_history == st.result.residual_history
    assert np.array_equal(sv.result.x, st.result.x)


@pytest.mark.parametrize("other", OTHER_BACKENDS)
def test_counters_identical_across_backends(tiny_problem, other):
    sv = _solve(tiny_problem, "virtual")
    st = _solve(tiny_problem, other)
    for rv, rt in zip(sv.stats.ranks, st.stats.ranks):
        assert rv == rt


def test_mgs_orthogonalization_parity(tiny_problem):
    sv = _solve(tiny_problem, "virtual", orthogonalization="mgs")
    st = _solve(tiny_problem, "thread", orthogonalization="mgs")
    assert sv.result.residual_history == st.result.residual_history


def test_dynamic_solve_parity(tiny_dynamic_problem):
    sv = _solve(tiny_dynamic_problem, "virtual", dynamic=True)
    st = _solve(tiny_dynamic_problem, "thread", dynamic=True)
    assert sv.result.residual_history == st.result.residual_history
    assert np.array_equal(sv.result.x, st.result.x)


def test_forced_pool_path_parity(tiny_problem, monkeypatch):
    """Zero inline threshold: every region goes through the worker pool."""
    monkeypatch.setenv("REPRO_THREAD_MIN_WORK", "0")
    sv = _solve(tiny_problem, "virtual")
    st = _solve(tiny_problem, "thread")
    assert sv.result.residual_history == st.result.residual_history
    assert np.array_equal(sv.result.x, st.result.x)


def _force_resident(monkeypatch):
    """Worker-resident rank execution with everything pooled: resident
    engines forced on, zero dispatch threshold, two real workers."""
    monkeypatch.setenv("REPRO_PROCESS_RESIDENT", "1")
    monkeypatch.setenv("REPRO_PROCESS_MIN_WORK", "0")
    monkeypatch.setenv("REPRO_PROCESS_WORKERS", "2")


@pytest.mark.parametrize(
    "method,precond",
    [
        ("edd-enhanced", "gls(7)"),
        ("edd-enhanced", "none"),
        ("edd-basic", "gls(3)"),
        ("edd-enhanced", "neumann(10)"),
        ("rdd", "gls(7)"),
        ("rdd", "bj-ilu0"),
    ],
)
def test_resident_solve_bit_identical(tiny_problem, method, precond,
                                      monkeypatch):
    """Forced worker-resident execution (rank bodies inside the process
    pool) matches virtual bitwise — solution, residual history and
    per-rank counters — across every solver family."""
    sv = _solve(tiny_problem, "virtual", method=method, precond=precond)
    _force_resident(monkeypatch)
    sp = _solve(tiny_problem, "process", method=method, precond=precond)
    assert sp.comm_backend == "process"
    assert sv.result.iterations == sp.result.iterations
    assert sv.result.residual_history == sp.result.residual_history
    assert np.array_equal(sv.result.x, sp.result.x)
    for rv, rp in zip(sv.stats.ranks, sp.stats.ranks):
        assert rv == rp


def test_resident_mgs_parity(tiny_problem, monkeypatch):
    """MGS keeps its sequential projections at the orchestrator but runs
    matvec and the x-update resident; still bitwise."""
    sv = _solve(tiny_problem, "virtual", orthogonalization="mgs")
    _force_resident(monkeypatch)
    sp = _solve(tiny_problem, "process", orthogonalization="mgs")
    assert sv.result.residual_history == sp.result.residual_history
    assert np.array_equal(sv.result.x, sp.result.x)


def test_resident_dynamic_parity(tiny_dynamic_problem, monkeypatch):
    sv = _solve(tiny_dynamic_problem, "virtual", dynamic=True)
    _force_resident(monkeypatch)
    sp = _solve(tiny_dynamic_problem, "process", dynamic=True)
    assert sv.result.residual_history == sp.result.residual_history
    assert np.array_equal(sv.result.x, sp.result.x)
    for rv, rp in zip(sv.stats.ranks, sp.stats.ranks):
        assert rv == rp


def test_forced_process_pool_path_parity(tiny_problem, monkeypatch):
    """Zero dispatch threshold: every collective rides the shared-memory
    arena through real worker processes — and still matches virtual
    bitwise, solution and counters alike."""
    monkeypatch.setenv("REPRO_PROCESS_MIN_WORK", "0")
    monkeypatch.setenv("REPRO_PROCESS_WORKERS", "2")
    sv = _solve(tiny_problem, "virtual")
    sp = _solve(tiny_problem, "process")
    assert sv.result.residual_history == sp.result.residual_history
    assert np.array_equal(sv.result.x, sp.result.x)
    for rv, rp in zip(sv.stats.ranks, sp.stats.ranks):
        assert rv == rp


# ----------------------------------------------------------------------
# Worker-resident preconditioner state (factor shipping + fused chains)
# ----------------------------------------------------------------------
#
# The resident engines ship preconditioner factor state (BJ-ILU0 L/U
# factors, the two-level restriction basis and factorized Galerkin
# matrix) to the worker pool and fuse polynomial-apply matvec chains and
# the Arnoldi ortho+dots pair into single dispatches.  None of that may
# be observable in the numbers: virtual / thread / inline-process /
# resident-process must stay bitwise identical in x, residual history
# and per-rank CommStats, and the resident path really is one dispatch
# per preconditioner apply (read off the ``rank_op`` span vocabulary).

import contextlib
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Tracer
from repro.parallel.chaos import FaultPlan, FaultRule, use_fault_plan


@contextlib.contextmanager
def _resident_env(resident):
    """Set REPRO_PROCESS_RESIDENT/WORKERS without monkeypatch (usable
    inside hypothesis examples); ``resident=None`` means unset."""
    keys = ("REPRO_PROCESS_RESIDENT", "REPRO_PROCESS_WORKERS")
    saved = {k: os.environ.get(k) for k in keys}
    try:
        if resident is None:
            os.environ.pop("REPRO_PROCESS_RESIDENT", None)
        else:
            os.environ["REPRO_PROCESS_RESIDENT"] = "1" if resident else "0"
        os.environ["REPRO_PROCESS_WORKERS"] = "2"
        yield
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _assert_same_solve(a, b, ctx=""):
    assert a.result.converged and b.result.converged, ctx
    assert a.result.residual_history == b.result.residual_history, ctx
    assert a.result.x.tobytes() == b.result.x.tobytes(), ctx
    assert len(a.stats.ranks) == len(b.stats.ranks), ctx
    for r, (ra, rb) in enumerate(zip(a.stats.ranks, b.stats.ranks)):
        assert ra == rb, f"{ctx}: CommStats diverge at rank {r}"


#: Factor-state preconditioners: BJ-ILU0 and the two-level composites,
#: plus a Chebyshev chain (the third fused-recurrence kind).
FACTOR_CONFIGS = [
    ("rdd", "2l(bj-ilu0,deflate)"),
    ("rdd", "2l(gls(3))"),
    ("edd-enhanced", "2l(gls(3),deflate)"),
    ("edd-enhanced", "2l(neumann(8))"),
    ("edd-enhanced", "cheb(4)"),
]


@pytest.mark.parametrize(
    "method,precond", FACTOR_CONFIGS,
    ids=[f"{m}-{p}" for m, p in FACTOR_CONFIGS],
)
def test_factor_state_preconditioners_bitwise_across_backends(
    tiny_problem, method, precond
):
    """x, residual history and per-rank CommStats are bitwise equal on
    virtual, thread, inline-process and resident-process backends."""
    base = _solve(tiny_problem, "virtual", method=method, precond=precond)
    with _resident_env(None):
        thread = _solve(tiny_problem, "thread", method=method, precond=precond)
    with _resident_env(False):
        inline = _solve(
            tiny_problem, "process", method=method, precond=precond
        )
    with _resident_env(True):
        resident = _solve(
            tiny_problem, "process", method=method, precond=precond
        )
    for name, summary in (
        ("thread", thread),
        ("process-inline", inline),
        ("process-resident", resident),
    ):
        _assert_same_solve(base, summary, f"virtual vs {name} ({precond})")


def _rank_ops_under_precond_apply(trc):
    """Map precond_apply span index -> list of rank_op ops beneath it."""
    spans = trc.spans
    applies = {
        i: [] for i, s in enumerate(spans) if s["name"] == "precond_apply"
    }
    for i, s in enumerate(spans):
        if s["name"] != "rank_op":
            continue
        k = spans[i]["parent"]
        while k >= 0:
            if k in applies:
                applies[k].append(s["args"]["op"])
                break
            k = spans[k]["parent"]
    return applies


def test_bj_ilu0_is_one_prec_dispatch_per_apply(tiny_problem, monkeypatch):
    _force_resident(monkeypatch)
    trc = Tracer()
    opts = SolverOptions(method="rdd", precond="bj-ilu0",
                         comm_backend="process")
    summary = solve_cantilever(tiny_problem, n_parts=4, options=opts,
                               tracer=trc)
    assert summary.result.converged
    applies = _rank_ops_under_precond_apply(trc)
    assert applies, "no precond_apply spans recorded"
    for ops in applies.values():
        assert ops == ["prec"], ops


@pytest.mark.parametrize(
    "precond,expected",
    [
        # additive: one fused polynomial chain + one fused coarse solve
        ("2l(gls(3))", ["chain", "coarse"]),
        # deflate adds exactly ONE operator application (the deflation
        # residual v - A Q v), itself a single fused "mv" dispatch
        ("2l(gls(3),deflate)", ["chain", "coarse", "mv"]),
    ],
)
def test_two_level_is_one_chain_plus_one_coarse_dispatch(
    tiny_problem, precond, expected, monkeypatch
):
    _force_resident(monkeypatch)
    trc = Tracer()
    opts = SolverOptions(method="edd-enhanced", precond=precond,
                         comm_backend="process")
    summary = solve_cantilever(tiny_problem, n_parts=4, options=opts,
                               tracer=trc)
    assert summary.result.converged
    applies = _rank_ops_under_precond_apply(trc)
    assert applies, "no precond_apply spans recorded"
    for ops in applies.values():
        # never a per-degree "mv" ladder or per-piece "dots"/"ortho".
        assert sorted(ops) == expected, ops
    coarse = [s for s in trc.spans if s["name"] == "coarse_solve"]
    assert len(coarse) == len(applies)


def test_fused_vocabulary_replaces_per_piece_ops(tiny_problem, monkeypatch):
    _force_resident(monkeypatch)
    trc = Tracer()
    opts = SolverOptions(method="rdd", precond="2l(bj-ilu0,deflate)",
                         comm_backend="process")
    solve_cantilever(tiny_problem, n_parts=4, options=opts, tracer=trc)
    ops = {s["args"]["op"] for s in trc.spans if s["name"] == "rank_op"}
    assert {"prec", "coarse", "arn"} <= ops
    assert not ops & {"dots", "ortho"}


@settings(max_examples=8, deadline=None)
@given(
    method=st.sampled_from(["rdd", "edd-enhanced"]),
    kind=st.sampled_from(["gls", "neumann", "cheb"]),
    degree=st.integers(min_value=1, max_value=6),
    two_level=st.booleans(),
)
def test_random_polynomial_resident_parity(
    tiny_problem, method, kind, degree, two_level
):
    """Hypothesis sweep: random polynomial preconditioners, virtual vs
    resident-process, whole-solve bitwise."""
    precond = f"{kind}({degree})"
    if two_level:
        precond = f"2l({precond},deflate)"
    base = _solve(tiny_problem, "virtual", method=method, precond=precond)
    with _resident_env(True):
        res = _solve(tiny_problem, "process", method=method, precond=precond)
    _assert_same_solve(base, res, f"{method} {precond}")


def test_resident_env_does_not_perturb_coarse_allreduce_faults(
    tiny_problem,
):
    """A fault plan aimed at the coarse allreduce fires identically with
    and without the resident env knob: chaos communicators always run
    inline, so the injected corruption and every downstream float match
    bitwise."""
    plan = FaultPlan(
        rules=(FaultRule("allreduce_sum", "sign_flip", call_index=8),),
        seed=20060815,
    )

    def run(resident):
        opts = SolverOptions(
            method="edd-enhanced",
            precond="2l(gls(7),deflate)",
            comm_backend="chaos",
        )
        with _resident_env(resident), use_fault_plan(plan, inner="process"):
            return solve_cantilever(tiny_problem, n_parts=4, options=opts)

    base = run(None)
    forced = run(True)
    assert base.result.converged == forced.result.converged
    assert base.result.residual_history == forced.result.residual_history
    assert base.result.x.tobytes() == forced.result.x.tobytes()
    assert [e.kind for e in base.result.diagnostics] == [
        e.kind for e in forced.result.diagnostics
    ]
    for ra, rb in zip(base.stats.ranks, forced.stats.ranks):
        assert ra == rb
