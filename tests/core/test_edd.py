"""EDD-FGMRES (Algorithms 5-6): correctness, rank-invariance, communication
structure."""

import numpy as np
import pytest

from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.fem.bc import clamp_edge_dofs
from repro.fem.cantilever import cantilever_problem
from repro.partition.element_partition import ElementPartition
from repro.precond.gls import GLSPolynomial
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.neumann import NeumannPolynomial
from repro.precond.scaling import scale_system


def _build(problem, n_parts, **kw):
    f_full = problem.bc.expand(problem.load)
    part = ElementPartition.build(problem.mesh, n_parts)
    return build_edd_system(
        problem.mesh, problem.material, problem.bc, part, f_full, **kw
    )


def _direct(problem):
    return np.linalg.solve(problem.stiffness.toarray(), problem.load)


def test_matches_direct_solve(tiny_problem, comm_backend):
    system = _build(tiny_problem, 3)
    assert system.comm.backend_name == comm_backend
    res = edd_fgmres(system, GLSPolynomial.unit_interval(7, eps=1e-6), tol=1e-10)
    assert res.converged
    assert np.allclose(res.x, _direct(tiny_problem), rtol=1e-6, atol=1e-12)


def test_unpreconditioned_matches_direct(tiny_problem, comm_backend):
    system = _build(tiny_problem, 2)
    res = edd_fgmres(system, None, tol=1e-10, restart=60)
    assert res.converged
    assert np.allclose(res.x, _direct(tiny_problem), rtol=1e-5, atol=1e-12)


@pytest.mark.parametrize("variant", ["basic", "enhanced"])
def test_variants_numerically_identical(tiny_problem, variant):
    """Algorithms 5 and 6 differ only in communication, not numerics."""
    system = _build(tiny_problem, 3)
    res = edd_fgmres(
        system,
        GLSPolynomial.unit_interval(5, eps=1e-6),
        tol=1e-8,
        variant=variant,
    )
    assert res.converged
    assert np.allclose(res.x, _direct(tiny_problem), rtol=1e-5, atol=1e-12)


def test_iterations_independent_of_rank_count(mesh2_problem):
    """Partitioning is purely algebraic bookkeeping: same iterations for
    every P (the paper's Table 3 shows the same behaviour)."""
    iters = []
    for p in (1, 2, 4):
        system = _build(mesh2_problem, p)
        res = edd_fgmres(
            system, GLSPolynomial.unit_interval(7, eps=1e-6), tol=1e-6
        )
        assert res.converged
        iters.append(res.iterations)
    assert iters[0] == iters[1] == iters[2]


def test_enhanced_one_exchange_per_iteration(tiny_problem):
    """Algorithm 6's claim: 1 non-preconditioner exchange per Arnoldi step
    (degree m polynomial adds m more)."""
    system = _build(tiny_problem, 2)
    deg = 4
    pre = NeumannPolynomial(deg)
    snap = system.comm.stats.snapshot()
    res = edd_fgmres(system, pre, tol=1e-8, variant="enhanced", restart=50)
    delta = system.comm.stats.delta(snap)
    n_pairs = 1  # 2 subdomains -> rank 0 has 1 neighbour
    iters = res.iterations
    # total exchanges = (deg+1) per iteration + 2 per restart cycle (initial
    # residual assembly) -> count rank-0 messages
    expected = (deg + 1) * iters + 2 * (res.restarts + 0)
    msgs = delta.ranks[0].nbr_messages / n_pairs
    assert msgs == pytest.approx(expected, abs=2)


def test_basic_three_exchanges_per_iteration(tiny_problem):
    system = _build(tiny_problem, 2)
    deg = 4
    snap = system.comm.stats.snapshot()
    res = edd_fgmres(
        system, NeumannPolynomial(deg), tol=1e-8, variant="basic", restart=50
    )
    delta = system.comm.stats.delta(snap)
    iters = res.iterations
    expected = (deg + 3) * iters + 2 * res.restarts
    msgs = delta.ranks[0].nbr_messages
    assert msgs == pytest.approx(expected, abs=2)


def test_two_allreduces_per_iteration(tiny_problem):
    system = _build(tiny_problem, 2)
    snap = system.comm.stats.snapshot()
    res = edd_fgmres(
        system, NeumannPolynomial(3), tol=1e-8, restart=50
    )
    delta = system.comm.stats.delta(snap)
    # 2 per iteration + 2 per restart cycle (initial/final norm)
    expected = 2 * res.iterations + 2 * res.restarts
    assert delta.ranks[0].reductions == pytest.approx(expected, abs=2)


def test_ilu_rejected_for_distributed_system(tiny_problem):
    system = _build(tiny_problem, 2)
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    ilu = ILU0Preconditioner(ss.a)
    with pytest.raises(TypeError, match="polynomial"):
        edd_fgmres(system, ilu)


def test_invalid_variant(tiny_problem):
    system = _build(tiny_problem, 2)
    with pytest.raises(ValueError):
        edd_fgmres(system, None, variant="turbo")


def test_restart_validation(tiny_problem):
    system = _build(tiny_problem, 2)
    with pytest.raises(ValueError):
        edd_fgmres(system, None, restart=0)


def test_dynamic_effective_system(tiny_dynamic_problem):
    """EDD on the alpha*M + beta*K effective matrix (Eq. 52)."""
    alpha, beta = 2.0, 1.0
    system = _build(tiny_dynamic_problem, 2, mass_shift=(alpha, beta))
    res = edd_fgmres(
        system, GLSPolynomial.unit_interval(7, eps=1e-6), tol=1e-10
    )
    assert res.converged
    k_eff = (
        beta * tiny_dynamic_problem.stiffness.toarray()
        + alpha * tiny_dynamic_problem.mass.toarray()
    )
    u_ref = np.linalg.solve(k_eff, tiny_dynamic_problem.load)
    assert np.allclose(res.x, u_ref, rtol=1e-6, atol=1e-12)


def test_max_iter_unconverged_flag(tiny_problem):
    system = _build(tiny_problem, 2)
    res = edd_fgmres(system, None, tol=1e-14, max_iter=2)
    assert not res.converged
    assert res.iterations == 2
