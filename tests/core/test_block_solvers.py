"""Batched multi-RHS solve paths: parity and communication invariants.

The contract of ``edd_fgmres_block`` / ``rdd_fgmres_block`` /
``fgmres_block`` has three layers, each pinned here:

* **k=1 is the single solver, bitwise.**  A one-column block solve takes
  the exact same floating-point path as the single-RHS solver — residual
  histories and solutions are compared with ``==``, not ``allclose``,
  across {EDD basic/enhanced, RDD} x {virtual, thread} x {GLS(7),
  Neumann(20)}.
* **Columns are independent.**  In a mixed batch each column tracks its
  own convergence; per-column iteration counts equal the corresponding
  one-column solves, and histories agree to roundoff (cross-column
  bitwise equality is not promised for k > 1: per-column reductions over
  a strided block and over a contiguous vector round differently).
* **Communication coalesces.**  A k-RHS solve issues the *same number of
  nearest-neighbour messages* as a single solve of the same trajectory,
  with word volume and flops scaling exactly k-fold — that is the whole
  point of the batched exchanges, and it is asserted from CommStats.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.options import SolverOptions
from repro.core.session import PreparedSystem
from repro.solvers import fgmres, fgmres_block

N_PARTS = 4

METHODS = ["edd-enhanced", "edd-basic", "rdd"]
PRECONDS = ["gls(7)", "neumann(20)"]


def _prepared(problem, method, precond, backend, **kw):
    options = SolverOptions(method=method, precond=precond,
                            comm_backend=backend, **kw)
    return PreparedSystem.build(problem, N_PARTS, options)


# ----------------------------------------------------------------------
# k = 1: exact single-RHS equivalence
# ----------------------------------------------------------------------
@pytest.mark.parametrize("precond", PRECONDS)
@pytest.mark.parametrize("method", METHODS)
def test_k1_block_is_bitwise_single(mesh2_problem, method, precond,
                                    comm_backend):
    ps = _prepared(mesh2_problem, method, precond, comm_backend)
    try:
        single = ps.solve()
        batch = ps.solve_batch(mesh2_problem.load.reshape(-1, 1))
    finally:
        ps.close()
    rs, rb = single.result, batch.results[0]
    assert rb.converged and rs.converged
    assert rb.iterations == rs.iterations
    assert rb.restarts == rs.restarts
    assert np.array_equal(
        np.asarray(rb.residual_history), np.asarray(rs.residual_history)
    )
    assert np.array_equal(rb.x, rs.x)
    assert batch.true_residuals[0] == pytest.approx(single.true_residual)


def test_k1_bitwise_across_restart_cycles(mesh2_problem):
    """restart=5 forces several cycles (and cycle-boundary recomputes);
    the k=1 equivalence must survive them."""
    ps = _prepared(mesh2_problem, "edd-enhanced", "neumann(20)", "virtual",
                   restart=5)
    try:
        single = ps.solve()
        batch = ps.solve_batch(mesh2_problem.load.reshape(-1, 1))
    finally:
        ps.close()
    rs, rb = single.result, batch.results[0]
    assert rs.restarts > 1
    assert rb.restarts == rs.restarts
    assert np.array_equal(
        np.asarray(rb.residual_history), np.asarray(rs.residual_history)
    )
    assert np.array_equal(rb.x, rs.x)


@pytest.mark.parametrize("method", ["edd-enhanced", "rdd"])
def test_k1_bitwise_under_max_iter_cap(mesh2_problem, method):
    """A capped, non-converged solve exits through the diagnostics path;
    the block solver must mirror it exactly, including the failure."""
    ps = _prepared(mesh2_problem, method, "gls(7)", "virtual",
                   tol=1e-14, max_iter=6)
    try:
        single = ps.solve()
        batch = ps.solve_batch(mesh2_problem.load.reshape(-1, 1))
    finally:
        ps.close()
    rs, rb = single.result, batch.results[0]
    assert not rs.converged and not rb.converged
    assert rb.iterations == rs.iterations == 6
    assert np.array_equal(
        np.asarray(rb.residual_history), np.asarray(rs.residual_history)
    )
    assert np.array_equal(rb.x, rs.x)
    assert [e.kind for e in rb.diagnostics] == [
        e.kind for e in rs.diagnostics
    ]


# ----------------------------------------------------------------------
# Mixed batches: per-column independence and masking
# ----------------------------------------------------------------------
def _mixed_block(problem, k=3):
    rng = np.random.default_rng(7)
    scale = float(np.linalg.norm(problem.load))
    cols = [problem.load, scale * rng.standard_normal(problem.n_eqn)]
    while len(cols) < k:
        e = np.zeros(problem.n_eqn)
        e[3 * len(cols)] = scale
        cols.append(e)
    return np.column_stack(cols)


@pytest.mark.parametrize("method", ["edd-enhanced", "rdd"])
def test_mixed_batch_matches_one_column_solves(mesh2_problem, method):
    b_block = _mixed_block(mesh2_problem)
    ps = _prepared(mesh2_problem, method, "gls(7)", "virtual")
    try:
        batch = ps.solve_batch(b_block)
        singles = [
            ps.solve_batch(b_block[:, c].reshape(-1, 1)).results[0]
            for c in range(b_block.shape[1])
        ]
    finally:
        ps.close()
    for c, (rb, rs) in enumerate(zip(batch.results, singles)):
        assert rb.converged, c
        assert rb.iterations == rs.iterations, c
        np.testing.assert_allclose(
            np.asarray(rb.residual_history),
            np.asarray(rs.residual_history),
            rtol=1e-8, err_msg=f"column {c}",
        )
        np.testing.assert_allclose(rb.x, rs.x, rtol=1e-8, atol=1e-12)
    assert all(t <= 1e-4 for t in batch.true_residuals)


def test_mixed_batch_masking_across_restarts(mesh2_problem):
    """With restart=5 the fast columns finish mid-cycle and are compacted
    out while slow ones keep iterating — counts must still match the
    one-column runs."""
    b_block = _mixed_block(mesh2_problem, k=4)
    ps = _prepared(mesh2_problem, "edd-enhanced", "neumann(20)", "virtual",
                   restart=5)
    try:
        batch = ps.solve_batch(b_block)
        singles = [
            ps.solve_batch(b_block[:, c].reshape(-1, 1)).results[0]
            for c in range(b_block.shape[1])
        ]
    finally:
        ps.close()
    assert [r.iterations for r in batch.results] == [
        r.iterations for r in singles
    ]
    assert len({r.iterations for r in batch.results}) > 1, (
        "want columns that converge at different speeds"
    )
    for rb in batch.results:
        assert rb.converged


def test_zero_column_converges_immediately(mesh2_problem):
    b_block = np.column_stack([mesh2_problem.load,
                               np.zeros(mesh2_problem.n_eqn)])
    for method in ("edd-enhanced", "rdd"):
        ps = _prepared(mesh2_problem, method, "gls(7)", "virtual")
        try:
            batch = ps.solve_batch(b_block)
        finally:
            ps.close()
        assert batch.results[1].converged
        assert batch.results[1].iterations == 0
        assert np.array_equal(batch.results[1].x,
                              np.zeros(mesh2_problem.n_eqn))
        assert batch.results[0].converged
        assert batch.results[0].iterations > 0


def test_rdd_bj_ilu0_batched(mesh2_problem):
    """The assembled-block ILU preconditioner has its own batched apply;
    k=1 stays bitwise and a mixed batch converges per column."""
    ps = _prepared(mesh2_problem, "rdd", "bj-ilu0", "virtual")
    try:
        single = ps.solve()
        batch1 = ps.solve_batch(mesh2_problem.load.reshape(-1, 1))
        batch = ps.solve_batch(_mixed_block(mesh2_problem))
    finally:
        ps.close()
    assert np.array_equal(
        np.asarray(batch1.results[0].residual_history),
        np.asarray(single.result.residual_history),
    )
    assert np.array_equal(batch1.results[0].x, single.result.x)
    assert all(r.converged for r in batch.results)
    assert all(t <= 1e-4 for t in batch.true_residuals)


# ----------------------------------------------------------------------
# Communication invariant: k-RHS traffic = 1 x messages, k x words
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("k", [2, 4, 8])
def test_batched_exchange_coalescing(mesh2_problem, method, k):
    """Identical columns take identical trajectories, so the batched solve
    must replay the single solve's message pattern exactly: equal message
    and reduction counts, word volume and flops scaled by exactly k."""
    ps = _prepared(mesh2_problem, method, "gls(7)", "virtual")
    try:
        single = ps.solve()
        b_block = np.repeat(mesh2_problem.load.reshape(-1, 1), k, axis=1)
        batch = ps.solve_batch(b_block)
    finally:
        ps.close()
    assert [r.iterations for r in batch.results] == (
        [single.result.iterations] * k
    )
    ss, sb = single.stats, batch.stats
    assert sb.total_nbr_messages == ss.total_nbr_messages
    assert sb.total_nbr_words == k * ss.total_nbr_words
    assert sb.total_flops == k * ss.total_flops
    assert sb.max_reductions == ss.max_reductions


# ----------------------------------------------------------------------
# Sequential fgmres_block
# ----------------------------------------------------------------------
def _laplacian_system(n=120):
    """Shifted 1-D Laplacian: well conditioned, converges in tens of
    iterations, so block-vs-single roundoff has no room to accumulate."""
    from repro.sparse.coo import COOMatrix

    rows, cols, vals = [], [], []
    for i in range(n):
        rows.append(i), cols.append(i), vals.append(3.0)
        if i > 0:
            rows.append(i), cols.append(i - 1), vals.append(-1.0)
        if i < n - 1:
            rows.append(i), cols.append(i + 1), vals.append(-1.0)
    a = COOMatrix((n, n), np.array(rows), np.array(cols),
                  np.array(vals, dtype=float)).tocsr()
    return a


def test_fgmres_block_matches_fgmres_per_column():
    a = _laplacian_system()
    n = a.shape[0]
    rng = np.random.default_rng(11)
    b_block = rng.standard_normal((n, 3))
    results = fgmres_block(a.matmat, b_block, restart=20, tol=1e-8)
    for c in range(3):
        single = fgmres(a.matvec, b_block[:, c], restart=20, tol=1e-8)
        rb = results[c]
        assert rb.converged and single.converged
        assert rb.iterations == single.iterations
        np.testing.assert_allclose(rb.x, single.x, rtol=1e-7, atol=1e-10)
        np.testing.assert_allclose(
            np.asarray(rb.residual_history),
            np.asarray(single.residual_history),
            rtol=1e-6,
        )


def test_fgmres_block_1d_rhs_and_k0():
    a = _laplacian_system(40)
    b = np.ones(40)
    results = fgmres_block(a.matmat, b, restart=15, tol=1e-10)
    assert len(results) == 1
    assert results[0].converged
    np.testing.assert_allclose(a.matvec(results[0].x), b, atol=1e-8)
    assert fgmres_block(a.matmat, np.empty((40, 0))) == []


def test_fgmres_block_rejects_nonfinite_rhs():
    a = _laplacian_system(10)
    b = np.ones((10, 2))
    b[3, 1] = np.nan
    with pytest.raises(ValueError, match="NaN or Inf"):
        fgmres_block(a.matmat, b)


def test_fgmres_block_zero_column_and_masking():
    a = _laplacian_system(60)
    rng = np.random.default_rng(3)
    b_block = np.column_stack(
        [np.zeros(60), rng.standard_normal(60), np.ones(60)]
    )
    results = fgmres_block(a.matmat, b_block, restart=10, tol=1e-9)
    assert results[0].converged and results[0].iterations == 0
    assert np.array_equal(results[0].x, np.zeros(60))
    for c in (1, 2):
        assert results[c].converged
        np.testing.assert_allclose(
            a.matvec(results[c].x), b_block[:, c], atol=1e-6
        )
