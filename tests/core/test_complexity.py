"""Table 1 analytic cost model and its agreement with recorded counters."""

import numpy as np
import pytest

from repro.core.complexity import ArnoldiStepCost, arnoldi_step_cost
from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.core.rdd import build_rdd_system, rdd_fgmres
from repro.fem.cantilever import cantilever_problem
from repro.partition.element_partition import ElementPartition
from repro.partition.node_partition import NodePartition
from repro.precond.neumann import NeumannPolynomial


def test_table1_formulas():
    assert arnoldi_step_cost("edd-basic", 7) == ArnoldiStepCost(10, 2, 8)
    assert arnoldi_step_cost("edd-enhanced", 7) == ArnoldiStepCost(8, 2, 8)
    assert arnoldi_step_cost("rdd", 7) == ArnoldiStepCost(8, 2, 8)


def test_enhanced_saves_two_exchanges_always():
    for deg in (0, 1, 5, 10):
        basic = arnoldi_step_cost("edd-basic", deg)
        enh = arnoldi_step_cost("edd-enhanced", deg)
        assert basic.exchanges - enh.exchanges == 2
        assert basic.matvecs == enh.matvecs


def test_validation():
    with pytest.raises(ValueError):
        arnoldi_step_cost("edd-basic", -1)
    with pytest.raises(ValueError):
        arnoldi_step_cost("feti", 3)


@pytest.mark.parametrize(
    "variant,degree", [("basic", 3), ("enhanced", 3), ("enhanced", 0)]
)
def test_edd_counters_match_model(variant, degree):
    """Run a full solve and check measured per-iteration exchanges against
    the Table 1 formula (restart overhead subtracted exactly)."""
    p = cantilever_problem(nx=6, ny=2)
    part = ElementPartition(
        p.mesh, np.repeat([0, 1], 6), 2
    )  # two strips, 1 neighbour pair
    f_full = p.bc.expand(p.load)
    system = build_edd_system(p.mesh, p.material, p.bc, part, f_full)
    pre = NeumannPolynomial(degree) if degree else None
    res = edd_fgmres(system, pre, tol=1e-8, restart=100, variant=variant)
    assert res.converged
    assert res.restarts == 1
    model = arnoldi_step_cost(f"edd-{variant}", degree)
    msgs = system.comm.stats.ranks[0].nbr_messages
    # one restart cycle: +2 exchanges for the initial residual assembly
    assert msgs == model.exchanges * res.iterations + 2
    reds = system.comm.stats.ranks[0].reductions
    assert reds == model.reductions * res.iterations + 2


def test_rdd_counters_match_model():
    p = cantilever_problem(nx=6, ny=2)
    part = NodePartition.build(p.mesh, 2)
    system = build_rdd_system(p.mesh, p.bc, part, p.stiffness, p.load)
    degree = 3
    res = rdd_fgmres(system, NeumannPolynomial(degree), tol=1e-8, restart=100)
    assert res.converged and res.restarts == 1
    model = arnoldi_step_cost("rdd", degree)
    msgs = system.comm.stats.ranks[0].nbr_messages
    assert msgs == model.exchanges * res.iterations + 2
