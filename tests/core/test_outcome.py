"""SolveOutcome: every solve entry point returns one conforming shape.

``ParallelSolveSummary`` (one-shot driver), ``BatchSolveSummary``
(multi-RHS session path) and ``SolveResponse`` (service wire format) all
satisfy the protocol — ``result`` / ``stats`` / ``trace`` / ``to_dict()``
— and every ``to_dict()`` payload carries the single shared
``schema_version`` stamp.
"""

import asyncio

import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.core.outcome import SCHEMA_VERSION, SolveOutcome
from repro.core.session import solve_cantilever_batch
from repro.obs import Tracer
from repro.service import ServiceConfig, SolveRequest, SolverService


@pytest.fixture(scope="module")
def outcomes(request):
    """One instance of each outcome-bearing type, solved once."""
    tiny = request.getfixturevalue("tiny_problem")
    summary = solve_cantilever(
        tiny, n_parts=2, options=SolverOptions(), tracer=Tracer()
    )
    batch = solve_cantilever_batch(tiny, tiny.load.reshape(-1, 1), 2)

    async def serve_one():
        async with SolverService(ServiceConfig()) as svc:
            return await svc.submit(
                SolveRequest(mesh=1, n_parts=2, trace=True)
            )

    response = asyncio.run(serve_one())
    return {"driver": summary, "batch": batch, "service": response}


@pytest.mark.parametrize("kind", ["driver", "batch", "service"])
def test_outcome_protocol_conformance(outcomes, kind):
    outcome = outcomes[kind]
    assert isinstance(outcome, SolveOutcome)
    assert outcome.result is not None
    assert outcome.stats is not None
    payload = outcome.to_dict()
    assert payload["schema_version"] == SCHEMA_VERSION


@pytest.mark.parametrize("kind", ["driver", "service"])
def test_traced_outcomes_expose_trace(outcomes, kind):
    trace = outcomes[kind].trace
    assert trace is not None
    assert trace["schema"] == "repro-trace/1"


def test_callers_never_branch_on_concrete_type(outcomes):
    """The facade promise: uniform handling across all outcome shapes."""
    def digest(outcome: SolveOutcome) -> dict:
        payload = outcome.to_dict()
        return {
            "schema_version": payload["schema_version"],
            "has_stats": outcome.stats is not None,
        }

    digests = [digest(o) for o in outcomes.values()]
    assert all(d == digests[0] for d in digests)


def test_run_record_carries_schema_version(tiny_problem, tmp_path):
    from dataclasses import asdict

    from repro.io.records import (
        load_records,
        record_from_summary,
        save_records,
    )

    summary = solve_cantilever(tiny_problem, n_parts=2)
    record = record_from_summary(summary, label="tiny/p2", n_eqn=40)
    assert record.schema_version == SCHEMA_VERSION
    assert asdict(record)["schema_version"] == SCHEMA_VERSION
    path = tmp_path / "records.json"
    save_records([record], path)
    assert load_records(path)[0].schema_version == SCHEMA_VERSION
