"""Streamed (chunked) assembly: bit-identity with the monolithic path.

The large-mesh tier builds per-subdomain operators without materializing
the global stiffness CSR or the full element-matrix array; these tests pin
the contract that makes that safe — the streamed chunks concatenate to the
exact COO entry arrays of the monolithic assembler, so every downstream
float (CSR data, scaling vectors, solve iterates) agrees bitwise.
"""

import numpy as np
import pytest

from repro.core.distributed import build_edd_system, build_edd_system_streamed
from repro.core.edd import edd_fgmres
from repro.fem.assembly import assemble_matrix, iter_element_coo
from repro.fem.cantilever import cantilever_inputs, cantilever_problem
from repro.partition.element_partition import ElementPartition


@pytest.fixture(scope="module")
def prob():
    return cantilever_problem(nx=6, ny=4, with_mass=True)


@pytest.fixture(scope="module")
def part(prob):
    return ElementPartition.build(prob.mesh, 4)


@pytest.mark.parametrize("kind", ["stiffness", "mass"])
@pytest.mark.parametrize("chunk", [1, 7, 10**6])
def test_chunks_concatenate_to_monolithic_entries(prob, kind, chunk):
    ref = assemble_matrix(prob.mesh, prob.material, kind)
    chunks = list(iter_element_coo(prob.mesh, prob.material, kind, chunk=chunk))
    rows = np.concatenate([c[0] for c in chunks])
    cols = np.concatenate([c[1] for c in chunks])
    data = np.concatenate([c[2] for c in chunks])
    assert rows.tobytes() == ref.rows.tobytes()
    assert cols.tobytes() == ref.cols.tobytes()
    assert data.tobytes() == ref.data.tobytes()


def test_subset_streaming_matches_subset_assembly(prob):
    subset = np.array([3, 1, 8, 2, 17, 5], dtype=np.int64)
    ref = assemble_matrix(
        prob.mesh, prob.material, "stiffness", element_subset=subset
    )
    chunks = list(
        iter_element_coo(
            prob.mesh, prob.material, "stiffness",
            element_subset=subset, chunk=2,
        )
    )
    data = np.concatenate([c[2] for c in chunks])
    assert data.tobytes() == ref.data.tobytes()


def test_iter_rejects_bad_arguments(prob):
    with pytest.raises(ValueError, match="kind"):
        next(iter_element_coo(prob.mesh, prob.material, "damping"))
    with pytest.raises(ValueError, match="chunk"):
        next(iter_element_coo(prob.mesh, prob.material, chunk=0))


@pytest.mark.parametrize("shift", [None, (0.3, 1.7)])
def test_streamed_system_bitwise_identical(prob, part, shift):
    f_full = prob.bc.expand(prob.load)
    ref = build_edd_system(
        prob.mesh, prob.material, prob.bc, part, f_full, mass_shift=shift
    )
    st = build_edd_system_streamed(
        prob.mesh, prob.material, prob.bc, part, f_full,
        mass_shift=shift, chunk=5,
    )
    for a, b in zip(ref.a_local, st.a_local):
        assert a.indptr.tobytes() == b.indptr.tobytes()
        assert a.indices.tobytes() == b.indices.tobytes()
        assert a.data.tobytes() == b.data.tobytes()
    for x, y in zip(ref.b_local, st.b_local):
        assert x.tobytes() == y.tobytes()
    for x, y in zip(ref.d_parts, st.d_parts):
        assert x.tobytes() == y.tobytes()
    for x, y in zip(ref.owner_mask, st.owner_mask):
        assert x.tobytes() == y.tobytes()


def test_cantilever_inputs_skips_assembly_but_matches(prob):
    mesh, bc, f_full, material = cantilever_inputs(nx=6, ny=4)
    assert np.array_equal(f_full[bc.free], prob.load)
    assert bc.n_free == prob.bc.n_free
    assert mesh.n_elements == prob.mesh.n_elements


def test_streamed_solve_matches_monolithic(prob, part):
    """End to end: a solve on the streamed system reproduces the
    monolithic system's iterates bitwise."""
    f_full = prob.bc.expand(prob.load)
    ref = edd_fgmres(
        build_edd_system(prob.mesh, prob.material, prob.bc, part, f_full)
    )
    got = edd_fgmres(
        build_edd_system_streamed(
            prob.mesh, prob.material, prob.bc, part, f_full, chunk=9
        )
    )
    assert ref.iterations == got.iterations
    assert ref.residual_history == got.residual_history
    assert ref.x.tobytes() == got.x.tobytes()
