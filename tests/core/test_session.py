"""Prepared-system sessions: setup/solve split, caching, reuse.

``PreparedSystem`` freezes the setup pipeline's output; ``SolveSession``
caches prepared systems by (problem, n_parts, setup-relevant options).
The measurable contracts pinned here:

* a session solve is numerically identical to the one-shot driver
  (bitwise histories — same code path, same prepared state);
* a cache hit costs no setup: same ``PreparedSystem`` object, summary
  reports ``setup_time == 0.0``;
* solve-time knobs (tol, restart) vary against one prepared system,
  setup-relevant knobs are rejected without a rebuild;
* the serial verification operator is built once per prepared system.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.core.session import (
    PreparedSystem,
    SolveSession,
    solve_cantilever_batch,
)

N_PARTS = 4


def test_session_solve_matches_driver(mesh2_problem):
    options = SolverOptions(precond="gls(7)")
    reference = solve_cantilever(mesh2_problem, N_PARTS, options)
    with SolveSession() as session:
        summary = session.solve(mesh2_problem, N_PARTS, options)
    assert np.array_equal(
        np.asarray(summary.result.residual_history),
        np.asarray(reference.result.residual_history),
    )
    assert np.array_equal(summary.result.x, reference.result.x)
    assert summary.true_residual == pytest.approx(reference.true_residual)
    assert summary.stats.total_flops == reference.stats.total_flops


def test_driver_reports_setup_time(mesh2_problem):
    summary = solve_cantilever(mesh2_problem, N_PARTS)
    assert summary.setup_time > 0.0
    assert summary.to_dict()["setup_time"] == summary.setup_time


def test_cache_hit_reuses_prepared_system(mesh2_problem):
    options = SolverOptions()
    with SolveSession() as session:
        first = session.solve(mesh2_problem, N_PARTS, options)
        ps = session.prepared(mesh2_problem, N_PARTS, options)
        second = session.solve(mesh2_problem, N_PARTS, options)
        assert session.misses == 1
        assert session.hits == 2  # prepared() + second solve
        assert session.prepared(mesh2_problem, N_PARTS, options) is ps
        assert first.setup_time > 0.0
        assert second.setup_time == 0.0
        assert np.array_equal(first.result.x, second.result.x)
        assert first.stats.total_flops == second.stats.total_flops
        assert len(session) == 1


def test_cache_keys_on_setup_relevant_fields(mesh2_problem):
    with SolveSession() as session:
        session.solve(mesh2_problem, N_PARTS, SolverOptions())
        # tol/restart are solve-time knobs: same prepared system.
        session.solve(
            mesh2_problem, N_PARTS, SolverOptions(tol=1e-8, restart=10)
        )
        assert (session.misses, session.hits) == (1, 1)
        # method/precond are setup-relevant: new prepared systems.
        session.solve(mesh2_problem, N_PARTS, SolverOptions(method="rdd"))
        session.solve(
            mesh2_problem, N_PARTS, SolverOptions(precond="neumann(20)")
        )
        assert (session.misses, session.hits) == (3, 1)
        assert len(session) == 3
        session.solve(mesh2_problem, 2, SolverOptions())
        assert session.misses == 4  # n_parts is part of the key
    assert len(session) == 0  # close() emptied the cache


def test_mesh_id_problems_share_cache_entries():
    with SolveSession() as session:
        a = session.solve(1, 2)
        b = session.solve(1, 2)
    assert (session.misses, session.hits) == (1, 1)
    assert b.setup_time == 0.0
    assert np.array_equal(a.result.x, b.result.x)


def test_prepared_system_rejects_setup_field_change(mesh2_problem):
    with PreparedSystem.build(mesh2_problem, 2, SolverOptions()) as ps:
        ps.solve(SolverOptions(tol=1e-4))  # solve-time knob: fine
        with pytest.raises(ValueError, match="setup-relevant"):
            ps.solve(SolverOptions(precond="neumann(20)"))
        with pytest.raises(ValueError, match="setup-relevant"):
            ps.solve_batch(
                mesh2_problem.load.reshape(-1, 1),
                SolverOptions(method="rdd"),
            )


def test_verify_operator_cached(mesh2_problem):
    with PreparedSystem.build(mesh2_problem, 2, SolverOptions()) as ps:
        assert ps.verify_operator() is ps.verify_operator()
        assert ps.verify_operator() is mesh2_problem.stiffness


def test_verify_operator_dynamic_combines_mass(tiny_dynamic_problem):
    options = SolverOptions(dynamic=True)
    with PreparedSystem.build(tiny_dynamic_problem, 2, options) as ps:
        a = ps.verify_operator()
        assert a is ps.verify_operator()
        assert a is not tiny_dynamic_problem.stiffness
        summary = ps.solve()
    assert summary.result.converged


def test_session_batch_solve_and_reuse(mesh2_problem):
    b_block = np.column_stack(
        [mesh2_problem.load, 2.0 * mesh2_problem.load]
    )
    with SolveSession() as session:
        first = session.solve_batch(mesh2_problem, b_block, N_PARTS)
        second = session.solve_batch(mesh2_problem, b_block, N_PARTS)
    assert first.n_rhs == 2
    assert first.all_converged
    assert first.setup_time > 0.0
    assert second.setup_time == 0.0
    assert (session.misses, session.hits) == (1, 1)
    for rb, rs in zip(first.results, second.results):
        assert np.array_equal(rb.x, rs.x)


def test_solve_cantilever_batch_with_session(mesh2_problem):
    b_block = mesh2_problem.load.reshape(-1, 1)
    with SolveSession() as session:
        one = solve_cantilever_batch(
            mesh2_problem, b_block, N_PARTS, session=session
        )
        two = solve_cantilever_batch(
            mesh2_problem, b_block, N_PARTS, session=session
        )
    assert one.setup_time > 0.0
    assert two.setup_time == 0.0
    assert np.array_equal(one.results[0].x, two.results[0].x)


def test_batch_summary_to_dict(mesh2_problem):
    summary = solve_cantilever_batch(
        mesh2_problem, mesh2_problem.load.reshape(-1, 1), 2
    )
    payload = summary.to_dict()
    assert payload["n_rhs"] == 1
    assert set(payload) == {
        "schema_version", "method", "precond", "n_parts", "n_rhs",
        "comm_backend", "wall_time", "setup_time", "true_residuals",
        "results", "stats", "options",
    }
    assert payload["schema_version"] == 1
    assert payload["results"][0]["converged"] is True
    assert payload["true_residuals"][0] <= 1e-4


def test_summaries_survive_later_solves(mesh2_problem):
    """Counters on a returned summary are a snapshot, not a live view of
    the (reused, reset) communicator."""
    with SolveSession() as session:
        first = session.solve(mesh2_problem, N_PARTS)
        flops = first.stats.total_flops
        session.solve(mesh2_problem, N_PARTS, SolverOptions(tol=1e-2))
        assert first.stats.total_flops == flops


def test_prepared_system_close_idempotent(mesh2_problem):
    ps = PreparedSystem.build(mesh2_problem, 2, SolverOptions())
    ps.solve()
    ps.close()
    ps.close()


# ----------------------------------------------------------------------
# Bounded cache: LRU eviction by entry count and by resident bytes
# ----------------------------------------------------------------------
OPTS_A = SolverOptions()
OPTS_B = SolverOptions(precond="neumann(20)")
OPTS_C = SolverOptions(precond="gls(3)")


def test_cache_bounds_validated():
    with pytest.raises(ValueError):
        SolveSession(max_entries=0)
    with pytest.raises(ValueError):
        SolveSession(max_bytes=0)
    with pytest.raises(ValueError):
        SolveSession(max_entries=-1)


def test_lru_evicts_least_recently_used(tiny_problem):
    with SolveSession(max_entries=2) as session:
        a = session.prepared(tiny_problem, 2, OPTS_A)
        b = session.prepared(tiny_problem, 2, OPTS_B)
        # Touch A so B becomes the least recently used entry.
        assert session.prepared(tiny_problem, 2, OPTS_A) is a
        c = session.prepared(tiny_problem, 2, OPTS_C)
        assert len(session) == 2
        assert session.evictions == 1
        # A survived (recently used), C is resident, B was evicted ...
        assert session.prepared(tiny_problem, 2, OPTS_A) is a
        assert session.prepared(tiny_problem, 2, OPTS_C) is c
        assert session.misses == 3
        # ... so asking for B again is a rebuild, evicting A (now LRU).
        b2 = session.prepared(tiny_problem, 2, OPTS_B)
        assert b2 is not b
        assert session.misses == 4
        assert session.evictions == 2


def test_evicted_entry_rebuilds_bitwise_identical(tiny_problem):
    with SolveSession(max_entries=1) as session:
        first = session.solve(tiny_problem, 2, OPTS_A)
        session.solve(tiny_problem, 2, OPTS_B)  # evicts the OPTS_A entry
        assert session.evictions == 1
        again = session.solve(tiny_problem, 2, OPTS_A)  # rebuilt, not hit
        assert session.misses == 3
    assert again.setup_time > 0.0
    assert np.array_equal(first.result.x, again.result.x)
    assert first.result.residual_history == again.result.residual_history


def test_byte_bound_evicts_and_tracks_resident_bytes(tiny_problem):
    with SolveSession() as probe:
        nbytes = probe.prepared(tiny_problem, 2, OPTS_A).nbytes
    assert nbytes > 0
    # Room for one entry but not two: each insert evicts the previous.
    with SolveSession(max_bytes=int(nbytes * 1.5)) as session:
        session.prepared(tiny_problem, 2, OPTS_A)
        assert session.cache_bytes > 0
        session.prepared(tiny_problem, 2, OPTS_B)
        assert session.evictions == 1
        assert len(session) == 1
        assert session.cache_bytes <= int(nbytes * 1.5)


def test_sole_entry_never_evicted(tiny_problem):
    """An over-budget lone entry stays resident: the bound sheds history,
    it never denies the solve in progress."""
    with SolveSession(max_bytes=1) as session:
        summary = session.solve(tiny_problem, 2, OPTS_A)
        assert summary.result.converged
        assert len(session) == 1
        assert session.evictions == 0
        session.solve(tiny_problem, 2, OPTS_B)
        assert len(session) == 1
        assert session.evictions == 1


def test_cache_stats_snapshot(tiny_problem):
    with SolveSession(max_entries=4, max_bytes=10**9) as session:
        session.solve(tiny_problem, 2, OPTS_A)
        session.solve(tiny_problem, 2, OPTS_A)
        stats = session.cache_stats()
    assert stats["entries"] == 1
    assert stats["bytes"] > 0
    assert stats["max_entries"] == 4
    assert stats["max_bytes"] == 10**9
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["evictions"] == 0
