"""Edge-case battery: small behaviours not covered by the feature suites."""

import numpy as np
import pytest

from repro.parallel.comm import VirtualComm
from repro.partition.interface import SubdomainMap
from repro.solvers.givens import GivensLSQ
from repro.solvers.result import SolveResult
from repro.sparse.csr import CSRMatrix
from repro.spectrum.intervals import SpectrumIntervals


def test_solve_result_empty_history_nan():
    res = SolveResult(np.zeros(1), False, 0, 0, residual_history=[])
    assert np.isnan(res.final_residual)


def test_solve_result_repr_contains_state():
    res = SolveResult(np.zeros(1), True, 5, 1, [1.0, 1e-7])
    text = repr(res)
    assert "converged=True" in text and "iterations=5" in text


def test_intervals_iterable():
    th = SpectrumIntervals([(1.0, 2.0), (3.0, 4.0)])
    assert list(th) == [(1.0, 2.0), (3.0, 4.0)]


def test_givens_residual_norm_before_columns():
    lsq = GivensLSQ(3, 2.5)
    assert lsq.residual_norm == pytest.approx(2.5)


def test_csr_repr():
    a = CSRMatrix.eye(3)
    assert "nnz=3" in repr(a)


def test_csr_is_symmetric_explicit_zero_pattern():
    """Pattern asymmetry with value symmetry: still symmetric."""
    dense = np.array([[1.0, 0.0], [0.0, 2.0]])
    a = CSRMatrix((2, 2), [0, 2, 3], [0, 1, 1], [1.0, 0.0, 2.0])
    assert a.is_symmetric()
    assert np.allclose(a.toarray(), dense)


def test_add_flops_all():
    submap = SubdomainMap(
        4, 2, [np.array([0, 1]), np.array([2, 3])],
        np.ones(4, dtype=np.int64), [dict(), dict()],
    )
    comm = VirtualComm(submap)
    comm.add_flops_all([5, 7])
    assert comm.stats.ranks[0].flops == 5
    assert comm.stats.ranks[1].flops == 7


def test_mesh_element_coords():
    from repro.fem.mesh import structured_quad_mesh

    mesh = structured_quad_mesh(2, 1, lx=2.0)
    c = mesh.element_coords(1)
    assert c.shape == (4, 2)
    assert c[:, 0].min() == 1.0


def test_subdomain_map_neighbors_empty():
    submap = SubdomainMap(
        4, 2, [np.array([0, 1]), np.array([2, 3])],
        np.ones(4, dtype=np.int64), [dict(), dict()],
    )
    assert submap.neighbors(0) == []
    assert submap.exchange_words(0) == 0
    assert len(submap.interface_dofs()) == 0


def test_subdomain_map_restrict_validates_length():
    submap = SubdomainMap(
        4, 2, [np.array([0, 1]), np.array([2, 3])],
        np.ones(4, dtype=np.int64), [dict(), dict()],
    )
    with pytest.raises(ValueError):
        submap.restrict(np.zeros(3))


def test_machine_model_frozen():
    from repro.parallel.machine import SGI_ORIGIN

    with pytest.raises(Exception):
        SGI_ORIGIN.latency = 0.0


def test_material_default_steel_constant():
    from repro.fem.material import STEEL

    assert STEEL.E == pytest.approx(200e9)
    assert STEEL.plane_stress


def test_scaled_system_roundtrip_guess():
    from repro.fem.cantilever import cantilever_problem
    from repro.precond.scaling import scale_system

    p = cantilever_problem(nx=3, ny=2)
    ss = scale_system(p.stiffness, p.load)
    with pytest.raises(ValueError):
        ss.unscale_solution(np.zeros(3))
    with pytest.raises(ValueError):
        ss.scale_initial_guess(np.zeros(3))


def test_partition_metrics_dataclass_frozen():
    from repro.partition.metrics import PartitionMetrics

    m = PartitionMetrics(2, 1.0, 0.1, 10, 1, 1.0)
    with pytest.raises(Exception):
        m.n_parts = 3


def test_dist_vector_rejects_bad_kind():
    from repro.core.distributed import DistVector

    submap = SubdomainMap(
        4, 2, [np.array([0, 1]), np.array([2, 3])],
        np.ones(4, dtype=np.int64), [dict(), dict()],
    )
    comm = VirtualComm(submap)
    with pytest.raises(ValueError, match="kind"):
        DistVector([np.zeros(2), np.zeros(2)], "sideways", comm)


def test_dist_vector_rejects_non_distvector_operand():
    from repro.core.distributed import DistVector

    submap = SubdomainMap(
        4, 2, [np.array([0, 1]), np.array([2, 3])],
        np.ones(4, dtype=np.int64), [dict(), dict()],
    )
    comm = VirtualComm(submap)
    v = DistVector([np.zeros(2), np.zeros(2)], "local", comm)
    with pytest.raises(TypeError):
        _ = v + np.zeros(2)


def test_bsr_repr_and_empty():
    from repro.sparse.bsr import BSRMatrix

    a = CSRMatrix((4, 4), np.zeros(5, dtype=np.int64), [], [])
    bsr = BSRMatrix.from_csr(a, 2)
    assert "blocks=0" in repr(bsr)
    assert np.allclose(bsr.matvec(np.ones(4)), 0.0)


def test_newmark_alpha_matches_a0():
    from repro.dynamics.newmark import NewmarkIntegrator

    k = CSRMatrix.eye(2)
    m = CSRMatrix.eye(2)
    nm = NewmarkIntegrator(k, m, dt=0.5)
    assert nm.alpha == nm.a0 == pytest.approx(1 / (0.25 * 0.25))


def test_heat_problem_neqn_property():
    from repro.fem.poisson import heat_problem

    p = heat_problem(nx=4, ny=4)
    assert p.n_eqn == 9  # 3x3 interior nodes


def test_cantilever_problem_neqn_property(tiny_problem):
    assert tiny_problem.n_eqn == tiny_problem.bc.n_free
