"""Randomized end-to-end property: for arbitrary small meshes, partition
counts, degrees and variants, the distributed solve equals the direct one."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.fem.cantilever import cantilever_problem
from repro.partition.element_partition import ElementPartition
from repro.precond.gls import GLSPolynomial


@settings(max_examples=12, deadline=None)
@given(
    nx=st.integers(2, 6),
    ny=st.integers(1, 4),
    n_parts=st.integers(1, 4),
    degree=st.integers(0, 8),
    variant=st.sampled_from(["basic", "enhanced"]),
    orth=st.sampled_from(["cgs", "mgs"]),
)
def test_edd_equals_direct_for_any_configuration(
    nx, ny, n_parts, degree, variant, orth
):
    n_parts = min(n_parts, nx * ny)
    problem = cantilever_problem(nx=nx, ny=ny)
    part = ElementPartition.build(problem.mesh, n_parts)
    system = build_edd_system(
        problem.mesh,
        problem.material,
        problem.bc,
        part,
        problem.bc.expand(problem.load),
    )
    pre = GLSPolynomial.unit_interval(degree, eps=1e-6) if degree else None
    res = edd_fgmres(
        system,
        pre,
        tol=1e-9,
        restart=60,
        max_iter=5000,
        variant=variant,
        orthogonalization=orth,
    )
    assert res.converged
    u_ref = np.linalg.solve(problem.stiffness.toarray(), problem.load)
    err = np.linalg.norm(res.x - u_ref) / np.linalg.norm(u_ref)
    assert err < 1e-6
