"""Fault injection: corrupting the communication layer must visibly break
the solve — evidence the correctness tests actually depend on the
exchanged data (no silent fallback to host-side state)."""

import numpy as np
import pytest

from repro.core.distributed import DistVector, build_edd_system
from repro.core.edd import edd_fgmres
from repro.fem.cantilever import cantilever_problem
from repro.parallel.comm import VirtualComm
from repro.partition.element_partition import ElementPartition
from repro.precond.gls import GLSPolynomial


class _CorruptingComm(VirtualComm):
    """Flips the sign of one interface word on rank 0 in every exchange."""

    def interface_assemble(self, parts):
        out = super().interface_assemble(parts)
        shared0 = self.submap.shared[0]
        if shared0:
            t = next(iter(shared0))
            idx = shared0[t][0]
            out[0][idx] = -out[0][idx]
        return out


class _DroppingComm(VirtualComm):
    """Silently drops all neighbour contributions (assembly returns the
    local values unassembled) — models a lost message."""

    def interface_assemble(self, parts):
        # Charge the traffic like the real collective, return stale data.
        super().interface_assemble(parts)
        return [p.copy() for p in parts]


@pytest.fixture
def system():
    p = cantilever_problem(nx=6, ny=3)
    part = ElementPartition.build(p.mesh, 2)
    return (
        build_edd_system(p.mesh, p.material, p.bc, part, p.bc.expand(p.load)),
        p,
    )


def _swap_comm(system, comm_cls):
    new = comm_cls(system.submap)
    system.comm = new
    # DistVector instances bind the comm at creation; the system's stored
    # rhs parts are plain arrays, so this swap is complete.
    return system


def test_corrupted_exchange_breaks_solution(system):
    sys_, p = system
    _swap_comm(sys_, _CorruptingComm)
    res = edd_fgmres(
        sys_,
        GLSPolynomial.unit_interval(5, eps=1e-6),
        tol=1e-8,
        max_iter=200,
    )
    u_ref = np.linalg.solve(p.stiffness.toarray(), p.load)
    wrong = not res.converged or not np.allclose(
        res.x, u_ref, rtol=1e-4, atol=1e-10
    )
    assert wrong, "a corrupted interface exchange went undetected"


def test_dropped_messages_break_solution(system):
    sys_, p = system
    _swap_comm(sys_, _DroppingComm)
    res = edd_fgmres(
        sys_,
        GLSPolynomial.unit_interval(5, eps=1e-6),
        tol=1e-8,
        max_iter=200,
    )
    u_ref = np.linalg.solve(p.stiffness.toarray(), p.load)
    wrong = not res.converged or not np.allclose(
        res.x, u_ref, rtol=1e-4, atol=1e-10
    )
    assert wrong, "dropped interface messages went undetected"


def test_healthy_comm_control(system):
    """Control arm: the identical setup with the honest communicator
    solves correctly — so the failures above are caused by the faults."""
    sys_, p = system
    res = edd_fgmres(
        sys_, GLSPolynomial.unit_interval(5, eps=1e-6), tol=1e-8
    )
    u_ref = np.linalg.solve(p.stiffness.toarray(), p.load)
    assert res.converged
    assert np.allclose(res.x, u_ref, rtol=1e-4, atol=1e-10)