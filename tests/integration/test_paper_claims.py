"""End-to-end checks of the paper's headline claims (Section 6)."""

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.cantilever import cantilever_problem
from repro.parallel.machine import IBM_SP2, SGI_ORIGIN, speedup
from repro.precond.gls import GLSPolynomial
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.neumann import NeumannPolynomial
from repro.precond.scaling import scale_system
from repro.solvers.fgmres import fgmres


@pytest.fixture(scope="module")
def mesh2_scaled():
    p = cantilever_problem(2)
    return p, scale_system(p.stiffness, p.load)


def _iters(ss, precond):
    res = fgmres(ss.a.matvec, ss.b, precond, restart=25, tol=1e-6)
    assert res.converged
    return res.iterations


def test_gls7_beats_ilu0_beats_neumann20(mesh2_scaled):
    """The paper's sequential ordering: GLS(7) > ILU(0) > Neum(20)
    ('>' = converges faster, Figs. 11-12)."""
    _, ss = mesh2_scaled
    mv = ss.a.matvec
    g7 = GLSPolynomial.unit_interval(7, eps=1e-6)
    it_gls = _iters(ss, lambda v: g7.apply_linear(mv, v))
    it_ilu = _iters(ss, ILU0Preconditioner(ss.a).apply)
    n20 = NeumannPolynomial(20)
    it_neum = _iters(ss, lambda v: n20.apply_linear(mv, v))
    assert it_gls < it_ilu <= it_neum


def test_gls_degree_monotonicity(mesh2_scaled):
    """Figs. 13-14: GLS(20) > GLS(10) > GLS(7) > GLS(3) > GLS(1) in
    iteration count on small problems."""
    _, ss = mesh2_scaled
    mv = ss.a.matvec
    iters = []
    for m in (1, 3, 7, 10, 20):
        g = GLSPolynomial.unit_interval(m, eps=1e-6)
        iters.append(_iters(ss, lambda v: g.apply_linear(mv, v)))
    assert all(b < a for a, b in zip(iters, iters[1:]))


def test_speedup_grows_with_problem_size():
    """Figs. 15-17 / Table 3: bigger meshes scale better at fixed P."""
    speeds = []
    for mesh_id in (2, 4):
        p = cantilever_problem(mesh_id)
        seq = solve_cantilever(p, n_parts=1, options=SolverOptions(precond="gls(7)"))
        par = solve_cantilever(p, n_parts=8, options=SolverOptions(precond="gls(7)"))
        speeds.append(speedup(seq.stats, par.stats, SGI_ORIGIN))
    assert speeds[1] > speeds[0]


def test_speedup_grows_with_polynomial_degree():
    """Fig. 17(a): EDD-FGMRES-GLS(m) scales better for larger m."""
    p = cantilever_problem(3)
    speeds = []
    for spec in ("gls(3)", "gls(10)"):
        seq = solve_cantilever(p, n_parts=1, options=SolverOptions(precond=spec))
        par = solve_cantilever(p, n_parts=8, options=SolverOptions(precond=spec))
        speeds.append(speedup(seq.stats, par.stats, SGI_ORIGIN))
    assert speeds[1] > speeds[0]


def test_origin_beats_sp2():
    """Fig. 17(e): the shared-memory Origin outscales the SP2."""
    p = cantilever_problem(3)
    seq = solve_cantilever(p, n_parts=1, options=SolverOptions(precond="gls(7)"))
    par = solve_cantilever(p, n_parts=8, options=SolverOptions(precond="gls(7)"))
    assert speedup(seq.stats, par.stats, SGI_ORIGIN) > speedup(
        seq.stats, par.stats, IBM_SP2
    )


def test_enhanced_edd_cheaper_than_basic():
    """Algorithm 6 strictly reduces neighbour traffic vs Algorithm 5 at
    identical convergence."""
    p = cantilever_problem(2)
    basic = solve_cantilever(p, n_parts=4, options=SolverOptions(method="edd-basic", precond="gls(7)"))
    enh = solve_cantilever(p, n_parts=4, options=SolverOptions(method="edd-enhanced", precond="gls(7)"))
    assert basic.result.iterations == enh.result.iterations
    assert (
        enh.stats.total_nbr_messages < basic.stats.total_nbr_messages
    )
    assert np.allclose(basic.result.x, enh.result.x, rtol=1e-6, atol=1e-12)


def test_edd_scales_on_par_with_rdd():
    """Fig. 17(c)-(d): EDD and RDD scale comparably per iteration.  (EDD's
    advantage in the paper is the avoided setup — assembly, reordering,
    duplicated interface elements — which both our timed regions exclude;
    see EXPERIMENTS.md.  Steady-state speedups must agree within ~10%.)"""
    p = cantilever_problem(3)
    seq_e = solve_cantilever(p, n_parts=1, options=SolverOptions(method="edd-enhanced", precond="gls(7)"))
    par_e = solve_cantilever(p, n_parts=8, options=SolverOptions(method="edd-enhanced", precond="gls(7)"))
    seq_r = solve_cantilever(p, n_parts=1, options=SolverOptions(method="rdd", precond="gls(7)"))
    par_r = solve_cantilever(p, n_parts=8, options=SolverOptions(method="rdd", precond="gls(7)"))
    s_edd = speedup(seq_e.stats, par_e.stats, SGI_ORIGIN)
    s_rdd = speedup(seq_r.stats, par_r.stats, SGI_ORIGIN)
    assert s_edd >= 0.9 * s_rdd


def test_static_and_dynamic_both_converge():
    p = cantilever_problem(1)
    p_dyn = cantilever_problem(1, with_mass=True)
    s = solve_cantilever(p, n_parts=2, options=SolverOptions(precond="gls(7)"))
    d = solve_cantilever(
        p_dyn, n_parts=2,
        options=SolverOptions(precond="gls(7)", dynamic=True),
    )
    assert s.result.converged and d.result.converged
