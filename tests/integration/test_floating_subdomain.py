"""The paper's motivating failure case (Section 3.2.3): local ILU on a
floating subdomain is singular; polynomial preconditioning is immune."""

import numpy as np
import pytest

from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.fem.bc import clamp_edge_dofs
from repro.fem.material import Material
from repro.fem.mesh import structured_quad_mesh
from repro.partition.element_partition import ElementPartition
from repro.precond.base import SingularPreconditionerError
from repro.precond.gls import GLSPolynomial
from repro.precond.ilu import ilu0_factor

MAT = Material(E=100.0, nu=0.3)


@pytest.fixture(scope="module")
def floating_setup():
    """4x1 cantilever clamped at the left, split into left/right halves:
    the right subdomain has no Dirichlet DOF -> it floats."""
    mesh = structured_quad_mesh(4, 1)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition(mesh, np.array([0, 0, 1, 1]), 2)
    f = np.zeros(mesh.n_dofs)
    f[-2] = 1.0
    system = build_edd_system(mesh, MAT, bc, part, f)
    return mesh, bc, part, system, f


def test_right_subdomain_floats(floating_setup):
    """Its local matrix keeps the 3 rigid-body modes -> singular."""
    _, _, _, system, _ = floating_setup
    # subdomain 1 is the unclamped right half (pre-scaling singularity is
    # preserved by symmetric diagonal scaling)
    a1 = system.a_local[1].toarray()
    evals = np.linalg.eigvalsh(a1)
    assert np.sum(np.abs(evals) < 1e-10 * np.abs(evals).max()) >= 3


def test_local_ilu_breaks_down_single_element_subdomain():
    """With a one-element floating subdomain the local pattern is dense, so
    ILU(0) coincides with exact LU and must hit the singular pivot.  (On
    larger floating subdomains the dropped fill can keep pivots nonzero —
    the factorization then 'succeeds' but is meaningless, which is the
    'occasionally suffers' wording of Section 3.2.3.)"""
    mesh = structured_quad_mesh(2, 1)
    bc = clamp_edge_dofs(mesh, "left")
    part = ElementPartition(mesh, np.array([0, 1]), 2)
    f = np.zeros(mesh.n_dofs)
    system = build_edd_system(mesh, MAT, bc, part, f)
    with pytest.raises(SingularPreconditionerError):
        ilu0_factor(system.a_local[1])


def test_local_ilu_on_larger_floating_subdomain_is_unreliable(floating_setup):
    """Even when the incomplete factorization of the singular local matrix
    completes, applying it amplifies the rigid-body modes instead of
    approximating an inverse."""
    _, _, _, system, _ = floating_setup
    from repro.precond.ilu import ILU0Preconditioner

    try:
        ilu = ILU0Preconditioner(system.a_local[1])
    except SingularPreconditionerError:
        return  # breakdown is the expected paper behaviour; done
    a1 = system.a_local[1].toarray()
    v = np.ones(a1.shape[0])
    z = ilu.apply(v)
    # A singular matrix has no inverse; the 'preconditioned' residual
    # cannot be uniformly small.
    assert np.linalg.norm(v - a1 @ z) > 1e-3 * np.linalg.norm(v)


def test_left_subdomain_is_fine(floating_setup):
    """The clamped half factors without trouble — the failure is really
    about missing Dirichlet support, not ILU itself."""
    _, _, _, system, _ = floating_setup
    lu = ilu0_factor(system.a_local[0])
    assert lu.nnz == system.a_local[0].nnz


def test_polynomial_preconditioner_unaffected(floating_setup):
    """GLS never touches local matrices alone — the solve converges to the
    true solution despite the floating subdomain."""
    mesh, bc, part, system, f = floating_setup
    res = edd_fgmres(
        system, GLSPolynomial.unit_interval(7, eps=1e-6), tol=1e-10
    )
    assert res.converged
    # reference from the assembled reduced system
    from repro.fem.assembly import assemble_matrix
    from repro.fem.bc import apply_dirichlet

    k = assemble_matrix(mesh, MAT)
    k_red, f_red = apply_dirichlet(k, f, bc)
    u_ref = np.linalg.solve(k_red.toarray(), f_red)
    assert np.allclose(res.x, u_ref, rtol=1e-6, atol=1e-12)
