"""Cross-product smoke matrix: every (method x preconditioner x rank count)
combination solves the same problem and agrees with the direct solution.

The individual feature tests exercise each axis in isolation; this matrix
guards the combinations (e.g. basic-variant EDD with a Neumann polynomial
on 3 ranks) that would otherwise only meet in user code.
"""

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.cantilever import cantilever_problem


@pytest.fixture(scope="module")
def problem():
    return cantilever_problem(nx=6, ny=3)


@pytest.fixture(scope="module")
def u_ref(problem):
    return np.linalg.solve(problem.stiffness.toarray(), problem.load)


@pytest.mark.parametrize("method", ["edd-enhanced", "edd-basic", "rdd"])
@pytest.mark.parametrize("precond", [None, "gls(3)", "gls(7)", "neumann(10)"])
@pytest.mark.parametrize("n_parts", [1, 3, 4])
def test_combination_solves_correctly(problem, u_ref, method, precond, n_parts):
    s = solve_cantilever(problem, n_parts=n_parts, options=SolverOptions(method=method, precond=precond, tol=1e-8, restart=40))
    assert s.result.converged, (method, precond, n_parts)
    err = np.linalg.norm(s.result.x - u_ref) / np.linalg.norm(u_ref)
    assert err < 1e-6, (method, precond, n_parts)


@pytest.mark.parametrize("method", ["edd-enhanced", "rdd"])
@pytest.mark.parametrize("partition_method", ["rcb", "greedy"])
def test_partitioner_combinations(problem, u_ref, method, partition_method):
    s = solve_cantilever(problem, n_parts=4, options=SolverOptions(method=method, precond="gls(5)", partition_method=partition_method, tol=1e-8))
    assert s.result.converged
    err = np.linalg.norm(s.result.x - u_ref) / np.linalg.norm(u_ref)
    assert err < 1e-6


@pytest.mark.parametrize("method", ["edd-enhanced", "edd-basic", "rdd"])
def test_dynamic_combinations(method):
    p = cantilever_problem(nx=5, ny=2, with_mass=True)
    s = solve_cantilever(p, n_parts=3, options=SolverOptions(method=method, precond="gls(5)", dynamic=True, mass_shift=(3.0, 1.0), tol=1e-8))
    assert s.result.converged
    k_eff = 1.0 * p.stiffness.toarray() + 3.0 * p.mass.toarray()
    u_ref = np.linalg.solve(k_eff, p.load)
    err = np.linalg.norm(s.result.x - u_ref) / np.linalg.norm(u_ref)
    assert err < 1e-6
