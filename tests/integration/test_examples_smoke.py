"""Smoke-run the fastest examples as subprocesses.

The examples are the documentation users actually execute; a refactor
that breaks their imports or output must fail the suite.  Only the two
fastest examples run here (the rest exceed unit-test time budgets and are
exercised piecewise by the feature tests).
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent.parent / "examples"


def _run(name: str, timeout: int = 120) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "converged=True" in out
    assert "true relative residual" in out


def test_heat_conduction_runs():
    out = _run("heat_conduction.py")
    assert "Poisson benchmark" in out
    assert "converged=True" in out


def test_all_examples_importable():
    """Every example at least compiles (catches stale imports without
    paying the full runtime)."""
    import py_compile

    for path in sorted(EXAMPLES.glob("*.py")):
        py_compile.compile(str(path), doraise=True)
