"""T3-element cantilever through the full pipeline, plus the
condition-number utilities."""

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.cantilever import cantilever_problem
from repro.precond.gls import GLSPolynomial
from repro.precond.scaling import scale_system
from repro.spectrum.lanczos import estimate_condition_number


def test_t3_cantilever_builds():
    p = cantilever_problem(nx=6, ny=3, element_type="t3")
    assert p.mesh.element_type == "t3"
    assert p.mesh.n_elements == 36  # two triangles per cell
    evals = np.linalg.eigvalsh(p.stiffness.toarray())
    assert evals.min() > 0


def test_t3_table2_rejected():
    with pytest.raises(ValueError, match="Table 2"):
        cantilever_problem(2, element_type="t3")


def test_unknown_element_type():
    with pytest.raises(ValueError):
        cantilever_problem(nx=2, ny=2, element_type="q8")


def test_t3_edd_solve_matches_direct():
    p = cantilever_problem(nx=8, ny=4, element_type="t3")
    s = solve_cantilever(p, n_parts=4, options=SolverOptions(precond="gls(7)", tol=1e-8))
    assert s.result.converged
    u_ref = np.linalg.solve(p.stiffness.toarray(), p.load)
    err = np.linalg.norm(s.result.x - u_ref) / np.linalg.norm(u_ref)
    assert err < 1e-6


def test_t3_stiffer_than_q4():
    """Linear triangles are stiffer than bilinear quads on the same grid —
    a classical FEM fact; tip displacement is smaller."""
    q4 = cantilever_problem(nx=8, ny=4, element_type="q4", traction=(0.0, 1.0))
    t3 = cantilever_problem(nx=8, ny=4, element_type="t3", traction=(0.0, 1.0))
    u_q4 = np.linalg.solve(q4.stiffness.toarray(), q4.load)
    u_t3 = np.linalg.solve(t3.stiffness.toarray(), t3.load)
    assert np.abs(u_t3).max() < np.abs(u_q4).max()


def test_condition_estimate_close_to_truth():
    p = cantilever_problem(nx=6, ny=3)
    ss = scale_system(p.stiffness, p.load)
    evals = np.linalg.eigvalsh(ss.a.toarray())
    true_kappa = evals.max() / evals.min()
    est = estimate_condition_number(ss.a.matvec, ss.a.shape[0], n_steps=60)
    assert est == pytest.approx(true_kappa, rel=0.05)
    assert est <= true_kappa * (1 + 1e-8)  # under-estimate by construction


def test_condition_estimate_rejects_indefinite():
    d = np.array([-1.0, 2.0, 3.0])
    with pytest.raises(ValueError, match="positive definite"):
        estimate_condition_number(lambda v: d * v, 3, n_steps=3)


def test_gls_cuts_condition_number():
    """The whole point, measured: kappa(P(A) A) << kappa(A)."""
    p = cantilever_problem(2)
    ss = scale_system(p.stiffness, p.load)
    n = ss.a.shape[0]
    kappa_a = estimate_condition_number(ss.a.matvec, n)
    g = GLSPolynomial.unit_interval(7, eps=1e-6)

    def pa_matvec(v):
        return g.apply_linear(ss.a.matvec, ss.a.matvec(v))

    kappa_pa = estimate_condition_number(pa_matvec, n)
    assert kappa_pa < kappa_a / 5
