"""Cross-module integration: transient elastodynamics with sequential FGMRES
vs distributed EDD re-solve — identical physics, different substrates."""

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.dynamics.newmark import NewmarkIntegrator
from repro.dynamics.transient import run_transient
from repro.fem.cantilever import cantilever_problem
from repro.precond.gls import GLSPolynomial


@pytest.fixture(scope="module")
def problem():
    return cantilever_problem(nx=5, ny=2, with_mass=True)


def test_one_newmark_step_matches_edd_solve(problem):
    """Running one Newmark step sequentially equals the parallel EDD solve
    of the same effective system (alpha = a0, beta = 1)."""
    dt = 0.1
    nm = NewmarkIntegrator(problem.stiffness, problem.mass, dt=dt)
    g = GLSPolynomial.unit_interval(7, eps=1e-6)
    seq = run_transient(
        nm,
        lambda t: problem.load,
        1,
        precond_factory=lambda mv: (lambda v: g.apply_linear(mv, v)),
        tol=1e-10,
    )
    # same step via the distributed driver: the effective load for step 1
    # from rest is f + M*(a0*0 + ...) with nonzero initial acceleration
    a0_vec = nm.initial_acceleration(
        np.zeros_like(problem.load), np.zeros_like(problem.load), problem.load
    )
    f_hat = problem.load + problem.mass.matvec(nm.a2 * a0_vec)
    import dataclasses

    p2 = dataclasses.replace(problem, load=f_hat)
    par = solve_cantilever(p2, n_parts=3, options=SolverOptions(dynamic=True, mass_shift=(nm.a0, 1.0), precond="gls(7)", tol=1e-10))
    assert par.result.converged
    assert np.allclose(
        par.result.x, seq.displacements[0], rtol=1e-5, atol=1e-10
    )


def test_transient_stable_many_steps(problem):
    nm = NewmarkIntegrator(problem.stiffness, problem.mass, dt=0.05)
    res = run_transient(nm, lambda t: problem.load * np.sin(3 * t), 40)
    assert np.isfinite(res.displacements).all()
    # bounded response to bounded forcing (no blow-up)
    assert np.abs(res.displacements).max() < 1e3
