"""The ``repro serve`` JSON-lines loop: in-process and as a subprocess.

The wire protocol is line-oriented JSON over ordinary text streams, so
the full loop is testable with ``io.StringIO`` — plus one true
end-to-end check through ``python -m repro serve`` pipes.
"""

import asyncio
import io
import json
import os
import subprocess
import sys

from repro.service import ServiceConfig, SolveRequest, SolveResponse, serve_jsonl


def _run_lines(*lines, config=None):
    """Drive serve_jsonl over StringIO streams; returns parsed output."""
    inp = io.StringIO("".join(line + "\n" for line in lines))
    out = io.StringIO()
    served = asyncio.run(serve_jsonl(inp, out, config=config))
    return served, [json.loads(ln) for ln in out.getvalue().splitlines()]


def test_solve_stats_shutdown_roundtrip():
    served, msgs = _run_lines(
        json.dumps({"mesh": 1, "n_parts": 2, "request_id": "r1"}),
        json.dumps({"op": "stats"}),
        json.dumps({"op": "shutdown"}),
    )
    assert served == 1
    by_kind = {}
    for m in msgs:
        by_kind.setdefault(m.get("op", "response"), []).append(m)
    resp = SolveResponse.from_json(json.dumps(by_kind["response"][0]))
    assert resp.request_id == "r1"
    assert resp.status == "ok"
    assert resp.converged
    assert by_kind["stats"][0]["stats"]["counters"]["submitted"] == 1
    assert by_kind["shutdown"][0] == {"op": "shutdown", "ok": True, "served": 1}


def test_eof_drains_like_shutdown():
    served, msgs = _run_lines(
        json.dumps({"mesh": 1, "n_parts": 2, "request_id": "r1"}),
    )
    assert served == 1
    assert msgs[0]["status"] == "ok"
    assert msgs[-1] == {"op": "shutdown", "ok": True, "served": 1}


def test_malformed_lines_answered_not_fatal():
    served, msgs = _run_lines(
        "this is not json",
        json.dumps([1, 2, 3]),  # JSON, but not an object
        json.dumps({"op": "frobnicate"}),
        json.dumps({"mesh": 1, "preconditioner": "gls(7)"}),  # bad field
        json.dumps({"mesh": 1, "n_parts": 2, "request_id": "ok1"}),
        json.dumps({"op": "shutdown"}),
    )
    assert served == 1  # only the valid request counted
    errors = [m for m in msgs if m.get("op") == "error"]
    assert len(errors) == 4
    assert any("unknown op" in e["error"] for e in errors)
    assert any("preconditioner" in e["error"] for e in errors)
    ok = [m for m in msgs if m.get("request_id") == "ok1"]
    assert ok and ok[0]["status"] == "ok"


def test_explicit_solve_op_accepted():
    served, msgs = _run_lines(
        json.dumps({"op": "solve", "mesh": 1, "n_parts": 2, "request_id": "s"}),
        json.dumps({"op": "shutdown"}),
    )
    assert served == 1
    assert msgs[0]["request_id"] == "s"


def test_request_roundtrips_through_wire_format():
    req = SolveRequest(mesh=1, n_parts=2, tenant="acme", request_id="w1")
    served, msgs = _run_lines(req.to_json(), json.dumps({"op": "shutdown"}))
    assert served == 1
    assert msgs[0]["tenant"] == "acme"
    assert msgs[0]["schema_version"] == 1


def test_injected_service_is_not_stopped():
    """A caller-owned service keeps running across serve loops."""
    from repro.service import SolverService

    async def scenario():
        svc = SolverService(ServiceConfig(batch_window=0.01))
        await svc.start()
        inp = io.StringIO(json.dumps({"mesh": 1, "n_parts": 2}) + "\n")
        out = io.StringIO()
        served = await serve_jsonl(inp, out, service=svc)
        still_accepting = svc.stats()["accepting"]
        await svc.stop()
        return served, still_accepting, out.getvalue()

    served, still_accepting, output = asyncio.run(scenario())
    assert served == 1
    assert still_accepting is True  # loop exit didn't stop the service
    assert '"op": "shutdown"' not in output  # no lifecycle line: not owner


def test_repro_serve_subprocess_end_to_end():
    """The real thing: requests piped through ``python -m repro serve``."""
    lines = "\n".join([
        json.dumps({"mesh": 1, "n_parts": 2, "request_id": "e2e-1"}),
        json.dumps({"mesh": 1, "n_parts": 2, "request_id": "e2e-2",
                    "rhs_scale": 2.0}),
        json.dumps({"op": "stats"}),
        json.dumps({"op": "shutdown"}),
    ]) + "\n"
    env = dict(os.environ)
    root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = os.path.join(root, "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--window", "0.01"],
        input=lines, capture_output=True, text=True, env=env, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    msgs = [json.loads(ln) for ln in proc.stdout.splitlines()]
    responses = {m["request_id"]: m for m in msgs if "request_id" in m
                 and m.get("request_id")}
    assert responses["e2e-1"]["status"] == "ok"
    assert responses["e2e-2"]["status"] == "ok"
    # The stats op answers immediately (a point-in-time snapshot — the
    # solves may still be batching), so assert shape, not counts.
    stats = [m for m in msgs if m.get("op") == "stats"][0]["stats"]
    assert stats["schema_version"] == 1
    assert "counters" in stats and "session" in stats
    assert msgs[-1]["op"] == "shutdown" and msgs[-1]["ok"] is True
