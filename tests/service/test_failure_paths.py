"""Service failure paths: rejection, timeout, cancellation, drain, errors.

Every admitted request must resolve to a terminal response — the service
never wedges, never drops a request on the floor, and never lets one
tenant's bad request poison a coalescing partner's solve.
"""

import asyncio

import pytest

from repro.service import ServiceConfig, SolveRequest, SolverService

N_PARTS = 2


def run(coro):
    return asyncio.run(coro)


def test_queue_full_rejects_with_retry_after():
    async def scenario():
        config = ServiceConfig(
            queue_limit=1, batch_window=0.2, retry_after=0.123
        )
        async with SolverService(config) as svc:
            first = asyncio.ensure_future(
                svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
            )
            await asyncio.sleep(0.02)  # first now occupies the queue
            second = await svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
            return await first, second, svc.stats()

    first, second, stats = run(scenario())
    assert first.status == "ok"
    assert second.status == "rejected"
    assert second.retry_after == 0.123
    assert "queue full" in second.error
    assert second.result is None
    assert stats["counters"]["rejected"] == 1


def test_timeout_in_queue_leaves_batch_partners_unharmed():
    async def scenario():
        config = ServiceConfig(batch_window=0.3)
        async with SolverService(config) as svc:
            doomed = asyncio.ensure_future(svc.submit(SolveRequest(
                mesh=1, n_parts=N_PARTS, timeout=0.02,
            )))
            partner = asyncio.ensure_future(
                svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
            )
            return await doomed, await partner, svc.stats()

    doomed, partner, stats = run(scenario())
    assert doomed.status == "timeout"
    assert "deadline" in doomed.error
    assert doomed.queue_seconds > 0.0
    assert partner.status == "ok"
    assert partner.coalesced == 1  # the timed-out entry left the batch
    assert stats["counters"]["timeouts"] == 1
    assert stats["counters"]["completed"] == 1


def test_cancel_mid_queue_withdraws_from_batch():
    async def scenario():
        config = ServiceConfig(batch_window=0.3)
        async with SolverService(config) as svc:
            cancelled = asyncio.ensure_future(
                svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
            )
            partner = asyncio.ensure_future(
                svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
            )
            await asyncio.sleep(0.02)
            cancelled.cancel()
            with pytest.raises(asyncio.CancelledError):
                await cancelled
            return await partner, svc.stats()

    partner, stats = run(scenario())
    assert partner.status == "ok"
    assert partner.coalesced == 1  # cancelled entry never reached the solve
    assert stats["counters"]["cancelled"] == 1
    assert stats["counters"]["coalesced_requests"] == 1


def test_drain_on_shutdown_answers_every_admitted_request():
    async def scenario():
        config = ServiceConfig(batch_window=10.0)  # would wait "forever"
        svc = SolverService(config)
        await svc.start()
        pending = [
            asyncio.ensure_future(
                svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
            )
            for _ in range(3)
        ]
        await asyncio.sleep(0.05)
        assert not any(t.done() for t in pending)  # stuck in the window
        await svc.stop()  # drain must flush the open batch immediately
        resps = await asyncio.gather(*pending)
        late = await svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
        return resps, late, svc.stats()

    resps, late, stats = run(scenario())
    assert [r.status for r in resps] == ["ok"] * 3
    assert all(r.coalesced == 3 for r in resps)
    assert late.status == "rejected"
    assert "not accepting" in late.error
    assert stats["accepting"] is False


def test_bad_rhs_errors_alone_partner_still_solves():
    async def scenario():
        config = ServiceConfig(batch_window=0.1)
        async with SolverService(config) as svc:
            bad, good = await asyncio.gather(
                svc.submit(SolveRequest(
                    mesh=1, n_parts=N_PARTS, rhs=[1.0, 2.0, 3.0],
                )),
                svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS)),
            )
            return bad, good, svc.stats()

    bad, good, stats = run(scenario())
    assert bad.status == "error"
    assert "free DOFs" in bad.error
    assert good.status == "ok"  # tenant isolation: partner unharmed
    assert good.coalesced == 1
    assert stats["counters"]["errors"] == 1
    assert stats["counters"]["completed"] == 1


def test_unknown_mesh_resolves_to_error_response():
    async def scenario():
        async with SolverService() as svc:
            resp = await svc.submit(SolveRequest(mesh=999, n_parts=N_PARTS))
            return resp, svc.stats()

    resp, stats = run(scenario())
    assert resp.status == "error"
    assert resp.error  # names the exception
    assert stats["counters"]["errors"] == 1


def test_default_timeout_applies_when_request_has_none():
    async def scenario():
        config = ServiceConfig(batch_window=0.5, default_timeout=0.02)
        async with SolverService(config) as svc:
            return await svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))

    resp = run(scenario())
    assert resp.status == "timeout"


def test_nonfinite_rhs_fails_alone_three_tenant_batch(mesh1_problem):
    """NaN/Inf right-hand sides can never verify; admitting one into a
    coalesced block would poison every partner through the shared Krylov
    basis.  The poisoned tenant gets a terminal ``failed`` response (not
    ``error`` — the input is well-formed, just unsolvable) and its two
    coalescing partners solve normally."""
    n = mesh1_problem.load.shape[0]
    poisoned = [0.0] * n
    poisoned[n // 2] = float("nan")
    poisoned[-1] = float("inf")

    async def scenario():
        config = ServiceConfig(batch_window=0.1)
        async with SolverService(config) as svc:
            a, b, c = await asyncio.gather(
                svc.submit(SolveRequest(
                    mesh=1, n_parts=N_PARTS, tenant="alice",
                )),
                svc.submit(SolveRequest(
                    mesh=1, n_parts=N_PARTS, tenant="mallory", rhs=poisoned,
                )),
                svc.submit(SolveRequest(
                    mesh=1, n_parts=N_PARTS, tenant="carol", rhs_scale=2.0,
                )),
            )
            return a, b, c, svc.stats()

    a, b, c, stats = run(scenario())
    assert b.status == "failed"
    assert not b.converged and b.result is None
    assert "non-finite" in b.error and "2" in b.error  # counts both bad entries
    for partner in (a, c):
        assert partner.status == "ok"  # tenant isolation: solve unharmed
        assert partner.coalesced == 2  # the poisoned column left the batch
    assert stats["counters"]["failed"] == 1
    assert stats["counters"]["completed"] == 2
    assert stats["tenants"]["mallory"]["failed"] == 1
    assert stats["tenants"]["mallory"]["completed"] == 0
    assert stats["tenants"]["alice"]["completed"] == 1
    assert stats["tenants"]["carol"]["completed"] == 1
