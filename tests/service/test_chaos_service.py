"""The no-silent-wrong-answer invariant, end-to-end through the service.

Same contract as tests/chaos/test_chaos_invariant.py, but the fault plan
now fires under coalesced batches, worker threads and the session cache:
every response must either claim convergence *and* pass an independent
residual check against the serially assembled operator (computed here
from the response's own solution vector), or carry structured
diagnostics naming a known anomaly.  Nothing in between.
"""

import asyncio

import numpy as np
import pytest

from repro.core.driver import _VERIFY_SLACK
from repro.core.options import SolverOptions
from repro.parallel.chaos import FaultPlan, use_fault_plan
from repro.service import ServiceConfig, SolveRequest, SolverService
from repro.solvers.diagnostics import EVENT_KINDS

from tests.chaos.test_chaos_invariant import PLANS

pytestmark = pytest.mark.chaos

TOL = 1e-8
METHODS = ["edd-enhanced", "rdd"]

#: The reduced matrix the CI service job runs (select with ``-k smoke``).
SMOKE_PLANS = ("assemble-nan", "halo-drop", "allreduce-flip")


def _assert_response_invariant(resp, problem, rhs_scale, replay):
    """One response: verified-ok, diagnosed-failure, or loud error."""
    assert resp.status in ("ok", "failed", "error"), replay
    if resp.status == "error":
        assert resp.error, replay  # loud, never silent
        return
    if resp.status == "ok":
        b = rhs_scale * problem.load
        x = np.asarray(resp.result["x"])
        rel = float(
            np.linalg.norm(b - problem.stiffness @ x) / np.linalg.norm(b)
        )
        assert rel <= TOL * _VERIFY_SLACK, (
            f"silent wrong answer: service claims ok with true residual "
            f"{rel:.3e}; {replay}"
        )
    else:
        assert resp.diagnostics, (
            f"failed response without diagnostics; {replay}"
        )
        for event in resp.diagnostics:
            assert event["kind"] in EVENT_KINDS, replay


def _run_service_under_plan(plan_name, method, inner="virtual"):
    """Three coalescing requests against a chaos-backed solve."""
    plan = FaultPlan(rules=(PLANS[plan_name],), seed=20060815)
    options = SolverOptions(
        method=method, precond="gls(7)", tol=TOL, comm_backend="chaos"
    )

    async def scenario():
        config = ServiceConfig(batch_window=0.05, default_timeout=60.0)
        async with SolverService(config) as svc:
            reqs = [
                SolveRequest(
                    mesh=1, n_parts=2, options=options,
                    rhs_scale=1.0 + 0.5 * i, include_x=True,
                )
                for i in range(3)
            ]
            return await asyncio.gather(*(svc.submit(r) for r in reqs))

    with use_fault_plan(plan, inner=inner):
        resps = asyncio.run(scenario())
    return plan, resps


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("plan_name", sorted(PLANS))
def test_service_no_silent_wrong_answer(mesh1_problem, plan_name, method):
    """The full fault matrix (14 plans x EDD/RDD) through the service."""
    plan, resps = _run_service_under_plan(plan_name, method)
    replay = (
        f"replay with REPRO_CHAOS_PLAN='{plan.to_json()}' "
        f"({method}, gls(7), via SolverService)"
    )
    assert len(resps) == 3
    for i, resp in enumerate(resps):
        _assert_response_invariant(
            resp, mesh1_problem, 1.0 + 0.5 * i, f"column {i}: {replay}"
        )


@pytest.mark.parametrize("inner", ["virtual", "process"])
@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("plan_name", SMOKE_PLANS)
def test_service_no_silent_wrong_answer_smoke(
    mesh1_problem, plan_name, method, inner
):
    """The reduced sweep the CI service job runs — the ``process`` rows
    compose the chaos proxy over the process backend, the
    ``REPRO_CHAOS_INNER=process`` deployment shape."""
    plan, resps = _run_service_under_plan(plan_name, method, inner=inner)
    replay = (
        f"plan={plan.to_json()} ({method}, inner={inner}, via SolverService)"
    )
    for i, resp in enumerate(resps):
        _assert_response_invariant(
            resp, mesh1_problem, 1.0 + 0.5 * i, f"column {i}: {replay}"
        )


def test_chaos_failure_counted_not_raised(mesh1_problem):
    """A diagnosed non-convergence is a 'failed' *response* — the service
    loop survives and the tenant's accounting records the failure."""
    seen_failure = False
    for plan_name in sorted(PLANS):
        plan, resps = _run_service_under_plan(plan_name, "edd-enhanced")
        if any(r.status == "failed" for r in resps):
            seen_failure = True
            break
    # At least one plan in the matrix must actually trip the solver —
    # otherwise this sweep stopped testing the failure branch entirely.
    assert seen_failure, "no fault plan produced a diagnosed failure"
