"""SolverService: coalescing, accounting, cache integration, stats.

The headline contract is asserted from ``CommStats``: *k* concurrent
same-key requests coalesce into one block solve and cost the **message
count of one** solve — words scale with *k*, messages do not (the PR-4
block-Krylov payoff, now behind a service).
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core.options import SolverOptions
from repro.core.outcome import SCHEMA_VERSION
from repro.core.session import SolveSession
from repro.service import ServiceConfig, SolveRequest, SolverService

N_PARTS = 2


def run(coro):
    """The suite has no asyncio plugin; drive every scenario explicitly."""
    return asyncio.run(coro)


async def _solo_stats(mesh=1):
    """Reference counters for one uncoalesced solve of the hot key."""
    async with SolverService(ServiceConfig(coalesce=False)) as svc:
        resp = await svc.submit(SolveRequest(mesh=mesh, n_parts=N_PARTS))
    assert resp.status == "ok"
    return resp


def test_coalesced_batch_costs_the_messages_of_one_solve():
    async def scenario():
        solo = await _solo_stats()
        k = 4
        config = ServiceConfig(batch_window=0.05, max_batch=8)
        async with SolverService(config) as svc:
            reqs = [
                SolveRequest(mesh=1, n_parts=N_PARTS, rhs_scale=1.0 + 0.5 * i)
                for i in range(k)
            ]
            resps = await asyncio.gather(*(svc.submit(r) for r in reqs))
            stats = svc.stats()
        return solo, resps, stats

    solo, resps, stats = run(scenario())
    assert all(r.status == "ok" for r in resps)
    assert all(r.coalesced == len(resps) for r in resps)
    assert stats["counters"]["batches"] == 1
    shared = resps[0].stats
    # THE invariant: k coalesced requests, the message count of ONE.
    assert shared["total_nbr_messages"] == solo.stats["total_nbr_messages"]
    # Words do scale with k — coalescing saves latency, not bandwidth.
    assert shared["total_nbr_words"] == len(resps) * solo.stats["total_nbr_words"]
    # All partners rode the same batch: identical shared counters.
    assert all(r.stats == shared for r in resps)
    # Pure RHS scaling leaves the Krylov iteration count unchanged.
    assert all(r.iterations == solo.iterations for r in resps)


def test_coalesce_off_solves_every_request_alone():
    async def scenario():
        async with SolverService(ServiceConfig(coalesce=False)) as svc:
            resps = await asyncio.gather(*(
                svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
                for _ in range(3)
            ))
            return resps, svc.stats()

    resps, stats = run(scenario())
    assert all(r.coalesced == 1 for r in resps)
    assert stats["counters"]["batches"] == 3
    assert stats["mean_batch"] == 1.0


def test_max_batch_splits_oversized_windows():
    async def scenario():
        config = ServiceConfig(batch_window=0.05, max_batch=2)
        async with SolverService(config) as svc:
            resps = await asyncio.gather(*(
                svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
                for _ in range(4)
            ))
            return resps, svc.stats()

    resps, stats = run(scenario())
    assert all(r.status == "ok" for r in resps)
    assert all(r.coalesced <= 2 for r in resps)
    assert stats["counters"]["batches"] >= 2
    assert stats["max_batch_seen"] == 2


def test_different_keys_never_coalesce():
    async def scenario():
        config = ServiceConfig(batch_window=0.05)
        async with SolverService(config) as svc:
            a = svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
            b = svc.submit(SolveRequest(mesh=1, n_parts=4))  # different key
            c = svc.submit(SolveRequest(
                mesh=1, n_parts=N_PARTS,
                options=SolverOptions(precond="gls(3)"),  # different key
            ))
            return await asyncio.gather(a, b, c)

    resps = run(scenario())
    assert [r.coalesced for r in resps] == [1, 1, 1]
    assert all(r.status == "ok" for r in resps)


def test_session_cache_hit_across_batches():
    async def scenario():
        async with SolverService(ServiceConfig(batch_window=0.01)) as svc:
            first = await svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
            second = await svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
            return first, second, svc.stats()

    first, second, stats = run(scenario())
    assert first.setup_time > 0.0
    assert second.setup_time == 0.0  # prepared system reused
    assert stats["session"]["misses"] == 1
    assert stats["session"]["hits"] == 1


def test_injected_session_survives_service_stop():
    session = SolveSession(max_entries=4)

    async def scenario():
        async with SolverService(session=session) as svc:
            await svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))

    run(scenario())
    assert len(session) == 1  # not closed: caller owns it
    session.close()
    assert len(session) == 0


def test_per_tenant_accounting():
    async def scenario():
        config = ServiceConfig(batch_window=0.05)
        async with SolverService(config) as svc:
            reqs = [
                SolveRequest(mesh=1, n_parts=N_PARTS, tenant="alice"),
                SolveRequest(mesh=1, n_parts=N_PARTS, tenant="alice"),
                SolveRequest(mesh=1, n_parts=N_PARTS, tenant="bob"),
            ]
            resps = await asyncio.gather(*(svc.submit(r) for r in reqs))
            return resps, svc.stats()

    resps, stats = run(scenario())
    assert all(r.coalesced == 3 for r in resps)
    alice, bob = stats["tenants"]["alice"], stats["tenants"]["bob"]
    assert (alice["requests"], alice["rhs_solved"]) == (2, 2)
    assert (bob["requests"], bob["rhs_solved"]) == (1, 1)
    assert alice["completed"] == 2 and bob["completed"] == 1
    # The batch's words divide per column: each request's share equals
    # what a solo solve of the same system moves (words scale with k).
    solo_words = (
        resps[0].stats["total_nbr_words"] / 3
        + sum(r["reduction_words"] for r in resps[0].stats["per_rank"]) / 3
    )
    assert alice["comm_words"] == pytest.approx(2 * solo_words)
    assert bob["comm_words"] == pytest.approx(solo_words)
    assert alice["iterations"] == 2 * resps[0].iterations
    assert alice["busy_seconds"] > 0.0
    assert bob["busy_seconds"] == pytest.approx(alice["busy_seconds"] / 2)


def test_explicit_rhs_column_matches_direct_solve(mesh1_problem):
    rhs = (1.5 * mesh1_problem.load).tolist()

    async def scenario():
        async with SolverService() as svc:
            return await svc.submit(SolveRequest(
                mesh=1, n_parts=N_PARTS, rhs=rhs, include_x=True,
            ))

    resp = run(scenario())
    assert resp.status == "ok"
    x = np.asarray(resp.result["x"])
    u_ref = np.linalg.solve(
        mesh1_problem.stiffness.toarray(), np.asarray(rhs)
    )
    assert np.allclose(x, u_ref, rtol=1e-4, atol=1e-10)


def test_trace_opt_in():
    async def scenario():
        config = ServiceConfig(batch_window=0.05)
        async with SolverService(config) as svc:
            quiet, traced = await asyncio.gather(
                svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS)),
                svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS, trace=True)),
            )
            return quiet, traced

    quiet, traced = run(scenario())
    assert quiet.coalesced == traced.coalesced == 2  # same batch...
    assert quiet.trace is None  # ...but only the opt-in carries the trace
    assert traced.trace is not None
    assert traced.trace["schema"] == "repro-trace/1"
    assert traced.trace["meta"]["service_batch"] == 2


def test_stats_snapshot_shape_and_json():
    async def scenario():
        async with SolverService() as svc:
            await svc.submit(SolveRequest(mesh=1, n_parts=N_PARTS))
            return svc.stats()

    stats = run(scenario())
    assert stats["schema_version"] == SCHEMA_VERSION
    assert stats["accepting"] is True
    assert stats["pending"] == 0
    assert stats["counters"]["submitted"] == 1
    assert stats["mean_batch"] == 1.0
    assert set(stats["session"]) == {
        "entries", "bytes", "max_entries", "max_bytes",
        "hits", "misses", "evictions",
    }
    assert stats["config"]["coalesce"] is True
    json.dumps(stats)  # must be JSON-serializable as-is


def test_responses_match_unbatched_answers(mesh1_problem):
    """Coalescing must not change anyone's answer: each column matches
    the request's standalone solve to machine precision (the block
    kernels fuse reductions, so bitwise identity to the *solo* path is
    not the contract — FP-equivalence is)."""
    from repro.core.driver import solve_cantilever

    async def scenario():
        config = ServiceConfig(batch_window=0.05)
        async with SolverService(config) as svc:
            return await asyncio.gather(*(
                svc.submit(SolveRequest(
                    mesh=1, n_parts=N_PARTS, rhs_scale=s, include_x=True,
                ))
                for s in (1.0, 2.0, 3.0)
            ))

    resps = run(scenario())
    assert all(r.coalesced == 3 for r in resps)
    reference = solve_cantilever(mesh1_problem, N_PARTS, SolverOptions())
    for scale, resp in zip((1.0, 2.0, 3.0), resps):
        x = np.asarray(resp.result["x"])
        assert np.allclose(x, scale * reference.result.x,
                           rtol=1e-12, atol=1e-15)
