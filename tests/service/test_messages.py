"""SolveRequest/SolveResponse: the canonical wire contract.

Exact JSON round-trips, eager validation, unknown-key rejection, and the
single ``schema_version`` stamp shared with every other serialized
artifact in the repo.
"""

import json
import math

import pytest

from repro.core.options import SolverOptions
from repro.core.outcome import SCHEMA_VERSION
from repro.service import RESPONSE_STATUSES, SolveRequest, SolveResponse


# ----------------------------------------------------------------------
# SolveRequest
# ----------------------------------------------------------------------
def test_request_defaults_and_auto_id():
    a = SolveRequest(mesh=2)
    b = SolveRequest(mesh=2)
    assert a.n_parts == 4
    assert a.options == SolverOptions()
    assert a.tenant == "default"
    assert a.request_id and a.request_id != b.request_id


def test_request_json_roundtrip():
    req = SolveRequest(
        mesh=3,
        n_parts=8,
        options=SolverOptions(method="rdd", precond="neumann(20)", tol=1e-8),
        rhs=[1.0, 2.0, 3.0],
        rhs_scale=2.5,
        tenant="acme",
        request_id="r-42",
        timeout=1.5,
        trace=True,
        include_x=True,
    )
    text = req.to_json()
    payload = json.loads(text)
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["options"]["precond"] == "neumann(20)"
    assert SolveRequest.from_json(text) == req


@pytest.mark.parametrize(
    "bad",
    [
        {"mesh": "two"},
        {"mesh": True},
        {"mesh": 1, "n_parts": 0},
        {"mesh": 1, "timeout": 0.0},
        {"mesh": 1, "timeout": -1.0},
        {"mesh": 1, "options": {"precond": "gls(7)"}},  # dict, not options
    ],
)
def test_request_validation_rejects(bad):
    with pytest.raises(ValueError):
        SolveRequest(**bad)


def test_request_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="preconditioner"):
        SolveRequest.from_dict({"mesh": 1, "preconditioner": "gls(7)"})


def test_request_from_dict_parses_nested_options():
    req = SolveRequest.from_dict(
        {"mesh": 1, "options": SolverOptions(precond="gls(3)").to_dict()}
    )
    assert req.options == SolverOptions(precond="gls(3)")


def test_request_is_frozen():
    with pytest.raises(Exception):
        SolveRequest(mesh=1).mesh = 2


# ----------------------------------------------------------------------
# SolveResponse
# ----------------------------------------------------------------------
def test_response_json_roundtrip():
    resp = SolveResponse(
        request_id="r-1",
        tenant="acme",
        status="ok",
        result={"converged": True, "diagnostics": []},
        stats={"total_nbr_messages": 10},
        converged=True,
        iterations=7,
        true_residual=1.25e-8,
        coalesced=4,
        queue_seconds=0.01,
        solve_seconds=0.02,
        setup_time=0.0,
    )
    back = SolveResponse.from_json(resp.to_json())
    assert back == resp
    assert json.loads(resp.to_json())["schema_version"] == SCHEMA_VERSION


def test_response_nan_residual_is_json_safe():
    resp = SolveResponse(request_id="r", status="timeout", error="deadline")
    assert math.isnan(resp.true_residual)
    payload = json.loads(resp.to_json())  # strict JSON: no NaN literal
    assert payload["true_residual"] is None
    back = SolveResponse.from_json(resp.to_json())
    assert math.isnan(back.true_residual)
    assert back.status == "timeout"


def test_response_status_vocabulary_enforced():
    for status in RESPONSE_STATUSES:
        SolveResponse(request_id="r", status=status)
    with pytest.raises(ValueError, match="status"):
        SolveResponse(request_id="r", status="pending")


def test_response_diagnostics_fallback():
    assert SolveResponse(request_id="r", status="rejected").diagnostics == []
    resp = SolveResponse(
        request_id="r",
        status="failed",
        result={"converged": False, "diagnostics": [{"kind": "nan_detected"}]},
    )
    assert resp.diagnostics == [{"kind": "nan_detected"}]
