"""Preconditioned conjugate gradients."""

import numpy as np
import pytest

from repro.precond.gls import GLSPolynomial
from repro.precond.scaling import scale_system
from repro.solvers.cg import cg
from repro.sparse.csr import CSRMatrix


def test_solves_spd(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    res = cg(ss.a.matvec, ss.b, tol=1e-10)
    assert res.converged
    u_ref = np.linalg.solve(ss.a.toarray(), ss.b)
    assert np.allclose(res.x, u_ref, rtol=1e-6)


def test_exact_in_n_iterations():
    """CG terminates in at most n steps in exact arithmetic."""
    rng = np.random.default_rng(0)
    m = rng.standard_normal((8, 8))
    a_dense = m @ m.T + 8 * np.eye(8)
    a = CSRMatrix.from_dense(a_dense, tol=-1.0)
    b = rng.standard_normal(8)
    res = cg(a.matvec, b, tol=1e-12, max_iter=20)
    assert res.converged
    assert res.iterations <= 9


def test_polynomial_preconditioning_accelerates(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    plain = cg(ss.a.matvec, ss.b, tol=1e-8)
    g = GLSPolynomial.unit_interval(7, eps=1e-6)
    pre = cg(
        ss.a.matvec, ss.b, lambda v: g.apply_linear(ss.a.matvec, v), tol=1e-8
    )
    assert pre.converged
    assert pre.iterations < plain.iterations


def test_indefinite_matrix_breaks_down_honestly():
    a = CSRMatrix.from_dense(np.diag([1.0, -1.0]))
    res = cg(a.matvec, np.array([1.0, 1.0]), tol=1e-12)
    assert not res.converged


def test_zero_rhs():
    a = CSRMatrix.eye(3)
    res = cg(a.matvec, np.zeros(3))
    assert res.converged and res.iterations == 0


def test_history_tracks_true_residual(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    res = cg(ss.a.matvec, ss.b, tol=1e-8)
    hist = np.asarray(res.residual_history)
    assert hist[0] == 1.0
    assert hist[-1] <= 1e-8
