"""BiCGSTAB baseline."""

import numpy as np
import pytest

from repro.precond.gls import GLSPolynomial
from repro.precond.scaling import scale_system
from repro.solvers.bicgstab import bicgstab
from repro.sparse.csr import CSRMatrix


def test_solves_spd(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    res = bicgstab(ss.a.matvec, ss.b, tol=1e-10, max_iter=5000)
    assert res.converged
    u_ref = np.linalg.solve(ss.a.toarray(), ss.b)
    assert np.allclose(res.x, u_ref, rtol=1e-5, atol=1e-10)


def test_solves_unsymmetric():
    rng = np.random.default_rng(0)
    a_dense = rng.standard_normal((15, 15)) + 15 * np.eye(15)
    a = CSRMatrix.from_dense(a_dense, tol=-1.0)
    b = rng.standard_normal(15)
    res = bicgstab(a.matvec, b, tol=1e-10)
    assert res.converged
    assert np.allclose(a_dense @ res.x, b, atol=1e-7)


def test_polynomial_preconditioning_accelerates(mesh2_problem):
    ss = scale_system(mesh2_problem.stiffness, mesh2_problem.load)
    plain = bicgstab(ss.a.matvec, ss.b, tol=1e-6, max_iter=5000)
    g = GLSPolynomial.unit_interval(7, eps=1e-6)
    pre = bicgstab(
        ss.a.matvec,
        ss.b,
        lambda v: g.apply_linear(ss.a.matvec, v),
        tol=1e-6,
    )
    assert plain.converged and pre.converged
    assert pre.iterations < plain.iterations


def test_zero_rhs():
    a = CSRMatrix.eye(3)
    res = bicgstab(a.matvec, np.zeros(3))
    assert res.converged and res.iterations == 0


def test_true_residual_meets_tolerance(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    res = bicgstab(ss.a.matvec, ss.b, tol=1e-8)
    r = ss.b - ss.a.matvec(res.x)
    assert np.linalg.norm(r) / np.linalg.norm(ss.b) <= 1e-7


def test_initial_guess(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    u_ref = np.linalg.solve(ss.a.toarray(), ss.b)
    res = bicgstab(ss.a.matvec, ss.b, x0=u_ref, tol=1e-10)
    assert res.converged
    assert res.iterations == 0


def test_breakdown_reported_not_raised():
    # rho = <r_shadow, r> = 0 immediately for this construction
    a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [-1.0, 0.0]]))
    b = np.array([1.0, 0.0])
    res = bicgstab(a.matvec, b, tol=1e-14, max_iter=50)
    assert isinstance(res.converged, bool)  # never raises
