"""Cross-solver property tests on random SPD systems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precond.gls import GLSPolynomial
from repro.solvers.bicgstab import bicgstab
from repro.solvers.cg import cg
from repro.solvers.fgmres import fgmres
from repro.solvers.gmres import gmres
from repro.sparse.csr import CSRMatrix
from repro.spectrum.intervals import SpectrumIntervals


def _spd(n, seed):
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    dense = m @ m.T + n * np.eye(n)
    return CSRMatrix.from_dense(dense, tol=-1.0), dense, rng.standard_normal(n)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(3, 14), seed=st.integers(0, 3000))
def test_all_solvers_agree(n, seed):
    """Property: FGMRES, GMRES, CG and BiCGSTAB find the same solution of
    the same SPD system."""
    a, dense, b = _spd(n, seed)
    x_ref = np.linalg.solve(dense, b)
    scale = np.linalg.norm(x_ref)
    for solver in (fgmres, gmres, cg, bicgstab):
        res = solver(a.matvec, b, tol=1e-11, max_iter=20 * n)
        assert res.converged, solver.__name__
        assert np.linalg.norm(res.x - x_ref) < 1e-6 * scale, solver.__name__


@settings(max_examples=20, deadline=None)
@given(n=st.integers(3, 14), seed=st.integers(0, 3000))
def test_gmres_history_monotone_within_cycle(n, seed):
    """Property: the GMRES least-squares residual never increases inside a
    restart cycle."""
    a, _, b = _spd(n, seed)
    res = fgmres(a.matvec, b, restart=n + 1, tol=1e-12, max_iter=n + 1)
    hist = np.asarray(res.residual_history)
    assert np.all(np.diff(hist) <= 1e-12)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(4, 12), seed=st.integers(0, 3000), m=st.integers(1, 6))
def test_polynomial_preconditioning_never_breaks_correctness(n, seed, m):
    """Property: a GLS window bracketing the true spectrum gives a solver
    that still converges to the right answer, for any degree."""
    a, dense, b = _spd(n, seed)
    evals = np.linalg.eigvalsh(dense)
    theta = SpectrumIntervals.single(evals.min() * 0.9, evals.max() * 1.1)
    g = GLSPolynomial(theta, m)
    res = fgmres(
        a.matvec,
        b,
        lambda v: g.apply_linear(a.matvec, v),
        tol=1e-10,
        max_iter=30 * n,
    )
    assert res.converged
    x_ref = np.linalg.solve(dense, b)
    assert np.linalg.norm(res.x - x_ref) < 1e-5 * np.linalg.norm(x_ref)


@pytest.mark.parametrize("solver", [fgmres, gmres, cg, bicgstab])
def test_nan_rhs_rejected(solver):
    a = CSRMatrix.eye(3)
    b = np.array([1.0, np.nan, 0.0])
    with pytest.raises(ValueError, match="NaN or Inf"):
        solver(a.matvec, b)


@pytest.mark.parametrize("solver", [fgmres, gmres, cg, bicgstab])
def test_inf_rhs_rejected(solver):
    a = CSRMatrix.eye(3)
    b = np.array([1.0, np.inf, 0.0])
    with pytest.raises(ValueError, match="NaN or Inf"):
        solver(a.matvec, b)
