"""MINRES for symmetric (indefinite) systems."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.fgmres import fgmres
from repro.solvers.minres import minres
from repro.sparse.csr import CSRMatrix


def _sym_indefinite(n, seed, n_neg):
    rng = np.random.default_rng(seed)
    evals = np.concatenate(
        [-rng.uniform(1, 4, n_neg), rng.uniform(1, 4, n - n_neg)]
    )
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    dense = q @ np.diag(evals) @ q.T
    return dense, rng.standard_normal(n)


def test_spd_matches_direct(tiny_problem):
    from repro.precond.scaling import scale_system

    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    res = minres(ss.a.matvec, ss.b, tol=1e-10, max_iter=5000)
    assert res.converged
    u_ref = np.linalg.solve(ss.a.toarray(), ss.b)
    assert np.linalg.norm(res.x - u_ref) < 1e-6 * np.linalg.norm(u_ref)


def test_indefinite_system_where_cg_fails():
    dense, b = _sym_indefinite(14, 0, 5)
    from repro.solvers.cg import cg

    a = CSRMatrix.from_dense(dense, tol=-1.0)
    assert not cg(a.matvec, b, tol=1e-10, max_iter=100).converged
    res = minres(a.matvec, b, tol=1e-10)
    assert res.converged
    assert np.allclose(dense @ res.x, b, atol=1e-7)


def test_terminates_in_n_iterations():
    dense, b = _sym_indefinite(10, 1, 3)
    res = minres(lambda v: dense @ v, b, tol=1e-12, max_iter=50)
    assert res.converged
    assert res.iterations <= 11


def test_matches_gmres_on_symmetric():
    dense, b = _sym_indefinite(12, 2, 4)
    a = CSRMatrix.from_dense(dense, tol=-1.0)
    mr = minres(a.matvec, b, tol=1e-10)
    gm = fgmres(a.matvec, b, restart=12, tol=1e-10)
    assert mr.converged and gm.converged
    assert np.allclose(mr.x, gm.x, atol=1e-6)


def test_zero_rhs():
    a = CSRMatrix.eye(3)
    res = minres(a.matvec, np.zeros(3))
    assert res.converged and res.iterations == 0


def test_exact_initial_guess():
    dense, b = _sym_indefinite(8, 3, 2)
    x_ref = np.linalg.solve(dense, b)
    res = minres(lambda v: dense @ v, b, x0=x_ref, tol=1e-8)
    assert res.converged
    assert res.iterations <= 1


def test_nan_rejected():
    a = CSRMatrix.eye(2)
    with pytest.raises(ValueError, match="NaN or Inf"):
        minres(a.matvec, np.array([np.nan, 1.0]))


def test_residual_history_monotone():
    """MINRES minimizes the residual over growing Krylov spaces, so the
    estimate never increases."""
    dense, b = _sym_indefinite(15, 4, 6)
    res = minres(lambda v: dense @ v, b, tol=1e-12, max_iter=20)
    hist = np.asarray(res.residual_history)
    assert np.all(np.diff(hist) <= 1e-12)


@settings(max_examples=20, deadline=None)
@given(n=st.integers(4, 16), seed=st.integers(0, 2000), n_neg=st.integers(1, 3))
def test_random_indefinite_property(n, seed, n_neg):
    """Property: MINRES solves arbitrary well-conditioned symmetric
    indefinite systems."""
    n_neg = min(n_neg, n - 1)
    dense, b = _sym_indefinite(n, seed, n_neg)
    res = minres(lambda v: dense @ v, b, tol=1e-10, max_iter=5 * n)
    assert res.converged
    assert np.allclose(dense @ res.x, b, atol=1e-6 * np.linalg.norm(b))
