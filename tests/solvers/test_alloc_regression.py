"""Allocation-regression guards for the zero-allocation hot paths.

These tests pin down the acceptance criterion of the kernel-layer rework:
in steady state (workspaces warmed), one polynomial-preconditioner
application and one FGMRES inner iteration perform **zero per-iteration
array allocations**.  Measured with :mod:`tracemalloc` rather than by
inspecting the code: a probe wraps the matvec and records the peak
traced-memory delta between consecutive calls, so any temporary ndarray
created inside the recurrence or the Gram-Schmidt sweep shows up as a
spike of at least ``n * 8`` bytes.

The problem size (``N = 20_000``) makes a single solution-length vector
160 KB while the allowed slack per step is 8 KB — two orders of magnitude
apart, so the assertion cannot pass by accident.  Small O(restart)
allocations (Givens scratch, float boxing, history appends) fit well
inside the slack.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.precond.chebyshev import ChebyshevPolynomial
from repro.precond.gls import GLSPolynomial
from repro.precond.neumann import NeumannPolynomial
from repro.solvers.block_fgmres import fgmres_block
from repro.solvers.fgmres import fgmres
from repro.solvers.gmres import gmres
from repro.sparse.csr import CSRMatrix
from repro.spectrum.intervals import SpectrumIntervals

N = 20_000
VECTOR_BYTES = N * 8
# Any hidden temporary of solution length would exceed this 20x over.
SLACK_BYTES = 8_192


def _laplacian_1d(n: int) -> CSRMatrix:
    """Tridiagonal SPD 1-D Laplacian, scaled into the unit window the
    polynomial preconditioners expect."""
    main = np.full(n, 2.0)
    off = np.full(n - 1, -1.0)
    rows = np.concatenate(
        [np.arange(n), np.arange(n - 1), np.arange(1, n)]
    )
    cols = np.concatenate(
        [np.arange(n), np.arange(1, n), np.arange(n - 1)]
    )
    data = np.concatenate([main, off, off]) / 4.0
    order = np.lexsort((cols, rows))
    lens = np.bincount(rows, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    return CSRMatrix((n, n), indptr, cols[order], data[order])


@pytest.fixture(scope="module")
def lap():
    return _laplacian_1d(N)


class MatvecProbe:
    """Matvec wrapper recording the peak traced-memory delta between
    consecutive calls (i.e. allocations made by the *caller's* code in
    between, plus our own kernel's)."""

    def __init__(self, a: CSRMatrix):
        self._a = a
        self.deltas: list[int] = []
        self._baseline: int | None = None

    def __call__(self, x, out=None):
        current, peak = tracemalloc.get_traced_memory()
        if self._baseline is not None:
            self.deltas.append(peak - self._baseline)
        result = self._a.matvec(x, out=out)
        tracemalloc.reset_peak()
        self._baseline = tracemalloc.get_traced_memory()[0]
        return result

    def steady_state_deltas(self, skip: int) -> list[int]:
        """Deltas after the first ``skip`` calls (workspace warm-up and
        per-solve basis allocation land in the skipped prefix)."""
        return self.deltas[skip:]


def _make_preconditioners():
    theta = SpectrumIntervals.single(0.05, 1.0)
    return [
        NeumannPolynomial(7),
        ChebyshevPolynomial(theta, 7),
        GLSPolynomial(theta, 7),
    ]


@pytest.mark.parametrize(
    "pc", _make_preconditioners(), ids=lambda p: p.name
)
def test_polynomial_apply_steady_state_allocations(pc, lap):
    """After warm-up, P_m(A) v with out= allocates nothing vector-sized
    across the whole application (degree matvecs + recurrence updates)."""
    rng = np.random.default_rng(5)
    v = rng.standard_normal(N)
    out = np.empty(N)
    pc.apply_linear(lap.matvec, v, out=out)  # warm workspaces
    expected = pc.apply_linear(lap.matvec, v).copy()

    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        base = tracemalloc.get_traced_memory()[0]
        for _ in range(3):
            pc.apply_linear(lap.matvec, v, out=out)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    assert peak - base < SLACK_BYTES, (
        f"polynomial apply allocated {peak - base} B in steady state "
        f"(vector size is {VECTOR_BYTES} B)"
    )
    assert np.allclose(out, expected)


@pytest.mark.parametrize("solver", [fgmres, gmres], ids=["fgmres", "gmres"])
def test_krylov_inner_loop_steady_state_allocations(solver, lap):
    """Between consecutive matvecs inside a restart cycle, the solver
    allocates no solution-length temporaries: the basis is preallocated
    and Gram-Schmidt runs in place."""
    rng = np.random.default_rng(6)
    b = rng.standard_normal(N)
    probe = MatvecProbe(lap)
    pc = NeumannPolynomial(3)

    tracemalloc.start()
    try:
        solver(
            probe,
            b,
            precond=lambda v, out=None: pc.apply_linear(probe, v, out=out),
            restart=8,
            tol=1e-10,
            max_iter=40,
        )
    finally:
        tracemalloc.stop()

    # Skip the first restart cycle: per-solve workspace (V, Z, w, tmp)
    # and preconditioner warm-up are one-time costs by design.
    degree_calls = pc.degree  # matvecs per preconditioner application
    skip = (degree_calls + 1) * 9  # first cycle, generously
    steady = probe.steady_state_deltas(skip)
    assert len(steady) >= 10, "problem too easy: not enough steady calls"
    worst = max(steady)
    assert worst < SLACK_BYTES, (
        f"inner loop allocated {worst} B between matvecs "
        f"(vector size is {VECTOR_BYTES} B)"
    )


class BlockMatvecProbe(MatvecProbe):
    """SpMM wrapper with the same between-call delta recording."""

    def __call__(self, x, out=None):
        current, peak = tracemalloc.get_traced_memory()
        if self._baseline is not None:
            self.deltas.append(peak - self._baseline)
        result = self._a.matmat(x, out=out)
        tracemalloc.reset_peak()
        self._baseline = tracemalloc.get_traced_memory()[0]
        return result


K_BLOCK = 4
BLOCK_BYTES = N * K_BLOCK * 8
# The block loop scales columns with (n, k) x (k,) broadcast ufuncs, which
# numpy routes through its internal iteration buffer — a *fixed* 8192
# elements (64 KiB, ``np.getbufsize()``) regardless of problem size, freed
# on return.  The block slack sits just above it: a genuine O(n) leak is
# still 2.3x (one column, 160 KB) to 9.5x (one block, 640 KB) over.
BLOCK_SLACK_BYTES = 8192 * 8 + SLACK_BYTES


@pytest.mark.parametrize(
    "pc", _make_preconditioners(), ids=lambda p: p.name
)
def test_polynomial_block_apply_steady_state_allocations(pc, lap):
    """The multi-vector polynomial application is as allocation-free as
    the single-vector one: after the (n, k)-shaped workspaces warm up,
    P_m(A) V with out= allocates nothing block-sized."""
    rng = np.random.default_rng(15)
    v = rng.standard_normal((N, K_BLOCK))
    out = np.empty((N, K_BLOCK))
    pc.apply_linear(lap.matmat, v, out=out)  # warm (n, k) workspaces
    expected = pc.apply_linear(lap.matmat, v).copy()

    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        base = tracemalloc.get_traced_memory()[0]
        for _ in range(3):
            pc.apply_linear(lap.matmat, v, out=out)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    assert peak - base < BLOCK_SLACK_BYTES, (
        f"block polynomial apply allocated {peak - base} B in steady "
        f"state (block size is {BLOCK_BYTES} B)"
    )
    assert np.allclose(out, expected)


def test_fgmres_block_inner_loop_steady_state_allocations(lap):
    """The block Arnoldi loop preallocates its (restart+1, n, k) basis and
    runs Gram-Schmidt through ufunc reductions: between consecutive SpMMs
    nothing block-sized (or even vector-sized) is allocated.  Per-step
    bookkeeping (Givens columns, history floats, masking lists) must fit
    in the same slack budget as the single-RHS loop."""
    rng = np.random.default_rng(16)
    b = rng.standard_normal((N, K_BLOCK))
    probe = BlockMatvecProbe(lap)
    pc = NeumannPolynomial(3)

    tracemalloc.start()
    try:
        fgmres_block(
            probe,
            b,
            precond=lambda v, out=None: pc.apply_linear(probe, v, out=out),
            restart=8,
            tol=1e-10,
            max_iter=40,
        )
    finally:
        tracemalloc.stop()

    degree_calls = pc.degree
    skip = (degree_calls + 1) * 9  # first cycle: workspace + warm-up
    steady = probe.steady_state_deltas(skip)
    assert len(steady) >= 10, "problem too easy: not enough steady calls"
    worst = max(steady)
    assert worst < BLOCK_SLACK_BYTES, (
        f"block inner loop allocated {worst} B between SpMMs "
        f"(block size is {BLOCK_BYTES} B, one column is {VECTOR_BYTES} B)"
    )


def test_probe_detects_allocations(lap):
    """Sanity check that the measurement itself works: a vector-sized
    allocation between two matvecs must trip the probe (so the green
    solver tests above cannot be green by measurement failure)."""
    rng = np.random.default_rng(7)
    v = rng.standard_normal(N)
    out = np.empty(N)
    probe = MatvecProbe(lap)
    keep = []  # hold references so no allocation is elided or reused
    tracemalloc.start()
    try:
        for _ in range(5):
            probe(v, out=out)
            keep.append(np.zeros(N))  # deliberate between-call allocation
    finally:
        tracemalloc.stop()
    assert max(probe.steady_state_deltas(1)) >= VECTOR_BYTES
