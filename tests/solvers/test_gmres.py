"""Standard left-preconditioned GMRES."""

import numpy as np
import pytest

from repro.precond.ilu import ILU0Preconditioner
from repro.precond.scaling import scale_system
from repro.solvers.fgmres import fgmres
from repro.solvers.gmres import gmres
from repro.sparse.csr import CSRMatrix


def test_unpreconditioned_matches_fgmres(tiny_problem):
    """With identity preconditioning GMRES and FGMRES are the same method."""
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    a = gmres(ss.a.matvec, ss.b, tol=1e-8)
    b = fgmres(ss.a.matvec, ss.b, tol=1e-8)
    assert a.converged and b.converged
    assert a.iterations == b.iterations
    assert np.allclose(a.x, b.x, atol=1e-8)


def test_left_preconditioning_reduces_iterations(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    plain = gmres(ss.a.matvec, ss.b, tol=1e-6)
    ilu = ILU0Preconditioner(ss.a)
    pre = gmres(ss.a.matvec, ss.b, ilu.apply, tol=1e-6)
    assert pre.converged
    assert pre.iterations < plain.iterations


def test_solution_correct_with_preconditioner(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    ilu = ILU0Preconditioner(ss.a)
    res = gmres(ss.a.matvec, ss.b, ilu.apply, tol=1e-10)
    u_ref = np.linalg.solve(ss.a.toarray(), ss.b)
    assert np.allclose(res.x, u_ref, rtol=1e-6, atol=1e-12)


def test_zero_rhs():
    a = CSRMatrix.eye(3)
    res = gmres(a.matvec, np.zeros(3))
    assert res.converged and res.iterations == 0


def test_invalid_restart():
    a = CSRMatrix.eye(2)
    with pytest.raises(ValueError):
        gmres(a.matvec, np.ones(2), restart=-1)


def test_unconverged_flagged(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    res = gmres(ss.a.matvec, ss.b, tol=1e-14, max_iter=2)
    assert not res.converged
