"""Incremental Givens least squares."""

import numpy as np
import pytest

from repro.solvers.givens import GivensLSQ


def _hessenberg(n, seed=0):
    rng = np.random.default_rng(seed)
    h = np.zeros((n + 1, n))
    for j in range(n):
        h[: j + 2, j] = rng.standard_normal(j + 2)
        h[j + 1, j] = abs(h[j + 1, j]) + 0.5  # keep subdiagonal nonzero
    return h


def test_residual_matches_lstsq():
    n = 6
    h = _hessenberg(n)
    beta = 2.5
    lsq = GivensLSQ(n, beta)
    rhs = np.zeros(n + 1)
    rhs[0] = beta
    for j in range(n):
        res = lsq.append_column(h[: j + 2, j])
        y_ref, residuals, *_ = np.linalg.lstsq(
            h[: j + 2, : j + 1], rhs[: j + 2], rcond=None
        )
        r_ref = np.linalg.norm(h[: j + 2, : j + 1] @ y_ref - rhs[: j + 2])
        assert res == pytest.approx(r_ref, abs=1e-10)


def test_solution_matches_lstsq():
    n = 5
    h = _hessenberg(n, seed=1)
    beta = 1.0
    lsq = GivensLSQ(n, beta)
    for j in range(n):
        lsq.append_column(h[: j + 2, j])
    y = lsq.solve()
    rhs = np.zeros(n + 1)
    rhs[0] = beta
    y_ref, *_ = np.linalg.lstsq(h, rhs, rcond=None)
    assert np.allclose(y, y_ref, atol=1e-10)


def test_zero_column_breakdown_handled():
    lsq = GivensLSQ(2, 1.0)
    lsq.append_column(np.array([0.0, 0.0]))
    # rotation defaults to identity; solving would hit the zero pivot
    with pytest.raises(np.linalg.LinAlgError):
        lsq.solve()


def test_full_system_rejects_more_columns():
    lsq = GivensLSQ(1, 1.0)
    lsq.append_column(np.array([1.0, 0.5]))
    with pytest.raises(RuntimeError, match="full"):
        lsq.append_column(np.array([1.0, 1.0, 1.0]))


def test_wrong_column_length_rejected():
    lsq = GivensLSQ(3, 1.0)
    with pytest.raises(ValueError):
        lsq.append_column(np.array([1.0, 2.0, 3.0]))


def test_empty_solve():
    lsq = GivensLSQ(3, 1.0)
    assert len(lsq.solve()) == 0
    assert lsq.residual_norm == pytest.approx(1.0)


def test_residual_monotone_nonincreasing():
    n = 8
    h = _hessenberg(n, seed=2)
    lsq = GivensLSQ(n, 3.0)
    prev = 3.0
    for j in range(n):
        res = lsq.append_column(h[: j + 2, j])
        assert res <= prev + 1e-12
        prev = res
