"""Adaptive-window GLS FGMRES."""

import numpy as np
import pytest

from repro.precond.gls import GLSPolynomial
from repro.precond.scaling import scale_system
from repro.solvers.adaptive import _ritz_values, adaptive_fgmres
from repro.solvers.fgmres import fgmres


def test_ritz_values_bracket_spectrum(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    evals = np.linalg.eigvalsh(ss.a.toarray())
    ritz = _ritz_values(ss.a.matvec, ss.b, 30)
    assert ritz.max() <= evals.max() + 1e-10
    assert ritz.min() >= evals.min() - 1e-10
    # the top Ritz value is a good lambda_max estimate
    assert ritz.max() > 0.9 * evals.max()


def test_ritz_rejects_zero_start():
    with pytest.raises(ValueError):
        _ritz_values(lambda v: v, np.zeros(4), 5)


def test_converges_and_matches_direct(mesh2_problem):
    ss = scale_system(mesh2_problem.stiffness, mesh2_problem.load)
    result, theta = adaptive_fgmres(ss.a.matvec, ss.b, degree=7, tol=1e-8)
    assert result.converged
    u_ref = np.linalg.solve(ss.a.toarray(), ss.b)
    err = np.linalg.norm(result.x - u_ref) / np.linalg.norm(u_ref)
    assert err < 1e-6
    # window is inside the universal (0, ~1.1) band but tighter
    assert 0 < theta.lo
    assert theta.hi < 1.2


def test_window_contains_true_spectrum(mesh2_problem):
    """The padding must keep the true extremes inside the window — an
    under-window is the Fig. 10 failure mode."""
    ss = scale_system(mesh2_problem.stiffness, mesh2_problem.load)
    _, theta = adaptive_fgmres(ss.a.matvec, ss.b, degree=5, tol=1e-6)
    from repro.spectrum.lanczos import lanczos_extreme_eigenvalues

    lo, hi = lanczos_extreme_eigenvalues(ss.a.matvec, ss.a.shape[0], n_steps=60)
    assert theta.hi >= hi
    assert theta.lo <= lo * 1.01


def test_no_slower_than_naive_window(mesh2_problem):
    """Including the probing cost, the adaptive run should not lose badly
    to the fixed naive window (and typically wins on per-cycle rate)."""
    ss = scale_system(mesh2_problem.stiffness, mesh2_problem.load)
    mv = ss.a.matvec
    adaptive, theta = adaptive_fgmres(mv, ss.b, degree=10, tol=1e-6)
    g = GLSPolynomial.unit_interval(10, eps=1e-6)
    naive = fgmres(mv, ss.b, lambda v: g.apply_linear(mv, v), tol=1e-6)
    assert adaptive.converged and naive.converged
    # post-probe iterations strictly beat the naive window
    post_probe = adaptive.iterations - 25
    assert post_probe <= naive.iterations
