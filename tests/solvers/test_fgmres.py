"""Sequential flexible GMRES (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precond.gls import GLSPolynomial
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.scaling import scale_system
from repro.solvers.fgmres import fgmres
from repro.sparse.csr import CSRMatrix


def test_solves_small_spd():
    rng = np.random.default_rng(0)
    m = rng.standard_normal((10, 10))
    a_dense = m @ m.T + 10 * np.eye(10)
    a = CSRMatrix.from_dense(a_dense, tol=-1.0)
    b = rng.standard_normal(10)
    res = fgmres(a.matvec, b, tol=1e-10)
    assert res.converged
    assert np.allclose(res.x, np.linalg.solve(a_dense, b), atol=1e-7)


def test_solves_unsymmetric():
    """GMRES's selling point over CG: general unsymmetric systems."""
    rng = np.random.default_rng(1)
    a_dense = rng.standard_normal((12, 12)) + 12 * np.eye(12)
    a = CSRMatrix.from_dense(a_dense, tol=-1.0)
    b = rng.standard_normal(12)
    res = fgmres(a.matvec, b, tol=1e-10, restart=12)
    assert res.converged
    assert np.allclose(a_dense @ res.x, b, atol=1e-7)


def test_zero_rhs_immediate():
    a = CSRMatrix.eye(4)
    res = fgmres(a.matvec, np.zeros(4))
    assert res.converged
    assert res.iterations == 0
    assert np.array_equal(res.x, np.zeros(4))


def test_initial_guess_respected():
    a = CSRMatrix.eye(5)
    b = np.arange(5.0)
    res = fgmres(a.matvec, b, x0=b.copy())
    assert res.converged
    assert res.iterations <= 1


def test_restart_cycles_counted(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    res = fgmres(ss.a.matvec, ss.b, restart=5, tol=1e-8)
    assert res.converged
    assert res.restarts > 1
    assert res.iterations > 5


def test_residual_history_tracks_convergence(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    res = fgmres(ss.a.matvec, ss.b, tol=1e-7)
    hist = np.asarray(res.residual_history)
    assert hist[0] == 1.0
    assert hist[-1] <= 1e-7
    assert len(hist) == res.iterations + 1


def test_true_residual_matches_tolerance(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    res = fgmres(ss.a.matvec, ss.b, tol=1e-8)
    r = ss.b - ss.a.matvec(res.x)
    assert np.linalg.norm(r) / np.linalg.norm(ss.b) <= 1e-7


def test_max_iter_reported_unconverged(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    res = fgmres(ss.a.matvec, ss.b, tol=1e-12, max_iter=3)
    assert not res.converged
    assert res.iterations == 3


def test_flexible_preconditioning_converges_faster(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    plain = fgmres(ss.a.matvec, ss.b, tol=1e-6)
    g = GLSPolynomial.unit_interval(7, eps=1e-6)
    pre = fgmres(
        ss.a.matvec, ss.b, lambda v: g.apply_linear(ss.a.matvec, v), tol=1e-6
    )
    assert pre.converged
    assert pre.iterations < plain.iterations / 2


def test_variable_preconditioner_allowed(tiny_problem):
    """FGMRES's defining feature: the preconditioner may change per step."""
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    state = {"count": 0}
    g3 = GLSPolynomial.unit_interval(3, eps=1e-6)
    g7 = GLSPolynomial.unit_interval(7, eps=1e-6)

    def alternating(v):
        state["count"] += 1
        g = g3 if state["count"] % 2 else g7
        return g.apply_linear(ss.a.matvec, v)

    res = fgmres(ss.a.matvec, ss.b, alternating, tol=1e-6)
    assert res.converged
    r = ss.b - ss.a.matvec(res.x)
    assert np.linalg.norm(r) / np.linalg.norm(ss.b) <= 1e-5


def test_ilu_preconditioned(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    ilu = ILU0Preconditioner(ss.a)
    res = fgmres(ss.a.matvec, ss.b, ilu.apply, tol=1e-8)
    assert res.converged


def test_invalid_restart():
    a = CSRMatrix.eye(2)
    with pytest.raises(ValueError):
        fgmres(a.matvec, np.ones(2), restart=0)


def test_happy_breakdown_exact_solution():
    """If b is an eigenvector, the Krylov space is 1-D and FGMRES stops."""
    a = CSRMatrix.diag(np.array([2.0, 3.0, 4.0]))
    b = np.array([1.0, 0.0, 0.0])
    res = fgmres(a.matvec, b, tol=1e-14)
    assert res.converged
    assert res.iterations == 1
    assert np.allclose(res.x, [0.5, 0.0, 0.0])


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 15), seed=st.integers(0, 5000))
def test_converges_on_random_spd_property(n, seed):
    """Property: unrestarted FGMRES solves any well-conditioned SPD system
    within n iterations."""
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    a_dense = m @ m.T + n * np.eye(n)
    a = CSRMatrix.from_dense(a_dense, tol=-1.0)
    b = rng.standard_normal(n)
    res = fgmres(a.matvec, b, restart=n, tol=1e-9)
    assert res.converged
    assert res.iterations <= n + 1
    assert np.allclose(a_dense @ res.x, b, atol=1e-6 * np.linalg.norm(b))
