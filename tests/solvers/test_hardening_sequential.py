"""Hardening of the short-recurrence solvers (cg / bicgstab / minres).

PR 3 hardened the GMRES family with a ConvergenceMonitor; these tests pin
the same contract for the remaining sequential solvers: a numerically
poisoned or broken-down solve terminates early with a structured
DiagnosticEvent — never a silent NaN loop to ``max_iter`` — while healthy
solves keep empty diagnostics and bit-identical iterates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.bicgstab import bicgstab
from repro.solvers.cg import cg
from repro.solvers.diagnostics import EVENT_KINDS
from repro.solvers.minres import minres


def spd_system(n=40, seed=0):
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    a = m @ m.T + n * np.eye(n)
    b = rng.standard_normal(n)
    return a, b


def test_breakdown_is_a_known_event_kind():
    assert "breakdown" in EVENT_KINDS


# ----------------------------------------------------------------------
# Healthy solves: empty diagnostics, monitor does not perturb iterates
# ----------------------------------------------------------------------
@pytest.mark.parametrize("solver", [cg, bicgstab, minres])
def test_clean_solve_has_empty_diagnostics(solver):
    a, b = spd_system()
    res = solver(lambda v: a @ v, b, tol=1e-10)
    assert res.converged
    assert res.diagnostics == []


# ----------------------------------------------------------------------
# CG
# ----------------------------------------------------------------------
def test_cg_non_spd_breakdown_event():
    a, b = spd_system(20)
    res = cg(lambda v: -(a @ v), b, max_iter=50)
    assert not res.converged
    assert res.iterations < 50
    assert any(e.kind == "breakdown" for e in res.diagnostics)


def test_cg_exact_zero_rz_guarded():
    # A 90-degree-rotation "preconditioner" keeps z exactly orthogonal to
    # r, so rz == 0 from the start; the old code computed rz_new / rz =
    # NaN and looped silently on NaN iterates until max_iter.
    rot = np.array([[0.0, -1.0], [1.0, 0.0]])
    b = np.array([1.0, 0.0])
    res = cg(lambda v: v.copy(), b, precond=lambda v: rot @ v, max_iter=100)
    assert not res.converged
    assert res.iterations < 100
    kinds = {e.kind for e in res.diagnostics}
    assert "breakdown" in kinds
    assert np.all(np.isfinite(res.x))


def test_cg_nan_matvec_terminates_with_diagnostic():
    a, b = spd_system(30)
    calls = {"n": 0}

    def poisoned(v):
        calls["n"] += 1
        out = a @ v
        if calls["n"] == 4:
            out = out.copy()
            out[0] = np.nan
        return out

    res = cg(poisoned, b, tol=1e-12, max_iter=500)
    assert not res.converged
    assert res.iterations < 500
    assert any(e.kind == "non_finite" for e in res.diagnostics)


# ----------------------------------------------------------------------
# BiCGSTAB
# ----------------------------------------------------------------------
def test_bicgstab_breakdown_reported_with_event():
    # Skew-symmetric system: r_shadow.v dies immediately.
    a = np.array([[0.0, 1.0], [-1.0, 0.0]])
    b = np.array([1.0, 1.0])
    res = bicgstab(lambda v: a @ v, b, max_iter=50)
    assert not res.converged
    assert any(e.kind == "breakdown" for e in res.diagnostics)


def test_bicgstab_nan_precond_terminates_with_diagnostic():
    a, b = spd_system(30)
    calls = {"n": 0}

    def poisoned(v):
        calls["n"] += 1
        out = v.copy()
        if calls["n"] == 3:
            out[0] = np.inf
        return out

    with np.errstate(invalid="ignore"):
        res = bicgstab(lambda v: a @ v, b, precond=poisoned, tol=1e-12,
                       max_iter=500)
    assert not res.converged
    assert res.iterations < 500
    assert any(e.kind == "non_finite" for e in res.diagnostics)


def test_bicgstab_exact_x0_still_short_circuits():
    a, b = spd_system(10)
    x_star = np.linalg.solve(a, b)
    res = bicgstab(lambda v: a @ v, b, x0=x_star)
    assert res.converged
    assert res.iterations == 0
    assert res.diagnostics == []


# ----------------------------------------------------------------------
# MINRES
# ----------------------------------------------------------------------
def test_minres_nan_matvec_terminates_with_diagnostic():
    a, b = spd_system(30)
    calls = {"n": 0}

    def poisoned(v):
        calls["n"] += 1
        out = a @ v
        if calls["n"] == 5:
            out = out.copy()
            out[0] = np.nan
        return out

    res = minres(poisoned, b, tol=1e-12, max_iter=500)
    assert not res.converged
    assert res.iterations < 500
    assert any(e.kind == "non_finite" for e in res.diagnostics)


def test_minres_unconverged_carries_diagnostics():
    a, b = spd_system(30)
    res = minres(lambda v: a @ v, b, tol=1e-14, max_iter=2)
    assert not res.converged
    assert res.diagnostics, "unconverged result must carry diagnostics"
    assert all(e.kind in EVENT_KINDS for e in res.diagnostics)


@pytest.mark.parametrize("solver", [cg, bicgstab, minres])
def test_unconverged_never_empty_diagnostics(solver):
    a, b = spd_system(40, seed=3)
    res = solver(lambda v: a @ v, b, tol=1e-15, max_iter=3)
    if not res.converged:
        assert res.diagnostics
