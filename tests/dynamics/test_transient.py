"""Transient driver on the cantilever."""

import numpy as np
import pytest

from repro.dynamics.newmark import NewmarkIntegrator
from repro.dynamics.transient import run_transient
from repro.precond.gls import GLSPolynomial


def _integrator(problem, dt=0.05):
    return NewmarkIntegrator(problem.stiffness, problem.mass, dt=dt)


def test_static_limit(tiny_dynamic_problem):
    """Constant load, many steps: the solution settles near the static one
    (oscillating around it without damping, so check the mean)."""
    p = tiny_dynamic_problem
    nm = _integrator(p, dt=0.2)
    res = run_transient(nm, lambda t: p.load, n_steps=200)
    u_static = np.linalg.solve(p.stiffness.toarray(), p.load)
    mean = res.displacements[50:].mean(axis=0)
    assert np.allclose(mean, u_static, rtol=0.15, atol=1e-8)


def test_zero_load_stays_at_rest(tiny_dynamic_problem):
    nm = _integrator(tiny_dynamic_problem)
    res = run_transient(nm, lambda t: np.zeros_like(tiny_dynamic_problem.load), 5)
    assert np.allclose(res.displacements, 0.0)


def test_iterations_recorded_per_step(tiny_dynamic_problem):
    p = tiny_dynamic_problem
    nm = _integrator(p)
    res = run_transient(nm, lambda t: p.load, 4)
    assert len(res.iterations_per_step) == 4
    assert res.total_iterations == res.iterations_per_step.sum()
    assert (res.iterations_per_step > 0).all()


def test_polynomial_preconditioning_cuts_iterations(tiny_dynamic_problem):
    p = tiny_dynamic_problem
    nm = _integrator(p)
    plain = run_transient(nm, lambda t: p.load, 3)
    g = GLSPolynomial.unit_interval(7, eps=1e-6)
    pre = run_transient(
        nm,
        lambda t: p.load,
        3,
        precond_factory=lambda mv: (lambda v: g.apply_linear(mv, v)),
    )
    assert pre.total_iterations < plain.total_iterations


def test_iteration_counts_stable_across_steps(tiny_dynamic_problem):
    """The effective matrix is fixed, so per-step solve cost stays flat
    (the paper's dynamic runs report a single per-step behaviour)."""
    p = tiny_dynamic_problem
    nm = _integrator(p, dt=0.01)
    res = run_transient(nm, lambda t: p.load, 6)
    iters = res.iterations_per_step
    assert iters.max() - iters.min() <= 3


def test_invalid_step_count(tiny_dynamic_problem):
    nm = _integrator(tiny_dynamic_problem)
    with pytest.raises(ValueError):
        run_transient(nm, lambda t: tiny_dynamic_problem.load, 0)


def test_times_axis(tiny_dynamic_problem):
    nm = _integrator(tiny_dynamic_problem, dt=0.5)
    res = run_transient(nm, lambda t: tiny_dynamic_problem.load, 3)
    assert np.allclose(res.times, [0.5, 1.0, 1.5])
