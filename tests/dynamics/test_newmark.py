"""Newmark integrator."""

import numpy as np
import pytest

from repro.dynamics.newmark import NewmarkIntegrator, effective_matrix
from repro.sparse.csr import CSRMatrix


def _sdof(k=4.0, m=1.0):
    """A 1-DOF oscillator with angular frequency sqrt(k/m)."""
    return CSRMatrix.from_dense([[k]]), CSRMatrix.from_dense([[m]])


def test_effective_matrix_combination():
    k = CSRMatrix.from_dense(np.array([[2.0, -1.0], [-1.0, 2.0]]))
    m = CSRMatrix.eye(2)
    eff = effective_matrix(k, m, alpha=3.0, beta=2.0)
    assert np.allclose(eff.toarray(), 2.0 * k.toarray() + 3.0 * np.eye(2))


def test_effective_matrix_shape_mismatch():
    with pytest.raises(ValueError):
        effective_matrix(CSRMatrix.eye(2), CSRMatrix.eye(3), 1.0)


def test_coefficients_average_acceleration():
    k, m = _sdof()
    nm = NewmarkIntegrator(k, m, dt=0.1)
    assert nm.a0 == pytest.approx(1.0 / (0.25 * 0.01))
    assert nm.alpha == nm.a0


def test_invalid_parameters():
    k, m = _sdof()
    with pytest.raises(ValueError):
        NewmarkIntegrator(k, m, dt=0.0)
    with pytest.raises(ValueError):
        NewmarkIntegrator(k, m, dt=0.1, beta_n=0.0)


def test_initial_acceleration_consistent():
    k, m = _sdof(k=4.0, m=2.0)
    nm = NewmarkIntegrator(k, m, dt=0.1)
    u0 = np.array([1.0])
    a0 = nm.initial_acceleration(u0, np.zeros(1), np.zeros(1))
    assert a0 == pytest.approx(-2.0)  # a = -K u / m


def test_free_vibration_frequency():
    """Average-acceleration Newmark reproduces the SDOF oscillation with
    the correct period and (nearly) conserved amplitude."""
    omega = 2.0
    k, m = _sdof(k=omega**2, m=1.0)
    dt = 0.01
    nm = NewmarkIntegrator(k, m, dt=dt)
    u = np.array([1.0])
    v = np.zeros(1)
    a = nm.initial_acceleration(u, v, np.zeros(1))
    kbar = nm.system_matrix().toarray()
    history = []
    for _ in range(1000):
        f_hat = nm.effective_load(np.zeros(1), u, v, a)
        u_next = np.linalg.solve(kbar, f_hat)
        v, a = nm.advance(u, v, a, u_next)
        u = u_next
        history.append(u[0])
    history = np.array(history)
    t = dt * np.arange(1, 1001)
    exact = np.cos(omega * t)
    assert np.max(np.abs(history - exact)) < 0.02  # small period error only
    # amplitude conserved (no numerical damping at gamma = 1/2)
    assert np.abs(history).max() <= 1.0 + 1e-6
    assert history.min() < -0.99


def test_energy_conserved():
    omega = 3.0
    k, m = _sdof(k=omega**2, m=1.0)
    nm = NewmarkIntegrator(k, m, dt=0.02)
    u = np.array([0.5])
    v = np.array([1.0])
    a = nm.initial_acceleration(u, v, np.zeros(1))
    kbar = nm.system_matrix().toarray()
    e0 = 0.5 * omega**2 * u[0] ** 2 + 0.5 * v[0] ** 2
    for _ in range(500):
        f_hat = nm.effective_load(np.zeros(1), u, v, a)
        u_next = np.linalg.solve(kbar, f_hat)
        v, a = nm.advance(u, v, a, u_next)
        u = u_next
    e1 = 0.5 * omega**2 * u[0] ** 2 + 0.5 * v[0] ** 2
    assert e1 == pytest.approx(e0, rel=1e-6)
