"""Modal analysis."""

import numpy as np
import pytest
import scipy.linalg

from repro.dynamics.modal import lowest_modes
from repro.fem.cantilever import cantilever_problem
from repro.sparse.csr import CSRMatrix


@pytest.fixture(scope="module")
def beam():
    return cantilever_problem(nx=10, ny=2, with_mass=True)


@pytest.fixture(scope="module")
def exact_eigs(beam):
    return scipy.linalg.eigh(
        beam.stiffness.toarray(), beam.mass.toarray(), eigvals_only=True
    )


def test_lowest_frequencies_match_dense(beam, exact_eigs):
    result = lowest_modes(beam.stiffness, beam.mass, n_modes=4)
    omega_exact = np.sqrt(exact_eigs[:4])
    assert np.allclose(result.omega, omega_exact, rtol=1e-6)


def test_modes_mass_orthonormal(beam):
    result = lowest_modes(beam.stiffness, beam.mass, n_modes=3)
    gram = result.modes.T @ np.column_stack(
        [beam.mass.matvec(result.modes[:, j]) for j in range(3)]
    )
    assert np.allclose(gram, np.eye(3), atol=1e-6)


def test_modes_satisfy_eigen_equation(beam):
    result = lowest_modes(beam.stiffness, beam.mass, n_modes=2)
    for j in range(2):
        phi = result.modes[:, j]
        r = beam.stiffness.matvec(phi) - result.omega[j] ** 2 * beam.mass.matvec(phi)
        assert np.linalg.norm(r) < 1e-5 * np.linalg.norm(
            beam.stiffness.matvec(phi)
        )


def test_first_mode_is_bending(beam):
    """The fundamental cantilever mode is transverse bending: the tip's
    y-displacement dominates its x-displacement."""
    result = lowest_modes(beam.stiffness, beam.mass, n_modes=1)
    phi = beam.bc.expand(result.modes[:, 0])
    tip_nodes = beam.mesh.nodes_on(lambda x, y: x == x.max())
    uy = np.abs(phi[tip_nodes * 2 + 1]).max()
    ux = np.abs(phi[tip_nodes * 2]).max()
    assert uy > 3 * ux


def test_frequencies_ascending(beam):
    result = lowest_modes(beam.stiffness, beam.mass, n_modes=5)
    assert np.all(np.diff(result.omega) >= 0)
    assert np.allclose(result.frequencies_hz, result.omega / (2 * np.pi))


def test_validation(beam):
    with pytest.raises(ValueError):
        lowest_modes(beam.stiffness, CSRMatrix.eye(3), n_modes=1)
    with pytest.raises(ValueError):
        lowest_modes(beam.stiffness, beam.mass, n_modes=0)
