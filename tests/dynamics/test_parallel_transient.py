"""Distributed transient driver vs the sequential one."""

import numpy as np
import pytest

from repro.dynamics.newmark import NewmarkIntegrator
from repro.dynamics.parallel_transient import run_parallel_transient
from repro.dynamics.transient import run_transient
from repro.precond.gls import GLSPolynomial


@pytest.fixture(scope="module")
def setup(tiny_dynamic_problem):
    p = tiny_dynamic_problem
    nm = NewmarkIntegrator(p.stiffness, p.mass, dt=0.2)
    return p, nm


def test_matches_sequential_transient(setup):
    """Same physics, same trajectory — distributed vs sequential solves."""
    p, nm = setup
    g = GLSPolynomial.unit_interval(7, eps=1e-6)
    seq = run_transient(
        nm,
        lambda t: p.load,
        5,
        precond_factory=lambda mv: (lambda v: g.apply_linear(mv, v)),
        tol=1e-10,
    )
    par = run_parallel_transient(
        p.mesh,
        p.material,
        p.bc,
        nm,
        lambda t: p.load,
        5,
        n_parts=3,
        precond=g,
        tol=1e-10,
    )
    assert np.allclose(
        par.displacements, seq.displacements, rtol=1e-5, atol=1e-10
    )


def test_stats_accumulate_across_steps(setup):
    p, nm = setup
    g = GLSPolynomial.unit_interval(5, eps=1e-6)
    one = run_parallel_transient(
        p.mesh, p.material, p.bc, nm, lambda t: p.load, 1, n_parts=2, precond=g
    )
    three = run_parallel_transient(
        p.mesh, p.material, p.bc, nm, lambda t: p.load, 3, n_parts=2, precond=g
    )
    assert three.stats.total_nbr_messages > 2 * one.stats.total_nbr_messages
    assert three.total_iterations > one.total_iterations


def test_zero_load_stays_at_rest(setup):
    p, nm = setup
    res = run_parallel_transient(
        p.mesh,
        p.material,
        p.bc,
        nm,
        lambda t: np.zeros_like(p.load),
        3,
        n_parts=2,
    )
    assert np.allclose(res.displacements, 0.0)


def test_step_count_validated(setup):
    p, nm = setup
    with pytest.raises(ValueError):
        run_parallel_transient(
            p.mesh, p.material, p.bc, nm, lambda t: p.load, 0, n_parts=2
        )
