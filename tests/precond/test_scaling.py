"""Norm-1 diagonal scaling (Section 2.1.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precond.scaling import norm1_scaling, scale_system
from repro.sparse.csr import CSRMatrix


def test_scaling_vector_values():
    k = CSRMatrix.from_dense(np.array([[2.0, -2.0], [-2.0, 6.0]]))
    d = norm1_scaling(k)
    assert np.allclose(d, [1 / 2.0, 1 / np.sqrt(8.0)])


def test_zero_row_rejected():
    k = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 0.0]]))
    with pytest.raises(ValueError, match="zero row"):
        norm1_scaling(k)


def test_scaled_system_solution_maps_back(tiny_problem):
    """Solving the scaled system and unscaling equals solving the original."""
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    x = np.linalg.solve(ss.a.toarray(), ss.b)
    u = ss.unscale_solution(x)
    u_direct = np.linalg.solve(tiny_problem.stiffness.toarray(), tiny_problem.load)
    assert np.allclose(u, u_direct, rtol=1e-9)


def test_scale_initial_guess_inverse_of_unscale(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    u0 = np.random.default_rng(0).standard_normal(len(ss.b))
    assert np.allclose(ss.unscale_solution(ss.scale_initial_guess(u0)), u0)


def test_spectrum_in_unit_interval_spd(tiny_problem):
    """Theorem 1 consequence (Eq. 12): sigma(DKD) in (0, 1]."""
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    evals = np.linalg.eigvalsh(ss.a.toarray())
    assert evals.min() > 0
    assert evals.max() <= 1.0 + 1e-12


def test_condition_number_reduced(tiny_problem):
    """The material's large E makes K badly scaled; scaling helps."""
    from repro.fem.cantilever import cantilever_problem
    from repro.fem.material import Material

    p = cantilever_problem(nx=4, ny=3, material=Material(E=2e11, nu=0.3))
    k = p.stiffness.toarray()
    ss = scale_system(p.stiffness, p.load)
    a = ss.a.toarray()
    cond_k = np.linalg.cond(k)
    cond_a = np.linalg.cond(a)
    assert cond_a <= cond_k


def test_rhs_length_checked(tiny_problem):
    with pytest.raises(ValueError):
        scale_system(tiny_problem.stiffness, np.zeros(3))


@settings(max_examples=30, deadline=None)
@given(n=st.integers(2, 10), seed=st.integers(0, 5000))
def test_spd_spectrum_bound_property(n, seed):
    """Property: for random SPD matrices, norm-1 scaling maps the spectrum
    into (0, 1]."""
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    spd = m @ m.T + n * np.eye(n)
    k = CSRMatrix.from_dense(spd)
    d = norm1_scaling(k)
    a = k.scale_rows(d).scale_cols(d).toarray()
    evals = np.linalg.eigvalsh(a)
    assert evals.min() > 0
    assert evals.max() <= 1.0 + 1e-10
