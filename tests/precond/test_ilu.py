"""ILU(0) factorization and the floating-subdomain failure mode."""

import numpy as np
import pytest

from repro.fem.assembly import assemble_matrix
from repro.fem.material import Material
from repro.fem.mesh import structured_quad_mesh
from repro.precond.base import SingularPreconditionerError
from repro.precond.ilu import ILU0Preconditioner, ilu0_factor
from repro.precond.scaling import scale_system
from repro.sparse.csr import CSRMatrix


def test_exact_lu_on_dense_pattern():
    """With a full pattern, ILU(0) IS the LU factorization."""
    rng = np.random.default_rng(0)
    a_dense = rng.standard_normal((6, 6)) + 6 * np.eye(6)
    a = CSRMatrix.from_dense(a_dense, tol=-1.0)  # keep every entry
    ilu = ILU0Preconditioner(a)
    v = rng.standard_normal(6)
    assert np.allclose(ilu.apply(v), np.linalg.solve(a_dense, v), atol=1e-9)


def test_tridiagonal_exact():
    """Tridiagonal matrices incur no fill, so ILU(0) is exact."""
    n = 12
    dense = 2.0 * np.eye(n) - np.eye(n, k=1) - np.eye(n, k=-1)
    a = CSRMatrix.from_dense(dense)
    ilu = ILU0Preconditioner(a)
    v = np.random.default_rng(1).standard_normal(n)
    assert np.allclose(ilu.apply(v), np.linalg.solve(dense, v), atol=1e-9)


def test_factor_preserves_pattern(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    lu = ilu0_factor(ss.a)
    assert lu.nnz == ss.a.nnz
    assert np.array_equal(np.sort(lu.indices), np.sort(ss.a.indices))


def test_preconditioner_reduces_residual(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    ilu = ILU0Preconditioner(ss.a)
    z = ilu.apply(ss.b)
    r = ss.b - ss.a.matvec(z)
    assert np.linalg.norm(r) < 0.7 * np.linalg.norm(ss.b)


def test_zero_pivot_raises():
    a = CSRMatrix.from_dense(
        np.array([[0.0, 1.0], [1.0, 0.0]]), tol=-1.0
    )
    with pytest.raises(SingularPreconditionerError, match="pivot"):
        ilu0_factor(a)


def test_missing_diagonal_raises():
    a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
    with pytest.raises(SingularPreconditionerError, match="diagonal"):
        ilu0_factor(a)


def test_floating_subdomain_singular():
    """Section 3.2.3: a subdomain with no Dirichlet support 'floats' — its
    local stiffness is singular and local ILU breaks down."""
    mesh = structured_quad_mesh(2, 2)
    mat = Material(E=100.0, nu=0.3)
    # Assemble only the right column of elements; its matrix restricted to
    # its own DOFs has the rigid-body null space -> singular.
    k = assemble_matrix(mesh, mat, element_subset=np.array([1, 3]))
    csr = k.tocsr()
    touched = np.unique(np.concatenate([csr.tocoo().rows]))
    local = csr.submatrix(touched, touched)
    with pytest.raises(SingularPreconditionerError):
        ilu0_factor(local)


def test_nonsquare_rejected():
    with pytest.raises(ValueError):
        ilu0_factor(CSRMatrix.from_dense(np.ones((2, 3))))


def test_vector_length_checked(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    ilu = ILU0Preconditioner(ss.a)
    with pytest.raises(ValueError):
        ilu.apply(np.zeros(3))


def test_name(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    assert ILU0Preconditioner(ss.a).name == "ILU(0)"
