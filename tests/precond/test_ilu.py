"""ILU(0) factorization and the floating-subdomain failure mode."""

import numpy as np
import pytest

from repro.fem.assembly import assemble_matrix
from repro.fem.material import Material
from repro.fem.mesh import structured_quad_mesh
from repro.precond.base import SingularPreconditionerError
from repro.precond.ilu import ILU0Preconditioner, ilu0_factor
from repro.precond.scaling import scale_system
from repro.sparse.csr import CSRMatrix


def test_exact_lu_on_dense_pattern():
    """With a full pattern, ILU(0) IS the LU factorization."""
    rng = np.random.default_rng(0)
    a_dense = rng.standard_normal((6, 6)) + 6 * np.eye(6)
    a = CSRMatrix.from_dense(a_dense, tol=-1.0)  # keep every entry
    ilu = ILU0Preconditioner(a)
    v = rng.standard_normal(6)
    assert np.allclose(ilu.apply(v), np.linalg.solve(a_dense, v), atol=1e-9)


def test_tridiagonal_exact():
    """Tridiagonal matrices incur no fill, so ILU(0) is exact."""
    n = 12
    dense = 2.0 * np.eye(n) - np.eye(n, k=1) - np.eye(n, k=-1)
    a = CSRMatrix.from_dense(dense)
    ilu = ILU0Preconditioner(a)
    v = np.random.default_rng(1).standard_normal(n)
    assert np.allclose(ilu.apply(v), np.linalg.solve(dense, v), atol=1e-9)


def test_factor_preserves_pattern(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    lu = ilu0_factor(ss.a)
    assert lu.nnz == ss.a.nnz
    assert np.array_equal(np.sort(lu.indices), np.sort(ss.a.indices))


def test_preconditioner_reduces_residual(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    ilu = ILU0Preconditioner(ss.a)
    z = ilu.apply(ss.b)
    r = ss.b - ss.a.matvec(z)
    assert np.linalg.norm(r) < 0.7 * np.linalg.norm(ss.b)


def test_zero_pivot_raises():
    a = CSRMatrix.from_dense(
        np.array([[0.0, 1.0], [1.0, 0.0]]), tol=-1.0
    )
    with pytest.raises(SingularPreconditionerError, match="pivot"):
        ilu0_factor(a)


def test_missing_diagonal_raises():
    a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
    with pytest.raises(SingularPreconditionerError, match="diagonal"):
        ilu0_factor(a)


def test_floating_subdomain_singular():
    """Section 3.2.3: a subdomain with no Dirichlet support 'floats' — its
    local stiffness is singular and local ILU breaks down."""
    mesh = structured_quad_mesh(2, 2)
    mat = Material(E=100.0, nu=0.3)
    # Assemble only the right column of elements; its matrix restricted to
    # its own DOFs has the rigid-body null space -> singular.
    k = assemble_matrix(mesh, mat, element_subset=np.array([1, 3]))
    csr = k.tocsr()
    touched = np.unique(np.concatenate([csr.tocoo().rows]))
    local = csr.submatrix(touched, touched)
    with pytest.raises(SingularPreconditionerError):
        ilu0_factor(local)


def test_nonsquare_rejected():
    with pytest.raises(ValueError):
        ilu0_factor(CSRMatrix.from_dense(np.ones((2, 3))))


def test_vector_length_checked(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    ilu = ILU0Preconditioner(ss.a)
    with pytest.raises(ValueError):
        ilu.apply(np.zeros(3))


def test_name(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    assert ILU0Preconditioner(ss.a).name == "ILU(0)"


# ----------------------------------------------------------------------
# Property tests: random seeded CSR patterns vs the dense LU reference
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st


def _random_spd_ish(seed, n, density):
    """Seeded random diagonally-dominant matrix with a full diagonal —
    every leading pivot is safely nonzero, so ILU(0) always factors."""
    rng = np.random.default_rng(seed)
    d = rng.standard_normal((n, n))
    d[rng.random((n, n)) > density] = 0.0
    d += (n + np.abs(d).sum(axis=1)) * np.eye(n)
    return d


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=2, max_value=14),
    density=st.floats(min_value=0.1, max_value=1.0),
)
def test_factor_exact_on_pattern(seed, n, density):
    """The defining ILU(0) property: L U reproduces A **exactly on A's
    sparsity pattern** (the residual A - L U lives entirely on fill
    positions outside the pattern)."""
    dense = _random_spd_ish(seed, n, density)
    a = CSRMatrix.from_dense(dense, tol=-1.0)
    lu = ilu0_factor(a)
    f = lu.toarray()
    low = np.tril(f, -1) + np.eye(n)
    up = np.triu(f)
    resid = dense - low @ up
    pattern = a.toarray() != 0.0
    pattern |= np.eye(n, dtype=bool)  # explicit zeros stored on the diag
    scale = np.abs(dense).max()
    assert np.abs(resid[pattern]).max() <= 1e-12 * scale


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=2, max_value=14),
    density=st.floats(min_value=0.1, max_value=1.0),
)
def test_apply_matches_dense_triangular_reference(seed, n, density):
    """``apply`` equals the dense forward/backward substitution through
    the same factor — the kernel dispatch adds nothing numerically."""
    dense = _random_spd_ish(seed, n, density)
    a = CSRMatrix.from_dense(dense, tol=-1.0)
    ilu = ILU0Preconditioner(a)
    f = ilu._lu.toarray()
    low = np.tril(f, -1) + np.eye(n)
    up = np.triu(f)
    v = np.random.default_rng(seed ^ 0xA5A5A5).standard_normal(n)
    ref = np.linalg.solve(up, np.linalg.solve(low, v))
    np.testing.assert_allclose(ilu.apply(v), ref, rtol=1e-11, atol=1e-11)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n=st.integers(min_value=2, max_value=10),
)
def test_full_pattern_apply_is_the_dense_lu_solve(seed, n):
    """With no zero entries there is no dropped fill: ILU(0) **is** LU
    and ``apply`` solves the system to roundoff."""
    dense = _random_spd_ish(seed, n, density=1.1)  # keep everything
    a = CSRMatrix.from_dense(dense, tol=-1.0)
    ilu = ILU0Preconditioner(a)
    v = np.random.default_rng(seed ^ 0x5A5A5A).standard_normal(n)
    x = ilu.apply(v)
    np.testing.assert_allclose(dense @ x, v, rtol=1e-8, atol=1e-8)
