"""Two-level coarse-space preconditioner: grammar, construction, parity.

Covers the contracts DESIGN.md states for :mod:`repro.precond.coarse`:

* the ``2l(...)`` spec grammar parses, round-trips, and rejects
  malformed input with errors that name the accepted grammar;
* the un-enriched coarse basis is a partition of unity (columns sum to
  the global ones vector) and the Galerkin operator it induces satisfies
  ``W E^-1 W^T (A W y) = W y``;
* at ``P = 1`` without enrichment the correction degenerates and the
  two-level solve is *bit-compatible* with its inner one-level solve;
* construction errors (EDD + bj-ilu0 inner, ``tr`` without component
  information, singular coarse operators) are clear ``ValueError``s.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.core.session import PreparedSystem
from repro.fem.cantilever import cantilever_problem
from repro.precond.coarse import (
    TwoLevelPreconditioner,
    TwoLevelSpec,
    _coarse_basis,
)
from repro.precond.spec import SPEC_GRAMMAR, make_preconditioner, spec_of


# ----------------------------------------------------------------------
# Spec grammar
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "spec,inner,mode,enrich",
    [
        ("2l(gls(7))", "gls(7)", "additive", False),
        ("2l(neumann(20),deflate)", "neumann(20)", "deflate", False),
        ("2l(gls(7),deflate,tr)", "gls(7)", "deflate", True),
        ("2l(gls(7),tr)", "gls(7)", "additive", True),
        ("2l(bj-ilu0,deflate)", "bj-ilu0", "deflate", False),
        ("2l(none,deflate)", "none", "deflate", False),
        ("2L(GLS(7),Deflate)", "gls(7)", "deflate", False),
    ],
)
def test_two_level_specs_parse(spec, inner, mode, enrich):
    parsed = make_preconditioner(spec)
    assert isinstance(parsed, TwoLevelSpec)
    assert parsed.inner_spec == inner
    assert parsed.mode == mode
    assert parsed.enrich is enrich


@pytest.mark.parametrize(
    "spec",
    ["2l(gls(7))", "2l(neumann(20),deflate)", "2l(gls(7),deflate,tr)",
     "2l(bj-ilu0,deflate)"],
)
def test_two_level_specs_roundtrip(spec):
    parsed = make_preconditioner(spec)
    assert parsed.spec == spec
    assert spec_of(parsed) == spec
    assert make_preconditioner(parsed.spec) == parsed


@pytest.mark.parametrize(
    "bad",
    [
        "gls(seven)",
        "gls(-1)",
        "2l()",
        "2l(gls(7),bogus)",
        "2l(gls(7),deflate,deflate)",
        "2l(gls(7),tr,tr)",
        "2l(2l(gls(7)))",
        "2l(frob(3))",
        "frob(3)",
    ],
)
def test_malformed_specs_raise_with_grammar(bad):
    with pytest.raises(ValueError) as exc:
        make_preconditioner(bad)
    assert SPEC_GRAMMAR in str(exc.value)


def test_non_string_spec_rejected():
    with pytest.raises(ValueError):
        make_preconditioner(42)


# ----------------------------------------------------------------------
# Coarse basis
# ----------------------------------------------------------------------
def test_unenriched_basis_is_partition_of_unity():
    # Two overlapping aggregates: DOFs 2 and 3 shared (multiplicity 2).
    dof_sets = [np.array([0, 1, 2, 3]), np.array([2, 3, 4, 5])]
    mult = np.array([1.0, 1.0, 2.0, 2.0, 1.0, 1.0])
    weights = [1.0 / mult[g] for g in dof_sets]
    w = _coarse_basis(6, dof_sets, weights, None, False)
    assert w.shape == (6, 2)
    np.testing.assert_allclose(w.sum(axis=1), np.ones(6))


def test_enriched_basis_splits_components_and_sums_to_one():
    dof_sets = [np.array([0, 1, 2, 3]), np.array([2, 3, 4, 5])]
    mult = np.array([1.0, 1.0, 2.0, 2.0, 1.0, 1.0])
    weights = [1.0 / mult[g] for g in dof_sets]
    components = np.array([0, 1, 0, 1, 0, 1])
    w = _coarse_basis(6, dof_sets, weights, components, True)
    assert w.shape == (6, 4)
    np.testing.assert_allclose(w.sum(axis=1), np.ones(6))
    # column (s, c) only touches component-c DOFs
    assert np.all(w[components == 1][:, 0] == 0)
    assert np.all(w[components == 0][:, 1] == 0)


def _prepared(mesh, parts, method, precond):
    return PreparedSystem.build(
        mesh, parts, SolverOptions(method=method, precond=precond)
    )


@pytest.mark.parametrize("method", ["edd-enhanced", "rdd"])
def test_galerkin_inverse_reproduces_coarse_vectors(method):
    """``W E^-1 W^T (A W y) = W y`` — the coarse correction inverts the
    operator exactly on the coarse space (this is what deflation relies
    on).  Checked through the real distributed matvec."""
    ps = _prepared(2, 4, method, "2l(none)")
    try:
        pc, system = ps.pc, ps.system
        assert isinstance(pc, TwoLevelPreconditioner)
        n, nc = system.n_global, pc.n_coarse
        # reconstruct the global coarse basis from the per-rank blocks
        w = np.zeros((n, nc))
        if method == "rdd":
            for o, blk in zip(system.own, pc._wg_parts):
                w[o] = blk
        else:
            for g, blk in zip(system.submap.l2g, pc._wg_parts):
                w[g] = blk  # consistent copies: assignment is well-defined
        rng = np.random.default_rng(7)
        y = rng.standard_normal(nc)
        wy = w @ y
        # global A action through the distributed system
        if method == "rdd":
            av_parts = system.matvec([wy[o] for o in system.own])
            av = np.zeros(n)
            for o, p in zip(system.own, av_parts):
                av[o] = p
        else:
            av = system.to_global_vector(
                system.matvec_assembled(system.distribute(wy))
            )
        # inner "none", additive: apply(v) = v + W E^-1 W^T v
        q = pc.apply(av) - av
        np.testing.assert_allclose(q, wy, rtol=1e-9, atol=1e-12)
    finally:
        ps.close()


# ----------------------------------------------------------------------
# P = 1 degeneration
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "method,inner",
    [("edd-enhanced", "gls(3)"), ("rdd", "gls(3)"), ("rdd", "bj-ilu0")],
)
def test_p1_two_level_bit_compatible_with_one_level(method, inner):
    problem = cantilever_problem(2)
    one = solve_cantilever(
        problem, n_parts=1,
        options=SolverOptions(method=method, precond=inner),
    )
    two = solve_cantilever(
        problem, n_parts=1,
        options=SolverOptions(method=method, precond=f"2l({inner},deflate)"),
    )
    np.testing.assert_array_equal(one.result.x, two.result.x)
    assert one.result.iterations == two.result.iterations
    assert one.result.residual_history == two.result.residual_history
    assert one.stats.to_dict() == two.stats.to_dict()


def test_p1_enriched_coarse_space_is_not_trivial():
    ps = _prepared(2, 1, "edd-enhanced", "2l(gls(3),deflate,tr)")
    try:
        pc = ps.pc
        assert isinstance(pc, TwoLevelPreconditioner)
        # one aggregate split into dofs_per_node translation columns
        assert pc.n_coarse == 2
        assert not pc._trivial
    finally:
        ps.close()


# ----------------------------------------------------------------------
# Construction errors
# ----------------------------------------------------------------------
def test_bj_ilu0_inner_rejected_on_edd():
    with pytest.raises(ValueError, match="rdd"):
        ps = _prepared(2, 2, "edd-enhanced", "2l(bj-ilu0)")
        ps.close()


def test_enrichment_needs_components():
    ps = _prepared(2, 2, "edd-enhanced", "gls(3)")
    try:
        with pytest.raises(ValueError, match="components"):
            TwoLevelPreconditioner.build(
                ps.system, TwoLevelSpec("gls(3)", enrich=True)
            )
    finally:
        ps.close()


def test_session_supplies_components_for_enrichment():
    ps = _prepared(2, 4, "edd-enhanced", "2l(gls(3),deflate,tr)")
    try:
        assert ps.pc.n_coarse == 8  # 4 aggregates x 2 components
        assert ps.pc_name.startswith("2L(")
        summary = ps.solve()
        assert summary.result.converged
    finally:
        ps.close()


# ----------------------------------------------------------------------
# Naming / reporting
# ----------------------------------------------------------------------
def test_name_and_spec_surface_mode_and_enrichment():
    ps = _prepared(2, 4, "edd-enhanced", "2l(gls(3),deflate,tr)")
    try:
        pc = ps.pc
        assert pc.name == "2L(GLS(3),deflate,tr,C=8)"
        assert pc.spec == "2l(gls(3),deflate,tr)"
        assert make_preconditioner(pc.spec) == pc._spec
    finally:
        ps.close()
