"""Chebyshev polynomial preconditioner."""

import numpy as np
import pytest

from repro.precond.chebyshev import ChebyshevPolynomial
from repro.spectrum.intervals import SpectrumIntervals


def test_residual_equioscillates_on_interval():
    """The Chebyshev residual attains its max with alternating signs."""
    th = SpectrumIntervals.single(0.2, 1.0)
    c = ChebyshevPolynomial(th, 5)
    lam = np.linspace(0.2, 1.0, 2001)
    r = c.residual(lam)
    peak = np.max(np.abs(r))
    # residual bounded by 1/T_m(center) and hits it at both ends
    assert np.isclose(np.abs(r[0]), peak, rtol=1e-6)
    assert np.isclose(np.abs(r[-1]), peak, rtol=1e-6)


def test_minimax_beats_gls_sup_norm():
    """Chebyshev minimizes the sup norm, GLS the weighted L2 norm — so on
    the sup norm metric Chebyshev must win (or tie) at equal degree."""
    from repro.precond.gls import GLSPolynomial

    th = SpectrumIntervals.single(0.1, 1.0)
    m = 8
    grid = th.sample(500)
    cheb = np.max(np.abs(ChebyshevPolynomial(th, m).residual(grid)))
    gls = np.max(np.abs(GLSPolynomial(th, m).residual(grid)))
    assert cheb <= gls * (1 + 1e-9)


def test_matvec_count_is_degree():
    calls = []

    def mv(v):
        calls.append(1)
        return 0.3 * v

    ChebyshevPolynomial(SpectrumIntervals.single(0.1, 1.0), 6).apply_linear(
        mv, np.ones(3)
    )
    assert len(calls) == 6


def test_power_coefficients_consistent():
    c = ChebyshevPolynomial(SpectrumIntervals.single(0.2, 0.9), 5)
    lam = np.linspace(0.2, 0.9, 9)
    assert np.allclose(
        np.polynomial.Polynomial(c.power_coefficients())(lam), c.evaluate(lam)
    )


def test_union_rejected():
    with pytest.raises(ValueError, match="single interval"):
        ChebyshevPolynomial(SpectrumIntervals([(-2, -1), (1, 2)]), 4)


def test_nonpositive_interval_rejected():
    with pytest.raises(ValueError, match="positive"):
        ChebyshevPolynomial(SpectrumIntervals([(-2.0, -1.0)]), 4)


def test_residual_shrinks_with_degree():
    th = SpectrumIntervals.single(0.15, 1.0)
    grid = th.sample(300)
    sups = [
        np.max(np.abs(ChebyshevPolynomial(th, m).residual(grid)))
        for m in (2, 4, 8, 12)
    ]
    assert all(b < a for a, b in zip(sups, sups[1:]))
