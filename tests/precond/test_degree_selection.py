"""A-priori degree selection."""

import numpy as np
import pytest

from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.fem.cantilever import cantilever_problem
from repro.parallel.machine import SGI_ORIGIN, modeled_time
from repro.partition.element_partition import ElementPartition
from repro.precond.degree_selection import (
    choose_degree,
    choose_degree_for_system,
    estimate_degree_cost,
)
from repro.precond.gls import GLSPolynomial
from repro.spectrum.intervals import SpectrumIntervals

# A Lanczos-informed window (matching Mesh2-like spectra after scaling);
# the universal (1e-6, 1) window works too but its huge kappa makes every
# degree look iteration-starved and the optimum runs off to high degrees.
THETA = SpectrumIntervals.single(2e-3, 0.95)
ARGS = dict(
    tol=1e-6,
    machine=SGI_ORIGIN,
    nnz_per_rank=5_000,
    n_per_rank=400,
    exchange_words=60,
    n_neighbors=2,
    n_ranks=8,
)


def test_iterations_decrease_with_degree():
    ests = [estimate_degree_cost(THETA, m, **ARGS) for m in (1, 4, 8)]
    iters = [e.iterations for e in ests]
    assert iters[0] > iters[1] > iters[2]
    kappas = [e.kappa for e in ests]
    assert kappas[0] > kappas[1] > kappas[2]


def test_choose_degree_interior_optimum():
    """The predicted optimum is interior: neither degree 1 (too many
    iterations) nor a huge degree (iteration count saturates while cost
    per iteration keeps growing)."""
    best, ests = choose_degree(THETA, candidates=tuple(range(1, 31)), **ARGS)
    assert 3 < best < 28
    by_degree = {e.degree: e.time for e in ests}
    assert by_degree[30] > by_degree[best]
    assert by_degree[1] > by_degree[best]


def test_prediction_ranks_real_runs():
    """The predictive ranking must agree with measured modeled times on a
    real system for well-separated candidates."""
    p = cantilever_problem(2)
    part = ElementPartition.build(p.mesh, 4)
    f_full = p.bc.expand(p.load)

    measured = {}
    for m in (1, 7):
        system = build_edd_system(p.mesh, p.material, p.bc, part, f_full)
        res = edd_fgmres(
            system, GLSPolynomial(THETA, m), tol=1e-6, max_iter=4000
        )
        assert res.converged
        measured[m] = modeled_time(system.comm.stats, SGI_ORIGIN)

    system = build_edd_system(p.mesh, p.material, p.bc, part, f_full)
    _, ests = choose_degree_for_system(
        system, SGI_ORIGIN, tol=1e-6, candidates=(1, 7)
    )
    predicted = {e.degree: e.time for e in ests}
    # same winner predicted and measured
    assert (predicted[1] < predicted[7]) == (measured[1] < measured[7])


def test_chosen_degree_close_to_empirical_best():
    """On Mesh2/P=4 the empirical best degree among candidates and the
    predicted best give modeled times within 2x of each other."""
    p = cantilever_problem(2)
    part = ElementPartition.build(p.mesh, 4)
    f_full = p.bc.expand(p.load)
    candidates = (2, 5, 8)

    times = {}
    for m in candidates:
        system = build_edd_system(p.mesh, p.material, p.bc, part, f_full)
        res = edd_fgmres(
            system, GLSPolynomial(THETA, m), tol=1e-6, max_iter=4000
        )
        assert res.converged
        times[m] = modeled_time(system.comm.stats, SGI_ORIGIN)

    system = build_edd_system(p.mesh, p.material, p.bc, part, f_full)
    best, _ = choose_degree_for_system(
        system, SGI_ORIGIN, tol=1e-6, candidates=candidates
    )
    assert times[best] <= 2.0 * min(times.values())
