"""Generalized least-squares polynomial preconditioner (Section 2.1.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.precond.gls import GLSPolynomial, _discrete_measure, _stieltjes
from repro.precond.scaling import scale_system
from repro.spectrum.intervals import SpectrumIntervals


def test_stieltjes_orthonormality():
    """The recurrence generates polynomials orthonormal under the measure."""
    th = SpectrumIntervals.single(0.1, 1.0)
    nodes, weights = _discrete_measure(th, 64)
    m = 6
    alphas, betas = _stieltjes(nodes, weights, m)
    # Rebuild the polynomial table and check Gram matrix == identity.
    table = [np.ones_like(nodes) / betas[0]]
    for i in range(m):
        nxt = (nodes - alphas[i]) * table[-1]
        if i > 0:
            nxt = nxt - betas[i] * table[-2]
        table.append(nxt / betas[i + 1])
    gram = np.array(
        [[np.sum(weights * p * q) for q in table] for p in table]
    )
    assert np.allclose(gram, np.eye(m + 1), atol=1e-8)


def test_residual_decreases_with_degree():
    sups = [
        GLSPolynomial.unit_interval(m, eps=0.01).residual_sup_norm()
        for m in (1, 3, 7, 10, 20)
    ]
    assert all(b < a for a, b in zip(sups, sups[1:]))


def test_residual_small_on_theta_large_degree():
    g = GLSPolynomial(SpectrumIntervals.single(0.1, 2.5), 16)
    assert g.residual_sup_norm() < 0.05


def test_indefinite_union_fig2b():
    """Theta = (-4,-1) u (7,10): residual small on Theta, and P changes the
    sign structure so lambda*P(lambda) > 0 on both sides."""
    th = SpectrumIntervals([(-4, -1), (7, 10)])
    g = GLSPolynomial(th, 10)
    grid = th.sample(300)
    resid = g.residual(grid)
    assert np.max(np.abs(resid)) < 0.5
    assert np.all(grid * g.evaluate(grid) > 0.5)


def test_four_interval_union_fig2c():
    th = SpectrumIntervals([(-6.0, -4.1), (-3.9, -0.1), (0.1, 5.9), (6.1, 8.0)])
    g = GLSPolynomial(th, 14)
    # The window nearly touches 0 where the residual is pinned at 1, so the
    # sup norm stays near 1 — but the weighted-average residual must beat
    # the trivial P=0 polynomial decisively.
    assert g.residual_sup_norm() < 1.2
    grid = th.sample(200)
    assert np.mean(np.abs(g.residual(grid))) < 0.6


def test_apply_matches_eigendecomposition(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    a = ss.a.toarray()
    evals, evecs = np.linalg.eigh(a)
    g = GLSPolynomial(
        SpectrumIntervals.single(evals.min() * 0.9, evals.max() * 1.1),
        7,
        matvec=ss.a.matvec,
    )
    v = np.random.default_rng(3).standard_normal(len(ss.b))
    z = g.apply(v)
    z_ref = evecs @ (g.evaluate(evals) * (evecs.T @ v))
    assert np.allclose(z, z_ref, atol=1e-10)


def test_preconditioned_condition_number_improves(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    evals = np.linalg.eigvalsh(ss.a.toarray())
    g = GLSPolynomial(
        SpectrumIntervals.single(evals.min() * 0.9, evals.max() * 1.1), 7
    )
    pa = evals * g.evaluate(evals)
    assert (pa > 0).all()  # preconditioned operator stays definite
    assert pa.max() / pa.min() < 0.2 * (evals.max() / evals.min())


def test_matvec_count_is_degree():
    calls = []

    def mv(v):
        calls.append(1)
        return 0.5 * v

    g = GLSPolynomial.unit_interval(9, eps=0.01)
    g.apply_linear(mv, np.ones(4))
    assert len(calls) == 9


def test_power_coefficients_match_evaluate():
    g = GLSPolynomial.unit_interval(6, eps=0.05)
    coef = g.power_coefficients()
    lam = np.linspace(0.1, 0.9, 11)
    assert np.allclose(np.polynomial.Polynomial(coef)(lam), g.evaluate(lam))


def test_quadrature_count_validation():
    with pytest.raises(ValueError, match="n_quad"):
        GLSPolynomial(SpectrumIntervals.single(0.1, 1.0), 5, n_quad=4)


def test_name():
    assert GLSPolynomial.unit_interval(7).name == "GLS(7)"


def test_theta_sensitivity_fig10():
    """Fig. 10's point: a Theta matching the true spectrum beats the naive
    (0, 1) window at equal degree."""
    lam = np.linspace(0.02, 0.45, 60)  # "true" spectrum well inside (0,1)
    naive = GLSPolynomial.unit_interval(10, eps=1e-6)
    sharp = GLSPolynomial(SpectrumIntervals.single(0.015, 0.5), 10)
    r_naive = np.max(np.abs(naive.residual(lam)))
    r_sharp = np.max(np.abs(sharp.residual(lam)))
    assert r_sharp < r_naive


@settings(max_examples=20, deadline=None)
@given(
    lo=st.floats(0.01, 0.5),
    width=st.floats(0.2, 2.0),
    m=st.integers(1, 12),
)
def test_least_squares_optimality_property(lo, width, m):
    """Property: the GLS residual has smaller weighted L2 norm than simple
    competitor polynomials of the same degree (here: scaled Neumann)."""
    th = SpectrumIntervals.single(lo, lo + width)
    nodes, weights = _discrete_measure(th, 80)
    g = GLSPolynomial(th, m)
    r_gls = g.residual(nodes)
    norm_gls = np.sum(weights * r_gls**2)
    from repro.precond.neumann import NeumannPolynomial

    nm = NeumannPolynomial.for_interval(th, m)
    r_nm = nm.residual(nodes)
    norm_nm = np.sum(weights * r_nm**2)
    assert norm_gls <= norm_nm + 1e-12
