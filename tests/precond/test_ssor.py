"""SSOR preconditioner."""

import numpy as np
import pytest

from repro.precond.base import SingularPreconditionerError
from repro.precond.scaling import scale_system
from repro.precond.ssor import SSORPreconditioner
from repro.solvers.fgmres import fgmres
from repro.sparse.csr import CSRMatrix


def _dense_reference(a_dense, omega, v):
    """Direct evaluation of z = w(2-w) (D+wU)^{-1} D (D+wL)^{-1} v."""
    d = np.diag(np.diag(a_dense))
    l = np.tril(a_dense, -1)
    u = np.triu(a_dense, 1)
    y = np.linalg.solve(d + omega * l, v)
    return omega * (2 - omega) * np.linalg.solve(d + omega * u, d @ y)


@pytest.mark.parametrize("omega", [0.8, 1.0, 1.4])
def test_apply_matches_dense_formula(omega):
    rng = np.random.default_rng(0)
    a_dense = rng.standard_normal((8, 8))
    a_dense = a_dense @ a_dense.T + 8 * np.eye(8)
    a = CSRMatrix.from_dense(a_dense, tol=-1.0)
    v = rng.standard_normal(8)
    p = SSORPreconditioner(a, omega=omega)
    assert np.allclose(p.apply(v), _dense_reference(a_dense, omega, v), atol=1e-10)


def test_symmetric_gauss_seidel_at_omega_one(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    p = SSORPreconditioner(ss.a, omega=1.0)
    z = p.apply(ss.b)
    r = ss.b - ss.a.matvec(z)
    assert np.linalg.norm(r) < np.linalg.norm(ss.b)


def test_preconditioning_reduces_fgmres_iterations(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    plain = fgmres(ss.a.matvec, ss.b, tol=1e-6)
    p = SSORPreconditioner(ss.a)
    pre = fgmres(ss.a.matvec, ss.b, p.apply, tol=1e-6)
    assert pre.converged
    assert pre.iterations < plain.iterations


def test_preconditioner_symmetric_for_symmetric_matrix(tiny_problem):
    """SSOR of a symmetric matrix is symmetric (needed for CG use)."""
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    p = SSORPreconditioner(ss.a)
    rng = np.random.default_rng(1)
    x = rng.standard_normal(ss.a.shape[0])
    y = rng.standard_normal(ss.a.shape[0])
    assert np.isclose(x @ p.apply(y), y @ p.apply(x), rtol=1e-10)


def test_invalid_omega():
    a = CSRMatrix.eye(3)
    for omega in (0.0, 2.0, -1.0):
        with pytest.raises(ValueError):
            SSORPreconditioner(a, omega=omega)


def test_zero_diagonal_rejected():
    a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 1.0]]))
    with pytest.raises(SingularPreconditionerError):
        SSORPreconditioner(a)


def test_vector_length_checked():
    p = SSORPreconditioner(CSRMatrix.eye(3))
    with pytest.raises(ValueError):
        p.apply(np.zeros(2))


def test_name():
    assert SSORPreconditioner(CSRMatrix.eye(2), omega=1.5).name == "SSOR(1.5)"
