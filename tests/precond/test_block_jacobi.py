"""Block-Jacobi (additive-Schwarz) preconditioner for RDD."""

import numpy as np
import pytest

from repro.core.rdd import build_rdd_system, rdd_fgmres
from repro.partition.node_partition import NodePartition
from repro.precond.block_jacobi import BlockJacobiILU
from repro.precond.gls import GLSPolynomial


def _system(problem, p):
    part = NodePartition.build(problem.mesh, p)
    return build_rdd_system(
        problem.mesh, problem.bc, part, problem.stiffness, problem.load
    )


def test_single_block_is_plain_ilu(tiny_problem):
    """With P=1 block Jacobi degenerates to global ILU(0)."""
    from repro.precond.ilu import ILU0Preconditioner
    from repro.precond.scaling import norm1_scaling

    system = _system(tiny_problem, 1)
    bj = BlockJacobiILU(system)
    d = norm1_scaling(tiny_problem.stiffness)
    a = tiny_problem.stiffness.scale_rows(d).scale_cols(d)
    ilu = ILU0Preconditioner(a)
    v = np.random.default_rng(0).standard_normal(system.n_global)
    assert np.allclose(bj.apply(v), ilu.apply(v), atol=1e-12)


def test_blocks_never_singular_for_spd(tiny_problem):
    """Principal submatrices of SPD matrices are SPD: block Jacobi factors
    cleanly regardless of where the partition cuts (unlike EDD's local
    matrices, see test_floating_subdomain)."""
    for p in (2, 3, 4):
        BlockJacobiILU(_system(tiny_problem, p))  # must not raise


def test_rdd_solve_with_block_jacobi(tiny_problem):
    system = _system(tiny_problem, 3)
    res = rdd_fgmres(system, BlockJacobiILU(system), tol=1e-8)
    assert res.converged
    u_ref = np.linalg.solve(tiny_problem.stiffness.toarray(), tiny_problem.load)
    assert np.allclose(res.x, u_ref, rtol=1e-5, atol=1e-10)


def test_block_jacobi_adds_no_communication(tiny_problem):
    """The preconditioner itself is communication-free: per-iteration halo
    count equals the unpreconditioned solver's (1 per matvec)."""
    system = _system(tiny_problem, 2)
    snap = system.comm.stats.snapshot()
    res = rdd_fgmres(system, BlockJacobiILU(system), tol=1e-8, restart=100)
    delta = system.comm.stats.delta(snap)
    expected = 1 * res.iterations + 2 * res.restarts  # matvec halos only
    assert delta.ranks[0].nbr_messages == pytest.approx(expected, abs=2)


def test_degrades_with_more_blocks(mesh2_problem):
    """Classic block-Jacobi behaviour: more blocks -> weaker coupling ->
    more iterations (while GLS is P-independent)."""
    iters = []
    for p in (1, 4, 16):
        system = _system(mesh2_problem, p)
        res = rdd_fgmres(system, BlockJacobiILU(system), tol=1e-6)
        assert res.converged
        iters.append(res.iterations)
    assert iters[0] < iters[-1]
    g_iters = []
    for p in (1, 16):
        system = _system(mesh2_problem, p)
        res = rdd_fgmres(
            system, GLSPolynomial.unit_interval(7, eps=1e-6), tol=1e-6
        )
        g_iters.append(res.iterations)
    assert g_iters[0] == g_iters[1]


def test_name(tiny_problem):
    assert BlockJacobiILU(_system(tiny_problem, 2)).name == "BJ-ILU0(P=2)"
