"""Jacobi preconditioner."""

import numpy as np
import pytest

from repro.precond.base import (
    IdentityPreconditioner,
    SingularPreconditionerError,
)
from repro.precond.diagonal import JacobiPreconditioner
from repro.sparse.csr import CSRMatrix


def test_applies_inverse_diagonal():
    a = CSRMatrix.from_dense(np.array([[2.0, 1.0], [1.0, 4.0]]))
    p = JacobiPreconditioner(a)
    assert np.allclose(p.apply(np.array([2.0, 4.0])), [1.0, 1.0])


def test_zero_diagonal_rejected():
    a = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 2.0]]))
    with pytest.raises(SingularPreconditionerError):
        JacobiPreconditioner(a)


def test_length_checked():
    a = CSRMatrix.eye(3)
    with pytest.raises(ValueError):
        JacobiPreconditioner(a).apply(np.zeros(2))


def test_identity_preconditioner_copies():
    p = IdentityPreconditioner()
    v = np.array([1.0, 2.0])
    z = p.apply(v)
    assert np.array_equal(z, v)
    z[0] = 99.0
    assert v[0] == 1.0
    assert p.name == "I"


def test_as_operator():
    a = CSRMatrix.eye(2)
    op = JacobiPreconditioner(a).as_operator()
    assert np.allclose(op(np.array([3.0, 4.0])), [3.0, 4.0])
