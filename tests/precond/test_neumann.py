"""Neumann series polynomial preconditioner."""

import numpy as np
import pytest

from repro.precond.neumann import NeumannPolynomial
from repro.precond.scaling import scale_system
from repro.spectrum.intervals import SpectrumIntervals


def test_degree_zero_is_scaled_identity():
    p = NeumannPolynomial(0, omega=0.5)
    v = np.array([2.0, 4.0])
    z = p.apply_linear(lambda x: x, v)
    assert np.allclose(z, 0.5 * v)


def test_truncated_geometric_series_explicit():
    """For scalar a: P_m(a) = omega * sum (1 - omega a)^i."""
    p = NeumannPolynomial(4, omega=0.7)
    a = 0.9
    expected = 0.7 * sum((1 - 0.7 * a) ** i for i in range(5))
    z = p.apply_linear(lambda x: a * x, np.array([1.0]))
    assert np.allclose(z, expected)


def test_converges_to_inverse_with_degree():
    """Residual polynomial shrinks as the degree grows (rho(G) < 1)."""
    lam = np.linspace(0.2, 0.9, 30)
    errs = []
    for m in (2, 5, 10, 20):
        p = NeumannPolynomial(m)
        errs.append(np.max(np.abs(p.residual(lam))))
    assert all(e2 < e1 for e1, e2 in zip(errs, errs[1:]))


def test_residual_is_geometric_tail():
    """1 - lambda P_m(lambda) == (1 - omega lambda)^{m+1} exactly."""
    p = NeumannPolynomial(6, omega=0.8)
    lam = np.linspace(0.05, 1.2, 17)
    assert np.allclose(p.residual(lam), (1 - 0.8 * lam) ** 7, atol=1e-12)


def test_power_coefficients_match_evaluate():
    p = NeumannPolynomial(5, omega=1.3)
    coef = p.power_coefficients()
    lam = np.linspace(0.1, 0.9, 7)
    horner = np.polynomial.Polynomial(coef)(lam)
    assert np.allclose(horner, p.evaluate(lam))


def test_matvec_count():
    calls = []

    def counting_matvec(v):
        calls.append(1)
        return 0.5 * v

    p = NeumannPolynomial(7)
    p.apply_linear(counting_matvec, np.ones(3))
    assert len(calls) == 7


def test_for_interval_picks_midpoint_omega():
    th = SpectrumIntervals.single(0.2, 1.0)
    p = NeumannPolynomial.for_interval(th, 5)
    assert p.omega == pytest.approx(2.0 / 1.2)


def test_for_interval_rejects_union_and_indefinite():
    with pytest.raises(ValueError):
        NeumannPolynomial.for_interval(
            SpectrumIntervals([(-2, -1), (1, 2)]), 3
        )


def test_invalid_parameters():
    with pytest.raises(ValueError):
        NeumannPolynomial(-1)
    with pytest.raises(ValueError):
        NeumannPolynomial(3, omega=0.0)


def test_preconditions_fem_system(tiny_problem):
    """Applying Neumann(10) reduces the residual of one Richardson step."""
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    p = NeumannPolynomial(10, matvec=ss.a.matvec)
    z = p.apply(ss.b)
    r = ss.b - ss.a.matvec(z)
    assert np.linalg.norm(r) < 0.8 * np.linalg.norm(ss.b)


def test_apply_requires_bound_matvec():
    p = NeumannPolynomial(2)
    with pytest.raises(RuntimeError):
        p.apply(np.ones(2))


def test_name():
    assert NeumannPolynomial(20).name == "Neum(20)"
