"""Classical least-squares (Jacobi-weight) polynomial preconditioner."""

import numpy as np
import pytest

from repro.precond.gls import GLSPolynomial
from repro.precond.least_squares import LeastSquaresPolynomial
from repro.precond.scaling import scale_system
from repro.solvers.fgmres import fgmres
from repro.spectrum.intervals import SpectrumIntervals

THETA = SpectrumIntervals.single(1e-4, 1.0)


def test_residual_shrinks_with_degree():
    grid = THETA.sample(300)
    sups = []
    for m in (2, 5, 9, 14):
        p = LeastSquaresPolynomial(THETA, m)
        sups.append(np.max(np.abs(p.residual(grid))))
    assert all(b < a for a, b in zip(sups, sups[1:]))


def test_union_rejected():
    with pytest.raises(ValueError, match="single interval"):
        LeastSquaresPolynomial(SpectrumIntervals([(-2, -1), (1, 2)]), 4)


def test_invalid_jacobi_exponents():
    with pytest.raises(ValueError):
        LeastSquaresPolynomial(THETA, 3, alpha=-1.5)


def test_matvec_count():
    calls = []
    p = LeastSquaresPolynomial(THETA, 6)
    p.apply_linear(lambda v: (calls.append(1), 0.5 * v)[1], np.ones(3))
    assert len(calls) == 6


def test_power_coefficients_match_evaluate():
    p = LeastSquaresPolynomial(THETA, 5)
    lam = np.linspace(0.05, 0.9, 9)
    assert np.allclose(
        np.polynomial.Polynomial(p.power_coefficients())(lam), p.evaluate(lam)
    )


def test_accelerates_fgmres(mesh2_problem):
    ss = scale_system(mesh2_problem.stiffness, mesh2_problem.load)
    mv = ss.a.matvec
    plain = fgmres(mv, ss.b, tol=1e-6)
    p = LeastSquaresPolynomial(THETA, 7)
    pre = fgmres(mv, ss.b, lambda v: p.apply_linear(mv, v), tol=1e-6)
    assert pre.converged
    assert pre.iterations < plain.iterations / 3


def test_comparable_to_gls_on_single_interval(mesh2_problem):
    """On its home turf (one interval) LS is in GLS's ballpark; GLS's
    advantage is generality, not single-interval supremacy."""
    ss = scale_system(mesh2_problem.stiffness, mesh2_problem.load)
    mv = ss.a.matvec
    m = 7
    ls = LeastSquaresPolynomial(THETA, m)
    gls = GLSPolynomial(THETA, m)
    it_ls = fgmres(mv, ss.b, lambda v: ls.apply_linear(mv, v), tol=1e-6).iterations
    it_gls = fgmres(
        mv, ss.b, lambda v: gls.apply_linear(mv, v), tol=1e-6
    ).iterations
    assert abs(it_ls - it_gls) <= max(3, 0.5 * it_gls)


def test_jacobi_weight_emphasizes_small_lambda():
    """beta = -1/2 pushes weight toward lambda -> 0, so the LS residual is
    smaller near zero than an unweighted (Chebyshev-per-interval GLS)
    residual of equal degree."""
    m = 8
    ls = LeastSquaresPolynomial(THETA, m)
    gls = GLSPolynomial(THETA, m)
    lam_small = np.linspace(2e-4, 2e-2, 50)
    r_ls = np.abs(ls.residual(lam_small)).mean()
    r_gls = np.abs(gls.residual(lam_small)).mean()
    assert r_ls <= r_gls * 1.05


def test_name():
    assert LeastSquaresPolynomial(THETA, 7).name == "LS(7)"
