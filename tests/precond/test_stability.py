"""Eq. 24 stability bound and the Fig. 3 blow-up."""

import numpy as np
import pytest

from repro.precond.gls import GLSPolynomial
from repro.precond.neumann import NeumannPolynomial
from repro.precond.stability import coefficient_error_bound, stability_curve
from repro.spectrum.intervals import SpectrumIntervals


def test_bound_formula():
    p = NeumannPolynomial(3, omega=1.0)
    coef = p.power_coefficients()
    eps = 1e-16
    expected = 3 * eps * np.sum(np.abs(coef))
    assert coefficient_error_bound(p, eps) == pytest.approx(expected)


def test_gls_bound_explodes_with_degree_fig3():
    """Fig. 3: on Theta = (0, 1) the GLS coefficient sum grows explosively;
    the paper's conclusion is to keep m below ~10."""
    th = SpectrumIntervals.single(1e-6, 1.0)
    degrees = [2, 6, 10, 14, 18]
    curve = stability_curve(lambda m: GLSPolynomial(th, m), degrees)
    assert np.all(np.diff(curve) > 0)
    assert curve[-1] / curve[0] > 1e4  # explosive growth


def test_union_interval_worse_than_single_fig3():
    """Fig. 3's second curve: an indefinite union amplifies the blow-up."""
    single = SpectrumIntervals.single(1e-6, 1.0)
    union = SpectrumIntervals([(-4, -1), (7, 10)])
    m = 10
    b_single = coefficient_error_bound(GLSPolynomial(single, m))
    b_union = coefficient_error_bound(GLSPolynomial(union, m))
    assert b_union != b_single  # different windows, different conditioning


def test_neumann_bound_stays_tame():
    """Neumann on (0,1) with omega=1: coefficients are binomial sums; the
    bound grows but far slower than GLS's."""
    degrees = [2, 6, 10]
    neum = stability_curve(lambda m: NeumannPolynomial(m), degrees)
    gls = stability_curve(
        lambda m: GLSPolynomial(SpectrumIntervals.single(1e-6, 1.0), m),
        degrees,
    )
    assert neum[-1] < gls[-1]


def test_bound_zero_degree():
    p = NeumannPolynomial(0)
    assert coefficient_error_bound(p) == 0.0  # m = 0 prefactor
