"""Block sparse row matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.bsr import BSRMatrix
from repro.sparse.csr import CSRMatrix


def _fem_like_csr(seed=0):
    from repro.fem.cantilever import cantilever_problem

    return cantilever_problem(nx=4, ny=3).stiffness


def test_from_csr_roundtrip_values():
    a = _fem_like_csr()
    bsr = BSRMatrix.from_csr(a, 2)
    assert np.allclose(bsr.toarray(), a.toarray())


def test_matvec_matches_csr():
    a = _fem_like_csr()
    bsr = BSRMatrix.from_csr(a, 2)
    x = np.random.default_rng(0).standard_normal(a.shape[1])
    assert np.allclose(bsr.matvec(x), a.matvec(x), atol=1e-12)


def test_block_structure_compresses_indices():
    """FEM 2-dof-per-node matrices: block indices are ~4x fewer than
    scalar indices."""
    a = _fem_like_csr()
    bsr = BSRMatrix.from_csr(a, 2)
    assert len(bsr.indices) < a.nnz / 3


def test_dimension_must_divide():
    a = CSRMatrix.eye(5)
    with pytest.raises(ValueError):
        BSRMatrix.from_csr(a, 2)


def test_identity_blocks():
    a = CSRMatrix.eye(6)
    bsr = BSRMatrix.from_csr(a, 3)
    assert bsr.n_block_rows == 2
    assert len(bsr.blocks) == 2
    assert np.allclose(bsr.toarray(), np.eye(6))


def test_matvec_wrong_length():
    bsr = BSRMatrix.from_csr(CSRMatrix.eye(4), 2)
    with pytest.raises(ValueError):
        bsr.matvec(np.ones(3))


def test_nnz_counts_dense_blocks():
    a = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 0.0]]))
    bsr = BSRMatrix.from_csr(a, 2)
    assert bsr.nnz == 4  # whole block materialized


def test_validation():
    with pytest.raises(ValueError, match="blocks must have shape"):
        BSRMatrix(1, [0, 1], [0], np.zeros((1, 2, 3)))
    with pytest.raises(ValueError, match="indptr"):
        BSRMatrix(2, [0, 1], [0], np.zeros((1, 2, 2)))


@settings(max_examples=30, deadline=None)
@given(
    nb=st.integers(1, 6),
    b=st.integers(1, 3),
    seed=st.integers(0, 5000),
    density=st.floats(0.1, 1.0),
)
def test_matvec_property(nb, b, seed, density):
    """Property: BSR matvec == dense product for arbitrary block patterns."""
    rng = np.random.default_rng(seed)
    n = nb * b
    dense = rng.standard_normal((n, n)) * (rng.random((n, n)) < density)
    a = CSRMatrix.from_dense(dense)
    bsr = BSRMatrix.from_csr(a, b)
    x = rng.standard_normal(n)
    assert np.allclose(bsr.matvec(x), dense @ x, atol=1e-10)
    assert np.allclose(bsr.toarray(), dense, atol=1e-12)
