"""Kernel-layer correctness edges and backend parity.

The backends of ``repro.sparse.kernels`` must be interchangeable: every
registered backend answers matvec / rmatvec / SpMM identically (to
roundoff) on matrices with empty rows, empty columns, and explicit zeros,
and the ``out=`` contract (full overwrite, no aliasing) holds everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import CSRMatrix, scaled_matvec, spmm_dense
from repro.sparse.kernels import (
    accepts_out,
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)

BACKENDS = available_backends()


def _random_csr(rng, n, m, density=0.2):
    d = rng.random((n, m))
    d[d > density] = 0.0
    return CSRMatrix.from_dense(d), d


@pytest.fixture
def rng():
    return np.random.default_rng(2024)


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
def test_numpy_backend_always_available():
    assert "numpy" in BACKENDS


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        set_backend("fortran77")


def test_use_backend_restores_previous():
    before = get_backend()
    with use_backend("numpy"):
        assert get_backend().name == "numpy"
    assert get_backend() is before


def test_accepts_out_detection():
    a = CSRMatrix.eye(3)
    assert accepts_out(a.matvec)
    assert accepts_out(a.rmatvec)
    assert not accepts_out(lambda x: x)

    def plain(x):
        return x

    assert not accepts_out(plain)


# ----------------------------------------------------------------------
# Correctness edges, per backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_matvec_empty_rows(backend, rng):
    d = np.zeros((6, 4))
    d[0, 1] = 2.0
    d[4, 3] = -1.5
    a = CSRMatrix.from_dense(d)
    x = rng.standard_normal(4)
    with use_backend(backend):
        assert np.allclose(a.matvec(x), d @ x)
        out = np.full(6, 99.0)  # stale values must be fully overwritten
        a.matvec(x, out=out)
        assert np.allclose(out, d @ x)


@pytest.mark.parametrize("backend", BACKENDS)
def test_matvec_all_zero_matrix(backend):
    a = CSRMatrix.from_dense(np.zeros((3, 5)))
    with use_backend(backend):
        assert np.allclose(a.matvec(np.ones(5)), 0.0)
        assert np.allclose(a.rmatvec(np.ones(3)), 0.0)
        assert np.allclose(a.matmat(np.ones((5, 2))), 0.0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_out_aliasing_raises(backend):
    a = CSRMatrix.eye(4)
    x = np.ones(4)
    with use_backend(backend):
        with pytest.raises(ValueError, match="alias"):
            a.matvec(x, out=x)
        with pytest.raises(ValueError, match="alias"):
            a.rmatvec(x, out=x)
        X = np.ones((4, 2))
        with pytest.raises(ValueError, match="alias"):
            a.matmat(X, out=X)
        # overlapping views count as aliasing too
        buf = np.ones(8)
        with pytest.raises(ValueError, match="alias"):
            a.matvec(buf[:4], out=buf[2:6])


@pytest.mark.parametrize("backend", BACKENDS)
def test_spmm_equals_column_matvecs(backend, rng):
    a, d = _random_csr(rng, 17, 11)
    X = rng.standard_normal((11, 5))
    with use_backend(backend):
        got = a.matmat(X)
        cols = np.column_stack([a.matvec(X[:, j]) for j in range(5)])
    assert np.allclose(got, cols)
    assert np.allclose(got, d @ X)
    assert np.allclose(spmm_dense(a, X), d @ X)


@pytest.mark.parametrize("backend", BACKENDS)
def test_matmat_noncontiguous_out(backend, rng):
    a, d = _random_csr(rng, 9, 7)
    X = rng.standard_normal((7, 3))
    with use_backend(backend):
        big = np.zeros((9, 6))
        a.matmat(X, out=big[:, ::2])  # strided destination
    assert np.allclose(big[:, ::2], d @ X)
    assert np.allclose(big[:, 1::2], 0.0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_parity_matvec_rmatvec(backend, rng):
    a, d = _random_csr(rng, 31, 23)
    x = rng.standard_normal(23)
    y = rng.standard_normal(31)
    with use_backend(backend):
        assert np.allclose(a.matvec(x), d @ x, rtol=1e-12)
        assert np.allclose(a.rmatvec(y), d.T @ y, rtol=1e-12)


def test_all_backends_agree_bitwise_tolerance(rng):
    """Every available backend returns the same results on one matrix."""
    a, _ = _random_csr(rng, 40, 40, density=0.3)
    x = rng.standard_normal(40)
    X = rng.standard_normal((40, 3))
    refs = None
    for backend in BACKENDS:
        with use_backend(backend):
            got = (a.matvec(x), a.rmatvec(x), a.matmat(X))
        if refs is None:
            refs = got
        else:
            for g, r in zip(got, refs):
                assert np.allclose(g, r, rtol=1e-13, atol=1e-14)


# ----------------------------------------------------------------------
# Fused scaled matvec
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_scaled_matvec_matches_materialized(backend, rng):
    a, d = _random_csr(rng, 20, 20, density=0.4)
    dl = rng.random(20) + 0.5
    dr = rng.random(20) + 0.5
    x = rng.standard_normal(20)
    materialized = a.scale_sym(dl, dr)
    with use_backend(backend):
        fused = scaled_matvec(dl, a, dr, x)
        assert np.allclose(fused, materialized.matvec(x), rtol=1e-12)
        # workspace-reusing call gives the same answer
        out = np.empty(20)
        work = np.empty(20)
        scaled_matvec(dl, a, dr, x, out=out, work=work)
        assert np.allclose(out, fused)


def test_scale_sym_matches_chained_scaling(rng):
    a, _ = _random_csr(rng, 15, 12)
    dl = rng.random(15) + 0.1
    dr = rng.random(12) + 0.1
    one_pass = a.scale_sym(dl, dr)
    chained = a.scale_rows(dl).scale_cols(dr)
    assert np.allclose(one_pass.toarray(), chained.toarray())


# ----------------------------------------------------------------------
# Cached derived arrays (immutability contract)
# ----------------------------------------------------------------------
def test_row_indices_cached_and_correct(rng):
    a, d = _random_csr(rng, 12, 9)
    rows = a.row_indices()
    assert rows is a.row_indices()  # cached, same object
    expect = np.repeat(np.arange(12), np.diff(a.indptr))
    assert np.array_equal(rows, expect)


def test_matvec_results_stable_across_repeats(rng):
    """Workspace reuse must not leak state between calls."""
    a, d = _random_csr(rng, 25, 25, density=0.3)
    x1 = rng.standard_normal(25)
    x2 = rng.standard_normal(25)
    r1 = a.matvec(x1).copy()
    a.matvec(x2)
    assert np.allclose(a.matvec(x1), r1)


# ----------------------------------------------------------------------
# ILU(0) triangular-solve kernel
# ----------------------------------------------------------------------
def _ilu0_case(rng, n=10):
    from repro.precond.ilu import ILU0Preconditioner

    d = rng.standard_normal((n, n))
    d[np.abs(d) < 0.8] = 0.0
    d += (n + np.abs(d).sum(axis=1)) * np.eye(n)  # diag dominant, full diag
    a = CSRMatrix.from_dense(d, tol=-1.0)
    ilu = ILU0Preconditioner(a)
    lu = ilu._lu
    return lu, ilu._diag_pos, ilu._split, rng.standard_normal(n)


@pytest.mark.parametrize("backend", BACKENDS)
def test_ilu0_solve_matches_dense_triangular(backend, rng):
    """Each backend's fused forward/backward solve equals the dense
    unit-lower / upper triangular solves through the same factor."""
    lu, diag_pos, split, v = _ilu0_case(rng)
    dense = lu.toarray()
    low = np.tril(dense, -1) + np.eye(lu.shape[0])
    up = np.triu(dense)
    ref = np.linalg.solve(up, np.linalg.solve(low, v))
    with use_backend(backend):
        z = get_backend().ilu0_solve(
            lu.indptr, lu.indices, lu.data, diag_pos, split, v.copy()
        )
    np.testing.assert_allclose(z, ref, rtol=1e-12, atol=1e-12)


def test_ilu0_solve_backends_agree_bitwise(rng):
    """The exact-arithmetic-order contract: every backend runs the same
    slice-dot row loop, so results are bitwise equal, not just close."""
    lu, diag_pos, split, v = _ilu0_case(rng)
    results = {}
    for backend in BACKENDS:
        with use_backend(backend):
            results[backend] = get_backend().ilu0_solve(
                lu.indptr, lu.indices, lu.data, diag_pos, split, v.copy()
            )
    ref = results["numpy"]
    for backend, z in results.items():
        assert z.tobytes() == ref.tobytes(), backend


def test_ilu0_solve_is_in_place(rng):
    lu, diag_pos, split, v = _ilu0_case(rng)
    z = v.copy()
    out = get_backend().ilu0_solve(
        lu.indptr, lu.indices, lu.data, diag_pos, split, z
    )
    assert out is z
