"""SpMM input-hardening and single-column equivalence.

``CSRMatrix.matmat`` normalizes its inputs once (1-D vectors become
single columns, Fortran/strided blocks are copied to C order) so every
registered kernel backend only ever sees a C-contiguous float64 block.
These tests pin that contract — and the block solvers' foundational
assumption that a ``k = 1`` SpMM is *bitwise* the matvec — across every
available backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse import CSRMatrix
from repro.sparse.kernels import available_backends, use_backend

BACKENDS = available_backends()


def _random_csr(rng, n, m, density=0.25):
    d = rng.random((n, m))
    d[d > density] = 0.0
    return CSRMatrix.from_dense(d), d


@pytest.fixture
def rng():
    return np.random.default_rng(404)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("k", [1, 2, 5, 8])
def test_matmat_matches_dense_reference(backend, k, rng):
    a, d = _random_csr(rng, 17, 13)
    x = rng.standard_normal((13, k))
    with use_backend(backend):
        got = a.matmat(x)
    assert got.shape == (17, k)
    np.testing.assert_allclose(got, d @ x, rtol=1e-13, atol=1e-14)


@pytest.mark.parametrize("backend", BACKENDS)
def test_matmat_k1_is_bitwise_matvec(backend, rng):
    """A ``(m, 1)`` SpMM must equal the matvec *exactly* on every backend —
    this is what makes the block solvers' k=1 histories bitwise equal to
    the single-RHS solvers'."""
    a, _ = _random_csr(rng, 23, 19)
    x = rng.standard_normal(19)
    with use_backend(backend):
        ref = a.matvec(x)
        got = a.matmat(x.reshape(-1, 1))
    assert got.shape == (23, 1)
    assert np.array_equal(got[:, 0], ref)


@pytest.mark.parametrize("backend", BACKENDS)
def test_matmat_accepts_1d_vector_as_one_column(backend, rng):
    a, _ = _random_csr(rng, 11, 9)
    x = rng.standard_normal(9)
    with use_backend(backend):
        got = a.matmat(x)
        ref = a.matvec(x)
    assert got.shape == (11, 1)
    assert np.array_equal(got[:, 0], ref)


@pytest.mark.parametrize("backend", BACKENDS)
def test_matmat_normalizes_fortran_and_strided_input(backend, rng):
    a, d = _random_csr(rng, 14, 10)
    x = rng.standard_normal((10, 4))
    with use_backend(backend):
        ref = a.matmat(x)
        got_f = a.matmat(np.asfortranarray(x))
        big = rng.standard_normal((10, 8))
        big[:, ::2] = x
        got_s = a.matmat(big[:, ::2])
    assert np.array_equal(got_f, ref)
    assert np.array_equal(got_s, ref)
    np.testing.assert_allclose(ref, d @ x, rtol=1e-13, atol=1e-14)


@pytest.mark.parametrize("backend", BACKENDS)
def test_matmat_backend_parity(backend, rng):
    """Every backend answers the same block product (to roundoff)."""
    a, d = _random_csr(rng, 30, 25)
    x = rng.standard_normal((25, 6))
    with use_backend(backend):
        got = a.matmat(x)
    np.testing.assert_allclose(got, d @ x, rtol=1e-12, atol=1e-13)


def test_matmat_rejects_bad_shapes(rng):
    a, _ = _random_csr(rng, 8, 6)
    with pytest.raises(ValueError, match="expected"):
        a.matmat(rng.standard_normal((7, 3)))
    with pytest.raises(ValueError, match="expected"):
        a.matmat(rng.standard_normal(5))
    with pytest.raises(ValueError, match="expected"):
        a.matmat(rng.standard_normal((6, 3, 1)))
    with pytest.raises(ValueError, match="out has shape"):
        a.matmat(rng.standard_normal((6, 3)), out=np.empty((8, 2)))


def test_matmat_rejects_aliasing_out(rng):
    a, _ = _random_csr(rng, 6, 6)
    x = rng.standard_normal((6, 2))
    with pytest.raises(ValueError, match="alias"):
        a.matmat(x, out=x)


def test_matmat_k0_and_empty_matrix(rng):
    a, _ = _random_csr(rng, 8, 6)
    got = a.matmat(np.empty((6, 0)))
    assert got.shape == (8, 0)
    zero = CSRMatrix.from_dense(np.zeros((4, 5)))
    assert np.array_equal(zero.matmat(rng.standard_normal((5, 3))),
                          np.zeros((4, 3)))
