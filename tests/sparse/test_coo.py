"""COO format: construction, duplicate summation, conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.coo import COOMatrix


def test_duplicates_summed_in_tocsr():
    coo = COOMatrix(
        (2, 2),
        np.array([0, 0, 1, 0]),
        np.array([0, 1, 1, 0]),
        np.array([1.0, 2.0, 3.0, 4.0]),
    )
    dense = coo.tocsr().toarray()
    assert np.array_equal(dense, [[5.0, 2.0], [0.0, 3.0]])


def test_toarray_matches_tocsr():
    rng = np.random.default_rng(0)
    rows = rng.integers(0, 6, size=40)
    cols = rng.integers(0, 5, size=40)
    data = rng.standard_normal(40)
    coo = COOMatrix((6, 5), rows, cols, data)
    assert np.allclose(coo.toarray(), coo.tocsr().toarray())


def test_empty_matrix():
    coo = COOMatrix.empty((3, 4))
    assert coo.nnz == 0
    csr = coo.tocsr()
    assert csr.nnz == 0
    assert csr.shape == (3, 4)
    assert np.array_equal(csr.toarray(), np.zeros((3, 4)))


def test_length_mismatch_rejected():
    with pytest.raises(ValueError, match="equal length"):
        COOMatrix((2, 2), np.array([0]), np.array([0, 1]), np.array([1.0]))


def test_row_index_out_of_range_rejected():
    with pytest.raises(ValueError, match="row index"):
        COOMatrix((2, 2), np.array([2]), np.array([0]), np.array([1.0]))


def test_col_index_out_of_range_rejected():
    with pytest.raises(ValueError, match="column index"):
        COOMatrix((2, 2), np.array([0]), np.array([5]), np.array([1.0]))


def test_negative_index_rejected():
    with pytest.raises(ValueError):
        COOMatrix((2, 2), np.array([-1]), np.array([0]), np.array([1.0]))


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 8),
    m=st.integers(1, 8),
    seed=st.integers(0, 10_000),
    nnz=st.integers(0, 60),
)
def test_tocsr_equals_scatter_add(n, m, seed, nnz):
    """Property: CSR conversion agrees with a dense scatter-add for any
    triplet soup including duplicates."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, m, size=nnz)
    data = rng.standard_normal(nnz)
    coo = COOMatrix((n, m), rows, cols, data)
    dense = np.zeros((n, m))
    np.add.at(dense, (rows, cols), data)
    assert np.allclose(coo.tocsr().toarray(), dense)
