"""Seeded property tests of the kernel layer: randomized CSR structures
(1x1, empty rows/cols, duplicate column entries, heavily skewed nnz per
row) must agree with the dense reference for every operation on every
registered backend.

These complement test_kernels.py's hand-built edges with a randomized
structural sweep: the generator is seeded, so every run checks the exact
same matrices — a failure reproduces from its parametrize id alone.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.sparse import CSRMatrix, scaled_matvec, spmm_dense
from repro.sparse.kernels import available_backends, use_backend
from repro.sparse.ops import row_norms1, scale_symmetric

BACKENDS = available_backends()
SEEDS = (101, 202, 303)


def _random_case(name: str, seed: int):
    """One (CSRMatrix, dense reference) pair; structure chosen by name."""
    # crc32, not hash(): string hashing is salted per process and would
    # break run-to-run reproducibility of the generated matrices.
    rng = np.random.default_rng((zlib.crc32(name.encode()), seed))
    if name == "one-by-one":
        d = rng.standard_normal((1, 1))
        return CSRMatrix.from_dense(d), d
    if name == "dense-random":
        d = rng.standard_normal((7, 5))
        return CSRMatrix.from_dense(d), d
    if name == "sparse-random":
        d = rng.standard_normal((12, 9))
        d[rng.random((12, 9)) > 0.15] = 0.0
        return CSRMatrix.from_dense(d), d
    if name == "empty-rows-cols":
        d = np.zeros((8, 6))
        d[1, 2] = rng.standard_normal()
        d[5, 0] = rng.standard_normal()
        d[5, 5] = rng.standard_normal()
        return CSRMatrix.from_dense(d), d
    if name == "all-zero":
        return CSRMatrix.from_dense(np.zeros((4, 3))), np.zeros((4, 3))
    if name == "skewed-nnz":
        # One dense hub row, the rest nearly empty — the row-imbalance
        # shape a partitioned FEM interface produces.
        d = np.zeros((10, 10))
        d[3] = rng.standard_normal(10)
        for i in range(10):
            d[i, i] = rng.standard_normal()
        return CSRMatrix.from_dense(d), d
    if name == "duplicate-columns":
        # Repeated column indices within one row: legal CSR that kernels
        # must accumulate, never overwrite.  Built directly since
        # from_dense cannot express it.
        n, m = 5, 4
        indptr = np.array([0, 3, 3, 5, 8, 9], dtype=np.int64)
        indices = np.array([1, 1, 2, 0, 0, 3, 3, 3, 2], dtype=np.int64)
        data = rng.standard_normal(9)
        a = CSRMatrix((n, m), indptr, indices, data)
        d = np.zeros((n, m))
        for row in range(n):
            for k in range(indptr[row], indptr[row + 1]):
                d[row, indices[k]] += data[k]
        return a, d
    raise AssertionError(name)


CASES = (
    "one-by-one",
    "dense-random",
    "sparse-random",
    "empty-rows-cols",
    "all-zero",
    "skewed-nnz",
    "duplicate-columns",
)


@pytest.fixture(params=BACKENDS)
def backend(request):
    with use_backend(request.param):
        yield request.param


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("case", CASES)
def test_matvec_matches_dense(case, seed, backend):
    a, d = _random_case(case, seed)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(d.shape[1])
    assert np.allclose(a.matvec(x), d @ x)
    out = np.full(d.shape[0], np.nan)  # stale out= must be overwritten
    a.matvec(x, out=out)
    assert np.allclose(out, d @ x)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("case", CASES)
def test_rmatvec_matches_dense(case, seed, backend):
    a, d = _random_case(case, seed)
    rng = np.random.default_rng(seed)
    y = rng.standard_normal(d.shape[0])
    assert np.allclose(a.rmatvec(y), d.T @ y)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("case", CASES)
def test_matmat_matches_dense(case, seed, backend):
    a, d = _random_case(case, seed)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal((d.shape[1], 3))
    assert np.allclose(a.matmat(b), d @ b)
    assert np.allclose(spmm_dense(a, b), d @ b)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("case", CASES)
def test_scaled_matvec_matches_dense(case, seed, backend):
    a, d = _random_case(case, seed)
    rng = np.random.default_rng(seed)
    dl = rng.standard_normal(d.shape[0])
    dr = rng.standard_normal(d.shape[1])
    x = rng.standard_normal(d.shape[1])
    expect = dl * (d @ (dr * x))
    assert np.allclose(scaled_matvec(dl, a, dr, x), expect)
    out = np.full(d.shape[0], np.nan)
    scaled_matvec(dl, a, dr, x, out=out)
    assert np.allclose(out, expect)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("case", CASES)
def test_scale_sym_matches_dense(case, seed, backend):
    a, d = _random_case(case, seed)
    if d.shape[0] != d.shape[1]:
        pytest.skip("symmetric scaling needs a square matrix")
    rng = np.random.default_rng(seed)
    dl = rng.standard_normal(d.shape[0])
    dr = rng.standard_normal(d.shape[1])
    scaled = a.scale_sym(dl, dr)
    assert np.allclose(scaled.toarray(), np.diag(dl) @ d @ np.diag(dr))
    # scale_symmetric is the D A D convenience wrapper
    sym = scale_symmetric(a, dl)
    assert np.allclose(sym.toarray(), np.diag(dl) @ d @ np.diag(dl))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("case", CASES)
def test_row_norms_match_dense(case, seed, backend):
    a, d = _random_case(case, seed)
    if case == "duplicate-columns":
        # row_norms1 is defined on *stored* entries: |x| + |y|, not
        # |x + y|, when a row repeats a column — assert that contract.
        expect = np.add.reduceat(
            np.abs(a.data), a.indptr[:-1].clip(max=len(a.data) - 1)
        ) * (np.diff(a.indptr) > 0)
        assert np.allclose(row_norms1(a), expect)
    else:
        assert np.allclose(row_norms1(a), np.abs(d).sum(axis=1))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("case", CASES)
def test_backends_agree_bitwise(case, seed):
    """Cross-backend parity on the same inputs: every backend must return
    values equal to the numpy reference within strict tolerance."""
    a, d = _random_case(case, seed)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(d.shape[1])
    b = rng.standard_normal((d.shape[1], 2))
    with use_backend("numpy"):
        ref_mv = a.matvec(x)
        ref_mm = a.matmat(b)
    for name in BACKENDS:
        with use_backend(name):
            np.testing.assert_allclose(a.matvec(x), ref_mv, rtol=1e-13,
                                       atol=1e-13)
            np.testing.assert_allclose(a.matmat(b), ref_mm, rtol=1e-13,
                                       atol=1e-13)
