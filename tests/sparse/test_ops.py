"""Free-standing sparse ops."""

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    axpy_flops,
    dot_flops,
    matvec_flops,
    row_norms1,
    scale_symmetric,
    spmm_dense,
)


def test_scale_symmetric_matches_dense():
    rng = np.random.default_rng(0)
    dense = rng.standard_normal((6, 6))
    dense = dense + dense.T
    a = CSRMatrix.from_dense(dense)
    d = rng.random(6) + 0.5
    scaled = scale_symmetric(a, d)
    assert np.allclose(scaled.toarray(), np.diag(d) @ dense @ np.diag(d))


def test_scale_symmetric_preserves_symmetry():
    rng = np.random.default_rng(1)
    dense = rng.standard_normal((5, 5))
    dense = dense + dense.T
    scaled = scale_symmetric(CSRMatrix.from_dense(dense), rng.random(5) + 0.1)
    out = scaled.toarray()
    assert np.allclose(out, out.T)


def test_row_norms1_delegates():
    a = CSRMatrix.from_dense(np.array([[1.0, -2.0], [3.0, 0.0]]))
    assert np.array_equal(row_norms1(a), [3.0, 3.0])


def test_flop_formulas():
    a = CSRMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 3.0]]))
    assert matvec_flops(a) == 6
    assert axpy_flops(10) == 20
    assert dot_flops(10) == 20


def test_spmm_dense():
    rng = np.random.default_rng(2)
    dense = rng.standard_normal((5, 4))
    a = CSRMatrix.from_dense(dense)
    b = rng.standard_normal((4, 3))
    assert np.allclose(spmm_dense(a, b), dense @ b)
