"""CSR kernels, cross-checked against dense NumPy and scipy.sparse."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.csr import CSRMatrix


def _random_csr(n, m, density, seed):
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, m)) * (rng.random((n, m)) < density)
    return CSRMatrix.from_dense(dense), dense


def test_from_dense_roundtrip():
    a, dense = _random_csr(7, 5, 0.4, 1)
    assert np.allclose(a.toarray(), dense)


def test_from_dense_drops_below_tolerance():
    dense = np.array([[1.0, 1e-12], [0.0, 2.0]])
    a = CSRMatrix.from_dense(dense, tol=1e-9)
    assert a.nnz == 2


def test_matvec_against_scipy():
    a, dense = _random_csr(20, 16, 0.3, 2)
    x = np.random.default_rng(3).standard_normal(16)
    assert np.allclose(a.matvec(x), sp.csr_matrix(dense) @ x)


def test_matvec_handles_empty_rows():
    dense = np.zeros((4, 4))
    dense[1, 2] = 3.0  # rows 0, 2, 3 empty
    a = CSRMatrix.from_dense(dense)
    y = a.matvec(np.array([1.0, 2.0, 4.0, 8.0]))
    assert np.array_equal(y, [0.0, 12.0, 0.0, 0.0])


def test_matvec_out_parameter_reused():
    a, dense = _random_csr(6, 6, 0.5, 4)
    x = np.ones(6)
    out = np.full(6, 99.0)
    res = a.matvec(x, out=out)
    assert res is out
    assert np.allclose(out, dense @ x)


def test_matvec_wrong_length_rejected():
    a, _ = _random_csr(3, 4, 0.5, 5)
    with pytest.raises(ValueError, match="expected"):
        a.matvec(np.ones(3))


def test_matmul_operator():
    a, dense = _random_csr(5, 5, 0.6, 6)
    x = np.arange(5.0)
    assert np.allclose(a @ x, dense @ x)


def test_rmatvec_is_transpose_product():
    a, dense = _random_csr(6, 4, 0.5, 7)
    y = np.random.default_rng(8).standard_normal(6)
    assert np.allclose(a.rmatvec(y), dense.T @ y)


def test_diagonal_extraction_with_missing_entries():
    dense = np.array([[1.0, 2.0, 0.0], [0.0, 0.0, 3.0], [4.0, 0.0, 5.0]])
    a = CSRMatrix.from_dense(dense)
    assert np.array_equal(a.diagonal(), [1.0, 0.0, 5.0])


def test_diagonal_rectangular():
    dense = np.array([[1.0, 0.0], [0.0, 2.0], [3.0, 0.0]])
    assert np.array_equal(CSRMatrix.from_dense(dense).diagonal(), [1.0, 2.0])


def test_row_norms1():
    dense = np.array([[1.0, -2.0], [0.0, 0.0]])
    assert np.array_equal(CSRMatrix.from_dense(dense).row_norms1(), [3.0, 0.0])


def test_scale_rows_and_cols():
    a, dense = _random_csr(5, 4, 0.5, 9)
    dr = np.arange(1.0, 6.0)
    dc = np.arange(1.0, 5.0)
    assert np.allclose(a.scale_rows(dr).toarray(), np.diag(dr) @ dense)
    assert np.allclose(a.scale_cols(dc).toarray(), dense @ np.diag(dc))


def test_scale_rows_wrong_length():
    a, _ = _random_csr(5, 4, 0.5, 10)
    with pytest.raises(ValueError):
        a.scale_rows(np.ones(4))


def test_transpose():
    a, dense = _random_csr(6, 3, 0.5, 11)
    assert np.allclose(a.transpose().toarray(), dense.T)


def test_transpose_involution():
    a, dense = _random_csr(5, 7, 0.4, 12)
    assert np.allclose(a.transpose().transpose().toarray(), dense)


def test_submatrix():
    a, dense = _random_csr(8, 8, 0.5, 13)
    ri = np.array([1, 3, 6])
    ci = np.array([0, 2, 5, 7])
    sub = a.submatrix(ri, ci)
    assert sub.shape == (3, 4)
    assert np.allclose(sub.toarray(), dense[np.ix_(ri, ci)])


def test_submatrix_empty_selection():
    a, _ = _random_csr(4, 4, 0.5, 14)
    sub = a.submatrix(np.array([1]), np.array([], dtype=np.int64))
    assert sub.shape == (1, 0)
    assert sub.nnz == 0


def test_eye_and_diag():
    assert np.allclose(CSRMatrix.eye(4).toarray(), np.eye(4))
    d = np.array([2.0, 3.0])
    assert np.allclose(CSRMatrix.diag(d).toarray(), np.diag(d))


def test_is_symmetric():
    dense = np.array([[2.0, 1.0], [1.0, 3.0]])
    assert CSRMatrix.from_dense(dense).is_symmetric()
    dense[0, 1] = 5.0
    assert not CSRMatrix.from_dense(dense).is_symmetric()


def test_tocoo_roundtrip():
    a, dense = _random_csr(6, 6, 0.4, 15)
    assert np.allclose(a.tocoo().tocsr().toarray(), dense)


def test_invalid_indptr_rejected():
    with pytest.raises(ValueError):
        CSRMatrix((2, 2), np.array([0, 1]), np.array([0]), np.array([1.0]))
    with pytest.raises(ValueError, match="nondecreasing"):
        CSRMatrix((2, 2), np.array([0, 2, 1]), np.array([0]), np.array([1.0]))


def test_row_lengths():
    a = CSRMatrix.from_dense(np.array([[1.0, 2.0], [0.0, 0.0]]))
    assert np.array_equal(a.row_lengths(), [2, 0])


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 12),
    m=st.integers(1, 12),
    seed=st.integers(0, 10_000),
    density=st.floats(0.0, 1.0),
)
def test_matvec_matches_dense(n, m, seed, density):
    """Property: matvec == dense product for arbitrary sparsity patterns."""
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, m)) * (rng.random((n, m)) < density)
    a = CSRMatrix.from_dense(dense)
    x = rng.standard_normal(m)
    assert np.allclose(a.matvec(x), dense @ x, atol=1e-12)


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 10), seed=st.integers(0, 10_000))
def test_rmatvec_adjoint_identity(n, seed):
    """Property: <Ax, y> == <x, A^T y>."""
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.5)
    a = CSRMatrix.from_dense(dense)
    x = rng.standard_normal(n)
    y = rng.standard_normal(n)
    assert np.isclose(a.matvec(x) @ y, x @ a.rmatvec(y), atol=1e-10)


def test_is_symmetric_rectangular_false():
    a, _ = _random_csr(3, 5, 0.6, 21)
    assert not a.is_symmetric()


def test_is_symmetric_explicit_zero_pattern_mismatch():
    """Symmetric values whose pattern is asymmetric because of an explicit
    stored zero: nnz differs from the transpose's, and the check must fall
    through to matvec probes and still answer True."""
    # A = [[1, 0(stored), ], [0, 2]] with the (0,1) zero stored explicitly.
    indptr = np.array([0, 2, 3])
    indices = np.array([0, 1, 1])
    data = np.array([1.0, 0.0, 2.0])
    a = CSRMatrix((2, 2), indptr, indices, data)
    t = a.transpose()
    assert a.nnz == t.nnz  # transpose keeps the explicit zero
    # Drop the explicit zero from the transpose to force an nnz mismatch.
    t_clean = CSRMatrix.from_dense(t.toarray())
    assert a.nnz != t_clean.nnz
    assert a.is_symmetric()


def test_is_symmetric_asymmetric_with_explicit_zero():
    """Pattern mismatch AND numerically asymmetric: probes must say False."""
    indptr = np.array([0, 2, 3])
    indices = np.array([0, 1, 1])
    data = np.array([1.0, 7.0, 2.0])  # (0,1)=7 stored, (1,0) missing
    a = CSRMatrix((2, 2), indptr, indices, data)
    assert not a.is_symmetric()


def _submatrix_reference(a, row_idx, col_idx):
    """The seed's per-row Python loop, kept as the parity oracle."""
    row_idx = np.asarray(row_idx, dtype=np.int64)
    col_idx = np.asarray(col_idx, dtype=np.int64)
    n, m = a.shape
    col_map = np.full(m, -1, dtype=np.int64)
    col_map[col_idx] = np.arange(len(col_idx))
    out_rows, out_cols, out_data = [], [], []
    for new_r, r in enumerate(row_idx):
        lo, hi = a.indptr[r], a.indptr[r + 1]
        cols = col_map[a.indices[lo:hi]]
        keep = cols >= 0
        k = int(keep.sum())
        if k:
            out_rows.append(np.full(k, new_r, dtype=np.int64))
            out_cols.append(cols[keep])
            out_data.append(a.data[lo:hi][keep])
    if out_rows:
        rows = np.concatenate(out_rows)
        cols = np.concatenate(out_cols)
        data = np.concatenate(out_data)
    else:
        rows = np.zeros(0, dtype=np.int64)
        cols = np.zeros(0, dtype=np.int64)
        data = np.zeros(0)
    indptr = np.zeros(len(row_idx) + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return CSRMatrix((len(row_idx), len(col_idx)), indptr, cols, data)


def test_submatrix_vectorized_matches_loop_reference():
    rng = np.random.default_rng(77)
    for trial in range(25):
        n = int(rng.integers(1, 40))
        m = int(rng.integers(1, 40))
        density = float(rng.random()) * 0.6
        dense = rng.random((n, m))
        dense[dense > density] = 0.0
        a = CSRMatrix.from_dense(dense)
        ri = rng.permutation(n)[: int(rng.integers(0, n)) + 1]
        ci = rng.permutation(m)[: int(rng.integers(0, m)) + 1]
        got = a.submatrix(ri, ci)
        ref = _submatrix_reference(a, ri, ci)
        assert got.shape == ref.shape
        assert np.array_equal(got.indptr, ref.indptr)
        assert np.array_equal(got.indices, ref.indices)
        assert np.array_equal(got.data, ref.data)


def test_submatrix_duplicate_rows():
    a, dense = _random_csr(6, 6, 0.5, 22)
    ri = np.array([2, 2, 4])
    ci = np.arange(6)
    assert np.allclose(
        a.submatrix(ri, ci).toarray(), dense[np.ix_(ri, ci)]
    )
