"""Lanczos extreme-eigenvalue estimation."""

import numpy as np
import pytest

from repro.precond.scaling import scale_system
from repro.spectrum.lanczos import lanczos_extreme_eigenvalues


def test_exact_on_diagonal_matrix():
    d = np.array([0.5, 1.0, 2.0, 5.0, 9.0])
    lo, hi = lanczos_extreme_eigenvalues(lambda v: d * v, 5, n_steps=5)
    assert lo == pytest.approx(0.5, abs=1e-8)
    assert hi == pytest.approx(9.0, abs=1e-8)


def test_fem_matrix_estimates(tiny_problem):
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    evals = np.linalg.eigvalsh(ss.a.toarray())
    lo, hi = lanczos_extreme_eigenvalues(
        ss.a.matvec, ss.a.shape[0], n_steps=40
    )
    # Ritz values lie inside the spectrum and converge to the extremes.
    assert evals.min() - 1e-10 <= lo
    assert hi <= evals.max() + 1e-10
    assert hi == pytest.approx(evals.max(), rel=1e-4)


def test_steps_capped_at_dimension():
    d = np.array([1.0, 2.0])
    lo, hi = lanczos_extreme_eigenvalues(lambda v: d * v, 2, n_steps=50)
    assert (lo, hi) == (pytest.approx(1.0), pytest.approx(2.0))


def test_deterministic_for_fixed_seed():
    rng = np.random.default_rng(5)
    m = rng.standard_normal((20, 20))
    m = m + m.T
    a = lanczos_extreme_eigenvalues(lambda v: m @ v, 20, n_steps=10, seed=3)
    b = lanczos_extreme_eigenvalues(lambda v: m @ v, 20, n_steps=10, seed=3)
    assert a == b
