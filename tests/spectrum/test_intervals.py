"""SpectrumIntervals validation and sampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spectrum.intervals import SpectrumIntervals


def test_single_interval():
    th = SpectrumIntervals.single(0.1, 2.5)
    assert th.n_intervals == 1
    assert th.lo == 0.1
    assert th.hi == 2.5


def test_unit_default():
    th = SpectrumIntervals.unit()
    assert th.lo > 0
    assert th.hi == 1.0


def test_union_sorted_regardless_of_input_order():
    th = SpectrumIntervals([(7, 10), (-4, -1)])
    assert th.intervals == ((-4.0, -1.0), (7.0, 10.0))
    assert th.n_intervals == 2


def test_zero_must_be_excluded():
    with pytest.raises(ValueError, match="must not contain 0"):
        SpectrumIntervals([(-1.0, 1.0)])


def test_zero_endpoint_allowed():
    SpectrumIntervals([(0.0, 1.0)])  # open interval: 0 not inside


def test_empty_interval_rejected():
    with pytest.raises(ValueError, match="empty interval"):
        SpectrumIntervals([(2.0, 2.0)])


def test_overlap_rejected():
    with pytest.raises(ValueError, match="disjoint"):
        SpectrumIntervals([(1.0, 3.0), (2.0, 4.0)])


def test_touching_allowed():
    th = SpectrumIntervals([(1.0, 2.0), (2.0, 3.0)])
    assert th.n_intervals == 2


def test_no_intervals_rejected():
    with pytest.raises(ValueError):
        SpectrumIntervals([])


def test_contains():
    th = SpectrumIntervals([(-4, -1), (7, 10)])
    x = np.array([-5.0, -2.0, 0.0, 8.0, 10.0])
    assert np.array_equal(th.contains(x), [False, True, False, True, False])


def test_sample_inside_and_counted():
    th = SpectrumIntervals([(0.1, 1.0), (2.0, 3.0)])
    grid = th.sample(50)
    assert len(grid) == 100
    assert th.contains(grid).all()


def test_measure():
    th = SpectrumIntervals([(0.0, 1.0), (2.0, 2.5)])
    assert th.measure() == pytest.approx(1.5)


def test_the_paper_fig2c_union():
    """The 4-interval indefinite union of Fig. 2(c) validates."""
    th = SpectrumIntervals(
        [(-6.0, -4.1), (-3.9, -0.1), (0.1, 5.9), (6.1, 8.0)]
    )
    assert th.n_intervals == 4


@settings(max_examples=50, deadline=None)
@given(
    lo=st.floats(0.001, 5.0),
    width=st.floats(0.01, 5.0),
    n=st.integers(1, 100),
)
def test_sample_within_bounds_property(lo, width, n):
    th = SpectrumIntervals.single(lo, lo + width)
    g = th.sample(n)
    assert (g > lo).all() and (g < lo + width).all()
