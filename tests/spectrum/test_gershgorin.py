"""Gershgorin bounds (Theorem 1)."""

import numpy as np
import pytest

from repro.precond.scaling import scale_system
from repro.sparse.csr import CSRMatrix
from repro.spectrum.gershgorin import gershgorin_bound, gershgorin_intervals


def test_bound_dominates_spectrum():
    rng = np.random.default_rng(0)
    dense = rng.standard_normal((8, 8))
    dense = dense + dense.T
    a = CSRMatrix.from_dense(dense)
    lam_max = np.linalg.eigvalsh(dense).max()
    assert gershgorin_bound(a) >= lam_max


def test_bound_is_exact_max_row_norm(tiny_problem):
    k = tiny_problem.stiffness
    assert gershgorin_bound(k) == pytest.approx(k.row_norms1().max())


def test_theorem1_spectrum_in_unit_interval(tiny_problem):
    """The Eq. 12 claim: sigma(DKD) subset (0, 1)."""
    ss = scale_system(tiny_problem.stiffness, tiny_problem.load)
    evals = np.linalg.eigvalsh(ss.a.toarray())
    assert evals.min() > 0
    assert evals.max() <= 1.0 + 1e-12


def test_intervals_enclose_spectrum():
    rng = np.random.default_rng(1)
    dense = rng.standard_normal((10, 10))
    dense = dense + dense.T
    a = CSRMatrix.from_dense(dense)
    lo, hi = gershgorin_intervals(a)
    evals = np.linalg.eigvalsh(dense)
    assert evals.min() >= lo.min() - 1e-12
    assert evals.max() <= hi.max() + 1e-12


def test_square_required():
    a = CSRMatrix.from_dense(np.ones((2, 3)))
    with pytest.raises(ValueError):
        gershgorin_bound(a)
    with pytest.raises(ValueError):
        gershgorin_intervals(a)
