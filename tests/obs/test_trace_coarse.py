"""Tracing the two-level coarse correction.

Pins the observability contract of ``coarse_solve`` spans:

* every coarse correction is one ``coarse_solve`` span nested inside the
  ``precond_apply`` span of its Arnoldi step;
* the coarse allreduce children reconcile *exactly* with the CommStats
  reduction-word charges — both against the span's own ``n_coarse``/``k``
  arguments and against the per-rank counter deltas vs a one-level run;
* paper claim 3 (exchanges per step) is untouched — the correction adds
  reductions and (in deflate mode) a preconditioner-internal exchange,
  both of which the invariant excludes;
* tracing remains zero-perturbation for two-level solves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.options import SolverOptions
from repro.core.session import PreparedSystem
from repro.obs import Tracer, verify_exchange_invariant

MESH = 2
PARTS = 4


def _solve(precond, method="edd-enhanced", tracer=None, comm_backend=None):
    opts = SolverOptions(
        method=method, precond=precond, comm_backend=comm_backend
    )
    ps = PreparedSystem.build(MESH, PARTS, opts)
    try:
        return ps.solve(tracer=tracer)
    finally:
        ps.close()


def _spans(trc, name=None, cat=None):
    return [
        s
        for s in trc.spans
        if (name is None or s["name"] == name)
        and (cat is None or s["cat"] == cat)
    ]


@pytest.mark.parametrize(
    "precond", ["2l(gls(3),deflate)", "2l(gls(3))"]
)
def test_coarse_solve_span_per_precond_apply(precond):
    trc = Tracer()
    _solve(precond, tracer=trc)
    coarse = _spans(trc, "coarse_solve")
    applies = _spans(trc, "precond_apply")
    assert coarse, "no coarse_solve spans recorded"
    assert len(coarse) == len(applies)
    for s in coarse:
        assert s["cat"] == "solver"
        assert trc.spans[s["parent"]]["name"] == "precond_apply"


def test_coarse_allreduce_words_reconcile_with_stats():
    trc = Tracer()
    summary = _solve("2l(gls(3),deflate)", tracer=trc)
    spans = trc.spans
    coarse_idx = {
        i for i, s in enumerate(spans) if s["name"] == "coarse_solve"
    }
    kids = [
        s for s in spans
        if s["parent"] in coarse_idx and s["cat"] == "reduction"
    ]
    # exactly ONE allreduce per correction, of n_coarse * k words
    assert len(kids) == len(coarse_idx) > 0
    for i in sorted(coarse_idx):
        mine = [k for k in kids if k["parent"] == i]
        assert len(mine) == 1
        assert mine[0]["args"]["words"] == (
            spans[i]["args"]["n_coarse"] * spans[i]["args"]["k"]
        )
    # all reduction spans together reconcile exactly with the per-rank
    # CommStats charge (reductions are charged uniformly to every rank)
    span_words = sum(
        s["args"]["words"] for s in spans if s["cat"] == "reduction"
    )
    for rank in summary.stats.to_dict()["per_rank"]:
        assert rank["reduction_words"] == span_words


def test_claim3_exchange_invariant_with_two_level():
    trc = Tracer()
    _solve("2l(gls(3),deflate)", tracer=trc)
    verify_exchange_invariant(trc.to_dict(), "enhanced")


@pytest.mark.parametrize("backend", ["virtual", "thread"])
@pytest.mark.parametrize("method", ["edd-enhanced", "rdd"])
def test_two_level_bitwise_parity_traced_vs_untraced(method, backend):
    plain = _solve("2l(gls(3),deflate)", method=method, comm_backend=backend)
    traced = _solve(
        "2l(gls(3),deflate)", method=method, tracer=Tracer(),
        comm_backend=backend,
    )
    np.testing.assert_array_equal(plain.result.x, traced.result.x)
    assert plain.result.iterations == traced.result.iterations
    assert plain.stats.to_dict() == traced.stats.to_dict()


def test_block_coarse_allreduce_coalesced():
    """The block path does ONE coarse allreduce of ``n_coarse * k`` words
    per correction, not k of them."""
    from repro.core.session import solve_cantilever_batch
    from repro.fem.cantilever import cantilever_problem

    prob = cantilever_problem(MESH)
    b = prob.load[:, None] * np.array([1.0, 1.1, 1.2])
    trc = Tracer()
    summary = solve_cantilever_batch(
        prob, b, n_parts=PARTS,
        options=SolverOptions(precond="2l(gls(3),deflate)"), tracer=trc,
    )
    assert summary.all_converged
    spans = summary.trace["spans"]
    coarse = [
        (i, s) for i, s in enumerate(spans) if s["name"] == "coarse_solve"
    ]
    assert coarse
    for i, s in coarse:
        assert s["args"]["k"] == 3
        kids = [
            q for q in spans
            if q["parent"] == i and q["cat"] == "reduction"
        ]
        assert len(kids) == 1
        assert kids[0]["args"]["words"] == s["args"]["n_coarse"] * 3
