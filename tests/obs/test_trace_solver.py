"""Trace correctness on real solves.

Pins the contracts the observability layer is allowed to be trusted for:

* structural invariants — every span closed, parent links valid, solver
  spans nested under their cycle/step;
* paper claim 3, machine-checked — enhanced EDD does exactly 1 interface
  exchange per Arnoldi step, basic EDD exactly 3 (preconditioner
  exchanges excluded), straight from recorded traces;
* accounting consistency — exchange-span message/word counts equal the
  independently recorded CommStats deltas;
* zero perturbation — solver outputs are bitwise identical traced vs
  untraced, on both the virtual and thread comm backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.options import SolverOptions
from repro.core.session import PreparedSystem, solve_cantilever_batch
from repro.obs import (
    EXPECTED_EXCHANGES,
    Tracer,
    exchanges_per_step,
    verify_exchange_invariant,
)

MESH = 2
PARTS = 4


def _solve(method, tracer=None, comm_backend=None, precond="gls(7)"):
    opts = SolverOptions(
        method=method, precond=precond, comm_backend=comm_backend
    )
    ps = PreparedSystem.build(MESH, PARTS, opts)
    try:
        return ps.solve(tracer=tracer)
    finally:
        ps.close()


# ----------------------------------------------------------------------
# Structure
# ----------------------------------------------------------------------
def test_all_spans_closed_and_parents_valid():
    trc = Tracer()
    _solve("edd-enhanced", tracer=trc)
    assert trc._stack == [], "unclosed spans after a solve"
    for i, span in enumerate(trc.spans):
        assert span["dur"] >= 0.0
        p = span["parent"]
        assert p == -1 or (0 <= p < i), f"span {i} has invalid parent {p}"
        if p >= 0:
            assert trc.spans[p]["depth"] == span["depth"] - 1


def test_solver_span_hierarchy():
    trc = Tracer()
    _solve("edd-enhanced", tracer=trc)
    spans = trc.spans
    by_name = {}
    for s in spans:
        by_name.setdefault(s["name"], []).append(s)
    assert by_name["cycle"], "no restart cycles recorded"
    for step in by_name["arnoldi_step"]:
        assert spans[step["parent"]]["name"] == "cycle"
    for name in ("matvec", "precond_apply", "orthogonalize", "givens_update"):
        assert by_name[name], f"no {name} spans"
        for s in by_name[name]:
            assert spans[s["parent"]]["name"] == "arnoldi_step"
    # one matvec / precond / givens per step
    n_steps = len(by_name["arnoldi_step"])
    assert len(by_name["matvec"]) == n_steps
    assert len(by_name["precond_apply"]) == n_steps
    assert len(by_name["givens_update"]) == n_steps


def test_metrics_stream_matches_history():
    trc = Tracer()
    summary = _solve("edd-enhanced", tracer=trc)
    res = summary.result
    per_iter = [m for m in trc.metrics if "rel_res" in m]
    assert len(per_iter) == res.iterations
    assert [m["iteration"] for m in per_iter] == list(
        range(1, res.iterations + 1)
    )
    # metrics echo the recurrence residual history exactly
    np.testing.assert_array_equal(
        [m["rel_res"] for m in per_iter], res.residual_history[1:]
    )
    boundaries = [m for m in trc.metrics if "true_rel" in m]
    assert len(boundaries) == res.restarts


# ----------------------------------------------------------------------
# Claim 3: exchanges per Arnoldi step
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "method,variant", [("edd-enhanced", "enhanced"), ("edd-basic", "basic")]
)
def test_claim3_exchange_invariant(method, variant):
    trc = Tracer()
    _solve(method, tracer=trc)
    report = verify_exchange_invariant(trc.to_dict(), variant)
    assert report["expected"] == EXPECTED_EXCHANGES[variant]
    assert set(report["per_step"].values()) == {EXPECTED_EXCHANGES[variant]}


def test_claim3_holds_without_preconditioner_too():
    # The invariant excludes precond_apply exchanges; with no
    # preconditioner at all the counts must be unchanged.
    trc = Tracer()
    _solve("edd-enhanced", tracer=trc, precond=None)
    verify_exchange_invariant(trc.to_dict(), "enhanced")


def test_claim3_checker_rejects_solverless_trace():
    with pytest.raises(ValueError):
        verify_exchange_invariant(Tracer().to_dict(), "enhanced")


def test_exchanges_per_step_counts_directly():
    trc = Tracer()
    _solve("edd-basic", tracer=trc)
    counts = exchanges_per_step(trc.to_dict())
    assert counts and all(c == 3 for c in counts.values())


# ----------------------------------------------------------------------
# CommStats-delta consistency
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ["edd-enhanced", "edd-basic", "rdd"])
def test_exchange_span_words_match_stats(method):
    trc = Tracer()
    summary = _solve(method, tracer=trc)
    spans = trc.spans
    words = sum(
        s["args"]["words"] for s in spans if s["cat"] == "exchange"
    )
    messages = sum(
        s["args"]["messages"] for s in spans if s["cat"] == "exchange"
    )
    assert words == summary.stats.total_nbr_words
    assert messages == summary.stats.total_nbr_messages
    if method == "rdd":
        assert any(s["name"] == "halo_exchange" for s in spans)
    else:
        assert any(s["name"] == "interface_assemble" for s in spans)


def test_metric_word_deltas_sum_to_stats():
    trc = Tracer()
    summary = _solve("edd-enhanced", tracer=trc)
    per_iter = [m for m in trc.metrics if "nbr_words" in m]
    assert per_iter, "no per-iteration comm deltas recorded"
    # Per-iteration deltas cover the exchanges inside the Arnoldi loop;
    # they can never exceed the solve totals and must land close (the
    # remainder is the initial-residual assembly outside the loop).
    assert 0 < sum(m["nbr_words"] for m in per_iter) <= (
        summary.stats.total_nbr_words
    )


# ----------------------------------------------------------------------
# Zero perturbation: traced vs untraced bitwise parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["virtual", "thread"])
@pytest.mark.parametrize("method", ["edd-enhanced", "rdd"])
def test_bitwise_parity_traced_vs_untraced(method, backend):
    plain = _solve(method, comm_backend=backend)
    traced = _solve(method, tracer=Tracer(), comm_backend=backend)
    np.testing.assert_array_equal(plain.result.x, traced.result.x)
    assert plain.result.iterations == traced.result.iterations
    np.testing.assert_array_equal(
        plain.result.residual_history, traced.result.residual_history
    )
    assert plain.stats.total_nbr_words == traced.stats.total_nbr_words


def test_thread_backend_records_rank_seconds():
    trc = Tracer()
    _solve("edd-enhanced", tracer=trc, comm_backend="thread")
    assert len(trc.rank_seconds) == PARTS
    assert all(t > 0.0 for t in trc.rank_seconds)


# ----------------------------------------------------------------------
# Batch + session surfaces
# ----------------------------------------------------------------------
def test_batch_trace_attached_and_consistent():
    from repro.fem.cantilever import cantilever_problem

    prob = cantilever_problem(MESH)
    b = prob.load[:, None] * np.array([1.0, 1.1])
    trc = Tracer()
    summary = solve_cantilever_batch(
        prob, b, n_parts=PARTS, options=SolverOptions(precond="gls(7)"),
        tracer=trc,
    )
    assert summary.all_converged
    assert summary.trace is not None
    assert summary.trace["meta"]["n_rhs"] == 2
    names = {s["name"] for s in summary.trace["spans"]}
    assert {"setup", "solve", "verify", "arnoldi_step"} <= names
    assert trc._stack == []
    # block path batches columns: span words match stats here too
    words = sum(
        s["args"]["words"] for s in summary.trace["spans"]
        if s["cat"] == "exchange"
    )
    assert words == summary.stats.total_nbr_words


def test_untraced_solve_result_has_no_trace():
    summary = _solve("edd-enhanced")
    assert summary.result.trace is None
    assert "trace" not in summary.to_dict()["result"]
