"""Unit behavior of the repro.obs tracer primitives."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace_from_dict,
    summarize_trace,
)
from repro.obs.tracer import TRACE_SCHEMA, timed_rank_body


def test_span_nesting_parent_links():
    trc = Tracer()
    a = trc.begin("outer", "phase")
    b = trc.begin("middle", "solver")
    c = trc.begin("inner", "exchange")
    trc.end()
    trc.end()
    d = trc.begin("sibling", "solver")
    trc.end()
    trc.end()
    spans = trc.spans
    assert [s["parent"] for s in spans] == [-1, a, b, a]
    assert [s["depth"] for s in spans] == [0, 1, 2, 1]
    assert trc._stack == []
    assert {a, b, c, d} == {0, 1, 2, 3}


def test_span_timestamps_and_durations():
    trc = Tracer()
    trc.begin("outer")
    trc.begin("inner")
    trc.end()
    trc.end()
    outer, inner = trc.spans
    assert inner["ts"] >= outer["ts"]
    assert outer["dur"] >= inner["dur"] >= 0.0
    # child ends inside the parent window
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-9


def test_end_without_begin_raises():
    trc = Tracer()
    with pytest.raises(RuntimeError):
        trc.end()


def test_end_merges_args():
    trc = Tracer()
    trc.begin("cycle", "solver", cycle=1)
    trc.end(true_rel=0.5)
    assert trc.spans[0]["args"] == {"cycle": 1, "true_rel": 0.5}


def test_span_context_manager():
    trc = Tracer()
    with trc.span("setup", "phase"):
        with trc.span("partition", "phase"):
            pass
    assert [s["name"] for s in trc.spans] == ["setup", "partition"]
    assert trc._stack == []


def test_metrics_stream_and_meta():
    trc = Tracer(meta={"mesh": 2})
    trc.metric(iteration=1, rel_res=0.5)
    trc.metric(iteration=2, rel_res=0.25, nbr_words=100)
    doc = trc.to_dict()
    assert doc["schema"] == TRACE_SCHEMA
    assert doc["meta"] == {"mesh": 2}
    assert doc["metrics"][1]["nbr_words"] == 100


def test_rank_time_accumulation():
    trc = Tracer()
    trc.ensure_ranks(3)
    trc.add_rank_time(1, 0.25)
    trc.add_rank_time(1, 0.25)
    trc.add_rank_time(4, 0.1)  # grows on demand
    assert trc.rank_seconds == [0.0, 0.5, 0.0, 0.0, 0.1]


def test_timed_rank_body_wraps_and_times():
    trc = Tracer()
    wrapped = timed_rank_body(trc, lambda rank: rank * 10)
    assert wrapped(2) == 20
    assert len(trc.rank_seconds) == 3
    assert trc.rank_seconds[2] > 0.0


def test_to_dict_is_json_serializable_deep_copy():
    trc = Tracer()
    trc.begin("a", "phase", k=1)
    trc.end()
    doc = trc.to_dict()
    json.dumps(doc)
    doc["spans"][0]["args"]["k"] = 99
    assert trc.spans[0]["args"]["k"] == 1  # export never aliases internals


def test_chrome_export_events():
    trc = Tracer()
    trc.begin("solve", "phase")
    trc.begin("matvec", "solver")
    trc.end()
    trc.end()
    trc.metric(iteration=1, rel_res=0.5)
    trc.add_rank_time(0, 0.1)
    doc = trc.to_chrome_trace()
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert {"M", "X", "C"} <= phases
    names = {e["name"] for e in doc["traceEvents"]}
    assert {"solve", "matvec", "rel_res", "rank0 busy"} <= names
    json.dumps(doc)


def test_chrome_export_rejects_wrong_schema():
    with pytest.raises(ValueError):
        chrome_trace_from_dict({"schema": "nope"})
    with pytest.raises(ValueError):
        summarize_trace({"schema": "nope"})


def test_write_json_both_formats(tmp_path):
    trc = Tracer()
    trc.begin("solve", "phase")
    trc.end()
    p1 = trc.write_json(str(tmp_path / "t.json"))
    p2 = trc.write_json(str(tmp_path / "t.chrome.json"), chrome=True)
    assert json.loads(open(p1).read())["schema"] == TRACE_SCHEMA
    assert "traceEvents" in json.loads(open(p2).read())


def test_null_tracer_is_inert():
    assert NullTracer.enabled is False
    assert NULL_TRACER.enabled is False
    assert NULL_TRACER.begin("x", "y", k=1) == -1
    NULL_TRACER.end(any_arg=2)
    NULL_TRACER.metric(iteration=1)
    NULL_TRACER.ensure_ranks(8)
    NULL_TRACER.add_rank_time(3, 1.0)
    # class attribute: per-instance guard reads never allocate a bool
    assert "enabled" not in vars(NULL_TRACER)


def test_summarize_empty_trace():
    assert "empty trace" in summarize_trace(Tracer().to_dict())
