#!/usr/bin/env python
"""Profile a representative solve and print the hot spots.

Per the optimization workflow (measure before optimizing), this script
cProfiles one EDD-FGMRES-GLS(7) solve on a chosen mesh and prints the top
functions by cumulative time — the starting point for any performance
work on the package.

    python tools/profile_solve.py [mesh_id] [n_parts]
"""

from __future__ import annotations

import cProfile
import pstats
import sys


def main() -> None:
    mesh_id = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    n_parts = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
    from repro.fem.cantilever import cantilever_problem

    problem = cantilever_problem(mesh_id)
    print(
        f"profiling: Mesh{mesh_id} ({problem.n_eqn} eqns), "
        f"EDD-FGMRES-GLS(7), P={n_parts}\n"
    )

    profiler = cProfile.Profile()
    profiler.enable()
    summary = solve_cantilever(problem, n_parts=n_parts, options=SolverOptions(precond="gls(7)"))
    profiler.disable()

    assert summary.result.converged
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    stats.print_stats(18)
    print(
        "expected hot spots: CSRMatrix.matvec (the polynomial chain), "
        "interface_assemble, DistVector arithmetic"
    )


if __name__ == "__main__":
    main()
