#!/usr/bin/env python
"""3-D cantilever: the EDD vs RDD storage argument, quantified.

Section 5 of the paper argues that for three-dimensional problems the
row-based decomposition's duplicated interface elements inflate storage
"drastically".  This example solves a 3-D H8 beam with both decompositions
and prints the replication factor RDD would pay under the Fig. 8 scheme,
alongside the usual convergence/speedup report.

Run:  python examples/beam3d.py
"""

import numpy as np

from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.core.rdd import build_rdd_system, rdd_fgmres
from repro.fem.three_d import beam3d_problem
from repro.parallel.machine import SGI_ORIGIN, modeled_time
from repro.partition.element_partition import ElementPartition
from repro.partition.node_partition import NodePartition
from repro.precond.gls import GLSPolynomial
from repro.reporting.tables import format_table

P = 8


def main() -> None:
    problem = beam3d_problem(nx=16, ny=4, nz=4)
    print(
        f"3-D beam: {problem.mesh.n_elements} H8 elements, "
        f"{problem.mesh.n_nodes} nodes, {problem.n_eqn} equations"
    )

    g = GLSPolynomial.unit_interval(7, eps=1e-6)

    epart = ElementPartition.build(problem.mesh, P)
    edd_sys = build_edd_system(
        problem.mesh, problem.material, problem.bc, epart, problem.bc.expand(problem.load)
    )
    edd_res = edd_fgmres(edd_sys, g, tol=1e-6)

    npart = NodePartition.build(problem.mesh, P)
    rdd_sys = build_rdd_system(
        problem.mesh, problem.bc, npart, problem.stiffness, problem.load
    )
    rdd_res = rdd_fgmres(rdd_sys, g, tol=1e-6)

    rows = [
        [
            "EDD (Alg. 6)",
            edd_res.iterations,
            f"{modeled_time(edd_sys.comm.stats, SGI_ORIGIN):.4f}",
            "1.000 (no duplication)",
        ],
        [
            "RDD (Alg. 8)",
            rdd_res.iterations,
            f"{modeled_time(rdd_sys.comm.stats, SGI_ORIGIN):.4f}",
            f"{rdd_sys.replication_factor():.3f}",
        ],
    ]
    print()
    print(
        format_table(
            ["method", "iterations", "modeled T origin (s)", "element replication"],
            rows,
            title=f"3-D beam, P={P}, GLS(7)",
        )
    )
    assert np.allclose(edd_res.x, rdd_res.x, rtol=1e-3, atol=1e-8)
    print(
        "\nSolutions agree; RDD's replication factor is the Fig. 8 storage/"
        "assembly overhead EDD avoids — it grows with dimensionality."
    )


if __name__ == "__main__":
    main()
