#!/usr/bin/env python
"""Modal analysis: natural frequencies of the cantilever.

Computes the lowest modes of the Table 2-style cantilever with the
package's shift-invert Lanczos (inner solves by GLS-preconditioned CG) and
compares the fundamental bending frequency against Euler-Bernoulli beam
theory — the classical structural-dynamics cross-check.  The frequencies
then justify the time-step choices of the transient examples.

Run:  python examples/modal_analysis.py
"""

import numpy as np

from repro.dynamics.modal import lowest_modes
from repro.fem.cantilever import cantilever_problem
from repro.fem.material import Material
from repro.reporting.tables import format_table


def main() -> None:
    # A slender beam so Euler-Bernoulli theory applies (L/h = 10).
    mat = Material(E=1000.0, nu=0.0, rho=1.0)  # nu=0: no Poisson stiffening
    problem = cantilever_problem(nx=40, ny=4, material=mat, with_mass=True)
    length, height = 40.0, 4.0
    print(
        f"cantilever {length} x {height}, {problem.n_eqn} equations, "
        f"E={mat.E}, rho={mat.rho}"
    )

    result = lowest_modes(problem.stiffness, problem.mass, n_modes=4)

    # Euler-Bernoulli fundamental bending frequency:
    # omega_1 = (1.8751)^2 sqrt(E I / (rho A L^4)), per unit thickness.
    inertia = height**3 / 12.0
    area = height
    omega_eb = 1.8751**2 * np.sqrt(mat.E * inertia / (mat.rho * area * length**4))

    rows = [
        [i + 1, f"{w:.5f}", f"{w / (2 * np.pi):.5f}"]
        for i, w in enumerate(result.omega)
    ]
    print()
    print(
        format_table(
            ["mode", "omega (rad/s)", "f (Hz)"],
            rows,
            title="lowest natural frequencies",
        )
    )
    ratio = result.omega[0] / omega_eb
    print(f"\nEuler-Bernoulli omega_1: {omega_eb:.5f}")
    print(
        f"FEM/theory ratio: {ratio:.3f}  (within ~1% of beam theory)"
    )

    # A stable-and-accurate Newmark step resolves the highest mode of
    # interest: dt ~ T_4 / 20.
    dt = 2 * np.pi / result.omega[-1] / 20
    print(f"suggested Newmark dt for 4-mode accuracy: {dt:.3f}")


if __name__ == "__main__":
    main()
