#!/usr/bin/env python
"""Quickstart: solve the paper's cantilever with EDD-FGMRES + GLS(7).

Builds Table 2's Mesh4 (50x50 Q4 elements, 5100 equations), partitions it
into 8 element-based subdomains, applies the distributed norm-1 diagonal
scaling, and solves with the enhanced EDD flexible GMRES under a GLS(7)
polynomial preconditioner — the paper's recommended configuration.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SolverOptions, solve_cantilever
from repro.fem.cantilever import cantilever_problem
from repro.parallel.machine import IBM_SP2, SGI_ORIGIN


def main() -> None:
    problem = cantilever_problem(4)  # Table 2, Mesh4
    print(
        f"Mesh4: {problem.mesh.n_elements} Q4 elements, "
        f"{problem.mesh.n_nodes} nodes, {problem.n_eqn} equations"
    )

    # comm_backend="thread" runs the 8 rank programs concurrently on a
    # worker pool — bit-identical to the default serial "virtual" backend.
    options = SolverOptions(precond="gls(7)")
    summary = solve_cantilever(problem, n_parts=8, options=options)
    res = summary.result
    print(f"\nEDD-FGMRES-GLS(7) on P=8 subdomains: {res}")

    # Verify against the assembled system.
    r = problem.load - problem.stiffness.matvec(res.x)
    rel = np.linalg.norm(r) / np.linalg.norm(problem.load)
    print(f"true relative residual: {rel:.2e}")

    # What the run cost, per the recorded counters.
    st = summary.stats
    print(
        f"\nper-run totals: {st.total_flops:,} flops, "
        f"{st.total_nbr_messages} neighbour messages "
        f"({st.total_nbr_words:,} words), "
        f"{st.max_reductions} allreduces"
    )
    for machine in (SGI_ORIGIN, IBM_SP2):
        print(
            f"modeled wall-clock on {machine.name}: "
            f"{summary.modeled_time(machine):.4f} s"
        )

    tip = res.x[-2]  # x-displacement of the last free DOF (top-right node)
    print(f"\ntip axial displacement: {tip:.6e}")


if __name__ == "__main__":
    main()
