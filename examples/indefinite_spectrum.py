#!/usr/bin/env python
"""GLS polynomial preconditioning on a symmetric *indefinite* system.

The paper motivates the generalized least-squares construction by its
ability to take Theta as a union of intervals straddling zero (Eq. 18) —
something Neumann and Chebyshev preconditioners cannot do.  This example
builds a shifted stiffness matrix K - sigma*M (indefinite for sigma inside
the spectrum, the kernel of eigenvalue and Helmholtz-like problems),
estimates its two-sided spectrum, and compares GLS-preconditioned FGMRES
against the unpreconditioned solver.

Run:  python examples/indefinite_spectrum.py
"""

import numpy as np

from repro.dynamics.newmark import effective_matrix
from repro.fem.cantilever import cantilever_problem
from repro.precond.gls import GLSPolynomial
from repro.precond.scaling import scale_system
from repro.reporting.tables import format_table
from repro.solvers.fgmres import fgmres
from repro.spectrum.intervals import SpectrumIntervals
from repro.spectrum.lanczos import lanczos_extreme_eigenvalues


def main() -> None:
    problem = cantilever_problem(nx=12, ny=4, with_mass=True)
    # Shift into indefiniteness: K - sigma*M with sigma between two
    # generalized eigenvalues of (K, M).
    import scipy.linalg

    evals_low = scipy.linalg.eigh(
        problem.stiffness.toarray(),
        problem.mass.toarray(),
        eigvals_only=True,
        subset_by_index=(0, 5),
    )
    sigma = 0.5 * (evals_low[2] + evals_low[3])
    shifted = effective_matrix(problem.stiffness, problem.mass, alpha=-sigma)
    ss = scale_system(shifted, problem.load)
    print(
        f"shifted system K - {sigma:.3f} M: {ss.a.shape[0]} equations "
        "(symmetric indefinite)"
    )

    # Two-sided spectrum estimate via Lanczos.
    lo, hi = lanczos_extreme_eigenvalues(ss.a.matvec, ss.a.shape[0], n_steps=60)
    print(f"Lanczos spectrum estimate: [{lo:.4f}, {hi:.4f}]")
    gap = 0.01 * (hi - lo)
    theta = SpectrumIntervals([(lo - gap, -gap), (gap, hi + gap)])
    print(f"Theta = ({lo - gap:.4f}, {-gap:.4f}) u ({gap:.4f}, {hi + gap:.4f})")

    mv = ss.a.matvec
    rows = []
    for name, pre in {
        "none": None,
        "GLS(8) on union": (
            lambda g: (lambda v: g.apply_linear(mv, v))
        )(GLSPolynomial(theta, 8)),
        "GLS(16) on union": (
            lambda g: (lambda v: g.apply_linear(mv, v))
        )(GLSPolynomial(theta, 16)),
    }.items():
        res = fgmres(mv, ss.b, pre, restart=40, tol=1e-8, max_iter=5000)
        rows.append(
            ["FGMRES", name, res.iterations, "yes" if res.converged else "NO"]
        )
    # MINRES exploits the symmetry the shifted system keeps: short
    # recurrences, no restart, indefiniteness welcome.
    from repro.solvers.minres import minres

    mres = minres(mv, ss.b, tol=1e-8, max_iter=5000)
    rows.append(
        ["MINRES", "none", mres.iterations, "yes" if mres.converged else "NO"]
    )
    print()
    print(
        format_table(
            ["solver", "preconditioner", "iterations", "converged"],
            rows,
            title="Krylov solvers on the indefinite shifted system",
        )
    )


if __name__ == "__main__":
    main()
