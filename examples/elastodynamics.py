#!/usr/bin/env python
"""Elastodynamics: transient cantilever under a suddenly-applied tip load.

Integrates M u'' + K u = f with the Newmark average-acceleration rule
(the paper's Eq. 51-52 workload), solving the effective system each step
with polynomial-preconditioned FGMRES, and prints the tip-displacement
history — the undamped response oscillates around the static deflection
with twice its amplitude, a classical structural-dynamics sanity check.

Run:  python examples/elastodynamics.py
"""

import numpy as np

from repro.dynamics.newmark import NewmarkIntegrator
from repro.dynamics.transient import run_transient
from repro.fem.cantilever import cantilever_problem
from repro.precond.gls import GLSPolynomial
from repro.reporting.tables import format_table


def main() -> None:
    problem = cantilever_problem(nx=20, ny=5, with_mass=True)
    print(
        f"cantilever: {problem.mesh.n_elements} elements, "
        f"{problem.n_eqn} equations"
    )

    dt = 0.4
    nm = NewmarkIntegrator(problem.stiffness, problem.mass, dt=dt)
    g = GLSPolynomial.unit_interval(7, eps=1e-6)
    result = run_transient(
        nm,
        lambda t: problem.load,  # step load switched on at t = 0
        n_steps=120,
        precond_factory=lambda mv: (lambda v: g.apply_linear(mv, v)),
    )

    tip_dof = len(problem.load) - 2  # axial DOF of the top-right node
    tip = result.displacements[:, tip_dof]
    u_static = np.linalg.solve(problem.stiffness.toarray(), problem.load)[
        tip_dof
    ]

    rows = [
        [f"{result.times[i]:.1f}", f"{tip[i]:.4e}", result.iterations_per_step[i]]
        for i in range(0, 120, 10)
    ]
    print()
    print(
        format_table(
            ["t", "tip displacement", "FGMRES iters"],
            rows,
            title=f"transient response (dt={dt}, GLS(7) preconditioning)",
        )
    )
    print(f"\nstatic deflection          : {u_static:.4e}")
    print(f"peak dynamic deflection    : {tip.max():.4e}")
    print(f"dynamic amplification      : {tip.max() / u_static:.2f}  (~2.0 expected)")
    print(f"total FGMRES iterations    : {result.total_iterations}")


if __name__ == "__main__":
    main()
