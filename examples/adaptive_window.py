#!/usr/bin/env python
"""Adaptive GLS window: letting the solve tune its own preconditioner.

Fig. 10 of the paper shows convergence depends on how well the GLS window
Theta matches the true spectrum.  This example compares three strategies
on Mesh3: the universal post-scaling window (eps, 1), a window from an
up-front Lanczos estimation, and the built-in adaptive solver whose first
(unpreconditioned) restart cycle doubles as the spectrum probe.

Run:  python examples/adaptive_window.py
"""

from repro.fem.cantilever import cantilever_problem
from repro.precond.gls import GLSPolynomial
from repro.precond.scaling import scale_system
from repro.reporting.tables import format_table
from repro.solvers.adaptive import adaptive_fgmres
from repro.solvers.fgmres import fgmres
from repro.spectrum.intervals import SpectrumIntervals
from repro.spectrum.lanczos import lanczos_extreme_eigenvalues

DEGREE = 10


def main() -> None:
    problem = cantilever_problem(3)
    ss = scale_system(problem.stiffness, problem.load)
    mv = ss.a.matvec
    n = ss.a.shape[0]
    print(f"Mesh3, {n} equations, GLS({DEGREE}), tol 1e-6\n")

    rows = []

    naive = GLSPolynomial.unit_interval(DEGREE, eps=1e-6)
    r = fgmres(mv, ss.b, lambda v: naive.apply_linear(mv, v), tol=1e-6)
    rows.append(["naive (eps, 1)", "-", r.iterations, "0"])

    lo, hi = lanczos_extreme_eigenvalues(mv, n, n_steps=30)
    theta = SpectrumIntervals.single(lo * 0.9, min(hi * 1.05, 1.0))
    sharp = GLSPolynomial(theta, DEGREE)
    r = fgmres(mv, ss.b, lambda v: sharp.apply_linear(mv, v), tol=1e-6)
    rows.append(
        [
            "Lanczos up-front",
            f"({theta.lo:.2e}, {theta.hi:.3f})",
            r.iterations,
            "30 (Lanczos matvecs)",
        ]
    )

    r, theta_ad = adaptive_fgmres(mv, ss.b, degree=DEGREE, tol=1e-6)
    rows.append(
        [
            "adaptive (probe cycle)",
            f"({theta_ad.lo:.2e}, {theta_ad.hi:.3f})",
            r.iterations,
            "folded into the count",
        ]
    )

    print(
        format_table(
            ["strategy", "window", "iterations", "probing overhead"],
            rows,
            title="GLS window strategies (iterations include any probing)",
        )
    )
    post_probe = r.iterations - 25
    print(
        f"\nPost-probe the adaptive run needed {post_probe} iterations — the"
        "\nsame per-cycle rate as the Lanczos window, without a separate"
        "\nestimation pass.  On an easy system the probe does not pay for"
        "\nitself; it wins when the same operator is solved repeatedly"
        "\n(transient runs) and the window is reused across steps."
    )


if __name__ == "__main__":
    main()
