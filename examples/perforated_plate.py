#!/usr/bin/env python
"""Unstructured workload: a perforated plate under tension.

Demonstrates the pipeline on a genuinely unstructured, non-convex domain:
a Delaunay-triangulated plate with a central hole, pulled on its right
edge.  The greedy graph partitioner handles the irregular dual graph, and
the stress concentration at the hole shows up as amplified displacement
gradients near it.

Run:  python examples/perforated_plate.py
"""

import numpy as np

from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.fem.assembly import assemble_matrix
from repro.fem.bc import apply_dirichlet, clamp_edge_dofs
from repro.fem.loads import edge_traction_load
from repro.fem.material import Material
from repro.fem.unstructured import perforated_plate
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map
from repro.partition.metrics import partition_metrics
from repro.precond.gls import GLSPolynomial
from repro.reporting.tables import format_table


def main() -> None:
    mesh = perforated_plate(nx=40, ny=20, lx=2.0, ly=1.0, hole_radius=0.22)
    mat = Material(E=100.0, nu=0.3)
    bc = clamp_edge_dofs(mesh, "left")
    f = edge_traction_load(mesh, "right", (1.0, 0.0))
    print(
        f"perforated plate: {mesh.n_elements} T3 elements, "
        f"{mesh.n_nodes} nodes, {bc.n_free} equations"
    )

    part = ElementPartition.build(mesh, 8, method="greedy")
    submap = build_subdomain_map(mesh, part, bc)
    m = partition_metrics(submap)
    print(
        f"greedy partition: imbalance {m.imbalance:.2f}, "
        f"interface fraction {m.interface_fraction:.3f}, "
        f"avg neighbours {m.avg_neighbors:.1f}"
    )

    system = build_edd_system(mesh, mat, bc, part, f)
    res = edd_fgmres(system, GLSPolynomial.unit_interval(7, eps=1e-6), tol=1e-8)
    print(f"\nEDD-FGMRES-GLS(7): {res}")

    # verify against the assembled system
    k_red, f_red = apply_dirichlet(assemble_matrix(mesh, mat), f, bc)
    r = f_red - k_red.matvec(res.x)
    print(f"true relative residual: {np.linalg.norm(r) / np.linalg.norm(f_red):.2e}")

    # stress concentration: strain proxy (du_x/dx) near the hole vs far field
    full = bc.expand(res.x)
    ux = full[0::2]
    x, y = mesh.coords[:, 0], mesh.coords[:, 1]
    near = (np.abs(x - 1.0) < 0.12) & (np.abs(y - 0.5) > 0.22) & (
        np.abs(y - 0.5) < 0.38
    )
    rows = [
        ["far-field tip u_x", f"{ux.max():.4e}"],
        ["nodes near hole flank", int(near.sum())],
        ["max |u_y| near hole", f"{np.abs(full[1::2][near]).max():.4e}"],
    ]
    print()
    print(format_table(["quantity", "value"], rows, title="response summary"))


if __name__ == "__main__":
    main()
