#!/usr/bin/env python
"""Heat conduction: the solver stack on a different PDE.

Solves steady heat conduction on a unit plate (zero boundary temperature,
unit source) with the same distributed pipeline the elasticity problems
use — the generic assembler hook of ``build_edd_system_from_assembler``
takes a scalar conductivity assembly and everything else (partitioning,
norm-1 scaling, GLS polynomial, EDD-FGMRES) is untouched.  The centre
temperature is checked against the textbook Poisson value.

Run:  python examples/heat_conduction.py
"""

import numpy as np

from repro.core.distributed import build_edd_system_from_assembler
from repro.core.edd import edd_fgmres
from repro.fem.poisson import heat_problem
from repro.partition.element_partition import ElementPartition
from repro.precond.gls import GLSPolynomial
from repro.reporting.tables import format_table
from repro.sparse.coo import COOMatrix


def main() -> None:
    problem = heat_problem(nx=40, ny=40)
    print(
        f"unit plate, {problem.mesh.n_elements} Q4 elements, "
        f"{problem.n_eqn} temperature DOFs"
    )

    part = ElementPartition.build(problem.mesh, 8)

    def assembler(elems):
        from repro.fem.poisson import q4_conductivity

        rows, cols, data = [], [], []
        cache = {}
        for e in elems:
            conn = problem.mesh.elements[e]
            coords = problem.mesh.coords[conn]
            key = np.round(coords - coords[0], 12).tobytes()
            ke = cache.get(key)
            if ke is None:
                ke = q4_conductivity(coords)
                cache[key] = ke
            rows.append(np.repeat(conn, 4))
            cols.append(np.tile(conn, 4))
            data.append(ke.ravel())
        n = problem.mesh.n_nodes
        return COOMatrix(
            (n, n),
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(data),
        )

    system = build_edd_system_from_assembler(
        problem.mesh, problem.bc, part, problem.bc.expand(problem.load), assembler
    )
    res = edd_fgmres(system, GLSPolynomial.unit_interval(7, eps=1e-6), tol=1e-8)
    print(f"EDD-FGMRES-GLS(7), P=8: {res}")

    full = problem.bc.expand(res.x)
    centre = np.argmin(
        np.linalg.norm(problem.mesh.coords - np.array([0.5, 0.5]), axis=1)
    )
    rows = [
        ["max temperature", f"{full.max():.5f}"],
        ["centre temperature", f"{full[centre]:.5f}"],
        ["textbook centre value", "0.07367"],
    ]
    print()
    print(format_table(["quantity", "value"], rows, title="Poisson benchmark"))
    assert abs(full[centre] - 0.07367) < 2e-3


if __name__ == "__main__":
    main()
