#!/usr/bin/env python
"""Parallel scaling study: regenerate a Table-3-style report.

Sweeps processor counts and GLS degrees over a chosen mesh, solving with
the enhanced EDD-FGMRES, and prints iterations, modeled time and speedup on
both machine models — the workflow behind Table 3 and Figs. 15-17.

Run:  python examples/scaling_study.py [mesh_id]
"""

import sys

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.cantilever import cantilever_problem
from repro.parallel.machine import IBM_SP2, SGI_ORIGIN, modeled_time
from repro.reporting.tables import format_table

RANKS = (1, 2, 4, 8)
DEGREES = (3, 7, 10)


def main() -> None:
    mesh_id = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    problem = cantilever_problem(mesh_id)
    print(
        f"Mesh{mesh_id}: {problem.mesh.n_elements} elements, "
        f"{problem.n_eqn} equations\n"
    )

    rows = []
    for m in DEGREES:
        t1 = {}
        for p in RANKS:
            s = solve_cantilever(
                problem, n_parts=p, options=SolverOptions(precond=f"gls({m})")
            )
            assert s.result.converged
            for machine in (SGI_ORIGIN, IBM_SP2):
                tp = modeled_time(s.stats, machine)
                key = machine.name
                if p == 1:
                    t1[key] = tp
                rows.append(
                    [
                        f"GLS({m})",
                        machine.name,
                        p,
                        s.result.iterations,
                        f"{tp:.4f}",
                        f"{t1[key] / tp:.2f}",
                    ]
                )
    print(
        format_table(
            ["precond", "machine", "P", "iterations", "modeled T (s)", "speedup"],
            rows,
            title="EDD-FGMRES scaling (Table 3 / Fig. 17 style)",
        )
    )
    print(
        "\nShapes to look for: iterations constant in P; speedup grows with"
        "\nmesh size and polynomial degree; the Origin outscales the SP2."
    )


if __name__ == "__main__":
    main()
