"""Extension: the Fig. 17-style speedup study on an unstructured mesh.

The paper's evaluation uses structured cantilever grids only; its claims
about EDD, however, are made for "general parallel finite element
analysis" on unstructured meshes.  This bench repeats the strong-scaling
measurement on a Delaunay perforated plate (irregular dual graph, greedy
partitioner) and asserts the same qualitative behaviour carries over.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.fem.bc import clamp_edge_dofs
from repro.fem.loads import edge_traction_load
from repro.fem.material import Material
from repro.fem.unstructured import perforated_plate
from repro.parallel.machine import SGI_ORIGIN, modeled_time
from repro.partition.element_partition import ElementPartition
from repro.precond.gls import GLSPolynomial
from repro.reporting.tables import format_table

RANKS = (1, 2, 4, 8)


def test_unstructured_strong_scaling(benchmark):
    mesh = perforated_plate(nx=48, ny=24, lx=2.0, ly=1.0, hole_radius=0.2)
    mat = Material(E=100.0, nu=0.3)
    bc = clamp_edge_dofs(mesh, "left")
    f = edge_traction_load(mesh, "right", (1.0, 0.0))

    def experiment():
        out = {}
        g = GLSPolynomial.unit_interval(7, eps=1e-6)
        for p in RANKS:
            part = ElementPartition.build(mesh, p, method="greedy")
            system = build_edd_system(mesh, mat, bc, part, f)
            res = edd_fgmres(system, g, tol=1e-6, max_iter=4000)
            assert res.converged
            out[p] = (res.iterations, system.comm.stats)
        return out

    data = run_once(benchmark, experiment)

    t1_per_iter = modeled_time(data[1][1], SGI_ORIGIN) / data[1][0]
    rows = []
    speedups = []
    for p, (iters, stats) in data.items():
        tp_per_iter = modeled_time(stats, SGI_ORIGIN) / iters
        speedups.append(t1_per_iter / tp_per_iter)
        rows.append(
            [p, iters, f"{tp_per_iter * 1e3:.3f}", f"{speedups[-1]:.2f}"]
        )
    print()
    print(
        format_table(
            ["P", "iterations", "modeled T/iter (ms)", "per-iter speedup"],
            rows,
            title=(
                f"Unstructured strong scaling — perforated plate, "
                f"{mesh.n_elements} T3 elements, EDD-GLS(7)"
            ),
        )
    )

    # On unstructured meshes the distributed norm-1 scaling (Algorithm 3
    # sums *local* row norms, which over-estimates true row norms on the
    # interface) produces a slightly different scaled system per
    # partition, so iteration counts wobble — a faithful property of the
    # paper's algorithm that structured grids mask.  Per-iteration speedup
    # isolates the communication scaling and must stay monotone.
    iters = [it for it, _ in data.values()]
    assert max(iters) - min(iters) <= 0.35 * max(iters)
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 3.5
