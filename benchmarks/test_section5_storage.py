"""Section 5: RDD's duplicated-element storage overhead, 2-D vs 3-D.

The paper (Fig. 8 discussion) lists two RDD drawbacks: drastically
increased storage for large (especially 3-D) meshes, and redundant
floating-point work on the duplicated interface elements.  This bench
quantifies the replication factor — total element copies over unique
elements under the "every element touching an owned node is replicated"
scheme — across rank counts and dimensionality.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.rdd import build_rdd_system
from repro.fem.cantilever import cantilever_problem
from repro.fem.three_d import beam3d_problem
from repro.partition.node_partition import NodePartition
from repro.reporting.tables import format_table

RANKS = (2, 4, 8, 16)


def test_section5_replication_overhead(benchmark):
    def experiment():
        p2 = cantilever_problem(nx=16, ny=16)  # 256 Q4 elements
        p3 = beam3d_problem(8, 8, 4)  # 256 H8 elements
        out = {}
        for label, p in (("2-D Q4", p2), ("3-D H8", p3)):
            factors = []
            for q in RANKS:
                part = NodePartition.build(p.mesh, q)
                system = build_rdd_system(
                    p.mesh, p.bc, part, p.stiffness, p.load
                )
                factors.append(system.replication_factor())
            out[label] = factors
        return out

    data = run_once(benchmark, experiment)

    rows = [
        [label] + [f"{f:.3f}" for f in factors]
        for label, factors in data.items()
    ]
    print()
    print(
        format_table(
            ["workload"] + [f"P={q}" for q in RANKS],
            rows,
            title=(
                "Section 5 — RDD element replication factor "
                "(256 elements each; EDD is always 1.0)"
            ),
        )
    )

    for label, factors in data.items():
        # replication grows with rank count
        assert all(b >= a for a, b in zip(factors, factors[1:])), label
        assert factors[0] > 1.0
    # and is strictly worse in 3-D at every P (the paper's point)
    for f2, f3 in zip(data["2-D Q4"], data["3-D H8"]):
        assert f3 > f2
