"""Comm-backend wall-clock benchmark -> BENCH_parallel.json.

Measures *actual* solve-phase wall-clock (not the modeled SP2/Origin
times) for both communicator backends across a Table 2 mesh subset, a
rank sweep and GLS degrees 0/3/7 — the measured counterpart of the
paper's Figs. 15-17 speedup study.  Every run also asserts backend
parity (identical iteration counts), so the timing table can never
silently drift from the bit-identical contract.

The headline acceptance number — thread-backend speedup > 1.3x over
virtual at P=4 with GLS(7) — is only asserted when the host actually
has multiple cores: the ThreadComm design gets its concurrency from
GIL-releasing scipy/numpy kernels, which cannot beat serial execution
on a single-CPU container.  The JSON records ``cpu_count`` so readers
can interpret the numbers.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.cantilever import PAPER_MESHES
from repro.sparse.kernels import available_backends

REPO_ROOT = Path(__file__).resolve().parents[1]

MESH_IDS = (2, 3, 4)  # 656 / 1640 / 5100 equations
DEGREES = (0, 3, 7)
RANKS = (1, 2, 4)
BACKENDS = ("virtual", "thread", "process")

#: Mesh for the resident-vs-inline dispatch-overhead section: the first
#: large tier (103040 equations) — big enough that per-op compute
#: amortizes the command pipe round-trips and the overhead ratio sits
#: near its single-CPU asymptote (arena copies scale with n too, so
#: small meshes overstate the dispatch tax).
RESIDENT_MESH = 11
#: Acceptance: worker-resident execution must stay within 1.5x of
#: inline process execution even on a single-CPU host (where it cannot
#: be faster, only amortized).
DISPATCH_OVERHEAD_MAX = 1.5


def _kernel_backend() -> str | None:
    """Prefer a GIL-releasing C kernel backend (thread concurrency needs
    it); fall back to the session default when only numpy is available."""
    for name in ("scipy", "numba"):
        if name in available_backends():
            return name
    return None


def _wall_solve(problem, n_parts, backend, degree, repeats=3):
    """Best-of-``repeats`` solve wall-clock plus the last summary."""
    opts = SolverOptions(
        precond=f"gls({degree})",
        comm_backend=backend,
        kernel_backend=_kernel_backend(),
    )
    best = float("inf")
    summary = None
    for _ in range(repeats):
        summary = solve_cantilever(problem, n_parts=n_parts, options=opts)
        best = min(best, summary.wall_time)
    return best, summary


def validate_schema(report: dict) -> None:
    """Assert the BENCH_parallel.json shape the CI smoke checks."""
    for key in (
        "suite",
        "cpu_count",
        "thread_workers",
        "process_workers",
        "runs",
        "speedup_p4_gls7",
        "speedup_p4_gls7_process",
        "resident",
        "dispatch_overhead",
    ):
        assert key in report, f"missing key {key!r}"
    assert report["suite"] == "comm-backend"
    assert report["cpu_count"] >= 1
    assert len(report["runs"]) > 0
    resident = report["resident"]
    for key in ("mesh", "n_parts", "degree", "inline_wall", "resident_wall",
                "iterations", "rank_op_dispatches_per_apply"):
        assert key in resident, f"resident section missing key {key!r}"
    assert resident["inline_wall"] > 0.0
    assert resident["resident_wall"] > 0.0
    assert resident["rank_op_dispatches_per_apply"] <= 1.0
    assert report["dispatch_overhead"] > 0.0
    for run in report["runs"]:
        for key in (
            "mesh",
            "n_eqn",
            "degree",
            "n_parts",
            "backend",
            "wall_time",
            "iterations",
            "converged",
        ):
            assert key in run, f"run missing key {key!r}"
        assert run["backend"] in BACKENDS
        assert run["wall_time"] > 0.0
        assert run["converged"] is True


def test_bench_comm_backends_json(problems):
    """Time both backends over meshes x degrees x ranks, write the table
    to ``BENCH_parallel.json`` and assert parity plus (multicore only)
    the >1.3x acceptance speedup."""
    report: dict = {
        "suite": "comm-backend",
        "cpu_count": os.cpu_count() or 1,
        "thread_workers": int(
            os.environ.get("REPRO_THREAD_WORKERS", 0)
        ) or max(2, os.cpu_count() or 1),
        "process_workers": int(
            os.environ.get("REPRO_PROCESS_WORKERS", 0)
        ) or max(2, os.cpu_count() or 1),
        "kernel_backend": _kernel_backend() or "default",
        "runs": [],
    }
    iters_by_config: dict = {}
    for mesh_id in MESH_IDS:
        problem = problems(mesh_id)
        n_eqn = PAPER_MESHES[mesh_id][3]
        for degree in DEGREES:
            for n_parts in RANKS:
                for backend in BACKENDS:
                    wall, s = _wall_solve(problem, n_parts, backend, degree)
                    report["runs"].append(
                        {
                            "mesh": mesh_id,
                            "n_eqn": n_eqn,
                            "degree": degree,
                            "n_parts": n_parts,
                            "backend": backend,
                            "wall_time": wall,
                            "iterations": s.result.iterations,
                            "converged": bool(s.result.converged),
                        }
                    )
                    key = (mesh_id, degree, n_parts)
                    if key in iters_by_config:
                        assert iters_by_config[key] == s.result.iterations, (
                            f"backend changed iteration count at {key}"
                        )
                    iters_by_config[key] = s.result.iterations

    def _wall(mesh_id, degree, n_parts, backend):
        (run,) = [
            r
            for r in report["runs"]
            if (r["mesh"], r["degree"], r["n_parts"], r["backend"])
            == (mesh_id, degree, n_parts, backend)
        ]
        return run["wall_time"]

    largest = MESH_IDS[-1]
    report["speedup_p4_gls7"] = _wall(largest, 7, 4, "virtual") / _wall(
        largest, 7, 4, "thread"
    )
    report["speedup_p4_gls7_process"] = _wall(largest, 7, 4, "virtual") / _wall(
        largest, 7, 4, "process"
    )

    # Resident-vs-inline dispatch overhead: the same process-backend
    # solve with rank ops forced inline vs forced worker-resident.
    resident_problem = problems(RESIDENT_MESH)
    saved = os.environ.get("REPRO_PROCESS_RESIDENT")
    try:
        os.environ["REPRO_PROCESS_RESIDENT"] = "0"
        inline_wall, s_inline = _wall_solve(
            resident_problem, 4, "process", 7, repeats=2
        )
        os.environ["REPRO_PROCESS_RESIDENT"] = "1"
        resident_wall, s_res = _wall_solve(
            resident_problem, 4, "process", 7, repeats=2
        )
        # Fused-dispatch contract at the same configuration, read off a
        # traced resident solve: ONE "chain" rank_op per preconditioner
        # apply, so command round-trips no longer scale with the degree.
        from repro.obs import Tracer

        trc = Tracer()
        solve_cantilever(
            resident_problem, n_parts=4, tracer=trc,
            options=SolverOptions(
                precond="gls(7)", comm_backend="process",
                kernel_backend=_kernel_backend(),
            ),
        )
        n_chains = sum(
            1 for s in trc.spans
            if s["name"] == "rank_op" and s["args"]["op"] == "chain"
        )
        n_applies = sum(
            1 for s in trc.spans if s["name"] == "precond_apply"
        )
        assert n_applies > 0 and n_chains == n_applies, (
            f"{n_chains} chain dispatches for {n_applies} "
            "preconditioner applies (need exactly 1 per apply)"
        )
        dispatches_per_apply = n_chains / n_applies
    finally:
        if saved is None:
            os.environ.pop("REPRO_PROCESS_RESIDENT", None)
        else:
            os.environ["REPRO_PROCESS_RESIDENT"] = saved
    assert s_inline.result.iterations == s_res.result.iterations, (
        "resident execution changed the iteration count"
    )
    report["resident"] = {
        "mesh": RESIDENT_MESH,
        "n_parts": 4,
        "degree": 7,
        "inline_wall": inline_wall,
        "resident_wall": resident_wall,
        "iterations": s_res.result.iterations,
        "rank_op_dispatches_per_apply": dispatches_per_apply,
    }
    report["dispatch_overhead"] = resident_wall / inline_wall
    validate_schema(report)

    out_path = REPO_ROOT / "BENCH_parallel.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print("\ncomm-backend bench (solve wall seconds):")
    for run in report["runs"]:
        print(
            f"  mesh{run['mesh']} gls({run['degree']}) P={run['n_parts']} "
            f"{run['backend']:>7}: {run['wall_time']:.4f}s "
            f"({run['iterations']} it)"
        )
    print(f"speedup @ mesh{largest}/gls(7)/P=4: {report['speedup_p4_gls7']:.2f}x")
    print(
        f"resident dispatch overhead @ mesh{RESIDENT_MESH}/gls(7)/P=4: "
        f"{report['dispatch_overhead']:.2f}x "
        f"(inline {inline_wall:.3f}s, resident {resident_wall:.3f}s)"
    )

    if (os.cpu_count() or 1) >= 2:
        assert report["speedup_p4_gls7"] > 1.3, (
            f"thread backend is only {report['speedup_p4_gls7']:.2f}x the "
            f"virtual backend at P=4/GLS(7) on {report['cpu_count']} cores "
            "(need > 1.3x)"
        )
    # The process backend runs collectives through the shared-memory pool
    # and (above the work threshold) the rank bodies worker-resident; at
    # these small sizes it is bounded-overhead rather than faster — on
    # any core count it must stay within 3x of virtual.
    assert report["speedup_p4_gls7_process"] > 1.0 / 3.0, (
        f"process backend is {1.0 / report['speedup_p4_gls7_process']:.2f}x "
        "slower than virtual at P=4/GLS(7) (allowed at most 3x)"
    )
    # Resident rank ops trade command round-trips for true multi-core
    # compute; even a single-CPU host must keep that trade bounded.
    assert report["dispatch_overhead"] <= DISPATCH_OVERHEAD_MAX, (
        f"resident execution is {report['dispatch_overhead']:.2f}x inline "
        f"process execution at mesh {RESIDENT_MESH}/P=4/GLS(7) "
        f"(allowed at most {DISPATCH_OVERHEAD_MAX}x)"
    )


def test_bench_parallel_schema_of_existing_file():
    """CI smoke: if BENCH_parallel.json is checked in / regenerated, it
    must satisfy the schema above."""
    path = REPO_ROOT / "BENCH_parallel.json"
    if not path.exists():
        import pytest

        pytest.skip("BENCH_parallel.json not generated yet")
    validate_schema(json.loads(path.read_text()))
