"""Two-level coarse-correction scaling benchmark -> BENCH_coarse.json.

Sweeps P in {1, 2, 4, 8} x Mesh {2, 3, 4} x {one-level, two-level} for
the three fine-level families the repo measures elsewhere — GLS(7) and
Neumann(20) on EDD, block-Jacobi ILU(0) on RDD — and records the
iteration count of each run.  The two-level rows use the *deflated and
translation-enriched* form of the coarse correction
(``2l(inner,deflate,tr)``).  The probe sweeps behind this PR settled
both choices: the purely additive form can slightly *increase* the
count for the polynomial preconditioners (their counts are already
P-independent, and adding an un-orthogonalized coarse term perturbs the
Krylov space), and the un-enriched one-aggregate-per-subdomain basis
mixes the x/y displacement components badly enough on wide meshes
(Mesh 4, 50x50) that plain deflation roughly *doubles* the count there.
The enriched deflation is never worse in the whole sweep and is
dramatically better exactly where one-level convergence degrades with P
(BJ-ILU(0) on Mesh 2: 64 -> 30 iterations at P=8; Mesh 4: 338 -> 114).

The headline acceptance assertions (armed when mesh 2 and P in {1, 8}
are both in the sweep):

* two-level GLS(7) at P=8 takes <= 1.5x its own P=1 count — the
  coarse space keeps convergence P-scalable; and
* two-level GLS(7) at P=8 is strictly below the one-level count at
  P=8 — the correction pays for its extra allreduce.

CI runs a reduced sweep by setting ``REPRO_COARSE_BENCH_MESHES=2`` (and
optionally ``REPRO_COARSE_BENCH_PARTS=1,8``); the assertions stay armed
as long as mesh 2 with P=1 and P=8 survive the filter.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.cantilever import PAPER_MESHES
from repro.reporting.tables import format_table

REPO_ROOT = Path(__file__).resolve().parents[1]

MESH_IDS = tuple(
    int(m)
    for m in os.environ.get("REPRO_COARSE_BENCH_MESHES", "2,3,4").split(",")
)
P_VALUES = tuple(
    int(p)
    for p in os.environ.get("REPRO_COARSE_BENCH_PARTS", "1,2,4,8").split(",")
)

#: (family label, method, one-level spec) — the two-level spec is
#: derived as ``2l(<one-level spec>,deflate,tr)``.
FAMILIES = (
    ("gls7", "edd-enhanced", "gls(7)"),
    ("neumann20", "edd-enhanced", "neumann(20)"),
    ("bj_ilu0", "rdd", "bj-ilu0"),
)
LEVELS = ("one", "two")


def _spec(one_level: str, levels: str) -> str:
    return one_level if levels == "one" else f"2l({one_level},deflate,tr)"


def validate_schema(report: dict) -> None:
    """Assert the BENCH_coarse.json shape the CI smoke checks."""
    for key in ("suite", "mesh_ids", "p_values", "runs"):
        assert key in report, f"missing key {key!r}"
    assert report["suite"] == "coarse-scaling"
    assert len(report["runs"]) > 0
    families = {f[0] for f in FAMILIES}
    for run in report["runs"]:
        for key in (
            "family",
            "method",
            "precond",
            "levels",
            "mesh",
            "n_eqn",
            "p",
            "iterations",
            "converged",
        ):
            assert key in run, f"run missing key {key!r}"
        assert run["family"] in families
        assert run["levels"] in LEVELS
        assert run["p"] >= 1
        assert run["iterations"] >= 1
        assert run["converged"] is True


def test_bench_coarse_scaling_json(problems):
    """Iteration counts over P x mesh x {one,two}-level x family, written
    to ``BENCH_coarse.json``; asserts the P-scalability acceptance
    criteria for two-level GLS(7) on Mesh 2."""
    report: dict = {
        "suite": "coarse-scaling",
        "mesh_ids": list(MESH_IDS),
        "p_values": list(P_VALUES),
        "two_level_mode": "deflate,tr",
        "runs": [],
    }
    for mesh_id in MESH_IDS:
        problem = problems(mesh_id)
        n_eqn = PAPER_MESHES[mesh_id][3]
        for family, method, one_level in FAMILIES:
            for levels in LEVELS:
                for p in P_VALUES:
                    spec = _spec(one_level, levels)
                    s = solve_cantilever(
                        problem,
                        n_parts=p,
                        options=SolverOptions(method=method, precond=spec),
                    )
                    assert s.result.converged, (
                        f"{spec} diverged at P={p} on mesh {mesh_id}"
                    )
                    report["runs"].append(
                        {
                            "family": family,
                            "method": method,
                            "precond": spec,
                            "levels": levels,
                            "mesh": mesh_id,
                            "n_eqn": n_eqn,
                            "p": p,
                            "iterations": s.result.iterations,
                            "converged": bool(s.result.converged),
                        }
                    )

    def _iters(family, levels, mesh, p):
        (run,) = [
            r
            for r in report["runs"]
            if (r["family"], r["levels"], r["mesh"], r["p"])
            == (family, levels, mesh, p)
        ]
        return run["iterations"]

    validate_schema(report)
    out_path = REPO_ROOT / "BENCH_coarse.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print()
    for mesh_id in MESH_IDS:
        rows = []
        for family, _, one_level in FAMILIES:
            for levels in LEVELS:
                rows.append(
                    [_spec(one_level, levels)]
                    + [_iters(family, levels, mesh_id, p) for p in P_VALUES]
                )
        print(
            format_table(
                ["preconditioner"] + [f"P={p}" for p in P_VALUES],
                rows,
                title=f"Mesh{mesh_id} iterations, one- vs two-level (deflate,tr)",
            )
        )

    if 2 in MESH_IDS and 1 in P_VALUES and 8 in P_VALUES:
        two_p1 = _iters("gls7", "two", 2, 1)
        two_p8 = _iters("gls7", "two", 2, 8)
        one_p8 = _iters("gls7", "one", 2, 8)
        report["gls7_mesh2_growth_p8_over_p1"] = two_p8 / two_p1
        out_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        assert two_p8 <= 1.5 * two_p1, (
            f"two-level GLS(7) grew from {two_p1} (P=1) to {two_p8} (P=8) "
            "iterations on Mesh 2 — coarse correction is not P-scalable"
        )
        assert two_p8 < one_p8, (
            f"two-level GLS(7) at P=8 on Mesh 2 took {two_p8} iterations, "
            f"not below the one-level count {one_p8}"
        )


def test_bench_coarse_schema_of_existing_file():
    """CI smoke: if BENCH_coarse.json is checked in / regenerated, it
    must satisfy the schema above."""
    path = REPO_ROOT / "BENCH_coarse.json"
    if not path.exists():
        import pytest

        pytest.skip("BENCH_coarse.json not generated yet")
    validate_schema(json.loads(path.read_text()))
