"""Ablation: the Krylov restart dimension.

The paper fixes m_tilde = 25.  This bench sweeps the restart length with
and without preconditioning: unpreconditioned GMRES suffers badly from
short restarts (stagnation), while a good polynomial preconditioner makes
the solver nearly restart-insensitive — one more practical payoff of
preconditioning the paper leaves implicit.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.precond.gls import GLSPolynomial
from repro.reporting.tables import format_table
from repro.solvers.fgmres import fgmres

RESTARTS = (5, 10, 25, 50)


def test_ablation_restart_dimension(benchmark, scaled_systems):
    _, ss = scaled_systems(2)
    mv = ss.a.matvec

    def experiment():
        out = {}
        g = GLSPolynomial.unit_interval(7, eps=1e-6)
        for r in RESTARTS:
            plain = fgmres(mv, ss.b, None, restart=r, tol=1e-6, max_iter=4000)
            pre = fgmres(
                mv,
                ss.b,
                lambda v: g.apply_linear(mv, v),
                restart=r,
                tol=1e-6,
                max_iter=4000,
            )
            out[r] = (plain, pre)
        return out

    data = run_once(benchmark, experiment)

    rows = [
        [
            r,
            plain.iterations if plain.converged else "stalled",
            pre.iterations if pre.converged else "stalled",
        ]
        for r, (plain, pre) in data.items()
    ]
    print()
    print(
        format_table(
            ["restart", "iters (none)", "iters (GLS(7))"],
            rows,
            title="Ablation — restart dimension (Mesh2, static)",
        )
    )

    assert all(pre.converged for _, pre in data.values())
    # the restart-5 penalty (iterations vs restart-50) is far milder for
    # the preconditioned solver than for the plain one
    pre_penalty = data[5][1].iterations / data[50][1].iterations
    plain5, plain50 = data[5][0], data[50][0]
    assert pre_penalty < 1.6
    if plain5.converged and plain50.converged:
        plain_penalty = plain5.iterations / plain50.iterations
        assert plain_penalty > 1.5 * pre_penalty