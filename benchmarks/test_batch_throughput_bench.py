"""Batched multi-RHS throughput benchmark -> BENCH_batch.json.

Measures RHS/s of ``PreparedSystem.solve_batch`` as the batch width k
grows, for {EDD enhanced, RDD} x {GLS(7), Neumann(20)} x both comm
backends on Mesh 2.  Setup (partition + system + scaling + precondi-
tioner) is done once per configuration through a ``PreparedSystem`` and
excluded from the timed region — the benchmark isolates exactly what the
batched path amortizes: Python/dispatch overhead per Krylov step, SpMM
row reuse in the kernels, and coalesced one-message-per-step interface
exchanges.

Columns are identical copies of the load vector, so every column follows
the same trajectory and all widths do the same per-column numerical work
— RHS/s across k is then a clean throughput comparison at equal work.

The headline acceptance number — >= 2x RHS/s at k=8 over k=1 for
GLS(7)/EDD on the scipy kernel backend — holds on a single-CPU
container: the win comes from amortized per-step overhead and SpMM
memory locality, not from extra cores.  The JSON records ``cpu_count``
and the kernel backend so readers can interpret the numbers.

CI runs a reduced sweep by setting ``REPRO_BATCH_BENCH_KS=1,4``; the
speedup assertion is only armed when both 1 and 8 are in the sweep.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.core.options import SolverOptions
from repro.core.session import PreparedSystem
from repro.fem.cantilever import PAPER_MESHES
from repro.sparse.kernels import available_backends

REPO_ROOT = Path(__file__).resolve().parents[1]

MESH_ID = 2  # 656 equations
N_PARTS = 4
K_VALUES = tuple(
    int(k)
    for k in os.environ.get("REPRO_BATCH_BENCH_KS", "1,2,4,8,16").split(",")
)
METHODS = ("edd-enhanced", "rdd")
PRECONDS = ("gls(7)", "neumann(20)")
COMM_BACKENDS = ("virtual", "thread", "process")


def _kernel_backend() -> str | None:
    """Prefer a C kernel backend (the SpMM row-reuse win lives there);
    fall back to the session default when only numpy is available."""
    for name in ("scipy", "numba"):
        if name in available_backends():
            return name
    return None


def _batch_rate(ps: PreparedSystem, b_block, repeats=3):
    """Best-of-``repeats`` batch wall-clock plus the last summary."""
    best = float("inf")
    summary = None
    for _ in range(repeats):
        summary = ps.solve_batch(b_block)
        best = min(best, summary.wall_time)
    return best, summary


def validate_schema(report: dict) -> None:
    """Assert the BENCH_batch.json shape the CI smoke checks."""
    for key in (
        "suite",
        "cpu_count",
        "kernel_backend",
        "mesh",
        "n_eqn",
        "k_values",
        "runs",
    ):
        assert key in report, f"missing key {key!r}"
    assert report["suite"] == "batch-throughput"
    assert report["cpu_count"] >= 1
    assert len(report["runs"]) > 0
    for run in report["runs"]:
        for key in (
            "method",
            "precond",
            "comm_backend",
            "k",
            "wall_time",
            "rhs_per_s",
            "iterations",
            "setup_time",
            "all_converged",
        ):
            assert key in run, f"run missing key {key!r}"
        assert run["method"] in METHODS
        assert run["comm_backend"] in COMM_BACKENDS
        assert run["k"] >= 1
        assert run["wall_time"] > 0.0
        assert run["rhs_per_s"] > 0.0
        assert run["all_converged"] is True


def test_bench_batch_throughput_json(problems):
    """Time ``solve_batch`` over k x method x precond x comm backend,
    write the table to ``BENCH_batch.json`` and assert the k=8 >= 2x
    RHS/s acceptance criterion for GLS(7)/EDD on the scipy backend."""
    problem = problems(MESH_ID)
    n_eqn = PAPER_MESHES[MESH_ID][3]
    kernel = _kernel_backend()
    report: dict = {
        "suite": "batch-throughput",
        "cpu_count": os.cpu_count() or 1,
        "kernel_backend": kernel or "default",
        "mesh": MESH_ID,
        "n_eqn": n_eqn,
        "n_parts": N_PARTS,
        "k_values": list(K_VALUES),
        "runs": [],
    }
    for method in METHODS:
        for precond in PRECONDS:
            for comm_backend in COMM_BACKENDS:
                opts = SolverOptions(
                    method=method,
                    precond=precond,
                    comm_backend=comm_backend,
                    kernel_backend=kernel,
                )
                ps = PreparedSystem.build(problem, N_PARTS, opts)
                try:
                    iters_at_k1 = None
                    for k in K_VALUES:
                        b_block = np.repeat(
                            problem.load.reshape(-1, 1), k, axis=1
                        )
                        wall, s = _batch_rate(ps, b_block)
                        # Identical columns: every width must replay the
                        # same trajectory, so RHS/s compares equal work.
                        iters = s.results[0].iterations
                        if iters_at_k1 is None:
                            iters_at_k1 = iters
                        assert iters == iters_at_k1, (
                            f"iteration count drifted with k at "
                            f"({method}, {precond}, {comm_backend})"
                        )
                        report["runs"].append(
                            {
                                "method": method,
                                "precond": precond,
                                "comm_backend": comm_backend,
                                "k": k,
                                "wall_time": wall,
                                "rhs_per_s": k / wall,
                                "iterations": iters,
                                "setup_time": ps.setup_time,
                                "all_converged": bool(s.all_converged),
                            }
                        )
                finally:
                    ps.close()

    def _rate(method, precond, comm_backend, k):
        (run,) = [
            r
            for r in report["runs"]
            if (r["method"], r["precond"], r["comm_backend"], r["k"])
            == (method, precond, comm_backend, k)
        ]
        return run["rhs_per_s"]

    if 1 in K_VALUES and 8 in K_VALUES:
        report["speedup_k8_gls7_edd"] = _rate(
            "edd-enhanced", "gls(7)", "virtual", 8
        ) / _rate("edd-enhanced", "gls(7)", "virtual", 1)

    validate_schema(report)
    out_path = REPO_ROOT / "BENCH_batch.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print("\nbatch throughput (RHS/s):")
    for run in report["runs"]:
        print(
            f"  {run['method']:>12} {run['precond']:>11} "
            f"{run['comm_backend']:>7} k={run['k']:>2}: "
            f"{run['rhs_per_s']:8.1f} RHS/s ({run['iterations']} it)"
        )
    if "speedup_k8_gls7_edd" in report:
        print(
            f"k=8 vs k=1 @ gls(7)/edd-enhanced/virtual: "
            f"{report['speedup_k8_gls7_edd']:.2f}x"
        )
        if kernel == "scipy":
            assert report["speedup_k8_gls7_edd"] >= 2.0, (
                f"batched path is only {report['speedup_k8_gls7_edd']:.2f}x "
                f"the k=1 throughput at k=8 for GLS(7)/EDD on scipy "
                "(need >= 2x)"
            )


def test_bench_batch_schema_of_existing_file():
    """CI smoke: if BENCH_batch.json is checked in / regenerated, it must
    satisfy the schema above."""
    path = REPO_ROOT / "BENCH_batch.json"
    if not path.exists():
        import pytest

        pytest.skip("BENCH_batch.json not generated yet")
    validate_schema(json.loads(path.read_text()))
