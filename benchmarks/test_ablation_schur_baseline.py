"""Ablation: EDD + polynomial FGMRES vs classical substructuring.

The paper's introduction contrasts its approach with FETI-family
substructuring.  This bench makes the trade concrete on Mesh3: the primal
Schur method needs very few interface CG iterations but pays dense
interior factorizations (O(n_I^3) per subdomain) and dense solves per
iteration; the EDD polynomial solver pays only sparse matvecs.  Total
flops on the busiest rank is the machine-independent comparison.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.core.schur import schur_solve
from repro.partition.element_partition import ElementPartition
from repro.reporting.tables import format_table

P = 8


def test_ablation_schur_vs_edd(benchmark, problems):
    p = problems(3)

    def experiment():
        part = ElementPartition.build(p.mesh, P)
        schur = schur_solve(
            p.mesh, p.material, p.bc, part, p.bc.expand(p.load), tol=1e-6
        )
        edd = solve_cantilever(p, n_parts=P, options=SolverOptions(precond="gls(7)", tol=1e-6))
        plain = solve_cantilever(p, n_parts=P, options=SolverOptions(precond="none", tol=1e-6))
        return schur, edd, plain

    schur, edd, plain = run_once(benchmark, experiment)

    rows = [
        [
            "Schur-CG (no precond)",
            schur.iterations,
            f"{schur.n_interface}",
            f"{schur.factor_flops:,}",
            f"{schur.stats.max_flops:,}",
        ],
        [
            "EDD-FGMRES-GLS(7)",
            edd.result.iterations,
            "-",
            "0",
            f"{edd.stats.max_flops:,}",
        ],
        [
            "EDD-FGMRES (no precond)",
            plain.result.iterations,
            "-",
            "0",
            f"{plain.stats.max_flops:,}",
        ],
    ]
    print()
    print(
        format_table(
            [
                "method",
                "iterations",
                "Schur size",
                "factorization flops",
                "iterative flops (max rank)",
            ],
            rows,
            title=f"Ablation — substructuring baseline (Mesh3, P={P})",
        )
    )

    assert schur.converged and edd.result.converged and plain.result.converged
    # both find the same solution
    err = np.linalg.norm(schur.x - edd.result.x) / np.linalg.norm(edd.result.x)
    assert err < 1e-4
    # like-for-like (both unpreconditioned Krylov): eliminating the
    # interiors slashes the iteration count — the substructuring appeal
    assert schur.iterations < plain.result.iterations / 3
    # the Schur system is a small fraction of the global one
    assert schur.n_interface < p.n_eqn / 4
    # ...but it pays interior factorizations the EDD solver never does,
    # and its per-iteration dense solves make its iterative flops larger
    # than the polynomial solver's sparse matvecs
    assert schur.factor_flops > 0
    assert schur.stats.max_flops > edd.stats.max_flops
