"""Figure 2: GLS residual polynomials for three spectrum windows.

(a) a single positive interval (0.1, 2.5); (b) an indefinite two-interval
union (-4,-1) u (7,10); (c) a four-interval union.  The shape: the residual
is uniformly small *on* Theta and its sup norm decreases with the degree.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.precond.gls import GLSPolynomial
from repro.reporting.tables import format_table
from repro.spectrum.intervals import SpectrumIntervals

WINDOWS = {
    "a: (0.1, 2.5)": SpectrumIntervals.single(0.1, 2.5),
    "b: (-4,-1)u(7,10)": SpectrumIntervals([(-4, -1), (7, 10)]),
    "c: 4-interval union": SpectrumIntervals(
        [(-6.0, -4.1), (-3.9, -0.1), (0.1, 5.9), (6.1, 8.0)]
    ),
}
DEGREES = (4, 8, 12, 16)


def test_fig02_gls_residual_windows(benchmark):
    def experiment():
        table = {}
        for name, theta in WINDOWS.items():
            grid = theta.sample(300)
            sups, means = [], []
            for m in DEGREES:
                g = GLSPolynomial(theta, m)
                r = np.abs(g.residual(grid))
                sups.append(float(r.max()))
                means.append(float(r.mean()))
            table[name] = (sups, means)
        return table

    table = run_once(benchmark, experiment)

    rows = [
        [name]
        + [f"{s:.4f}/{u:.4f}" for s, u in zip(sups, means)]
        for name, (sups, means) in table.items()
    ]
    print()
    print(
        format_table(
            ["Theta"] + [f"sup/mean |1-lP|, m={m}" for m in DEGREES],
            rows,
            title="Fig. 2 — GLS residual over Theta",
        )
    )

    # strictly decreasing sup norm with degree on the well-separated windows
    for name in ("a: (0.1, 2.5)", "b: (-4,-1)u(7,10)"):
        sups, _ = table[name]
        assert all(b < a for a, b in zip(sups, sups[1:])), name
    # window (c) pinches the origin (intervals end at +-0.1) where the
    # residual is pinned near 1, so the sup norm saturates — the *mean*
    # residual still improves with degree
    _, means_c = table["c: 4-interval union"]
    assert means_c[-1] < means_c[0]
    # the easy single-interval window converges fastest
    assert table["a: (0.1, 2.5)"][0][-1] < table["c: 4-interval union"][0][-1]
