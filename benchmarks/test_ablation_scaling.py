"""Ablation: is the norm-1 diagonal scaling actually load-bearing?

The paper calls scaling "an indispensable pre-processing tool" because it
pins Theta to (0, 1) for free.  This bench solves the same system
(a) scaled, with the universal Theta = (eps, 1); and
(b) unscaled, with Theta taken from the Gershgorin bound — the best
    estimate available without an eigensolve.

Expected: without scaling the stiffness spectrum spans many more orders of
magnitude than its Gershgorin window suggests, so the same-degree GLS
polynomial is far less effective.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.fem.cantilever import cantilever_problem
from repro.fem.material import Material
from repro.precond.gls import GLSPolynomial
from repro.precond.scaling import scale_system
from repro.reporting.tables import format_table
from repro.solvers.fgmres import fgmres
from repro.spectrum.gershgorin import gershgorin_bound
from repro.spectrum.intervals import SpectrumIntervals

DEGREE = 7


def _bimaterial_system():
    """A two-material cantilever: steel on the left half, a 10^6-softer
    inclusion on the right.  Uniform-material systems are trivially well
    scaled (a constant row-norm factor cancels out of any spectrum-adapted
    polynomial); heterogeneity is what makes the norm-1 scaling earn its
    keep."""
    import dataclasses

    from repro.fem.assembly import assemble_matrix
    from repro.fem.bc import apply_dirichlet
    from repro.sparse.coo import COOMatrix

    base = cantilever_problem(nx=40, ny=8)
    mesh = base.mesh
    centroids = mesh.element_centroids()
    left = np.flatnonzero(centroids[:, 0] < 20.0)
    right = np.flatnonzero(centroids[:, 0] >= 20.0)
    hard = Material(E=2.0e11, nu=0.3)
    soft = Material(E=2.0e5, nu=0.3)
    k_hard = assemble_matrix(mesh, hard, element_subset=left)
    k_soft = assemble_matrix(mesh, soft, element_subset=right)
    combined = COOMatrix(
        k_hard.shape,
        np.concatenate([k_hard.rows, k_soft.rows]),
        np.concatenate([k_hard.cols, k_soft.cols]),
        np.concatenate([k_hard.data, k_soft.data]),
    )
    k_red, f_red = apply_dirichlet(
        combined, base.bc.expand(base.load), base.bc
    )
    return k_red, f_red


def test_ablation_norm1_scaling(benchmark):
    k_red, f_red = _bimaterial_system()

    def experiment():
        k, f = k_red, f_red
        out = {}
        # (a) scaled + GLS on (eps, 1)
        ss = scale_system(k, f)
        g = GLSPolynomial.unit_interval(DEGREE, eps=1e-6)
        mv = ss.a.matvec
        out["scaled, Theta=(eps,1)"] = fgmres(
            mv, ss.b, lambda v: g.apply_linear(mv, v), tol=1e-6, max_iter=4000
        )
        # (b) unscaled + GLS on the Gershgorin window
        hi = gershgorin_bound(k)
        g_raw = GLSPolynomial(
            SpectrumIntervals.single(hi * 1e-12, hi), DEGREE
        )
        out["unscaled, Gershgorin"] = fgmres(
            k.matvec,
            f,
            lambda v: g_raw.apply_linear(k.matvec, v),
            tol=1e-6,
            max_iter=4000,
        )
        # (c) unscaled, no preconditioning (the floor)
        out["unscaled, none"] = fgmres(k.matvec, f, tol=1e-6, max_iter=4000)
        return out

    results = run_once(benchmark, experiment)

    rows = [
        [name, r.iterations, "yes" if r.converged else "NO"]
        for name, r in results.items()
    ]
    print()
    print(
        format_table(
            ["configuration", "iterations", "converged"],
            rows,
            title=(
                f"Ablation — norm-1 scaling, GLS({DEGREE}), Mesh2 geometry, "
                "two-material beam (E ratio 1e6)"
            ),
        )
    )

    scaled = results["scaled, Theta=(eps,1)"]
    raw = results["unscaled, Gershgorin"]
    assert scaled.converged
    # the scaled pipeline converges decisively faster than anything built
    # on the unscaled operator
    assert (not raw.converged) or scaled.iterations < raw.iterations / 2
