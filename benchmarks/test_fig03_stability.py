"""Figure 3: the Eq. 24 floating-point error bound vs polynomial degree.

The paper's conclusion: the accumulated-error bound of GLS polynomials
explodes with the degree (keep m below ~10); the two curves correspond to
Theta = (0, 1) and Theta = (-4, -1) u (7, 10).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.precond.gls import GLSPolynomial
from repro.precond.stability import stability_curve
from repro.reporting.tables import format_table
from repro.spectrum.intervals import SpectrumIntervals

DEGREES = list(range(2, 21, 2))


def test_fig03_stability_blowup(benchmark):
    unit = SpectrumIntervals.single(1e-6, 1.0)
    union = SpectrumIntervals([(-4, -1), (7, 10)])

    def experiment():
        return {
            "(0,1)": stability_curve(
                lambda m: GLSPolynomial(unit, m), DEGREES
            ),
            "(-4,-1)u(7,10)": stability_curve(
                lambda m: GLSPolynomial(union, m), DEGREES
            ),
        }

    curves = run_once(benchmark, experiment)

    rows = [
        [m, f"{curves['(0,1)'][i]:.2e}", f"{curves['(-4,-1)u(7,10)'][i]:.2e}"]
        for i, m in enumerate(DEGREES)
    ]
    print()
    print(
        format_table(
            ["degree m", "bound, Theta=(0,1)", "bound, union"],
            rows,
            title="Fig. 3 — Eq. 24 bound m*eps*sum|a_i| vs degree",
        )
    )

    for name, c in curves.items():
        assert np.all(np.diff(c) > 0), name  # strictly growing
    # the tight (0,1) window blows up explosively; the union window (whose
    # polynomial coefficients live on a wider lambda scale) grows slower in
    # ratio but from a similar floor
    assert curves["(0,1)"][-1] / curves["(0,1)"][0] > 1e4
    assert curves["(-4,-1)u(7,10)"][-1] / curves["(-4,-1)u(7,10)"][0] > 1e2
    # degree 10 on (0,1) still keeps the bound far below 1e-6 relative
    # error — consistent with the paper restricting m < 10 in practice.
    idx10 = DEGREES.index(10)
    assert curves["(0,1)"][idx10] < 1e-6
