"""Figure 14: convergence vs GLS polynomial degree, DYNAMIC analysis.

Same sweep as Fig. 13 on the Newmark effective matrix.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.dynamics.newmark import NewmarkIntegrator
from repro.precond.gls import GLSPolynomial
from repro.precond.scaling import scale_system
from repro.reporting.tables import format_table
from repro.solvers.fgmres import fgmres

DEGREES = (1, 3, 7, 10, 20)
# stiffness-dominated effective matrix (see the Fig. 12 bench)
DT = 2.0


def _sweep(problem):
    nm = NewmarkIntegrator(problem.stiffness, problem.mass, dt=DT)
    ss = scale_system(nm.system_matrix(), problem.load)
    mv = ss.a.matvec
    out = {}
    for m in DEGREES:
        g = GLSPolynomial.unit_interval(m, eps=1e-6)
        out[m] = fgmres(
            mv,
            ss.b,
            lambda v: g.apply_linear(mv, v),
            restart=25,
            tol=1e-6,
            max_iter=3000,
        )
    return out


def _report(results, title):
    rows = [
        [f"GLS({m})", r.iterations, r.iterations * (m + 1)]
        for m, r in results.items()
    ]
    print()
    print(
        format_table(["precond", "iterations", "total matvecs"], rows, title=title)
    )


def test_fig14_dynamic_mesh1(benchmark, problems):
    p = problems(1, with_mass=True)
    results = run_once(benchmark, lambda: _sweep(p))
    _report(results, "Fig. 14 (Mesh1, dynamic): convergence vs GLS degree")
    _assert_monotone(results)


def test_fig14_dynamic_mesh2(benchmark, problems):
    p = problems(2, with_mass=True)
    results = run_once(benchmark, lambda: _sweep(p))
    _report(results, "Fig. 14 (Mesh2, dynamic): convergence vs GLS degree")
    _assert_monotone(results)


def _assert_monotone(results):
    assert all(r.converged for r in results.values())
    iters = [results[m].iterations for m in DEGREES]
    # same Eq. 54 ordering as the static case
    assert all(b < a for a, b in zip(iters, iters[1:]))
