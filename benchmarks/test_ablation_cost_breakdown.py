"""Ablation: where does the time go?  (compute / point-to-point / reduction)

Decomposes the modeled Origin time of EDD solves by polynomial degree.
Explains the Fig. 17(a) mechanism quantitatively: higher degrees shift the
budget from fixed per-iteration reductions toward well-parallelizing
matvec compute + nearest-neighbour traffic, which is exactly why they
scale better.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.parallel.machine import SGI_ORIGIN, time_breakdown
from repro.reporting.tables import format_table

DEGREES = (1, 3, 7, 10)
P = 8


def test_ablation_cost_breakdown(benchmark, problems):
    p = problems(3)

    def experiment():
        out = {}
        for m in DEGREES:
            s = solve_cantilever(p, n_parts=P, options=SolverOptions(precond=f"gls({m})"))
            assert s.result.converged
            out[m] = (s.result.iterations, time_breakdown(s.stats, SGI_ORIGIN))
        return out

    data = run_once(benchmark, experiment)

    rows = []
    for m, (iters, bd) in data.items():
        rows.append(
            [
                f"GLS({m})",
                iters,
                f"{bd['compute'] * 1e3:.2f}",
                f"{bd['p2p'] * 1e3:.2f}",
                f"{bd['reduction'] * 1e3:.2f}",
                f"{bd['reduction'] / bd['total']:.1%}",
            ]
        )
    print()
    print(
        format_table(
            ["precond", "iters", "compute (ms)", "p2p (ms)", "reduce (ms)", "reduce share"],
            rows,
            title=f"Ablation — modeled time breakdown (Mesh3, P={P}, Origin)",
        )
    )

    # reductions scale with iterations only; matvec work scales with
    # iterations*(degree+1) -> the reduction share falls as degree rises
    shares = [bd["reduction"] / bd["total"] for _, bd in data.values()]
    assert all(b < a for a, b in zip(shares, shares[1:]))
    # components always add up to the total
    for _, bd in data.values():
        assert np.isclose(
            bd["compute"] + bd["p2p"] + bd["reduction"], bd["total"]
        )
