"""Figure 12: ILU(0) vs polynomial preconditioners, DYNAMIC analysis.

Same comparison as Fig. 11 on the elastodynamics effective matrix
``K_bar = a0*M + K`` (Eq. 52, Newmark average acceleration).  Expected
shape: same preconditioner ordering as the static case; the mass shift
improves conditioning so everything converges in fewer iterations than the
corresponding static problem.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.dynamics.newmark import NewmarkIntegrator
from repro.precond.gls import GLSPolynomial
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.neumann import NeumannPolynomial
from repro.precond.scaling import scale_system
from repro.reporting.convergence import convergence_table
from repro.solvers.fgmres import fgmres

# dt chosen so the effective matrix stays stiffness-dominated (a small dt
# makes a0*M overwhelm K and every preconditioner converges in a couple of
# iterations, hiding the Fig. 12 ordering)
DT = 2.0


def _dynamic_scaled(problem):
    nm = NewmarkIntegrator(problem.stiffness, problem.mass, dt=DT)
    k_eff = nm.system_matrix()
    return scale_system(k_eff, problem.load)


def _sweep(ss):
    mv = ss.a.matvec
    g7 = GLSPolynomial.unit_interval(7, eps=1e-6)
    n20 = NeumannPolynomial(20)
    ilu = ILU0Preconditioner(ss.a)
    cases = {
        "none": None,
        "GLS(7)": lambda v: g7.apply_linear(mv, v),
        "Neum(20)": lambda v: n20.apply_linear(mv, v),
        "ILU(0)": ilu.apply,
    }
    return {
        name: fgmres(mv, ss.b, pre, restart=25, tol=1e-6, max_iter=3000)
        for name, pre in cases.items()
    }


def test_fig12_dynamic_mesh1(benchmark, problems, scaled_systems):
    p = problems(1, with_mass=True)
    ss_dyn = _dynamic_scaled(p)
    results = run_once(benchmark, lambda: _sweep(ss_dyn))
    print()
    print(f"Fig. 12 (Mesh1, dynamic cantilever, Newmark dt={DT})")
    print(convergence_table(results))
    # Mesh1 degenerate case: see the Fig. 11 bench — only the GLS(7) vs
    # ILU(0) leg of Eq. 53 is meaningful at 28 equations.
    assert all(r.converged for r in results.values())
    it = {k: v.iterations for k, v in results.items()}
    assert it["GLS(7)"] < it["ILU(0)"] < it["none"]


def test_fig12_dynamic_mesh2(benchmark, problems, scaled_systems):
    p = problems(2, with_mass=True)
    ss_dyn = _dynamic_scaled(p)
    results = run_once(benchmark, lambda: _sweep(ss_dyn))
    print()
    print(f"Fig. 12 (Mesh2, dynamic cantilever, Newmark dt={DT})")
    print(convergence_table(results))
    assert all(r.converged for r in results.values())
    it = {k: v.iterations for k, v in results.items()}
    assert it["GLS(7)"] < it["ILU(0)"] <= it["Neum(20)"]
    # mass shift improves conditioning: the preconditioned dynamic solve is
    # no slower than the same static solve
    static_ss = scaled_systems(2)[1]
    mv = static_ss.a.matvec
    g7 = GLSPolynomial.unit_interval(7, eps=1e-6)
    static = fgmres(
        mv,
        static_ss.b,
        lambda v: g7.apply_linear(mv, v),
        restart=25,
        tol=1e-6,
    )
    assert it["GLS(7)"] <= static.iterations
