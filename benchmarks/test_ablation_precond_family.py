"""Ablation: the whole preconditioner family at comparable cost.

Fixes a per-iteration budget of ~8 matvec-equivalents and compares every
preconditioner in the package on the Mesh2 static system, reporting
iterations and total matvec count (the machine-independent cost proxy).
GLS should dominate the polynomial family (it optimizes the right norm);
ILU(0)/SSOR are competitive per iteration but are not EDD-applicable.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.precond.chebyshev import ChebyshevPolynomial
from repro.precond.diagonal import JacobiPreconditioner
from repro.precond.gls import GLSPolynomial
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.neumann import NeumannPolynomial
from repro.precond.ssor import SSORPreconditioner
from repro.reporting.tables import format_table
from repro.solvers.fgmres import fgmres
from repro.spectrum.intervals import SpectrumIntervals
from repro.spectrum.lanczos import lanczos_extreme_eigenvalues

DEGREE = 7


def test_ablation_preconditioner_family(benchmark, scaled_systems):
    _, ss = scaled_systems(2)
    mv = ss.a.matvec

    def experiment():
        lo, hi = lanczos_extreme_eigenvalues(mv, ss.a.shape[0], n_steps=40)
        theta = SpectrumIntervals.single(max(lo * 0.9, 1e-9), min(hi * 1.05, 1.0))
        cases = {
            "none": (None, 1),
            f"GLS({DEGREE})": (GLSPolynomial(theta, DEGREE), DEGREE + 1),
            f"Cheb({DEGREE})": (ChebyshevPolynomial(theta, DEGREE), DEGREE + 1),
            f"Neum({DEGREE})": (
                NeumannPolynomial.for_interval(theta, DEGREE),
                DEGREE + 1,
            ),
            "Jacobi": (JacobiPreconditioner(ss.a), 1),
            "ILU(0)": (ILU0Preconditioner(ss.a), 1),
            "SSOR(1)": (SSORPreconditioner(ss.a), 1),
        }
        out = {}
        for name, (pc, mv_per_iter) in cases.items():
            if pc is None:
                pre = None
            elif hasattr(pc, "apply_linear"):
                pre = lambda v, pc=pc: pc.apply_linear(mv, v)
            else:
                pre = pc.apply
            res = fgmres(mv, ss.b, pre, restart=25, tol=1e-6, max_iter=4000)
            out[name] = (res, res.iterations * mv_per_iter)
        return out

    data = run_once(benchmark, experiment)

    rows = [
        [name, res.iterations, matvecs, "yes" if res.converged else "NO"]
        for name, (res, matvecs) in data.items()
    ]
    print()
    print(
        format_table(
            ["preconditioner", "iterations", "matvec-equivalents", "converged"],
            rows,
            title="Ablation — preconditioner family (Mesh2, static, tol 1e-6)",
        )
    )

    it = {k: v[0].iterations for k, v in data.items()}
    assert all(v[0].converged for v in data.values())
    # every preconditioner beats none
    assert all(it[k] < it["none"] for k in it if k != "none")
    # within the polynomial family at equal degree, GLS and Chebyshev
    # (both spectrum-adapted) beat the damped Neumann series
    assert it[f"GLS({DEGREE})"] <= it[f"Neum({DEGREE})"]
    assert it[f"Cheb({DEGREE})"] <= it[f"Neum({DEGREE})"]
    # Jacobi is the weakest nontrivial preconditioner here
    assert it["Jacobi"] >= it[f"GLS({DEGREE})"]