"""Weak scaling: fixed per-rank problem size.

The paper only reports strong scaling (fixed problem, more processors);
weak scaling — growing the mesh with the rank count so each rank keeps the
same load — is the complementary view a production solver is judged by.
Two efficiency views are reported:

* per-iteration modeled time normalized to P=1, which isolates the
  communication scaling of one Krylov step; and
* the iteration-count growth of one-level GLS(7) vs the two-level
  deflated-and-enriched variant ``2l(gls(7),deflate,tr)`` — the coarse
  correction from :mod:`repro.precond.coarse` is what keeps counts from
  growing as the mesh (and rank count) grows.

The ``tr`` (per-component translation) enrichment matters here: on these
square meshes the near-nullspace is dominated by whole-structure
translations/rotations, and the plain one-aggregate-per-subdomain coarse
space mixes the x/y components badly enough that un-enriched deflation
*increases* the count (69 vs 31 at P=2).  With enrichment the two-level
counts are 29/27/40/48 against one-level 31/31/67/115 — the growth from
the smallest to the largest case drops from ~5.5x to ~2.4x.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.cantilever import cantilever_problem
from repro.parallel.machine import SGI_ORIGIN, modeled_time
from repro.reporting.tables import format_table

# ~800 elements per rank: 28x28 -> 40x40 -> 56x56 -> 80x80.
CASES = [(1, 28), (2, 40), (4, 56), (8, 80)]

PRECONDS = ("gls(7)", "2l(gls(7),deflate,tr)")


def test_weak_scaling_origin(benchmark):
    def experiment():
        out = []
        for p, n in CASES:
            problem = cantilever_problem(nx=n, ny=n)
            row = {"p": p, "n": n, "n_eqn": problem.n_eqn}
            for precond in PRECONDS:
                s = solve_cantilever(
                    problem,
                    n_parts=p,
                    options=SolverOptions(precond=precond),
                )
                assert s.result.converged
                row[precond] = (
                    s.result.iterations,
                    modeled_time(s.stats, SGI_ORIGIN),
                )
            out.append(row)
        return out

    data = run_once(benchmark, experiment)

    one_level = PRECONDS[0]
    iters_1, t_1 = data[0][one_level]
    t_per_iter_1 = t_1 / iters_1
    rows = []
    effs = []
    for row in data:
        iters, t = row[one_level]
        per_iter = t / iters
        eff = t_per_iter_1 / per_iter
        effs.append(eff)
        rows.append(
            [
                row["p"],
                f"{row['n']}x{row['n']}",
                row["n_eqn"],
                iters,
                f"{per_iter * 1e3:.3f}",
                f"{eff:.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["P", "mesh", "nEqn", "iters", "T/iter (ms)", "weak efficiency"],
            rows,
            title="Weak scaling — EDD-FGMRES-GLS(7), ~800 elements/rank, Origin",
        )
    )

    # Iteration-count growth, one-level vs two-level: the coarse
    # correction's job under weak scaling.
    growth_rows = []
    for row in data:
        growth_rows.append(
            [row["p"], f"{row['n']}x{row['n']}"]
            + [row[pc][0] for pc in PRECONDS]
        )
    print(
        format_table(
            ["P", "mesh"] + list(PRECONDS),
            growth_rows,
            title="Weak scaling — iteration growth, one- vs two-level",
        )
    )

    # per-iteration weak efficiency stays high: nearest-neighbour volume
    # per rank is constant and only the log(P) reductions grow
    assert all(e > 0.7 for e in effs)
    # and the elements-per-rank load stays matched by construction
    for row in data:
        assert abs(row["n"] ** 2 / row["p"] - 784) / 784 < 0.05
    # the two-level variant never takes more iterations than one-level,
    # and grows no faster from the smallest to the largest case
    for row in data:
        assert row[PRECONDS[1]][0] <= row[one_level][0], (
            f"two-level exceeded one-level at P={row['p']}"
        )
    growth_one = data[-1][one_level][0] / data[0][one_level][0]
    growth_two = data[-1][PRECONDS[1]][0] / data[0][PRECONDS[1]][0]
    assert growth_two <= growth_one, (
        f"two-level iteration growth {growth_two:.2f}x exceeds "
        f"one-level {growth_one:.2f}x under weak scaling"
    )
