"""Weak scaling: fixed per-rank problem size.

The paper only reports strong scaling (fixed problem, more processors);
weak scaling — growing the mesh with the rank count so each rank keeps the
same load — is the complementary view a production solver is judged by.
The efficiency metric is modeled time per iteration normalized to P=1
(iteration *counts* rightly grow with the mesh since no coarse space is
used; per-iteration efficiency isolates the communication scaling).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.driver import solve_cantilever
from repro.fem.cantilever import cantilever_problem
from repro.parallel.machine import SGI_ORIGIN, modeled_time
from repro.reporting.tables import format_table

# ~800 elements per rank: 28x28 -> 40x40 -> 56x56 -> 80x80.
CASES = [(1, 28), (2, 40), (4, 56), (8, 80)]


def test_weak_scaling_origin(benchmark):
    def experiment():
        out = []
        for p, n in CASES:
            problem = cantilever_problem(nx=n, ny=n)
            s = solve_cantilever(problem, n_parts=p, precond="gls(7)")
            assert s.result.converged
            t = modeled_time(s.stats, SGI_ORIGIN)
            out.append((p, n, problem.n_eqn, s.result.iterations, t))
        return out

    data = run_once(benchmark, experiment)

    t_per_iter_1 = data[0][4] / data[0][3]
    rows = []
    effs = []
    for p, n, n_eqn, iters, t in data:
        per_iter = t / iters
        eff = t_per_iter_1 / per_iter
        effs.append(eff)
        rows.append(
            [p, f"{n}x{n}", n_eqn, iters, f"{per_iter * 1e3:.3f}", f"{eff:.2f}"]
        )
    print()
    print(
        format_table(
            ["P", "mesh", "nEqn", "iters", "T/iter (ms)", "weak efficiency"],
            rows,
            title="Weak scaling — EDD-FGMRES-GLS(7), ~800 elements/rank, Origin",
        )
    )

    # per-iteration weak efficiency stays high: nearest-neighbour volume
    # per rank is constant and only the log(P) reductions grow
    assert all(e > 0.7 for e in effs)
    # and the elements-per-rank load stays matched by construction
    for p, n, _, _, _ in data:
        assert abs(n * n / p - 784) / 784 < 0.05
