"""Table 1: communication/computation cost of one inner Arnoldi step.

The analytic model (``repro.core.complexity``) gives, per Arnoldi step with
a degree-m polynomial preconditioner:

    Algorithm 5 (EDD basic):     m+3 neighbour exchanges
    Algorithm 6 (EDD enhanced):  m+1 neighbour exchanges
    Algorithm 8 (RDD):           m+1 halo exchanges

all with 2 allreduces and m+1 matvecs.  This bench runs real solves and
asserts the recorded per-rank counters reproduce the formulas exactly.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.complexity import arnoldi_step_cost
from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.core.rdd import build_rdd_system, rdd_fgmres
from repro.fem.cantilever import cantilever_problem
from repro.partition.element_partition import ElementPartition
from repro.partition.node_partition import NodePartition
from repro.precond.neumann import NeumannPolynomial
from repro.reporting.tables import format_table

DEGREE = 7


def test_table1_measured_vs_analytic(benchmark):
    p = cantilever_problem(nx=8, ny=2)
    f_full = p.bc.expand(p.load)

    def experiment():
        rows = {}
        # two-strip element partition -> each rank has exactly 1 neighbour
        epart = ElementPartition(p.mesh, np.repeat([0, 1], 8), 2)
        for variant in ("basic", "enhanced"):
            system = build_edd_system(p.mesh, p.material, p.bc, epart, f_full)
            res = edd_fgmres(
                system,
                NeumannPolynomial(DEGREE),
                tol=1e-8,
                restart=200,
                variant=variant,
            )
            assert res.converged and res.restarts == 1
            r0 = system.comm.stats.ranks[0]
            rows[f"edd-{variant}"] = (
                res.iterations,
                r0.nbr_messages,
                r0.reductions,
            )
        npart = NodePartition.build(p.mesh, 2)
        system = build_rdd_system(p.mesh, p.bc, npart, p.stiffness, p.load)
        res = rdd_fgmres(
            system, NeumannPolynomial(DEGREE), tol=1e-8, restart=200
        )
        assert res.converged and res.restarts == 1
        r0 = system.comm.stats.ranks[0]
        rows["rdd"] = (res.iterations, r0.nbr_messages, r0.reductions)
        return rows

    rows = run_once(benchmark, experiment)

    table = []
    for name, (iters, msgs, reds) in rows.items():
        model = arnoldi_step_cost(name if name == "rdd" else name, DEGREE)
        per_iter_msgs = (msgs - 2) / iters  # subtract the restart setup
        per_iter_reds = (reds - 2) / iters
        table.append(
            [
                name,
                f"m+{int(per_iter_msgs - DEGREE)}",
                f"{per_iter_msgs:.2f}",
                model.exchanges,
                f"{per_iter_reds:.2f}",
                model.reductions,
            ]
        )
        assert per_iter_msgs == model.exchanges
        assert per_iter_reds == model.reductions
    print()
    print(
        format_table(
            [
                "algorithm",
                "exchanges (form)",
                "measured/iter",
                "model",
                "allreduce/iter",
                "model",
            ],
            table,
            title=f"Table 1 — per-Arnoldi-step collectives, degree m={DEGREE}",
        )
    )
