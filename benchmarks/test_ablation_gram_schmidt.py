"""Ablation: classical vs modified Gram-Schmidt in the distributed solver.

The paper's listings use *classical* Gram-Schmidt, and Table 1's "one
global communication" per projection batch depends on it: CGS computes all
j+1 coefficients from the unmodified vector (one batched allreduce), while
MGS needs the updated vector between projections (j+1 sequential
allreduces).  Numerically both deliver the same convergence here; the
communication ledger shows why a parallel implementation must choose CGS.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.parallel.machine import IBM_SP2, SGI_ORIGIN, modeled_time
from repro.partition.element_partition import ElementPartition
from repro.precond.gls import GLSPolynomial
from repro.reporting.tables import format_table

P = 8


def test_ablation_cgs_vs_mgs(benchmark, problems):
    p = problems(3)

    def experiment():
        out = {}
        for orth in ("cgs", "mgs"):
            part = ElementPartition.build(p.mesh, P)
            system = build_edd_system(
                p.mesh, p.material, p.bc, part, p.bc.expand(p.load)
            )
            res = edd_fgmres(
                system,
                GLSPolynomial.unit_interval(7, eps=1e-6),
                tol=1e-6,
                orthogonalization=orth,
            )
            out[orth] = (res, system.comm.stats)
        return out

    data = run_once(benchmark, experiment)

    rows = []
    for orth, (res, stats) in data.items():
        rows.append(
            [
                orth,
                res.iterations,
                stats.ranks[0].reductions,
                f"{modeled_time(stats, SGI_ORIGIN) * 1e3:.1f}",
                f"{modeled_time(stats, IBM_SP2) * 1e3:.1f}",
            ]
        )
    print()
    print(
        format_table(
            ["orthogonalization", "iters", "allreduces", "T origin (ms)", "T sp2 (ms)"],
            rows,
            title=f"Ablation — CGS vs MGS (Mesh3, P={P}, GLS(7))",
        )
    )

    cgs_res, cgs_stats = data["cgs"]
    mgs_res, mgs_stats = data["mgs"]
    # same numerics (well-conditioned preconditioned system)
    assert abs(cgs_res.iterations - mgs_res.iterations) <= 2
    err = np.linalg.norm(cgs_res.x - mgs_res.x) / np.linalg.norm(cgs_res.x)
    assert err < 1e-4
    # MGS multiplies the reduction count severalfold...
    assert mgs_stats.max_reductions > 3 * cgs_stats.max_reductions
    # ...and loses on modeled time on both machines
    assert modeled_time(mgs_stats, SGI_ORIGIN) > modeled_time(
        cgs_stats, SGI_ORIGIN
    )
    assert modeled_time(mgs_stats, IBM_SP2) > modeled_time(cgs_stats, IBM_SP2)
