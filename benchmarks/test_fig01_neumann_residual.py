"""Figure 1: Neumann-series residual polynomials ``1 - lambda P_{m-1}``.

The paper plots the residual for m = 5, 6, 7 over the window (0, 30) with
omega chosen for the window; the shape to reproduce is a residual that is
~1 at lambda -> 0, shrinks over the interior, and decreases with m near
the window's center.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.precond.neumann import NeumannPolynomial
from repro.reporting.tables import format_table
from repro.spectrum.intervals import SpectrumIntervals


def test_fig01_neumann_residual_curves(benchmark):
    theta = SpectrumIntervals.single(0.0, 30.0)
    lam = np.linspace(0.5, 29.5, 59)

    def experiment():
        curves = {}
        for m in (5, 6, 7):
            p = NeumannPolynomial.for_interval(
                SpectrumIntervals.single(1e-3, 30.0), m
            )
            curves[m] = p.residual(lam)
        return curves

    curves = run_once(benchmark, experiment)

    rows = []
    for m, r in curves.items():
        rows.append(
            [
                f"Neum({m})",
                f"{np.abs(r).max():.3f}",
                f"{np.abs(r).mean():.3f}",
                f"{np.abs(r[len(r) // 2]):.2e}",
            ]
        )
    print()
    print(
        format_table(
            ["polynomial", "max|resid|", "mean|resid|", "|resid| mid-window"],
            rows,
            title="Fig. 1 — Neumann residual 1 - lambda*P_m(lambda) on (0, 30)",
        )
    )

    # Shape assertions: residual ~ (1 - omega*lambda)^{m+1} — near zero at
    # mid-window, increasing to ~1 at the ends, improving with degree.
    mid = len(lam) // 2
    mids = [abs(curves[m][mid]) for m in (5, 6, 7)]
    assert all(v < 1e-6 for v in mids)
    for m in (5, 6, 7):
        r = np.abs(curves[m])
        assert r[0] > 0.5  # pinned near 1 at lambda -> 0
        assert r.min() < 1e-6
