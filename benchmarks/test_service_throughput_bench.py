"""Service throughput benchmark -> BENCH_service.json.

Two workloads against a live :class:`SolverService`:

* **closed loop, hot key** — ``CONCURRENCY`` workers each keep exactly
  one request in flight against the same key (Mesh 2, EDD, GLS(7), P=4),
  run twice: coalescing on vs off.  With coalescing the service stacks
  the concurrent arrivals into one block solve per window (the PR-4
  batched path: k RHS for the message count of one), without it the same
  key serializes solo solves — so sustained RHS/s must be markedly
  higher with coalescing.  The acceptance criterion asserted here:
  **>= 1.5x RHS/s at concurrency 8** (PR 4 measured ~3x at k=8 for the
  underlying block kernels; 1.5x leaves room for service overhead).
* **open loop, mixed tenants** — a deterministic arrival schedule spread
  over three preconditioner keys (GLS(7), Neumann(20) and the two-level
  ``2l(gls(7),deflate)``) and three tenants, reported for latency
  percentiles and per-tenant accounting; asserts every response is ok.

Request latency is measured caller-side (submit to response) and
reported as p50/p95/p99 per arm.  The prepared-system cache is warmed
before each timed arm so the numbers isolate steady-state serving, not
one-time setup.

CI runs a reduced sweep via ``REPRO_SERVICE_BENCH_REQUESTS`` (total
closed-loop requests per arm; default 48) and
``REPRO_SERVICE_BENCH_CONCURRENCY`` (default 8; the speedup assertion is
only armed at 8).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.options import SolverOptions
from repro.fem.cantilever import PAPER_MESHES
from repro.service import ServiceConfig, SolveRequest, SolverService

REPO_ROOT = Path(__file__).resolve().parents[1]

MESH_ID = 2  # 656 equations
N_PARTS = 4
HOT_OPTIONS = SolverOptions(method="edd-enhanced", precond="gls(7)")
CONCURRENCY = int(os.environ.get("REPRO_SERVICE_BENCH_CONCURRENCY", "8"))
TOTAL_REQUESTS = int(os.environ.get("REPRO_SERVICE_BENCH_REQUESTS", "48"))

MIXED_KEYS = (
    ("gls7", SolverOptions(method="edd-enhanced", precond="gls(7)")),
    ("neumann20", SolverOptions(method="edd-enhanced", precond="neumann(20)")),
    ("2l-gls7", SolverOptions(method="edd-enhanced",
                              precond="2l(gls(7),deflate)")),
)


def _percentiles(latencies: list) -> dict:
    arr = np.asarray(latencies)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
        "max": float(arr.max()),
    }


async def _closed_loop_arm(coalesce: bool) -> dict:
    """CONCURRENCY workers, one request in flight each, hot key only."""
    config = ServiceConfig(
        coalesce=coalesce,
        batch_window=0.01,
        max_batch=CONCURRENCY,
        max_inflight=2,
        queue_limit=4 * CONCURRENCY,
        default_timeout=None,
    )
    per_worker = max(1, TOTAL_REQUESTS // CONCURRENCY)
    latencies: list = []
    statuses: list = []
    async with SolverService(config) as svc:
        warm = await svc.submit(SolveRequest(
            mesh=MESH_ID, n_parts=N_PARTS, options=HOT_OPTIONS,
        ))
        assert warm.status == "ok"

        async def worker(w: int) -> None:
            for i in range(per_worker):
                req = SolveRequest(
                    mesh=MESH_ID, n_parts=N_PARTS, options=HOT_OPTIONS,
                    rhs_scale=1.0 + 0.01 * (w * per_worker + i),
                    tenant=f"w{w}",
                )
                t0 = time.perf_counter()
                resp = await svc.submit(req)
                latencies.append(time.perf_counter() - t0)
                statuses.append(resp.status)

        t_start = time.perf_counter()
        await asyncio.gather(*(worker(w) for w in range(CONCURRENCY)))
        wall = time.perf_counter() - t_start
        stats = svc.stats()
    n = len(statuses)
    assert statuses == ["ok"] * n
    return {
        "coalesce": coalesce,
        "concurrency": CONCURRENCY,
        "requests": n,
        "wall_time": wall,
        "rhs_per_s": n / wall,
        "latency": _percentiles(latencies),
        "mean_batch": stats["mean_batch"],
        "max_batch_seen": stats["max_batch_seen"],
        "batches": stats["counters"]["batches"],
    }


async def _open_loop_arm() -> dict:
    """Deterministic arrival schedule over mixed keys and tenants."""
    config = ServiceConfig(
        batch_window=0.01,
        max_batch=CONCURRENCY,
        max_inflight=2,
        queue_limit=128,
        default_timeout=None,
    )
    n_requests = max(len(MIXED_KEYS), TOTAL_REQUESTS // 2)
    inter_arrival = 0.004
    latencies: list = []
    async with SolverService(config) as svc:
        for _, options in MIXED_KEYS:  # warm all three prepared systems
            warm = await svc.submit(SolveRequest(
                mesh=MESH_ID, n_parts=N_PARTS, options=options,
            ))
            assert warm.status == "ok"

        async def fire(i: int) -> str:
            name, options = MIXED_KEYS[i % len(MIXED_KEYS)]
            req = SolveRequest(
                mesh=MESH_ID, n_parts=N_PARTS, options=options,
                rhs_scale=1.0 + 0.01 * i, tenant=f"tenant-{i % 3}",
            )
            t0 = time.perf_counter()
            resp = await svc.submit(req)
            latencies.append(time.perf_counter() - t0)
            return resp.status

        async def schedule():
            tasks = []
            for i in range(n_requests):
                tasks.append(asyncio.ensure_future(fire(i)))
                await asyncio.sleep(inter_arrival)
            return await asyncio.gather(*tasks)

        t_start = time.perf_counter()
        statuses = await schedule()
        wall = time.perf_counter() - t_start
        stats = svc.stats()
    assert list(statuses) == ["ok"] * n_requests
    return {
        "requests": n_requests,
        "keys": [name for name, _ in MIXED_KEYS],
        "inter_arrival": inter_arrival,
        "wall_time": wall,
        "rhs_per_s": n_requests / wall,
        "latency": _percentiles(latencies),
        "mean_batch": stats["mean_batch"],
        "tenants": {
            name: {"rhs_solved": ts["rhs_solved"],
                   "comm_words": ts["comm_words"]}
            for name, ts in stats["tenants"].items()
        },
    }


def validate_schema(report: dict) -> None:
    """Assert the BENCH_service.json shape the CI smoke checks."""
    for key in ("suite", "cpu_count", "mesh", "n_eqn", "concurrency",
                "closed_loop", "open_loop"):
        assert key in report, f"missing key {key!r}"
    assert report["suite"] == "service-throughput"
    assert report["cpu_count"] >= 1
    assert len(report["closed_loop"]) == 2
    for arm in report["closed_loop"]:
        for key in ("coalesce", "requests", "wall_time", "rhs_per_s",
                    "latency", "mean_batch", "batches"):
            assert key in arm, f"closed-loop arm missing {key!r}"
        assert arm["rhs_per_s"] > 0.0
        for p in ("p50", "p95", "p99"):
            assert arm["latency"][p] > 0.0
    open_loop = report["open_loop"]
    for key in ("requests", "rhs_per_s", "latency", "tenants"):
        assert key in open_loop, f"open-loop missing {key!r}"
    if "coalescing_speedup" in report:
        assert report["coalescing_speedup"] > 0.0


def test_bench_service_throughput_json():
    """Run both workloads, write BENCH_service.json, and assert the
    >= 1.5x coalescing acceptance criterion at concurrency 8."""
    on = asyncio.run(_closed_loop_arm(coalesce=True))
    off = asyncio.run(_closed_loop_arm(coalesce=False))
    open_loop = asyncio.run(_open_loop_arm())

    report = {
        "suite": "service-throughput",
        "cpu_count": os.cpu_count() or 1,
        "mesh": MESH_ID,
        "n_eqn": PAPER_MESHES[MESH_ID][3],
        "n_parts": N_PARTS,
        "concurrency": CONCURRENCY,
        "total_requests": TOTAL_REQUESTS,
        "closed_loop": [on, off],
        "open_loop": open_loop,
        "coalescing_speedup": on["rhs_per_s"] / off["rhs_per_s"],
    }
    validate_schema(report)
    out_path = REPO_ROOT / "BENCH_service.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print("\nservice throughput (closed loop, hot key):")
    for arm in (on, off):
        lat = arm["latency"]
        print(
            f"  coalesce={str(arm['coalesce']):>5}: "
            f"{arm['rhs_per_s']:7.1f} RHS/s, mean batch "
            f"{arm['mean_batch']:.2f}, latency p50/p95/p99 = "
            f"{lat['p50'] * 1e3:.1f}/{lat['p95'] * 1e3:.1f}/"
            f"{lat['p99'] * 1e3:.1f} ms"
        )
    print(
        f"  open loop (mixed keys): {open_loop['rhs_per_s']:.1f} RHS/s, "
        f"p95 {open_loop['latency']['p95'] * 1e3:.1f} ms"
    )
    print(f"coalescing speedup: {report['coalescing_speedup']:.2f}x")

    assert on["mean_batch"] > 1.0, (
        "coalescing arm never batched - the window/concurrency interplay "
        "is broken"
    )
    if CONCURRENCY == 8:
        assert report["coalescing_speedup"] >= 1.5, (
            f"coalescing is only {report['coalescing_speedup']:.2f}x the "
            "no-coalescing throughput at concurrency 8 (need >= 1.5x)"
        )


def test_bench_service_schema_of_existing_file():
    """CI smoke: a checked-in / regenerated BENCH_service.json must
    satisfy the schema above."""
    path = REPO_ROOT / "BENCH_service.json"
    if not path.exists():
        import pytest

        pytest.skip("BENCH_service.json not generated yet")
    validate_schema(json.loads(path.read_text()))
