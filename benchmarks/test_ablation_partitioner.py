"""Ablation: partitioner choice (RCB vs greedy graph growing).

The solvers are partition-agnostic numerically (same iteration counts),
but communication volume follows interface size.  This bench compares the
two built-in partitioners on partition metrics and resulting traffic.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.bc import clamp_edge_dofs
from repro.partition.element_partition import ElementPartition
from repro.partition.interface import build_subdomain_map
from repro.partition.metrics import partition_metrics
from repro.reporting.tables import format_table

P = 8


def test_ablation_rcb_vs_greedy(benchmark, problems):
    p = problems(3)

    def experiment():
        out = {}
        for method in ("rcb", "greedy", "spectral"):
            part = ElementPartition.build(p.mesh, P, method)
            submap = build_subdomain_map(p.mesh, part, p.bc)
            metrics = partition_metrics(submap)
            run = solve_cantilever(p, n_parts=P, options=SolverOptions(precond="gls(7)", partition_method=method))
            out[method] = (metrics, run)
        return out

    data = run_once(benchmark, experiment)

    rows = []
    for method, (m, run) in data.items():
        rows.append(
            [
                method,
                f"{m.imbalance:.3f}",
                f"{m.interface_fraction:.4f}",
                m.total_shared_words,
                f"{m.avg_neighbors:.1f}",
                run.result.iterations,
                run.stats.total_nbr_words,
            ]
        )
    print()
    print(
        format_table(
            [
                "partitioner",
                "imbalance",
                "iface frac",
                "iface words",
                "avg nbrs",
                "iters",
                "solve words",
            ],
            rows,
            title=f"Ablation — partitioner choice (Mesh3, P={P}, GLS(7))",
        )
    )

    rcb_m, rcb_run = data["rcb"]
    greedy_m, greedy_run = data["greedy"]
    # all converge with near-identical iteration counts
    for _, run in data.values():
        assert run.result.converged
        assert abs(run.result.iterations - rcb_run.result.iterations) <= 3
    # all stay balanced with modest interfaces
    for m, _ in data.values():
        assert m.imbalance < 1.5
        assert m.interface_fraction < 0.25
    # traffic tracks interface size
    if rcb_m.total_shared_words < greedy_m.total_shared_words:
        assert rcb_run.stats.total_nbr_words <= greedy_run.stats.total_nbr_words * 1.1
