"""Figure 10: EDD-GMRES-GLS(10) convergence vs the spectrum estimate Theta.

The paper's observation: Theta = (0, 1) is always *valid* after norm-1
scaling but not optimal — a window matched to the true extreme eigenvalues
converges in fewer iterations, while an under-estimating window (missing
the top of the spectrum) degrades convergence.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.partition.element_partition import ElementPartition
from repro.precond.gls import GLSPolynomial
from repro.reporting.tables import format_table
from repro.spectrum.intervals import SpectrumIntervals
from repro.spectrum.lanczos import lanczos_extreme_eigenvalues

DEGREE = 10


def test_fig10_theta_estimation_quality(benchmark, problems, scaled_systems):
    p, ss = scaled_systems(2)

    def experiment():
        lam_min, lam_max = lanczos_extreme_eigenvalues(
            ss.a.matvec, ss.a.shape[0], n_steps=40
        )
        windows = {
            "naive (eps, 1)": SpectrumIntervals.single(1e-6, 1.0),
            "lanczos-matched": SpectrumIntervals.single(
                max(lam_min * 0.9, 1e-8), min(lam_max * 1.05, 1.0)
            ),
            "over-wide (eps, 2)": SpectrumIntervals.single(1e-6, 2.0),
            "under (eps, lam_max/2)": SpectrumIntervals.single(
                1e-6, lam_max / 2
            ),
        }
        f_full = p.bc.expand(p.load)
        part = ElementPartition.build(p.mesh, 4)
        iters = {}
        for name, theta in windows.items():
            system = build_edd_system(
                p.mesh, p.material, p.bc, part, f_full
            )
            g = GLSPolynomial(theta, DEGREE)
            res = edd_fgmres(system, g, tol=1e-6, max_iter=2000)
            iters[name] = (res.iterations, res.converged)
        return (lam_min, lam_max), iters

    (lam_min, lam_max), iters = run_once(benchmark, experiment)

    rows = [
        [name, it, "yes" if conv else "NO"]
        for name, (it, conv) in iters.items()
    ]
    print()
    print(
        format_table(
            ["Theta estimate", "iterations", "converged"],
            rows,
            title=(
                "Fig. 10 — EDD-GMRES-GLS(10) vs Theta "
                f"(true spectrum ~ [{lam_min:.2e}, {lam_max:.3f}])"
            ),
        )
    )

    # the valid windows all converge
    for name in ("naive (eps, 1)", "lanczos-matched", "over-wide (eps, 2)"):
        assert iters[name][1], name
    # matched window beats the naive (0,1) default
    assert iters["lanczos-matched"][0] <= iters["naive (eps, 1)"][0]
    # an over-wide window wastes polynomial effort
    assert iters["naive (eps, 1)"][0] <= iters["over-wide (eps, 2)"][0]
    # an under-estimated window (spectrum spills outside Theta) degrades
    # convergence badly or stalls — Fig. 10's warning case
    under_it, under_conv = iters["under (eps, lam_max/2)"]
    assert (not under_conv) or under_it > 2 * iters["lanczos-matched"][0]
