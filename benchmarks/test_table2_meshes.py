"""Table 2: the cantilever mesh family.

Regenerates the exact node and equation counts of the paper's table by
building every mesh and applying its boundary conditions.
"""

from benchmarks.conftest import run_once
from repro.fem.cantilever import PAPER_MESHES, cantilever_problem
from repro.reporting.tables import format_table


def test_table2_mesh_family(benchmark):
    def experiment():
        rows = []
        for k, (nx, ny, n_node, n_eqn, _) in PAPER_MESHES.items():
            p = cantilever_problem(k)
            rows.append(
                (k, f"{nx} x {ny}", p.mesh.n_nodes, n_node, p.n_eqn, n_eqn)
            )
        return rows

    rows = run_once(benchmark, experiment)

    print()
    print(
        format_table(
            ["Mesh", "nXele x nYele", "nNode", "paper", "nEqn", "paper"],
            rows,
            title="Table 2 — cantilever mesh family",
        )
    )
    for _, _, n_node, paper_node, n_eqn, paper_eqn in rows:
        assert n_node == paper_node
        assert n_eqn == paper_eqn
