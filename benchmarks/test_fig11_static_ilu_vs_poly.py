"""Figure 11: ILU(0) vs polynomial preconditioners, STATIC analysis.

Cantilever with pulling load, Mesh1 and Mesh2 (the two meshes small enough
for the paper's single-processor ILU comparison).  The shape to reproduce
(Eq. 53): GLS(7) converges faster than ILU(0), which converges faster than
(or on par with) Neumann(20), and all beat unpreconditioned FGMRES.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.precond.gls import GLSPolynomial
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.neumann import NeumannPolynomial
from repro.reporting.convergence import convergence_table
from repro.solvers.fgmres import fgmres


def _sweep(ss):
    mv = ss.a.matvec
    g7 = GLSPolynomial.unit_interval(7, eps=1e-6)
    n20 = NeumannPolynomial(20)
    ilu = ILU0Preconditioner(ss.a)
    cases = {
        "none": None,
        "GLS(7)": lambda v: g7.apply_linear(mv, v),
        "Neum(20)": lambda v: n20.apply_linear(mv, v),
        "ILU(0)": ilu.apply,
    }
    return {
        name: fgmres(mv, ss.b, pre, restart=25, tol=1e-6, max_iter=3000)
        for name, pre in cases.items()
    }


def test_fig11_static_mesh1(benchmark, scaled_systems):
    _, ss = scaled_systems(1)
    results = run_once(benchmark, lambda: _sweep(ss))
    print()
    print("Fig. 11 (Mesh1, static cantilever, pulling load)")
    print(convergence_table(results))
    # Mesh1 has only 28 equations, so a degree-20 polynomial is nearly an
    # exact inverse and Neum(20) degenerates to the winner; the robust part
    # of Eq. 53 on this mesh is GLS(7) beating ILU(0).
    assert all(r.converged for r in results.values())
    it = {k: v.iterations for k, v in results.items()}
    assert it["GLS(7)"] < it["ILU(0)"] < it["none"]


def test_fig11_static_mesh2(benchmark, scaled_systems):
    _, ss = scaled_systems(2)
    results = run_once(benchmark, lambda: _sweep(ss))
    print()
    print("Fig. 11 (Mesh2, static cantilever, pulling load)")
    print(convergence_table(results))
    assert all(r.converged for r in results.values())
    it = {k: v.iterations for k, v in results.items()}
    # Eq. 53: GLS(7) > ILU(0) > Neum(20)  ('>' = converges faster)
    assert it["GLS(7)"] < it["ILU(0)"] <= it["Neum(20)"]
    assert it["ILU(0)"] < it["none"]
