"""Table 3: iterations, modeled CPU time and speedup of EDD-FGMRES-GLS(m)
for the static cantilever on the SGI Origin model.

The paper reports Mesh1..Mesh7, m = 7..10, P = 1, 2, 4, 8.  We regenerate a
representative subset (Mesh 1, 2, 3, 4, 7 — the paper's own table skips
some cells) and assert the shapes: iterations are P-independent, speedup
grows with mesh size, and GLS(10) converges in fewer iterations than
GLS(7) but costs more time per iteration (the paper's trade-off remark).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.parallel.machine import SGI_ORIGIN, modeled_time, speedup
from repro.reporting.tables import format_table

MESHES = (1, 2, 3, 4, 7)
DEGREES = (7, 8, 9, 10)
RANKS = (1, 2, 4, 8)


def test_table3_speedup_origin(benchmark, problems):
    def experiment():
        data = {}
        for mesh_id in MESHES:
            p = problems(mesh_id)
            for m in DEGREES:
                runs = {}
                for n_parts in RANKS:
                    if n_parts > p.mesh.n_elements:
                        # Mesh1 has only 7 elements; like the paper's table
                        # we leave infeasible cells blank.
                        continue
                    s = solve_cantilever(p, n_parts=n_parts, options=SolverOptions(precond=f"gls({m})", tol=1e-6))
                    assert s.result.converged
                    runs[n_parts] = s
                data[(mesh_id, m)] = runs
        return data

    data = run_once(benchmark, experiment)

    rows = []
    for (mesh_id, m), runs in data.items():
        t1 = modeled_time(runs[1].stats, SGI_ORIGIN)
        for n_parts, s in runs.items():
            tp = modeled_time(s.stats, SGI_ORIGIN)
            rows.append(
                [
                    mesh_id,
                    f"GLS({m})",
                    n_parts,
                    s.result.iterations,
                    f"{tp:.4f}",
                    f"{t1 / tp:.2f}",
                ]
            )
    print()
    print(
        format_table(
            ["Mesh", "precond", "P", "iters", "modeled T (s)", "speedup"],
            rows,
            title="Table 3 — EDD-FGMRES-GLS(m), static, SGI Origin model",
        )
    )

    # Shape 1: iterations essentially P-independent (paper: within ~2%).
    for (mesh_id, m), runs in data.items():
        its = [runs[p].result.iterations for p in runs]
        assert max(its) - min(its) <= max(2, int(0.03 * max(its)))

    # Shape 2: speedup at P=8 grows with mesh size (for fixed degree 7).
    sp8 = {
        mesh_id: speedup(
            data[(mesh_id, 7)][1].stats, data[(mesh_id, 7)][8].stats, SGI_ORIGIN
        )
        for mesh_id in MESHES
        if 8 in data[(mesh_id, 7)]
    }
    assert sp8[2] < sp8[3] < sp8[7]
    assert sp8[7] > 5.5  # paper reports 6.95 on Mesh7

    # Shape 3 (the paper's trade-off): on a larger mesh GLS(10) needs fewer
    # iterations than GLS(7) but more total matvecs-time is possible; check
    # iterations ordering at least.
    for mesh_id in (3, 4, 7):
        it7 = data[(mesh_id, 7)][1].result.iterations
        it10 = data[(mesh_id, 10)][1].result.iterations
        assert it10 <= it7
