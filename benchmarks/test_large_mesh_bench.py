"""Large-mesh streamed-assembly benchmark -> BENCH_large_mesh.json.

The memory/throughput acceptance test of the large-mesh tier: solve a
large cantilever three ways in three *separate child processes* and
compare peak RSS (``resource.getrusage``'s ``ru_maxrss``) and solve
wall time:

* ``streamed`` — :func:`repro.fem.cantilever.cantilever_inputs` (no
  verification assembly) + :func:`build_edd_system_streamed` (chunked
  per-rank assembly, no global CSR ever materialized) solved under the
  ``process`` comm backend with ``REPRO_PROCESS_RESIDENT=0``: the
  collective data plane fans out over the shared-memory pool but the
  rank bodies stay inline.
* ``resident`` — same construction with ``REPRO_PROCESS_RESIDENT=1``:
  per-rank CSR blocks ship to the worker pool once and the solver's
  matvec/dot/ortho/axpy regions execute worker-resident.
* ``serial`` — :func:`cantilever_problem` (global COO + CSR assembly)
  + monolithic :func:`build_edd_system` under the virtual backend: the
  serial-assembly baseline.

Each variant runs in its own child so ``ru_maxrss`` — a high-water mark
that never decreases — measures that variant alone.  Every child also
recomputes the ground-truth residual through the **streamed
verification operator** (:func:`repro.core.driver.streamed_verify_residual`),
so correctness is checked without any child materializing the global
matrix.  The paired bit-identity contract is asserted too: all variants
must converge in exactly the same number of iterations.

``REPRO_LARGE_MESH`` selects the mesh id — Table 2's 1..10 or the
large tiers 11..13 (default 7; CI runs a reduced mesh).  The peak-RSS
assertion is armed for Mesh6 and larger — below that the saved arrays
drown in interpreter-baseline noise.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

MESH_ID = int(os.environ.get("REPRO_LARGE_MESH", "7"))
N_PARTS = 4
#: Below Mesh6 the assembly arrays are small against the interpreter
#: baseline and the RSS comparison stops being meaningful.
RSS_ASSERT_MIN_MESH = 6
#: Residual acceptance: solver tol (1e-6) times the driver's
#: verification slack (100).
TRUE_RESIDUAL_MAX = 1e-4

MODES = ("streamed", "resident", "serial")

_CHILD_SOURCE = '''\
"""Child of benchmarks/test_large_mesh_bench.py (written at test time).

A real file with a guarded main because the process comm backend uses
the ``spawn`` start method: workers re-import __main__, which must be
importable and side-effect free.
"""

import json
import os
import resource
import sys
import time


def run(mode, mesh_id, n_parts):
    from repro.core.driver import streamed_verify_residual
    from repro.core.edd import edd_fgmres
    from repro.core.options import SolverOptions
    from repro.partition.element_partition import ElementPartition

    options = SolverOptions(precond="gls(7)")
    pool_processes = 0
    if mode in ("streamed", "resident"):
        os.environ["REPRO_PROCESS_RESIDENT"] = (
            "1" if mode == "resident" else "0"
        )
        from repro.core.distributed import build_edd_system_streamed
        from repro.fem.cantilever import cantilever_inputs
        from repro.parallel.process_comm import (
            pool_process_count,
            shutdown_pool,
        )

        mesh, bc, f_full, material = cantilever_inputs(mesh_id)
        part = ElementPartition.build(mesh, n_parts)
        system = build_edd_system_streamed(
            mesh, material, bc, part, f_full, comm_backend="process"
        )
        try:
            t0 = time.perf_counter()
            result = edd_fgmres(system, options=options)
            wall = time.perf_counter() - t0
            pool_processes = pool_process_count()
        finally:
            system.comm.close()
            shutdown_pool(force=True)
        n_eqn = bc.n_free
        b_free = f_full[bc.free]
    elif mode == "serial":
        from repro.core.distributed import build_edd_system
        from repro.fem.cantilever import cantilever_problem

        prob = cantilever_problem(mesh_id)
        part = ElementPartition.build(prob.mesh, n_parts)
        f_full = prob.bc.expand(prob.load)
        system = build_edd_system(
            prob.mesh, prob.material, prob.bc, part, f_full,
            comm_backend="virtual",
        )
        t0 = time.perf_counter()
        result = edd_fgmres(system, options=options)
        wall = time.perf_counter() - t0
        mesh, bc, material = prob.mesh, prob.bc, prob.material
        n_eqn = prob.bc.n_free
        b_free = prob.load
    else:
        raise ValueError(f"unknown mode {mode!r}")
    # Ground truth through the streamed operator: no global matrix in
    # any child, ever.
    true_residual = streamed_verify_residual(
        mesh, material, bc, b_free, options, result
    )
    return {
        "mode": mode,
        "n_eqn": int(n_eqn),
        "iterations": int(result.iterations),
        "converged": bool(result.converged),
        "pool_processes": int(pool_processes),
        "wall_time": float(wall),
        "true_residual": float(true_residual),
        "peak_rss_kb": int(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        ),
    }


def main():
    mode, mesh_id, n_parts = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
    print(json.dumps(run(mode, mesh_id, n_parts)))


if __name__ == "__main__":
    main()
'''


def _run_child(script: Path, mode: str) -> dict:
    """Run one variant in a fresh interpreter; return its JSON report."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # Force the collective fan-out onto the worker pool regardless of
    # problem size — the point is to exercise the real process path.
    env["REPRO_PROCESS_MIN_WORK"] = "0"
    env["REPRO_PROCESS_WORKERS"] = "2"
    # Large tiers need the fastest kernels available; backends are
    # bit-identical so this changes wall time only.
    env.setdefault("REPRO_KERNEL_BACKEND", "scipy")
    proc = subprocess.run(
        [sys.executable, str(script), mode, str(MESH_ID), str(N_PARTS)],
        capture_output=True, text=True, timeout=540, env=env,
    )
    assert proc.returncode == 0, (
        f"{mode} child failed:\n{proc.stdout}\n{proc.stderr}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def validate_schema(report: dict) -> None:
    """Assert the BENCH_large_mesh.json shape the CI smoke checks."""
    for key in ("suite", "mesh", "n_parts", "cpu_count", "runs", "rss_ratio"):
        assert key in report, f"missing key {key!r}"
    assert report["suite"] == "large-mesh"
    assert len(report["runs"]) == len(MODES)
    for run in report["runs"]:
        for key in (
            "mode",
            "n_eqn",
            "iterations",
            "converged",
            "pool_processes",
            "wall_time",
            "true_residual",
            "peak_rss_kb",
        ):
            assert key in run, f"run missing key {key!r}"
        assert run["mode"] in MODES
        assert run["converged"] is True
        assert run["peak_rss_kb"] > 0
        assert run["wall_time"] > 0.0
        assert run["true_residual"] <= TRUE_RESIDUAL_MAX
    by_mode = {r["mode"]: r for r in report["runs"]}
    assert set(by_mode) == set(MODES)
    # Bit-identity contract: assembly strategy, comm backend and rank-op
    # engine must not change a single iterate.
    iters = {r["iterations"] for r in report["runs"]}
    assert len(iters) == 1, f"iteration counts diverge: {by_mode}"
    # The pool-backed children really dispatched through worker processes.
    assert by_mode["streamed"]["pool_processes"] >= 1
    assert by_mode["resident"]["pool_processes"] >= 1
    assert report["rss_ratio"] > 0.0


def test_bench_large_mesh_json(tmp_path):
    """Solve Mesh``REPRO_LARGE_MESH`` streamed / resident / serial in
    isolated children, write BENCH_large_mesh.json and assert the
    streamed peak RSS stays below the serial-assembly baseline (Mesh6+)."""
    script = tmp_path / "large_mesh_child.py"
    script.write_text(_CHILD_SOURCE)
    runs = [_run_child(script, mode) for mode in MODES]
    by_mode = {r["mode"]: r for r in runs}
    streamed, serial = by_mode["streamed"], by_mode["serial"]

    report = {
        "suite": "large-mesh",
        "mesh": MESH_ID,
        "n_parts": N_PARTS,
        "cpu_count": os.cpu_count() or 1,
        "runs": runs,
        "rss_ratio": streamed["peak_rss_kb"] / serial["peak_rss_kb"],
    }
    validate_schema(report)
    out_path = REPO_ROOT / "BENCH_large_mesh.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(
        f"\nlarge-mesh bench (mesh {MESH_ID}, {streamed['n_eqn']} eqn, "
        f"P={N_PARTS}):"
    )
    for run in runs:
        print(
            f"  {run['mode']:>8}: peak RSS {run['peak_rss_kb'] / 1024:.1f} "
            f"MiB, {run['wall_time']:.2f} s ({run['iterations']} it, "
            f"{run['pool_processes']} pool procs, "
            f"true res {run['true_residual']:.2e})"
        )
    if MESH_ID >= RSS_ASSERT_MIN_MESH:
        assert streamed["peak_rss_kb"] < serial["peak_rss_kb"], (
            f"streamed assembly peaked at {streamed['peak_rss_kb']} KiB, "
            f"not below the serial baseline {serial['peak_rss_kb']} KiB"
        )


def test_bench_large_mesh_schema_of_existing_file():
    """CI smoke: if BENCH_large_mesh.json is checked in / regenerated, it
    must satisfy the schema above."""
    path = REPO_ROOT / "BENCH_large_mesh.json"
    if not path.exists():
        import pytest

        pytest.skip("BENCH_large_mesh.json not generated yet")
    validate_schema(json.loads(path.read_text()))
