"""Large-mesh streamed-assembly benchmark -> BENCH_large_mesh.json.

The memory acceptance test of the large-mesh tier: solve a Mesh7-class
cantilever two ways in two *separate child processes* and compare peak
RSS (``resource.getrusage``'s ``ru_maxrss``):

* ``streamed`` — :func:`repro.fem.cantilever.cantilever_inputs` (no
  verification assembly) + :func:`build_edd_system_streamed` (chunked
  per-rank assembly, no global CSR ever materialized) solved under the
  ``process`` comm backend with the dispatch threshold forced to zero,
  so the collective data plane really fans out over the shared-memory
  worker pool.
* ``serial`` — :func:`cantilever_problem` (global COO + CSR assembly)
  + monolithic :func:`build_edd_system` under the virtual backend: the
  serial-assembly baseline.

Each variant runs in its own child so ``ru_maxrss`` — a high-water mark
that never decreases — measures that variant alone.  Both children run
the same interpreter, imports and solver; the only difference is the
assembly strategy, so the RSS delta is attributable to it.  The paired
bit-identity contract is asserted too: both variants must converge in
exactly the same number of iterations.

``REPRO_LARGE_MESH`` selects the Table 2 mesh id (default 7; CI runs a
reduced mesh).  The peak-RSS assertion is armed for Mesh6 and larger —
below that the saved arrays drown in interpreter-baseline noise.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

MESH_ID = int(os.environ.get("REPRO_LARGE_MESH", "7"))
N_PARTS = 4
#: Below Mesh6 the assembly arrays are small against the interpreter
#: baseline and the RSS comparison stops being meaningful.
RSS_ASSERT_MIN_MESH = 6

_CHILD_SOURCE = '''\
"""Child of benchmarks/test_large_mesh_bench.py (written at test time).

A real file with a guarded main because the process comm backend uses
the ``spawn`` start method: workers re-import __main__, which must be
importable and side-effect free.
"""

import json
import resource
import sys


def run(mode, mesh_id, n_parts):
    from repro.core.edd import edd_fgmres
    from repro.core.options import SolverOptions
    from repro.partition.element_partition import ElementPartition

    options = SolverOptions(precond="gls(7)")
    pool_processes = 0
    if mode == "streamed":
        from repro.core.distributed import build_edd_system_streamed
        from repro.fem.cantilever import cantilever_inputs
        from repro.parallel.process_comm import (
            pool_process_count,
            shutdown_pool,
        )

        mesh, bc, f_full, material = cantilever_inputs(mesh_id)
        part = ElementPartition.build(mesh, n_parts)
        system = build_edd_system_streamed(
            mesh, material, bc, part, f_full, comm_backend="process"
        )
        try:
            result = edd_fgmres(system, options=options)
            pool_processes = pool_process_count()
        finally:
            system.comm.close()
            shutdown_pool(force=True)
        n_eqn = bc.n_free
    elif mode == "serial":
        from repro.core.distributed import build_edd_system
        from repro.fem.cantilever import cantilever_problem

        prob = cantilever_problem(mesh_id)
        part = ElementPartition.build(prob.mesh, n_parts)
        f_full = prob.bc.expand(prob.load)
        system = build_edd_system(
            prob.mesh, prob.material, prob.bc, part, f_full,
            comm_backend="virtual",
        )
        result = edd_fgmres(system, options=options)
        n_eqn = prob.bc.n_free
    else:
        raise ValueError(f"unknown mode {mode!r}")
    return {
        "mode": mode,
        "n_eqn": int(n_eqn),
        "iterations": int(result.iterations),
        "converged": bool(result.converged),
        "pool_processes": int(pool_processes),
        "peak_rss_kb": int(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        ),
    }


def main():
    mode, mesh_id, n_parts = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
    print(json.dumps(run(mode, mesh_id, n_parts)))


if __name__ == "__main__":
    main()
'''


def _run_child(script: Path, mode: str) -> dict:
    """Run one variant in a fresh interpreter; return its JSON report."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    # Force the collective fan-out onto the worker pool regardless of
    # problem size — the point is to exercise the real process path.
    env["REPRO_PROCESS_MIN_WORK"] = "0"
    env["REPRO_PROCESS_WORKERS"] = "2"
    proc = subprocess.run(
        [sys.executable, str(script), mode, str(MESH_ID), str(N_PARTS)],
        capture_output=True, text=True, timeout=540, env=env,
    )
    assert proc.returncode == 0, (
        f"{mode} child failed:\n{proc.stdout}\n{proc.stderr}"
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def validate_schema(report: dict) -> None:
    """Assert the BENCH_large_mesh.json shape the CI smoke checks."""
    for key in ("suite", "mesh", "n_parts", "cpu_count", "runs", "rss_ratio"):
        assert key in report, f"missing key {key!r}"
    assert report["suite"] == "large-mesh"
    assert len(report["runs"]) == 2
    for run in report["runs"]:
        for key in (
            "mode",
            "n_eqn",
            "iterations",
            "converged",
            "pool_processes",
            "peak_rss_kb",
        ):
            assert key in run, f"run missing key {key!r}"
        assert run["mode"] in ("streamed", "serial")
        assert run["converged"] is True
        assert run["peak_rss_kb"] > 0
    streamed, serial = (
        next(r for r in report["runs"] if r["mode"] == m)
        for m in ("streamed", "serial")
    )
    # Bit-identity contract: assembly strategy and comm backend must not
    # change a single iterate.
    assert streamed["iterations"] == serial["iterations"]
    # The streamed child really dispatched through the worker pool.
    assert streamed["pool_processes"] >= 1
    assert report["rss_ratio"] > 0.0


def test_bench_large_mesh_json(tmp_path):
    """Solve Mesh``REPRO_LARGE_MESH`` streamed-vs-serial in isolated
    children, write BENCH_large_mesh.json and assert the streamed peak
    RSS stays below the serial-assembly baseline (Mesh6+)."""
    script = tmp_path / "large_mesh_child.py"
    script.write_text(_CHILD_SOURCE)
    streamed = _run_child(script, "streamed")
    serial = _run_child(script, "serial")

    report = {
        "suite": "large-mesh",
        "mesh": MESH_ID,
        "n_parts": N_PARTS,
        "cpu_count": os.cpu_count() or 1,
        "runs": [streamed, serial],
        "rss_ratio": streamed["peak_rss_kb"] / serial["peak_rss_kb"],
    }
    validate_schema(report)
    out_path = REPO_ROOT / "BENCH_large_mesh.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(
        f"\nlarge-mesh bench (mesh {MESH_ID}, {streamed['n_eqn']} eqn, "
        f"P={N_PARTS}):"
    )
    for run in (streamed, serial):
        print(
            f"  {run['mode']:>8}: peak RSS {run['peak_rss_kb'] / 1024:.1f} "
            f"MiB ({run['iterations']} it, "
            f"{run['pool_processes']} pool procs)"
        )
    if MESH_ID >= RSS_ASSERT_MIN_MESH:
        assert streamed["peak_rss_kb"] < serial["peak_rss_kb"], (
            f"streamed assembly peaked at {streamed['peak_rss_kb']} KiB, "
            f"not below the serial baseline {serial['peak_rss_kb']} KiB"
        )


def test_bench_large_mesh_schema_of_existing_file():
    """CI smoke: if BENCH_large_mesh.json is checked in / regenerated, it
    must satisfy the schema above."""
    path = REPO_ROOT / "BENCH_large_mesh.json"
    if not path.exists():
        import pytest

        pytest.skip("BENCH_large_mesh.json not generated yet")
    validate_schema(json.loads(path.read_text()))
