"""Shared benchmark fixtures.

Each benchmark regenerates one table or figure of the paper: it runs the
experiment inside the ``benchmark`` fixture (single round — these are
experiment harnesses, not micro-benchmarks), prints the paper-style rows,
and asserts the qualitative shape the paper reports.  ``EXPERIMENTS.md``
records the paper-vs-measured comparison.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem.cantilever import cantilever_problem
from repro.precond.scaling import scale_system


def pytest_configure(config):
    # Experiment harnesses run once; disable benchmark warmup noise.
    config.option.benchmark_disable_gc = True


@pytest.fixture(scope="session")
def problems():
    """Cache of cantilever problems by (mesh_id, with_mass)."""
    cache = {}

    def get(mesh_id: int, with_mass: bool = False):
        key = (mesh_id, with_mass)
        if key not in cache:
            cache[key] = cantilever_problem(mesh_id, with_mass=with_mass)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def scaled_systems(problems):
    """Cache of norm-1 scaled systems by mesh id."""
    cache = {}

    def get(mesh_id: int):
        if mesh_id not in cache:
            p = problems(mesh_id)
            cache[mesh_id] = (p, scale_system(p.stiffness, p.load))
        return cache[mesh_id]

    return get


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
