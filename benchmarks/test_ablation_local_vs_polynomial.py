"""Ablation: local (block-Jacobi ILU) vs polynomial preconditioning as the
rank count grows.

Section 4.1.2: pARMS-style RDD solvers precondition with local solves
(extensions of block Jacobi).  Those weaken as P grows — each block sees
less of the domain — while polynomial preconditioners are built from the
global spectrum window and are exactly P-independent.  This is the paper's
strongest implicit argument for polynomials in a massively-parallel
setting.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.rdd import build_rdd_system, rdd_fgmres
from repro.partition.node_partition import NodePartition
from repro.precond.block_jacobi import BlockJacobiILU
from repro.precond.gls import GLSPolynomial
from repro.reporting.tables import format_table

RANKS = (1, 2, 4, 8, 16)


def test_ablation_block_jacobi_vs_gls(benchmark, problems):
    p = problems(3)

    def experiment():
        out = {}
        for q in RANKS:
            part = NodePartition.build(p.mesh, q)
            sys_bj = build_rdd_system(p.mesh, p.bc, part, p.stiffness, p.load)
            bj = rdd_fgmres(sys_bj, BlockJacobiILU(sys_bj), tol=1e-6, max_iter=4000)
            sys_g = build_rdd_system(p.mesh, p.bc, part, p.stiffness, p.load)
            gl = rdd_fgmres(
                sys_g, GLSPolynomial.unit_interval(7, eps=1e-6), tol=1e-6
            )
            out[q] = (bj, gl)
        return out

    data = run_once(benchmark, experiment)

    rows = [
        [
            q,
            bj.iterations if bj.converged else "stalled",
            gl.iterations,
        ]
        for q, (bj, gl) in data.items()
    ]
    print()
    print(
        format_table(
            ["P", "iters BJ-ILU0", "iters GLS(7)"],
            rows,
            title="Ablation — local vs polynomial preconditioning (Mesh3, RDD)",
        )
    )

    bj_iters = [bj.iterations for bj, _ in data.values()]
    gl_iters = [gl.iterations for _, gl in data.values()]
    # polynomial preconditioning is exactly P-independent
    assert len(set(gl_iters)) == 1
    # block Jacobi degrades monotonically overall
    assert bj_iters[-1] > bj_iters[0]
    # and by P=16 the polynomial wins outright
    assert gl_iters[-1] < bj_iters[-1]
