"""Micro-benchmarks of the hot kernels.

Unlike the experiment harnesses (single-shot), these run repeated rounds
under pytest-benchmark and guard the performance of the four kernels that
dominate every solve: the CSR matvec, the interface assembly, the GLS
polynomial application and the Givens least-squares update.  Regressions
here silently inflate every experiment's wall-clock.
"""

import numpy as np
import pytest

from repro.core.distributed import build_edd_system
from repro.fem.cantilever import cantilever_problem
from repro.partition.element_partition import ElementPartition
from repro.precond.gls import GLSPolynomial
from repro.precond.scaling import scale_system
from repro.solvers.givens import GivensLSQ


@pytest.fixture(scope="module")
def mesh4_scaled():
    p = cantilever_problem(4)  # 5100 equations
    return scale_system(p.stiffness, p.load)


def test_bench_csr_matvec(benchmark, mesh4_scaled):
    a = mesh4_scaled.a
    x = np.random.default_rng(0).standard_normal(a.shape[1])
    out = np.empty(a.shape[0])
    result = benchmark(a.matvec, x, out)
    assert np.isfinite(result).all()


def test_bench_interface_assembly(benchmark):
    p = cantilever_problem(4)
    part = ElementPartition.build(p.mesh, 8)
    system = build_edd_system(
        p.mesh, p.material, p.bc, part, p.bc.expand(p.load)
    )
    rng = np.random.default_rng(1)
    parts = [rng.standard_normal(n) for n in system.submap.local_sizes]
    result = benchmark(system.comm.interface_assemble, parts)
    assert len(result) == 8


def test_bench_gls_apply(benchmark, mesh4_scaled):
    a = mesh4_scaled.a
    g = GLSPolynomial.unit_interval(7, eps=1e-6)
    v = np.random.default_rng(2).standard_normal(a.shape[0])
    result = benchmark(g.apply_linear, a.matvec, v)
    assert np.isfinite(result).all()


def test_bench_gls_construction(benchmark):
    result = benchmark(GLSPolynomial.unit_interval, 10, 1e-6)
    assert result.degree == 10


def test_bench_givens_cycle(benchmark):
    rng = np.random.default_rng(3)
    m = 25
    cols = [rng.standard_normal(j + 2) for j in range(m)]
    for c in cols:
        c[-1] = abs(c[-1]) + 0.5

    def cycle():
        lsq = GivensLSQ(m, 1.0)
        for c in cols:
            lsq.append_column(c)
        return lsq.solve()

    y = benchmark(cycle)
    assert len(y) == m


def test_bench_row_norms(benchmark, mesh4_scaled):
    result = benchmark(mesh4_scaled.a.row_norms1)
    assert (result > 0).all()


def test_bench_bsr_matvec(benchmark, mesh4_scaled):
    """BSR block matvec — recorded alongside the CSR bench to document that
    the scalar reduceat kernel wins in pure NumPy (see repro.sparse.bsr)."""
    from repro.sparse.bsr import BSRMatrix

    bsr = BSRMatrix.from_csr(mesh4_scaled.a, 2)
    x = np.random.default_rng(4).standard_normal(bsr.shape[1])
    result = benchmark(bsr.matvec, x)
    assert np.allclose(result, mesh4_scaled.a.matvec(x), atol=1e-10)


# ----------------------------------------------------------------------
# Cross-backend kernel suite -> BENCH_kernels.json
#
# Manual perf_counter timing (pytest-benchmark keeps its own storage
# format; the repo's perf trajectory lives in BENCH_*.json files).  The
# "seed" rows re-run faithful replicas of the pre-kernel-layer
# implementations — per-call index recomputation and the allocating
# polynomial recurrence — so the recorded speedups are against a fixed
# baseline, not against whatever the previous commit shipped.
# ----------------------------------------------------------------------
import json
import time
from pathlib import Path

from repro.precond.scaling import ScaledOperator
from repro.sparse.kernels import available_backends, use_backend
from repro.sparse.ops import scaled_matvec

REPO_ROOT = Path(__file__).resolve().parents[1]


def _best_mean_us(fn, reps: int, trials: int = 5) -> float:
    """Best-of-``trials`` mean microseconds over ``reps`` calls."""
    fn()  # warm caches / workspaces
    best = float("inf")
    for _ in range(trials):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        dt = (time.perf_counter() - t0) / reps
        best = min(best, dt)
    return best * 1e6


def _seed_matvec(a, x, out=None):
    """The seed's CSR matvec: allocates the product array and recomputes
    row lengths / segment starts on every call."""
    n, m = a.shape
    if out is None:
        out = np.empty(n)
    prod = a.data * x[a.indices]
    lengths = np.diff(a.indptr)
    nonempty = lengths > 0
    out[:] = 0.0
    starts = a.indptr[:-1][nonempty]
    out[nonempty] = np.add.reduceat(prod, starts)
    return out


def _seed_gls_apply(g, matvec, v):
    """The seed's allocating three-term recurrence (one fresh array per
    arithmetic op, ``degree`` allocating matvecs)."""
    a, b, mu = g._alphas, g._betas, g._mus
    phi_prev = None
    phi = (1.0 / b[0]) * v
    z = mu[0] * phi
    for i in range(g.degree):
        nxt = matvec(phi) - a[i] * phi
        if phi_prev is not None:
            nxt = nxt - b[i] * phi_prev
        nxt = (1.0 / b[i + 1]) * nxt
        z = z + mu[i + 1] * nxt
        phi_prev, phi = phi, nxt
    return z


@pytest.fixture(scope="module")
def mesh2_scaled():
    p = cantilever_problem(2)  # Table 2 Mesh2: the degree-7 target size
    return scale_system(p.stiffness, p.load)


def test_bench_kernel_suite_json(mesh4_scaled, mesh2_scaled):
    """Time every kernel on every available backend, record the table to
    ``BENCH_kernels.json``, and assert the headline acceptance number:
    >= 2x on the degree-7 polynomial application vs the seed."""
    backends = list(available_backends())
    a4 = mesh4_scaled.a
    n4 = a4.shape[0]
    rng = np.random.default_rng(11)
    x4 = rng.standard_normal(n4)
    y4 = np.empty(n4)
    X4 = rng.standard_normal((n4, 8))
    Y4 = np.empty((n4, 8))
    d4 = mesh4_scaled.d

    report: dict = {
        "suite": "kernel-microbench",
        "backends": backends,
        "matvec": {"n": n4, "nnz": a4.nnz, "us": {}},
        "rmatvec": {"n": n4, "us": {}},
        "spmm_k8": {"n": n4, "us": {}},
        "fused_scaled_matvec": {"n": n4, "us": {}},
        "poly_apply_gls7": {},
    }

    report["matvec"]["us"]["seed"] = _best_mean_us(
        lambda: _seed_matvec(a4, x4, y4), reps=30
    )
    for name in backends:
        with use_backend(name):
            report["matvec"]["us"][name] = _best_mean_us(
                lambda: a4.matvec(x4, out=y4), reps=30
            )
            report["rmatvec"]["us"][name] = _best_mean_us(
                lambda: a4.rmatvec(x4, out=y4), reps=30
            )
            report["spmm_k8"]["us"][name] = _best_mean_us(
                lambda: a4.matmat(X4, out=Y4), reps=10
            )
            report["fused_scaled_matvec"]["us"][name] = _best_mean_us(
                lambda: scaled_matvec(d4, a4, d4, x4, out=y4), reps=30
            )
    # SpMM must beat k column matvecs to justify existing; record the ratio.
    report["spmm_k8"]["us"]["column_loop"] = _best_mean_us(
        lambda: np.column_stack([a4.matvec(X4[:, j]) for j in range(8)]),
        reps=10,
    )
    # The fused path's materializing strawman: scale, then matvec.
    report["fused_scaled_matvec"]["us"]["materialized"] = _best_mean_us(
        lambda: a4.scale_sym(d4, d4).matvec(x4, out=y4), reps=10
    )

    # Degree-7 GLS application at Mesh2 scale — the acceptance target.
    a2 = mesh2_scaled.a
    n2 = a2.shape[0]
    v2 = rng.standard_normal(n2)
    z2 = np.empty(n2)
    g7 = GLSPolynomial.unit_interval(7, eps=1e-6)
    poly = {"n": n2, "degree": 7, "us": {}}
    poly["us"]["seed"] = _best_mean_us(
        lambda: _seed_gls_apply(g7, lambda x: _seed_matvec(a2, x), v2),
        reps=30,
    )
    for name in backends:
        with use_backend(name):
            poly["us"][name] = _best_mean_us(
                lambda: g7.apply_linear(a2.matvec, v2, out=z2), reps=30
            )
    poly["speedup_vs_seed"] = {
        name: poly["us"]["seed"] / poly["us"][name] for name in backends
    }
    best = max(poly["speedup_vs_seed"].values())
    poly["speedup_vs_seed"]["best"] = best
    report["poly_apply_gls7"] = poly

    # ILU(0) setup + apply at Mesh2 scale.  The seed scanned for the
    # diagonal positions with one Python ``searchsorted`` per row; the
    # fix is a single searchsorted over the whole row-sorted index array
    # (repro.precond.ilu.diag_positions).  Apply stays the reference
    # slice-dot row loop via the kernel-backend dispatch, so its rows
    # document per-backend cost rather than a speedup claim.
    from repro.precond.ilu import ILU0Preconditioner, diag_positions

    ilu2 = ILU0Preconditioner(a2)
    lu2 = ilu2._lu

    def _seed_diag_scan():
        indptr, indices = lu2.indptr, lu2.indices
        dp = np.empty(n2, dtype=np.int64)
        for i in range(n2):
            lo, hi = indptr[i], indptr[i + 1]
            dp[i] = lo + int(np.searchsorted(indices[lo:hi], i))
        return dp

    ilu0 = {
        "n": n2,
        "nnz": lu2.nnz,
        "diag_scan_us": {
            "seed": _best_mean_us(_seed_diag_scan, reps=10),
            "vectorized": _best_mean_us(
                lambda: diag_positions(lu2), reps=10
            ),
        },
        "apply_us": {},
    }
    ilu0["diag_scan_speedup_vs_seed"] = (
        ilu0["diag_scan_us"]["seed"] / ilu0["diag_scan_us"]["vectorized"]
    )
    for name in backends:
        with use_backend(name):
            ilu0["apply_us"][name] = _best_mean_us(
                lambda: ilu2.apply(v2), reps=10
            )
    report["ilu0"] = ilu0

    out_path = REPO_ROOT / "BENCH_kernels.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print("\nkernel microbench (best-mean us):")
    print(json.dumps(report, indent=2, sort_keys=True))

    # Correctness spot-checks so the timed closures can't silently rot.
    assert np.allclose(_seed_matvec(a4, x4), a4.matvec(x4))
    assert np.allclose(
        _seed_gls_apply(g7, lambda x: _seed_matvec(a2, x), v2),
        g7.apply_linear(a2.matvec, v2),
        rtol=1e-12,
    )
    assert best >= 2.0, (
        f"degree-7 polynomial application is only {best:.2f}x the seed "
        f"(need >= 2x): {poly['us']}"
    )
    # The vectorized diagonal scan must beat the per-row Python loop and
    # agree with it exactly.
    assert np.array_equal(_seed_diag_scan(), diag_positions(lu2))
    assert ilu0["diag_scan_speedup_vs_seed"] >= 2.0, (
        f"ILU0 diagonal scan is only "
        f"{ilu0['diag_scan_speedup_vs_seed']:.2f}x the seed (need >= 2x): "
        f"{ilu0['diag_scan_us']}"
    )
