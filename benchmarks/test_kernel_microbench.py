"""Micro-benchmarks of the hot kernels.

Unlike the experiment harnesses (single-shot), these run repeated rounds
under pytest-benchmark and guard the performance of the four kernels that
dominate every solve: the CSR matvec, the interface assembly, the GLS
polynomial application and the Givens least-squares update.  Regressions
here silently inflate every experiment's wall-clock.
"""

import numpy as np
import pytest

from repro.core.distributed import build_edd_system
from repro.fem.cantilever import cantilever_problem
from repro.partition.element_partition import ElementPartition
from repro.precond.gls import GLSPolynomial
from repro.precond.scaling import scale_system
from repro.solvers.givens import GivensLSQ


@pytest.fixture(scope="module")
def mesh4_scaled():
    p = cantilever_problem(4)  # 5100 equations
    return scale_system(p.stiffness, p.load)


def test_bench_csr_matvec(benchmark, mesh4_scaled):
    a = mesh4_scaled.a
    x = np.random.default_rng(0).standard_normal(a.shape[1])
    out = np.empty(a.shape[0])
    result = benchmark(a.matvec, x, out)
    assert np.isfinite(result).all()


def test_bench_interface_assembly(benchmark):
    p = cantilever_problem(4)
    part = ElementPartition.build(p.mesh, 8)
    system = build_edd_system(
        p.mesh, p.material, p.bc, part, p.bc.expand(p.load)
    )
    rng = np.random.default_rng(1)
    parts = [rng.standard_normal(n) for n in system.submap.local_sizes]
    result = benchmark(system.comm.interface_assemble, parts)
    assert len(result) == 8


def test_bench_gls_apply(benchmark, mesh4_scaled):
    a = mesh4_scaled.a
    g = GLSPolynomial.unit_interval(7, eps=1e-6)
    v = np.random.default_rng(2).standard_normal(a.shape[0])
    result = benchmark(g.apply_linear, a.matvec, v)
    assert np.isfinite(result).all()


def test_bench_gls_construction(benchmark):
    result = benchmark(GLSPolynomial.unit_interval, 10, 1e-6)
    assert result.degree == 10


def test_bench_givens_cycle(benchmark):
    rng = np.random.default_rng(3)
    m = 25
    cols = [rng.standard_normal(j + 2) for j in range(m)]
    for c in cols:
        c[-1] = abs(c[-1]) + 0.5

    def cycle():
        lsq = GivensLSQ(m, 1.0)
        for c in cols:
            lsq.append_column(c)
        return lsq.solve()

    y = benchmark(cycle)
    assert len(y) == m


def test_bench_row_norms(benchmark, mesh4_scaled):
    result = benchmark(mesh4_scaled.a.row_norms1)
    assert (result > 0).all()


def test_bench_bsr_matvec(benchmark, mesh4_scaled):
    """BSR block matvec — recorded alongside the CSR bench to document that
    the scalar reduceat kernel wins in pure NumPy (see repro.sparse.bsr)."""
    from repro.sparse.bsr import BSRMatrix

    bsr = BSRMatrix.from_csr(mesh4_scaled.a, 2)
    x = np.random.default_rng(4).standard_normal(bsr.shape[1])
    result = benchmark(bsr.matvec, x)
    assert np.allclose(result, mesh4_scaled.a.matvec(x), atol=1e-10)
