"""Ablation: what do Algorithm 6's saved exchanges buy?

Runs basic (Alg. 5) vs enhanced (Alg. 6) EDD-FGMRES across processor
counts and reports message counts and modeled times on both machines.
The saving is 2 exchanges per Arnoldi step — significant on the
latency-heavy SP2, marginal on the Origin.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.parallel.machine import IBM_SP2, SGI_ORIGIN, modeled_time
from repro.reporting.tables import format_table

RANKS = (2, 4, 8)


def test_ablation_basic_vs_enhanced(benchmark, problems):
    p = problems(3)

    def experiment():
        out = {}
        for variant in ("edd-basic", "edd-enhanced"):
            out[variant] = {
                q: solve_cantilever(p, n_parts=q, options=SolverOptions(method=variant, precond="gls(7)"))
                for q in RANKS
            }
        return out

    data = run_once(benchmark, experiment)

    rows = []
    for variant, runs in data.items():
        for q, s in runs.items():
            rows.append(
                [
                    variant,
                    q,
                    s.result.iterations,
                    s.stats.total_nbr_messages,
                    f"{modeled_time(s.stats, SGI_ORIGIN):.4f}",
                    f"{modeled_time(s.stats, IBM_SP2):.4f}",
                ]
            )
    print()
    print(
        format_table(
            ["variant", "P", "iters", "messages", "T origin (s)", "T sp2 (s)"],
            rows,
            title="Ablation — Algorithm 5 (basic) vs Algorithm 6 (enhanced)",
        )
    )

    for q in RANKS:
        b = data["edd-basic"][q]
        e = data["edd-enhanced"][q]
        # identical numerics
        assert b.result.iterations == e.result.iterations
        assert np.allclose(b.result.x, e.result.x, rtol=1e-8, atol=1e-12)
        # enhanced strictly cheaper in traffic and modeled time, and the
        # relative benefit is larger on the high-latency SP2
        assert e.stats.total_nbr_messages < b.stats.total_nbr_messages
        gain_origin = modeled_time(b.stats, SGI_ORIGIN) / modeled_time(
            e.stats, SGI_ORIGIN
        )
        gain_sp2 = modeled_time(b.stats, IBM_SP2) / modeled_time(
            e.stats, IBM_SP2
        )
        assert gain_origin >= 1.0
        assert gain_sp2 >= gain_origin
