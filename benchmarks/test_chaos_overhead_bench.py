"""Chaos-proxy passthrough overhead benchmark.

The ``chaos`` backend is meant to be left on in stress rigs, so its
no-fault cost matters: with an empty :class:`FaultPlan` every collective
does one extra rule scan and otherwise delegates to the shared base-class
implementation.  This harness measures full solves on Mesh2 through the
virtual backend and through an idle chaos proxy wrapping it, asserts the
results stay bit-identical, and bounds the wall-clock overhead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.fem.cantilever import cantilever_problem
from repro.parallel.chaos import FaultPlan, use_fault_plan

pytestmark = pytest.mark.bench

REPEATS = 3


def _best_wall(problem, comm_backend: str) -> tuple:
    opts = SolverOptions(precond="gls(7)", comm_backend=comm_backend)
    best, summary = float("inf"), None
    for _ in range(REPEATS):
        summary = solve_cantilever(problem, n_parts=4, options=opts)
        best = min(best, summary.wall_time)
    return best, summary


def test_bench_idle_chaos_overhead(benchmark):
    problem = cantilever_problem(2)

    def run():
        base, ref = _best_wall(problem, "virtual")
        with use_fault_plan(FaultPlan.empty(), inner="virtual"):
            chaos, got = _best_wall(problem, "chaos")
        return base, ref, chaos, got

    base, ref, chaos, got = benchmark.pedantic(run, rounds=1, iterations=1)

    # Bit-identical numerics through the idle proxy.
    assert got.result.iterations == ref.result.iterations
    assert np.array_equal(got.result.x, ref.result.x)

    overhead = chaos / base
    print(
        f"\nidle-chaos overhead: virtual {base * 1e3:.2f} ms, "
        f"chaos(empty plan) {chaos * 1e3:.2f} ms  ->  {overhead:.2f}x"
    )
    # Generous bound: the proxy adds a per-collective rule scan, nothing
    # O(n); anything past 2x means a passthrough regression (timer noise
    # on loaded CI machines is why this is not tighter).
    assert overhead < 2.0
