"""Disabled-tracer overhead benchmark -> BENCH_trace_overhead.json.

The observability layer's contract is *zero-cost-when-off*: with no
tracer attached every instrumented site is one hoisted local bool check
(solver hot loops) or one ``self.tracer.enabled`` attribute load (comm
collectives), and nothing allocates.  This harness pins that contract on
the acceptance workload — Mesh2, GLS(7), enhanced EDD:

* **counted**: a ``CountingTracer`` whose ``enabled`` property counts
  reads (returning False) is attached to the communicator, so the exact
  number of dynamic guard evaluations per solve is measured, not
  guessed; solver-side hoisted-bool checks are over-counted analytically
  from the iteration count;
* **costed**: one guard check is micro-benchmarked (attribute load in a
  tight loop — an overestimate of the hoisted local-bool sites);
* **asserted**: checks x per-check cost must stay under 2% of the
  measured untraced solve wall time, and a fully *traced* solve must be
  bitwise identical to the untraced one.

The direct traced-vs-untraced wall ratio is also recorded
(informational: tracing on pays for span dicts; the <2% bound is for
tracing *off*).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.options import SolverOptions
from repro.core.session import PreparedSystem
from repro.obs import Tracer

pytestmark = pytest.mark.bench

REPO_ROOT = Path(__file__).resolve().parents[1]

MESH = 2
PARTS = 4
PRECOND = "gls(7)"
REPEATS = 5

#: Conservative over-count of per-iteration ``if traced:`` sites in the
#: EDD Arnoldi loop (actual: ~11 begin/end/metric guards + cycle
#: bookkeeping).
SOLVER_CHECKS_PER_ITER = 16


class CountingTracer:
    """``enabled`` reads are counted and always False."""

    def __init__(self):
        self.reads = 0

    @property
    def enabled(self):
        self.reads += 1
        return False

    def begin(self, name, cat="span", **args):  # pragma: no cover
        return -1

    def end(self, **args):  # pragma: no cover
        pass

    def metric(self, **fields):  # pragma: no cover
        pass

    def ensure_ranks(self, n):  # pragma: no cover
        pass

    def add_rank_time(self, rank, seconds):  # pragma: no cover
        pass


def _per_check_seconds() -> float:
    """Micro-benchmark one disabled-guard evaluation (attribute load +
    branch); loop overhead is included, which only inflates the bound."""
    from repro.obs.tracer import NULL_TRACER

    n = 500_000
    hits = 0
    t0 = time.perf_counter()
    for _ in range(n):
        if NULL_TRACER.enabled:
            hits += 1  # pragma: no cover
    elapsed = time.perf_counter() - t0
    assert hits == 0
    return elapsed / n


def validate_schema(report: dict) -> None:
    """Assert the BENCH_trace_overhead.json shape the CI smoke checks."""
    for key in (
        "suite",
        "mesh",
        "n_parts",
        "precond",
        "untraced_wall",
        "traced_wall",
        "traced_over_untraced",
        "guard_checks",
        "per_check_ns",
        "disabled_overhead_ratio",
        "bitwise_identical",
    ):
        assert key in report, f"missing key {key!r}"
    assert report["suite"] == "trace-overhead"
    assert report["untraced_wall"] > 0.0
    assert report["guard_checks"] > 0
    assert report["bitwise_identical"] is True
    assert report["disabled_overhead_ratio"] < 0.02


def test_bench_disabled_tracer_overhead(benchmark):
    opts = SolverOptions(method="edd-enhanced", precond=PRECOND)

    def run():
        ps = PreparedSystem.build(MESH, PARTS, opts)
        try:
            # Exact dynamic guard count: comm-side enabled reads.
            counter = CountingTracer()
            ps.system.comm.set_tracer(counter)
            counted = ps.solve()
            comm_checks = counter.reads
            ps.system.comm.set_tracer(None)

            # Best-of untraced wall time.
            untraced_wall, untraced = float("inf"), None
            for _ in range(REPEATS):
                s = ps.solve()
                if s.wall_time < untraced_wall:
                    untraced_wall, untraced = s.wall_time, s

            # Best-of traced wall time + bitwise parity.
            traced_wall, traced = float("inf"), None
            for _ in range(REPEATS):
                s = ps.solve(tracer=Tracer())
                if s.wall_time < traced_wall:
                    traced_wall, traced = s.wall_time, s
        finally:
            ps.close()
        return comm_checks, counted, untraced_wall, untraced, traced_wall, traced

    comm_checks, counted, untraced_wall, untraced, traced_wall, traced = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    iters = untraced.result.iterations
    assert counted.result.iterations == iters
    solver_checks = SOLVER_CHECKS_PER_ITER * iters + 1
    guard_checks = comm_checks + solver_checks

    per_check = _per_check_seconds()
    ratio = (guard_checks * per_check) / untraced_wall

    report = {
        "suite": "trace-overhead",
        "mesh": MESH,
        "n_parts": PARTS,
        "precond": PRECOND,
        "iterations": iters,
        "untraced_wall": untraced_wall,
        "traced_wall": traced_wall,
        "traced_over_untraced": traced_wall / untraced_wall,
        "guard_checks": guard_checks,
        "comm_guard_checks": comm_checks,
        "per_check_ns": per_check * 1e9,
        "disabled_overhead_ratio": ratio,
        "bitwise_identical": bool(
            np.array_equal(untraced.result.x, traced.result.x)
        ),
        "trace_spans": len(traced.result.trace["spans"]),
    }
    print(
        f"\ntrace overhead (mesh{MESH} {PRECOND} P={PARTS}): "
        f"untraced {untraced_wall * 1e3:.2f} ms, "
        f"{guard_checks} disabled-guard checks x {per_check * 1e9:.1f} ns "
        f"= {ratio * 100:.3f}% of wall (< 2% required); "
        f"traced {traced_wall * 1e3:.2f} ms "
        f"({traced_wall / untraced_wall:.2f}x, informational)"
    )

    # Numerics must be untouched either way.
    assert report["bitwise_identical"]
    assert traced.result.iterations == iters
    # The acceptance bound: disabled tracing under 2% of solve wall time.
    assert ratio < 0.02, (
        f"disabled-tracer overhead {ratio * 100:.2f}% exceeds the 2% budget"
    )

    validate_schema(report)
    out_path = REPO_ROOT / "BENCH_trace_overhead.json"
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def test_trace_overhead_schema_smoke():
    """CI smoke: if BENCH_trace_overhead.json exists, it validates."""
    path = REPO_ROOT / "BENCH_trace_overhead.json"
    if not path.exists():
        pytest.skip("BENCH_trace_overhead.json not generated yet")
    validate_schema(json.loads(path.read_text()))
