"""Figure 13: convergence vs GLS polynomial degree, STATIC analysis.

The paper's Eq. 54 ordering on Mesh1/Mesh2:
GLS(20) > GLS(10) > GLS(7) > GLS(3) > GLS(1) in iterations-to-converge.
Total work (iterations x (degree+1) matvecs) tells the other half of the
Table 3 story: the fastest-converging degree is not the cheapest.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.precond.gls import GLSPolynomial
from repro.reporting.tables import format_table
from repro.solvers.fgmres import fgmres

DEGREES = (1, 3, 7, 10, 20)


def _sweep(ss):
    mv = ss.a.matvec
    out = {}
    for m in DEGREES:
        g = GLSPolynomial.unit_interval(m, eps=1e-6)
        res = fgmres(
            mv,
            ss.b,
            lambda v: g.apply_linear(mv, v),
            restart=25,
            tol=1e-6,
            max_iter=3000,
        )
        out[m] = res
    return out


def _report(results, title):
    rows = []
    for m, res in results.items():
        matvecs = res.iterations * (m + 1)
        rows.append(
            [f"GLS({m})", res.iterations, matvecs, "yes" if res.converged else "NO"]
        )
    print()
    print(
        format_table(
            ["precond", "iterations", "total matvecs", "converged"],
            rows,
            title=title,
        )
    )


def test_fig13_static_mesh1(benchmark, scaled_systems):
    _, ss = scaled_systems(1)
    results = run_once(benchmark, lambda: _sweep(ss))
    _report(results, "Fig. 13 (Mesh1, static): convergence vs GLS degree")
    _assert_monotone(results)


def test_fig13_static_mesh2(benchmark, scaled_systems):
    _, ss = scaled_systems(2)
    results = run_once(benchmark, lambda: _sweep(ss))
    _report(results, "Fig. 13 (Mesh2, static): convergence vs GLS degree")
    _assert_monotone(results)


def _assert_monotone(results):
    assert all(r.converged for r in results.values())
    iters = [results[m].iterations for m in DEGREES]
    # Eq. 54: higher degree -> fewer iterations on these small meshes
    assert all(b < a for a, b in zip(iters, iters[1:]))
