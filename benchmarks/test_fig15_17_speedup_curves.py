"""Figures 15-17: the parallel speedup curves.

(a) EDD speedup vs polynomial degree (Fig. 17a: higher degree scales
    better);
(b) RDD speedup vs polynomial degree (Fig. 17b: little degree influence);
(c)/(d) speedup vs problem size for EDD and RDD;
(e) SP2 vs Origin portability comparison (Fig. 17e: Origin scales better).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.driver import solve_cantilever
from repro.core.options import SolverOptions
from repro.parallel.machine import IBM_SP2, SGI_ORIGIN, speedup
from repro.reporting.tables import format_table

RANKS = (1, 2, 4, 8)


def _curve(problem, method, spec, machine):
    runs = {
        p: solve_cantilever(problem, n_parts=p, options=SolverOptions(method=method, precond=spec))
        for p in RANKS
    }
    assert all(r.result.converged for r in runs.values())
    return [speedup(runs[1].stats, runs[p].stats, machine) for p in RANKS]


def test_fig17a_edd_speedup_vs_degree(benchmark, problems):
    p = problems(3)

    def experiment():
        return {
            m: _curve(p, "edd-enhanced", f"gls({m})", SGI_ORIGIN)
            for m in (3, 7, 10)
        }

    curves = run_once(benchmark, experiment)
    _print_curves(curves, "Fig. 17(a) — EDD speedup vs GLS degree (Mesh3, Origin)", "GLS")
    # higher degree -> better speedup at P=8
    assert curves[3][-1] < curves[7][-1] < curves[10][-1]


def test_fig17b_rdd_speedup_vs_degree(benchmark, problems):
    p = problems(3)

    def experiment():
        return {
            m: _curve(p, "rdd", f"gls({m})", SGI_ORIGIN) for m in (3, 7, 10)
        }

    curves = run_once(benchmark, experiment)
    _print_curves(curves, "Fig. 17(b) — RDD speedup vs GLS degree (Mesh3, Origin)", "GLS")
    # Under a uniform cost model RDD also gains from higher degree (unlike
    # the paper's perfectly flat curves — see EXPERIMENTS.md); the spread
    # stays bounded and the curves remain monotone in P.
    at8 = [c[-1] for c in curves.values()]
    assert max(at8) / min(at8) < 1.3
    for c in curves.values():
        assert all(b > a for a, b in zip(c, c[1:]))


def test_fig17cd_speedup_vs_problem_size(benchmark, problems):
    def experiment():
        out = {}
        for mesh_id in (2, 3, 7):
            p = problems(mesh_id)
            out[mesh_id] = {
                "edd": _curve(p, "edd-enhanced", "gls(7)", SGI_ORIGIN),
                "rdd": _curve(p, "rdd", "gls(7)", SGI_ORIGIN),
            }
        return out

    data = run_once(benchmark, experiment)
    rows = []
    for mesh_id, d in data.items():
        for method, c in d.items():
            rows.append([mesh_id, method] + [f"{v:.2f}" for v in c])
    print()
    print(
        format_table(
            ["Mesh", "method"] + [f"P={p}" for p in RANKS],
            rows,
            title="Fig. 17(c)-(d) — speedup vs problem size (GLS(7), Origin)",
        )
    )
    # larger problems scale better, for both methods
    for method in ("edd", "rdd"):
        at8 = [data[m][method][-1] for m in (2, 3, 7)]
        assert at8[0] < at8[1] < at8[2]


def test_fig17e_sp2_vs_origin(benchmark, problems):
    p = problems(3)

    def experiment():
        runs = {
            q: solve_cantilever(p, n_parts=q, options=SolverOptions(precond="gls(7)")) for q in RANKS
        }
        return {
            "origin": [
                speedup(runs[1].stats, runs[q].stats, SGI_ORIGIN) for q in RANKS
            ],
            "sp2": [
                speedup(runs[1].stats, runs[q].stats, IBM_SP2) for q in RANKS
            ],
        }

    curves = run_once(benchmark, experiment)
    _print_curves(
        curves, "Fig. 17(e) — SP2 vs Origin (Mesh3, EDD-GLS(7))", "machine"
    )
    for a, b in zip(curves["sp2"], curves["origin"]):
        assert b >= a  # Origin at least matches SP2 at every P


def _print_curves(curves, title, label):
    rows = [
        [f"{label}={k}"] + [f"{v:.2f}" for v in c] for k, c in curves.items()
    ]
    print()
    print(format_table([label] + [f"P={p}" for p in RANKS], rows, title=title))
