"""Figure 16: parallel speedup of the *dynamic* analysis.

The paper's Fig. 16 reports speedup for the polynomial-preconditioned
FGMRES on elastodynamics problems.  Here a short Newmark transient (the
effective system is fixed, the load varies per step) runs on the EDD
solver across rank counts; speedup is modeled time over all steps.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.dynamics.newmark import NewmarkIntegrator
from repro.dynamics.parallel_transient import run_parallel_transient
from repro.parallel.machine import SGI_ORIGIN, modeled_time
from repro.precond.gls import GLSPolynomial
from repro.reporting.tables import format_table

RANKS = (1, 2, 4, 8)
N_STEPS = 5


def test_fig16_dynamic_speedup(benchmark, problems):
    p = problems(3, with_mass=True)
    nm = NewmarkIntegrator(p.stiffness, p.mass, dt=2.0)
    g = GLSPolynomial.unit_interval(7, eps=1e-6)

    def experiment():
        out = {}
        for q in RANKS:
            res = run_parallel_transient(
                p.mesh,
                p.material,
                p.bc,
                nm,
                lambda t: p.load * np.sin(0.3 * t),
                N_STEPS,
                n_parts=q,
                precond=g,
            )
            out[q] = res
        return out

    data = run_once(benchmark, experiment)

    t1 = modeled_time(data[1].stats, SGI_ORIGIN)
    rows = []
    speedups = []
    for q, res in data.items():
        tq = modeled_time(res.stats, SGI_ORIGIN)
        speedups.append(t1 / tq)
        rows.append(
            [q, res.total_iterations, f"{tq:.4f}", f"{t1 / tq:.2f}"]
        )
    print()
    print(
        format_table(
            ["P", "total iters", "modeled T origin (s)", "speedup"],
            rows,
            title=(
                f"Fig. 16 — dynamic speedup (Mesh3, {N_STEPS} Newmark steps, "
                "EDD-GLS(7))"
            ),
        )
    )

    # trajectory identical across rank counts (up to the solve tolerance
    # accumulated over the steps)
    ref = data[1].displacements
    for q in RANKS[1:]:
        diff = np.linalg.norm(data[q].displacements - ref, axis=1)
        scale = np.linalg.norm(ref, axis=1)
        assert np.all(diff <= 1e-4 * scale + 1e-10)
    # monotone speedup, comparable to the static Fig. 17 levels
    assert all(b > a for a, b in zip(speedups, speedups[1:]))
    assert speedups[-1] > 3.5
