"""Ablation: a-priori degree selection vs the fixed-degree sweep.

Table 3's trade-off remark, automated: predict the cheapest GLS degree
from the residual-polynomial condition number and the machine cost model,
then verify the pick against measured modeled times of the full candidate
sweep (with a Lanczos-informed window, the setting where prediction is
meaningful).
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.parallel.machine import SGI_ORIGIN, modeled_time
from repro.partition.element_partition import ElementPartition
from repro.precond.degree_selection import choose_degree_for_system
from repro.precond.gls import GLSPolynomial
from repro.precond.scaling import scale_system
from repro.reporting.tables import format_table
from repro.spectrum.intervals import SpectrumIntervals
from repro.spectrum.lanczos import lanczos_extreme_eigenvalues

CANDIDATES = (1, 3, 5, 7, 10, 14)
P = 8


def test_ablation_degree_selection(benchmark, problems):
    p = problems(3)

    def experiment():
        ss = scale_system(p.stiffness, p.load)
        lo, hi = lanczos_extreme_eigenvalues(ss.a.matvec, ss.a.shape[0], 40)
        theta = SpectrumIntervals.single(lo * 0.9, min(hi * 1.05, 1.0))
        part = ElementPartition.build(p.mesh, P)
        f_full = p.bc.expand(p.load)
        measured = {}
        for m in CANDIDATES:
            system = build_edd_system(p.mesh, p.material, p.bc, part, f_full)
            res = edd_fgmres(
                system, GLSPolynomial(theta, m), tol=1e-6, max_iter=4000
            )
            assert res.converged
            measured[m] = (
                res.iterations,
                modeled_time(system.comm.stats, SGI_ORIGIN),
            )
        system = build_edd_system(p.mesh, p.material, p.bc, part, f_full)
        best, ests = choose_degree_for_system(
            system, SGI_ORIGIN, tol=1e-6, theta=theta, candidates=CANDIDATES
        )
        return theta, best, ests, measured

    theta, best, ests, measured = run_once(benchmark, experiment)

    pred = {e.degree: e for e in ests}
    rows = [
        [
            f"GLS({m})",
            pred[m].iterations,
            measured[m][0],
            f"{pred[m].time * 1e3:.1f}",
            f"{measured[m][1] * 1e3:.1f}",
            "<-- picked" if m == best else "",
        ]
        for m in CANDIDATES
    ]
    print()
    print(
        format_table(
            [
                "degree",
                "pred iters",
                "meas iters",
                "pred T (ms)",
                "meas T (ms)",
                "",
            ],
            rows,
            title=(
                f"Ablation — degree selection (Mesh3, P={P}, "
                f"Theta=({theta.lo:.1e}, {theta.hi:.2f}))"
            ),
        )
    )

    times = {m: t for m, (_, t) in measured.items()}
    # the pick lands within 1.5x of the empirical optimum
    assert times[best] <= 1.5 * min(times.values())
    # and clearly beats the naive low-degree choice
    assert times[best] < times[1]
