"""Convergence-history utilities for the Figs. 11-14 style comparisons."""

from __future__ import annotations

import numpy as np

from repro.reporting.tables import format_table
from repro.solvers.result import SolveResult


def iterations_to_tol(result: SolveResult, tol: float) -> int | None:
    """First iteration index at which the relative residual dips below
    ``tol`` (None if never)."""
    hist = np.asarray(result.residual_history)
    below = np.flatnonzero(hist <= tol)
    return int(below[0]) if len(below) else None


def convergence_table(results: dict, tols=(1e-2, 1e-4, 1e-6)) -> str:
    """Tabulate iterations-to-tolerance for named solver results.

    ``results`` maps display names (e.g. ``"GLS(7)"``) to
    :class:`SolveResult`; the output is the textual equivalent of the
    paper's convergence plots.
    """
    headers = ["preconditioner"] + [f"it@{t:g}" for t in tols] + ["converged"]
    rows = []
    for name, res in results.items():
        cells = [name]
        for t in tols:
            it = iterations_to_tol(res, t)
            cells.append("-" if it is None else it)
        cells.append("yes" if res.converged else "NO")
        rows.append(cells)
    return format_table(headers, rows)
