"""Text-mode semilog convergence plots.

The paper's Figs. 11-14 are semilog residual-vs-iteration plots; the
examples and CLI render the same curves directly in the terminal so no
plotting stack is needed.
"""

from __future__ import annotations

import math


def semilogy_plot(
    series: dict,
    width: int = 64,
    height: int = 18,
    ylabel: str = "rel. residual",
    xlabel: str = "iteration",
) -> str:
    """Render named positive-valued sequences on a shared semilog-y canvas.

    ``series`` maps display names to sequences of positive floats (zeros
    and negatives are clamped to the smallest positive value plotted).
    Each series gets a distinct marker; a legend line follows the canvas.
    """
    if not series:
        raise ValueError("no series to plot")
    markers = "*o+x#@%&"
    if len(series) > len(markers):
        raise ValueError(f"at most {len(markers)} series supported")

    all_vals = [v for vals in series.values() for v in vals if v > 0]
    if not all_vals:
        raise ValueError("series contain no positive values")
    lo = math.floor(math.log10(min(all_vals)))
    hi = math.ceil(math.log10(max(all_vals)))
    if hi == lo:
        hi = lo + 1
    max_len = max(len(v) for v in series.values())
    if max_len < 2:
        raise ValueError("series need at least 2 points")

    grid = [[" "] * width for _ in range(height)]
    for (name, vals), marker in zip(series.items(), markers):
        for i, v in enumerate(vals):
            x = round(i * (width - 1) / (max_len - 1))
            v = max(v, 10.0**lo)
            frac = (math.log10(v) - lo) / (hi - lo)
            y = height - 1 - round(frac * (height - 1))
            y = min(max(y, 0), height - 1)
            grid[y][x] = marker

    lines = []
    for row_idx, row in enumerate(grid):
        frac = 1.0 - row_idx / (height - 1)
        exponent = lo + frac * (hi - lo)
        label = f"1e{exponent:+.0f}" if row_idx in (0, height - 1) else ""
        if row_idx == (height - 1) // 2:
            label = ylabel[: 6].rjust(6)
        lines.append(f"{label:>8} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9
        + f"0{' ' * (width - len(str(max_len - 1)) - 1)}{max_len - 1}  ({xlabel})"
    )
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), markers)
    )
    lines.append(" " * 9 + legend)
    return "\n".join(lines)


def convergence_plot(results: dict, **kwargs) -> str:
    """Plot :class:`~repro.solvers.result.SolveResult` histories by name."""
    series = {
        name: [v for v in res.residual_history]
        for name, res in results.items()
    }
    return semilogy_plot(series, **kwargs)
