"""Plain-text table formatting (the benches print paper-style tables)."""

from __future__ import annotations


def format_table(headers, rows, title: str | None = None) -> str:
    """Render an aligned monospace table.

    ``rows`` is an iterable of sequences; every cell is converted with
    ``str`` (pre-format floats yourself).
    """
    headers = [str(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header count")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
