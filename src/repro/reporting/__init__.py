"""Result formatting for the experiment harness."""

from repro.reporting.tables import format_table
from repro.reporting.convergence import convergence_table, iterations_to_tol
from repro.reporting.ascii_plot import convergence_plot, semilogy_plot

__all__ = [
    "format_table",
    "convergence_table",
    "iterations_to_tol",
    "convergence_plot",
    "semilogy_plot",
]
