"""Block sparse row (BSR) matrices for FEM systems.

Plane-elasticity matrices have a natural 2x2 (3-D: 3x3) block structure —
one block per coupled node pair.  Storing them block-wise keeps the index
arrays ``b^2`` times smaller, which is the classic memory-traffic
optimization production FEM solvers apply to exactly the matrices this
package builds.

A measured caveat, recorded by ``benchmarks/test_kernel_microbench.py``:
in *pure NumPy* the scalar CSR ``reduceat`` matvec stays faster than the
batched block kernel (tiny-block batched products do not amortize NumPy's
per-op overhead), so the solvers keep CSR; BSR is provided as the
compressed interchange format and for the index-compression accounting.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix


class BSRMatrix:
    """Square block-CSR matrix with uniform ``b x b`` blocks.

    Parameters
    ----------
    n_block_rows:
        Number of block rows (matrix dimension is ``n_block_rows * b``).
    indptr, indices:
        Block-row pointers and block-column indices (CSR layout over
        blocks).
    blocks:
        Array of shape ``(n_blocks, b, b)`` aligned with ``indices``.
    """

    def __init__(self, n_block_rows, indptr, indices, blocks):
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.blocks = np.ascontiguousarray(blocks, dtype=np.float64)
        if self.blocks.ndim != 3 or self.blocks.shape[1] != self.blocks.shape[2]:
            raise ValueError("blocks must have shape (n_blocks, b, b)")
        self.n_block_rows = int(n_block_rows)
        self.b = int(self.blocks.shape[1])
        if len(self.indptr) != self.n_block_rows + 1:
            raise ValueError("indptr must have length n_block_rows + 1")
        if self.indptr[-1] != len(self.indices) or len(self.indices) != len(
            self.blocks
        ):
            raise ValueError("indices/blocks inconsistent with indptr")

    @property
    def shape(self) -> tuple:
        """Scalar matrix shape."""
        n = self.n_block_rows * self.b
        return (n, n)

    @property
    def nnz(self) -> int:
        """Stored scalar entries (blocks are dense)."""
        return self.blocks.size

    @classmethod
    def from_csr(cls, a: CSRMatrix, b: int) -> "BSRMatrix":
        """Convert a CSR matrix whose dimension is a multiple of ``b``.

        Any scalar entry inside a touched block materializes the whole
        block (zero-padded) — the standard BSR fill convention.
        """
        n, m = a.shape
        if n != m or n % b:
            raise ValueError("matrix must be square with dimension % b == 0")
        nbr = n // b
        rows = np.repeat(np.arange(n), np.diff(a.indptr))
        brows = rows // b
        bcols = a.indices // b
        # Unique (block-row, block-col) pairs, CSR-ordered.
        order = np.lexsort((bcols, brows))
        br = brows[order]
        bc = bcols[order]
        new_block = np.empty(len(br), dtype=bool)
        if len(br):
            new_block[0] = True
            new_block[1:] = (br[1:] != br[:-1]) | (bc[1:] != bc[:-1])
        block_id_sorted = np.cumsum(new_block) - 1
        n_blocks = int(block_id_sorted[-1]) + 1 if len(br) else 0
        blocks = np.zeros((n_blocks, b, b))
        lr = rows[order] % b
        lc = a.indices[order] % b
        blocks[block_id_sorted, lr, lc] = a.data[order]
        starts = np.flatnonzero(new_block)
        indices = bc[starts]
        indptr = np.zeros(nbr + 1, dtype=np.int64)
        np.add.at(indptr, br[starts] + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(nbr, indptr, indices, blocks)

    def matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A x`` via one batched block-GEMV over all blocks.

        Blocks are CSR-ordered by block row, so the per-row accumulation
        is a segmented ``reduceat`` (contiguous segments), not a scattered
        ``add.at``.
        """
        n = self.n_block_rows * self.b
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (n,):
            raise ValueError(f"x has shape {x.shape}, expected ({n},)")
        xb = x.reshape(self.n_block_rows, self.b)
        out = np.zeros((self.n_block_rows, self.b))
        if len(self.blocks) == 0:
            return out.ravel()
        # Gather the input block per stored block, multiply all at once:
        # contrib[k] = blocks[k] @ x_block[indices[k]], computed as an
        # elementwise product + axis sum (faster than batched matmul for
        # tiny blocks).
        contrib = (self.blocks * xb[self.indices][:, None, :]).sum(axis=2)
        lengths = np.diff(self.indptr)
        nonempty = lengths > 0
        starts = self.indptr[:-1][nonempty]
        out[nonempty] = np.add.reduceat(contrib, starts, axis=0)
        return out.ravel()

    def tocsr(self) -> CSRMatrix:
        """Expand back to scalar CSR (explicit zeros from block fill kept)."""
        from repro.sparse.coo import COOMatrix

        nb, b = len(self.blocks), self.b
        brow = np.repeat(
            np.repeat(np.arange(self.n_block_rows), np.diff(self.indptr)),
            b * b,
        )
        bcol = np.repeat(self.indices, b * b)
        lr = np.tile(np.repeat(np.arange(b), b), nb)
        lc = np.tile(np.tile(np.arange(b), b), nb)
        coo = COOMatrix(
            self.shape,
            brow * b + lr,
            bcol * b + lc,
            self.blocks.ravel(),
        )
        return coo.tocsr()

    def toarray(self) -> np.ndarray:
        """Dense copy; for tests."""
        return self.tocsr().toarray()

    def __repr__(self) -> str:
        return (
            f"BSRMatrix(shape={self.shape}, b={self.b}, "
            f"blocks={len(self.blocks)})"
        )
