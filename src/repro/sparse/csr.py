"""Compressed sparse row matrix with the kernels the solvers need.

The matvec is the time-dominant kernel of every algorithm in the paper
(polynomial preconditioning *is* a chain of matvecs), so it is implemented
with a fully vectorized gather + segmented reduction, dispatched through
the pluggable backends of :mod:`repro.sparse.kernels`.

**Immutability convention.**  A ``CSRMatrix`` is frozen after
construction: no method mutates ``indptr``/``indices``/``data`` (scaling
and transposition return new matrices).  This lets the hot kernels cache
derived arrays — the COO row-index view, the ``reduceat`` segment starts,
the nonempty-row mask and the per-matrix scratch buffers — lazily and
*never invalidate them*.  Anything that needs a modified matrix must build
a new one.
"""

from __future__ import annotations

import numpy as np

from repro.sparse import kernels


class CSRMatrix:
    """Compressed sparse row matrix (immutable by convention, see module doc).

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)``.
    indptr:
        Row pointer array of length ``n_rows + 1``.
    indices:
        Column indices, ordered within each row.
    data:
        Values aligned with ``indices``.
    """

    def __init__(self, shape, indptr, indices, data):
        self.shape = tuple(shape)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        n = self.shape[0]
        if len(self.indptr) != n + 1:
            raise ValueError("indptr must have length n_rows + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise ValueError("indptr endpoints inconsistent with data")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data must have equal length")
        # Lazy caches of derived arrays and kernel workspaces; safe because
        # the matrix is immutable after this point.
        self._cache: dict = {}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, a: np.ndarray, tol: float = 0.0) -> "CSRMatrix":
        """Build from a dense array, dropping entries with ``|a_ij| <= tol``."""
        a = np.asarray(a, dtype=np.float64)
        mask = np.abs(a) > tol
        rows, cols = np.nonzero(mask)
        indptr = np.zeros(a.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(a.shape, indptr, cols, a[rows, cols])

    @classmethod
    def eye(cls, n: int) -> "CSRMatrix":
        """The n-by-n identity."""
        idx = np.arange(n, dtype=np.int64)
        return cls((n, n), np.arange(n + 1, dtype=np.int64), idx, np.ones(n))

    @classmethod
    def diag(cls, d: np.ndarray) -> "CSRMatrix":
        """Diagonal matrix from a vector."""
        d = np.asarray(d, dtype=np.float64)
        n = len(d)
        idx = np.arange(n, dtype=np.int64)
        return cls((n, n), np.arange(n + 1, dtype=np.int64), idx, d.copy())

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return len(self.data)

    def row_lengths(self) -> np.ndarray:
        """Number of stored entries per row."""
        return np.diff(self.indptr)

    def copy(self) -> "CSRMatrix":
        """Deep copy."""
        return CSRMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(), self.data.copy()
        )

    # ------------------------------------------------------------------
    # Cached derived arrays (lazy; never invalidated — see module doc)
    # ------------------------------------------------------------------
    def row_indices(self) -> np.ndarray:
        """The COO row-index view ``repeat(arange(n), row_lengths)``.

        Computed once and cached; shared by every kernel that needs
        per-entry row identities (rmatvec, diagonal, scaling, transpose,
        conversions).  Treat as read-only.
        """
        rows = self._cache.get("rows")
        if rows is None:
            rows = np.repeat(
                np.arange(self.shape[0], dtype=np.int64), np.diff(self.indptr)
            )
            self._cache["rows"] = rows
        return rows

    def _row_segments(self):
        """``(starts, nonempty_mask, all_nonempty)`` for segmented sums.

        ``starts`` are the ``reduceat`` segment starts restricted to rows
        owning at least one entry; when every row is nonempty (the common
        FEM case) kernels reduce straight into ``out``.
        """
        seg = self._cache.get("segments")
        if seg is None:
            lengths = np.diff(self.indptr)
            nonempty = lengths > 0
            all_nonempty = bool(nonempty.all())
            starts = (
                self.indptr[:-1]
                if all_nonempty
                else self.indptr[:-1][nonempty]
            )
            seg = (starts, nonempty, all_nonempty)
            self._cache["segments"] = seg
        return seg

    def _nnz_buffer(self) -> np.ndarray:
        """Scratch array of length ``nnz`` for gathered products."""
        buf = self._cache.get("nnz_buf")
        if buf is None:
            buf = np.empty(self.nnz)
            self._cache["nnz_buf"] = buf
        return buf

    def _rowsum_buffer(self) -> np.ndarray:
        """Scratch array holding one partial sum per nonempty row."""
        buf = self._cache.get("rowsum_buf")
        if buf is None:
            buf = np.empty(len(self._row_segments()[0]))
            self._cache["rowsum_buf"] = buf
        return buf

    def _matmat_buffers(self):
        """Contiguous column scratch pair for the column-loop SpMM."""
        bufs = self._cache.get("matmat_bufs")
        if bufs is None:
            bufs = (np.empty(self.shape[1]), np.empty(self.shape[0]))
            self._cache["matmat_bufs"] = bufs
        return bufs

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A @ x``, dispatched to the active kernel backend.

        ``out`` (when given) is fully overwritten and returned; it must not
        alias ``x`` — backends stream products while reading ``x``, so an
        aliased call raises rather than silently corrupting.
        """
        n, m = self.shape
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (m,):
            raise ValueError(f"x has shape {x.shape}, expected ({m},)")
        if out is None:
            out = np.empty(n)
        elif out.shape != (n,):
            raise ValueError(f"out has shape {out.shape}, expected ({n},)")
        elif np.shares_memory(out, x):
            raise ValueError("matvec out= must not alias x")
        if self.nnz == 0:
            out[:] = 0.0
            return out
        return kernels.get_backend().matvec(self, x, out)

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def rmatvec(self, y: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``x = A.T @ y`` via scatter-add (backend-dispatched).

        Same ``out`` contract as :meth:`matvec`.
        """
        n, m = self.shape
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (n,):
            raise ValueError(f"y has shape {y.shape}, expected ({n},)")
        if out is None:
            out = np.empty(m)
        elif out.shape != (m,):
            raise ValueError(f"out has shape {out.shape}, expected ({m},)")
        elif np.shares_memory(out, y):
            raise ValueError("rmatvec out= must not alias y")
        if self.nnz == 0:
            out[:] = 0.0
            return out
        return kernels.get_backend().rmatvec(self, y, out)

    def matmat(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Multi-RHS product ``Y = A @ X`` for an ``(m, k)`` block (SpMM).

        Lets callers apply the operator to several vectors per sparse-matrix
        sweep (block orthogonalization, multi-vector polynomial
        application).  ``out`` (``(n, k)``, fully overwritten) must not
        alias ``X``.

        Inputs are normalized here, once, so the backends only ever see a
        C-contiguous float64 ``(m, k)`` block: a 1-D length-``m`` vector is
        treated as a single column (``k = 1``, output ``(n, 1)``), and
        Fortran-ordered / non-contiguous blocks are copied to C order.
        """
        n, m = self.shape
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x.reshape(m, 1) if x.shape[0] == m else x
        if x.ndim != 2 or x.shape[0] != m:
            raise ValueError(f"X has shape {x.shape}, expected ({m}, k)")
        x = np.ascontiguousarray(x)
        k = x.shape[1]
        if out is None:
            out = np.empty((n, k))
        elif out.shape != (n, k):
            raise ValueError(f"out has shape {out.shape}, expected ({n}, {k})")
        elif np.shares_memory(out, x):
            raise ValueError("matmat out= must not alias X")
        if self.nnz == 0 or k == 0:
            out[:] = 0.0
            return out
        return kernels.get_backend().matmat(self, x, out)

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal (zeros where not stored)."""
        n, m = self.shape
        k = min(n, m)
        out = np.zeros(k)
        rows = self.row_indices()
        on_diag = rows == self.indices
        out[rows[on_diag]] = self.data[on_diag]
        return out[:k]

    def row_norms1(self) -> np.ndarray:
        """Discrete :math:`L_1` norm of every row, :math:`\\|k_i\\|_1` (Eq. 10)."""
        n = self.shape[0]
        out = np.zeros(n)
        if self.nnz == 0:
            return out
        starts, nonempty, all_nonempty = self._row_segments()
        if all_nonempty:
            np.add.reduceat(np.abs(self.data), starts, out=out)
        else:
            out[nonempty] = np.add.reduceat(np.abs(self.data), starts)
        return out

    def scale_rows(self, d: np.ndarray) -> "CSRMatrix":
        """Return ``diag(d) @ A`` without changing the pattern."""
        d = np.asarray(d, dtype=np.float64)
        if d.shape != (self.shape[0],):
            raise ValueError("row scaling vector has wrong length")
        return CSRMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data * d[self.row_indices()],
        )

    def scale_cols(self, d: np.ndarray) -> "CSRMatrix":
        """Return ``A @ diag(d)`` without changing the pattern."""
        d = np.asarray(d, dtype=np.float64)
        if d.shape != (self.shape[1],):
            raise ValueError("column scaling vector has wrong length")
        return CSRMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data * d[self.indices],
        )

    def scale_sym(self, d_left: np.ndarray, d_right: np.ndarray) -> "CSRMatrix":
        """``diag(d_left) @ A @ diag(d_right)`` in a single data pass.

        One new matrix instead of the two that chaining
        :meth:`scale_rows` / :meth:`scale_cols` would materialize — the
        setup-time half of the fused scaled matvec (the solve-time half is
        :func:`repro.sparse.ops.scaled_matvec`).
        """
        d_left = np.asarray(d_left, dtype=np.float64)
        d_right = np.asarray(d_right, dtype=np.float64)
        if d_left.shape != (self.shape[0],):
            raise ValueError("row scaling vector has wrong length")
        if d_right.shape != (self.shape[1],):
            raise ValueError("column scaling vector has wrong length")
        data = self.data * d_left[self.row_indices()]
        data *= d_right[self.indices]
        return CSRMatrix(self.shape, self.indptr.copy(), self.indices.copy(), data)

    def transpose(self) -> "CSRMatrix":
        """Explicit transpose (CSR of :math:`A^T`)."""
        n, m = self.shape
        rows = self.row_indices()
        order = np.lexsort((rows, self.indices))
        t_indices = rows[order]
        t_data = self.data[order]
        t_indptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(t_indptr, self.indices + 1, 1)
        np.cumsum(t_indptr, out=t_indptr)
        return CSRMatrix((m, n), t_indptr, t_indices, t_data)

    def submatrix(self, row_idx: np.ndarray, col_idx: np.ndarray) -> "CSRMatrix":
        """Extract ``A[row_idx][:, col_idx]`` (both index arrays, no slices).

        Columns outside ``col_idx`` are dropped; the result is re-indexed to
        the local numbering implied by ``col_idx``.  Fully vectorized: the
        per-row entry ranges are flattened into one gather index built from
        the row pointer, so cost is O(selected nnz), with no Python loop.
        """
        row_idx = np.asarray(row_idx, dtype=np.int64)
        col_idx = np.asarray(col_idx, dtype=np.int64)
        n, m = self.shape
        col_map = np.full(m, -1, dtype=np.int64)
        col_map[col_idx] = np.arange(len(col_idx))
        lens = self.indptr[row_idx + 1] - self.indptr[row_idx]
        total = int(lens.sum())
        # gather[p] walks each selected row's [indptr[r], indptr[r+1]) range.
        offsets = np.zeros(len(row_idx) + 1, dtype=np.int64)
        np.cumsum(lens, out=offsets[1:])
        gather = (
            np.repeat(self.indptr[row_idx] - offsets[:-1], lens)
            + np.arange(total, dtype=np.int64)
        )
        cols = col_map[self.indices[gather]]
        keep = cols >= 0
        new_rows = np.repeat(
            np.arange(len(row_idx), dtype=np.int64), lens
        )[keep]
        indptr = np.zeros(len(row_idx) + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(new_rows, minlength=len(row_idx)).astype(np.int64),
            out=indptr[1:],
        )
        return CSRMatrix(
            (len(row_idx), len(col_idx)),
            indptr,
            cols[keep],
            self.data[gather][keep],
        )

    def toarray(self) -> np.ndarray:
        """Dense copy; for tests and tiny examples."""
        out = np.zeros(self.shape)
        out[self.row_indices(), self.indices] = self.data
        return out

    def tocoo(self):
        """Convert back to triplet format."""
        from repro.sparse.coo import COOMatrix

        return COOMatrix(
            self.shape,
            self.row_indices().copy(),
            self.indices.copy(),
            self.data.copy(),
        )

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        """Check :math:`A = A^T` up to ``tol`` (pattern-independent).

        When the transpose has the identical sparsity pattern the check is
        a direct (exact, cheap) data comparison; a pattern or nnz mismatch
        — possible for symmetric values padded with explicit zeros — falls
        through to random matvec probes.
        """
        n, m = self.shape
        if n != m:
            return False
        t = self.transpose()
        if (
            self.nnz == t.nnz
            and np.array_equal(self.indptr, t.indptr)
            and np.array_equal(self.indices, t.indices)
        ):
            return bool(np.allclose(self.data, t.data, atol=tol, rtol=1e-10))
        # Patterns differ (explicit zeros); decide by matvec probes.
        rng = np.random.default_rng(0)
        for _ in range(3):
            x = rng.standard_normal(m)
            if not np.allclose(self.matvec(x), t.matvec(x), atol=tol, rtol=1e-10):
                return False
        return True

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
