"""Compressed sparse row matrix with the kernels the solvers need.

The matvec is the time-dominant kernel of every algorithm in the paper
(polynomial preconditioning *is* a chain of matvecs), so it is implemented
with a fully vectorized gather + segmented reduction.
"""

from __future__ import annotations

import numpy as np


class CSRMatrix:
    """Compressed sparse row matrix.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)``.
    indptr:
        Row pointer array of length ``n_rows + 1``.
    indices:
        Column indices, ordered within each row.
    data:
        Values aligned with ``indices``.
    """

    def __init__(self, shape, indptr, indices, data):
        self.shape = tuple(shape)
        self.indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.indices = np.ascontiguousarray(indices, dtype=np.int64)
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        n = self.shape[0]
        if len(self.indptr) != n + 1:
            raise ValueError("indptr must have length n_rows + 1")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise ValueError("indptr endpoints inconsistent with data")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data must have equal length")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(cls, a: np.ndarray, tol: float = 0.0) -> "CSRMatrix":
        """Build from a dense array, dropping entries with ``|a_ij| <= tol``."""
        a = np.asarray(a, dtype=np.float64)
        mask = np.abs(a) > tol
        rows, cols = np.nonzero(mask)
        indptr = np.zeros(a.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(a.shape, indptr, cols, a[rows, cols])

    @classmethod
    def eye(cls, n: int) -> "CSRMatrix":
        """The n-by-n identity."""
        idx = np.arange(n, dtype=np.int64)
        return cls((n, n), np.arange(n + 1, dtype=np.int64), idx, np.ones(n))

    @classmethod
    def diag(cls, d: np.ndarray) -> "CSRMatrix":
        """Diagonal matrix from a vector."""
        d = np.asarray(d, dtype=np.float64)
        n = len(d)
        idx = np.arange(n, dtype=np.int64)
        return cls((n, n), np.arange(n + 1, dtype=np.int64), idx, d.copy())

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored entries."""
        return len(self.data)

    def row_lengths(self) -> np.ndarray:
        """Number of stored entries per row."""
        return np.diff(self.indptr)

    def copy(self) -> "CSRMatrix":
        """Deep copy."""
        return CSRMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(), self.data.copy()
        )

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``y = A @ x`` via gather + segmented sum.

        ``np.add.reduceat`` over the row pointer gives a per-row sum in one
        vectorized pass; rows with no stored entries are zeroed explicitly
        because ``reduceat`` repeats the next segment for empty ones.
        """
        n, m = self.shape
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (m,):
            raise ValueError(f"x has shape {x.shape}, expected ({m},)")
        if out is None:
            out = np.empty(n)
        if self.nnz == 0:
            out[:] = 0.0
            return out
        prod = self.data * x[self.indices]
        lengths = np.diff(self.indptr)
        nonempty = lengths > 0
        out[:] = 0.0
        # reduceat needs strictly valid segment starts; restrict to rows
        # that own at least one entry.
        starts = self.indptr[:-1][nonempty]
        out[nonempty] = np.add.reduceat(prod, starts)
        return out

    def __matmul__(self, x: np.ndarray) -> np.ndarray:
        return self.matvec(x)

    def rmatvec(self, y: np.ndarray) -> np.ndarray:
        """``x = A.T @ y`` via scatter-add."""
        n, m = self.shape
        y = np.asarray(y, dtype=np.float64)
        if y.shape != (n,):
            raise ValueError(f"y has shape {y.shape}, expected ({n},)")
        out = np.zeros(m)
        rows = np.repeat(np.arange(n), np.diff(self.indptr))
        np.add.at(out, self.indices, self.data * y[rows])
        return out

    def diagonal(self) -> np.ndarray:
        """Extract the main diagonal (zeros where not stored)."""
        n, m = self.shape
        k = min(n, m)
        out = np.zeros(k)
        rows = np.repeat(np.arange(n), np.diff(self.indptr))
        on_diag = rows == self.indices
        out[rows[on_diag]] = self.data[on_diag]
        return out[:k]

    def row_norms1(self) -> np.ndarray:
        """Discrete :math:`L_1` norm of every row, :math:`\\|k_i\\|_1` (Eq. 10)."""
        n = self.shape[0]
        out = np.zeros(n)
        if self.nnz == 0:
            return out
        lengths = np.diff(self.indptr)
        nonempty = lengths > 0
        starts = self.indptr[:-1][nonempty]
        out[nonempty] = np.add.reduceat(np.abs(self.data), starts)
        return out

    def scale_rows(self, d: np.ndarray) -> "CSRMatrix":
        """Return ``diag(d) @ A`` without changing the pattern."""
        d = np.asarray(d, dtype=np.float64)
        if d.shape != (self.shape[0],):
            raise ValueError("row scaling vector has wrong length")
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return CSRMatrix(
            self.shape, self.indptr.copy(), self.indices.copy(), self.data * d[rows]
        )

    def scale_cols(self, d: np.ndarray) -> "CSRMatrix":
        """Return ``A @ diag(d)`` without changing the pattern."""
        d = np.asarray(d, dtype=np.float64)
        if d.shape != (self.shape[1],):
            raise ValueError("column scaling vector has wrong length")
        return CSRMatrix(
            self.shape,
            self.indptr.copy(),
            self.indices.copy(),
            self.data * d[self.indices],
        )

    def transpose(self) -> "CSRMatrix":
        """Explicit transpose (CSR of :math:`A^T`)."""
        n, m = self.shape
        rows = np.repeat(np.arange(n), np.diff(self.indptr))
        order = np.lexsort((rows, self.indices))
        t_indices = rows[order]
        t_data = self.data[order]
        t_indptr = np.zeros(m + 1, dtype=np.int64)
        np.add.at(t_indptr, self.indices + 1, 1)
        np.cumsum(t_indptr, out=t_indptr)
        return CSRMatrix((m, n), t_indptr, t_indices, t_data)

    def submatrix(self, row_idx: np.ndarray, col_idx: np.ndarray) -> "CSRMatrix":
        """Extract ``A[row_idx][:, col_idx]`` (both index arrays, no slices).

        Columns outside ``col_idx`` are dropped; the result is re-indexed to
        the local numbering implied by ``col_idx``.
        """
        row_idx = np.asarray(row_idx, dtype=np.int64)
        col_idx = np.asarray(col_idx, dtype=np.int64)
        n, m = self.shape
        col_map = np.full(m, -1, dtype=np.int64)
        col_map[col_idx] = np.arange(len(col_idx))
        out_rows = []
        out_cols = []
        out_data = []
        for new_r, r in enumerate(row_idx):
            lo, hi = self.indptr[r], self.indptr[r + 1]
            cols = col_map[self.indices[lo:hi]]
            keep = cols >= 0
            k = int(keep.sum())
            if k:
                out_rows.append(np.full(k, new_r, dtype=np.int64))
                out_cols.append(cols[keep])
                out_data.append(self.data[lo:hi][keep])
        if out_rows:
            rows = np.concatenate(out_rows)
            cols = np.concatenate(out_cols)
            data = np.concatenate(out_data)
        else:
            rows = np.zeros(0, dtype=np.int64)
            cols = np.zeros(0, dtype=np.int64)
            data = np.zeros(0)
        indptr = np.zeros(len(row_idx) + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix((len(row_idx), len(col_idx)), indptr, cols, data)

    def toarray(self) -> np.ndarray:
        """Dense copy; for tests and tiny examples."""
        out = np.zeros(self.shape)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        out[rows, self.indices] = self.data
        return out

    def tocoo(self):
        """Convert back to triplet format."""
        from repro.sparse.coo import COOMatrix

        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.indptr))
        return COOMatrix(self.shape, rows, self.indices.copy(), self.data.copy())

    def is_symmetric(self, tol: float = 1e-12) -> bool:
        """Check :math:`A = A^T` up to ``tol`` (pattern-independent)."""
        t = self.transpose()
        if self.nnz != t.nnz:
            # Patterns may still differ by explicit zeros; fall back to dense
            # only for small matrices, otherwise compare via matvec probes.
            pass
        rng = np.random.default_rng(0)
        for _ in range(3):
            x = rng.standard_normal(self.shape[1])
            if not np.allclose(self.matvec(x), t.matvec(x), atol=tol, rtol=1e-10):
                return False
        return True

    def __repr__(self) -> str:
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
