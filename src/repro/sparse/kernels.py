"""Pluggable sparse-kernel backends.

Every solve in this codebase is a chain of CSR mat-vecs (polynomial
preconditioning turns the preconditioner itself into ``m`` matvecs per
Krylov step — DESIGN.md §1), so the matvec substrate is the single knob
that moves end-to-end throughput.  This module isolates that substrate
behind a tiny registry so faster implementations drop in without touching
any caller:

* ``"numpy"`` — pure-NumPy gather + ``np.add.reduceat`` segmented sum,
  always available, allocation-free through cached per-matrix workspaces.
* ``"scipy"`` — ``scipy.sparse._sparsetools`` C kernels (``csr_matvec``,
  ``csc_matvec``, ``csr_matvecs``), registered when scipy is importable
  and its private kernels behave; accumulates directly into caller
  buffers.
* ``"numba"`` — JIT row loop, registered only when numba is importable
  (it is an optional dependency; nothing here imports it eagerly).

Selection: ``set_backend(name)`` programmatically, or the environment
variable ``REPRO_KERNEL_BACKEND`` (read at first use).  All backends
implement the same three kernels against the *duck-typed* matrix object
(anything exposing ``shape``, ``indptr``, ``indices``, ``data`` and the
``CSRMatrix`` cache helpers) and fully overwrite ``out``:

* ``matvec(a, x, out)``   — ``out = A @ x``
* ``rmatvec(a, y, out)``  — ``out = A.T @ y``
* ``matmat(a, X, out)``   — ``out = A @ X`` for ``(m, k)`` blocks (SpMM)

plus one raw-array kernel used by the ILU(0) preconditioner (and by
resident workers applying shipped factors):

* ``ilu0_solve(indptr, indices, data, diag_pos, split, z)`` — in-place
  forward/backward substitution ``z <- U^{-1} L^{-1} z`` through an
  in-pattern LU whose rows are column-sorted, with ``split[i]`` the index
  one past row ``i``'s strictly-lower entries and ``diag_pos[i]`` the
  position of its diagonal entry.

Backends assume matrices are immutable after construction (the repo-wide
convention ``CSRMatrix`` documents): cached derived arrays are never
invalidated.
"""

from __future__ import annotations

import inspect
import os
import weakref
from contextlib import contextmanager

import numpy as np

__all__ = [
    "available_backends",
    "active_backend_name",
    "get_backend",
    "set_backend",
    "use_backend",
    "accepts_out",
]


# ----------------------------------------------------------------------
# out=-capability probe (shared by the polynomial and Krylov hot loops)
# ----------------------------------------------------------------------
_accepts_out_cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def accepts_out(fn) -> bool:
    """True when ``fn`` takes an ``out=`` keyword (workspace-reuse capable).

    Bound methods are resolved to their underlying function so the cache
    survives the fresh method objects Python creates on every attribute
    access.  Callables that cannot be introspected report False and fall
    back to the allocating path.
    """
    key = getattr(fn, "__func__", fn)
    try:
        return _accepts_out_cache[key]
    except (KeyError, TypeError):
        pass
    try:
        params = inspect.signature(key).parameters
    except (TypeError, ValueError):
        result = False
    else:
        p = params.get("out")
        result = p is not None and p.kind in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    try:
        _accepts_out_cache[key] = result
    except TypeError:
        pass
    return result


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
class NumpyBackend:
    """Vectorized gather + segmented-reduction kernels; always available.

    Reuses two cached per-matrix buffers (an ``nnz``-sized product buffer
    and, for matrices with empty rows, a compacted row-sum buffer) so the
    steady-state matvec performs zero array allocations.
    """

    name = "numpy"

    def matvec(self, a, x, out):
        """``out = A @ x`` via gather + ``np.add.reduceat`` segmented sum."""
        work = a._nnz_buffer()
        # mode="clip" skips np.take's exception-safe temporary copy (the
        # default mode="raise" allocates nnz doubles per call); CSR
        # construction guarantees the indices are in range.
        np.take(x, a.indices, out=work, mode="clip")
        np.multiply(work, a.data, out=work)
        starts, nonempty, all_nonempty = a._row_segments()
        if all_nonempty:
            np.add.reduceat(work, starts, out=out)
        else:
            out[:] = 0.0
            if len(starts):
                sums = a._rowsum_buffer()
                np.add.reduceat(work, starts, out=sums)
                out[nonempty] = sums
        return out

    def rmatvec(self, a, y, out):
        """``out = A.T @ y`` via gather + ``np.add.at`` scatter-add."""
        work = a._nnz_buffer()
        np.take(y, a.row_indices(), out=work, mode="clip")
        np.multiply(work, a.data, out=work)
        out[:] = 0.0
        np.add.at(out, a.indices, work)
        return out

    def matmat(self, a, x, out):
        """``out = A @ X`` column by column through cached scratch columns."""
        n, m = a.shape
        xcol, ycol = a._matmat_buffers()
        for j in range(x.shape[1]):
            xcol[:] = x[:, j]
            self.matvec(a, xcol, ycol)
            out[:, j] = ycol
        return out

    def ilu0_solve(self, indptr, indices, data, diag_pos, split, z):
        """In-place ``z <- U^{-1} L^{-1} z`` through an in-pattern LU.

        Row ``i``'s strictly-lower entries live at ``[indptr[i],
        split[i])`` and its diagonal at ``diag_pos[i]``; this is the
        reference implementation every other backend must match in exact
        arithmetic order (slice-dot per row, forward then backward).
        """
        n = len(indptr) - 1
        # Forward solve  L z = v  (unit lower triangular).
        for i in range(n):
            lo, d = indptr[i], split[i]
            if d > lo:
                z[i] -= data[lo:d] @ z[indices[lo:d]]
        # Backward solve  U z = z.
        for i in range(n - 1, -1, -1):
            d, hi = diag_pos[i], indptr[i + 1]
            s = z[i]
            if hi > d + 1:
                s -= data[d + 1 : hi] @ z[indices[d + 1 : hi]]
            z[i] = s / data[d]
        return z


class ScipyBackend(NumpyBackend):
    """C-loop kernels from ``scipy.sparse._sparsetools``.

    ``csr_matvec``/``csc_matvec``/``csr_matvecs`` accumulate ``y += A x``
    into a caller buffer, so they compose with the workspace-reuse
    discipline (zero allocations) while running the row loop in C.  A CSR
    matrix read column-wise is the CSC form of its transpose, which gives
    ``rmatvec`` for free.  Falls back to the NumPy kernels only through
    explicit registration failure, never silently.
    """

    name = "scipy"

    def __init__(self, sparsetools):
        self._st = sparsetools

    def matvec(self, a, x, out):
        """``out = A @ x`` through scipy's C ``csr_matvec`` accumulator."""
        out[:] = 0.0
        n, m = a.shape
        self._st.csr_matvec(n, m, a.indptr, a.indices, a.data, x, out)
        return out

    def rmatvec(self, a, y, out):
        """``out = A.T @ y``: the CSR arrays read as the CSC of ``A.T``."""
        out[:] = 0.0
        n, m = a.shape
        self._st.csc_matvec(m, n, a.indptr, a.indices, a.data, y, out)
        return out

    def matmat(self, a, x, out):
        """``out = A @ X`` in one C sweep via ``csr_matvecs`` (true SpMM)."""
        n, m = a.shape
        k = x.shape[1]
        x = np.ascontiguousarray(x)
        if out.flags.c_contiguous:
            out[:] = 0.0
            self._st.csr_matvecs(
                n, m, k, a.indptr, a.indices, a.data, x.ravel(), out.ravel()
            )
            return out
        buf = np.zeros((n, k))
        self._st.csr_matvecs(
            n, m, k, a.indptr, a.indices, a.data, x.ravel(), buf.ravel()
        )
        out[:] = buf
        return out


class NumbaBackend(NumpyBackend):
    """JIT-compiled row loops; registered only when numba is importable."""

    name = "numba"

    def __init__(self, numba):
        njit = numba.njit

        @njit(cache=True)
        def _matvec(indptr, indices, data, x, out):  # pragma: no cover
            for i in range(len(indptr) - 1):
                acc = 0.0
                for p in range(indptr[i], indptr[i + 1]):
                    acc += data[p] * x[indices[p]]
                out[i] = acc

        @njit(cache=True)
        def _rmatvec(indptr, indices, data, y, out):  # pragma: no cover
            out[:] = 0.0
            for i in range(len(indptr) - 1):
                yi = y[i]
                for p in range(indptr[i], indptr[i + 1]):
                    out[indices[p]] += data[p] * yi

        @njit(cache=True)
        def _matmat(indptr, indices, data, x, out):  # pragma: no cover
            out[:] = 0.0
            for i in range(len(indptr) - 1):
                for p in range(indptr[i], indptr[i + 1]):
                    v = data[p]
                    c = indices[p]
                    for j in range(x.shape[1]):
                        out[i, j] += v * x[c, j]

        @njit(cache=True)
        def _ilu0_solve(indptr, indices, data, diag_pos, split, z):  # pragma: no cover
            n = len(indptr) - 1
            for i in range(n):
                acc = 0.0
                for p in range(indptr[i], split[i]):
                    acc += data[p] * z[indices[p]]
                z[i] -= acc
            for i in range(n - 1, -1, -1):
                d = diag_pos[i]
                s = z[i]
                for p in range(d + 1, indptr[i + 1]):
                    s -= data[p] * z[indices[p]]
                z[i] = s / data[d]

        self._matvec_jit = _matvec
        self._rmatvec_jit = _rmatvec
        self._matmat_jit = _matmat
        self._ilu0_solve_jit = _ilu0_solve

    def matvec(self, a, x, out):
        """``out = A @ x`` through the JIT row loop."""
        self._matvec_jit(a.indptr, a.indices, a.data, x, out)
        return out

    def rmatvec(self, a, y, out):
        """``out = A.T @ y`` through the JIT scatter loop."""
        self._rmatvec_jit(a.indptr, a.indices, a.data, y, out)
        return out

    def matmat(self, a, x, out):
        """``out = A @ X`` through the JIT blocked row loop."""
        x = np.ascontiguousarray(x)
        if out.flags.c_contiguous:
            self._matmat_jit(a.indptr, a.indices, a.data, x, out)
            return out
        buf = np.empty_like(out, order="C")
        self._matmat_jit(a.indptr, a.indices, a.data, x, buf)
        out[:] = buf
        return out

    def ilu0_solve(self, indptr, indices, data, diag_pos, split, z):
        """In-place triangular solves through the JIT sequential row loop."""
        self._ilu0_solve_jit(indptr, indices, data, diag_pos, split, z)
        return z


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_BACKENDS: dict = {}
_current: list = [None]  # resolved lazily so the env var wins at first use


def _register_available() -> None:
    _BACKENDS["numpy"] = NumpyBackend()
    try:
        from scipy.sparse import _sparsetools

        # Smoke-test the private kernels on a 2x2 before trusting them.
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([0, 1], dtype=np.int64)
        data = np.array([2.0, 3.0])
        out = np.zeros(2)
        _sparsetools.csr_matvec(2, 2, indptr, indices, data, np.ones(2), out)
        if np.allclose(out, [2.0, 3.0]):
            _BACKENDS["scipy"] = ScipyBackend(_sparsetools)
    except Exception:  # pragma: no cover - scipy absent or API drift
        pass
    try:
        import numba

        _BACKENDS["numba"] = NumbaBackend(numba)
    except Exception:
        pass


_register_available()


def available_backends() -> tuple:
    """Names of the backends usable in this environment."""
    return tuple(sorted(_BACKENDS))


def get_backend():
    """The active backend (env var ``REPRO_KERNEL_BACKEND`` on first use)."""
    if _current[0] is None:
        name = os.environ.get("REPRO_KERNEL_BACKEND", "numpy").strip().lower()
        if name not in _BACKENDS:
            raise ValueError(
                f"REPRO_KERNEL_BACKEND={name!r} is not available; "
                f"choose from {available_backends()}"
            )
        _current[0] = _BACKENDS[name]
    return _current[0]


def active_backend_name() -> str:
    """Name of the active backend (resolves the env default on first use).

    Resident rank operations ship this name with every command so worker
    processes compute with the same kernels as the orchestrator would.
    """
    return get_backend().name


def set_backend(name: str):
    """Select the kernel backend by name; returns the previous backend."""
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: {available_backends()}"
        )
    prev = _current[0]
    _current[0] = _BACKENDS[name]
    return prev


@contextmanager
def use_backend(name: str):
    """Context manager: run a block under a specific kernel backend."""
    prev = _current[0]
    set_backend(name)
    try:
        yield _BACKENDS[name]
    finally:
        _current[0] = prev
