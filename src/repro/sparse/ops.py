"""Free-standing sparse operations shared by the preconditioning layer."""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix


def row_norms1(a: CSRMatrix) -> np.ndarray:
    """Row-wise discrete :math:`L_1` norms :math:`d_i = \\|k_i\\|_1` (Eq. 10)."""
    return a.row_norms1()


def scale_symmetric(a: CSRMatrix, d: np.ndarray) -> CSRMatrix:
    """Symmetric diagonal scaling :math:`DAD` with :math:`D=\\mathrm{diag}(d)`.

    This is the transformation :math:`A = DKD` of Eq. 11; it preserves the
    sparsity pattern and symmetry of ``a``.  Materializes a single new
    matrix in one data pass (no intermediate ``DA``).
    """
    return a.scale_sym(d, d)


def scaled_matvec(
    d_left: np.ndarray,
    a: CSRMatrix,
    d_right: np.ndarray,
    x: np.ndarray,
    out: np.ndarray | None = None,
    work: np.ndarray | None = None,
) -> np.ndarray:
    """Fused ``out = diag(d_left) @ A @ diag(d_right) @ x``.

    Applies the Eq. 11 scaled operator without ever materializing
    :math:`DAD`: one gather-scaled copy of ``x`` into ``work``, one plain
    matvec, one in-place row scale.  ``work`` (length ``a.shape[1]``) and
    ``out`` (length ``a.shape[0]``) are reused when supplied, so the
    steady-state cost is the matvec plus ``2n`` multiplies and zero
    allocations.
    """
    n, m = a.shape
    x = np.asarray(x, dtype=np.float64)
    if work is None:
        work = np.empty(m)
    np.multiply(d_right, x, out=work)
    out = a.matvec(work, out=out)
    np.multiply(out, d_left, out=out)
    return out


def matvec_flops(a: CSRMatrix) -> int:
    """Floating-point operations of one matvec: a multiply and an add per entry."""
    return 2 * a.nnz


def axpy_flops(n: int) -> int:
    """Flops of a DAXPY of length ``n``."""
    return 2 * n


def dot_flops(n: int) -> int:
    """Flops of an inner product of length ``n``."""
    return 2 * n


def spmm_dense(a: CSRMatrix, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Sparse-times-dense product ``A @ B`` via the backend SpMM kernel."""
    b = np.asarray(b, dtype=np.float64)
    return a.matmat(b, out=out)
