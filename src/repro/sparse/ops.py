"""Free-standing sparse operations shared by the preconditioning layer."""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix


def row_norms1(a: CSRMatrix) -> np.ndarray:
    """Row-wise discrete :math:`L_1` norms :math:`d_i = \\|k_i\\|_1` (Eq. 10)."""
    return a.row_norms1()


def scale_symmetric(a: CSRMatrix, d: np.ndarray) -> CSRMatrix:
    """Symmetric diagonal scaling :math:`DAD` with :math:`D=\\mathrm{diag}(d)`.

    This is the transformation :math:`A = DKD` of Eq. 11; it preserves the
    sparsity pattern and symmetry of ``a``.
    """
    return a.scale_rows(d).scale_cols(d)


def matvec_flops(a: CSRMatrix) -> int:
    """Floating-point operations of one matvec: a multiply and an add per entry."""
    return 2 * a.nnz


def axpy_flops(n: int) -> int:
    """Flops of a DAXPY of length ``n``."""
    return 2 * n


def dot_flops(n: int) -> int:
    """Flops of an inner product of length ``n``."""
    return 2 * n


def spmm_dense(a: CSRMatrix, b: np.ndarray) -> np.ndarray:
    """Sparse-times-dense product ``A @ B`` column by column."""
    b = np.asarray(b, dtype=np.float64)
    out = np.empty((a.shape[0], b.shape[1]))
    for j in range(b.shape[1]):
        a.matvec(b[:, j], out=out[:, j])
    return out
