"""Coordinate (triplet) sparse format — the FEM assembly format.

Finite-element assembly naturally produces duplicate ``(i, j)`` entries (one
per element touching the pair of degrees of freedom).  ``COOMatrix`` stores
the raw triplets and sums duplicates on conversion to CSR, which is exactly
the "assembly" operation the paper's element-based decomposition avoids
doing across subdomain interfaces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class COOMatrix:
    """A sparse matrix in coordinate (triplet) format.

    Parameters
    ----------
    shape:
        ``(n_rows, n_cols)``.
    rows, cols:
        Integer index arrays of equal length.
    data:
        Float values, same length as ``rows``.  Duplicate ``(i, j)`` pairs
        are allowed and are summed when converting to CSR.
    """

    shape: tuple
    rows: np.ndarray
    cols: np.ndarray
    data: np.ndarray

    def __post_init__(self) -> None:
        self.rows = np.ascontiguousarray(self.rows, dtype=np.int64)
        self.cols = np.ascontiguousarray(self.cols, dtype=np.int64)
        self.data = np.ascontiguousarray(self.data, dtype=np.float64)
        if not (len(self.rows) == len(self.cols) == len(self.data)):
            raise ValueError("rows, cols and data must have equal length")
        n, m = self.shape
        if len(self.rows) and (self.rows.min() < 0 or self.rows.max() >= n):
            raise ValueError("row index out of range")
        if len(self.cols) and (self.cols.min() < 0 or self.cols.max() >= m):
            raise ValueError("column index out of range")

    @property
    def nnz(self) -> int:
        """Number of stored triplets (before duplicate summation)."""
        return len(self.data)

    @classmethod
    def empty(cls, shape: tuple) -> "COOMatrix":
        """An all-zero matrix with no stored triplets."""
        z = np.zeros(0)
        return cls(shape, z.astype(np.int64), z.astype(np.int64), z)

    def tocsr(self):
        """Convert to CSR, summing duplicate entries.

        The conversion sorts triplets by ``(row, col)`` with a stable
        lexicographic sort and then reduces runs of identical coordinates,
        all vectorized.
        """
        from repro.sparse.csr import CSRMatrix

        n, m = self.shape
        if self.nnz == 0:
            return CSRMatrix(
                self.shape,
                np.zeros(n + 1, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0),
            )
        order = np.lexsort((self.cols, self.rows))
        r = self.rows[order]
        c = self.cols[order]
        v = self.data[order]
        # Boundaries of runs of identical (row, col) pairs.
        new_run = np.empty(len(r), dtype=bool)
        new_run[0] = True
        new_run[1:] = (r[1:] != r[:-1]) | (c[1:] != c[:-1])
        starts = np.flatnonzero(new_run)
        data = np.add.reduceat(v, starts)
        rows = r[starts]
        cols = c[starts]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(self.shape, indptr, cols, data)

    def toarray(self) -> np.ndarray:
        """Dense copy (duplicates summed); for tests and tiny examples."""
        out = np.zeros(self.shape)
        np.add.at(out, (self.rows, self.cols), self.data)
        return out
