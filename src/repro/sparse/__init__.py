"""Sparse-matrix substrate.

A small, NumPy-vectorized sparse-matrix kernel library built from scratch
(the paper's solver never calls a general-purpose sparse library: each
subdomain needs exactly matvec, row 1-norms, diagonal extraction, symmetric
diagonal scaling and — for the ILU(0) comparison — an in-pattern
factorization with triangular solves).

``COOMatrix`` is the assembly-friendly triplet format produced by the FEM
layer; ``CSRMatrix`` is the compute format used by every solver kernel.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.bsr import BSRMatrix
from repro.sparse.ops import (
    matvec_flops,
    row_norms1,
    scale_symmetric,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "BSRMatrix",
    "matvec_flops",
    "row_norms1",
    "scale_symmetric",
]
