"""Sparse-matrix substrate.

A small, NumPy-vectorized sparse-matrix kernel library built from scratch
(the paper's solver never calls a general-purpose sparse library: each
subdomain needs exactly matvec, row 1-norms, diagonal extraction, symmetric
diagonal scaling and — for the ILU(0) comparison — an in-pattern
factorization with triangular solves).

``COOMatrix`` is the assembly-friendly triplet format produced by the FEM
layer; ``CSRMatrix`` is the compute format used by every solver kernel.
:mod:`repro.sparse.kernels` hosts the pluggable matvec/SpMM backends
(NumPy always; scipy/numba auto-detected; ``REPRO_KERNEL_BACKEND``
selects).  Matrices are immutable by convention so kernels may cache
derived index arrays forever — see :mod:`repro.sparse.csr`.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.bsr import BSRMatrix
from repro.sparse.kernels import (
    available_backends,
    get_backend,
    set_backend,
    use_backend,
)
from repro.sparse.ops import (
    matvec_flops,
    row_norms1,
    scale_symmetric,
    scaled_matvec,
    spmm_dense,
)

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "BSRMatrix",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "matvec_flops",
    "row_norms1",
    "scale_symmetric",
    "scaled_matvec",
    "spmm_dense",
]
