"""The service's serialized request/response contract.

:class:`SolveRequest` / :class:`SolveResponse` are the canonical wire
format of the solver service: plain dataclasses with exact JSON
round-trips (``to_dict``/``from_dict``/``to_json``/``from_json``), both
stamped with :data:`repro.core.outcome.SCHEMA_VERSION` — the same version
field carried by summary ``to_dict()`` payloads, ``repro solve --json``
run records and the golden files.

A request names its problem by Table 2 **mesh id** (problems must be
constructible on the service side; arbitrary objects don't serialize),
the subdomain count, a full :class:`repro.core.options.SolverOptions`
payload, and *one* right-hand side — either an explicit vector (``rhs``)
or a scale applied to the mesh's cantilever load (``rhs_scale``).
Single-RHS requests are the unit of coalescing: the service stacks
compatible requests into one block solve, and each request gets its own
column's result back.
"""

from __future__ import annotations

import json
import uuid
from dataclasses import dataclass, field

from repro.core.options import SolverOptions
from repro.core.outcome import SCHEMA_VERSION

#: Response terminal states.  ``ok`` — converged and driver-verified;
#: ``failed`` — solver finished without (verified) convergence, and the
#: result payload carries structured diagnostics; ``rejected`` —
#: admission control refused the request (see ``retry_after``);
#: ``timeout`` — the per-request deadline elapsed while queued or
#: solving; ``cancelled`` — the caller abandoned the request before it
#: was solved; ``error`` — the request itself was invalid or the solve
#: raised.
RESPONSE_STATUSES = (
    "ok", "failed", "rejected", "timeout", "cancelled", "error",
)


def _new_request_id() -> str:
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class SolveRequest:
    """One tenant's single-RHS solve request.

    Attributes
    ----------
    mesh:
        Table 2 mesh id of the cantilever problem to solve.
    n_parts:
        Subdomain / rank count.
    options:
        The :class:`SolverOptions` for the solve (full payload in JSON).
        Requests only coalesce with requests carrying *equal* options.
    rhs:
        Explicit right-hand side on the free DOFs (list of floats), or
        None to use ``rhs_scale`` times the mesh's cantilever load.
    rhs_scale:
        Load multiplier used when ``rhs`` is None.
    tenant:
        Accounting principal; per-tenant usage shows up in the service's
        ``stats()`` snapshot.
    request_id:
        Correlation id echoed on the response (auto-generated when
        omitted).
    timeout:
        Per-request deadline in seconds (queue wait + solve); None uses
        the service default.
    trace:
        When True, the response carries the batch's ``repro-trace/1``
        export (opt-in — traces are large).
    include_x:
        When True, the response's result payload includes the solution
        vector.
    """

    mesh: int
    n_parts: int = 4
    options: SolverOptions = field(default_factory=SolverOptions)
    rhs: list | None = None
    rhs_scale: float = 1.0
    tenant: str = "default"
    request_id: str = field(default_factory=_new_request_id)
    timeout: float | None = None
    trace: bool = False
    include_x: bool = False

    def __post_init__(self) -> None:
        """Validate eagerly — a malformed request must fail before it is
        admitted, not inside the batch it would have joined."""
        if not isinstance(self.mesh, int) or isinstance(self.mesh, bool):
            raise ValueError(f"mesh must be a Table 2 mesh id, got {self.mesh!r}")
        if self.n_parts < 1:
            raise ValueError("n_parts must be >= 1")
        if not isinstance(self.options, SolverOptions):
            raise ValueError("options must be a SolverOptions")
        if self.timeout is not None and not (self.timeout > 0):
            raise ValueError("timeout must be positive when given")

    def to_dict(self) -> dict:
        """JSON-serializable payload (with ``schema_version``)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "mesh": self.mesh,
            "n_parts": self.n_parts,
            "options": self.options.to_dict(),
            "rhs": None if self.rhs is None else [float(v) for v in self.rhs],
            "rhs_scale": float(self.rhs_scale),
            "tenant": self.tenant,
            "request_id": self.request_id,
            "timeout": self.timeout,
            "trace": self.trace,
            "include_x": self.include_x,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SolveRequest":
        """Inverse of :meth:`to_dict`; unknown keys are rejected so typos
        fail loudly at the service boundary."""
        payload = dict(payload)
        payload.pop("schema_version", None)
        options = payload.get("options")
        if isinstance(options, dict):
            payload["options"] = SolverOptions.from_dict(options)
        elif options is None:
            payload.pop("options", None)
        known = {
            "mesh", "n_parts", "options", "rhs", "rhs_scale", "tenant",
            "request_id", "timeout", "trace", "include_x",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown SolveRequest field(s) {sorted(unknown)}"
            )
        return cls(**payload)

    def to_json(self) -> str:
        """One-line JSON encoding (the ``repro serve`` wire format)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SolveRequest":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class SolveResponse:
    """The service's answer to one :class:`SolveRequest`.

    Satisfies the :class:`repro.core.outcome.SolveOutcome` protocol:
    ``result`` is the request's own column of the (possibly coalesced)
    batch as a :meth:`SolveResult.to_dict` payload, ``stats`` the
    *shared* batch communication counters (``CommStats.to_dict`` — the
    whole point of coalescing is that they do not scale with the batch
    width), and ``trace`` the batch's observability export when the
    request opted in.

    Attributes
    ----------
    status:
        One of :data:`RESPONSE_STATUSES`.
    converged, iterations, true_residual:
        The column's convergence outcome (defaults when no solve ran).
    coalesced:
        Number of requests that shared the batch this response rode in
        (1 = solo; 0 = never solved).
    queue_seconds, solve_seconds, setup_time:
        Time spent queued/batching, the batch's solve wall time, and the
        setup cost this request paid (0 on a session-cache hit).
    retry_after:
        Back-off hint in seconds, set on ``rejected`` responses.
    error:
        Human-readable reason on ``rejected``/``timeout``/``cancelled``/
        ``error`` responses.
    """

    request_id: str
    tenant: str = "default"
    status: str = "ok"
    result: dict | None = None
    stats: dict | None = None
    trace: dict | None = None
    converged: bool = False
    iterations: int = 0
    true_residual: float = float("nan")
    coalesced: int = 0
    queue_seconds: float = 0.0
    solve_seconds: float = 0.0
    setup_time: float = 0.0
    retry_after: float | None = None
    error: str | None = None

    def __post_init__(self) -> None:
        """Reject statuses outside the documented vocabulary."""
        if self.status not in RESPONSE_STATUSES:
            raise ValueError(
                f"status must be one of {RESPONSE_STATUSES}, "
                f"got {self.status!r}"
            )

    @property
    def diagnostics(self) -> list:
        """The column's structured anomaly events (plain dicts); empty
        for clean runs and for responses that never solved."""
        if not self.result:
            return []
        return list(self.result.get("diagnostics", []))

    def to_dict(self) -> dict:
        """JSON-serializable payload (with ``schema_version``)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "request_id": self.request_id,
            "tenant": self.tenant,
            "status": self.status,
            "result": self.result,
            "stats": self.stats,
            "trace": self.trace,
            "converged": self.converged,
            "iterations": self.iterations,
            "true_residual": self.true_residual,
            "coalesced": self.coalesced,
            "queue_seconds": self.queue_seconds,
            "solve_seconds": self.solve_seconds,
            "setup_time": self.setup_time,
            "retry_after": self.retry_after,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SolveResponse":
        """Inverse of :meth:`to_dict`."""
        payload = dict(payload)
        payload.pop("schema_version", None)
        return cls(**payload)

    def to_json(self) -> str:
        """One-line JSON encoding (NaN-safe: non-finite floats become
        None per strict JSON)."""
        payload = self.to_dict()
        tr = payload["true_residual"]
        if tr != tr or tr in (float("inf"), float("-inf")):
            payload["true_residual"] = None
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SolveResponse":
        """Inverse of :meth:`to_json` (a null ``true_residual`` loads as
        NaN)."""
        payload = json.loads(text)
        if payload.get("true_residual") is None:
            payload["true_residual"] = float("nan")
        return cls.from_dict(payload)
