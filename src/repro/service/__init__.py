"""Solver-as-a-service: the asyncio multi-tenant front-end.

The ``repro.service`` package turns the prepared-system machinery of
:mod:`repro.core.session` into a long-lived service:

* :mod:`repro.service.messages` — the serialized
  :class:`SolveRequest` / :class:`SolveResponse` contract;
* :mod:`repro.service.service` — :class:`SolverService` with request
  coalescing, admission control, per-tenant accounting and graceful
  drain;
* :mod:`repro.service.server` — the ``repro serve`` JSON-lines loop.

See docs/SERVICE.md for schemas and semantics.
"""

from repro.service.messages import (
    RESPONSE_STATUSES,
    SolveRequest,
    SolveResponse,
)
from repro.service.server import serve_jsonl
from repro.service.service import ServiceConfig, SolverService, TenantStats

__all__ = [
    "SolveRequest",
    "SolveResponse",
    "RESPONSE_STATUSES",
    "SolverService",
    "ServiceConfig",
    "TenantStats",
    "serve_jsonl",
]
