"""`repro serve`: a JSON-lines front door for the solver service.

No network dependency — the loop reads one JSON document per line from a
text stream (stdin for the CLI) and writes one JSON document per line to
another (stdout), which makes the service drivable end-to-end from tests,
CI and shell pipelines::

    printf '%s\\n' '{"mesh": 2, "n_parts": 4}' | python -m repro serve

Wire protocol (one JSON object per line):

* a :class:`~repro.service.messages.SolveRequest` payload (anything with
  a ``"mesh"`` key) — answered, *in completion order*, by the matching
  :class:`~repro.service.messages.SolveResponse` payload; correlate by
  ``request_id`` (echoed, auto-generated when omitted);
* ``{"op": "stats"}`` — answered by ``{"op": "stats", "stats": {...}}``
  (the :meth:`~repro.service.service.SolverService.stats` snapshot);
* ``{"op": "shutdown"}`` — drains in-flight work, answers
  ``{"op": "shutdown", "ok": true}`` and ends the loop;
* end-of-input — same graceful drain as ``shutdown``.

Malformed lines are answered with ``{"op": "error", "error": ...}`` and
do not kill the loop.
"""

from __future__ import annotations

import asyncio
import json

from repro.service.messages import SolveRequest
from repro.service.service import ServiceConfig, SolverService


async def serve_jsonl(
    in_stream,
    out_stream,
    config: ServiceConfig | None = None,
    service: SolverService | None = None,
) -> int:
    """Run the JSON-lines loop until shutdown/EOF; returns requests served.

    ``in_stream``/``out_stream`` are ordinary text streams (``sys.stdin``
    / ``sys.stdout`` in the CLI, ``io.StringIO`` in tests).  Blocking
    reads happen in the default executor so the event loop — and with it
    the batching clock — keeps running between lines.
    """
    svc = service if service is not None else SolverService(config)
    owns = service is None
    loop = asyncio.get_running_loop()
    write_lock = asyncio.Lock()
    inflight: set = set()
    served = 0

    async def emit(payload: dict) -> None:
        async with write_lock:
            out_stream.write(json.dumps(payload, sort_keys=True) + "\n")
            out_stream.flush()

    async def emit_response(request: SolveRequest) -> None:
        response = await svc.submit(request)
        async with write_lock:
            out_stream.write(response.to_json() + "\n")
            out_stream.flush()

    if owns:
        await svc.start()
    try:
        while True:
            line = await loop.run_in_executor(None, in_stream.readline)
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if not isinstance(payload, dict):
                    raise ValueError("expected a JSON object per line")
            except (json.JSONDecodeError, ValueError) as exc:
                await emit({"op": "error", "error": f"bad request line: {exc}"})
                continue
            op = payload.get("op")
            if op == "shutdown":
                break
            if op == "stats":
                await emit({"op": "stats", "stats": svc.stats()})
                continue
            if op is not None and op != "solve":
                await emit({"op": "error", "error": f"unknown op {op!r}"})
                continue
            payload.pop("op", None)
            try:
                request = SolveRequest.from_dict(payload)
            except (TypeError, ValueError) as exc:
                await emit({
                    "op": "error",
                    "error": f"bad request: {exc}",
                    "request_id": payload.get("request_id"),
                })
                continue
            served += 1
            task = asyncio.ensure_future(emit_response(request))
            inflight.add(task)
            task.add_done_callback(inflight.discard)
    finally:
        if inflight:
            await asyncio.gather(*list(inflight), return_exceptions=True)
        if owns:
            await svc.stop()
            await emit({"op": "shutdown", "ok": True, "served": served})
    return served
