"""The asyncio multi-tenant solver service.

:class:`SolverService` is the production front-end over
:class:`repro.core.session.SolveSession`: it admits concurrent
:class:`~repro.service.messages.SolveRequest`\\ s, routes them to a
bounded prepared-system cache, and **coalesces** requests that target the
same prepared system (same mesh, ``n_parts`` and options) within a short
batching window into a single
:meth:`~repro.core.session.PreparedSystem.solve_batch` call — riding the
block path PR 4 built, so ``k`` coalesced requests cost the *message
count* of one solve (words scale with ``k``, messages do not; asserted
from ``CommStats`` in the test suite).

Robustness properties:

* **Admission control** — at most ``queue_limit`` requests are admitted
  at a time; the surplus is rejected immediately with a ``retry_after``
  back-off hint (backpressure, never unbounded queueing).
* **Timeouts & cancellation** — each request carries a deadline (queue
  wait + solve); expiry or caller cancellation abandons the request
  without disturbing batch partners.  A request cancelled while still in
  the batching window is removed from its batch entirely.
* **Graceful drain** — :meth:`stop` stops admitting, flushes pending
  batches, and waits for in-flight solves to finish, so every admitted
  request gets a response.
* **Non-blocking event loop** — solves run in a worker thread pool; the
  loop only ever waits on futures.

Observability: every batch runs under a :class:`repro.obs.Tracer`, whose
per-rank busy seconds and comm counters feed **per-tenant accounting**
(requests, RHS solved, iterations, comm words, busy seconds), snapshotted
by :meth:`SolverService.stats`.  Responses carry the batch trace when the
request opts in.  Faults are covered for free: run the service with
``comm_backend="chaos"`` under a fault plan and every response still
either verifies or carries structured diagnostics (the driver-level
ground-truth check runs inside ``solve_batch``).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.outcome import SCHEMA_VERSION
from repro.core.session import SolveSession
from repro.obs import Tracer
from repro.service.messages import SolveRequest, SolveResponse


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`SolverService`.

    Attributes
    ----------
    max_inflight:
        Maximum batches solving concurrently in the worker executor.
    queue_limit:
        Maximum requests admitted (queued + solving) at a time; the
        surplus is rejected with ``retry_after``.
    batch_window:
        Seconds a new batch waits for coalescing partners before it
        solves.  The latency cost of throughput — keep it at or below
        the typical solve time.
    max_batch:
        Maximum requests coalesced into one block solve; an arrival that
        would exceed it flushes the batch immediately and starts a new
        one.
    coalesce:
        When False every request solves alone (the bench's control arm).
    default_timeout:
        Deadline in seconds for requests that don't carry their own;
        None disables.
    retry_after:
        Back-off hint (seconds) stamped on rejected responses.
    session_max_entries / session_max_bytes:
        Bounds of the service-owned :class:`SolveSession` cache (unused
        when a session is injected).
    executor_workers:
        Worker threads solving batches (distinct prepared systems can
        solve concurrently; same-key batches are serialized).
    """

    max_inflight: int = 4
    queue_limit: int = 64
    batch_window: float = 0.005
    max_batch: int = 16
    coalesce: bool = True
    default_timeout: float | None = 30.0
    retry_after: float = 0.05
    session_max_entries: int | None = 8
    session_max_bytes: int | None = None
    executor_workers: int = 2

    def __post_init__(self) -> None:
        """Validate eagerly, like every options surface in the repo."""
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.executor_workers < 1:
            raise ValueError("executor_workers must be >= 1")


@dataclass
class TenantStats:
    """Usage accounting for one tenant (all fields cumulative).

    ``comm_words`` and ``busy_seconds`` are the tenant's *share* of each
    batch: coalesced words divide per column exactly (a k-wide block
    solve moves k times the words of one solve in the same messages),
    and per-rank busy seconds from the batch trace divide evenly across
    the k requests that shared them.
    """

    requests: int = 0
    accepted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    timeouts: int = 0
    cancelled: int = 0
    errors: int = 0
    rhs_solved: int = 0
    iterations: int = 0
    comm_words: float = 0.0
    busy_seconds: float = 0.0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot."""
        return {
            "requests": self.requests,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "cancelled": self.cancelled,
            "errors": self.errors,
            "rhs_solved": self.rhs_solved,
            "iterations": self.iterations,
            "comm_words": self.comm_words,
            "busy_seconds": self.busy_seconds,
        }


class _Entry:
    """One admitted request waiting for (a share of) a batch solve."""

    __slots__ = ("request", "future", "t_admit", "abandoned")

    def __init__(self, request: SolveRequest, future: asyncio.Future):
        self.request = request
        self.future = future
        self.t_admit = time.perf_counter()
        self.abandoned = False  # timed out or cancelled; skip on flush


class _Batch:
    """Requests accumulating toward one coalesced block solve."""

    __slots__ = ("key", "entries", "flusher", "flushed")

    def __init__(self, key):
        self.key = key
        self.entries: list = []
        self.flusher: asyncio.Task | None = None
        self.flushed = False


class SolverService:
    """Asyncio front-end coalescing concurrent solve requests.

    Lifecycle::

        service = SolverService(ServiceConfig(max_inflight=4))
        await service.start()
        response = await service.submit(SolveRequest(mesh=2))
        await service.stop()          # drains in-flight work

    or as an async context manager (``async with SolverService() as s:``).
    All coordination state is touched from the event loop only; solves
    run in a thread pool and the session cache has its own lock.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        session: SolveSession | None = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.session = session if session is not None else SolveSession(
            max_entries=self.config.session_max_entries,
            max_bytes=self.config.session_max_bytes,
        )
        self._owns_session = session is None
        self._executor: ThreadPoolExecutor | None = None
        self._sem: asyncio.Semaphore | None = None
        self._accepting = False
        self._pending = 0
        self._batches: dict = {}
        self._key_locks: dict = {}
        self._tasks: set = set()
        self._tenants: dict = {}
        self.counters = {
            "submitted": 0,
            "accepted": 0,
            "rejected": 0,
            "completed": 0,
            "failed": 0,
            "timeouts": 0,
            "cancelled": 0,
            "errors": 0,
            "batches": 0,
            "coalesced_requests": 0,
        }
        self._batch_sizes: list = []

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> "SolverService":
        """Create the worker executor and begin admitting requests."""
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.executor_workers,
                thread_name_prefix="repro-service",
            )
        self._sem = asyncio.Semaphore(self.config.max_inflight)
        self._accepting = True
        return self

    async def stop(self) -> None:
        """Graceful drain: stop admitting, flush pending batches, wait
        for every in-flight solve, release the executor and (when owned)
        the session cache."""
        self._accepting = False
        for batch in list(self._batches.values()):
            if batch.flusher is not None:
                batch.flusher.cancel()
            self._spawn(self._flush(batch))
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._owns_session:
            self.session.close()

    async def __aenter__(self) -> "SolverService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- submission ----------------------------------------------------
    async def submit(self, request: SolveRequest) -> SolveResponse:
        """Admit one request and await its response.

        Never raises for solver- or service-level failures — every
        admitted request resolves to a :class:`SolveResponse` whose
        ``status`` tells the story.  ``asyncio.CancelledError`` from the
        *caller* propagates (after the request is withdrawn from its
        batch).
        """
        self.counters["submitted"] += 1
        tenant = self._tenant(request.tenant)
        tenant.requests += 1
        if not self._accepting:
            self.counters["rejected"] += 1
            tenant.rejected += 1
            return self._reject(request, "service is not accepting requests")
        if self._pending >= self.config.queue_limit:
            self.counters["rejected"] += 1
            tenant.rejected += 1
            return self._reject(
                request,
                f"queue full ({self.config.queue_limit} requests admitted)",
            )
        self.counters["accepted"] += 1
        tenant.accepted += 1
        self._pending += 1
        try:
            entry = _Entry(request, asyncio.get_running_loop().create_future())
            self._enqueue(entry)
            timeout = (
                request.timeout
                if request.timeout is not None
                else self.config.default_timeout
            )
            try:
                return await asyncio.wait_for(
                    asyncio.shield(entry.future), timeout
                )
            except asyncio.TimeoutError:
                entry.abandoned = True
                self.counters["timeouts"] += 1
                tenant.timeouts += 1
                return SolveResponse(
                    request_id=request.request_id,
                    tenant=request.tenant,
                    status="timeout",
                    queue_seconds=time.perf_counter() - entry.t_admit,
                    error=f"deadline of {timeout}s elapsed",
                )
            except asyncio.CancelledError:
                entry.abandoned = True
                self.counters["cancelled"] += 1
                tenant.cancelled += 1
                raise
        finally:
            self._pending -= 1

    def _reject(self, request: SolveRequest, reason: str) -> SolveResponse:
        return SolveResponse(
            request_id=request.request_id,
            tenant=request.tenant,
            status="rejected",
            retry_after=self.config.retry_after,
            error=reason,
        )

    # -- batching ------------------------------------------------------
    def _group_key(self, request: SolveRequest):
        """Requests coalesce iff they share this key: same problem, same
        rank count, same *complete* options (setup fields select the
        prepared system; solve-time fields like tol/restart must match
        too, since the batch runs one solver configuration)."""
        return (request.mesh, request.n_parts, request.options)

    def _enqueue(self, entry: _Entry) -> None:
        if not self.config.coalesce:
            batch = _Batch(self._group_key(entry.request))
            batch.entries.append(entry)
            self._spawn(self._flush(batch))
            return
        key = self._group_key(entry.request)
        batch = self._batches.get(key)
        if batch is None:
            batch = _Batch(key)
            self._batches[key] = batch
            batch.flusher = self._spawn(self._window_then_flush(batch))
        batch.entries.append(entry)
        entry.future.add_done_callback(
            lambda fut, b=batch, e=entry: self._on_entry_done(b, e)
        )
        if len(batch.entries) >= self.config.max_batch:
            if batch.flusher is not None:
                batch.flusher.cancel()
            # Detach synchronously: arrivals later in this same loop step
            # must open a fresh batch, not ride past max_batch.
            self._batches.pop(batch.key, None)
            self._spawn(self._flush(batch))

    def _on_entry_done(self, batch: _Batch, entry: _Entry) -> None:
        """Withdraw a cancelled entry from a still-pending batch so the
        eventual block solve doesn't carry dead columns."""
        if entry.future.cancelled() and not batch.flushed:
            entry.abandoned = True
            if entry in batch.entries:
                batch.entries.remove(entry)

    def _spawn(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def _window_then_flush(self, batch: _Batch) -> None:
        try:
            await asyncio.sleep(self.config.batch_window)
        except asyncio.CancelledError:
            return
        await self._flush(batch)

    async def _flush(self, batch: _Batch) -> None:
        """Run one batch through the executor and distribute responses."""
        if batch.flushed:
            return
        batch.flushed = True
        self._batches.pop(batch.key, None)
        entries = [e for e in batch.entries if not e.abandoned]
        if not entries:
            return
        key_lock = self._key_locks.setdefault(batch.key, asyncio.Lock())
        async with key_lock:
            async with self._sem:
                entries = [e for e in entries if not e.abandoned]
                if not entries:
                    return
                t_start = time.perf_counter()
                loop = asyncio.get_running_loop()
                try:
                    (
                        summary,
                        setup_time,
                        good,
                        bad,
                        invalid,
                    ) = await loop.run_in_executor(
                        self._executor, self._solve_batch_blocking, entries
                    )
                except Exception as exc:  # solver/setup raised: report, don't die
                    self._resolve_errors(entries, exc)
                    return
        for entry, message in bad:
            self._resolve_error(entry, message)
        for entry, message in invalid:
            self._resolve_failed(entry, message)
        if summary is not None:
            self._resolve_responses(good, summary, setup_time, t_start)

    # -- blocking solve (worker thread) --------------------------------
    def _solve_batch_blocking(self, entries: list):
        """Build/fetch the prepared system and run the coalesced block
        solve.  Runs in the worker executor — must not touch loop state.

        A request whose explicit ``rhs`` doesn't fit the problem is
        dropped from the batch and reported individually (``bad``,
        status ``error``), and one whose rhs holds non-finite values
        (NaN/Inf — it can never verify, and a single poisoned column
        would contaminate every coalescing partner through the shared
        Krylov basis) is dropped and reported as ``invalid`` (status
        ``failed``) — tenant isolation either way.  Returns
        ``(summary, setup_time, good, bad, invalid)`` with ``summary``
        None when no valid column remained.
        """
        req0 = entries[0].request
        misses_before = self.session.misses
        ps = self.session.prepared(req0.mesh, req0.n_parts, req0.options)
        hit = self.session.misses == misses_before
        setup_time = 0.0 if hit else ps.setup_time
        load = ps.problem.load
        good, bad, invalid, columns = [], [], [], []
        for e in entries:
            r = e.request
            if r.rhs is not None:
                col = np.asarray(r.rhs, dtype=np.float64).reshape(-1)
                if col.shape != load.shape:
                    bad.append((e, (
                        f"rhs has {col.size} entries, problem has "
                        f"{load.shape[0]} free DOFs"
                    )))
                    continue
                if not np.isfinite(col).all():
                    n_bad = int(np.count_nonzero(~np.isfinite(col)))
                    invalid.append((e, (
                        f"rhs contains {n_bad} non-finite entries "
                        "(NaN/Inf); the request cannot converge"
                    )))
                    continue
            else:
                col = r.rhs_scale * load
            good.append(e)
            columns.append(col)
        if not good:
            return None, setup_time, good, bad, invalid
        b_block = np.column_stack(columns)
        tracer = Tracer(meta={"service_batch": len(good)})
        summary = ps.solve_batch(
            b_block, req0.options, setup_time=setup_time, tracer=tracer
        )
        return summary, setup_time, good, bad, invalid

    # -- response fan-out (event loop) ---------------------------------
    def _resolve_responses(self, entries, summary, setup_time, t_start):
        k = len(entries)
        self.counters["batches"] += 1
        self.counters["coalesced_requests"] += k
        self._batch_sizes.append(k)
        stats_dict = summary.stats.to_dict()
        trace = summary.trace
        words_share = (
            stats_dict["total_nbr_words"]
            + sum(r["reduction_words"] for r in stats_dict["per_rank"])
        ) / k
        busy_share = sum(trace.get("rank_seconds", [])) / k if trace else 0.0
        for c, entry in enumerate(entries):
            req = entry.request
            result = summary.results[c]
            tenant = self._tenant(req.tenant)
            tenant.rhs_solved += 1
            tenant.iterations += result.iterations
            tenant.comm_words += words_share
            tenant.busy_seconds += busy_share
            if result.converged:
                tenant.completed += 1
                self.counters["completed"] += 1
                status = "ok"
            else:
                tenant.failed += 1
                self.counters["failed"] += 1
                status = "failed"
            response = SolveResponse(
                request_id=req.request_id,
                tenant=req.tenant,
                status=status,
                result=result.to_dict(include_x=req.include_x),
                stats=stats_dict,
                trace=trace if req.trace else None,
                converged=bool(result.converged),
                iterations=int(result.iterations),
                true_residual=float(summary.true_residuals[c]),
                coalesced=k,
                queue_seconds=t_start - entry.t_admit,
                solve_seconds=float(summary.wall_time),
                setup_time=float(setup_time),
            )
            if not entry.future.done():
                entry.future.set_result(response)

    def _resolve_failed(self, entry, message: str, coalesced: int = 0) -> None:
        """A request whose own input can never verify (non-finite rhs):
        a clear ``failed`` response, charged to the tenant's failure
        counter, without touching its coalescing partners."""
        tenant = self._tenant(entry.request.tenant)
        tenant.failed += 1
        self.counters["failed"] += 1
        if not entry.future.done():
            entry.future.set_result(
                SolveResponse(
                    request_id=entry.request.request_id,
                    tenant=entry.request.tenant,
                    status="failed",
                    converged=False,
                    coalesced=coalesced,
                    error=message,
                )
            )

    def _resolve_error(self, entry, message: str, coalesced: int = 0) -> None:
        tenant = self._tenant(entry.request.tenant)
        tenant.errors += 1
        self.counters["errors"] += 1
        if not entry.future.done():
            entry.future.set_result(
                SolveResponse(
                    request_id=entry.request.request_id,
                    tenant=entry.request.tenant,
                    status="error",
                    coalesced=coalesced,
                    error=message,
                )
            )

    def _resolve_errors(self, entries, exc: Exception) -> None:
        for entry in entries:
            self._resolve_error(
                entry, f"{type(exc).__name__}: {exc}", len(entries)
            )

    # -- accounting ----------------------------------------------------
    def _tenant(self, name: str) -> TenantStats:
        ts = self._tenants.get(name)
        if ts is None:
            ts = self._tenants[name] = TenantStats()
        return ts

    def stats(self) -> dict:
        """JSON-serializable snapshot of the whole service: request
        counters, batch-width distribution, session-cache occupancy and
        the per-tenant accounting table."""
        sizes = self._batch_sizes
        return {
            "schema_version": SCHEMA_VERSION,
            "accepting": self._accepting,
            "pending": self._pending,
            "counters": dict(self.counters),
            "mean_batch": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "max_batch_seen": max(sizes, default=0),
            "session": self.session.cache_stats(),
            "tenants": {
                name: ts.to_dict() for name, ts in sorted(self._tenants.items())
            },
            "config": {
                "max_inflight": self.config.max_inflight,
                "queue_limit": self.config.queue_limit,
                "batch_window": self.config.batch_window,
                "max_batch": self.config.max_batch,
                "coalesce": self.config.coalesce,
                "default_timeout": self.config.default_timeout,
            },
        }

