"""The frozen, versioned public API facade.

``repro.api`` is the **supported surface** of the package: everything
re-exported here follows the compatibility contract below, everything
else in ``repro.*`` is internal and may change between PRs without
notice.  Import from here (or from the package root, which re-exports
the same names) when you want stability::

    from repro.api import API_VERSION, SolverOptions, solve_cantilever

Contract
--------
* :data:`API_VERSION` names this facade's surface.  It bumps only when a
  name listed in ``__all__`` is removed or changes signature/semantics
  incompatibly; additions don't bump it.
* Every serialized artifact produced by this surface — summary
  ``to_dict()`` payloads, :class:`SolveRequest`/:class:`SolveResponse`
  messages, ``repro solve --json`` run records, golden files — carries
  ``"schema_version"`` equal to :data:`SCHEMA_VERSION`
  (:mod:`repro.core.outcome`), versioned independently of the facade.
* All solve entry points return a :class:`SolveOutcome`-conforming
  object (``result`` / ``stats`` / ``trace`` / ``to_dict()``), so
  callers never branch on the concrete summary type.

Surface map
-----------
Solving: :func:`solve_cantilever`, :func:`solve_cantilever_batch`,
:class:`SolverOptions`, :class:`PreparedSystem`, :class:`SolveSession`.
Serving: :class:`SolverService`, :class:`ServiceConfig`,
:class:`SolveRequest`, :class:`SolveResponse`, :func:`serve_jsonl`.
Results: :class:`SolveOutcome`, :class:`ParallelSolveSummary`,
:class:`BatchSolveSummary`, :class:`SolveResult`.
Preconditioners: :func:`make_preconditioner`, :func:`spec_of`,
:data:`SPEC_GRAMMAR`.  Problems: :func:`cantilever_problem`.
Observability: :class:`Tracer`.
"""

from __future__ import annotations

from repro.core.driver import ParallelSolveSummary, solve_cantilever
from repro.core.options import SolverOptions
from repro.core.outcome import SCHEMA_VERSION, SolveOutcome
from repro.core.session import (
    BatchSolveSummary,
    PreparedSystem,
    SolveSession,
    solve_cantilever_batch,
)
from repro.fem.cantilever import CantileverProblem, cantilever_problem
from repro.obs import Tracer
from repro.precond.spec import SPEC_GRAMMAR, make_preconditioner, spec_of
from repro.service import (
    ServiceConfig,
    SolveRequest,
    SolveResponse,
    SolverService,
    serve_jsonl,
)
from repro.solvers.result import SolveResult

#: Version of the frozen facade surface (bumped on incompatible change
#: to any ``__all__`` member; see the module docstring's contract).
API_VERSION = "1"

__all__ = [
    "API_VERSION",
    "SCHEMA_VERSION",
    # solving
    "solve_cantilever",
    "solve_cantilever_batch",
    "SolverOptions",
    "PreparedSystem",
    "SolveSession",
    # serving
    "SolverService",
    "ServiceConfig",
    "SolveRequest",
    "SolveResponse",
    "serve_jsonl",
    # results
    "SolveOutcome",
    "ParallelSolveSummary",
    "BatchSolveSummary",
    "SolveResult",
    # preconditioners & problems
    "make_preconditioner",
    "spec_of",
    "SPEC_GRAMMAR",
    "cantilever_problem",
    "CantileverProblem",
    # observability
    "Tracer",
]
