"""Transient driver: one preconditioned iterative solve per time step.

This reproduces the paper's "dynamic analysis" setting: the effective
matrix is fixed across steps (linear elastodynamics, constant ``dt``), so
scaling and the polynomial preconditioner are built once and every step is
an FGMRES solve against a new effective load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dynamics.newmark import NewmarkIntegrator
from repro.precond.scaling import scale_system
from repro.solvers.fgmres import fgmres


@dataclass
class TransientResult:
    """History of a transient run.

    Attributes
    ----------
    times:
        Time instants ``t_1 .. t_n`` (after each step).
    displacements:
        Solution snapshots, one row per step.
    iterations_per_step:
        FGMRES iteration count of every step's solve.
    """

    times: np.ndarray
    displacements: np.ndarray
    iterations_per_step: np.ndarray

    @property
    def total_iterations(self) -> int:
        return int(self.iterations_per_step.sum())


def run_transient(
    integrator: NewmarkIntegrator,
    load_fn,
    n_steps: int,
    u0: np.ndarray | None = None,
    v0: np.ndarray | None = None,
    precond_factory=None,
    restart: int = 25,
    tol: float = 1e-6,
) -> TransientResult:
    """March ``n_steps`` of Newmark integration.

    Parameters
    ----------
    integrator:
        The configured :class:`NewmarkIntegrator`.
    load_fn:
        Callable ``t -> f(t)`` giving the reduced external load.
    u0, v0:
        Initial displacement/velocity (zero when None).
    precond_factory:
        Callable ``(scaled_matvec) -> precond_apply`` building the
        preconditioner for the *scaled* effective system once; None
        disables preconditioning.
    """
    if n_steps < 1:
        raise ValueError("need at least one step")
    n = integrator.k.shape[0]
    u = np.zeros(n) if u0 is None else np.array(u0, dtype=np.float64)
    v = np.zeros(n) if v0 is None else np.array(v0, dtype=np.float64)
    a = integrator.initial_acceleration(u, v, load_fn(0.0))

    k_eff = integrator.system_matrix()
    scaled = scale_system(k_eff, np.zeros(n))
    matvec = scaled.a.matvec
    precond = None
    if precond_factory is not None:
        precond = precond_factory(matvec)

    times = np.empty(n_steps)
    snaps = np.empty((n_steps, n))
    iters = np.empty(n_steps, dtype=np.int64)
    t = 0.0
    for step in range(n_steps):
        t += integrator.dt
        f_hat = integrator.effective_load(load_fn(t), u, v, a)
        b = scaled.d * f_hat
        x0 = scaled.scale_initial_guess(u)  # warm start from last step
        res = fgmres(
            matvec, b, precond, x0=x0, restart=restart, tol=tol
        )
        if not res.converged:
            raise RuntimeError(f"step {step} failed to converge")
        u_next = scaled.unscale_solution(res.x)
        v, a = integrator.advance(u, v, a, u_next)
        u = u_next
        times[step] = t
        snaps[step] = u
        iters[step] = res.iterations
    return TransientResult(times, snaps, iters)
