"""Newmark time integration (the paper's "generalized integration
operators" family, Eq. 52).

The average-acceleration member (:math:`\\gamma = 1/2,\\ \\beta_N = 1/4`)
is unconditionally stable and is the default.  Each step solves

.. math:: \\bar K\\, u_{n+1} = \\hat f_{n+1},\\qquad
          \\bar K = a_0 M + K,

i.e. Eq. 52 with :math:`\\alpha = a_0 = 1/(\\beta_N \\Delta t^2)` and
:math:`\\beta = 1` — the effective matrix the dynamic experiments
precondition and solve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def effective_matrix(
    k: CSRMatrix, m: CSRMatrix, alpha: float, beta: float = 1.0
) -> CSRMatrix:
    """:math:`\\bar K = \\alpha M + \\beta K` (Eq. 52) via COO concatenation."""
    if k.shape != m.shape:
        raise ValueError("stiffness and mass shapes differ")
    kc = k.tocoo()
    mc = m.tocoo()
    return COOMatrix(
        kc.shape,
        np.concatenate([kc.rows, mc.rows]),
        np.concatenate([kc.cols, mc.cols]),
        np.concatenate([beta * kc.data, alpha * mc.data]),
    ).tocsr()


@dataclass
class NewmarkIntegrator:
    """Newmark-:math:`\\beta` integrator for :math:`M\\ddot u + K u = f(t)`.

    Parameters
    ----------
    k, m:
        Reduced stiffness and mass matrices.
    dt:
        Time step.
    gamma, beta_n:
        Newmark parameters; the (1/2, 1/4) default is the unconditionally
        stable average-acceleration rule.
    """

    k: CSRMatrix
    m: CSRMatrix
    dt: float
    gamma: float = 0.5
    beta_n: float = 0.25

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ValueError("time step must be positive")
        if self.beta_n <= 0:
            raise ValueError("beta_n must be positive (implicit scheme)")
        dt, bn = self.dt, self.beta_n
        self.a0 = 1.0 / (bn * dt * dt)
        self.a1 = 1.0 / (bn * dt)
        self.a2 = 1.0 / (2.0 * bn) - 1.0
        self.a3 = dt * (1.0 - self.gamma)
        self.a4 = dt * self.gamma

    @property
    def alpha(self) -> float:
        """The mass coefficient of Eq. 52's effective matrix."""
        return self.a0

    def system_matrix(self) -> CSRMatrix:
        """The effective matrix :math:`\\bar K = a_0 M + K`."""
        return effective_matrix(self.k, self.m, self.a0)

    def effective_load(
        self, f_next: np.ndarray, u: np.ndarray, v: np.ndarray, a: np.ndarray
    ) -> np.ndarray:
        """:math:`\\hat f_{n+1} = f_{n+1} + M(a_0 u + a_1 v + a_2 a)`."""
        return f_next + self.m.matvec(self.a0 * u + self.a1 * v + self.a2 * a)

    def advance(self, u, v, a, u_next):
        """Update velocity/acceleration from the solved displacement."""
        a_next = self.a0 * (u_next - u) - self.a1 * v - self.a2 * a
        v_next = v + self.a3 * a + self.a4 * a_next
        return v_next, a_next

    def initial_acceleration(self, u0, v0, f0, tol: float = 1e-10):
        """Consistent :math:`a_0 = M^{-1}(f_0 - K u_0)` via CG on the SPD
        mass matrix (no factorization substrate needed)."""
        from repro.solvers.cg import cg

        rhs = f0 - self.k.matvec(u0)
        res = cg(self.m.matvec, rhs, tol=tol, max_iter=10 * len(rhs))
        if not res.converged:
            raise RuntimeError("mass solve for initial acceleration failed")
        return res.x
