"""Elastodynamics substrate (Section 6.1, Eqs. 51-52).

Newmark-family time integration turns the semi-discrete system
:math:`M\\ddot u + Ku = f` into one linear solve per step with the
effective matrix :math:`\\bar K = \\alpha M + \\beta K`; the transient
driver re-solves it each step with any of the package's solvers, which is
the paper's "dynamic analysis" workload (Figs. 12 and 14).
"""

from repro.dynamics.newmark import NewmarkIntegrator, effective_matrix
from repro.dynamics.transient import TransientResult, run_transient
from repro.dynamics.parallel_transient import (
    ParallelTransientResult,
    run_parallel_transient,
)
from repro.dynamics.modal import ModalResult, lowest_modes

__all__ = [
    "NewmarkIntegrator",
    "effective_matrix",
    "TransientResult",
    "run_transient",
    "ParallelTransientResult",
    "run_parallel_transient",
    "ModalResult",
    "lowest_modes",
]
