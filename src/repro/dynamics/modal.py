"""Modal analysis: lowest natural frequencies and mode shapes.

Solves the generalized eigenproblem :math:`K\\phi = \\omega^2 M\\phi` for
the smallest eigenpairs by inverse (shift-invert at zero) Lanczos on the
M-inner-product, with each inverse application performed by the package's
own preconditioned CG — no external eigensolver, consistent with the
from-scratch substrate.  Natural frequencies set the stable/accurate
time-step choice for the Newmark runs, and mode shapes give the classic
structural-dynamics verification (cantilever beam frequencies).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.precond.gls import GLSPolynomial
from repro.precond.scaling import norm1_scaling
from repro.solvers.cg import cg
from repro.sparse.csr import CSRMatrix


@dataclass(frozen=True)
class ModalResult:
    """Lowest eigenpairs of ``(K, M)``.

    Attributes
    ----------
    omega:
        Natural angular frequencies, ascending.
    modes:
        Mass-orthonormal mode shapes, one column per frequency.
    """

    omega: np.ndarray
    modes: np.ndarray

    @property
    def frequencies_hz(self) -> np.ndarray:
        """Frequencies in Hz."""
        return self.omega / (2.0 * np.pi)


def lowest_modes(
    k: CSRMatrix,
    m: CSRMatrix,
    n_modes: int = 4,
    n_lanczos: int | None = None,
    tol: float = 1e-10,
    seed: int = 0,
) -> ModalResult:
    """Compute the ``n_modes`` lowest eigenpairs of ``K phi = w^2 M phi``.

    Inverse Lanczos: builds an M-orthonormal Krylov basis of
    :math:`K^{-1}M`, whose largest Ritz values are the reciprocals of the
    smallest :math:`\\omega^2`.  Inner solves use GLS-preconditioned CG on
    the norm-1-scaled stiffness.
    """
    n = k.shape[0]
    if k.shape != m.shape or k.shape[0] != k.shape[1]:
        raise ValueError("K and M must be square with equal shape")
    if not 1 <= n_modes < n:
        raise ValueError("need 1 <= n_modes < n")
    if n_lanczos is None:
        n_lanczos = min(max(4 * n_modes, 20), n)

    d = norm1_scaling(k)
    a = k.scale_rows(d).scale_cols(d)
    g = GLSPolynomial.unit_interval(7, eps=1e-8)
    precond = lambda v: g.apply_linear(a.matvec, v)  # noqa: E731

    def solve_k(rhs: np.ndarray) -> np.ndarray:
        res = cg(a.matvec, d * rhs, precond, tol=tol, max_iter=50 * n)
        if not res.converged:
            raise RuntimeError("inner stiffness solve failed to converge")
        return d * res.x

    rng = np.random.default_rng(seed)
    q = rng.standard_normal(n)
    mq = m.matvec(q)
    q /= np.sqrt(q @ mq)
    basis = [q]
    alphas, betas = [], []
    q_prev = np.zeros(n)
    beta = 0.0
    for _ in range(n_lanczos):
        w = solve_k(m.matvec(basis[-1]))
        alpha = float(basis[-1] @ m.matvec(w))
        w = w - alpha * basis[-1] - beta * q_prev
        # Full M-reorthogonalization for clean Ritz values.
        for b in basis:
            w -= (b @ m.matvec(w)) * b
        mw = m.matvec(w)
        beta = float(np.sqrt(max(w @ mw, 0.0)))
        alphas.append(alpha)
        if beta < 1e-13:
            break
        betas.append(beta)
        q_prev = basis[-1]
        basis.append(w / beta)

    kk = len(alphas)
    t = np.diag(alphas)
    if betas:
        off = np.array(betas[: kk - 1])
        t[np.arange(kk - 1), np.arange(1, kk)] = off
        t[np.arange(1, kk), np.arange(kk - 1)] = off
    theta, s = np.linalg.eigh(t)
    # Largest Ritz values of K^{-1}M -> smallest omega^2 = 1/theta.
    order = np.argsort(theta)[::-1][:n_modes]
    omegas = 1.0 / np.sqrt(theta[order])
    v = np.column_stack(basis[:kk])
    modes = v @ s[:, order]
    # Mass-normalize (and fix sign for determinism).
    for j in range(modes.shape[1]):
        phi = modes[:, j]
        phi /= np.sqrt(phi @ m.matvec(phi))
        if phi[np.argmax(np.abs(phi))] < 0:
            phi = -phi
        modes[:, j] = phi
    idx = np.argsort(omegas)
    return ModalResult(omega=omegas[idx], modes=modes[:, idx])
