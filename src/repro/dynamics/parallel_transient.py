"""Distributed transient driver: Newmark stepping on the EDD solver.

The paper's dynamic results (Figs. 12, 14, 16) run the parallel solver on
the effective system of Eq. 52 — the decomposition, scaling and polynomial
preconditioner are built *once* (the effective matrix is constant for
linear elastodynamics at fixed ``dt``), and every step is an EDD-FGMRES
solve against a new effective load.  Communication accumulates in the
system's counters across the whole simulation, which is what the dynamic
speedup study measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distributed import build_edd_system
from repro.core.edd import edd_fgmres
from repro.dynamics.newmark import NewmarkIntegrator
from repro.fem.bc import DirichletBC
from repro.fem.material import Material
from repro.fem.mesh import Mesh
from repro.partition.element_partition import ElementPartition


@dataclass
class ParallelTransientResult:
    """History of a distributed transient run.

    Attributes
    ----------
    times:
        Time instants after each step.
    displacements:
        One solution row per step (global free-DOF vectors).
    iterations_per_step:
        EDD-FGMRES iterations of each step's solve.
    stats:
        Accumulated per-rank counters over all steps.
    """

    times: np.ndarray
    displacements: np.ndarray
    iterations_per_step: np.ndarray
    stats: object

    @property
    def total_iterations(self) -> int:
        """Sum of per-step iteration counts."""
        return int(self.iterations_per_step.sum())


def run_parallel_transient(
    mesh: Mesh,
    material: Material,
    bc: DirichletBC,
    integrator: NewmarkIntegrator,
    load_fn,
    n_steps: int,
    n_parts: int = 4,
    precond=None,
    restart: int = 25,
    tol: float = 1e-6,
    partition_method: str = "rcb",
) -> ParallelTransientResult:
    """March ``n_steps`` of Newmark integration with distributed solves.

    ``integrator`` supplies the Newmark coefficients and the (sequential)
    mass/stiffness for the update equations; the per-step linear systems
    are solved by EDD-FGMRES on the effective matrix
    :math:`a_0 M + K` assembled subdomain-wise.  ``load_fn(t)`` returns
    the reduced external load.
    """
    if n_steps < 1:
        raise ValueError("need at least one step")
    part = ElementPartition.build(mesh, n_parts, partition_method)
    system = build_edd_system(
        mesh,
        material,
        bc,
        part,
        np.zeros(mesh.n_dofs),
        mass_shift=(integrator.a0, 1.0),
    )

    n = integrator.k.shape[0]
    u = np.zeros(n)
    v = np.zeros(n)
    a = integrator.initial_acceleration(u, v, load_fn(0.0))

    times = np.empty(n_steps)
    snaps = np.empty((n_steps, n))
    iters = np.empty(n_steps, dtype=np.int64)
    t = 0.0
    for step in range(n_steps):
        t += integrator.dt
        f_hat = integrator.effective_load(load_fn(t), u, v, a)
        # Refresh the scaled local-distributed rhs in place: the system
        # was built with a zero rhs and reuses its scaling each step.
        from repro.core.distributed import _ownership_split

        b_parts = _ownership_split(system.submap, f_hat)
        system.b_local = [
            d * p for d, p in zip(system.d_parts, b_parts)
        ]
        res = edd_fgmres(
            system, precond, restart=restart, tol=tol
        )
        if not res.converged:
            raise RuntimeError(f"step {step} failed to converge")
        u_next = res.x
        v, a = integrator.advance(u, v, a, u_next)
        u = u_next
        times[step] = t
        snaps[step] = u
        iters[step] = res.iterations
    return ParallelTransientResult(
        times=times,
        displacements=snaps,
        iterations_per_step=iters,
        stats=system.comm.stats,
    )
