"""Domain-decomposition substrate.

Provides the two partitionings the paper compares:

* **Element-based (EDD)** — every finite element is assigned to exactly one
  subdomain; interface *nodes* are shared (Section 3).  Produces the
  local-distributed matrices :math:`\\hat K^{(s)}` that are never assembled
  across interfaces.
* **Node/row-based (RDD)** — every node (hence every matrix row) is owned by
  exactly one subdomain (Section 4); matvecs require halo exchanges of
  external interface DOFs.

Partitioners: recursive coordinate bisection (RCB) over element centroids /
node coordinates, and greedy graph growing over the element dual graph.
"""

from repro.partition.dual_graph import element_dual_graph, node_graph
from repro.partition.rcb import recursive_coordinate_bisection
from repro.partition.greedy import greedy_graph_partition
from repro.partition.spectral import spectral_bisection_partition
from repro.partition.element_partition import ElementPartition
from repro.partition.node_partition import NodePartition
from repro.partition.interface import SubdomainMap, build_subdomain_map
from repro.partition.metrics import PartitionMetrics, edge_cut, partition_metrics

__all__ = [
    "element_dual_graph",
    "node_graph",
    "recursive_coordinate_bisection",
    "greedy_graph_partition",
    "spectral_bisection_partition",
    "ElementPartition",
    "NodePartition",
    "SubdomainMap",
    "build_subdomain_map",
    "PartitionMetrics",
    "partition_metrics",
    "edge_cut",
]
