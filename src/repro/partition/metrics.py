"""Partition quality metrics.

The communication volume of the distributed solvers is governed by the
partition: the number of shared/halo DOFs (words per exchange), the number
of neighbouring pairs (messages per exchange) and the load balance.  These
metrics quantify what the partitioner ablation bench compares.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.partition.interface import SubdomainMap


@dataclass(frozen=True)
class PartitionMetrics:
    """Summary statistics of a subdomain map.

    Attributes
    ----------
    n_parts:
        Subdomain count.
    imbalance:
        max over mean local DOF count (1.0 = perfect).
    interface_fraction:
        Fraction of global DOFs with multiplicity >= 2.
    total_shared_words:
        Sum over ranks of words sent in one interface assembly.
    max_neighbors:
        Largest neighbour count of any rank.
    avg_neighbors:
        Mean neighbour count.
    """

    n_parts: int
    imbalance: float
    interface_fraction: float
    total_shared_words: int
    max_neighbors: int
    avg_neighbors: float


def partition_metrics(submap: SubdomainMap) -> PartitionMetrics:
    """Compute :class:`PartitionMetrics` for a subdomain map."""
    sizes = submap.local_sizes.astype(float)
    neighbor_counts = [len(submap.shared[s]) for s in range(submap.n_parts)]
    return PartitionMetrics(
        n_parts=submap.n_parts,
        imbalance=float(sizes.max() / sizes.mean()),
        interface_fraction=float(
            np.count_nonzero(submap.multiplicity >= 2) / submap.n_global
        ),
        total_shared_words=int(
            sum(submap.exchange_words(s) for s in range(submap.n_parts))
        ),
        max_neighbors=max(neighbor_counts) if neighbor_counts else 0,
        avg_neighbors=float(np.mean(neighbor_counts)) if neighbor_counts else 0.0,
    )


def edge_cut(parts: np.ndarray, graph) -> int:
    """Number of graph edges crossing between parts (classic partition
    quality measure; ``graph`` is a networkx graph on ``0..n-1``)."""
    parts = np.asarray(parts)
    return sum(1 for u, v in graph.edges if parts[u] != parts[v])
