"""Recursive coordinate bisection (RCB).

The workhorse partitioner for the structured cantilever meshes: split the
point set (element centroids for EDD, node coordinates for RDD) along its
longest extent into balanced halves, recursing until the requested number
of parts is reached.  Non-power-of-two part counts are supported by
splitting proportionally.
"""

from __future__ import annotations

import numpy as np


def recursive_coordinate_bisection(points: np.ndarray, n_parts: int) -> np.ndarray:
    """Partition ``points`` (shape ``(n, d)``) into ``n_parts`` balanced parts.

    Returns an integer array mapping each point to a part in
    ``0..n_parts-1``.  Part sizes differ by at most one point per recursion
    level.  Ties along the split axis are broken by index order, keeping the
    result deterministic.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = len(points)
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    if n_parts > n:
        raise ValueError("more parts than points")
    parts = np.zeros(n, dtype=np.int64)
    _bisect(points, np.arange(n), 0, n_parts, parts)
    return parts


def _bisect(points, idx, first_part, n_parts, out) -> None:
    if n_parts == 1:
        out[idx] = first_part
        return
    left_parts = n_parts // 2
    # Proportional split so odd part counts stay balanced.
    n_left = int(round(len(idx) * left_parts / n_parts))
    n_left = min(max(n_left, left_parts), len(idx) - (n_parts - left_parts))
    sub = points[idx]
    extents = sub.max(axis=0) - sub.min(axis=0)
    axis = int(np.argmax(extents))
    order = np.lexsort((idx, sub[:, axis]))
    left = idx[order[:n_left]]
    right = idx[order[n_left:]]
    _bisect(points, left, first_part, left_parts, out)
    _bisect(points, right, first_part + left_parts, n_parts - left_parts, out)
