"""Element-based (EDD) partition of a mesh."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.mesh import Mesh
from repro.partition.dual_graph import element_dual_graph, interface_nodes
from repro.partition.greedy import greedy_graph_partition
from repro.partition.rcb import recursive_coordinate_bisection


@dataclass
class ElementPartition:
    """Assignment of every element to exactly one subdomain.

    Attributes
    ----------
    mesh:
        The partitioned mesh.
    parts:
        ``(n_elements,)`` part index per element.
    n_parts:
        Number of subdomains ``P``.
    """

    mesh: Mesh
    parts: np.ndarray
    n_parts: int

    def __post_init__(self) -> None:
        self.parts = np.asarray(self.parts, dtype=np.int64)
        if len(self.parts) != self.mesh.n_elements:
            raise ValueError("one part index per element required")
        if len(self.parts) and (
            self.parts.min() < 0 or self.parts.max() >= self.n_parts
        ):
            raise ValueError("part index out of range")

    @classmethod
    def build(
        cls, mesh: Mesh, n_parts: int, method: str = "rcb"
    ) -> "ElementPartition":
        """Partition with ``method`` in ``{"rcb", "greedy", "spectral"}``."""
        if method == "rcb":
            parts = recursive_coordinate_bisection(
                mesh.element_centroids(), n_parts
            )
        elif method == "greedy":
            parts = greedy_graph_partition(element_dual_graph(mesh), n_parts)
        elif method == "spectral":
            from repro.partition.spectral import spectral_bisection_partition

            parts = spectral_bisection_partition(element_dual_graph(mesh), n_parts)
        else:
            raise ValueError(f"unknown partition method {method!r}")
        return cls(mesh, parts, n_parts)

    def subdomain_elements(self, s: int) -> np.ndarray:
        """Element indices of subdomain ``s``."""
        return np.flatnonzero(self.parts == s)

    def sizes(self) -> np.ndarray:
        """Elements per subdomain."""
        return np.bincount(self.parts, minlength=self.n_parts)

    def interface_nodes(self) -> np.ndarray:
        """Nodes shared by elements of more than one subdomain."""
        return interface_nodes(self.mesh, self.parts)

    def imbalance(self) -> float:
        """max part size over mean part size (1.0 = perfectly balanced)."""
        sizes = self.sizes()
        return float(sizes.max() / sizes.mean())
