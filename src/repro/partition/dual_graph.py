"""Mesh connectivity graphs used by the partitioners.

The *element dual graph* connects elements sharing an edge (two or more
nodes); it is what element-based partitioners balance.  The *node graph*
connects nodes appearing in a common element; it is the adjacency graph
:math:`G(K)` of the assembled matrix and what row-based partitioners use.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.fem.mesh import Mesh


def element_dual_graph(mesh: Mesh, min_shared: int = 2) -> nx.Graph:
    """Graph on elements; edge when two elements share >= ``min_shared`` nodes.

    For 1-D truss chains ``min_shared`` of 2 never triggers, so it is
    lowered to 1 automatically for 2-node elements.
    """
    if mesh.elements.shape[1] == 2:
        min_shared = 1
    node_to_elements: dict[int, list[int]] = {}
    for e, conn in enumerate(mesh.elements):
        for n in conn:
            node_to_elements.setdefault(int(n), []).append(e)
    shared: dict[tuple, int] = {}
    for elems in node_to_elements.values():
        for i in range(len(elems)):
            for j in range(i + 1, len(elems)):
                key = (elems[i], elems[j])
                shared[key] = shared.get(key, 0) + 1
    g = nx.Graph()
    g.add_nodes_from(range(mesh.n_elements))
    g.add_edges_from(pair for pair, c in shared.items() if c >= min_shared)
    return g


def node_graph(mesh: Mesh) -> nx.Graph:
    """Graph on nodes; edge when two nodes share an element.

    This is the adjacency structure of the assembled stiffness matrix
    (collapsed over the per-node DOF block).
    """
    g = nx.Graph()
    g.add_nodes_from(range(mesh.n_nodes))
    npe = mesh.elements.shape[1]
    for conn in mesh.elements:
        for i in range(npe):
            for j in range(i + 1, npe):
                g.add_edge(int(conn[i]), int(conn[j]))
    return g


def interface_nodes(mesh: Mesh, element_parts: np.ndarray) -> np.ndarray:
    """Nodes shared by elements of more than one subdomain."""
    element_parts = np.asarray(element_parts)
    n_parts_per_node = {}
    for e, conn in enumerate(mesh.elements):
        p = int(element_parts[e])
        for n in conn:
            n_parts_per_node.setdefault(int(n), set()).add(p)
    return np.array(
        sorted(n for n, parts in n_parts_per_node.items() if len(parts) > 1),
        dtype=np.int64,
    )
