"""Node-based (row/RDD) partition of a mesh."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.mesh import Mesh
from repro.partition.dual_graph import node_graph
from repro.partition.greedy import greedy_graph_partition
from repro.partition.rcb import recursive_coordinate_bisection


@dataclass
class NodePartition:
    """Assignment of every node (hence every matrix row block) to one rank.

    Attributes
    ----------
    mesh:
        The partitioned mesh.
    parts:
        ``(n_nodes,)`` part index per node.
    n_parts:
        Number of ranks ``P``.
    """

    mesh: Mesh
    parts: np.ndarray
    n_parts: int

    def __post_init__(self) -> None:
        self.parts = np.asarray(self.parts, dtype=np.int64)
        if len(self.parts) != self.mesh.n_nodes:
            raise ValueError("one part index per node required")
        if len(self.parts) and (
            self.parts.min() < 0 or self.parts.max() >= self.n_parts
        ):
            raise ValueError("part index out of range")

    @classmethod
    def build(
        cls, mesh: Mesh, n_parts: int, method: str = "rcb"
    ) -> "NodePartition":
        """Partition with ``method`` in ``{"rcb", "greedy", "spectral"}``."""
        if method == "rcb":
            parts = recursive_coordinate_bisection(mesh.coords, n_parts)
        elif method == "greedy":
            parts = greedy_graph_partition(node_graph(mesh), n_parts)
        elif method == "spectral":
            from repro.partition.spectral import spectral_bisection_partition

            parts = spectral_bisection_partition(node_graph(mesh), n_parts)
        else:
            raise ValueError(f"unknown partition method {method!r}")
        return cls(mesh, parts, n_parts)

    def dof_parts(self) -> np.ndarray:
        """Part index per *DOF* (each node's DOFs inherit its part)."""
        return np.repeat(self.parts, self.mesh.dofs_per_node)

    def subdomain_nodes(self, s: int) -> np.ndarray:
        """Node indices owned by rank ``s``."""
        return np.flatnonzero(self.parts == s)

    def sizes(self) -> np.ndarray:
        """Nodes per rank."""
        return np.bincount(self.parts, minlength=self.n_parts)

    def duplicated_elements(self) -> np.ndarray:
        """Count of element *copies* each rank would hold under the paper's
        Fig. 8 scheme (every element touching an owned node is replicated).

        Returns a per-rank array; the excess over ``mesh.n_elements`` summed
        over ranks is the redundant storage/computation RDD pays to avoid
        assembling interface contributions through communication.
        """
        counts = np.zeros(self.n_parts, dtype=np.int64)
        for conn in self.mesh.elements:
            owners = np.unique(self.parts[conn])
            counts[owners] += 1
        return counts
