"""Greedy graph-growing partitioner.

A Farhat-style greedy partitioner over an adjacency graph: grow each part
by breadth-first accretion from a seed on the current boundary until it
reaches its size quota, then seed the next part.  Used as the graph-based
alternative to RCB for unstructured meshes (the paper cites generic "graph
methods" for its partitioning step).
"""

from __future__ import annotations

import networkx as nx
import numpy as np


def greedy_graph_partition(graph: nx.Graph, n_parts: int) -> np.ndarray:
    """Partition graph vertices ``0..n-1`` into ``n_parts`` contiguous parts.

    Vertices must be integers ``0..n-1``.  Each part is grown by BFS from
    the lowest-index unassigned vertex adjacent to the previous part (or
    the global lowest for the first).  Disconnected leftovers are swept
    into the last part, so sizes are balanced only when the graph is
    connected — which holds for every mesh in the paper.
    """
    n = graph.number_of_nodes()
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    if n_parts > n:
        raise ValueError("more parts than vertices")
    if set(graph.nodes) != set(range(n)):
        raise ValueError("graph vertices must be 0..n-1")
    parts = np.full(n, -1, dtype=np.int64)
    quota = [n // n_parts + (1 if i < n % n_parts else 0) for i in range(n_parts)]
    frontier_seed = 0
    for p in range(n_parts):
        seed = _pick_seed(graph, parts, frontier_seed)
        if seed is None:
            break
        size = 0
        queue = [seed]
        seen = {seed}
        while queue and size < quota[p]:
            v = queue.pop(0)
            if parts[v] != -1:
                continue
            parts[v] = p
            size += 1
            for w in sorted(graph.neighbors(v)):
                if parts[w] == -1 and w not in seen:
                    seen.add(w)
                    queue.append(w)
        frontier_seed = seed
    # Disconnected leftovers (cannot happen on mesh graphs, but stay safe).
    parts[parts == -1] = n_parts - 1
    return parts


def _pick_seed(graph, parts, previous_seed):
    unassigned = np.flatnonzero(parts == -1)
    if len(unassigned) == 0:
        return None
    # Prefer an unassigned vertex adjacent to an assigned one (keeps parts
    # adjacent, shortening interfaces); fall back to lowest index.
    boundary = [
        int(v)
        for v in unassigned
        if any(parts[w] != -1 for w in graph.neighbors(int(v)))
    ]
    if boundary:
        return min(boundary)
    return int(unassigned[0])
