"""Recursive spectral bisection.

The third partitioner family the paper's "specific graph methods"
reference covers: split by the sign structure of the Fiedler vector (the
eigenvector of the graph Laplacian's second-smallest eigenvalue), recurse.
Produces high-quality cuts on irregular graphs at higher cost than RCB or
greedy growing; the partitioner ablation compares all three.
"""

from __future__ import annotations

import networkx as nx
import numpy as np


def spectral_bisection_partition(graph: nx.Graph, n_parts: int) -> np.ndarray:
    """Partition graph vertices ``0..n-1`` into ``n_parts`` parts by
    recursive Fiedler-vector bisection (median split keeps sizes balanced).

    ``n_parts`` need not be a power of two: splits are sized
    proportionally, like the RCB implementation.
    """
    n = graph.number_of_nodes()
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    if n_parts > n:
        raise ValueError("more parts than vertices")
    if set(graph.nodes) != set(range(n)):
        raise ValueError("graph vertices must be 0..n-1")
    parts = np.zeros(n, dtype=np.int64)
    _bisect(graph, np.arange(n), 0, n_parts, parts)
    return parts


def _fiedler_order(graph: nx.Graph, vertices: np.ndarray) -> np.ndarray:
    """Vertices sorted by their Fiedler-vector value (ties by index)."""
    sub = graph.subgraph(vertices.tolist())
    if sub.number_of_edges() == 0 or not nx.is_connected(sub):
        # Disconnected piece: fall back to index order (deterministic).
        return np.sort(vertices)
    fiedler = nx.fiedler_vector(sub, seed=0, method="tracemin_lu")
    nodes = np.fromiter(sub.nodes, dtype=np.int64)
    values = np.asarray(fiedler)
    order = np.lexsort((nodes, values))
    return nodes[order]


def _bisect(graph, vertices, first_part, n_parts, out) -> None:
    if n_parts == 1:
        out[vertices] = first_part
        return
    left_parts = n_parts // 2
    n_left = int(round(len(vertices) * left_parts / n_parts))
    n_left = min(max(n_left, left_parts), len(vertices) - (n_parts - left_parts))
    ordered = _fiedler_order(graph, vertices)
    _bisect(graph, ordered[:n_left], first_part, left_parts, out)
    _bisect(
        graph, ordered[n_left:], first_part + left_parts, n_parts - left_parts, out
    )
