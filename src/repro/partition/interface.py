"""Subdomain DOF maps and interface exchange plans for EDD.

``SubdomainMap`` realises the Boolean gather/scatter operators
:math:`B_s` of Eq. 26 on the *reduced* (free-DOF) system: ``l2g[s]`` lists
the global free DOFs of subdomain ``s`` so that :math:`\\hat u^{(s)} = B_s u
= u[\\mathrm{l2g}[s]]`.  The interface-assembly operation
:math:`\\oplus\\sum_{\\partial\\Omega_s}` (Eq. 28) needs, per neighbouring
pair, the DOFs they share — precomputed here as the *exchange plan* that
the virtual communicator charges messages against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fem.assembly import element_dof_map
from repro.fem.bc import DirichletBC
from repro.fem.mesh import Mesh
from repro.partition.element_partition import ElementPartition


@dataclass
class SubdomainMap:
    """DOF ownership/sharing structure of an element-based decomposition.

    Attributes
    ----------
    n_global:
        Number of global free DOFs (``nEqn``).
    n_parts:
        Number of subdomains.
    l2g:
        Per subdomain, the sorted global free-DOF indices it touches.
    multiplicity:
        Per global free DOF, the number of subdomains sharing it (1 for
        interior DOFs, >= 2 on the interface).
    shared:
        ``shared[s][t]`` is the array of *local* indices (positions in
        ``l2g[s]``) of DOFs also present in subdomain ``t``; defined for
        neighbouring pairs only.
    """

    n_global: int
    n_parts: int
    l2g: list
    multiplicity: np.ndarray
    shared: list

    @property
    def local_sizes(self) -> np.ndarray:
        """Local DOF count per subdomain."""
        return np.array([len(g) for g in self.l2g])

    def neighbors(self, s: int) -> list:
        """Subdomain indices sharing at least one DOF with ``s``."""
        return sorted(self.shared[s].keys())

    def interface_dofs(self) -> np.ndarray:
        """Global free DOFs with multiplicity >= 2."""
        return np.flatnonzero(self.multiplicity >= 2)

    def exchange_words(self, s: int) -> int:
        """Total words subdomain ``s`` sends in one interface assembly."""
        return int(sum(len(v) for v in self.shared[s].values()))

    def restrict(self, x: np.ndarray) -> list:
        """Global vector -> global-distributed parts (Definition 2)."""
        if x.shape != (self.n_global,):
            raise ValueError("global vector has wrong length")
        return [x[g] for g in self.l2g]

    def assemble(self, parts: list) -> np.ndarray:
        """Local-distributed parts -> true global vector,
        :math:`u = \\sum_s B_s^T \\tilde u^{(s)}` (Eq. 26)."""
        out = np.zeros(self.n_global)
        for g, p in zip(self.l2g, parts):
            np.add.at(out, g, p)
        return out


def build_subdomain_map(
    mesh: Mesh, partition: ElementPartition, bc: DirichletBC
) -> SubdomainMap:
    """Build the :class:`SubdomainMap` of a partition on the reduced system."""
    full_to_free = bc.full_to_free()
    dof_map = element_dof_map(mesh)
    p = partition.n_parts
    l2g = []
    for s in range(p):
        elems = partition.subdomain_elements(s)
        dofs = np.unique(dof_map[elems].ravel())
        free = full_to_free[dofs]
        l2g.append(np.sort(free[free >= 0]))

    multiplicity = np.zeros(bc.n_free, dtype=np.int64)
    for g in l2g:
        multiplicity[g] += 1
    if np.any(multiplicity == 0):
        raise ValueError("partition leaves some free DOFs uncovered")

    # Global -> local position lookup per subdomain, then pairwise overlaps.
    g2l = []
    for g in l2g:
        lut = np.full(bc.n_free, -1, dtype=np.int64)
        lut[g] = np.arange(len(g))
        g2l.append(lut)

    shared: list = [dict() for _ in range(p)]
    iface = np.flatnonzero(multiplicity >= 2)
    owners: dict = {int(d): [] for d in iface}
    for s in range(p):
        hit = l2g[s][multiplicity[l2g[s]] >= 2]
        for d in hit:
            owners[int(d)].append(s)
    pair_dofs: dict = {}
    for d, subs in owners.items():
        for i in range(len(subs)):
            for j in range(len(subs)):
                if i != j:
                    pair_dofs.setdefault((subs[i], subs[j]), []).append(d)
    for (s, t), dofs in pair_dofs.items():
        dofs = np.array(sorted(dofs), dtype=np.int64)
        shared[s][t] = g2l[s][dofs]

    return SubdomainMap(
        n_global=bc.n_free,
        n_parts=p,
        l2g=l2g,
        multiplicity=multiplicity,
        shared=shared,
    )
