"""Global assembly of element matrices into COO/CSR.

Also provides per-element matrix computation with congruence caching:
structured meshes contain a single repeated element geometry, so the 8x8
integration runs once instead of once per element — the classic trick that
keeps pure-Python assembly viable at the Table 2 mesh sizes.
"""

from __future__ import annotations

import numpy as np

from repro.fem.elements import (
    q4_mass,
    q4_stiffness,
    t3_mass,
    t3_stiffness,
    truss_stiffness,
)
from repro.fem.material import Material
from repro.fem.mesh import Mesh
from repro.sparse.coo import COOMatrix

def _h8_funcs():
    # Imported lazily to avoid a circular import (three_d uses assembly).
    from repro.fem.three_d import h8_mass, h8_stiffness

    return {("h8", "stiffness"): h8_stiffness, ("h8", "mass"): h8_mass}


_KIND_FUNCS = {
    ("q4", "stiffness"): q4_stiffness,
    ("q4", "mass"): q4_mass,
    ("t3", "stiffness"): t3_stiffness,
    ("t3", "mass"): t3_mass,
}


def element_dof_map(mesh: Mesh) -> np.ndarray:
    """``(n_elements, nodes_per_el * dofs_per_node)`` global DOF indices.

    DOF numbering interleaves components per node: node ``n`` owns DOFs
    ``n*d .. n*d+d-1``.
    """
    d = mesh.dofs_per_node
    conn = mesh.elements
    dofs = conn[:, :, None] * d + np.arange(d)[None, None, :]
    return dofs.reshape(len(conn), -1)


def _congruence_key(coords: np.ndarray) -> bytes:
    """Hashable key identifying element geometry up to translation."""
    rel = coords - coords[0]
    return np.round(rel, 12).tobytes()


def element_matrices(
    mesh: Mesh,
    material: Material,
    kind: str = "stiffness",
    truss_area: float = 1.0,
) -> np.ndarray:
    """All element matrices, shape ``(n_elements, ndof_el, ndof_el)``.

    ``kind`` is ``"stiffness"`` or ``"mass"``.  Congruent elements (equal up
    to translation) share one integrated matrix.
    """
    if kind not in ("stiffness", "mass"):
        raise ValueError("kind must be 'stiffness' or 'mass'")
    if mesh.element_type == "truss":
        if kind == "mass":
            raise NotImplementedError("truss mass matrix not needed by the paper")
        mats = np.empty((mesh.n_elements, 2, 2))
        for e in range(mesh.n_elements):
            c = mesh.element_coords(e)
            length = float(np.linalg.norm(c[1] - c[0]))
            mats[e] = truss_stiffness(length, truss_area, material.E)
        return mats

    key = (mesh.element_type, kind)
    func = _KIND_FUNCS.get(key) or _h8_funcs()[key]
    cache: dict = {}
    ndof = mesh.elements.shape[1] * mesh.dofs_per_node
    mats = np.empty((mesh.n_elements, ndof, ndof))
    for e in range(mesh.n_elements):
        coords = mesh.element_coords(e)
        key = _congruence_key(coords)
        m = cache.get(key)
        if m is None:
            m = func(coords, material)
            cache[key] = m
        mats[e] = m
    return mats


#: Default element count per streamed chunk: a Q4 chunk of 2048 elements
#: costs ~1 MB of COO entries — large enough to amortize the per-chunk
#: Python overhead, small enough that peak memory stays flat with mesh size.
DEFAULT_CHUNK = 2048


def iter_element_coo(
    mesh: Mesh,
    material: Material,
    kind: str = "stiffness",
    element_subset: np.ndarray | None = None,
    chunk: int = DEFAULT_CHUNK,
    truss_area: float = 1.0,
):
    """Yield ``(rows, cols, data)`` COO chunks of the element assembly.

    Generator form of :func:`assemble_matrix`: the chunks, concatenated in
    yield order, are **bit-identical** to the monolithic entry arrays —
    elements are visited in subset order, each contributing its
    ``ndof x ndof`` block row-major, and the congruence cache is shared
    across chunks so repeated geometries integrate once.  Only one chunk of
    element matrices and COO entries is live at a time, which is what lets
    the large-mesh streamed builders assemble per-subdomain operators
    without ever materializing the full element-matrix array or the global
    COO triplet set.
    """
    if kind not in ("stiffness", "mass"):
        raise ValueError("kind must be 'stiffness' or 'mass'")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    dof_map = element_dof_map(mesh)
    if element_subset is None:
        subset = np.arange(mesh.n_elements, dtype=np.int64)
    else:
        subset = np.asarray(element_subset, dtype=np.int64)
    dof_map = dof_map[subset]
    ndof = dof_map.shape[1]

    truss = mesh.element_type == "truss"
    if truss:
        if kind == "mass":
            raise NotImplementedError("truss mass matrix not needed by the paper")
        func = None
    else:
        fkey = (mesh.element_type, kind)
        func = _KIND_FUNCS.get(fkey) or _h8_funcs()[fkey]
    cache: dict = {}
    for start in range(0, len(subset), chunk):
        idx = subset[start : start + chunk]
        dm = dof_map[start : start + chunk]
        ne = len(idx)
        mats = np.empty((ne, ndof, ndof))
        for j, e in enumerate(idx):
            coords = mesh.element_coords(int(e))
            if truss:
                length = float(np.linalg.norm(coords[1] - coords[0]))
                mats[j] = truss_stiffness(length, truss_area, material.E)
                continue
            ckey = _congruence_key(coords)
            m = cache.get(ckey)
            if m is None:
                m = func(coords, material)
                cache[ckey] = m
            mats[j] = m
        rows = np.repeat(dm, ndof, axis=1).ravel()
        cols = np.tile(dm, (1, ndof)).ravel()
        data = mats.reshape(ne, -1).ravel()
        yield rows, cols, data


def assemble_matrix(
    mesh: Mesh,
    material: Material,
    kind: str = "stiffness",
    element_subset: np.ndarray | None = None,
    truss_area: float = 1.0,
) -> COOMatrix:
    """Assemble the global matrix :math:`K = \\sum_e B_e^T K_e B_e`.

    ``element_subset`` restricts assembly to a list of element indices —
    this is how a subdomain's *local distributed* matrix :math:`\\hat K^{(s)}`
    is formed (Definition 1): only local element contributions, no interface
    assembly.
    The result keeps global DOF numbering and shape ``(N, N)``.

    This is the one-shot form of :func:`iter_element_coo` (one chunk
    spanning every requested element), so the entry order — and therefore
    the CSR conversion — is bit-identical between the monolithic and
    streamed paths by construction.
    """
    n = mesh.n_dofs
    n_el = (
        mesh.n_elements if element_subset is None else len(element_subset)
    )
    if n_el == 0:
        return COOMatrix.empty((n, n))
    rows, cols, data = next(
        iter_element_coo(
            mesh,
            material,
            kind,
            element_subset=element_subset,
            chunk=n_el,
            truss_area=truss_area,
        )
    )
    return COOMatrix((n, n), rows, cols, data)
