"""Finite-element substrate.

Implements everything the paper's evaluation needs: 2-D plane-stress
elasticity with 4-node quadrilateral (Q4) and 3-node triangle (T3) elements,
1-D truss elements (the paper's Fig. 5 illustration), consistent mass
matrices for elastodynamics, structured cantilever meshes (Table 2), global
assembly to COO/CSR, Dirichlet boundary conditions and load vectors.
"""

from repro.fem.material import Material
from repro.fem.mesh import Mesh, structured_quad_mesh, structured_tri_mesh
from repro.fem.elements import (
    q4_mass,
    q4_stiffness,
    t3_mass,
    t3_stiffness,
    truss_stiffness,
)
from repro.fem.assembly import assemble_matrix, element_dof_map
from repro.fem.bc import DirichletBC, apply_dirichlet, clamp_edge_dofs
from repro.fem.loads import edge_traction_load, point_load
from repro.fem.unstructured import delaunay_mesh, perforated_plate
from repro.fem.stress import (
    element_stresses,
    nodal_stresses,
    stress_concentration_factor,
    von_mises,
)
from repro.fem.verification import convergence_study, solve_manufactured
from repro.fem.cantilever import (
    PAPER_MESHES,
    CantileverProblem,
    cantilever_problem,
    paper_mesh,
)

__all__ = [
    "Material",
    "Mesh",
    "structured_quad_mesh",
    "structured_tri_mesh",
    "q4_stiffness",
    "q4_mass",
    "t3_stiffness",
    "t3_mass",
    "truss_stiffness",
    "assemble_matrix",
    "element_dof_map",
    "DirichletBC",
    "apply_dirichlet",
    "clamp_edge_dofs",
    "edge_traction_load",
    "point_load",
    "CantileverProblem",
    "cantilever_problem",
    "paper_mesh",
    "PAPER_MESHES",
    "delaunay_mesh",
    "perforated_plate",
    "element_stresses",
    "nodal_stresses",
    "von_mises",
    "stress_concentration_factor",
    "convergence_study",
    "solve_manufactured",
]
