"""Unstructured triangular meshes.

The paper's framework targets "general parallel finite element analysis"
on unstructured meshes (Section 5); the structured cantilever family alone
would not exercise the graph partitioner or the irregular-interface code
paths.  This module generates genuinely unstructured T3 meshes: Delaunay
triangulations of jittered point grids, with optional circular holes
(perforated plates, a classic stress-concentration workload).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay

from repro.fem.mesh import Mesh


def delaunay_mesh(
    nx: int,
    ny: int,
    lx: float = 1.0,
    ly: float = 1.0,
    jitter: float = 0.25,
    seed: int = 0,
    holes=(),
) -> Mesh:
    """Unstructured T3 mesh on ``[0,lx] x [0,ly]``.

    Starts from an ``(nx+1) x (ny+1)`` grid, jitters interior points by
    ``jitter`` of the local spacing, Delaunay-triangulates, and drops
    triangles whose centroid falls inside any of ``holes`` (a sequence of
    ``(cx, cy, r)``).  Boundary points stay exactly on the boundary so
    edge clamping and tractions keep working.
    """
    if nx < 2 or ny < 2:
        raise ValueError("need at least a 2x2 point grid")
    if not 0.0 <= jitter < 0.5:
        raise ValueError("jitter must lie in [0, 0.5)")
    xs = np.linspace(0.0, lx, nx + 1)
    ys = np.linspace(0.0, ly, ny + 1)
    xx, yy = np.meshgrid(xs, ys, indexing="xy")
    coords = np.column_stack([xx.ravel(), yy.ravel()])
    rng = np.random.default_rng(seed)
    hx, hy = lx / nx, ly / ny
    interior = (
        (coords[:, 0] > 0)
        & (coords[:, 0] < lx)
        & (coords[:, 1] > 0)
        & (coords[:, 1] < ly)
    )
    noise = rng.uniform(-jitter, jitter, size=(interior.sum(), 2))
    coords[interior] += noise * np.array([hx, hy])

    tri = Delaunay(coords)
    elements = tri.simplices.astype(np.int64)
    # Enforce counterclockwise orientation.
    c = coords[elements]
    area2 = (c[:, 1, 0] - c[:, 0, 0]) * (c[:, 2, 1] - c[:, 0, 1]) - (
        c[:, 2, 0] - c[:, 0, 0]
    ) * (c[:, 1, 1] - c[:, 0, 1])
    flip = area2 < 0
    elements[flip] = elements[flip][:, [0, 2, 1]]

    if holes:
        centroids = coords[elements].mean(axis=1)
        keep = np.ones(len(elements), dtype=bool)
        for cx, cy, r in holes:
            inside = (centroids[:, 0] - cx) ** 2 + (
                centroids[:, 1] - cy
            ) ** 2 < r * r
            keep &= ~inside
        elements = elements[keep]

    # Drop nodes no longer referenced (hole interiors) and re-index.
    used = np.unique(elements.ravel())
    remap = np.full(len(coords), -1, dtype=np.int64)
    remap[used] = np.arange(len(used))
    return Mesh(
        coords[used], remap[elements], element_type="t3", dofs_per_node=2
    )


def perforated_plate(
    nx: int = 24,
    ny: int = 12,
    lx: float = 2.0,
    ly: float = 1.0,
    hole_radius: float = 0.2,
    seed: int = 0,
) -> Mesh:
    """A rectangular plate with a central circular hole — the classical
    stress-concentration geometry, and a non-convex domain that stresses
    the graph partitioner."""
    if hole_radius >= min(lx, ly) / 2:
        raise ValueError("hole does not fit inside the plate")
    return delaunay_mesh(
        nx,
        ny,
        lx=lx,
        ly=ly,
        jitter=0.2,
        seed=seed,
        holes=[(lx / 2, ly / 2, hole_radius)],
    )
