"""The paper's cantilever benchmark family (Fig. 9 and Table 2).

``PAPER_MESHES`` reproduces Table 2 exactly: mesh dimensions in elements,
node counts and free-equation counts.  The clamped edge per mesh is chosen
so that the reduced equation count ``nEqn`` matches the paper's table
(Mesh1 and Mesh10 clamp the short ``nYele+1``-node edge — the classical
cantilever support — while Mesh2/Mesh3 only match when the long
``nXele+1``-node edge is clamped; square meshes match either way and use
the left edge).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.assembly import assemble_matrix
from repro.fem.bc import DirichletBC, apply_dirichlet, clamp_edge_dofs
from repro.fem.loads import edge_traction_load
from repro.fem.material import Material
from repro.fem.mesh import Mesh, structured_quad_mesh
from repro.sparse.csr import CSRMatrix

#: Table 2: (nXele, nYele, nNode, nEqn, clamped edge).
PAPER_MESHES = {
    1: (7, 1, 16, 28, "left"),
    2: (40, 8, 369, 656, "bottom"),
    3: (40, 20, 861, 1640, "bottom"),
    4: (50, 50, 2601, 5100, "left"),
    5: (60, 60, 3721, 7320, "left"),
    6: (70, 70, 5041, 9940, "left"),
    7: (80, 80, 6561, 12960, "left"),
    8: (90, 90, 8281, 16380, "left"),
    9: (100, 100, 10201, 20200, "left"),
    10: (200, 100, 20301, 40400, "left"),
}

#: Beyond-Table-2 tiers for large-mesh scaling runs: same ``(nXele,
#: nYele, nNode, nEqn, clamped edge)`` tuple shape, ids continuing the
#: paper's numbering.  Mesh11/12 land in the 10^5-equation decade and
#: Mesh13 crosses 10^6; pair them with ``cantilever_inputs`` + the
#: streamed builders — the assembled constructors would materialize the
#: global CSR these tiers exist to avoid.
LARGE_MESHES = {
    11: (320, 160, 51681, 103040, "left"),
    12: (500, 250, 125751, 251000, "left"),
    13: (1000, 500, 501501, 1002000, "left"),
}


@dataclass
class CantileverProblem:
    """A fully-assembled cantilever test problem.

    Attributes
    ----------
    mesh:
        The Q4 mesh.
    bc:
        The Dirichlet boundary condition (clamped edge).
    stiffness:
        Reduced stiffness :math:`K` on free DOFs (CSR).
    mass:
        Reduced consistent mass :math:`M` on free DOFs (CSR), present when
        built with ``with_mass=True``.
    load:
        Reduced load vector :math:`f`.
    material:
        The material used.
    """

    mesh: Mesh
    bc: DirichletBC
    stiffness: CSRMatrix
    load: np.ndarray
    material: Material
    mass: CSRMatrix | None = None

    @property
    def n_eqn(self) -> int:
        """Number of free equations (the paper's ``nEqn``)."""
        return self.bc.n_free


def paper_mesh(k: int):
    """Mesh and clamp edge for mesh id ``k`` — the paper's 1..10 or the
    large-mesh tiers 11..13.

    Returns ``(mesh, edge)``; the geometry keeps unit-square elements so
    every element is congruent and assembly caches a single Q4 matrix.
    """
    if k in PAPER_MESHES:
        nx, ny, _, _, edge = PAPER_MESHES[k]
    elif k in LARGE_MESHES:
        nx, ny, _, _, edge = LARGE_MESHES[k]
    else:
        raise ValueError(
            f"paper defines Mesh1..Mesh10 (large tiers: Mesh11..Mesh13), "
            f"got {k}"
        )
    mesh = structured_quad_mesh(nx, ny, lx=float(nx), ly=float(ny))
    return mesh, edge


def cantilever_inputs(
    k: int | None = None,
    nx: int | None = None,
    ny: int | None = None,
    material: Material | None = None,
    load_edge: str = "right",
    traction=(1.0, 0.0),
):
    """Cantilever mesh, BC, full-DOF load and material — **no assembly**.

    The large-mesh companion to :func:`cantilever_problem`: returns
    ``(mesh, bc, f_full, material)`` without ever forming the global
    stiffness CSR, so a streamed distributed build
    (:func:`repro.core.distributed.build_edd_system_streamed`) can run with
    peak memory bounded by one subdomain plus one element chunk.
    ``f_full[bc.free]`` equals the reduced load of the assembled problem
    bitwise (homogeneous Dirichlet reduction is a pure restriction), so
    solves against either construction agree exactly.
    """
    if material is None:
        material = Material(E=100.0, nu=0.3, rho=1.0, thickness=1.0)
    if k is not None:
        mesh, edge = paper_mesh(k)
    else:
        if nx is None or ny is None:
            raise ValueError("give either a paper mesh id k or nx and ny")
        mesh = structured_quad_mesh(nx, ny, lx=float(nx), ly=float(ny))
        edge = "left"
    bc = clamp_edge_dofs(mesh, edge)
    f_full = edge_traction_load(mesh, load_edge, traction)
    return mesh, bc, f_full, material


def cantilever_problem(
    k: int | None = None,
    nx: int | None = None,
    ny: int | None = None,
    material: Material | None = None,
    with_mass: bool = False,
    load_edge: str = "right",
    traction=(1.0, 0.0),
    element_type: str = "q4",
) -> CantileverProblem:
    """Build a cantilever problem from a paper mesh id or explicit dimensions.

    With ``k`` given, uses Table 2 mesh ``k``; otherwise ``nx``-by-``ny``
    elements with the left edge clamped.  ``element_type`` may be ``"q4"``
    (the paper's choice) or ``"t3"`` (each cell split into two triangles —
    the planar-graph case of Section 5).  The default load is a uniform
    pulling traction on the free right edge (the paper's "cantilever beam
    with pulling load").
    """
    if element_type not in ("q4", "t3"):
        raise ValueError("element_type must be 'q4' or 't3'")
    if material is None:
        material = Material(E=100.0, nu=0.3, rho=1.0, thickness=1.0)
    if k is not None:
        if element_type != "q4":
            raise ValueError("Table 2 meshes are Q4; use nx/ny for t3")
        mesh, edge = paper_mesh(k)
    else:
        if nx is None or ny is None:
            raise ValueError("give either a paper mesh id k or nx and ny")
        if element_type == "t3":
            from repro.fem.mesh import structured_tri_mesh

            mesh = structured_tri_mesh(nx, ny, lx=float(nx), ly=float(ny))
        else:
            mesh = structured_quad_mesh(nx, ny, lx=float(nx), ly=float(ny))
        edge = "left"
    bc = clamp_edge_dofs(mesh, edge)
    f_full = edge_traction_load(mesh, load_edge, traction)
    k_coo = assemble_matrix(mesh, material, "stiffness")
    k_red, f_red = apply_dirichlet(k_coo, f_full, bc)
    mass = None
    if with_mass:
        m_coo = assemble_matrix(mesh, material, "mass")
        mass, _ = apply_dirichlet(m_coo, np.zeros(mesh.n_dofs), bc)
    return CantileverProblem(
        mesh=mesh,
        bc=bc,
        stiffness=k_red,
        load=f_red,
        material=material,
        mass=mass,
    )
