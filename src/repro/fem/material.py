"""Linear-elastic material description for 2-D plane stress/strain."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Material:
    """Isotropic linear-elastic material.

    Parameters
    ----------
    E:
        Young's modulus.
    nu:
        Poisson's ratio, must lie in ``(-1, 0.5)``.
    rho:
        Mass density (used by the elastodynamics problems).
    thickness:
        Out-of-plane thickness for 2-D elements.
    plane_stress:
        Plane stress if True (thin plates, the paper's cantilever),
        plane strain otherwise.
    """

    E: float = 1.0
    nu: float = 0.3
    rho: float = 1.0
    thickness: float = 1.0
    plane_stress: bool = True

    def __post_init__(self) -> None:
        if self.E <= 0:
            raise ValueError("Young's modulus must be positive")
        if not -1.0 < self.nu < 0.5:
            raise ValueError("Poisson's ratio must lie in (-1, 0.5)")
        if self.rho <= 0:
            raise ValueError("density must be positive")
        if self.thickness <= 0:
            raise ValueError("thickness must be positive")

    def elasticity_matrix(self) -> np.ndarray:
        """The 3x3 constitutive matrix ``D`` relating strain to stress."""
        e, nu = self.E, self.nu
        if self.plane_stress:
            c = e / (1.0 - nu * nu)
            return c * np.array(
                [[1.0, nu, 0.0], [nu, 1.0, 0.0], [0.0, 0.0, (1.0 - nu) / 2.0]]
            )
        c = e / ((1.0 + nu) * (1.0 - 2.0 * nu))
        return c * np.array(
            [
                [1.0 - nu, nu, 0.0],
                [nu, 1.0 - nu, 0.0],
                [0.0, 0.0, (1.0 - 2.0 * nu) / 2.0],
            ]
        )


#: Default material used by the paper-style cantilever experiments: a steel-
#: like modulus keeps the stiffness matrix badly scaled before norm-1
#: diagonal scaling, which is exactly the situation the preconditioning
#: pipeline is designed for.
STEEL = Material(E=200e9, nu=0.3, rho=7850.0, thickness=0.01)
