"""Element stiffness and consistent mass matrices.

Q4 (4-node bilinear quadrilateral) is the element the paper uses for the
cantilever experiments; T3 (3-node linear triangle) is provided because the
paper's planarity discussion (Section 5) contrasts the two; the 1-D truss
element reproduces the worked example of Fig. 5 / Eqs. 29-31.
"""

from __future__ import annotations

import numpy as np

from repro.fem.material import Material
from repro.fem.quadrature import gauss_quad_2d, triangle_rule


def q4_shape(xi: float, eta: float):
    """Bilinear shape functions and their reference-space gradients.

    Returns ``(N, dN)`` with ``N`` of shape ``(4,)`` and ``dN`` of shape
    ``(2, 4)`` (rows are d/dxi and d/deta).  Node order is counterclockwise
    starting from ``(-1, -1)``.
    """
    n = 0.25 * np.array(
        [
            (1 - xi) * (1 - eta),
            (1 + xi) * (1 - eta),
            (1 + xi) * (1 + eta),
            (1 - xi) * (1 + eta),
        ]
    )
    dn = 0.25 * np.array(
        [
            [-(1 - eta), (1 - eta), (1 + eta), -(1 + eta)],
            [-(1 - xi), -(1 + xi), (1 + xi), (1 - xi)],
        ]
    )
    return n, dn


def _q4_b_matrix(coords: np.ndarray, xi: float, eta: float):
    """Strain-displacement matrix B (3x8) and Jacobian determinant at a point."""
    _, dn = q4_shape(xi, eta)
    jac = dn @ coords  # 2x2
    det = jac[0, 0] * jac[1, 1] - jac[0, 1] * jac[1, 0]
    if det <= 0:
        raise ValueError("degenerate or inverted Q4 element")
    inv = np.array([[jac[1, 1], -jac[0, 1]], [-jac[1, 0], jac[0, 0]]]) / det
    grad = inv @ dn  # physical-space gradients, 2x4
    b = np.zeros((3, 8))
    b[0, 0::2] = grad[0]
    b[1, 1::2] = grad[1]
    b[2, 0::2] = grad[1]
    b[2, 1::2] = grad[0]
    return b, det


def q4_stiffness(coords: np.ndarray, material: Material, n_gauss: int = 2) -> np.ndarray:
    """8x8 plane-stress/strain stiffness of a Q4 element.

    ``coords`` is the 4x2 array of node coordinates in counterclockwise
    order.  DOF layout is ``(u1, v1, u2, v2, u3, v3, u4, v4)``.
    """
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape != (4, 2):
        raise ValueError("Q4 element needs 4 nodes in 2-D")
    d = material.elasticity_matrix()
    pts, wts = gauss_quad_2d(n_gauss)
    ke = np.zeros((8, 8))
    for (xi, eta), w in zip(pts, wts):
        b, det = _q4_b_matrix(coords, xi, eta)
        ke += w * det * material.thickness * (b.T @ d @ b)
    return ke


def q4_mass(coords: np.ndarray, material: Material, n_gauss: int = 2) -> np.ndarray:
    """8x8 consistent mass matrix of a Q4 element."""
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape != (4, 2):
        raise ValueError("Q4 element needs 4 nodes in 2-D")
    pts, wts = gauss_quad_2d(n_gauss)
    me = np.zeros((8, 8))
    for (xi, eta), w in zip(pts, wts):
        n, dn = q4_shape(xi, eta)
        jac = dn @ coords
        det = jac[0, 0] * jac[1, 1] - jac[0, 1] * jac[1, 0]
        nn = np.zeros((2, 8))
        nn[0, 0::2] = n
        nn[1, 1::2] = n
        me += w * det * material.rho * material.thickness * (nn.T @ nn)
    return me


def t3_stiffness(coords: np.ndarray, material: Material) -> np.ndarray:
    """6x6 stiffness of a constant-strain triangle."""
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape != (3, 2):
        raise ValueError("T3 element needs 3 nodes in 2-D")
    x, y = coords[:, 0], coords[:, 1]
    area2 = (x[1] - x[0]) * (y[2] - y[0]) - (x[2] - x[0]) * (y[1] - y[0])
    if area2 <= 0:
        raise ValueError("degenerate or inverted T3 element")
    # Shape-function gradient coefficients.
    b_c = np.array([y[1] - y[2], y[2] - y[0], y[0] - y[1]]) / area2
    c_c = np.array([x[2] - x[1], x[0] - x[2], x[1] - x[0]]) / area2
    b = np.zeros((3, 6))
    b[0, 0::2] = b_c
    b[1, 1::2] = c_c
    b[2, 0::2] = c_c
    b[2, 1::2] = b_c
    d = material.elasticity_matrix()
    area = area2 / 2.0
    return area * material.thickness * (b.T @ d @ b)


def t3_mass(coords: np.ndarray, material: Material) -> np.ndarray:
    """6x6 consistent mass of a constant-strain triangle."""
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape != (3, 2):
        raise ValueError("T3 element needs 3 nodes in 2-D")
    x, y = coords[:, 0], coords[:, 1]
    area2 = (x[1] - x[0]) * (y[2] - y[0]) - (x[2] - x[0]) * (y[1] - y[0])
    area = area2 / 2.0
    if area <= 0:
        raise ValueError("degenerate or inverted T3 element")
    pts, wts = triangle_rule(2)
    me = np.zeros((6, 6))
    for bary, w in zip(pts, wts):
        nn = np.zeros((2, 6))
        nn[0, 0::2] = bary
        nn[1, 1::2] = bary
        me += w * area * material.rho * material.thickness * (nn.T @ nn)
    return me


def truss_stiffness(length: float, area: float, youngs: float) -> np.ndarray:
    """2x2 axial stiffness of a 1-D truss element, :math:`\\frac{AE}{l}
    \\begin{bmatrix}1&-1\\\\-1&1\\end{bmatrix}` (Eq. 30)."""
    if length <= 0:
        raise ValueError("element length must be positive")
    k = area * youngs / length
    return k * np.array([[1.0, -1.0], [-1.0, 1.0]])
