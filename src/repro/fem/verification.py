"""Manufactured-solution verification of the FEM substrate.

A solver library is only as credible as its discretization, so this module
provides the standard verification machinery:

* consistent body-force load vectors (needed to manufacture solutions);
* the **patch test**: any exact *linear* displacement field must be
  reproduced to machine precision by Q4/T3 elements under pure Dirichlet
  data — the classical necessary condition for convergence;
* an h-refinement **convergence study** against a manufactured polynomial
  solution, whose observed order validates the whole
  assembly/BC/load/solve chain end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.assembly import assemble_matrix
from repro.fem.bc import DirichletBC, apply_dirichlet
from repro.fem.elements import q4_shape
from repro.fem.material import Material
from repro.fem.mesh import Mesh, refine_quad_mesh, structured_quad_mesh
from repro.fem.quadrature import gauss_quad_2d


def body_force_load(mesh: Mesh, force_fn, n_gauss: int = 2) -> np.ndarray:
    """Consistent load vector for a body force ``force_fn(x, y) -> (fx, fy)``.

    Integrates :math:`\\int N^T f\\, d\\Omega` element-wise with Gauss
    quadrature (Q4 meshes).
    """
    if mesh.element_type != "q4":
        raise ValueError("body_force_load handles q4 meshes only")
    pts, wts = gauss_quad_2d(n_gauss)
    f = np.zeros(mesh.n_dofs)
    for e in range(mesh.n_elements):
        conn = mesh.elements[e]
        coords = mesh.coords[conn]
        fe = np.zeros(8)
        for (xi, eta), w in zip(pts, wts):
            n, dn = q4_shape(xi, eta)
            jac = dn @ coords
            det = jac[0, 0] * jac[1, 1] - jac[0, 1] * jac[1, 0]
            x, y = n @ coords
            fx, fy = force_fn(x, y)
            fe[0::2] += w * det * n * fx
            fe[1::2] += w * det * n * fy
        dofs = np.empty(8, dtype=np.int64)
        dofs[0::2] = conn * 2
        dofs[1::2] = conn * 2 + 1
        np.add.at(f, dofs, fe)
    return f


def dirichlet_from_exact(mesh: Mesh, exact_fn):
    """Boundary condition fixing *all* boundary nodes to an exact field.

    Returns ``(bc, u_fixed_full)``: the :class:`DirichletBC` over the
    bounding-box boundary and the full-length vector holding the exact
    values at constrained DOFs (zero elsewhere).
    """
    x, y = mesh.coords[:, 0], mesh.coords[:, 1]
    on_boundary = (
        np.isclose(x, x.min())
        | np.isclose(x, x.max())
        | np.isclose(y, y.min())
        | np.isclose(y, y.max())
    )
    nodes = np.flatnonzero(on_boundary)
    dofs = np.concatenate([nodes * 2, nodes * 2 + 1])
    bc = DirichletBC(mesh.n_dofs, dofs)
    u_fixed = np.zeros(mesh.n_dofs)
    for n in nodes:
        ux, uy = exact_fn(x[n], y[n])
        u_fixed[2 * n] = ux
        u_fixed[2 * n + 1] = uy
    return bc, u_fixed


def solve_manufactured(
    mesh: Mesh, material: Material, exact_fn, force_fn
) -> np.ndarray:
    """Solve with exact Dirichlet data + manufactured body force; returns
    the full nodal solution (boundary values included)."""
    k = assemble_matrix(mesh, material)
    f = body_force_load(mesh, force_fn)
    bc, u_fixed = dirichlet_from_exact(mesh, exact_fn)
    # Inhomogeneous Dirichlet: solve K_ff u_f = f_f - K_fc u_c.
    k_csr = k.tocsr()
    f_mod = f - k_csr.matvec(u_fixed)
    k_red, f_red = apply_dirichlet(k, f_mod, bc)
    u_free = np.linalg.solve(k_red.toarray(), f_red)
    full = u_fixed.copy()
    full[bc.free] = u_free
    return full


def nodal_error(mesh: Mesh, u_full: np.ndarray, exact_fn) -> float:
    """Relative discrete L2 error of the nodal displacements."""
    exact = np.empty(mesh.n_dofs)
    for n, (x, y) in enumerate(mesh.coords):
        ux, uy = exact_fn(x, y)
        exact[2 * n] = ux
        exact[2 * n + 1] = uy
    scale = np.linalg.norm(exact)
    if scale == 0:
        return float(np.linalg.norm(u_full))
    return float(np.linalg.norm(u_full - exact) / scale)


@dataclass(frozen=True)
class ConvergenceStudy:
    """h-refinement errors and the observed order.

    Attributes
    ----------
    h:
        Element sizes of each refinement level.
    errors:
        Relative nodal L2 errors.
    observed_order:
        Least-squares slope of log(error) vs log(h).
    """

    h: np.ndarray
    errors: np.ndarray
    observed_order: float


def convergence_study(
    exact_fn,
    force_fn,
    material: Material,
    n_levels: int = 3,
    n0: int = 4,
) -> ConvergenceStudy:
    """Run an h-refinement study on the unit square.

    ``exact_fn(x, y) -> (ux, uy)`` must satisfy
    :math:`-\\nabla\\cdot\\sigma(u) = f` with ``force_fn`` supplying ``f``.
    """
    mesh = structured_quad_mesh(n0, n0)
    hs, errs = [], []
    for _ in range(n_levels):
        u = solve_manufactured(mesh, material, exact_fn, force_fn)
        hs.append(1.0 / np.sqrt(mesh.n_elements))
        errs.append(nodal_error(mesh, u, exact_fn))
        mesh = refine_quad_mesh(mesh)
    hs = np.asarray(hs)
    errs = np.asarray(errs)
    order = float(np.polyfit(np.log(hs), np.log(np.maximum(errs, 1e-16)), 1)[0])
    return ConvergenceStudy(h=hs, errors=errs, observed_order=order)
