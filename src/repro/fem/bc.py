"""Dirichlet boundary conditions.

The paper eliminates constrained DOFs (Table 2 reports the *reduced*
equation counts), so the primary entry point reduces the system to free
DOFs.  Subdomain matrices apply the same reduction per Algorithm 2 step (5):
"Apply boundary condition over ∂Ω(s) \\ Γ".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fem.mesh import Mesh
from repro.sparse.coo import COOMatrix


@dataclass
class DirichletBC:
    """A set of constrained global DOFs with prescribed (zero) values.

    Parameters
    ----------
    n_dofs:
        Total DOFs of the unconstrained system.
    fixed:
        Sorted unique array of constrained DOF indices.
    """

    n_dofs: int
    fixed: np.ndarray

    def __post_init__(self) -> None:
        self.fixed = np.unique(np.asarray(self.fixed, dtype=np.int64))
        if len(self.fixed) and (
            self.fixed[0] < 0 or self.fixed[-1] >= self.n_dofs
        ):
            raise ValueError("fixed DOF index out of range")

    @property
    def free(self) -> np.ndarray:
        """Sorted free (unconstrained) DOF indices."""
        mask = np.ones(self.n_dofs, dtype=bool)
        mask[self.fixed] = False
        return np.flatnonzero(mask)

    @property
    def n_free(self) -> int:
        """Number of free DOFs, the paper's ``nEqn``."""
        return self.n_dofs - len(self.fixed)

    def full_to_free(self) -> np.ndarray:
        """Map full DOF index -> free index (or -1 if constrained)."""
        out = np.full(self.n_dofs, -1, dtype=np.int64)
        out[self.free] = np.arange(self.n_free)
        return out

    def expand(self, u_free: np.ndarray) -> np.ndarray:
        """Insert zeros at constrained DOFs to recover the full vector."""
        u = np.zeros(self.n_dofs)
        u[self.free] = u_free
        return u


def clamp_edge_dofs(mesh: Mesh, edge: str, tol: float = 1e-12) -> DirichletBC:
    """Clamp all DOFs of the nodes on a bounding-box edge.

    ``edge`` is one of ``"left"`` (x = min), ``"right"``, ``"bottom"``
    (y = min) or ``"top"``.  A clamped left edge is the classical cantilever
    support; Table 2's Mesh2..Mesh10 equation counts correspond to clamping
    the ``nXele + 1``-node edge (see :mod:`repro.fem.cantilever`).
    """
    x, y = mesh.coords[:, 0], mesh.coords[:, 1]
    if edge == "left":
        nodes = np.flatnonzero(np.abs(x - x.min()) < tol)
    elif edge == "right":
        nodes = np.flatnonzero(np.abs(x - x.max()) < tol)
    elif edge == "bottom":
        nodes = np.flatnonzero(np.abs(y - y.min()) < tol)
    elif edge == "top":
        nodes = np.flatnonzero(np.abs(y - y.max()) < tol)
    else:
        raise ValueError(f"unknown edge {edge!r}")
    d = mesh.dofs_per_node
    dofs = (nodes[:, None] * d + np.arange(d)[None, :]).ravel()
    return DirichletBC(mesh.n_dofs, dofs)


def apply_dirichlet(matrix: COOMatrix, rhs: np.ndarray, bc: DirichletBC):
    """Eliminate constrained DOFs from an assembled system.

    Returns ``(K_ff_csr, f_f)`` on the free DOFs.  Only homogeneous
    (zero-displacement) conditions are supported, which is all the paper's
    experiments use.
    """
    if matrix.shape != (bc.n_dofs, bc.n_dofs):
        raise ValueError("matrix size does not match boundary condition")
    if rhs.shape != (bc.n_dofs,):
        raise ValueError("rhs size does not match boundary condition")
    f2f = bc.full_to_free()
    r = f2f[matrix.rows]
    c = f2f[matrix.cols]
    keep = (r >= 0) & (c >= 0)
    reduced = COOMatrix(
        (bc.n_free, bc.n_free), r[keep], c[keep], matrix.data[keep]
    )
    return reduced.tocsr(), rhs[bc.free].copy()
