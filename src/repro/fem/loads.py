"""Load vectors: point loads and consistently-distributed edge tractions."""

from __future__ import annotations

import numpy as np

from repro.fem.mesh import Mesh


def point_load(mesh: Mesh, node: int, components) -> np.ndarray:
    """Concentrated load at one node; ``components`` has ``dofs_per_node``
    entries."""
    components = np.asarray(components, dtype=np.float64)
    if components.shape != (mesh.dofs_per_node,):
        raise ValueError("wrong number of load components")
    if not 0 <= node < mesh.n_nodes:
        raise ValueError("node index out of range")
    f = np.zeros(mesh.n_dofs)
    d = mesh.dofs_per_node
    f[node * d : node * d + d] = components
    return f


def edge_traction_load(
    mesh: Mesh, edge: str, traction, tol: float = 1e-12
) -> np.ndarray:
    """Uniform traction on a bounding-box edge, lumped consistently.

    ``traction`` is force per unit length ``(tx, ty)``.  Nodes on the edge
    receive tributary lengths (half-segments), which for linear elements is
    the consistent load for a uniform traction.  This models the "pulling
    load" of the paper's cantilever (Fig. 9).
    """
    traction = np.asarray(traction, dtype=np.float64)
    if traction.shape != (mesh.dofs_per_node,):
        raise ValueError("wrong number of traction components")
    x, y = mesh.coords[:, 0], mesh.coords[:, 1]
    if edge == "left":
        nodes = np.flatnonzero(np.abs(x - x.min()) < tol)
        coord = y[nodes]
    elif edge == "right":
        nodes = np.flatnonzero(np.abs(x - x.max()) < tol)
        coord = y[nodes]
    elif edge == "bottom":
        nodes = np.flatnonzero(np.abs(y - y.min()) < tol)
        coord = x[nodes]
    elif edge == "top":
        nodes = np.flatnonzero(np.abs(y - y.max()) < tol)
        coord = x[nodes]
    else:
        raise ValueError(f"unknown edge {edge!r}")
    if len(nodes) < 2:
        raise ValueError(f"edge {edge!r} has fewer than 2 nodes")
    order = np.argsort(coord)
    nodes = nodes[order]
    coord = coord[order]
    seg = np.diff(coord)
    trib = np.zeros(len(nodes))
    trib[:-1] += seg / 2.0
    trib[1:] += seg / 2.0
    f = np.zeros(mesh.n_dofs)
    d = mesh.dofs_per_node
    for k in range(d):
        f[nodes * d + k] = trib * traction[k]
    return f
