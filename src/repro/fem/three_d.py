"""Three-dimensional elasticity substrate (H8 hexahedra).

Section 5 of the paper singles out three-dimensional problems as the case
where the row-based decomposition's duplicated interface elements blow up
storage; this module provides the 3-D workload to measure that on: 8-node
trilinear hexahedral elements, structured beam meshes, face clamping and
face tractions.  Everything downstream (partitioning, EDD/RDD solvers,
preconditioners) is dimension-agnostic and works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.assembly import assemble_matrix
from repro.fem.bc import DirichletBC, apply_dirichlet
from repro.fem.material import Material
from repro.fem.mesh import Mesh
from repro.fem.quadrature import gauss_1d
from repro.sparse.csr import CSRMatrix

#: Reference-cube corner signs in the node ordering used throughout
#: (counterclockwise bottom face, then top face).
_CORNERS = np.array(
    [
        [-1, -1, -1],
        [1, -1, -1],
        [1, 1, -1],
        [-1, 1, -1],
        [-1, -1, 1],
        [1, -1, 1],
        [1, 1, 1],
        [-1, 1, 1],
    ],
    dtype=np.float64,
)


def elasticity_matrix_3d(material: Material) -> np.ndarray:
    """The 6x6 isotropic constitutive matrix (Voigt order
    xx, yy, zz, xy, yz, zx)."""
    e, nu = material.E, material.nu
    c = e / ((1.0 + nu) * (1.0 - 2.0 * nu))
    d = np.zeros((6, 6))
    d[:3, :3] = c * nu
    d[np.arange(3), np.arange(3)] = c * (1.0 - nu)
    g = e / (2.0 * (1.0 + nu))
    d[3, 3] = d[4, 4] = d[5, 5] = g
    return d


def h8_shape(xi: float, eta: float, zeta: float):
    """Trilinear shape functions and reference gradients: ``(N(8,),
    dN(3,8))``."""
    s = _CORNERS
    n = 0.125 * (1 + s[:, 0] * xi) * (1 + s[:, 1] * eta) * (1 + s[:, 2] * zeta)
    dn = np.empty((3, 8))
    dn[0] = 0.125 * s[:, 0] * (1 + s[:, 1] * eta) * (1 + s[:, 2] * zeta)
    dn[1] = 0.125 * s[:, 1] * (1 + s[:, 0] * xi) * (1 + s[:, 2] * zeta)
    dn[2] = 0.125 * s[:, 2] * (1 + s[:, 0] * xi) * (1 + s[:, 1] * eta)
    return n, dn


def h8_stiffness(coords: np.ndarray, material: Material, n_gauss: int = 2) -> np.ndarray:
    """24x24 stiffness of an H8 element; DOF order interleaves (u,v,w)."""
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape != (8, 3):
        raise ValueError("H8 element needs 8 nodes in 3-D")
    d = elasticity_matrix_3d(material)
    pts, wts = gauss_1d(n_gauss)
    ke = np.zeros((24, 24))
    for xi, wx in zip(pts, wts):
        for eta, wy in zip(pts, wts):
            for zeta, wz in zip(pts, wts):
                _, dn = h8_shape(xi, eta, zeta)
                jac = dn @ coords
                det = np.linalg.det(jac)
                if det <= 0:
                    raise ValueError("degenerate or inverted H8 element")
                grad = np.linalg.solve(jac, dn)  # 3x8 physical gradients
                b = np.zeros((6, 24))
                b[0, 0::3] = grad[0]
                b[1, 1::3] = grad[1]
                b[2, 2::3] = grad[2]
                b[3, 0::3] = grad[1]
                b[3, 1::3] = grad[0]
                b[4, 1::3] = grad[2]
                b[4, 2::3] = grad[1]
                b[5, 0::3] = grad[2]
                b[5, 2::3] = grad[0]
                ke += wx * wy * wz * det * (b.T @ d @ b)
    return ke


def h8_mass(coords: np.ndarray, material: Material, n_gauss: int = 2) -> np.ndarray:
    """24x24 consistent mass of an H8 element."""
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape != (8, 3):
        raise ValueError("H8 element needs 8 nodes in 3-D")
    pts, wts = gauss_1d(n_gauss)
    me = np.zeros((24, 24))
    for xi, wx in zip(pts, wts):
        for eta, wy in zip(pts, wts):
            for zeta, wz in zip(pts, wts):
                n, dn = h8_shape(xi, eta, zeta)
                det = np.linalg.det(dn @ coords)
                nn = np.zeros((3, 24))
                nn[0, 0::3] = n
                nn[1, 1::3] = n
                nn[2, 2::3] = n
                me += wx * wy * wz * det * material.rho * (nn.T @ nn)
    return me


def structured_hex_mesh(
    nx: int, ny: int, nz: int, lx: float = 1.0, ly: float = 1.0, lz: float = 1.0
) -> Mesh:
    """Regular grid of H8 elements on ``[0,lx] x [0,ly] x [0,lz]``.

    Node numbering is x-fastest, then y, then z.
    """
    if min(nx, ny, nz) < 1:
        raise ValueError("need at least one element per direction")
    xs = np.linspace(0.0, lx, nx + 1)
    ys = np.linspace(0.0, ly, ny + 1)
    zs = np.linspace(0.0, lz, nz + 1)
    zz, yy, xx = np.meshgrid(zs, ys, xs, indexing="ij")
    coords = np.column_stack([xx.ravel(), yy.ravel(), zz.ravel()])

    def nid(i, j, k):
        return (k * (ny + 1) + j) * (nx + 1) + i

    elements = []
    for k in range(nz):
        for j in range(ny):
            for i in range(nx):
                elements.append(
                    [
                        nid(i, j, k),
                        nid(i + 1, j, k),
                        nid(i + 1, j + 1, k),
                        nid(i, j + 1, k),
                        nid(i, j, k + 1),
                        nid(i + 1, j, k + 1),
                        nid(i + 1, j + 1, k + 1),
                        nid(i, j + 1, k + 1),
                    ]
                )
    return Mesh(
        coords,
        np.array(elements, dtype=np.int64),
        element_type="h8",
        dofs_per_node=3,
    )


_PLANES = {
    "x-": (0, min),
    "x+": (0, max),
    "y-": (1, min),
    "y+": (1, max),
    "z-": (2, min),
    "z+": (2, max),
}


def plane_nodes(mesh: Mesh, plane: str, tol: float = 1e-12) -> np.ndarray:
    """Nodes on a bounding-box plane, e.g. ``"x-"`` for x = min."""
    if plane not in _PLANES:
        raise ValueError(f"unknown plane {plane!r}; use x-/x+/y-/y+/z-/z+")
    axis, pick = _PLANES[plane]
    target = pick(mesh.coords[:, axis])
    return np.flatnonzero(np.abs(mesh.coords[:, axis] - target) < tol)


def clamp_plane_dofs(mesh: Mesh, plane: str, tol: float = 1e-12) -> DirichletBC:
    """Clamp all DOFs of the nodes on a bounding-box plane."""
    nodes = plane_nodes(mesh, plane, tol)
    d = mesh.dofs_per_node
    dofs = (nodes[:, None] * d + np.arange(d)[None, :]).ravel()
    return DirichletBC(mesh.n_dofs, dofs)


def face_traction_load(
    mesh: Mesh, plane: str, traction, tol: float = 1e-12
) -> np.ndarray:
    """Uniform traction (force/area) on a bounding-box face.

    Consistent for trilinear faces on a structured grid: each boundary
    quad face contributes a quarter of ``traction * face_area`` to each of
    its four nodes.
    """
    traction = np.asarray(traction, dtype=np.float64)
    if traction.shape != (3,):
        raise ValueError("3-D traction needs 3 components")
    if plane not in _PLANES:
        raise ValueError(f"unknown plane {plane!r}")
    axis, pick = _PLANES[plane]
    target = pick(mesh.coords[:, axis])
    on_plane = np.abs(mesh.coords[:, axis] - target) < tol

    # H8 faces as local node quadruples.
    faces = {
        "x-": [0, 3, 7, 4],
        "x+": [1, 2, 6, 5],
        "y-": [0, 1, 5, 4],
        "y+": [3, 2, 6, 7],
        "z-": [0, 1, 2, 3],
        "z+": [4, 5, 6, 7],
    }[plane]
    f = np.zeros(mesh.n_dofs)
    found = False
    for conn in mesh.elements:
        quad = conn[faces]
        if not on_plane[quad].all():
            continue
        found = True
        c = mesh.coords[quad]
        # Planar quad area via the cross product of its diagonals.
        d1 = c[2] - c[0]
        d2 = c[3] - c[1]
        area = 0.5 * np.linalg.norm(np.cross(d1, d2))
        for node in quad:
            f[node * 3 : node * 3 + 3] += 0.25 * area * traction
    if not found:
        raise ValueError(f"no element face lies on plane {plane!r}")
    return f


@dataclass
class Beam3DProblem:
    """A 3-D cantilever beam clamped on the x- face.

    Attributes mirror :class:`repro.fem.cantilever.CantileverProblem`.
    """

    mesh: Mesh
    bc: DirichletBC
    stiffness: CSRMatrix
    load: np.ndarray
    material: Material
    mass: CSRMatrix | None = None

    @property
    def n_eqn(self) -> int:
        return self.bc.n_free


def beam3d_problem(
    nx: int = 8,
    ny: int = 2,
    nz: int = 2,
    material: Material | None = None,
    with_mass: bool = False,
    traction=(1.0, 0.0, 0.0),
) -> Beam3DProblem:
    """Build a 3-D cantilever: clamped at x = 0, pulled on the x+ face."""
    if material is None:
        material = Material(E=100.0, nu=0.3, rho=1.0)
    mesh = structured_hex_mesh(nx, ny, nz, lx=float(nx), ly=float(ny), lz=float(nz))
    bc = clamp_plane_dofs(mesh, "x-")
    f_full = face_traction_load(mesh, "x+", traction)
    k_coo = assemble_matrix(mesh, material, "stiffness")
    k_red, f_red = apply_dirichlet(k_coo, f_full, bc)
    mass = None
    if with_mass:
        m_coo = assemble_matrix(mesh, material, "mass")
        mass, _ = apply_dirichlet(m_coo, np.zeros(mesh.n_dofs), bc)
    return Beam3DProblem(
        mesh=mesh,
        bc=bc,
        stiffness=k_red,
        load=f_red,
        material=material,
        mass=mass,
    )
