"""Structured 2-D meshes for the cantilever experiments (Table 2)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Mesh:
    """An unstructured-format mesh of a single 2-D element type.

    Parameters
    ----------
    coords:
        ``(n_nodes, 2)`` node coordinates.
    elements:
        ``(n_elements, nodes_per_element)`` connectivity, counterclockwise.
    element_type:
        ``"q4"``, ``"t3"`` or ``"truss"``.
    dofs_per_node:
        2 for plane elasticity, 1 for truss/scalar problems.
    """

    coords: np.ndarray
    elements: np.ndarray
    element_type: str = "q4"
    dofs_per_node: int = 2

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=np.float64)
        self.elements = np.asarray(self.elements, dtype=np.int64)
        if self.elements.ndim != 2:
            raise ValueError("connectivity must be 2-D")
        if self.elements.size and self.elements.max() >= len(self.coords):
            raise ValueError("connectivity references a missing node")
        expected = {"q4": 4, "t3": 3, "truss": 2, "h8": 8}[self.element_type]
        if self.elements.shape[1] != expected:
            raise ValueError(
                f"{self.element_type} elements need {expected} nodes each"
            )

    @property
    def n_nodes(self) -> int:
        """Number of nodes."""
        return len(self.coords)

    @property
    def n_elements(self) -> int:
        """Number of elements."""
        return len(self.elements)

    @property
    def n_dofs(self) -> int:
        """Total degrees of freedom before boundary conditions."""
        return self.n_nodes * self.dofs_per_node

    def element_coords(self, e: int) -> np.ndarray:
        """Node coordinates of element ``e``."""
        return self.coords[self.elements[e]]

    def nodes_on(self, predicate) -> np.ndarray:
        """Indices of nodes whose coordinates satisfy ``predicate(x, y)``.

        ``predicate`` receives the full coordinate columns and must return a
        boolean mask (vectorized).
        """
        mask = predicate(self.coords[:, 0], self.coords[:, 1])
        return np.flatnonzero(mask)

    def element_centroids(self) -> np.ndarray:
        """``(n_elements, 2)`` centroids; used by coordinate partitioners."""
        return self.coords[self.elements].mean(axis=1)


def structured_quad_mesh(
    nx: int, ny: int, lx: float = 1.0, ly: float = 1.0
) -> Mesh:
    """Regular ``nx``-by-``ny`` grid of Q4 elements on ``[0,lx] x [0,ly]``.

    Node numbering is row-major with x fastest, matching the meshes of
    Table 2 (``nXele x nYele``).
    """
    if nx < 1 or ny < 1:
        raise ValueError("need at least one element in each direction")
    xs = np.linspace(0.0, lx, nx + 1)
    ys = np.linspace(0.0, ly, ny + 1)
    xx, yy = np.meshgrid(xs, ys, indexing="xy")
    coords = np.column_stack([xx.ravel(), yy.ravel()])

    j, i = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
    n0 = (j * (nx + 1) + i).ravel()
    elements = np.column_stack([n0, n0 + 1, n0 + nx + 2, n0 + nx + 1])
    return Mesh(coords, elements, element_type="q4", dofs_per_node=2)


def refine_quad_mesh(mesh: Mesh) -> Mesh:
    """Uniform refinement: split every Q4 element into four.

    Edge midpoints and cell centroids become new nodes (shared between
    neighbouring elements via exact-coordinate matching, which is safe for
    the structured/jitter-free meshes this operates on).  Used by the
    manufactured-solution convergence studies.
    """
    if mesh.element_type != "q4":
        raise ValueError("refine_quad_mesh handles q4 meshes only")
    coords = [tuple(c) for c in np.round(mesh.coords, 12)]
    index = {c: i for i, c in enumerate(coords)}
    new_coords = list(mesh.coords)

    def node_at(pt) -> int:
        key = tuple(np.round(pt, 12))
        if key not in index:
            index[key] = len(new_coords)
            new_coords.append(np.asarray(pt))
        return index[key]

    elements = []
    for conn in mesh.elements:
        c = mesh.coords[conn]
        mids = [node_at((c[i] + c[(i + 1) % 4]) / 2.0) for i in range(4)]
        center = node_at(c.mean(axis=0))
        n0, n1, n2, n3 = (int(v) for v in conn)
        m01, m12, m23, m30 = mids
        elements.extend(
            [
                [n0, m01, center, m30],
                [m01, n1, m12, center],
                [center, m12, n2, m23],
                [m30, center, m23, n3],
            ]
        )
    return Mesh(
        np.asarray(new_coords),
        np.asarray(elements, dtype=np.int64),
        element_type="q4",
        dofs_per_node=mesh.dofs_per_node,
    )


def structured_tri_mesh(
    nx: int, ny: int, lx: float = 1.0, ly: float = 1.0
) -> Mesh:
    """Same grid split into 2 triangles per cell (diagonal from node 0 to 2)."""
    quad = structured_quad_mesh(nx, ny, lx, ly)
    q = quad.elements
    tris = np.empty((2 * len(q), 3), dtype=np.int64)
    tris[0::2] = q[:, [0, 1, 2]]
    tris[1::2] = q[:, [0, 2, 3]]
    return Mesh(quad.coords, tris, element_type="t3", dofs_per_node=2)


def truss_mesh(n_elements: int, length: float = 1.0) -> Mesh:
    """1-D chain of truss elements; ``n_elements=2`` is the paper's Fig. 5."""
    if n_elements < 1:
        raise ValueError("need at least one element")
    xs = np.linspace(0.0, length, n_elements + 1)
    coords = np.column_stack([xs, np.zeros_like(xs)])
    n0 = np.arange(n_elements)
    elements = np.column_stack([n0, n0 + 1])
    return Mesh(coords, elements, element_type="truss", dofs_per_node=1)
