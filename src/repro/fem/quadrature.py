"""Gauss quadrature rules on reference elements."""

from __future__ import annotations

import numpy as np

# 1-D Gauss-Legendre rules on [-1, 1], hard-coded to avoid any runtime
# eigenvalue computation in the hot assembly path.
_GAUSS_1D = {
    1: (np.array([0.0]), np.array([2.0])),
    2: (
        np.array([-1.0, 1.0]) / np.sqrt(3.0),
        np.array([1.0, 1.0]),
    ),
    3: (
        np.array([-np.sqrt(3.0 / 5.0), 0.0, np.sqrt(3.0 / 5.0)]),
        np.array([5.0, 8.0, 5.0]) / 9.0,
    ),
}


def gauss_1d(n: int):
    """``n``-point Gauss-Legendre rule on ``[-1, 1]`` (n = 1, 2, 3)."""
    if n not in _GAUSS_1D:
        raise ValueError(f"unsupported 1-D Gauss order {n}")
    pts, wts = _GAUSS_1D[n]
    return pts.copy(), wts.copy()


def gauss_quad_2d(n: int):
    """Tensor-product Gauss rule on the reference square ``[-1,1]^2``.

    Returns ``(points, weights)`` with ``points`` of shape ``(n*n, 2)``.
    """
    p, w = gauss_1d(n)
    xi, eta = np.meshgrid(p, p, indexing="ij")
    pts = np.column_stack([xi.ravel(), eta.ravel()])
    wts = np.outer(w, w).ravel()
    return pts, wts


def triangle_rule(order: int):
    """Symmetric quadrature on the reference triangle (area coordinates).

    ``order=1`` is the 1-point centroid rule (exact for linears);
    ``order=2`` is the 3-point midpoint rule (exact for quadratics).
    Points are in barycentric coordinates ``(L1, L2, L3)``; weights sum
    to 1 and must be multiplied by the element area.
    """
    if order == 1:
        pts = np.array([[1 / 3, 1 / 3, 1 / 3]])
        wts = np.array([1.0])
    elif order == 2:
        pts = np.array([[0.5, 0.5, 0.0], [0.0, 0.5, 0.5], [0.5, 0.0, 0.5]])
        wts = np.array([1 / 3, 1 / 3, 1 / 3])
    else:
        raise ValueError(f"unsupported triangle rule order {order}")
    return pts, wts


def gauss_chebyshev(n: int):
    """``n``-point Gauss-Chebyshev rule on ``(-1, 1)``.

    Integrates :math:`\\int_{-1}^1 f(t) (1-t^2)^{-1/2} dt`.  Used by the
    GLS polynomial construction, where each spectrum interval carries the
    Chebyshev weight (Section 2.1.3).
    """
    k = np.arange(1, n + 1)
    nodes = np.cos((2 * k - 1) * np.pi / (2 * n))
    weights = np.full(n, np.pi / n)
    return nodes, weights
