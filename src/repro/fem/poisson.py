"""Scalar heat-conduction (Poisson) substrate.

The paper frames its method for "implicit finite element computations in
several scientific and engineering problems" — not just elasticity.  This
module provides the simplest second scalar PDE, steady heat conduction
:math:`-\\nabla\\cdot(k\\nabla T) = q`, on the same Q4 meshes with one DOF
per node.  Everything downstream (partitioning, EDD/RDD solvers,
preconditioners) operates on it unchanged, which is the point: the solver
stack is PDE-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fem.bc import DirichletBC, apply_dirichlet
from repro.fem.elements import q4_shape
from repro.fem.mesh import Mesh, structured_quad_mesh
from repro.fem.quadrature import gauss_quad_2d
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def q4_conductivity(coords: np.ndarray, k: float = 1.0, n_gauss: int = 2) -> np.ndarray:
    """4x4 conductivity (scalar 'stiffness') matrix of a Q4 element:
    :math:`\\int k\\, \\nabla N^T \\nabla N\\, d\\Omega`."""
    coords = np.asarray(coords, dtype=np.float64)
    if coords.shape != (4, 2):
        raise ValueError("Q4 element needs 4 nodes in 2-D")
    if k <= 0:
        raise ValueError("conductivity must be positive")
    pts, wts = gauss_quad_2d(n_gauss)
    ke = np.zeros((4, 4))
    for (xi, eta), w in zip(pts, wts):
        _, dn = q4_shape(xi, eta)
        jac = dn @ coords
        det = jac[0, 0] * jac[1, 1] - jac[0, 1] * jac[1, 0]
        if det <= 0:
            raise ValueError("degenerate or inverted Q4 element")
        inv = np.array([[jac[1, 1], -jac[0, 1]], [-jac[1, 0], jac[0, 0]]]) / det
        grad = inv @ dn
        ke += w * det * k * (grad.T @ grad)
    return ke


def assemble_conductivity(mesh: Mesh, k: float = 1.0) -> COOMatrix:
    """Assemble the global scalar conductivity matrix for a Q4 mesh with
    one DOF per node (the mesh's ``dofs_per_node`` must be 1)."""
    if mesh.element_type != "q4":
        raise ValueError("scalar assembly implemented for q4 meshes")
    if mesh.dofs_per_node != 1:
        raise ValueError("scalar problem needs dofs_per_node == 1")
    rows, cols, data = [], [], []
    cache: dict = {}
    for e in range(mesh.n_elements):
        conn = mesh.elements[e]
        coords = mesh.coords[conn]
        key = np.round(coords - coords[0], 12).tobytes()
        ke = cache.get(key)
        if ke is None:
            ke = q4_conductivity(coords, k)
            cache[key] = ke
        rows.append(np.repeat(conn, 4))
        cols.append(np.tile(conn, 4))
        data.append(ke.ravel())
    return COOMatrix(
        (mesh.n_nodes, mesh.n_nodes),
        np.concatenate(rows),
        np.concatenate(cols),
        np.concatenate(data),
    )


def scalar_source_load(mesh: Mesh, source_fn, n_gauss: int = 2) -> np.ndarray:
    """Consistent load for a volumetric heat source ``source_fn(x, y)``."""
    pts, wts = gauss_quad_2d(n_gauss)
    f = np.zeros(mesh.n_nodes)
    for e in range(mesh.n_elements):
        conn = mesh.elements[e]
        coords = mesh.coords[conn]
        fe = np.zeros(4)
        for (xi, eta), w in zip(pts, wts):
            n, dn = q4_shape(xi, eta)
            jac = dn @ coords
            det = jac[0, 0] * jac[1, 1] - jac[0, 1] * jac[1, 0]
            x, y = n @ coords
            fe += w * det * n * source_fn(x, y)
        np.add.at(f, conn, fe)
    return f


@dataclass
class HeatProblem:
    """An assembled steady heat-conduction problem on free DOFs.

    Attributes
    ----------
    mesh:
        The scalar Q4 mesh (``dofs_per_node == 1``).
    bc:
        Dirichlet condition (fixed-temperature boundary).
    conductivity:
        Reduced conductivity matrix.
    load:
        Reduced source vector.
    """

    mesh: Mesh
    bc: DirichletBC
    conductivity: CSRMatrix
    load: np.ndarray

    @property
    def n_eqn(self) -> int:
        """Number of free temperature DOFs."""
        return self.bc.n_free


def heat_problem(
    nx: int = 16,
    ny: int = 16,
    k: float = 1.0,
    source_fn=None,
) -> HeatProblem:
    """Unit-square plate, zero temperature on the whole boundary, unit
    volumetric source by default — the textbook Poisson benchmark."""
    mesh = structured_quad_mesh(nx, ny)
    mesh = Mesh(mesh.coords, mesh.elements, element_type="q4", dofs_per_node=1)
    x, y = mesh.coords[:, 0], mesh.coords[:, 1]
    boundary = (
        np.isclose(x, 0.0)
        | np.isclose(x, 1.0)
        | np.isclose(y, 0.0)
        | np.isclose(y, 1.0)
    )
    bc = DirichletBC(mesh.n_nodes, np.flatnonzero(boundary))
    if source_fn is None:
        source_fn = lambda x, y: 1.0  # noqa: E731 - default unit source
    f = scalar_source_load(mesh, source_fn)
    k_coo = assemble_conductivity(mesh, k)
    k_red, f_red = apply_dirichlet(k_coo, f, bc)
    return HeatProblem(mesh=mesh, bc=bc, conductivity=k_red, load=f_red)
