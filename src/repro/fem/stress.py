"""Stress recovery and post-processing.

Computes element stresses from a displacement solution — the quantity a
structural analysis actually reports.  Stresses are evaluated at element
centroids (the superconvergent point for Q4) and optionally averaged to
nodes for smooth fields; von Mises equivalent stress supports the
stress-concentration checks in the examples.
"""

from __future__ import annotations

import numpy as np

from repro.fem.elements import _q4_b_matrix
from repro.fem.material import Material
from repro.fem.mesh import Mesh


def element_stresses(
    mesh: Mesh, material: Material, u_full: np.ndarray
) -> np.ndarray:
    """Centroid stresses per element, shape ``(n_elements, 3)`` in Voigt
    order ``(sigma_xx, sigma_yy, tau_xy)``.

    ``u_full`` is the full nodal displacement vector (constrained DOFs
    included).  Supports Q4 and T3 meshes.
    """
    if u_full.shape != (mesh.n_dofs,):
        raise ValueError("u_full must cover all DOFs (use bc.expand)")
    d = material.elasticity_matrix()
    out = np.empty((mesh.n_elements, 3))
    if mesh.element_type == "q4":
        for e in range(mesh.n_elements):
            conn = mesh.elements[e]
            coords = mesh.coords[conn]
            b, _ = _q4_b_matrix(coords, 0.0, 0.0)
            ue = np.empty(8)
            ue[0::2] = u_full[conn * 2]
            ue[1::2] = u_full[conn * 2 + 1]
            out[e] = d @ (b @ ue)
    elif mesh.element_type == "t3":
        for e in range(mesh.n_elements):
            conn = mesh.elements[e]
            c = mesh.coords[conn]
            x, y = c[:, 0], c[:, 1]
            area2 = (x[1] - x[0]) * (y[2] - y[0]) - (x[2] - x[0]) * (
                y[1] - y[0]
            )
            b_c = np.array([y[1] - y[2], y[2] - y[0], y[0] - y[1]]) / area2
            c_c = np.array([x[2] - x[1], x[0] - x[2], x[1] - x[0]]) / area2
            b = np.zeros((3, 6))
            b[0, 0::2] = b_c
            b[1, 1::2] = c_c
            b[2, 0::2] = c_c
            b[2, 1::2] = b_c
            ue = np.empty(6)
            ue[0::2] = u_full[conn * 2]
            ue[1::2] = u_full[conn * 2 + 1]
            out[e] = d @ (b @ ue)
    else:
        raise ValueError(f"unsupported element type {mesh.element_type!r}")
    return out


def nodal_stresses(mesh: Mesh, element_sigma: np.ndarray) -> np.ndarray:
    """Average element stresses to nodes (simple arithmetic averaging),
    shape ``(n_nodes, 3)``."""
    if element_sigma.shape != (mesh.n_elements, 3):
        raise ValueError("one Voigt stress triple per element required")
    out = np.zeros((mesh.n_nodes, 3))
    counts = np.zeros(mesh.n_nodes)
    for e, conn in enumerate(mesh.elements):
        out[conn] += element_sigma[e]
        counts[conn] += 1
    out /= counts[:, None]
    return out


def element_stresses_3d(
    mesh: Mesh, material: Material, u_full: np.ndarray
) -> np.ndarray:
    """Centroid stresses per H8 element, shape ``(n_elements, 6)`` in Voigt
    order ``(xx, yy, zz, xy, yz, zx)``."""
    from repro.fem.three_d import elasticity_matrix_3d, h8_shape

    if mesh.element_type != "h8":
        raise ValueError("element_stresses_3d handles h8 meshes only")
    if u_full.shape != (mesh.n_dofs,):
        raise ValueError("u_full must cover all DOFs (use bc.expand)")
    d = elasticity_matrix_3d(material)
    out = np.empty((mesh.n_elements, 6))
    for e in range(mesh.n_elements):
        conn = mesh.elements[e]
        coords = mesh.coords[conn]
        _, dn = h8_shape(0.0, 0.0, 0.0)
        jac = dn @ coords
        grad = np.linalg.solve(jac, dn)
        b = np.zeros((6, 24))
        b[0, 0::3] = grad[0]
        b[1, 1::3] = grad[1]
        b[2, 2::3] = grad[2]
        b[3, 0::3] = grad[1]
        b[3, 1::3] = grad[0]
        b[4, 1::3] = grad[2]
        b[4, 2::3] = grad[1]
        b[5, 0::3] = grad[2]
        b[5, 2::3] = grad[0]
        ue = np.empty(24)
        ue[0::3] = u_full[conn * 3]
        ue[1::3] = u_full[conn * 3 + 1]
        ue[2::3] = u_full[conn * 3 + 2]
        out[e] = d @ (b @ ue)
    return out


def von_mises(sigma: np.ndarray) -> np.ndarray:
    """Von Mises equivalent of Voigt stresses.

    Accepts plane-stress triples ``(..., 3)`` (xx, yy, xy) or full 3-D
    sextuples ``(..., 6)`` (xx, yy, zz, xy, yz, zx).
    """
    sigma = np.asarray(sigma, dtype=np.float64)
    if sigma.shape[-1] == 3:
        sxx = sigma[..., 0]
        syy = sigma[..., 1]
        txy = sigma[..., 2]
        return np.sqrt(sxx**2 - sxx * syy + syy**2 + 3.0 * txy**2)
    if sigma.shape[-1] == 6:
        sxx, syy, szz, txy, tyz, tzx = (sigma[..., i] for i in range(6))
        return np.sqrt(
            0.5
            * (
                (sxx - syy) ** 2
                + (syy - szz) ** 2
                + (szz - sxx) ** 2
                + 6.0 * (txy**2 + tyz**2 + tzx**2)
            )
        )
    raise ValueError("Voigt stresses must have 3 or 6 components")


def stress_concentration_factor(
    mesh: Mesh,
    material: Material,
    u_full: np.ndarray,
    far_field: float,
) -> float:
    """Peak nodal von Mises stress over a nominal far-field stress —
    the classical SCF (≈3 for a small circular hole in an infinite plate
    under uniaxial tension)."""
    if far_field <= 0:
        raise ValueError("far-field stress must be positive")
    sig_e = element_stresses(mesh, material, u_full)
    sig_n = nodal_stresses(mesh, sig_e)
    return float(von_mises(sig_n).max() / far_field)
