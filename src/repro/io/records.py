"""Serializable records of solver runs.

The benchmark harness and the CLI's ``--json`` mode persist runs as plain
JSON so sweeps can be compared across sessions without re-running.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.core.driver import ParallelSolveSummary
from repro.core.outcome import SCHEMA_VERSION
from repro.parallel.machine import MACHINES, modeled_time


@dataclass(frozen=True)
class RunRecord:
    """One solver run, flattened to JSON-friendly scalars.

    Attributes
    ----------
    label:
        Free-form identifier (e.g. ``"mesh3/gls(7)/p8"``).
    method, precond:
        Solver configuration.
    n_parts, n_eqn:
        Rank count and system size.
    iterations, converged, final_residual:
        Convergence outcome.
    total_flops, max_flops, nbr_messages, nbr_words, reductions:
        Recorded counters.
    modeled_times:
        Mapping of machine key -> modeled seconds.
    true_residual:
        The driver's independently recomputed unscaled relative residual
        (NaN for records predating the field).
    diagnostics:
        Solver anomaly events as plain dicts (``iteration``/``kind``/
        ``detail``); empty for a clean run.
    trace:
        The run's ``repro-trace/1`` observability export
        (:meth:`repro.obs.Tracer.to_dict`) when it was traced; None
        otherwise.  Stripped from the saved JSON when None, so untraced
        record files are unchanged.
    schema_version:
        :data:`repro.core.outcome.SCHEMA_VERSION` of the producing code —
        the single version stamp shared with summary ``to_dict()``
        payloads and the service's request/response messages.  Records
        predating the field load with the current version.
    """

    label: str
    method: str
    precond: str
    n_parts: int
    n_eqn: int
    iterations: int
    converged: bool
    final_residual: float
    total_flops: int
    max_flops: int
    nbr_messages: int
    nbr_words: int
    reductions: int
    modeled_times: dict
    comm_backend: str = "virtual"
    wall_time: float = 0.0
    setup_time: float = 0.0
    true_residual: float = float("nan")
    diagnostics: tuple = ()
    trace: dict | None = None
    schema_version: int = SCHEMA_VERSION


def record_from_summary(
    summary: ParallelSolveSummary, label: str, n_eqn: int
) -> RunRecord:
    """Flatten a :class:`ParallelSolveSummary` into a :class:`RunRecord`.

    Consumes :meth:`ParallelSolveSummary.to_dict` so the CLI's ``--json``
    output and the benchmark emitters share one serialization path.
    """
    payload = summary.to_dict()
    result, stats = payload["result"], payload["stats"]
    return RunRecord(
        label=label,
        method=payload["method"],
        precond=payload["precond"],
        n_parts=payload["n_parts"],
        n_eqn=int(n_eqn),
        iterations=result["iterations"],
        converged=result["converged"],
        final_residual=result["final_residual"],
        total_flops=stats["total_flops"],
        max_flops=stats["max_flops"],
        nbr_messages=stats["total_nbr_messages"],
        nbr_words=stats["total_nbr_words"],
        reductions=stats["max_reductions"],
        modeled_times={
            key: modeled_time(summary.stats, machine)
            for key, machine in MACHINES.items()
        },
        comm_backend=payload["comm_backend"],
        wall_time=payload["wall_time"],
        setup_time=payload.get("setup_time", 0.0),
        true_residual=payload.get("true_residual", float("nan")),
        diagnostics=tuple(result.get("diagnostics", ())),
        trace=result.get("trace"),
    )


def records_from_batch(summary, label: str, n_eqn: int) -> list:
    """Flatten a :class:`repro.core.session.BatchSolveSummary` into one
    :class:`RunRecord` per right-hand-side column.

    Column ``c`` gets label ``"{label}/rhs{c}"`` and its own convergence
    outcome and true residual; the communication counters and wall/setup
    times are the *shared* batch totals, repeated on every record (the
    point of the batched path is that they do not scale with ``k``).  The
    batch's shared trace, when present, rides on column 0 only.
    """
    payload = summary.to_dict()
    stats = payload["stats"]
    trace = payload.get("trace")
    records = []
    for c, result in enumerate(payload["results"]):
        true_rels = payload["true_residuals"]
        records.append(
            RunRecord(
                label=f"{label}/rhs{c}",
                method=payload["method"],
                precond=payload["precond"],
                n_parts=payload["n_parts"],
                n_eqn=int(n_eqn),
                iterations=result["iterations"],
                converged=result["converged"],
                final_residual=result["final_residual"],
                total_flops=stats["total_flops"],
                max_flops=stats["max_flops"],
                nbr_messages=stats["total_nbr_messages"],
                nbr_words=stats["total_nbr_words"],
                reductions=stats["max_reductions"],
                modeled_times={
                    key: modeled_time(summary.stats, machine)
                    for key, machine in MACHINES.items()
                },
                comm_backend=payload["comm_backend"],
                wall_time=payload["wall_time"],
                setup_time=payload.get("setup_time", 0.0),
                true_residual=(
                    true_rels[c] if c < len(true_rels) else float("nan")
                ),
                diagnostics=tuple(result.get("diagnostics", ())),
                trace=trace if c == 0 else None,
            )
        )
    return records


def save_records(records, path) -> None:
    """Write records to a JSON file (``trace: None`` is stripped so
    untraced record files keep their historical schema)."""
    payload = [asdict(r) for r in records]
    for item in payload:
        item["diagnostics"] = list(item["diagnostics"])
        if item.get("trace") is None:
            item.pop("trace", None)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def load_records(path) -> list:
    """Read records back from :func:`save_records` output."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    for item in payload:
        item["diagnostics"] = tuple(item.get("diagnostics", ()))
    return [RunRecord(**item) for item in payload]
