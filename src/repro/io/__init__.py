"""Experiment-record I/O."""

from repro.io.records import (
    RunRecord,
    load_records,
    record_from_summary,
    save_records,
)

__all__ = ["RunRecord", "record_from_summary", "save_records", "load_records"]
