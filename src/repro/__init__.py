"""repro — parallel FE-based domain-decomposition FGMRES with polynomial
preconditioning.

A from-scratch reproduction of Liang, Kanapady & Tamma, *"An Efficient
Parallel Finite-Element-Based Domain Decomposition Iterative Technique With
Polynomial Preconditioning"* (UMN TR 05-001 / ICPP 2006).

Quick start::

    from repro import SolverOptions, solve_cantilever
    summary = solve_cantilever(4, n_parts=8, options=SolverOptions(precond="gls(7)"))
    print(summary.result)

Package layout:

- :mod:`repro.fem` — finite elements, meshes, assembly, the Table 2
  cantilever family.
- :mod:`repro.sparse` — CSR/COO sparse kernels.
- :mod:`repro.partition` — element-based (EDD) and node-based (RDD)
  partitions with interface maps.
- :mod:`repro.parallel` — virtual communicator, operation counters,
  SP2/Origin machine models.
- :mod:`repro.spectrum` — Gershgorin/Lanczos spectrum estimates.
- :mod:`repro.precond` — norm-1 scaling, Neumann/GLS/Chebyshev polynomial
  preconditioners, ILU(0), Jacobi.
- :mod:`repro.solvers` — sequential FGMRES/GMRES/CG.
- :mod:`repro.core` — the distributed EDD (Algorithms 5-6) and RDD
  (Algorithm 8) FGMRES solvers and the high-level driver.
- :mod:`repro.dynamics` — Newmark elastodynamics.
- :mod:`repro.service` — the asyncio multi-tenant solver service.
- :mod:`repro.api` — the frozen, versioned public facade; the names
  below are its re-exports and follow its compatibility contract.
"""

from repro.api import (
    API_VERSION,
    SCHEMA_VERSION,
    BatchSolveSummary,
    ParallelSolveSummary,
    PreparedSystem,
    ServiceConfig,
    SolveOutcome,
    SolveRequest,
    SolveResponse,
    SolverOptions,
    SolverService,
    SolveResult,
    SolveSession,
    Tracer,
    cantilever_problem,
    make_preconditioner,
    serve_jsonl,
    solve_cantilever,
    solve_cantilever_batch,
    spec_of,
)
from repro.solvers import cg, fgmres, gmres

__version__ = "1.0.0"

__all__ = [
    "API_VERSION",
    "SCHEMA_VERSION",
    "solve_cantilever",
    "solve_cantilever_batch",
    "SolveSession",
    "PreparedSystem",
    "BatchSolveSummary",
    "SolverOptions",
    "SolveOutcome",
    "SolveResult",
    "SolverService",
    "ServiceConfig",
    "SolveRequest",
    "SolveResponse",
    "serve_jsonl",
    "make_preconditioner",
    "spec_of",
    "cantilever_problem",
    "ParallelSolveSummary",
    "Tracer",
    "fgmres",
    "gmres",
    "cg",
    "__version__",
]
