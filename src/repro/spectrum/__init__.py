"""Spectrum estimation for polynomial preconditioning.

Polynomial preconditioners are built purely from an interval estimate
:math:`\\Theta \\supset \\sigma(A)` (Section 2.1).  This package provides
the Gershgorin bound that justifies norm-1 diagonal scaling (Theorem 1),
a Lanczos estimator of extreme eigenvalues for sharper intervals, and the
interval-union container :class:`SpectrumIntervals` used by the GLS
construction.
"""

from repro.spectrum.gershgorin import gershgorin_bound, gershgorin_intervals
from repro.spectrum.intervals import SpectrumIntervals
from repro.spectrum.lanczos import (
    estimate_condition_number,
    lanczos_extreme_eigenvalues,
)

__all__ = [
    "gershgorin_bound",
    "gershgorin_intervals",
    "SpectrumIntervals",
    "lanczos_extreme_eigenvalues",
    "estimate_condition_number",
]
