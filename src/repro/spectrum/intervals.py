"""Union-of-intervals spectrum estimates (Eq. 18).

The GLS polynomial preconditioner accepts :math:`\\Theta =
\\bigcup_k (\\ell_k, h_k)` with :math:`0 \\notin \\Theta` — a union of
disjoint open intervals possibly straddling the origin, which is what lets
it handle symmetric *indefinite* systems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class SpectrumIntervals:
    """A validated, sorted union of disjoint open intervals excluding zero.

    Parameters
    ----------
    intervals:
        Tuple of ``(lo, hi)`` pairs satisfying Eq. 18's ordering:
        ``lo_1 < hi_1 <= lo_2 < hi_2 <= ...`` and ``0 not in (lo_k, hi_k)``.
    """

    intervals: tuple

    def __init__(self, intervals):
        pairs = tuple((float(lo), float(hi)) for lo, hi in intervals)
        if not pairs:
            raise ValueError("at least one interval required")
        pairs = tuple(sorted(pairs))
        for lo, hi in pairs:
            if not lo < hi:
                raise ValueError(f"empty interval ({lo}, {hi})")
            if lo < 0.0 < hi:
                raise ValueError("Theta must not contain 0 (Eq. 18)")
        for (_, hi1), (lo2, _) in zip(pairs, pairs[1:]):
            if hi1 > lo2:
                raise ValueError("intervals must be disjoint and ordered")
        object.__setattr__(self, "intervals", pairs)

    @classmethod
    def single(cls, lo: float, hi: float) -> "SpectrumIntervals":
        """The common one-interval case, e.g. ``(0, 1)`` after scaling."""
        return cls([(lo, hi)])

    @classmethod
    def unit(cls, eps: float = 2.2e-16) -> "SpectrumIntervals":
        """The paper's default after norm-1 scaling: :math:`(\\varepsilon, 1)`."""
        return cls([(eps, 1.0)])

    @property
    def n_intervals(self) -> int:
        """Number of disjoint intervals (the paper's :math:`N_I`)."""
        return len(self.intervals)

    @property
    def lo(self) -> float:
        """Leftmost endpoint."""
        return self.intervals[0][0]

    @property
    def hi(self) -> float:
        """Rightmost endpoint."""
        return self.intervals[-1][1]

    def contains(self, x) -> np.ndarray:
        """Vectorized membership test (open intervals)."""
        x = np.asarray(x, dtype=np.float64)
        result = np.zeros(x.shape, dtype=bool)
        for lo, hi in self.intervals:
            result |= (x > lo) & (x < hi)
        return result

    def sample(self, per_interval: int = 200) -> np.ndarray:
        """Evaluation grid with ``per_interval`` points inside each interval
        (endpoints excluded); used for residual-polynomial plots and
        sup-norm checks."""
        if per_interval < 1:
            raise ValueError("need at least one sample per interval")
        chunks = []
        for lo, hi in self.intervals:
            t = (np.arange(per_interval) + 0.5) / per_interval
            chunks.append(lo + t * (hi - lo))
        return np.concatenate(chunks)

    def measure(self) -> float:
        """Total length of the union."""
        return sum(hi - lo for lo, hi in self.intervals)

    def __iter__(self):
        return iter(self.intervals)
