"""Lanczos estimation of extreme eigenvalues.

Used to obtain sharper :math:`\\Theta` estimates than the Gershgorin
bound — the Fig. 10 experiment shows convergence is sensitive to how well
:math:`\\Theta` approximates :math:`\\sigma(A)`.
"""

from __future__ import annotations

import numpy as np


def lanczos_extreme_eigenvalues(
    matvec,
    n: int,
    n_steps: int = 30,
    seed: int = 0,
    full_reorth: bool = True,
):
    """Estimate ``(lambda_min, lambda_max)`` of a symmetric operator.

    Parameters
    ----------
    matvec:
        Callable ``v -> A v`` for the symmetric operator.
    n:
        Dimension.
    n_steps:
        Lanczos steps (capped at ``n``).
    seed:
        Seed for the random start vector.
    full_reorth:
        Re-orthogonalize against all previous vectors each step — O(k n)
        extra work but avoids ghost eigenvalues; always affordable at the
        sizes we estimate.

    Returns the extreme Ritz values, which converge to the extreme
    eigenvalues from inside the spectrum (so ``lambda_max`` is a slight
    underestimate — callers padding :math:`\\Theta` should widen it).
    """
    n_steps = min(n_steps, n)
    rng = np.random.default_rng(seed)
    q = rng.standard_normal(n)
    q /= np.linalg.norm(q)
    basis = [q]
    alphas = []
    betas = []
    beta = 0.0
    q_prev = np.zeros(n)
    for _ in range(n_steps):
        w = matvec(q)
        alpha = float(q @ w)
        alphas.append(alpha)
        w = w - alpha * q - beta * q_prev
        if full_reorth:
            for b in basis:
                w -= (b @ w) * b
        beta = float(np.linalg.norm(w))
        if beta < 1e-14:
            break
        betas.append(beta)
        q_prev = q
        q = w / beta
        basis.append(q)
    t = np.diag(alphas)
    if betas:
        k = len(alphas)
        off = np.array(betas[: k - 1])
        t[np.arange(k - 1), np.arange(1, k)] = off
        t[np.arange(1, k), np.arange(k - 1)] = off
    ritz = np.linalg.eigvalsh(t)
    return float(ritz[0]), float(ritz[-1])


def estimate_condition_number(
    matvec, n: int, n_steps: int = 40, seed: int = 0
) -> float:
    """Condition-number estimate of a symmetric positive definite operator
    from the Lanczos extreme Ritz values.

    Ritz values lie inside the spectrum, so the estimate is a slight
    *under*-estimate of the true :math:`\\kappa_2 = \\lambda_{max}/
    \\lambda_{min}`; for the preconditioning studies that bias is harmless
    (both operators under comparison are biased the same way).
    """
    lo, hi = lanczos_extreme_eigenvalues(matvec, n, n_steps=n_steps, seed=seed)
    if lo <= 0:
        raise ValueError("operator does not look positive definite")
    return hi / lo
