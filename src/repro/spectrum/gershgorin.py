"""Gershgorin-type eigenvalue bounds (Theorem 1)."""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix


def gershgorin_bound(a: CSRMatrix) -> float:
    """Theorem 1: :math:`\\lambda_{max} \\le \\max_i \\|k_i\\|_1`.

    For the norm-1 diagonally scaled matrix this bound equals 1, giving the
    spectrum window :math:`\\Theta = (0, 1)` the polynomial preconditioners
    are built on.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("square matrix required")
    return float(a.row_norms1().max())


def gershgorin_intervals(a: CSRMatrix):
    """Per-row Gershgorin discs collapsed to the real line.

    Returns ``(lo, hi)`` arrays: row ``i`` contributes
    ``[a_ii - r_i, a_ii + r_i]`` with ``r_i`` the off-diagonal absolute row
    sum.  For symmetric matrices the union of the intervals encloses the
    spectrum; useful to seed :class:`SpectrumIntervals` without an
    eigensolve.
    """
    if a.shape[0] != a.shape[1]:
        raise ValueError("square matrix required")
    diag = a.diagonal()
    radius = a.row_norms1() - np.abs(diag)
    return diag - radius, diag + radius
