"""Observability: span tracing, per-iteration metrics, comm timelines.

See docs/OBSERVABILITY.md for the span vocabulary, the
``repro-trace/1`` schema, and the Perfetto how-to.
"""

from repro.obs.invariants import (
    EXPECTED_EXCHANGES,
    exchanges_per_step,
    verify_exchange_invariant,
)
from repro.obs.summary import summarize_trace
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace_from_dict,
    timed_rank_body,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "chrome_trace_from_dict",
    "timed_rank_body",
    "exchanges_per_step",
    "verify_exchange_invariant",
    "EXPECTED_EXCHANGES",
    "summarize_trace",
]
