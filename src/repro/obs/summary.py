"""Human-readable summaries of recorded traces (``repro trace summarize``)."""

from __future__ import annotations

from repro.obs.invariants import exchanges_per_step
from repro.obs.tracer import TRACE_SCHEMA
from repro.reporting.tables import format_table

__all__ = ["summarize_trace", "phase_durations", "span_rollup"]


def _fmt_s(seconds):
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds * 1e6:.1f} us"


def phase_durations(trace):
    """Top-level phase name -> total duration (depth-0/1 ``phase`` spans)."""
    phases = {}
    for span in trace["spans"]:
        if span["cat"] == "phase":
            parent = span["parent"]
            # Only outermost phases (setup/solve/verify) and setup's
            # direct children; nested re-entries roll into their parent.
            if parent == -1 or trace["spans"][parent]["cat"] == "phase":
                phases.setdefault(span["name"], 0.0)
                phases[span["name"]] += span["dur"]
    return phases


def span_rollup(trace):
    """(cat, name) -> dict(count, total_s, words, messages) over all spans."""
    rollup = {}
    for span in trace["spans"]:
        key = (span["cat"], span["name"])
        entry = rollup.setdefault(
            key, {"count": 0, "total_s": 0.0, "words": 0, "messages": 0}
        )
        entry["count"] += 1
        entry["total_s"] += span["dur"]
        args = span["args"]
        entry["words"] += int(args.get("words", 0))
        entry["messages"] += int(args.get("messages", 0))
    return rollup


def summarize_trace(trace):
    """Render a multi-section plain-text report for one trace document."""
    if trace.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"not a {TRACE_SCHEMA} document: {trace.get('schema')!r}"
        )
    sections = []

    meta = trace.get("meta", {})
    if meta:
        sections.append(format_table(
            ["key", "value"], sorted(meta.items()), title="Run metadata"
        ))

    phases = phase_durations(trace)
    if phases:
        order = ["setup", "partition", "assemble", "precond_build",
                 "solve", "verify"]
        rows = [(name, _fmt_s(phases[name]))
                for name in order if name in phases]
        rows += [(name, _fmt_s(dur)) for name, dur in sorted(phases.items())
                 if name not in order]
        sections.append(format_table(
            ["phase", "total"], rows, title="Phase breakdown"
        ))

    rollup = span_rollup(trace)
    rows = []
    for (cat, name), entry in sorted(
        rollup.items(), key=lambda kv: -kv[1]["total_s"]
    ):
        rows.append((
            cat, name, entry["count"], _fmt_s(entry["total_s"]),
            entry["messages"] or "-", entry["words"] or "-",
        ))
    if rows:
        sections.append(format_table(
            ["cat", "span", "count", "total", "messages", "words"],
            rows, title="Span rollup (by total time)",
        ))

    steps = exchanges_per_step(trace)
    if steps:
        counts = sorted(set(steps.values()))
        sections.append(
            "Interface exchanges per Arnoldi step (outside the "
            f"preconditioner): {counts[0]}" + (
                "" if len(counts) == 1
                else f"..{counts[-1]} (non-uniform!)"
            ) + f" over {len(steps)} steps"
        )

    metrics = trace.get("metrics", [])
    rel = [m["rel_res"] for m in metrics if "rel_res" in m]
    if rel:
        sections.append(
            f"Iterations sampled: {len(rel)}; relative residual "
            f"{rel[0]:.3e} -> {rel[-1]:.3e}"
        )

    ranks = trace.get("rank_seconds", [])
    if ranks:
        busiest = max(ranks)
        rows = [(r, _fmt_s(s),
                 f"{s / busiest:.0%}" if busiest > 0 else "-")
                for r, s in enumerate(ranks)]
        sections.append(format_table(
            ["rank", "busy", "of max"], rows, title="Per-rank wall time"
        ))

    return "\n\n".join(sections) if sections else "empty trace"
