"""Trace-derived checks of the paper's communication-accounting claims.

Claim 3 of the paper (Table 1) is an *accounting* claim: per Arnoldi
step, outside the preconditioner, the enhanced EDD scheme performs
exactly **1** nearest-neighbour interface exchange while the basic
scheme performs **3**.  With spans in hand this stops being a hand
audit of the algorithm listing and becomes a property of any recorded
run: count ``exchange``-category spans whose enclosing-span chain
reaches an ``arnoldi_step`` without passing through ``precond_apply``
(the preconditioner's own m exchanges are claim-irrelevant — they are
the *m* in the paper's m+1 / m+3 totals).
"""

from __future__ import annotations

__all__ = ["exchanges_per_step", "verify_exchange_invariant"]

#: Exchanges per Arnoldi step outside the preconditioner (paper Table 1).
EXPECTED_EXCHANGES = {"enhanced": 1, "basic": 3}


def exchanges_per_step(trace):
    """Map ``arnoldi_step`` span index -> direct exchange count.

    Every ``arnoldi_step`` span is seeded with 0 so steps with a
    missing exchange are caught, not skipped.  Reduction spans
    (``allreduce_sum``) never count.
    """
    spans = trace["spans"]
    counts = {
        i: 0 for i, s in enumerate(spans) if s["name"] == "arnoldi_step"
    }
    for span in spans:
        if span["cat"] != "exchange":
            continue
        parent = span["parent"]
        while parent != -1:
            pspan = spans[parent]
            if pspan["name"] == "precond_apply":
                break  # charged to the preconditioner, not the step
            if pspan["name"] == "arnoldi_step":
                counts[parent] += 1
                break
            parent = pspan["parent"]
    return counts


def verify_exchange_invariant(trace, variant):
    """Assert claim 3 on a recorded trace; returns the evidence.

    ``variant`` is ``"enhanced"`` or ``"basic"``.  Raises
    :class:`AssertionError` naming the first offending step, or
    :class:`ValueError` if the trace contains no Arnoldi steps (a trace
    from an unsolved / non-Krylov run proves nothing).
    """
    expected = EXPECTED_EXCHANGES[variant]
    counts = exchanges_per_step(trace)
    if not counts:
        raise ValueError("trace contains no arnoldi_step spans")
    for idx, count in counts.items():
        assert count == expected, (
            f"claim-3 violation: arnoldi_step span #{idx} has {count} "
            f"interface exchanges, expected {expected} for the "
            f"{variant} variant"
        )
    return {"per_step": counts, "expected": expected, "variant": variant}
