"""Span-based tracing and per-iteration metrics for solver runs.

The observability layer has exactly two implementations of one tiny
protocol:

``NullTracer``
    The default.  Every method is a no-op and ``enabled`` is a class
    attribute equal to ``False``, so instrumented hot loops hoist a
    single ``traced = tracer.enabled`` bool per solve and pay one local
    branch per site — nothing is allocated and the overhead is bench-
    asserted below 2% (``benchmarks/test_trace_overhead_bench.py``).

``Tracer``
    Records **nested spans** (begin/end pairs with wall-clock
    timestamps), a **metrics stream** (one dict per appended sample,
    e.g. per-iteration relative residuals and CommStats deltas), and
    **per-rank wall time** accumulated by the comm backends' rank
    bodies.  Export formats:

    - ``to_dict()`` — the canonical ``repro-trace/1`` JSON schema
      (see docs/OBSERVABILITY.md),
    - ``to_chrome_trace()`` — Chrome trace event format, loadable in
      Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Span vocabulary (``cat`` / ``name``) — the names the invariant checker
and the CLI summarizer rely on:

========== ================== ==========================================
cat        name               emitted by
========== ================== ==========================================
phase      setup              PreparedSystem.build
phase      partition          element/node partitioning
phase      assemble           subdomain assembly + distributed scaling
phase      precond_build      make_preconditioner
phase      solve              the whole Krylov solve
phase      verify             driver ground-truth verification
solver     cycle              one restart cycle
solver     arnoldi_step       one Arnoldi step (inner iteration j)
solver     matvec             local mat-vec inside a step
solver     precond_apply      preconditioner application (z = M^-1 v)
solver     coarse_solve       two-level coarse correction (restrict +
                              redundant dense solve + prolong); nests the
                              coarse allreduce
solver     orthogonalize      CGS/MGS orthogonalization (+ its exchanges)
solver     givens_update      least-squares/Givens column update
exchange   interface_assemble nearest-neighbour interface assembly
exchange   halo_exchange      RDD halo exchange
reduction  allreduce_sum      tree allreduce (never counts for claim 3)
comm       rank_op            one resident rank-op dispatch to the
                              process pool (args carry the op name)
========== ================== ==========================================

Spans are stored in *begin* order as plain dicts with a ``parent``
index (-1 for roots), so parent links are valid even though a parent
ends after its children.
"""

from __future__ import annotations

import json
import time

__all__ = [
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
    "chrome_trace_from_dict",
    "timed_rank_body",
]

TRACE_SCHEMA = "repro-trace/1"


class NullTracer:
    """Do-nothing tracer: the zero-cost-when-off fast path.

    ``enabled`` is a **class** attribute so the per-call guard in the
    comm layer (``if self.tracer.enabled``) is a plain attribute load.
    """

    enabled = False

    def begin(self, name, cat="span", **args):
        """Discard the span; -1 is never a valid parent index."""
        return -1

    def end(self, **args):
        """No-op."""

    def metric(self, **fields):
        """No-op."""

    def ensure_ranks(self, n):
        """No-op."""

    def add_rank_time(self, rank, seconds):
        """No-op."""

    def add_worker_time(self, worker, seconds):
        """No-op."""


#: Shared singleton — comm objects and solvers default to this.
NULL_TRACER = NullTracer()


class Tracer:
    """Recording tracer: nested spans + metrics stream + rank timings.

    Not thread-safe for concurrent ``begin``/``end`` (spans are emitted
    from the orchestrator thread only); ``add_rank_time`` writes are
    per-rank-disjoint so ThreadComm workers may call it concurrently.
    """

    enabled = True

    def __init__(self, meta=None):
        self._t0 = time.perf_counter()
        self._stack = []
        self.spans = []
        self.metrics = []
        self.rank_seconds = []
        self.worker_seconds = []
        self.meta = dict(meta or {})

    # -- spans ---------------------------------------------------------
    def begin(self, name, cat="span", **args):
        """Open a span; returns its index (its id in ``parent`` links)."""
        idx = len(self.spans)
        parent = self._stack[-1] if self._stack else -1
        self.spans.append({
            "name": name,
            "cat": cat,
            "ts": time.perf_counter() - self._t0,
            "dur": 0.0,
            "parent": parent,
            "depth": len(self._stack),
            "args": dict(args) if args else {},
        })
        self._stack.append(idx)
        return idx

    def end(self, **args):
        """Close the innermost open span, merging ``args`` into it."""
        if not self._stack:
            raise RuntimeError("Tracer.end() with no open span")
        idx = self._stack.pop()
        span = self.spans[idx]
        span["dur"] = (time.perf_counter() - self._t0) - span["ts"]
        if args:
            span["args"].update(args)
        return idx

    def span(self, name, cat="span", **args):
        """Context-manager convenience: ``with trc.span("setup"): ...``."""
        return _SpanCtx(self, name, cat, args)

    # -- metrics -------------------------------------------------------
    def metric(self, **fields):
        """Append one sample to the metrics stream."""
        self.metrics.append(fields)

    # -- per-rank timing ----------------------------------------------
    def ensure_ranks(self, n):
        """Grow the per-rank accumulator to at least ``n`` entries."""
        if len(self.rank_seconds) < n:
            self.rank_seconds.extend(
                0.0 for _ in range(n - len(self.rank_seconds))
            )

    def add_rank_time(self, rank, seconds):
        """Accumulate wall seconds spent executing ``rank``'s body."""
        self.ensure_ranks(rank + 1)
        self.rank_seconds[rank] += seconds

    def add_worker_time(self, worker, seconds):
        """Accumulate busy seconds of a pool worker *process* (resident
        rank ops only; inline rank bodies never touch this)."""
        if len(self.worker_seconds) < worker + 1:
            self.worker_seconds.extend(
                0.0 for _ in range(worker + 1 - len(self.worker_seconds))
            )
        self.worker_seconds[worker] += seconds

    # -- export --------------------------------------------------------
    def to_dict(self):
        """The canonical ``repro-trace/1`` document."""
        return {
            "schema": TRACE_SCHEMA,
            "meta": dict(self.meta),
            "spans": [dict(s, args=dict(s["args"])) for s in self.spans],
            "metrics": [dict(m) for m in self.metrics],
            "rank_seconds": list(self.rank_seconds),
            "worker_seconds": list(self.worker_seconds),
        }

    def to_chrome_trace(self):
        """Chrome trace event dict — load in Perfetto/chrome://tracing."""
        return chrome_trace_from_dict(self.to_dict())

    def write_json(self, path, chrome=False):
        """Dump the trace to ``path``; ``chrome=True`` selects the
        Chrome trace event format instead of ``repro-trace/1``."""
        doc = self.to_chrome_trace() if chrome else self.to_dict()
        with open(path, "w") as fh:
            json.dump(doc, fh, indent=1)
        return path


class _SpanCtx:
    __slots__ = ("_trc", "_name", "_cat", "_args")

    def __init__(self, trc, name, cat, args):
        self._trc = trc
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self):
        self._trc.begin(self._name, self._cat, **self._args)
        return self._trc

    def __exit__(self, exc_type, exc, tb):
        self._trc.end()
        return False


def chrome_trace_from_dict(trace):
    """Convert a ``repro-trace/1`` dict to Chrome trace event format.

    Spans become complete events (``ph: "X"``, microsecond timestamps)
    on the orchestrator track; metrics samples with an ``iteration``
    field become counter events; per-rank totals become one complete
    event per rank track so Perfetto shows the rank occupancy at a
    glance.
    """
    if trace.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"not a {TRACE_SCHEMA} document: {trace.get('schema')!r}"
        )
    events = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": "repro orchestrator"},
    }]
    for span in trace["spans"]:
        events.append({
            "name": span["name"],
            "cat": span["cat"],
            "ph": "X",
            "ts": span["ts"] * 1e6,
            "dur": span["dur"] * 1e6,
            "pid": 0,
            "tid": 0,
            "args": dict(span["args"]),
        })
    for sample in trace["metrics"]:
        if "rel_res" in sample and "iteration" in sample:
            events.append({
                "name": "rel_res",
                "ph": "C",
                "ts": float(sample["iteration"]) * 1e3,
                "pid": 1,
                "tid": 0,
                "args": {"rel_res": sample["rel_res"]},
            })
    for rank, seconds in enumerate(trace["rank_seconds"]):
        events.append({
            "name": f"rank{rank} busy",
            "cat": "rank",
            "ph": "X",
            "ts": 0.0,
            "dur": seconds * 1e6,
            "pid": 2,
            "tid": rank,
            "args": {"rank": rank, "seconds": seconds},
        })
    for worker, seconds in enumerate(trace.get("worker_seconds", [])):
        events.append({
            "name": f"worker{worker} busy",
            "cat": "worker",
            "ph": "X",
            "ts": 0.0,
            "dur": seconds * 1e6,
            "pid": 3,
            "tid": worker,
            "args": {"worker": worker, "seconds": seconds},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def timed_rank_body(tracer, body):
    """Wrap a per-rank closure so its wall time lands in ``tracer``.

    Per-rank writes are disjoint (rank r only touches slot r), so the
    wrapper is safe under ThreadComm's worker pool without locking.
    """
    def timed(rank):
        start = time.perf_counter()
        try:
            return body(rank)
        finally:
            tracer.add_rank_time(rank, time.perf_counter() - start)

    return timed
