"""``python -m repro`` entry point.

The ``__main__`` guard is load-bearing: the ``process`` comm backend
spawns workers with the ``spawn`` start method, whose children re-import
the parent's main module — without the guard every worker would re-run
the CLI instead of parking on its command pipe.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
