"""Classical least-squares polynomial preconditioner with Jacobi weights.

Section 2.1.3 names "least-squares" among the polynomial methods the GLS
construction generalizes.  The classical method (Saad) minimizes
:math:`\\|1-\\lambda P(\\lambda)\\|_w` on a *single* interval ``(0, h)``
under the Jacobi weight

.. math:: w^{(\\alpha,\\beta)}(\\lambda)
          = (h-\\lambda)^{\\alpha}\\,\\lambda^{\\beta},

with Saad's recommended :math:`(\\alpha,\\beta) = (1/2, -1/2)` — unlike
GLS it cannot handle interval unions (indefinite problems), which is
exactly the paper's case for GLS.  Construction reuses the Stieltjes
machinery of :mod:`repro.precond.gls` on a Gauss-Jacobi discrete measure.
"""

from __future__ import annotations

import numpy as np
from scipy.special import roots_jacobi

from repro.precond.base import PolynomialPreconditioner
from repro.precond.gls import _stieltjes
from repro.spectrum.intervals import SpectrumIntervals


class LeastSquaresPolynomial(PolynomialPreconditioner):
    """Degree-``m`` least-squares polynomial on one interval ``(lo, hi)``.

    Parameters
    ----------
    theta:
        Single positive interval.
    degree:
        Polynomial degree ``m``.
    alpha, beta:
        Jacobi weight exponents; the (0.5, -0.5) default is the classical
        choice that damps the residual hardest near ``lambda = 0``.
    n_quad:
        Gauss-Jacobi points (defaults scale with the degree).
    """

    def __init__(
        self,
        theta: SpectrumIntervals,
        degree: int,
        alpha: float = 0.5,
        beta: float = -0.5,
        n_quad: int | None = None,
        matvec=None,
    ):
        super().__init__(degree, matvec)
        if theta.n_intervals != 1:
            raise ValueError(
                "classical least-squares needs a single interval; "
                "use GLSPolynomial for unions"
            )
        if alpha <= -1 or beta <= -1:
            raise ValueError("Jacobi exponents must exceed -1")
        self.theta = theta
        lo, hi = theta.lo, theta.hi
        if n_quad is None:
            n_quad = max(4 * (degree + 2), 64)
        # Gauss-Jacobi on (-1,1) for (1-t)^alpha (1+t)^beta, mapped to
        # (lo, hi): lambda = lo + (hi-lo)(t+1)/2 so that beta weights the
        # lambda->lo end and alpha the lambda->hi end.
        t, w = roots_jacobi(n_quad, alpha, beta)
        nodes = lo + (hi - lo) * (t + 1.0) / 2.0
        weights = w
        self._alphas, self._betas = _stieltjes(
            nodes, weights * nodes * nodes, degree
        )
        mus = np.zeros(degree + 1)
        phi_prev = np.zeros_like(nodes)
        phi = np.ones_like(nodes) / self._betas[0]
        for i in range(degree + 1):
            mus[i] = float(np.sum(weights * nodes * phi))
            if i < degree:
                nxt = (
                    (nodes - self._alphas[i]) * phi - self._betas[i] * phi_prev
                ) / self._betas[i + 1]
                phi_prev, phi = phi, nxt
        self._mus = mus

    def apply_linear(self, matvec, v, out=None):
        """Same three-term recurrence as GLS — ``degree`` matvecs; shares
        the zero-allocation workspace fast path."""
        if self._use_fast_path(matvec, v):
            return self._three_term_apply(
                matvec, v, out, self._alphas, self._betas, self._mus,
                self.degree,
            )
        a, b, mu = self._alphas, self._betas, self._mus
        phi_prev = None
        phi = (1.0 / b[0]) * v
        z = mu[0] * phi
        for i in range(self.degree):
            nxt = matvec(phi) - a[i] * phi
            if phi_prev is not None:
                nxt = nxt - b[i] * phi_prev
            nxt = (1.0 / b[i + 1]) * nxt
            z = z + mu[i + 1] * nxt
            phi_prev, phi = phi, nxt
        return self._finish(z, out)

    def power_coefficients(self) -> np.ndarray:
        """Power-basis coefficients via the recurrence on polynomials."""
        a, b, mu = self._alphas, self._betas, self._mus
        lam = np.polynomial.Polynomial([0.0, 1.0])
        phi_prev = np.polynomial.Polynomial([0.0])
        phi = np.polynomial.Polynomial([1.0 / b[0]])
        total = mu[0] * phi
        for i in range(self.degree):
            nxt = ((lam - a[i]) * phi - b[i] * phi_prev) / b[i + 1]
            total = total + mu[i + 1] * nxt
            phi_prev, phi = phi, nxt
        out = np.zeros(self.degree + 1)
        out[: len(total.coef)] = total.coef
        return out

    @property
    def name(self) -> str:
        return f"LS({self.degree})"

    @property
    def spec(self) -> str:
        """Round-trippable spec string, e.g. ``"ls(7)"``."""
        return f"ls({self.degree})"
