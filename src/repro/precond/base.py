"""Preconditioner interfaces.

Polynomial preconditioners carry a small reusable workspace so that the
NumPy fast path of ``apply_linear`` performs **zero array allocations per
degree**: the recurrences run over preallocated ping-pong buffers and the
matvec writes into a workspace via ``out=`` whenever the supplied matvec
supports it (detected with :func:`repro.sparse.kernels.accepts_out`).
Distributed vector types (``DistVector``, ``_RDDVector``) keep using the
generic arithmetic recurrence unchanged, so the per-application exchange
counts of the EDD/RDD drivers (Table 1) are untouched.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.sparse.kernels import accepts_out


class SingularPreconditionerError(RuntimeError):
    """Raised when a preconditioner construction hits a (numerically)
    singular pivot — the failure mode local ILU(k) exhibits on floating
    subdomains (Section 3.2.3, Eq. 45)."""


class Preconditioner(abc.ABC):
    """Left preconditioner ``C ≈ A^{-1}`` applied as ``z = C v``."""

    @abc.abstractmethod
    def apply(self, v: np.ndarray) -> np.ndarray:
        """Return ``z = C v``."""

    @property
    def name(self) -> str:
        """Short display name, e.g. ``GLS(7)``."""
        return type(self).__name__

    @property
    def spec(self) -> str:
        """Round-trippable spec string:
        ``repro.precond.spec.make_preconditioner(p.spec)`` rebuilds an
        equivalent preconditioner.  Families without a spec grammar raise
        ``NotImplementedError``."""
        raise NotImplementedError(
            f"{type(self).__name__} has no spec-string form"
        )

    def as_operator(self):
        """The preconditioner as a plain callable ``v -> C v``."""
        return self.apply


class IdentityPreconditioner(Preconditioner):
    """No preconditioning: ``z = v``."""

    def apply(self, v: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Return a copy of ``v`` (the identity map); writes into ``out``
        when given."""
        if out is not None:
            out[:] = v
            return out
        return np.array(v, dtype=np.float64, copy=True)

    @property
    def name(self) -> str:
        return "I"


class PolynomialPreconditioner(Preconditioner):
    """Base for preconditioners of the form ``z = P_m(A) v``.

    Subclasses implement :meth:`apply_linear`, which performs the ``m``
    matvec recurrence against an *abstract* matvec callable; ``apply``
    simply binds it to the construction-time matrix.  The distributed
    solvers feed a communicating matvec into ``apply_linear`` and the same
    recurrence becomes Algorithm 7.
    """

    def __init__(self, degree: int, matvec=None):
        if degree < 0:
            raise ValueError("polynomial degree must be >= 0")
        self.degree = int(degree)
        self._matvec = matvec

    @abc.abstractmethod
    def apply_linear(self, matvec, v, out=None):
        """Compute ``P_m(A) v`` with ``A`` given only through ``matvec``.

        ``v`` may be any object supporting numpy-style arithmetic
        (``+``, ``-``, scalar ``*``, ``copy()``), allowing distributed
        vector types.  When ``v`` is a 1-D ``ndarray`` and ``matvec``
        accepts ``out=``, implementations run an allocation-free workspace
        recurrence and write the result into ``out`` (allocated when
        None).  ``out`` is only meaningful for ndarray inputs.
        """

    @abc.abstractmethod
    def power_coefficients(self) -> np.ndarray:
        """Coefficients ``a_0..a_m`` of ``P_m`` in the power basis;
        consumed by the Eq. 24 stability bound."""

    def apply(self, v: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Apply ``P_m(A) v`` through the construction-time bound matvec."""
        if self._matvec is None:
            raise RuntimeError(
                "preconditioner was built without a bound matrix; "
                "use apply_linear(matvec, v)"
            )
        return self.apply_linear(
            self._matvec, np.asarray(v, dtype=np.float64), out=out
        )

    # ------------------------------------------------------------------
    # Workspace fast-path plumbing (zero allocations per degree)
    # ------------------------------------------------------------------
    @staticmethod
    def _use_fast_path(matvec, v) -> bool:
        """ndarray input + out=-capable matvec -> workspace recurrence.

        Applies to 1-D vectors and ``(n, k)`` multi-vector blocks alike;
        for a block input the supplied ``matvec`` must itself accept
        ``(n, k)`` arrays (an SpMM such as ``CSRMatrix.matmat``), so one
        polynomial sweep updates all ``k`` columns.
        """
        return (
            isinstance(v, np.ndarray)
            and v.ndim in (1, 2)
            and accepts_out(matvec)
        )

    def _workspace(self, shape, count: int) -> np.ndarray:
        """``count`` reusable buffers of ``shape`` (``(n,)`` or ``(n, k)``),
        cached across applications (leading-axis slices of one array)."""
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        ws = self.__dict__.get("_ws")
        if ws is None or ws.shape[0] < count or ws.shape[1:] != shape:
            ws = np.empty((count,) + shape)
            self._ws = ws
        return ws

    @staticmethod
    def _finish(z, out):
        """Copy a generic-path result into ``out`` when requested."""
        if out is not None and isinstance(z, np.ndarray):
            out[:] = z
            return out
        return z

    def chain_terms(self):
        """Picklable recurrence descriptor for resident fused dispatch.

        Returns ``(kind, params)`` when the family's generic-path
        recurrence can be mirrored worker-side from plain coefficients
        (``repro.parallel.resident`` ships it in a single ``chain`` rank
        op, cutting per-apply round-trips from O(degree) to O(1)), or
        None to keep the per-matvec dispatch path.  The worker recurrence
        must stay token-identical to :meth:`apply_linear`'s generic path.
        """
        return None

    def _three_term_apply(self, matvec, v, out, alphas, betas, mus, degree):
        """Workspace Stieltjes recurrence ``z = sum_i mu_i phi_i(A) v``.

        Shared by the GLS and plain least-squares polynomials.  Four
        ping-pong buffers; every step is one ``matvec`` into a workspace
        plus in-place AXPY-style updates — zero allocations per degree.
        Safe when ``out`` aliases ``v`` (``v`` is consumed before ``out``
        is first written).  ``v`` may be 1-D or an ``(n, k)`` block (the
        recurrence is elementwise apart from the matvec, so each column
        evolves exactly as a separate 1-D application would).
        """
        ws = self._workspace(v.shape, 4)
        phi_prev, phi, w, tmp = ws[0], ws[1], ws[2], ws[3]
        np.multiply(v, 1.0 / betas[0], out=phi)
        if out is None:
            out = np.empty(v.shape)
        np.multiply(phi, mus[0], out=out)
        phi_prev[:] = 0.0
        for i in range(degree):
            matvec(phi, out=w)
            np.multiply(phi, alphas[i], out=tmp)
            np.subtract(w, tmp, out=w)
            np.multiply(phi_prev, betas[i], out=tmp)
            np.subtract(w, tmp, out=w)
            np.multiply(w, 1.0 / betas[i + 1], out=w)
            np.multiply(w, mus[i + 1], out=tmp)
            np.add(out, tmp, out=out)
            phi_prev, phi, w = phi, w, phi_prev
        return out

    def evaluate(self, lam) -> np.ndarray:
        """Evaluate the scalar polynomial ``P_m`` on an array of points
        (runs the same recurrence as ``apply_linear`` with scalar
        multiplication as the 'matvec')."""
        lam = np.asarray(lam, dtype=np.float64)
        return self.apply_linear(lambda x: lam * x, np.ones_like(lam))

    def residual(self, lam) -> np.ndarray:
        """The residual polynomial ``1 - lambda * P_m(lambda)`` whose
        smallness over :math:`\\Theta` is the preconditioner's quality
        measure (Eq. 7; Figs. 1-2)."""
        lam = np.asarray(lam, dtype=np.float64)
        return 1.0 - lam * self.evaluate(lam)
