"""Preconditioner interfaces."""

from __future__ import annotations

import abc

import numpy as np


class SingularPreconditionerError(RuntimeError):
    """Raised when a preconditioner construction hits a (numerically)
    singular pivot — the failure mode local ILU(k) exhibits on floating
    subdomains (Section 3.2.3, Eq. 45)."""


class Preconditioner(abc.ABC):
    """Left preconditioner ``C ≈ A^{-1}`` applied as ``z = C v``."""

    @abc.abstractmethod
    def apply(self, v: np.ndarray) -> np.ndarray:
        """Return ``z = C v``."""

    @property
    def name(self) -> str:
        """Short display name, e.g. ``GLS(7)``."""
        return type(self).__name__

    def as_operator(self):
        """The preconditioner as a plain callable ``v -> C v``."""
        return self.apply


class IdentityPreconditioner(Preconditioner):
    """No preconditioning: ``z = v``."""

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Return a copy of ``v`` (the identity map)."""
        return np.array(v, dtype=np.float64, copy=True)

    @property
    def name(self) -> str:
        return "I"


class PolynomialPreconditioner(Preconditioner):
    """Base for preconditioners of the form ``z = P_m(A) v``.

    Subclasses implement :meth:`apply_linear`, which performs the ``m``
    matvec recurrence against an *abstract* matvec callable; ``apply``
    simply binds it to the construction-time matrix.  The distributed
    solvers feed a communicating matvec into ``apply_linear`` and the same
    recurrence becomes Algorithm 7.
    """

    def __init__(self, degree: int, matvec=None):
        if degree < 0:
            raise ValueError("polynomial degree must be >= 0")
        self.degree = int(degree)
        self._matvec = matvec

    @abc.abstractmethod
    def apply_linear(self, matvec, v):
        """Compute ``P_m(A) v`` with ``A`` given only through ``matvec``.

        ``v`` may be any object supporting numpy-style arithmetic
        (``+``, ``-``, scalar ``*``, ``copy()``), allowing distributed
        vector types.
        """

    @abc.abstractmethod
    def power_coefficients(self) -> np.ndarray:
        """Coefficients ``a_0..a_m`` of ``P_m`` in the power basis;
        consumed by the Eq. 24 stability bound."""

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Apply ``P_m(A) v`` through the construction-time bound matvec."""
        if self._matvec is None:
            raise RuntimeError(
                "preconditioner was built without a bound matrix; "
                "use apply_linear(matvec, v)"
            )
        return self.apply_linear(self._matvec, np.asarray(v, dtype=np.float64))

    def evaluate(self, lam) -> np.ndarray:
        """Evaluate the scalar polynomial ``P_m`` on an array of points
        (runs the same recurrence as ``apply_linear`` with scalar
        multiplication as the 'matvec')."""
        lam = np.asarray(lam, dtype=np.float64)
        return self.apply_linear(lambda x: lam * x, np.ones_like(lam))

    def residual(self, lam) -> np.ndarray:
        """The residual polynomial ``1 - lambda * P_m(lambda)`` whose
        smallness over :math:`\\Theta` is the preconditioner's quality
        measure (Eq. 7; Figs. 1-2)."""
        lam = np.asarray(lam, dtype=np.float64)
        return 1.0 - lam * self.evaluate(lam)
