"""Block-Jacobi / additive-Schwarz preconditioner for the RDD solver.

Section 4.1.2: the preconditioners used with row-based decompositions in
pARMS/PSPARSLIB/Aztec are "extensions of the block Jacobi method whose
kernel is to solve the local system  K_loc z = v" — each rank solves with
its diagonal block and no communication.  Here the local solve is an
ILU(0) application (the standard choice), giving the baseline the paper's
RDD competitors actually ship with.

Note the contrast with EDD exploited by the paper: a *principal submatrix*
of an SPD matrix is SPD, so RDD's local blocks never go singular — the
floating-subdomain breakdown is specific to EDD's unassembled Neumann-type
local matrices.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.precond.base import Preconditioner
from repro.precond.ilu import ILU0Preconditioner

#: Resident-state keys; a fresh key per instance so worker-side aux
#: caches can never confuse two preconditioners' factors.
_RESIDENT_KEYS = itertools.count(1)


class BlockJacobiILU(Preconditioner):
    """Per-rank ILU(0) solves on the diagonal blocks of an RDD system.

    Parameters
    ----------
    system:
        A built :class:`repro.core.rdd.RDDSystem`; one ILU(0)
        factorization per rank's ``a_loc`` block is computed up front.
    """

    def __init__(self, system):
        self._system = system
        self._local = [ILU0Preconditioner(a) for a in system.a_loc]
        self._resident_key = f"bj-ilu0-{next(_RESIDENT_KEYS)}"

    def _resident_states(self) -> list:
        """Per-rank ILU0 factor state for worker-resident execution: the
        combined L/U CSR factor plus the diagonal-position/split tables
        the backend triangular-solve kernel consumes."""
        states = []
        for r, ilu in enumerate(self._local):
            lu = ilu._lu
            states.append(
                {
                    "kind": "aux",
                    "arrays": {
                        "indptr": lu.indptr,
                        "indices": lu.indices,
                        "data": lu.data,
                        "diag_pos": ilu._diag_pos,
                        "split": ilu._split,
                    },
                    "meta": {"rank": r, "key": self._resident_key},
                }
            )
        return states

    def apply_parts(self, v_parts: list) -> list:
        """Apply per rank: ``z^(s) = ILU0(K_loc^(s)) v^(s)`` — zero
        communication (the defining property of block Jacobi).  Charges
        each rank the triangular-solve flops (~2 nnz).  Under a resident
        engine the factors live worker-side and the P solves run as ONE
        ``prec`` dispatch, bit-identical to the inline loop."""
        engine = self._system.rank_engine()
        if engine.resident:
            return engine.prec_apply(self, v_parts)
        out = []
        for r, (ilu, v) in enumerate(zip(self._local, v_parts)):
            out.append(ilu.apply(v))
            self._system.comm.add_flops(r, 2 * self._system.a_loc[r].nnz)
        return out

    def apply_parts_block(self, v_parts: list) -> list:
        """Batched per-rank application over ``(n_own, k)`` blocks.

        The triangular solves are inherently per-column, so this loops
        columns through :meth:`apply_parts` column views; column ``c`` of
        the result is bit-identical to ``apply_parts`` of column ``c``.
        """
        k = v_parts[0].shape[1]
        out = [np.empty_like(v) for v in v_parts]
        for c in range(k):
            cols = self.apply_parts([np.ascontiguousarray(v[:, c]) for v in v_parts])
            for o, z in zip(out, cols):
                o[:, c] = z
        return out

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Global-vector interface (scatter, solve, gather) for sequential
        use and testing."""
        v = np.asarray(v, dtype=np.float64)
        parts = [v[o] for o in self._system.own]
        z_parts = self.apply_parts(parts)
        out = np.zeros(self._system.n_global)
        for o, z in zip(self._system.own, z_parts):
            out[o] = z
        return out

    @property
    def name(self) -> str:
        return f"BJ-ILU0(P={self._system.n_parts})"

    @property
    def spec(self) -> str:
        """Round-trippable spec string (``"bj-ilu0"``; rebuilding needs
        the RDD system, which the driver supplies)."""
        return "bj-ilu0"
