"""SSOR preconditioner — an additional factorization-free baseline.

Symmetric successive over-relaxation:

.. math:: C^{-1} = \\frac{\\omega}{2-\\omega}
          \\left(\\frac{D}{\\omega}+L\\right) D^{-1}
          \\left(\\frac{D}{\\omega}+U\\right),

applied through one forward and one backward triangular sweep over the
matrix itself (no stored factorization, but — unlike the polynomial
preconditioners — it needs *assembled* rows, so like ILU(0) it does not
fit the unassembled EDD setting; it is used in the sequential ablation
benches).
"""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner, SingularPreconditionerError
from repro.sparse.csr import CSRMatrix


class SSORPreconditioner(Preconditioner):
    """SSOR with relaxation factor ``omega`` in (0, 2)."""

    def __init__(self, a: CSRMatrix, omega: float = 1.0):
        if a.shape[0] != a.shape[1]:
            raise ValueError("square matrix required")
        if not 0.0 < omega < 2.0:
            raise ValueError("omega must lie in (0, 2)")
        self.omega = float(omega)
        diag = a.diagonal()
        if np.any(diag == 0.0):
            raise SingularPreconditionerError("zero diagonal entry")
        n = a.shape[0]
        self._n = n
        self._diag = diag
        # Sorted-column copy with per-row diagonal split positions.
        self._a = a.copy()
        indptr, indices, data = (
            self._a.indptr,
            self._a.indices,
            self._a.data,
        )
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            order = np.argsort(indices[lo:hi], kind="stable")
            indices[lo:hi] = indices[lo:hi][order]
            data[lo:hi] = data[lo:hi][order]
        self._split = np.empty(n, dtype=np.int64)
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            self._split[i] = lo + int(np.searchsorted(indices[lo:hi], i))

    def apply(self, v: np.ndarray) -> np.ndarray:
        """``z = omega (2-omega) (D+omega U)^{-1} D (D+omega L)^{-1} v`` —
        the inverse of the standard SSOR splitting matrix
        :math:`M = \\frac{1}{\\omega(2-\\omega)}(D+\\omega L)D^{-1}(D+\\omega U)`."""
        n = self._n
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (n,):
            raise ValueError("vector length mismatch")
        w = self.omega
        indptr, indices, data = (
            self._a.indptr,
            self._a.indices,
            self._a.data,
        )
        diag = self._diag
        # Forward sweep: (D + w L) y = v   (L strictly lower, from A itself).
        y = np.empty(n)
        for i in range(n):
            lo, s = indptr[i], self._split[i]
            acc = v[i]
            if s > lo:
                acc -= w * (data[lo:s] @ y[indices[lo:s]])
            y[i] = acc / diag[i]
        # Middle factor: t = D y.
        t = diag * y
        # Backward sweep: (D + w U) z = t.
        z = np.empty(n)
        for i in range(n - 1, -1, -1):
            lo, hi = indptr[i], indptr[i + 1]
            s = self._split[i]
            u_lo = s + 1 if s < hi and indices[s] == i else s
            acc = t[i]
            if hi > u_lo:
                acc -= w * (data[u_lo:hi] @ z[indices[u_lo:hi]])
            z[i] = acc / diag[i]
        return w * (2.0 - w) * z

    @property
    def name(self) -> str:
        return f"SSOR({self.omega:g})"
