"""Chebyshev polynomial preconditioner (single-interval comparison point).

For SPD spectra in ``(lo, hi)`` the min-max residual polynomial is the
shifted-and-scaled Chebyshev polynomial

.. math:: R_m(\\lambda) = T_m\\!\\left(\\frac{hi+lo-2\\lambda}{hi-lo}\\right)
          \\Big/ T_m\\!\\left(\\frac{hi+lo}{hi-lo}\\right),

and the preconditioner is :math:`P_{m-1}(\\lambda) = (1-R_m(\\lambda))/\\lambda`.
The paper lists Chebyshev among the classical alternatives the GLS method
generalizes (it cannot handle interval unions / indefinite spectra); we
include it for the ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.precond.base import PolynomialPreconditioner
from repro.spectrum.intervals import SpectrumIntervals


class ChebyshevPolynomial(PolynomialPreconditioner):
    """Degree-``m`` Chebyshev preconditioner on one positive interval.

    ``degree`` is the degree of ``P`` (the residual Chebyshev polynomial
    has degree ``degree + 1``), so the per-application matvec count matches
    the other polynomial preconditioners of equal ``degree``.
    """

    def __init__(self, theta: SpectrumIntervals, degree: int, matvec=None):
        super().__init__(degree, matvec)
        if theta.n_intervals != 1:
            raise ValueError(
                "Chebyshev preconditioning needs a single interval; "
                "use GLSPolynomial for interval unions"
            )
        lo, hi = theta.lo, theta.hi
        if lo <= 0:
            raise ValueError("Chebyshev preconditioning needs a positive interval")
        self.theta = theta
        m = degree + 1
        # Chebyshev residual R_m in the power basis via numpy's Chebyshev
        # class, mapped from [-1,1] to [lo,hi] by t = (hi+lo-2*lambda)/(hi-lo).
        t_m = np.polynomial.Chebyshev.basis(m)
        center = (hi + lo) / (hi - lo)
        scale = -2.0 / (hi - lo)
        # R(lambda) = T_m(center + scale*lambda) / T_m(center)
        mapped = t_m(np.polynomial.Polynomial([center, scale]))
        denom = float(t_m(center))
        r = mapped / denom
        r_coef = np.zeros(m + 1)
        r_coef[: len(r.coef)] = r.coef
        # P = (1 - R)/lambda : exact division since R(0) = 1... R(0) is
        # T_m(center)/T_m(center) only when scale*0 drops out -> R(0)=1. The
        # constant term of 1-R is therefore 0 and the shift-down is exact.
        num = -r_coef
        num[0] += 1.0
        if abs(num[0]) > 1e-9:
            raise AssertionError("Chebyshev residual must satisfy R(0)=1")
        self._coef = num[1:].copy()

    def apply_linear(self, matvec, v, out=None):
        """Horner evaluation ``z = (a_0 + a_1 A + ... + a_m A^m) v`` —
        ``degree`` matvecs.

        NumPy inputs with an ``out=``-capable matvec evaluate Horner over
        two cached buffers (``v`` is staged into one of them first, so
        ``out`` may alias ``v``): zero allocations per degree.
        """
        coef = self._coef
        if self._use_fast_path(matvec, v):
            ws = self._workspace(v.shape, 2)
            vv, t = ws[0], ws[1]
            vv[:] = v
            if out is None:
                out = np.empty(v.shape)
            np.multiply(vv, coef[-1], out=out)
            for c in coef[-2::-1]:
                matvec(out, out=t)
                np.multiply(vv, c, out=out)
                np.add(out, t, out=out)
            return out
        z = coef[-1] * v
        for c in coef[-2::-1]:
            z = matvec(z) + c * v
        return self._finish(z, out)

    def chain_terms(self):
        """Resident fused-dispatch descriptor (see base class): the
        worker replays the Horner sweep ``z <- Az + c*v``."""
        return ("cheb", {"coef": [float(c) for c in self._coef]})

    def power_coefficients(self) -> np.ndarray:
        """Power-basis coefficients of ``P`` (already stored that way)."""
        return self._coef.copy()

    @property
    def name(self) -> str:
        return f"Cheb({self.degree})"

    @property
    def spec(self) -> str:
        """Round-trippable spec string, e.g. ``"cheb(5)"``."""
        return f"cheb({self.degree})"
