"""Preconditioners (Section 2).

The paper's pipeline is: norm-1 diagonal scaling (maps the spectrum into
``(0, 1)``), then a *polynomial* preconditioner — Neumann series or
generalized least-squares (GLS) — applied as a chain of matvecs.  ILU(0),
Jacobi and Chebyshev preconditioners are provided as the comparison
baselines the paper measures against.

Polynomial preconditioners expose two application paths: ``apply(v)`` bound
to a CSR matrix for sequential solves, and ``apply_linear(matvec, v)``
parameterized over an abstract matvec so the distributed EDD/RDD solvers
can run the identical recurrence with communicating operators.

:mod:`repro.precond.coarse` adds a two-level composite — any of the above
as the fine-level preconditioner plus an algebraic partition-of-unity
coarse correction — selected with the ``"2l(inner[,mode][,tr])"`` spec
(see :data:`repro.precond.spec.SPEC_GRAMMAR`).
"""

from repro.precond.base import (
    Preconditioner,
    IdentityPreconditioner,
    SingularPreconditionerError,
)
from repro.precond.diagonal import JacobiPreconditioner
from repro.precond.scaling import ScaledSystem, norm1_scaling, scale_system
from repro.precond.neumann import NeumannPolynomial
from repro.precond.gls import GLSPolynomial
from repro.precond.least_squares import LeastSquaresPolynomial
from repro.precond.block_jacobi import BlockJacobiILU
from repro.precond.degree_selection import (
    DegreeEstimate,
    choose_degree,
    choose_degree_for_system,
)
from repro.precond.chebyshev import ChebyshevPolynomial
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.ssor import SSORPreconditioner
from repro.precond.stability import (
    coefficient_error_bound,
    stability_curve,
)
from repro.precond.spec import SPEC_GRAMMAR, make_preconditioner, spec_of
from repro.precond.coarse import TwoLevelPreconditioner, TwoLevelSpec

__all__ = [
    "make_preconditioner",
    "spec_of",
    "SPEC_GRAMMAR",
    "TwoLevelPreconditioner",
    "TwoLevelSpec",
    "Preconditioner",
    "IdentityPreconditioner",
    "SingularPreconditionerError",
    "JacobiPreconditioner",
    "ScaledSystem",
    "norm1_scaling",
    "scale_system",
    "NeumannPolynomial",
    "GLSPolynomial",
    "LeastSquaresPolynomial",
    "BlockJacobiILU",
    "DegreeEstimate",
    "choose_degree",
    "choose_degree_for_system",
    "ChebyshevPolynomial",
    "ILU0Preconditioner",
    "SSORPreconditioner",
    "coefficient_error_bound",
    "stability_curve",
]
