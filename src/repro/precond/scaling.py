"""Norm-1 diagonal scaling (Section 2.1.1).

The indispensable pre-processing step: with :math:`d_i = \\|k_i\\|_1` and
:math:`D = \\mathrm{diag}(1/\\sqrt{d_i})`, the scaled system
:math:`A = DKD,\\; b = Df,\\; x = D^{-1}u` has (by Theorem 1 / Gershgorin)
:math:`\\sigma(A) \\subset (0, 1]` for symmetric positive definite
:math:`K`, so polynomial preconditioners can be built once and for all on
:math:`\\Theta = (0, 1)`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import scale_symmetric, scaled_matvec


def norm1_scaling(k: CSRMatrix) -> np.ndarray:
    """The scaling vector :math:`1/\\sqrt{d_i}` of Eq. 9.

    Raises if any row is entirely zero (the matrix would be reducible with
    an isolated DOF and the scaling undefined).
    """
    d = k.row_norms1()
    if np.any(d == 0.0):
        raise ValueError("zero row encountered; cannot norm-1 scale")
    return 1.0 / np.sqrt(d)


class ScaledOperator:
    """The scaled operator :math:`DKD` applied matrix-free.

    Computes :math:`y = D\\,(K\\,(D x))` with the fused kernel of
    :func:`repro.sparse.ops.scaled_matvec` — never materializing the
    scaled matrix.  Accepts ``out=`` and reuses an internal gather buffer,
    so steady-state applications are allocation-free; this is the operator
    to hand to the Krylov/polynomial hot loops when the scaled matrix
    itself is not needed (e.g. transient re-scaling, ablation sweeps).
    """

    __slots__ = ("k", "d", "_work")

    def __init__(self, k: CSRMatrix, d: np.ndarray):
        d = np.asarray(d, dtype=np.float64)
        if d.shape != (k.shape[0],) or k.shape[0] != k.shape[1]:
            raise ValueError("ScaledOperator needs a square K and matching d")
        self.k = k
        self.d = d
        self._work = np.empty(k.shape[0])

    @property
    def shape(self):
        return self.k.shape

    @property
    def nnz(self) -> int:
        return self.k.nnz

    def matvec(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """``out = D K D x`` (fused; zero allocations when ``out`` given)."""
        return scaled_matvec(self.d, self.k, self.d, x, out=out, work=self._work)

    __call__ = matvec


@dataclass
class ScaledSystem:
    """The transformed system ``A x = b`` of Eq. 11 plus its back-map.

    Attributes
    ----------
    a:
        Scaled matrix :math:`A = DKD`.
    b:
        Scaled right-hand side :math:`b = Df`.
    d:
        The scaling vector (diagonal of :math:`D`).
    k:
        The original (unscaled) matrix, kept for the matrix-free
        :meth:`operator`; ``None`` for systems built before scaling.
    """

    a: CSRMatrix
    b: np.ndarray
    d: np.ndarray
    k: CSRMatrix | None = None

    def operator(self) -> ScaledOperator:
        """The fused matrix-free :math:`DKD` operator (requires ``k``)."""
        if self.k is None:
            raise ValueError("ScaledSystem was built without the unscaled K")
        return ScaledOperator(self.k, self.d)

    def unscale_solution(self, x: np.ndarray) -> np.ndarray:
        """Recover the original unknowns :math:`u = D x`."""
        x = np.asarray(x, dtype=np.float64)
        if x.shape != self.d.shape:
            raise ValueError("vector length mismatch")
        return self.d * x

    def scale_initial_guess(self, u0: np.ndarray) -> np.ndarray:
        """Map an initial guess of ``u`` into the scaled unknowns
        :math:`x_0 = D^{-1} u_0`."""
        u0 = np.asarray(u0, dtype=np.float64)
        if u0.shape != self.d.shape:
            raise ValueError("vector length mismatch")
        return u0 / self.d


def scale_system(k: CSRMatrix, f: np.ndarray) -> ScaledSystem:
    """Apply norm-1 diagonal scaling to ``K u = f`` (Algorithm 4, steps 1-2)."""
    f = np.asarray(f, dtype=np.float64)
    if f.shape != (k.shape[0],):
        raise ValueError("rhs length mismatch")
    d = norm1_scaling(k)
    return ScaledSystem(a=scale_symmetric(k, d), b=d * f, d=d, k=k)
