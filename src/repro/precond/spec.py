"""Preconditioner spec strings: parsing and round-tripping.

A *spec* is a short string naming a preconditioner family and its degree,
e.g. ``"gls(7)"`` — the notation the paper's tables use.  This module is
the public home of :func:`make_preconditioner` (re-exported by
:mod:`repro.core.driver` for backwards compatibility); every constructed
preconditioner carries a ``spec`` property such that
``make_preconditioner(p.spec)`` rebuilds an equivalent preconditioner
(with the default spectrum window).

Accepted grammar (case-insensitive; see :data:`SPEC_GRAMMAR`):

* ``None`` / ``"none"`` — no preconditioning.
* ``"gls(m)"`` — generalized least-squares polynomial of degree ``m``.
* ``"neumann(m)"`` — Neumann series of degree ``m``.
* ``"cheb(m)"`` — Chebyshev residual polynomial of degree ``m``.
* ``"ls(m)"`` — classical Jacobi-weight least-squares of degree ``m``.
* ``"bj-ilu0"`` — block-Jacobi ILU(0) (RDD only); returned as the marker
  string because it needs a built system to construct.
* ``"2l(inner[,additive|deflate][,tr])"`` — two-level composite: any of
  the above as the fine-level preconditioner plus an algebraic coarse
  correction (:mod:`repro.precond.coarse`); returned as a
  :class:`~repro.precond.coarse.TwoLevelSpec` marker because the coarse
  space needs a built system.

Malformed specs raise :class:`ValueError` whose message names the
accepted grammar — the CLI relies on this for its rc-2 diagnostics.
"""

from __future__ import annotations

from repro.spectrum.intervals import SpectrumIntervals

#: The marker :func:`make_preconditioner` returns for block-Jacobi ILU —
#: resolution into a real preconditioner needs the built RDD system.
BJ_ILU0_MARKER = "bj-ilu0"

#: One-line statement of the accepted spec grammar, appended to every
#: parse error (and printed by ``repro solve`` on a bad ``--precond``).
SPEC_GRAMMAR = (
    "accepted preconditioner specs: 'none', 'gls(m)', 'neumann(m)', "
    "'cheb(m)', 'ls(m)', 'bj-ilu0', or the two-level composite "
    "'2l(inner[,additive|deflate][,tr])' with any of the former as inner "
    "— m a non-negative integer, e.g. 'gls(7)', '2l(neumann(20),deflate)'"
)

#: Degree-family prefixes -> (module, class) for lazy construction.
_DEGREE_FAMILIES = {
    "gls": ("repro.precond.gls", "GLSPolynomial", True),
    "neumann": ("repro.precond.neumann", "NeumannPolynomial", False),
    "cheb": ("repro.precond.chebyshev", "ChebyshevPolynomial", True),
    "ls": ("repro.precond.least_squares", "LeastSquaresPolynomial", True),
}


def _parse_degree(text: str, spec: str) -> int:
    try:
        m = int(text)
    except ValueError:
        raise ValueError(
            f"malformed degree {text.strip()!r} in preconditioner spec "
            f"{spec!r}; {SPEC_GRAMMAR}"
        ) from None
    if m < 0:
        raise ValueError(
            f"negative degree {m} in preconditioner spec {spec!r}; "
            f"{SPEC_GRAMMAR}"
        )
    return m


def _split_args(body: str) -> list:
    """Split a composite-spec body on top-level commas (commas inside
    nested parentheses belong to the inner spec)."""
    args, depth, start = [], 0, 0
    for i, ch in enumerate(body):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "," and depth == 0:
            args.append(body[start:i].strip())
            start = i + 1
    args.append(body[start:].strip())
    return args


def _parse_two_level(spec: str, theta):
    from repro.precond.coarse import TWO_LEVEL_MODES, TwoLevelSpec

    body = spec[3:-1].strip()
    args = _split_args(body) if body else []
    if not args or not args[0]:
        raise ValueError(
            f"two-level spec {spec!r} needs an inner preconditioner, e.g. "
            f"'2l(gls(7))'; {SPEC_GRAMMAR}"
        )
    inner_raw = args[0]
    if inner_raw.startswith("2l("):
        raise ValueError(
            f"two-level specs cannot be nested (got {spec!r}); "
            f"{SPEC_GRAMMAR}"
        )
    mode, enrich = "additive", False
    mode_set = False
    for tok in args[1:]:
        if tok in TWO_LEVEL_MODES and not mode_set:
            mode, mode_set = tok, True
        elif tok == "tr" and not enrich:
            enrich = True
        else:
            raise ValueError(
                f"unknown or repeated two-level option {tok!r} in spec "
                f"{spec!r} (expected 'additive', 'deflate' or 'tr'); "
                f"{SPEC_GRAMMAR}"
            )
    inner = make_preconditioner(inner_raw, theta)  # validates inner_raw
    return TwoLevelSpec(inner_spec=spec_of(inner), mode=mode, enrich=enrich)


def make_preconditioner(spec: str | None, theta: SpectrumIntervals | None = None):
    """Parse a preconditioner spec string (grammar: :data:`SPEC_GRAMMAR`).

    Polynomial specs return ready preconditioners.  ``"bj-ilu0"``
    (block-Jacobi ILU, RDD only) returns the spec marker and
    ``"2l(...)"`` composites a :class:`~repro.precond.coarse.TwoLevelSpec`
    marker — both are resolved later against the built system by
    :class:`repro.core.session.PreparedSystem` / the EDD/RDD solvers.
    ``theta`` defaults to the post-scaling window :math:`(10^{-6}, 1)`.

    Raises :class:`ValueError` naming the accepted grammar on any
    unknown or malformed spec.
    """
    if spec is None:
        return None
    if not isinstance(spec, str):
        raise ValueError(
            f"preconditioner spec must be a string or None, got "
            f"{type(spec).__name__}; {SPEC_GRAMMAR}"
        )
    if theta is None:
        theta = SpectrumIntervals.single(1e-6, 1.0)
    spec = spec.strip().lower()
    if spec == "none":
        return None
    if spec == BJ_ILU0_MARKER:
        return BJ_ILU0_MARKER
    if spec.startswith("2l(") and spec.endswith(")"):
        return _parse_two_level(spec, theta)
    for prefix, (mod_name, cls_name, takes_theta) in _DEGREE_FAMILIES.items():
        if spec.startswith(prefix + "(") and spec.endswith(")"):
            degree = _parse_degree(spec[len(prefix) + 1:-1], spec)
            import importlib

            cls = getattr(importlib.import_module(mod_name), cls_name)
            return cls(theta, degree) if takes_theta else cls(degree)
    raise ValueError(f"unknown preconditioner spec {spec!r}; {SPEC_GRAMMAR}")


def spec_of(precond) -> str:
    """The round-trippable spec string of a preconditioner (or ``"none"``).

    Accepts None, the ``"bj-ilu0"`` marker, a
    :class:`~repro.precond.coarse.TwoLevelSpec` marker, or any object
    with a ``spec`` property.
    """
    if precond is None:
        return "none"
    if isinstance(precond, str):
        return precond
    return precond.spec
