"""Preconditioner spec strings: parsing and round-tripping.

A *spec* is a short string naming a preconditioner family and its degree,
e.g. ``"gls(7)"`` — the notation the paper's tables use.  This module is
the public home of :func:`make_preconditioner` (re-exported by
:mod:`repro.core.driver` for backwards compatibility); every constructed
preconditioner carries a ``spec`` property such that
``make_preconditioner(p.spec)`` rebuilds an equivalent preconditioner
(with the default spectrum window).

Accepted grammar (case-insensitive):

* ``None`` / ``"none"`` — no preconditioning.
* ``"gls(m)"`` — generalized least-squares polynomial of degree ``m``.
* ``"neumann(m)"`` — Neumann series of degree ``m``.
* ``"cheb(m)"`` — Chebyshev residual polynomial of degree ``m``.
* ``"ls(m)"`` — classical Jacobi-weight least-squares of degree ``m``.
* ``"bj-ilu0"`` — block-Jacobi ILU(0) (RDD only); returned as the marker
  string because it needs a built system to construct.
"""

from __future__ import annotations

from repro.spectrum.intervals import SpectrumIntervals

#: The marker :func:`make_preconditioner` returns for block-Jacobi ILU —
#: resolution into a real preconditioner needs the built RDD system.
BJ_ILU0_MARKER = "bj-ilu0"


def make_preconditioner(spec: str | None, theta: SpectrumIntervals | None = None):
    """Parse a preconditioner spec string.

    ``"gls(7)"``, ``"neumann(20)"``, ``"cheb(5)"``, ``"ls(7)"`` and
    ``None``/``"none"`` are accepted — the preconditioners applicable to
    distributed unassembled systems.  ``"bj-ilu0"`` (block-Jacobi ILU,
    RDD only) is resolved later by :func:`repro.core.driver.solve_cantilever`
    since it needs the built system; here it returns the spec marker.
    ``theta`` defaults to the post-scaling window :math:`(10^{-6}, 1)`.
    """
    if spec is None or spec == "none":
        return None
    if theta is None:
        theta = SpectrumIntervals.single(1e-6, 1.0)
    spec = spec.strip().lower()
    if spec.startswith("gls(") and spec.endswith(")"):
        from repro.precond.gls import GLSPolynomial

        return GLSPolynomial(theta, int(spec[4:-1]))
    if spec.startswith("neumann(") and spec.endswith(")"):
        from repro.precond.neumann import NeumannPolynomial

        return NeumannPolynomial(int(spec[8:-1]))
    if spec.startswith("cheb(") and spec.endswith(")"):
        from repro.precond.chebyshev import ChebyshevPolynomial

        return ChebyshevPolynomial(theta, int(spec[5:-1]))
    if spec.startswith("ls(") and spec.endswith(")"):
        from repro.precond.least_squares import LeastSquaresPolynomial

        return LeastSquaresPolynomial(theta, int(spec[3:-1]))
    if spec == BJ_ILU0_MARKER:
        return BJ_ILU0_MARKER
    raise ValueError(f"unknown preconditioner spec {spec!r}")


def spec_of(precond) -> str:
    """The round-trippable spec string of a preconditioner (or ``"none"``).

    Accepts None, the ``"bj-ilu0"`` marker, or any object with a ``spec``
    property.
    """
    if precond is None:
        return "none"
    if isinstance(precond, str):
        return precond
    return precond.spec
