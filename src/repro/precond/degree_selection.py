"""A-priori polynomial degree selection.

Table 3's closing remark: "a trade-off between convergence performance and
CPU time should be made" — GLS(10) converges in fewer iterations than
GLS(7) but each iteration costs three more matvecs.  This module makes the
trade-off *predictive* instead of empirical:

* convergence rate: the preconditioned operator's spectrum lies in the
  range of :math:`\\lambda P_m(\\lambda)` over :math:`\\Theta`, so its
  condition number :math:`\\kappa_m` is the max/min of that function on a
  fine grid, and the classical Krylov bound gives
  :math:`\\mathrm{iters}(m) \\approx \\lceil \\tfrac{1}{2}\\sqrt{\\kappa_m}
  \\ln(2/tol)\\rceil` — which *saturates* as the degree grows, unlike the
  Richardson sup-norm bound, producing the interior optimum Table 3
  observes;
* cost per iteration: the Table 1 collective counts and the per-rank
  matvec flops, priced by a machine model.

``choose_degree`` evaluates candidates and returns the predicted-cheapest
one.  The prediction is a bound, not an equality — the bench checks it
ranks degrees correctly, which is all the selection needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

import numpy as np

from repro.parallel.machine import MachineModel
from repro.precond.gls import GLSPolynomial
from repro.spectrum.intervals import SpectrumIntervals


@dataclass(frozen=True)
class DegreeEstimate:
    """Prediction for one candidate degree.

    Attributes
    ----------
    degree:
        Candidate polynomial degree.
    kappa:
        Condition-number estimate of the preconditioned operator
        (``inf`` when the polynomial loses definiteness on Theta).
    iterations:
        Predicted iterations to the tolerance.
    time:
        Predicted solve time on the machine model, seconds.
    """

    degree: int
    kappa: float
    iterations: int
    time: float


def estimate_degree_cost(
    theta: SpectrumIntervals,
    degree: int,
    tol: float,
    machine: MachineModel,
    nnz_per_rank: float,
    n_per_rank: float,
    exchange_words: float,
    n_neighbors: float,
    n_ranks: int,
) -> DegreeEstimate:
    """Predict iterations and time for one GLS degree.

    ``nnz_per_rank``/``n_per_rank`` size the local matvec and vector work;
    ``exchange_words``/``n_neighbors`` size one interface assembly from
    one rank's perspective.
    """
    g = GLSPolynomial(theta, degree)
    grid = theta.sample(400)
    s = grid * g.evaluate(grid)
    if s.min() <= 0:
        kappa = float("inf")
        iters = 10**9
    else:
        kappa = float(s.max() / s.min())
        iters = max(1, math.ceil(0.5 * math.sqrt(kappa) * math.log(2.0 / tol)))
    # Per Arnoldi step (enhanced EDD): degree+1 matvecs + exchanges,
    # 2 allreduces, ~2*restart/2 axpys on average — model the dominant
    # terms only.
    matvec_t = 2.0 * nnz_per_rank / machine.flop_rate
    exch_t = n_neighbors * machine.latency + exchange_words * (
        machine.word_bytes / machine.bandwidth
    )
    red_t = 2.0 * machine.reduce_time(n_ranks, 8)
    gs_t = 2.0 * 12 * 2.0 * n_per_rank / machine.flop_rate  # ~12 avg basis
    per_iter = (degree + 1) * (matvec_t + exch_t) + red_t + gs_t
    return DegreeEstimate(
        degree=degree, kappa=kappa, iterations=iters, time=iters * per_iter
    )


def choose_degree(
    theta: SpectrumIntervals,
    tol: float,
    machine: MachineModel,
    nnz_per_rank: float,
    n_per_rank: float,
    exchange_words: float,
    n_neighbors: float,
    n_ranks: int,
    candidates=(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
) -> tuple:
    """Return ``(best_degree, [DegreeEstimate...])`` over the candidates."""
    estimates = [
        estimate_degree_cost(
            theta,
            m,
            tol,
            machine,
            nnz_per_rank,
            n_per_rank,
            exchange_words,
            n_neighbors,
            n_ranks,
        )
        for m in candidates
    ]
    best = min(estimates, key=lambda e: e.time)
    return best.degree, estimates


def choose_degree_for_system(
    system,
    machine: MachineModel,
    tol: float = 1e-6,
    theta: SpectrumIntervals | None = None,
    candidates=(1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
) -> tuple:
    """Convenience wrapper extracting the size parameters from a built
    :class:`~repro.core.distributed.EDDSystem`."""
    if theta is None:
        theta = SpectrumIntervals.single(1e-6, 1.0)
    nnz = max(a.nnz for a in system.a_local)
    n_loc = float(system.submap.local_sizes.max())
    words = max(
        system.submap.exchange_words(s) for s in range(system.n_parts)
    )
    nbrs = max(
        len(system.submap.neighbors(s)) for s in range(system.n_parts)
    )
    return choose_degree(
        theta,
        tol,
        machine,
        nnz_per_rank=nnz,
        n_per_rank=n_loc,
        exchange_words=words,
        n_neighbors=nbrs,
        n_ranks=system.n_parts,
        candidates=candidates,
    )
