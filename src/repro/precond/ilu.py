"""ILU(0) — incomplete LU with zero fill-in (the paper's serial baseline).

The paper's comparison preconditioner (Figs. 11-12) and the motivating
failure case for EDD: a subdomain matrix :math:`\\hat K^{(s)}` without
enough Dirichlet support "floats" and is singular, so its local ILU
factorization breaks down (Section 3.2.3) while polynomial preconditioning
— built only from the spectrum window — keeps working.
"""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner, SingularPreconditionerError
from repro.sparse.csr import CSRMatrix


def ilu0_factor(a: CSRMatrix, pivot_tol: float = 0.0) -> CSRMatrix:
    """In-pattern LU factorization (IKJ variant).

    Returns a single CSR holding ``L`` (strictly lower, unit diagonal
    implied) and ``U`` (upper including diagonal) in the pattern of ``a``.
    Raises :class:`SingularPreconditionerError` on a zero/tiny pivot, which
    is exactly how a floating-subdomain matrix manifests.
    """
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError("square matrix required")
    lu = a.copy()
    indptr, indices, data = lu.indptr, lu.indices, lu.data
    # Sort columns within each row (factorization scans them in order).
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        order = np.argsort(indices[lo:hi], kind="stable")
        indices[lo:hi] = indices[lo:hi][order]
        data[lo:hi] = data[lo:hi][order]
    # Position of each (row, col) entry for the in-pattern updates.
    pos = {}
    diag_pos = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        for p in range(indptr[i], indptr[i + 1]):
            j = int(indices[p])
            pos[(i, j)] = p
            if j == i:
                diag_pos[i] = p
    if np.any(diag_pos < 0):
        raise SingularPreconditionerError("missing diagonal entry in pattern")
    scale = float(np.max(np.abs(data))) if len(data) else 1.0
    tiny = max(pivot_tol, 1e-14) * max(scale, 1e-300)
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        for p in range(lo, hi):
            k = int(indices[p])
            if k >= i:
                break
            pivot = data[diag_pos[k]]
            if abs(pivot) <= tiny:
                raise SingularPreconditionerError(
                    f"zero pivot at row {k}; local matrix is singular "
                    "(floating subdomain?)"
                )
            lik = data[p] / pivot
            data[p] = lik
            # Subtract lik * U[k, j] for j > k present in row i's pattern.
            for q in range(diag_pos[k] + 1, indptr[k + 1]):
                j = int(indices[q])
                tgt = pos.get((i, j))
                if tgt is not None:
                    data[tgt] -= lik * data[q]
        if abs(data[diag_pos[i]]) <= tiny:
            raise SingularPreconditionerError(
                f"zero pivot at row {i}; local matrix is singular "
                "(floating subdomain?)"
            )
    return lu


class ILU0Preconditioner(Preconditioner):
    """``z = U^{-1} L^{-1} v`` with in-pattern ``L``, ``U`` from
    :func:`ilu0_factor`."""

    def __init__(self, a: CSRMatrix):
        self._lu = ilu0_factor(a)
        n = a.shape[0]
        indptr, indices = self._lu.indptr, self._lu.indices
        self._diag_pos = np.empty(n, dtype=np.int64)
        self._split = np.empty(n, dtype=np.int64)
        for i in range(n):
            lo, hi = indptr[i], indptr[i + 1]
            d = lo + int(np.searchsorted(indices[lo:hi], i))
            self._diag_pos[i] = d
            self._split[i] = d

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Forward/backward triangular solves through the stored factors."""
        lu = self._lu
        n = lu.shape[0]
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (n,):
            raise ValueError("vector length mismatch")
        indptr, indices, data = lu.indptr, lu.indices, lu.data
        z = v.copy()
        # Forward solve  L z = v  (unit lower triangular).
        for i in range(n):
            lo, d = indptr[i], self._split[i]
            if d > lo:
                z[i] -= data[lo:d] @ z[indices[lo:d]]
        # Backward solve  U z = z.
        for i in range(n - 1, -1, -1):
            d, hi = self._diag_pos[i], indptr[i + 1]
            s = z[i]
            if hi > d + 1:
                s -= data[d + 1 : hi] @ z[indices[d + 1 : hi]]
            z[i] = s / data[d]
        return z

    @property
    def name(self) -> str:
        return "ILU(0)"
