"""ILU(0) — incomplete LU with zero fill-in (the paper's serial baseline).

The paper's comparison preconditioner (Figs. 11-12) and the motivating
failure case for EDD: a subdomain matrix :math:`\\hat K^{(s)}` without
enough Dirichlet support "floats" and is singular, so its local ILU
factorization breaks down (Section 3.2.3) while polynomial preconditioning
— built only from the spectrum window — keeps working.
"""

from __future__ import annotations

import numpy as np

from repro.precond.base import Preconditioner, SingularPreconditionerError
from repro.sparse import kernels
from repro.sparse.csr import CSRMatrix


def ilu0_factor(a: CSRMatrix, pivot_tol: float = 0.0) -> CSRMatrix:
    """In-pattern LU factorization (IKJ variant).

    Returns a single CSR holding ``L`` (strictly lower, unit diagonal
    implied) and ``U`` (upper including diagonal) in the pattern of ``a``.
    Raises :class:`SingularPreconditionerError` on a zero/tiny pivot, which
    is exactly how a floating-subdomain matrix manifests.
    """
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError("square matrix required")
    lu = a.copy()
    indptr, indices, data = lu.indptr, lu.indices, lu.data
    # Sort columns within each row (factorization scans them in order).
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        order = np.argsort(indices[lo:hi], kind="stable")
        indices[lo:hi] = indices[lo:hi][order]
        data[lo:hi] = data[lo:hi][order]
    # Position of each (row, col) entry for the in-pattern updates.
    pos = {}
    diag_pos = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        for p in range(indptr[i], indptr[i + 1]):
            j = int(indices[p])
            pos[(i, j)] = p
            if j == i:
                diag_pos[i] = p
    if np.any(diag_pos < 0):
        raise SingularPreconditionerError("missing diagonal entry in pattern")
    scale = float(np.max(np.abs(data))) if len(data) else 1.0
    tiny = max(pivot_tol, 1e-14) * max(scale, 1e-300)
    for i in range(n):
        lo, hi = indptr[i], indptr[i + 1]
        for p in range(lo, hi):
            k = int(indices[p])
            if k >= i:
                break
            pivot = data[diag_pos[k]]
            if abs(pivot) <= tiny:
                raise SingularPreconditionerError(
                    f"zero pivot at row {k}; local matrix is singular "
                    "(floating subdomain?)"
                )
            lik = data[p] / pivot
            data[p] = lik
            # Subtract lik * U[k, j] for j > k present in row i's pattern.
            for q in range(diag_pos[k] + 1, indptr[k + 1]):
                j = int(indices[q])
                tgt = pos.get((i, j))
                if tgt is not None:
                    data[tgt] -= lik * data[q]
        if abs(data[diag_pos[i]]) <= tiny:
            raise SingularPreconditionerError(
                f"zero pivot at row {i}; local matrix is singular "
                "(floating subdomain?)"
            )
    return lu


def diag_positions(lu: CSRMatrix) -> np.ndarray:
    """Index of each row's diagonal entry in a row-sorted CSR factor.

    One searchsorted over the whole (row-sorted) index array: the key
    ``rows*n + indices`` is globally sorted, so the diagonal of row ``i``
    is the insertion point of ``i*(n+1)``.  :func:`ilu0_factor`
    guarantees every diagonal exists, so the insertion point is an exact
    hit.  This replaces the per-row Python scan that used to dominate
    preconditioner setup on large blocks.
    """
    n = lu.shape[0]
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(lu.indptr))
    key = rows * np.int64(n) + lu.indices
    return np.searchsorted(
        key, np.arange(n, dtype=np.int64) * np.int64(n + 1)
    ).astype(np.int64)


class ILU0Preconditioner(Preconditioner):
    """``z = U^{-1} L^{-1} v`` with in-pattern ``L``, ``U`` from
    :func:`ilu0_factor`."""

    def __init__(self, a: CSRMatrix):
        self._lu = ilu0_factor(a)
        self._diag_pos = diag_positions(self._lu)
        self._split = self._diag_pos.copy()

    def apply(self, v: np.ndarray) -> np.ndarray:
        """Forward/backward triangular solves through the stored factors,
        dispatched to the active kernel backend (``repro.sparse.kernels``)."""
        lu = self._lu
        n = lu.shape[0]
        v = np.asarray(v, dtype=np.float64)
        if v.shape != (n,):
            raise ValueError("vector length mismatch")
        z = v.copy()
        kernels.get_backend().ilu0_solve(
            lu.indptr, lu.indices, lu.data, self._diag_pos, self._split, z
        )
        return z

    @property
    def name(self) -> str:
        return "ILU(0)"
