"""Two-level preconditioning: algebraic coarse-space correction.

One-level preconditioners act locally (block Jacobi) or through a short
matvec chain (polynomials); neither moves information across the whole
domain in one application, so iteration counts degrade as the subdomain
count ``P`` grows — the golden records pin BJ-ILU0 blowing up to 64
iterations at ``P = 8`` on Mesh2.  The classical cure is a *coarse grid*:
a tiny ``P x P`` (or ``P k x P k``) Galerkin projection of the operator
that couples every subdomain in a single cheap solve.

Construction (all at setup, nothing charged to the solve counters):

* **Coarse space** ``R0`` — one partition-of-unity aggregate vector per
  subdomain: weight ``1/multiplicity(i)`` on subdomain ``s``'s DOFs for
  EDD (so the columns sum to the global all-ones vector), the ownership
  indicator for RDD (disjoint rows, multiplicity 1).  The optional
  ``tr`` enrichment splits each aggregate into ``dofs_per_node``
  per-component translation vectors — the rigid-body translation modes
  of the elasticity nullspace restricted to the aggregate.
* **Galerkin operator** ``E = R0 A R0^T`` — assembled serially from the
  per-rank matrix blocks (sum of ``(B_s W)^T A^(s) (B_s W)`` terms) and
  Cholesky-factorized once; every rank keeps the (tiny, dense) factor and
  solves redundantly, the standard trade for avoiding a sequential
  bottleneck rank.

Application modes (selected from the spec, Section "two-level" of
DESIGN.md):

* ``additive``:  ``z = M1 v + R0^T E^-1 R0 v`` — one extra coarse-length
  allreduce per application on top of the one-level cost.
* ``deflate``:   ``q = R0^T E^-1 R0 v``; ``z = q + M1 (v - A q)`` — the
  deflation/balancing form; one extra *operator* application per apply
  (an exchange), but the one-level preconditioner then only sees the
  deflated residual, which is what restores near-P-independence for
  strong local preconditioners.

Communication cost per application: ONE allreduce of ``n_coarse``
(times ``k`` for blocks) words — restriction is rank-local against the
ownership-masked basis, the redundant dense solve replicates, and
prolongation is rank-local against the consistent global-distributed
basis.  The whole correction is traced as a ``coarse_solve`` span
(nested inside ``precond_apply``) whose allreduce child reconciles
exactly with the ``CommStats`` reduction charges.

Degeneration: at ``P = 1`` without enrichment the coarse space is the
single global aggregate — a rank-one correction with no cross-subdomain
information to restore — so it is dropped entirely and the two-level
preconditioner is *bit-compatible* with its inner one-level
preconditioner (the parity the golden tests pin).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.precond.base import Preconditioner

#: Accepted application modes of a two-level spec.
TWO_LEVEL_MODES = ("additive", "deflate")

#: Resident-state keys; a fresh key per instance so worker-side aux
#: caches can never confuse two preconditioners' coarse state.
_RESIDENT_KEYS = itertools.count(1)


@dataclass(frozen=True)
class TwoLevelSpec:
    """Parsed-but-unbound two-level spec (the composite analogue of the
    ``"bj-ilu0"`` marker string): constructing the coarse space needs the
    built distributed system, so :func:`repro.precond.spec.make_preconditioner`
    returns this marker and the session/solvers resolve it through
    :meth:`TwoLevelPreconditioner.build`.

    Attributes
    ----------
    inner_spec:
        Canonical spec string of the one-level (fine) preconditioner —
        any non-composite spec the grammar accepts, including ``"none"``
        and ``"bj-ilu0"`` (RDD only).
    mode:
        ``"additive"`` or ``"deflate"``.
    enrich:
        Whether each aggregate is enriched with per-component translation
        (rigid-body) modes.
    """

    inner_spec: str
    mode: str = "additive"
    enrich: bool = False

    @property
    def spec(self) -> str:
        """Round-trippable canonical spec string."""
        parts = [self.inner_spec]
        if self.mode != "additive":
            parts.append(self.mode)
        if self.enrich:
            parts.append("tr")
        return f"2l({','.join(parts)})"


def _coarse_basis(
    n_global: int, dof_sets: list, weights: list, components, enrich: bool
) -> np.ndarray:
    """The dense ``(n_global, n_coarse)`` coarse basis ``W = R0^T``.

    ``dof_sets[s]`` / ``weights[s]`` give subdomain ``s``'s global DOFs
    and partition-of-unity weights.  Without enrichment, one column per
    subdomain; with it, ``n_components`` columns per subdomain (the
    aggregate split by DOF component — per-component translations).
    """
    if enrich:
        n_comp = int(components.max()) + 1
        w = np.zeros((n_global, len(dof_sets) * n_comp))
        for s, (g, ws) in enumerate(zip(dof_sets, weights)):
            comp = components[g]
            for c in range(n_comp):
                m = comp == c
                w[g[m], s * n_comp + c] = ws[m]
    else:
        w = np.zeros((n_global, len(dof_sets)))
        for s, (g, ws) in enumerate(zip(dof_sets, weights)):
            w[g, s] = ws
    return w


def _factor(e: np.ndarray, spec: TwoLevelSpec):
    """Factor the Galerkin operator once (Cholesky — ``E`` inherits SPD
    from the scaled operator; LU fallback covers near-rank-deficient
    enriched spaces)."""
    import scipy.linalg

    try:
        return ("cho", scipy.linalg.cho_factor(e))
    except np.linalg.LinAlgError:
        pass
    except scipy.linalg.LinAlgError:  # pragma: no cover - alias on newer scipy
        pass
    lu = scipy.linalg.lu_factor(e)
    if not np.all(np.isfinite(lu[0])):
        raise ValueError(
            f"two-level spec {spec.spec!r}: coarse operator E is singular "
            "(linearly dependent coarse-space columns); drop the enrichment "
            "or change the partition"
        )
    return ("lu", lu)


class TwoLevelPreconditioner(Preconditioner):
    """A one-level preconditioner composed with a coarse-space correction,
    bound to a built EDD or RDD system.

    Build through :meth:`build`; apply through the solver-facing
    ``apply_edd`` / ``apply_edd_block`` / ``apply_rdd`` /
    ``apply_rdd_block`` entry points (the EDD/RDD ``_precondition``
    dispatchers call these).
    """

    def __init__(self, system, inner, spec, *, is_edd, wg_parts, wl_parts,
                 factor, n_coarse, trivial):
        self._system = system
        self._inner = inner
        self._spec = spec
        self._is_edd = is_edd
        #: Consistent (global-distributed / owned-rows) basis per rank,
        #: used by the prolongation.
        self._wg_parts = wg_parts
        #: Ownership-masked basis per rank, used by the restriction (for
        #: RDD ownership is disjoint so this aliases ``_wg_parts``).
        self._wl_parts = wl_parts
        self._factor = factor
        self.n_coarse = n_coarse
        self._trivial = trivial
        self._resident_key = f"2l-{next(_RESIDENT_KEYS)}"

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, system, spec: TwoLevelSpec, components=None,
              theta=None) -> "TwoLevelPreconditioner":
        """Bind ``spec`` to a built system: resolve the inner
        preconditioner, assemble the coarse basis and the Galerkin
        operator ``E = W^T A W``, and factor it.

        ``components`` — per global free DOF, its DOF component index
        (``0..dofs_per_node-1``); required only for the ``tr``
        enrichment (the session supplies it from the problem's mesh/BC;
        direct solver calls without it get a clear error).
        """
        from repro.precond.spec import BJ_ILU0_MARKER, make_preconditioner

        is_edd = hasattr(system, "submap")
        inner = make_preconditioner(spec.inner_spec, theta)
        if inner == BJ_ILU0_MARKER:
            if is_edd:
                raise ValueError(
                    "two-level inner 'bj-ilu0' is a local assembled-block "
                    "preconditioner; it only applies to the rdd method"
                )
            from repro.precond.block_jacobi import BlockJacobiILU

            inner = BlockJacobiILU(system)

        if spec.enrich and components is None:
            raise ValueError(
                f"two-level spec {spec.spec!r}: the 'tr' enrichment needs "
                "per-DOF component information; build through "
                "PreparedSystem/solve_cantilever (which supply it) or pass "
                "components= explicitly"
            )

        trivial = system.n_parts == 1 and not spec.enrich
        if trivial:
            return cls(
                system, inner, spec, is_edd=is_edd, wg_parts=None,
                wl_parts=None, factor=None, n_coarse=0, trivial=True,
            )

        if components is not None:
            components = np.asarray(components, dtype=np.int64)

        if is_edd:
            submap = system.submap
            dof_sets = submap.l2g
            weights = [1.0 / submap.multiplicity[g] for g in dof_sets]
            w = _coarse_basis(
                system.n_global, dof_sets, weights, components, spec.enrich
            )
            # Consistent global-distributed basis blocks (prolongation)
            # and their ownership-masked forms (restriction): the mixed
            # format pair that makes <W_l, v_hat> the true dot (Eq. 33).
            wg_parts = [np.ascontiguousarray(w[g]) for g in submap.l2g]
            wl_parts = [
                np.ascontiguousarray(p * m[:, None])
                for p, m in zip(wg_parts, system.owner_mask)
            ]
            # E = sum_s (B_s W)^T A^(s) (B_s W): serial setup arithmetic,
            # deliberately outside the comm layer (nothing charged, no
            # spans, no chaos call indices consumed).
            e = np.zeros((w.shape[1], w.shape[1]))
            for a, wgs in zip(system.a_local, wg_parts):
                e += wgs.T @ a.matmat(wgs)
        else:
            dof_sets = system.own
            weights = [np.ones(len(o)) for o in system.own]
            w = _coarse_basis(
                system.n_global, dof_sets, weights, components, spec.enrich
            )
            # Ownership is disjoint: the owned-rows blocks serve both the
            # restriction and the prolongation.
            wg_parts = [np.ascontiguousarray(w[o]) for o in system.own]
            wl_parts = wg_parts
            # E = sum_s W[own_s]^T ( A_loc^(s) W[own_s] + A_ext^(s) W[ext_s] ).
            e = np.zeros((w.shape[1], w.shape[1]))
            for a_loc, a_ext, ext, wgs in zip(
                system.a_loc, system.a_ext, system.ext, wg_parts
            ):
                aw = a_loc.matmat(wgs)
                if a_ext.shape[1]:
                    aw = aw + a_ext.matmat(np.ascontiguousarray(w[ext]))
                e += wgs.T @ aw

        return cls(
            system, inner, spec, is_edd=is_edd, wg_parts=wg_parts,
            wl_parts=wl_parts, factor=_factor(e, spec),
            n_coarse=w.shape[1], trivial=False,
        )

    # ------------------------------------------------------------------
    # Coarse solve (shared plumbing)
    # ------------------------------------------------------------------
    def _solve_coarse(self, rhs: np.ndarray) -> np.ndarray:
        """Redundant dense solve of ``E y = rhs`` (every rank, identical
        result — bit-reproducible because the factor is shared)."""
        import scipy.linalg

        kind, factor = self._factor
        if kind == "cho":
            return scipy.linalg.cho_solve(factor, rhs)
        return scipy.linalg.lu_solve(factor, rhs)

    def _resident_states(self) -> list:
        """Resident coarse state: the (small) factorized Galerkin matrix
        broadcast redundantly to every worker (``aux_shared`` — the same
        redundant-solve trade the inline path makes), plus each rank's
        restriction/prolongation basis blocks (``aux``).  Both blocks
        ship even when RDD aliases them: worker-side keys stay uniform
        and the transfer is a one-time setup cost."""
        kind, factor = self._factor
        if kind == "cho":
            c, lower = factor
            shared = {
                "kind": "aux_shared",
                "arrays": {"fmat": c},
                "meta": {
                    "key": self._resident_key,
                    "fkind": "cho",
                    "lower": bool(lower),
                },
            }
        else:
            lu, piv = factor
            shared = {
                "kind": "aux_shared",
                "arrays": {"fmat": lu, "piv": piv.astype(np.int64)},
                "meta": {"key": self._resident_key, "fkind": "lu"},
            }
        states = [shared]
        for r, (wl, wg) in enumerate(zip(self._wl_parts, self._wg_parts)):
            states.append(
                {
                    "kind": "aux",
                    "arrays": {"wl": wl, "wg": wg},
                    "meta": {"rank": r, "key": self._resident_key},
                }
            )
        return states

    def _coarse_correct(self, comm, v_parts: list, k: int | None):
        """The coarse correction ``W E^-1 W^T v`` on raw per-rank parts.

        ``k`` is None for single vectors, the column count for blocks.
        Returns the corrected per-rank parts list.  Cost model: rank-local
        restriction dots, ONE allreduce of ``n_coarse * k`` words, a
        redundant ``O(n_coarse^2)`` dense solve per rank (charged to every
        rank), rank-local prolongation — traced as one ``coarse_solve``
        span so its reductions reconcile with the CommStats charges.
        """
        if k is None:
            engine = self._system.rank_engine()
            if engine.resident:
                # Fused resident correction: restriction bases and the
                # factorized Galerkin matrix live worker-side; ONE
                # dispatch plus the same single coarse allreduce.
                return engine.coarse_correct(self, v_parts)
        nc = self.n_coarse
        wl, wg = self._wl_parts, self._wg_parts
        n_parts = len(wl)
        trc = comm.tracer
        traced = trc.enabled
        if traced:
            trc.begin("coarse_solve", "solver", n_coarse=nc,
                      k=1 if k is None else k)
        shape = (n_parts, nc) if k is None else (n_parts, nc, k)
        partial = np.zeros(shape)

        def restrict_body(r: int) -> None:
            partial[r] = wl[r].T @ v_parts[r]
            comm.add_flops(r, 2 * wl[r].size * (1 if k is None else k))

        comm.run_ranks(
            restrict_body,
            work=2 * sum(p.size for p in wl) * (1 if k is None else k),
        )
        rhs = comm.allreduce_sum(
            list(partial), words=nc * (1 if k is None else k)
        )
        y = self._solve_coarse(rhs)
        # Redundant dense solve: every rank performs the same ~2 nc^2
        # triangular-solve flops (times k columns).
        comm.add_flops_all(
            [2 * nc * nc * (1 if k is None else k)] * n_parts
        )
        out = [None] * n_parts

        def prolong_body(r: int) -> None:
            out[r] = wg[r] @ y
            comm.add_flops(r, 2 * wg[r].size * (1 if k is None else k))

        comm.run_ranks(
            prolong_body,
            work=2 * sum(p.size for p in wg) * (1 if k is None else k),
        )
        if traced:
            trc.end()
        return out

    # ------------------------------------------------------------------
    # EDD application
    # ------------------------------------------------------------------
    def _inner_edd(self, system, v_hat: DistVector) -> DistVector:
        if self._inner is None:
            return v_hat.copy()
        # Route through the EDD dispatcher so a polynomial inner gets the
        # fused resident chain path; never recursive (the inner spec is
        # non-composite by the grammar).
        from repro.core.edd import _precondition

        return _precondition(system, self._inner, v_hat)

    def _inner_edd_block(self, system, v_hat: DistBlock) -> DistBlock:
        if self._inner is None:
            return v_hat.copy()
        return self._inner.apply_linear(system.matvec_assembled_block, v_hat)

    def apply_edd(self, system, v_hat):
        """``z = C_2L v`` on a global-distributed :class:`DistVector`."""
        from repro.core.distributed import DistVector

        if self._trivial:
            return self._inner_edd(system, v_hat)
        comm = system.comm
        if self._spec.mode == "additive":
            z = self._inner_edd(system, v_hat)
            q = DistVector(
                self._coarse_correct(comm, v_hat.parts, None), "global", comm
            )
            return z + q
        q = DistVector(
            self._coarse_correct(comm, v_hat.parts, None), "global", comm
        )
        r = v_hat - system.matvec_assembled(q)
        return self._inner_edd(system, r) + q

    def apply_edd_block(self, system, v_hat):
        """Batched :meth:`apply_edd` over ``(n, k)`` :class:`DistBlock`
        inputs — column-exact, one coalesced coarse allreduce of
        ``n_coarse * k`` words."""
        from repro.core.distributed import DistBlock

        if self._trivial:
            return self._inner_edd_block(system, v_hat)
        comm = system.comm
        if self._spec.mode == "additive":
            z = self._inner_edd_block(system, v_hat)
            q = DistBlock(
                self._coarse_correct(comm, v_hat.parts, v_hat.k),
                "global", comm,
            )
            return z + q
        q = DistBlock(
            self._coarse_correct(comm, v_hat.parts, v_hat.k), "global", comm
        )
        r = v_hat - system.matvec_assembled_block(q)
        return self._inner_edd_block(system, r) + q

    # ------------------------------------------------------------------
    # RDD application
    # ------------------------------------------------------------------
    def _inner_rdd(self, system, v_parts: list) -> list:
        from repro.core.rdd import _precondition_rdd

        return _precondition_rdd(system, self._inner, v_parts)

    def _inner_rdd_block(self, system, v_parts: list) -> list:
        from repro.core.rdd import _precondition_rdd_block

        return _precondition_rdd_block(system, self._inner, v_parts)

    def apply_rdd(self, system, v_parts: list) -> list:
        """``z = C_2L v`` on row-partitioned per-rank parts."""
        from repro.core.rdd import _axpy_parts

        if self._trivial:
            return self._inner_rdd(system, v_parts)
        comm = system.comm
        if self._spec.mode == "additive":
            z = self._inner_rdd(system, v_parts)
            q = self._coarse_correct(comm, v_parts, None)
            return _axpy_parts(comm, z, 1.0, q)
        q = self._coarse_correct(comm, v_parts, None)
        r = _axpy_parts(comm, v_parts, -1.0, system.matvec(q))
        return _axpy_parts(comm, self._inner_rdd(system, r), 1.0, q)

    def apply_rdd_block(self, system, v_parts: list) -> list:
        """Batched :meth:`apply_rdd` over ``(n_own, k)`` part blocks."""
        from repro.core.rdd import _axpy_parts_block

        if self._trivial:
            return self._inner_rdd_block(system, v_parts)
        comm = system.comm
        k = v_parts[0].shape[1]
        if self._spec.mode == "additive":
            z = self._inner_rdd_block(system, v_parts)
            q = self._coarse_correct(comm, v_parts, k)
            return _axpy_parts_block(comm, z, 1.0, q)
        q = self._coarse_correct(comm, v_parts, k)
        r = _axpy_parts_block(comm, v_parts, -1.0, system.matvec_block(q))
        return _axpy_parts_block(comm, self._inner_rdd_block(system, r), 1.0, q)

    # ------------------------------------------------------------------
    # Sequential / reporting interface
    # ------------------------------------------------------------------
    def apply(self, v: np.ndarray) -> np.ndarray:
        """Global-vector interface (scatter, apply, gather) for testing —
        the distributed solvers use the ``apply_*`` entry points."""
        v = np.asarray(v, dtype=np.float64)
        if self._is_edd:
            z = self.apply_edd(self._system, self._system.distribute(v))
            return self._system.to_global_vector(z)
        parts = [v[o] for o in self._system.own]
        z_parts = self.apply_rdd(self._system, parts)
        out = np.zeros(self._system.n_global)
        for o, z in zip(self._system.own, z_parts):
            out[o] = z
        return out

    @property
    def name(self) -> str:
        inner = "I" if self._inner is None else self._inner.name
        tr = ",tr" if self._spec.enrich else ""
        return f"2L({inner},{self._spec.mode}{tr},C={self.n_coarse})"

    @property
    def spec(self) -> str:
        """Round-trippable spec (rebuilding needs the built system, which
        the session supplies — same contract as ``"bj-ilu0"``)."""
        return self._spec.spec
